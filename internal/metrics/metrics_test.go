package metrics

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", L("k", "v"), L("a", "b"))
	b := r.Counter("x_total", L("a", "b"), L("k", "v"))
	if a != b {
		t.Fatal("label order split the metric identity")
	}
	a.Add(2)
	b.Inc()
	if got := a.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if c, d := r.Counter("y_total"), r.Counter("y_total"); c != d {
		t.Fatal("unlabeled re-registration returned a different handle")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m")
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	m := r.Max("m")
	h := r.Histogram("h", []float64{1, 2})
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(2)
	m.Observe(3)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || m.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if n := len(r.Snapshot().Metrics); n != 0 {
		t.Fatalf("nil registry snapshot has %d metrics", n)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hv := snap.Metrics[0].Hist
	want := []int64{2, 2, 2, 1} // <=1: {0.5,1}; <=2: {1.5,2}; <=4: {3,4}; +Inf: {100}
	if !reflect.DeepEqual(hv.Counts, want) {
		t.Fatalf("bucket counts = %v, want %v", hv.Counts, want)
	}
	if hv.Count != 7 {
		t.Fatalf("count = %d, want 7", hv.Count)
	}
}

// buildSnapshot makes a snapshot with every kind, with values derived from
// the per-trial seed so merge tests exercise distinct contributions.
func buildSnapshot(seed int64) *Snapshot {
	r := NewRegistry()
	rng := rand.New(rand.NewSource(seed))
	r.Counter("conv_total").Add(rng.Int63n(100) + 1)
	r.Counter("rej_total", L("filter", "energy")).Add(rng.Int63n(10))
	r.Counter("rej_total", L("filter", "robustness")).Add(rng.Int63n(10))
	r.Gauge("energy").Add(rng.Float64() * 10)
	r.Max("heap_hw").Observe(float64(rng.Int63n(50)))
	h := r.Histogram("backlog", []float64{1, 4, 16})
	for i := 0; i < 20; i++ {
		h.Observe(float64(rng.Int63n(32)))
	}
	return r.Snapshot()
}

func snapshotEqual(a, b *Snapshot) bool {
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	return string(aj) == string(bj)
}

// TestMergeAssociativeCommutative is the satellite-3 guarantee: the worker
// pool merges trial snapshots in completion order, which must not matter.
func TestMergeAssociativeCommutative(t *testing.T) {
	const n = 8
	snaps := make([]*Snapshot, n)
	var wg sync.WaitGroup
	for i := range snaps {
		wg.Add(1)
		go func(i int) { // goroutine-produced, like the trial workers
			defer wg.Done()
			snaps[i] = buildSnapshot(int64(i + 1))
		}(i)
	}
	wg.Wait()

	// Forward order.
	fwd, err := MergeSnapshots(snaps...)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse order (commutativity).
	rev := &Snapshot{}
	for i := n - 1; i >= 0; i-- {
		if err := rev.Merge(snaps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !snapshotEqual(fwd, rev) {
		t.Fatal("merge is not commutative across snapshot order")
	}
	// Grouped ((a+b)+(c+d))+... (associativity).
	grouped := &Snapshot{}
	for i := 0; i < n; i += 2 {
		pair, err := MergeSnapshots(snaps[i], snaps[i+1])
		if err != nil {
			t.Fatal(err)
		}
		if err := grouped.Merge(pair); err != nil {
			t.Fatal(err)
		}
	}
	if !snapshotEqual(fwd, grouped) {
		t.Fatal("merge is not associative across grouping")
	}

	// Spot-check the aggregate semantics against the raw snapshots.
	var wantConv, wantHW float64
	for _, s := range snaps {
		v, _ := s.Value("conv_total")
		wantConv += v
		hw, _ := s.Value("heap_hw")
		if hw > wantHW {
			wantHW = hw
		}
	}
	if got, _ := fwd.Value("conv_total"); got != wantConv {
		t.Fatalf("merged counter = %g, want %g", got, wantConv)
	}
	if got, _ := fwd.Value("heap_hw"); got != wantHW {
		t.Fatalf("merged max = %g, want %g", got, wantHW)
	}
}

func TestMergeMismatchError(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("m").Inc()
	r2 := NewRegistry()
	r2.Gauge("m").Set(4)
	s := r1.Snapshot()
	if err := s.Merge(r2.Snapshot()); err == nil {
		t.Fatal("expected kind-mismatch error")
	}
	if v, _ := s.Value("m"); v != 1 {
		t.Fatalf("mismatched metric was modified: %g", v)
	}

	h1 := NewRegistry()
	h1.Histogram("h", []float64{1, 2}).Observe(1)
	h2 := NewRegistry()
	h2.Histogram("h", []float64{1, 2, 3}).Observe(1)
	hs := h1.Snapshot()
	if err := hs.Merge(h2.Snapshot()); err == nil {
		t.Fatal("expected histogram-shape error")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := buildSnapshot(7)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !snapshotEqual(s, &back) {
		t.Fatal("JSON round trip changed the snapshot")
	}
	for i := range back.Metrics {
		if back.Metrics[i].Kind.String() != back.Metrics[i].KindS {
			t.Fatalf("kind %q not re-derived", back.Metrics[i].KindS)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	s := buildSnapshot(3)
	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE conv_total counter",
		"# TYPE backlog histogram",
		`backlog_bucket{le="+Inf"}`,
		"backlog_sum",
		"backlog_count",
		`rej_total{filter="energy"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative: the +Inf bucket equals count.
	var infLine, countLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `backlog_bucket{le="+Inf"}`) {
			infLine = strings.Fields(line)[1]
		}
		if strings.HasPrefix(line, "backlog_count") {
			countLine = strings.Fields(line)[1]
		}
	}
	if infLine == "" || infLine != countLine {
		t.Fatalf("+Inf bucket %q != count %q", infLine, countLine)
	}
}

func TestMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Add(42)
	srv := httptest.NewServer(NewMux(r.Snapshot))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "hits_total 42") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, `"hits_total"`) {
		t.Fatalf("/metrics.json: %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, `"metrics"`) {
		t.Fatalf("/debug/vars: %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g").Set(1.5)
	srv, err := Serve("127.0.0.1:0", r.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "g 1.5") {
		t.Fatalf("served body %q", body)
	}
}

func TestPhases(t *testing.T) {
	p := NewPhases()
	stop := p.Start("build")
	stop()
	stop2 := p.Start("simulate")
	stop2()
	stop3 := p.Start("simulate")
	stop3()
	ts := p.Timings()
	if len(ts) != 2 || ts[0].Name != "build" || ts[1].Name != "simulate" {
		t.Fatalf("timings = %+v", ts)
	}
	if ts[1].Count != 2 {
		t.Fatalf("simulate count = %d, want 2", ts[1].Count)
	}
	var nilP *Phases
	nilP.Record("x", 0) // must not panic
	if nilP.Timings() != nil {
		t.Fatal("nil Phases should report nil timings")
	}
	done := nilP.Start("x")
	done()
}

// TestSnapshotConsistentUnderConcurrentObserve hammers a histogram from
// writer goroutines while snapshots are taken concurrently. Every snapshot
// must be internally consistent — Count equal to the sum of its bucket
// counts — and monotone across successive snapshots; a torn read of the
// independent total counter used to break both.
func TestSnapshotConsistentUnderConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hammer", []float64{0.25, 0.5, 0.75})
	c := r.Counter("hits")

	const writers = 4
	const perWriter = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(i%100) / 100)
				c.Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done); close(stop) }()

	var prev int64
	snaps := 0
	for {
		select {
		case <-stop:
			goto final
		default:
		}
		s := r.Snapshot()
		for _, mv := range s.Metrics {
			if mv.Kind != KindHistogram {
				continue
			}
			var sum int64
			for _, n := range mv.Hist.Counts {
				sum += n
			}
			if mv.Hist.Count != sum {
				t.Fatalf("torn snapshot: Count %d != bucket sum %d", mv.Hist.Count, sum)
			}
			if mv.Hist.Count < prev {
				t.Fatalf("snapshot went backwards: %d after %d", mv.Hist.Count, prev)
			}
			prev = mv.Hist.Count
		}
		snaps++
	}
final:
	<-done
	s := r.Snapshot()
	if got, _ := s.Value("hits"); got != writers*perWriter {
		t.Fatalf("final counter %v, want %d", got, writers*perWriter)
	}
	for _, mv := range s.Metrics {
		if mv.Kind != KindHistogram {
			continue
		}
		var sum int64
		for _, n := range mv.Hist.Counts {
			sum += n
		}
		if mv.Hist.Count != int64(writers*perWriter) || sum != mv.Hist.Count {
			t.Fatalf("final histogram: Count %d bucket sum %d, want %d", mv.Hist.Count, sum, writers*perWriter)
		}
	}
	if snaps == 0 {
		t.Log("no snapshot raced the writers (slow machine); invariant still checked at rest")
	}
}
