// Package metrics is the repository's dependency-free telemetry substrate:
// a registry of labeled counters, gauges, max-gauges, and fixed-bucket
// histograms with atomic hot-path updates, point-in-time snapshots, and an
// associative Merge so per-trial snapshots aggregate across the experiment
// harness's parallel worker pool. The package deliberately has no
// third-party dependencies and no domain knowledge; the simulator, the
// scheduler, and the experiment harness register the instruments they need.
//
// Concurrency model: instrument handles (Counter, Gauge, Max, Histogram)
// are registered once — typically at engine construction, under the
// registry's lock — and updated lock-free on the hot path with atomic
// operations. All instrument methods are nil-receiver-safe, so call sites
// stay unconditional when instrumentation is disabled.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies an instrument, which determines its Merge semantics.
type Kind uint8

// Instrument kinds.
const (
	// KindCounter is a monotonically increasing count; merges by summing.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value; merges by summing (per-trial
	// gauges such as energy consumed add up across trials).
	KindGauge
	// KindMax is a high-water mark; merges by taking the maximum.
	KindMax
	// KindHistogram is a fixed-bucket distribution; merges bucket-wise.
	KindHistogram
)

// String names the kind for expositions.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindMax:
		return "max"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Label is one name=value dimension of a metric.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments the gauge by v with a CAS loop. No-op on a nil receiver.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (zero on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Max is a high-water mark: Observe keeps the largest value seen.
type Max struct{ bits atomic.Uint64 }

// Observe raises the mark to v if v exceeds it. No-op on a nil receiver.
// Only non-negative observations are meaningful (the zero value reads 0).
func (m *Max) Observe(v float64) {
	if m == nil {
		return
	}
	for {
		old := m.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if m.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the high-water mark (zero on a nil receiver).
func (m *Max) Value() float64 {
	if m == nil {
		return 0
	}
	return math.Float64frombits(m.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v <= bounds[i]; one implicit overflow bucket counts the
// rest. Bounds are fixed at registration, which is what makes Merge
// well-defined across snapshots.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf overflow
	sum    Gauge
	n      Counter
}

// Observe records one observation. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists on the hot path are short (≤ ~16).
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Inc()
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Value()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// metric is one registered instrument with its identity.
type metric struct {
	name   string
	labels []Label
	kind   Kind

	counter *Counter
	gauge   *Gauge
	max     *Max
	hist    *Histogram
}

// Registry holds registered instruments. Registration (the *Counter/Gauge/
// Max/Histogram getters) takes a lock and is meant for setup paths; the
// returned handles update lock-free.
type Registry struct {
	mu      sync.Mutex
	byID    map[string]*metric
	ordered []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*metric)}
}

// metricID canonicalizes (name, labels) into a map key. Labels are sorted
// by key so registration order does not split identities.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('{')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte('}')
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return labels
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// get returns the registered metric for (name, labels), creating it with
// mk on first use. Panics if the name+labels were already registered with
// a different kind — that is a programming error, not an input error.
func (r *Registry) get(name string, labels []Label, kind Kind, mk func(*metric)) *metric {
	labels = sortLabels(labels)
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byID[id]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %v, requested as %v", id, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, labels: labels, kind: kind}
	mk(m)
	r.byID[id] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns the counter with the given identity, registering it on
// first use. Returns nil when the registry itself is nil, which composes
// with the nil-safe instrument methods to disable instrumentation.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, labels, KindCounter, func(m *metric) { m.counter = &Counter{} }).counter
}

// Gauge returns the gauge with the given identity, registering it on first
// use. Nil-registry-safe like Counter.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, labels, KindGauge, func(m *metric) { m.gauge = &Gauge{} }).gauge
}

// Max returns the high-water gauge with the given identity, registering it
// on first use. Nil-registry-safe like Counter.
func (r *Registry) Max(name string, labels ...Label) *Max {
	if r == nil {
		return nil
	}
	return r.get(name, labels, KindMax, func(m *metric) { m.max = &Max{} }).max
}

// Histogram returns the histogram with the given identity, registering it
// with the given bucket upper bounds on first use (bounds must be sorted
// ascending; an overflow bucket is implicit). Re-registration keeps the
// original bounds. Nil-registry-safe like Counter.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, labels, KindHistogram, func(m *metric) {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				panic(fmt.Sprintf("metrics: histogram %s bounds not strictly ascending at %d", name, i))
			}
		}
		m.hist = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	}).hist
}
