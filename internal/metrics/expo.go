package metrics

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
)

// This file is the exposition layer: Prometheus text format, JSON, and an
// HTTP server bundling both with the stdlib expvar and pprof debug
// endpoints — the `-listen` surface of cmd/ecsim and cmd/ectrace.

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Max-gauges render as gauges; histograms render
// with cumulative `le` buckets plus _sum and _count series.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	typed := make(map[string]bool)
	for i := range s.Metrics {
		mv := &s.Metrics[i]
		promKind := "gauge"
		switch mv.Kind {
		case KindCounter:
			promKind = "counter"
		case KindHistogram:
			promKind = "histogram"
		}
		if !typed[mv.Name] {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", mv.Name, promKind); err != nil {
				return err
			}
			typed[mv.Name] = true
		}
		switch mv.Kind {
		case KindHistogram:
			cum := int64(0)
			for b, c := range mv.Hist.Counts {
				cum += c
				le := "+Inf"
				if b < len(mv.Hist.Bounds) {
					le = fmt.Sprintf("%g", mv.Hist.Bounds[b])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					mv.Name, promLabels(mv.Labels, L("le", le)), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n",
				mv.Name, promLabels(mv.Labels), mv.Hist.Sum,
				mv.Name, promLabels(mv.Labels), mv.Hist.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %g\n", mv.Name, promLabels(mv.Labels), mv.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Source produces the current snapshot on demand — the handle a live HTTP
// exposition polls. Implementations must be safe for concurrent use.
type Source func() *Snapshot

// NewMux builds an http.ServeMux exposing the source:
//
//	/metrics       Prometheus text format
//	/metrics.json  the Snapshot JSON document
//	/debug/vars    stdlib expvar (includes the snapshot under "metrics")
//	/debug/pprof/  stdlib CPU/heap/goroutine profiling
func NewMux(source Source) *http.ServeMux {
	publishExpvar(source)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = source().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(source())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

var (
	expvarOnce   sync.Once
	expvarSource Source
	expvarMu     sync.Mutex
)

// publishExpvar publishes the snapshot under the expvar name "metrics".
// expvar.Publish panics on duplicate names, so the Func is registered once
// and re-pointed at the most recent source.
func publishExpvar(source Source) {
	expvarMu.Lock()
	expvarSource = source
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("metrics", expvar.Func(func() any {
			expvarMu.Lock()
			src := expvarSource
			expvarMu.Unlock()
			if src == nil {
				return nil
			}
			return src()
		}))
	})
}

// Server is a running metrics/debug HTTP server.
type Server struct {
	Addr net.Addr
	srv  *http.Server
	done chan struct{}
}

// Serve starts an HTTP server on addr (host:port; port 0 picks a free
// port) exposing the source via NewMux. It returns once the listener is
// bound, so the caller can log the resolved address immediately.
func Serve(addr string, source Source) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	s := &Server{
		Addr: ln.Addr(),
		srv:  &http.Server{Handler: NewMux(source)},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Close shuts the server down and waits for the serve loop to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
