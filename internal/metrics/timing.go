package metrics

import (
	"sync"
	"time"
)

// PhaseTiming is one named phase's accumulated wall-clock time.
type PhaseTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Count   int     `json:"count"`
}

// Phases accumulates wall-clock time per named phase — the per-phase
// timing block of the RunReport. It is safe for concurrent use; repeated
// phases accumulate (count tracks how many intervals contributed).
type Phases struct {
	mu    sync.Mutex
	order []string
	byN   map[string]*PhaseTiming
}

// NewPhases returns an empty phase accumulator.
func NewPhases() *Phases {
	return &Phases{byN: make(map[string]*PhaseTiming)}
}

// Record adds one elapsed interval to the named phase. Nil-receiver-safe.
func (p *Phases) Record(name string, d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.byN[name]
	if !ok {
		t = &PhaseTiming{Name: name}
		p.byN[name] = t
		p.order = append(p.order, name)
	}
	t.Seconds += d.Seconds()
	t.Count++
}

// Start begins timing the named phase and returns the stop function that
// records the elapsed interval. Nil-receiver-safe (stop is then a no-op).
func (p *Phases) Start(name string) func() {
	if p == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { p.Record(name, time.Since(t0)) }
}

// Timings returns the accumulated phases in first-recorded order.
func (p *Phases) Timings() []PhaseTiming {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PhaseTiming, 0, len(p.order))
	for _, n := range p.order {
		out = append(out, *p.byN[n])
	}
	return out
}
