package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
)

// HistogramValue is the snapshot of one histogram: per-bucket cumulative-
// free counts (Counts[i] is the count for values <= Bounds[i]; the final
// entry is the overflow bucket), the observation sum, and the total count.
type HistogramValue struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// MetricValue is the snapshot of one instrument.
type MetricValue struct {
	Name   string          `json:"name"`
	Labels []Label         `json:"labels,omitempty"`
	Kind   Kind            `json:"-"`
	KindS  string          `json:"kind"`
	Value  float64         `json:"value,omitempty"`
	Hist   *HistogramValue `json:"histogram,omitempty"`
}

// ID returns the metric's canonical identity string.
func (v *MetricValue) ID() string { return metricID(v.Name, v.Labels) }

// Snapshot is a point-in-time copy of a registry's instruments. Snapshots
// are plain values: safe to serialize, ship across goroutines, and Merge.
type Snapshot struct {
	Metrics []MetricValue `json:"metrics"`
}

// Snapshot captures the registry's current values, sorted by identity so
// equal registries produce byte-identical serializations.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	metricsCopy := make([]*metric, len(r.ordered))
	copy(metricsCopy, r.ordered)
	r.mu.Unlock()
	for _, m := range metricsCopy {
		mv := MetricValue{Name: m.name, Labels: m.labels, Kind: m.kind, KindS: m.kind.String()}
		switch m.kind {
		case KindCounter:
			mv.Value = float64(m.counter.Value())
		case KindGauge:
			mv.Value = m.gauge.Value()
		case KindMax:
			mv.Value = m.max.Value()
		case KindHistogram:
			h := m.hist
			hv := &HistogramValue{
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
			}
			// Count is derived from the bucket loads, not read from the
			// independent total counter: a concurrent Observe landing between
			// the two loads would otherwise produce a torn snapshot whose
			// Count != ΣCounts — an inconsistency Merge then compounds across
			// trials. Sum is read after the buckets and remains best-effort
			// under concurrent observation (it may include an observation the
			// bucket read just missed); the bucket/Count pair is exact.
			var total int64
			for i := range h.counts {
				c := h.counts[i].Load()
				hv.Counts[i] = c
				total += c
			}
			hv.Count = total
			hv.Sum = h.sum.Value()
			mv.Hist = hv
		}
		s.Metrics = append(s.Metrics, mv)
	}
	s.sort()
	return s
}

func (s *Snapshot) sort() {
	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].ID() < s.Metrics[j].ID() })
}

// Merge folds other into s. The operation is associative and commutative
// per metric identity: counters and gauges add, max-gauges take the
// maximum, histograms add bucket-wise (their bounds must match — they come
// from the same registration site). Metrics present in only one snapshot
// carry over unchanged. Merging mismatched kinds or histogram shapes for
// the same identity returns an error and leaves that metric as it was in s.
func (s *Snapshot) Merge(other *Snapshot) error {
	if other == nil {
		return nil
	}
	index := make(map[string]int, len(s.Metrics))
	for i := range s.Metrics {
		index[s.Metrics[i].ID()] = i
	}
	var firstErr error
	for i := range other.Metrics {
		ov := &other.Metrics[i]
		j, ok := index[ov.ID()]
		if !ok {
			s.Metrics = append(s.Metrics, cloneValue(ov))
			index[ov.ID()] = len(s.Metrics) - 1
			continue
		}
		mv := &s.Metrics[j]
		if mv.Kind != ov.Kind {
			if firstErr == nil {
				firstErr = fmt.Errorf("metrics: merge kind mismatch for %s: %v vs %v", mv.ID(), mv.Kind, ov.Kind)
			}
			continue
		}
		switch mv.Kind {
		case KindCounter, KindGauge:
			mv.Value += ov.Value
		case KindMax:
			if ov.Value > mv.Value {
				mv.Value = ov.Value
			}
		case KindHistogram:
			if err := mergeHist(mv.Hist, ov.Hist); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("metrics: merge %s: %w", mv.ID(), err)
				}
			}
		}
	}
	s.sort()
	return firstErr
}

func cloneValue(v *MetricValue) MetricValue {
	out := *v
	if v.Hist != nil {
		h := *v.Hist
		h.Bounds = append([]float64(nil), v.Hist.Bounds...)
		h.Counts = append([]int64(nil), v.Hist.Counts...)
		out.Hist = &h
	}
	return out
}

func mergeHist(dst, src *HistogramValue) error {
	if dst == nil || src == nil {
		return fmt.Errorf("missing histogram value")
	}
	if len(dst.Counts) != len(src.Counts) {
		return fmt.Errorf("bucket count mismatch: %d vs %d", len(dst.Counts), len(src.Counts))
	}
	for i, b := range dst.Bounds {
		if src.Bounds[i] != b {
			return fmt.Errorf("bucket bound mismatch at %d: %g vs %g", i, b, src.Bounds[i])
		}
	}
	for i := range dst.Counts {
		dst.Counts[i] += src.Counts[i]
	}
	dst.Sum += src.Sum
	dst.Count += src.Count
	return nil
}

// MergeSnapshots folds any number of snapshots into a fresh one.
func MergeSnapshots(snaps ...*Snapshot) (*Snapshot, error) {
	out := &Snapshot{}
	for _, s := range snaps {
		if err := out.Merge(s); err != nil {
			return out, err
		}
	}
	return out, nil
}

// Value returns the scalar value of the named metric (counters, gauges,
// max-gauges) and whether it was present. Labels identify the exact series.
func (s *Snapshot) Value(name string, labels ...Label) (float64, bool) {
	if s == nil {
		return 0, false
	}
	id := metricID(name, sortLabels(labels))
	for i := range s.Metrics {
		if s.Metrics[i].ID() == id {
			return s.Metrics[i].Value, true
		}
	}
	return 0, false
}

// SumByName sums the scalar values of every series sharing the metric name
// (e.g. one counter split across label values). Histograms contribute
// their observation count.
func (s *Snapshot) SumByName(name string) float64 {
	if s == nil {
		return 0
	}
	total := 0.0
	for i := range s.Metrics {
		mv := &s.Metrics[i]
		if mv.Name != name {
			continue
		}
		if mv.Kind == KindHistogram && mv.Hist != nil {
			total += float64(mv.Hist.Count)
			continue
		}
		total += mv.Value
	}
	return total
}

// Equal reports whether two snapshots carry exactly the same series with
// exactly the same values — bit-level float equality, no tolerance. Both
// snapshots are sorted by identity at construction, so comparing their
// deterministic JSON forms is sufficient and keeps the definition in sync
// with what gets persisted to journals and reports.
func (s *Snapshot) Equal(other *Snapshot) bool {
	if s == nil || other == nil {
		return (s == nil || len(s.Metrics) == 0) && (other == nil || len(other.Metrics) == 0)
	}
	a, errA := s.MarshalJSON()
	b, errB := other.MarshalJSON()
	return errA == nil && errB == nil && string(a) == string(b)
}

// MarshalJSON emits the snapshot as a deterministic JSON document.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot
	return json.Marshal((*alias)(s))
}

// UnmarshalJSON restores a snapshot, re-deriving the typed Kind from its
// serialized name.
func (s *Snapshot) UnmarshalJSON(data []byte) error {
	type alias Snapshot
	if err := json.Unmarshal(data, (*alias)(s)); err != nil {
		return err
	}
	for i := range s.Metrics {
		switch s.Metrics[i].KindS {
		case "counter":
			s.Metrics[i].Kind = KindCounter
		case "gauge":
			s.Metrics[i].Kind = KindGauge
		case "max":
			s.Metrics[i].Kind = KindMax
		case "histogram":
			s.Metrics[i].Kind = KindHistogram
		default:
			return fmt.Errorf("metrics: unknown kind %q", s.Metrics[i].KindS)
		}
	}
	return nil
}
