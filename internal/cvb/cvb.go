// Package cvb implements the Coefficient-of-Variation-Based (CVB) method of
// Ali, Siegel, Maheswaran, and Hensgen (2000) for generating estimated
// time-to-compute (ETC) matrices with controlled task and machine
// heterogeneity. The paper (§VI) generates its execution-time distributions
// with CVB using μ_task = 750, V_task = 0.25, V_mach = 0.25.
//
// The method: draw one gamma sample q(t) per task type with mean μ_task and
// coefficient of variation V_task (task heterogeneity), then for every
// machine draw ETC(t, m) from a gamma distribution with mean q(t) and
// coefficient of variation V_mach (machine heterogeneity). Because each
// entry is drawn independently, the resulting matrix is *inconsistent*
// (§III-A): machine A being faster than B on one task type implies nothing
// about other task types.
package cvb

import (
	"fmt"

	"repro/internal/randx"
)

// Params configures CVB ETC generation.
type Params struct {
	// TaskMean is μ_task, the mean of the task-type gamma distribution.
	TaskMean float64
	// TaskCV is V_task, the coefficient of variation across task types.
	TaskCV float64
	// MachCV is V_mach, the coefficient of variation across machines.
	MachCV float64
}

// PaperParams are the parameters the paper uses in §VI.
func PaperParams() Params {
	return Params{TaskMean: 750, TaskCV: 0.25, MachCV: 0.25}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.TaskMean <= 0 {
		return fmt.Errorf("cvb: TaskMean %v must be > 0", p.TaskMean)
	}
	if p.TaskCV <= 0 {
		return fmt.Errorf("cvb: TaskCV %v must be > 0", p.TaskCV)
	}
	if p.MachCV <= 0 {
		return fmt.Errorf("cvb: MachCV %v must be > 0", p.MachCV)
	}
	return nil
}

// Matrix is an ETC matrix: Mean[t][m] is the mean execution time of task
// type t on machine (node) m at the base P-state.
type Matrix struct {
	Mean [][]float64
}

// TaskTypes returns the number of task types (rows).
func (m *Matrix) TaskTypes() int { return len(m.Mean) }

// Machines returns the number of machines (columns).
func (m *Matrix) Machines() int {
	if len(m.Mean) == 0 {
		return 0
	}
	return len(m.Mean[0])
}

// At returns the mean execution time of task type t on machine m.
func (m *Matrix) At(t, mach int) float64 { return m.Mean[t][mach] }

// TaskMean returns the mean of row t across machines: the per-type average
// execution time used for deadline assignment (§VI) before P-state scaling.
func (m *Matrix) TaskMean(t int) float64 {
	row := m.Mean[t]
	s := 0.0
	for _, v := range row {
		s += v
	}
	return s / float64(len(row))
}

// GrandMean returns the mean over all entries.
func (m *Matrix) GrandMean() float64 {
	s, n := 0.0, 0
	for _, row := range m.Mean {
		for _, v := range row {
			s += v
			n++
		}
	}
	return s / float64(n)
}

// Generate builds a taskTypes × machines ETC matrix from the given stream.
func Generate(s *randx.Stream, taskTypes, machines int, p Params) (*Matrix, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if taskTypes < 1 || machines < 1 {
		return nil, fmt.Errorf("cvb: need at least one task type and one machine, got %d×%d", taskTypes, machines)
	}
	m := &Matrix{Mean: make([][]float64, taskTypes)}
	for t := 0; t < taskTypes; t++ {
		q := s.GammaMeanCV(p.TaskMean, p.TaskCV)
		row := make([]float64, machines)
		for mach := 0; mach < machines; mach++ {
			row[mach] = s.GammaMeanCV(q, p.MachCV)
		}
		m.Mean[t] = row
	}
	return m, nil
}
