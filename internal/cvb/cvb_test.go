package cvb

import (
	"math"
	"testing"

	"repro/internal/randx"
)

func TestGenerateShape(t *testing.T) {
	s := randx.NewStream(1)
	m, err := Generate(s, 100, 8, PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if m.TaskTypes() != 100 || m.Machines() != 8 {
		t.Fatalf("shape %d×%d, want 100×8", m.TaskTypes(), m.Machines())
	}
	for ti := 0; ti < m.TaskTypes(); ti++ {
		for mi := 0; mi < m.Machines(); mi++ {
			if v := m.At(ti, mi); v <= 0 || math.IsNaN(v) {
				t.Fatalf("entry (%d,%d) = %v", ti, mi, v)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(randx.NewStream(9), 10, 4, PaperParams())
	b, _ := Generate(randx.NewStream(9), 10, 4, PaperParams())
	for ti := 0; ti < 10; ti++ {
		for mi := 0; mi < 4; mi++ {
			if a.At(ti, mi) != b.At(ti, mi) {
				t.Fatal("generation not deterministic for equal seeds")
			}
		}
	}
}

func TestGenerateStatistics(t *testing.T) {
	// With many task types, the grand mean should approach μ_task, the
	// across-type CV should approach sqrt(V_task²+V_mach²+V_task²·V_mach²)
	// for individual entries, and row means should have CV ≈ V_task.
	s := randx.NewStream(123)
	p := PaperParams()
	m, err := Generate(s, 4000, 8, p)
	if err != nil {
		t.Fatal(err)
	}
	gm := m.GrandMean()
	if math.Abs(gm-p.TaskMean)/p.TaskMean > 0.03 {
		t.Fatalf("grand mean %v, want ~%v", gm, p.TaskMean)
	}
	// Row-mean CV across types.
	var sum, sq float64
	n := float64(m.TaskTypes())
	for ti := 0; ti < m.TaskTypes(); ti++ {
		v := m.TaskMean(ti)
		sum += v
		sq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sq/n - mean*mean)
	cv := sd / mean
	// Row means average away some machine variance: expect slightly above
	// V_task but well below the full entry CV.
	if cv < p.TaskCV*0.85 || cv > p.TaskCV*1.35 {
		t.Fatalf("row-mean CV %v, want near %v", cv, p.TaskCV)
	}
}

func TestGenerateInconsistent(t *testing.T) {
	// Inconsistent heterogeneity: machine orderings must differ across task
	// types (§III-A). Check that the argmin machine is not constant.
	m, err := Generate(randx.NewStream(5), 50, 8, PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	first := -1
	varies := false
	for ti := 0; ti < m.TaskTypes(); ti++ {
		best, bv := 0, math.Inf(1)
		for mi := 0; mi < m.Machines(); mi++ {
			if m.At(ti, mi) < bv {
				bv = m.At(ti, mi)
				best = mi
			}
		}
		if first == -1 {
			first = best
		} else if best != first {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("fastest machine constant across all task types; matrix looks consistent")
	}
}

func TestGenerateErrors(t *testing.T) {
	s := randx.NewStream(1)
	if _, err := Generate(s, 0, 8, PaperParams()); err == nil {
		t.Fatal("expected error for zero task types")
	}
	if _, err := Generate(s, 10, 0, PaperParams()); err == nil {
		t.Fatal("expected error for zero machines")
	}
	bad := []Params{
		{TaskMean: 0, TaskCV: 0.25, MachCV: 0.25},
		{TaskMean: 750, TaskCV: 0, MachCV: 0.25},
		{TaskMean: 750, TaskCV: 0.25, MachCV: -1},
	}
	for _, p := range bad {
		if _, err := Generate(s, 10, 4, p); err == nil {
			t.Fatalf("expected error for params %+v", p)
		}
	}
}

func TestPaperParams(t *testing.T) {
	p := PaperParams()
	if p.TaskMean != 750 || p.TaskCV != 0.25 || p.MachCV != 0.25 {
		t.Fatalf("paper params drifted: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
