package sched

import (
	"repro/internal/metrics"
	"repro/internal/robustness"
)

// Counters is the scheduler's prepared instrumentation: handles registered
// once per simulation run and bumped lock-free on the mapping hot path.
// All methods are nil-receiver-safe, so instrumented call sites stay
// unconditional when no registry is attached.
type Counters struct {
	// Decisions counts mapping decisions (one per arriving task).
	Decisions *metrics.Counter
	// Candidates counts enumerated (core, P-state) assignments.
	Candidates *metrics.Counter
	// FreeTimeHits / FreeTimeMisses track the per-decision free-time
	// distribution cache: a miss materializes the §IV-B convolution chain
	// for a core, a hit reuses it for another P-state of the same core. In
	// grid mode they track the same question per ρ evaluation against the
	// engine's cached waiting-tail product (a miss folds the product).
	FreeTimeHits   *metrics.Counter
	FreeTimeMisses *metrics.Counter
	// GridRho counts ρ evaluations answered by the fixed-grid
	// TripleConvCDF kernel (zero when the sparse pipeline is active).
	GridRho *metrics.Counter
	// RhoEvals counts ρ(i,j,k,π,t_l,z) evaluations (candidate-level
	// completion-probability convolutions).
	RhoEvals *metrics.Counter
	// ChainHits / ChainMisses / ChainExtends / ChainRebuilds track the
	// cross-decision chain cache (robustness.FreeTimeEngine): a hit returns
	// a core's cached §IV-B chain with zero convolutions, a miss builds it
	// from scratch, an extend absorbs a tail enqueue with one convolution,
	// and a rebuild re-derives a current chain because the running head's
	// truncation cut drifted.
	ChainHits     *metrics.Counter
	ChainMisses   *metrics.Counter
	ChainExtends  *metrics.Counter
	ChainRebuilds *metrics.Counter
	// CompHits / CompMisses track the engine's completion-distribution
	// cache: a hit answers a candidate's ρ from a cached
	// Convolve(free, exec) with zero convolutions. CompSkips counts ρ
	// evaluations resolved to exactly zero by the infeasibility bound
	// (deadline below the completion support's minimum) without touching
	// any distribution.
	CompHits   *metrics.Counter
	CompMisses *metrics.Counter
	CompSkips  *metrics.Counter
	// Discards counts tasks whose feasible set was filtered to empty.
	Discards *metrics.Counter

	// rejections[i] counts candidates eliminated by Mapper.Filters[i];
	// prepared per filter so the hot path avoids map lookups.
	rejections []*metrics.Counter
}

// NewCounters registers the scheduler's instruments in the registry, with
// one labeled rejection counter per filter in the chain. A nil registry
// yields a Counters whose updates are all no-ops.
func NewCounters(r *metrics.Registry, filters []Filter) *Counters {
	c := &Counters{
		Decisions:      r.Counter("sched_decisions_total"),
		Candidates:     r.Counter("sched_candidates_total"),
		FreeTimeHits:   r.Counter("robustness_freetime_cache_hits_total"),
		FreeTimeMisses: r.Counter("robustness_freetime_cache_misses_total"),
		GridRho:        r.Counter("robustness_grid_rho_total"),
		RhoEvals:       r.Counter("sched_rho_evaluations_total"),
		ChainHits:      r.Counter("robustness_chain_cache_hits_total"),
		ChainMisses:    r.Counter("robustness_chain_cache_misses_total"),
		ChainExtends:   r.Counter("robustness_chain_cache_extends_total"),
		ChainRebuilds:  r.Counter("robustness_chain_cache_rebuilds_total"),
		CompHits:       r.Counter("robustness_completion_cache_hits_total"),
		CompMisses:     r.Counter("robustness_completion_cache_misses_total"),
		CompSkips:      r.Counter("robustness_completion_infeasible_skips_total"),
		Discards:       r.Counter("sched_filtered_to_empty_total"),
	}
	c.rejections = make([]*metrics.Counter, len(filters))
	for i, f := range filters {
		c.rejections[i] = r.Counter("sched_filter_rejections_total", metrics.L("filter", f.Name()))
	}
	return c
}

// InstrumentFreeTimes attaches the chain-cache counters to a free-time
// engine. Nil-safe on both sides.
func (c *Counters) InstrumentFreeTimes(e *robustness.FreeTimeEngine) {
	if c == nil || e == nil {
		return
	}
	e.Instrument(c.ChainHits, c.ChainMisses, c.ChainExtends, c.ChainRebuilds, c.CompHits, c.CompMisses, c.CompSkips)
	e.InstrumentGrid(c.GridRho, c.FreeTimeHits, c.FreeTimeMisses)
}

func (c *Counters) addDecision() {
	if c == nil {
		return
	}
	c.Decisions.Inc()
}

func (c *Counters) addCandidates(n int) {
	if c == nil {
		return
	}
	c.Candidates.Add(int64(n))
}

func (c *Counters) freeTime(hit bool) {
	if c == nil {
		return
	}
	if hit {
		c.FreeTimeHits.Inc()
	} else {
		c.FreeTimeMisses.Inc()
	}
}

func (c *Counters) addRho() {
	if c == nil {
		return
	}
	c.RhoEvals.Inc()
}

func (c *Counters) addRejections(filterIdx, n int) {
	if c == nil || filterIdx >= len(c.rejections) {
		return
	}
	c.rejections[filterIdx].Add(int64(n))
}

func (c *Counters) addDiscard() {
	if c == nil {
		return
	}
	c.Discards.Inc()
}
