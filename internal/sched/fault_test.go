package sched

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

// Tests for the fault/brownout context decorations: down-core exclusion,
// P-state floors, the ζ_mul override, and the reliability filter.

func TestBuildCandidatesSkipsDownCores(t *testing.T) {
	f := newFixture(t, 21)
	ctx := f.ctx()
	ctx.CoreUp = func(idx int) bool { return idx != 0 && idx != 3 }
	cands := BuildCandidates(ctx, f.view)
	wantN := (f.view.NumCores() - 2) * cluster.NumPStates
	if len(cands) != wantN {
		t.Fatalf("got %d candidates, want %d with two cores down", len(cands), wantN)
	}
	for _, c := range cands {
		if c.CoreIdx == 0 || c.CoreIdx == 3 {
			t.Fatalf("down core %d enumerated", c.CoreIdx)
		}
	}
}

func TestBuildCandidatesPStateFloor(t *testing.T) {
	f := newFixture(t, 22)
	ctx := f.ctx()
	ctx.PStateFloor = cluster.P3
	cands := BuildCandidates(ctx, f.view)
	wantN := f.view.NumCores() * 2 // only P3, P4 remain
	if len(cands) != wantN {
		t.Fatalf("got %d candidates, want %d under a P3 floor", len(cands), wantN)
	}
	for _, c := range cands {
		if c.PState < cluster.P3 {
			t.Fatalf("candidate at %v below the floor", c.PState)
		}
	}
}

func TestEnergyFilterZetaMulOverride(t *testing.T) {
	f := newFixture(t, 23)
	ctx := f.ctx()
	// A brownout override below the adaptive ζ_mul must replace it in the
	// fair-share formula ζ_mul · E_left / T_left.
	base := EnergyFilter{}.Threshold(ctx)
	ctx.ZetaMulOverride = 0.5
	capped := EnergyFilter{}.Threshold(ctx)
	want := 0.5 * ctx.EnergyLeft / float64(ctx.TasksLeft)
	if math.Abs(capped-want) > 1e-9 {
		t.Fatalf("override threshold %v, want %v", capped, want)
	}
	if capped >= base {
		t.Fatalf("override did not tighten: %v vs base %v", capped, base)
	}
	// An override looser than the adaptive value must not widen admission.
	ctx.ZetaMulOverride = 99
	if got := (EnergyFilter{}).Threshold(ctx); got != base {
		t.Fatalf("loose override changed threshold: %v vs %v", got, base)
	}
}

func TestReliabilityFilter(t *testing.T) {
	f := newFixture(t, 24)
	ctx := f.ctx()
	cands := BuildCandidates(ctx, f.view)
	rf := ReliabilityFilter{}
	if rf.Name() != "rel" || !rf.NeedsRho() {
		t.Fatalf("filter identity wrong: %q needsRho=%v", rf.Name(), rf.NeedsRho())
	}
	// Pick an idle-core P0 candidate: rho ≈ 1 with the generous fixture
	// deadline, so admission is decided by availability alone.
	var c *Candidate
	for i := range cands {
		if cands[i].PState == cluster.P0 {
			c = cands[i]
			break
		}
	}
	if c == nil || c.Rho() < 0.99 {
		t.Fatalf("fixture candidate unusable: %+v", c)
	}
	// No availability context: defaults to 1, passes the 0.5 threshold.
	if !rf.Keep(ctx, c) {
		t.Fatal("full availability rejected")
	}
	// High availability keeps, low availability rejects.
	ctx.Availability = func(int) float64 { return 0.9 }
	if !rf.Keep(ctx, c) {
		t.Fatal("0.9 availability rejected at thresh 0.5")
	}
	ctx.Availability = func(int) float64 { return 0.3 }
	if rf.Keep(ctx, c) {
		t.Fatal("0.3 availability accepted at thresh 0.5")
	}
	ctx.Availability = func(int) float64 { return 0 }
	if rf.Keep(ctx, c) {
		t.Fatal("zero availability accepted")
	}
	// Custom threshold.
	ctx.Availability = func(int) float64 { return 0.3 }
	if !(ReliabilityFilter{Thresh: 0.2}).Keep(ctx, c) {
		t.Fatal("custom low threshold rejected 0.3 availability")
	}
}
