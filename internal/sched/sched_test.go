package sched

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/randx"
	"repro/internal/robustness"
	"repro/internal/workload"
)

// fakeView is a minimal SystemView with configurable queues.
type fakeView struct {
	c      *cluster.Cluster
	queues []robustness.CoreQueue
}

func newFakeView(c *cluster.Cluster) *fakeView {
	v := &fakeView{c: c, queues: make([]robustness.CoreQueue, c.TotalCores())}
	for i, id := range c.Cores() {
		v.queues[i] = robustness.CoreQueue{Node: id.Node}
	}
	return v
}

func (v *fakeView) NumCores() int                    { return len(v.queues) }
func (v *fakeView) CoreID(i int) cluster.CoreID      { return v.c.Cores()[i] }
func (v *fakeView) Queue(i int) robustness.CoreQueue { return v.queues[i] }
func (v *fakeView) push(i int, t robustness.QueuedTask) {
	v.queues[i].Tasks = append(v.queues[i].Tasks, t)
}

type fixture struct {
	model *workload.Model
	calc  *robustness.Calculator
	view  *fakeView
	task  workload.Task
}

func newFixture(t *testing.T, seed uint64) *fixture {
	t.Helper()
	s := randx.NewStream(seed)
	c, err := cluster.Generate(s.Child("cluster"), cluster.PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	p := workload.PaperParams()
	p.TaskTypes = 6
	p.WindowSize = 40
	p.BurstLen = 8
	p.PMFSamples = 300
	m, err := workload.BuildModel(s.Child("wl"), c, p)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		model: m,
		calc:  robustness.NewCalculator(m),
		view:  newFakeView(c),
		task:  workload.Task{ID: 0, Type: 2, Arrival: 100, Deadline: 100 + 3*m.TAvg(), U: 0.5, Priority: 1},
	}
}

func (f *fixture) ctx() *Context {
	return &Context{
		Now:           f.task.Arrival,
		Task:          f.task,
		Model:         f.model,
		Calc:          f.calc,
		EnergyLeft:    f.model.DefaultEnergyBudget(),
		TasksLeft:     f.model.Params.WindowSize - 1,
		AvgQueueDepth: 0.5,
		Rand:          randx.NewStream(999),
	}
}

func TestBuildCandidatesEnumeration(t *testing.T) {
	f := newFixture(t, 1)
	ctx := f.ctx()
	cands := BuildCandidates(ctx, f.view)
	wantN := f.view.NumCores() * cluster.NumPStates
	if len(cands) != wantN {
		t.Fatalf("got %d candidates, want %d", len(cands), wantN)
	}
	for _, c := range cands {
		node := f.model.Cluster.Node(c.Core)
		exec := f.model.ExecPMF(f.task.Type, c.Core.Node, c.PState)
		if math.Abs(c.EET-exec.Mean()) > 1e-12 {
			t.Fatalf("EET %v, want %v", c.EET, exec.Mean())
		}
		wantEEC := energy.ExpectedEnergy(node, c.PState, c.EET)
		if math.Abs(c.EEC-wantEEC) > 1e-12 {
			t.Fatalf("EEC %v, want %v", c.EEC, wantEEC)
		}
		if c.QueueLen != 0 {
			t.Fatalf("empty system but QueueLen %d", c.QueueLen)
		}
		// Empty queue: ECT = now + EET.
		if math.Abs(c.ECT()-(ctx.Now+c.EET)) > 1e-9 {
			t.Fatalf("ECT %v, want %v", c.ECT(), ctx.Now+c.EET)
		}
	}
}

func TestBuildCandidatesQueueLenAndECT(t *testing.T) {
	f := newFixture(t, 2)
	f.view.push(0, robustness.QueuedTask{Type: 1, PState: cluster.P0, Deadline: 1e9})
	f.view.push(0, robustness.QueuedTask{Type: 3, PState: cluster.P1, Deadline: 1e9})
	ctx := f.ctx()
	cands := BuildCandidates(ctx, f.view)
	c0 := cands[0] // core 0, P0
	if c0.QueueLen != 2 {
		t.Fatalf("QueueLen %d, want 2", c0.QueueLen)
	}
	node0 := f.view.CoreID(0).Node
	wait := ctx.Now + f.model.ExecPMF(1, node0, cluster.P0).Mean() + f.model.ExecPMF(3, node0, cluster.P1).Mean()
	if math.Abs(c0.ECT()-(wait+c0.EET)) > 1e-6 {
		t.Fatalf("ECT with queue %v, want %v", c0.ECT(), wait+c0.EET)
	}
	// Other cores still empty.
	if cands[cluster.NumPStates].QueueLen != 0 {
		t.Fatal("queue length leaked to other cores")
	}
}

func TestCandidateRhoCachedAndSane(t *testing.T) {
	f := newFixture(t, 3)
	ctx := f.ctx()
	cands := BuildCandidates(ctx, f.view)
	c := cands[0]
	r1 := c.Rho()
	r2 := c.Rho()
	if r1 != r2 {
		t.Fatal("Rho not cached/deterministic")
	}
	if r1 < 0 || r1 > 1 {
		t.Fatalf("rho %v outside [0,1]", r1)
	}
	// Generous deadline on an idle core: should be near-certain at P0.
	if c.PState == cluster.P0 && r1 < 0.99 {
		t.Fatalf("idle core, deadline 3·t_avg, P0: rho %v unexpectedly low", r1)
	}
}

func TestShortestQueueChoose(t *testing.T) {
	f := newFixture(t, 4)
	f.view.push(0, robustness.QueuedTask{Type: 0, PState: cluster.P0, Deadline: 1e9})
	ctx := f.ctx()
	cands := BuildCandidates(ctx, f.view)
	got := ShortestQueue{}.Choose(ctx, cands)
	if got.QueueLen != 0 {
		t.Fatalf("SQ picked a core with queue %d", got.QueueLen)
	}
	// Tie-break: minimum EET among empty cores — must be a P0 assignment
	// (P0 strictly dominates other P-states of the same node on EET).
	if got.PState != cluster.P0 {
		t.Fatalf("SQ tie-break chose %v, want P0", got.PState)
	}
	minEET := math.Inf(1)
	for _, c := range cands {
		if c.QueueLen == 0 && c.EET < minEET {
			minEET = c.EET
		}
	}
	if got.EET != minEET {
		t.Fatalf("SQ tie-break EET %v, want min %v", got.EET, minEET)
	}
}

func TestMECTChoose(t *testing.T) {
	f := newFixture(t, 5)
	ctx := f.ctx()
	cands := BuildCandidates(ctx, f.view)
	got := MinExpectedCompletionTime{}.Choose(ctx, cands)
	min := math.Inf(1)
	for _, c := range cands {
		if c.ECT() < min {
			min = c.ECT()
		}
	}
	if got.ECT() != min {
		t.Fatalf("MECT chose ECT %v, want min %v", got.ECT(), min)
	}
	// On an idle cluster MECT must choose P0 somewhere (§VII: "MECT will
	// choose P0 to get a smaller completion time").
	if got.PState != cluster.P0 {
		t.Fatalf("MECT chose %v on idle cluster, want P0", got.PState)
	}
}

func TestLightestLoadChoose(t *testing.T) {
	f := newFixture(t, 6)
	ctx := f.ctx()
	cands := BuildCandidates(ctx, f.view)
	got := LightestLoad{}.Choose(ctx, cands)
	min := math.Inf(1)
	var want *Candidate
	for _, c := range cands {
		// Reference implementation of Eq. 5 with first-wins ties, matching
		// the documented paper-faithful tie-break.
		if l := c.EEC * (1 - c.Rho()); l < min {
			min, want = l, c
		}
	}
	if got != want {
		t.Fatalf("LL chose %v (L=%v), want %v (L=%v)",
			got.Assignment, got.EEC*(1-got.Rho()), want.Assignment, min)
	}
}

func TestLLPrefersLowEnergyWhenDeadlineGenerous(t *testing.T) {
	// With an extremely generous deadline every rho ≈ 1, so (1−ρ) ≈ 0 for
	// all candidates; with a hopeless deadline every rho ≈ 0 and LL
	// minimizes EEC — the congestion behaviour §VII describes.
	f := newFixture(t, 7)
	f.task.Deadline = f.task.Arrival - 1 // already missed
	ctx := f.ctx()
	cands := BuildCandidates(ctx, f.view)
	got := LightestLoad{}.Choose(ctx, cands)
	min := math.Inf(1)
	for _, c := range cands {
		if c.EEC < min {
			min = c.EEC
		}
	}
	if got.EEC != min {
		t.Fatalf("under hopeless deadline LL chose EEC %v, want min %v", got.EEC, min)
	}
}

func TestGreenLLTieBreaksToMinEEC(t *testing.T) {
	f := newFixture(t, 30)
	f.task.Deadline = f.task.Arrival + 50*f.model.TAvg() // everything certain: all L = 0
	ctx := f.ctx()
	cands := BuildCandidates(ctx, f.view)
	got := GreenLightestLoad{}.Choose(ctx, cands)
	minEEC := math.Inf(1)
	for _, c := range cands {
		if c.Rho() == 1 && c.EEC < minEEC {
			minEEC = c.EEC
		}
	}
	if got.Rho() != 1 || got.EEC != minEEC {
		t.Fatalf("GreenLL chose EEC %v rho %v, want min certain EEC %v", got.EEC, got.Rho(), minEEC)
	}
	// Plain LL keeps the first zero-load candidate instead.
	ll := LightestLoad{}.Choose(ctx, cands)
	if ll != cands[0] && ll.EEC*(1-ll.Rho()) != 0 {
		t.Fatalf("LL tie behaviour changed: %v", ll.Assignment)
	}
}

func TestPriorityLightestLoad(t *testing.T) {
	f := newFixture(t, 31)
	ctx := f.ctx()
	cands := BuildCandidates(ctx, f.view)
	// With priority 1, PLL must agree with LL exactly.
	ctx.Task.Priority = 1
	if (PriorityLightestLoad{}).Choose(ctx, cands) != (LightestLoad{}).Choose(ctx, cands) {
		t.Fatal("PLL with unit priority diverged from LL")
	}
	// Zero/negative priorities are treated as 1 (defensive).
	ctx.Task.Priority = 0
	if (PriorityLightestLoad{}).Choose(ctx, cands) == nil {
		t.Fatal("PLL returned nil")
	}
}

func TestPriorityLightestLoadWeightShiftsChoice(t *testing.T) {
	// A high priority must weigh the miss probability more: the chosen
	// assignment's rho can only rise (weakly) with priority, and its EEC
	// can only rise with it. Use a moderately tight deadline so rho varies
	// across candidates.
	f := newFixture(t, 34)
	f.task.Deadline = f.task.Arrival + 0.9*f.model.TAvg()
	ctx := f.ctx()
	cands := BuildCandidates(ctx, f.view)
	ctx.Task.Priority = 1
	base := PriorityLightestLoad{}.Choose(ctx, cands)
	ctx.Task.Priority = 8
	hot := PriorityLightestLoad{}.Choose(ctx, cands)
	if hot.Rho() < base.Rho() {
		t.Fatalf("priority 8 chose rho %v below priority-1 rho %v", hot.Rho(), base.Rho())
	}
	if hot.Rho() == base.Rho() && hot != base {
		// Equal rho would mean the weighting did nothing on this instance;
		// allow it only when the same candidate is chosen.
		t.Fatalf("priority changed choice without improving rho")
	}
}

func TestMaxRobustnessChoose(t *testing.T) {
	f := newFixture(t, 32)
	ctx := f.ctx()
	cands := BuildCandidates(ctx, f.view)
	got := MaxRobustness{}.Choose(ctx, cands)
	for _, c := range cands {
		if c.Rho() > got.Rho() {
			t.Fatalf("MaxRho chose rho %v but %v exists", got.Rho(), c.Rho())
		}
	}
	// Among equal-rho candidates it must not waste energy.
	for _, c := range cands {
		if c.Rho() == got.Rho() && c.EEC < got.EEC {
			t.Fatalf("MaxRho tie-break wasted energy: %v vs %v", got.EEC, c.EEC)
		}
	}
}

func TestMinEnergyChoose(t *testing.T) {
	f := newFixture(t, 33)
	ctx := f.ctx()
	cands := BuildCandidates(ctx, f.view)
	got := MinEnergy{}.Choose(ctx, cands)
	for _, c := range cands {
		if c.EEC < got.EEC {
			t.Fatalf("MinEEC chose %v but %v exists", got.EEC, c.EEC)
		}
	}
}

func TestExtensionNames(t *testing.T) {
	if (PriorityLightestLoad{}).Name() != "PLL" || !(PriorityLightestLoad{}).NeedsRho() {
		t.Fatal("PLL metadata wrong")
	}
	if (GreenLightestLoad{}).Name() != "GreenLL" || !(GreenLightestLoad{}).NeedsRho() {
		t.Fatal("GreenLL metadata wrong")
	}
	if (MaxRobustness{}).Name() != "MaxRho" || !(MaxRobustness{}).NeedsRho() {
		t.Fatal("MaxRho metadata wrong")
	}
	if (MinEnergy{}).Name() != "MinEEC" || (MinEnergy{}).NeedsRho() {
		t.Fatal("MinEEC metadata wrong")
	}
}

func TestRandomChoose(t *testing.T) {
	f := newFixture(t, 8)
	ctx := f.ctx()
	cands := BuildCandidates(ctx, f.view)
	seen := map[Assignment]bool{}
	for i := 0; i < 200; i++ {
		got := Random{}.Choose(ctx, cands)
		seen[got.Assignment] = true
	}
	if len(seen) < 10 {
		t.Fatalf("Random hit only %d distinct assignments in 200 draws", len(seen))
	}
	// Determinism under fixed stream.
	a := Random{}.Choose(&Context{Rand: randx.NewStream(5)}, cands)
	b := Random{}.Choose(&Context{Rand: randx.NewStream(5)}, cands)
	if a != b {
		t.Fatal("Random not deterministic for equal streams")
	}
}

func TestPaperZetaMulBands(t *testing.T) {
	cases := []struct{ depth, want float64 }{
		{0, 0.8}, {0.79, 0.8}, {0.8, 1.0}, {1.0, 1.0}, {1.2, 1.0}, {1.21, 1.2}, {5, 1.2},
	}
	for _, c := range cases {
		if got := PaperZetaMul(c.depth); got != c.want {
			t.Errorf("PaperZetaMul(%v) = %v, want %v", c.depth, got, c.want)
		}
	}
}

func TestEnergyFilterThreshold(t *testing.T) {
	f := newFixture(t, 9)
	ctx := f.ctx()
	ctx.EnergyLeft = 1000
	ctx.TasksLeft = 10
	ctx.AvgQueueDepth = 0.5 // ζ_mul = 0.8
	ef := EnergyFilter{}
	want := 0.8 * 1000 / 10
	if got := ef.Threshold(ctx); math.Abs(got-want) > 1e-12 {
		t.Fatalf("threshold %v, want %v", got, want)
	}
	ctx.TasksLeft = 0
	if !math.IsInf(ef.Threshold(ctx), 1) {
		t.Fatal("threshold with no tasks left should be +Inf")
	}
	ctx.TasksLeft = 10
	ctx.EnergyLeft = -5
	if ef.Threshold(ctx) != 0 {
		t.Fatal("threshold with exhausted estimate should be 0")
	}
}

func TestEnergyFilterKeep(t *testing.T) {
	f := newFixture(t, 10)
	ctx := f.ctx()
	cands := BuildCandidates(ctx, f.view)
	// Choose a budget that passes some candidates and rejects others.
	var eecs []float64
	for _, c := range cands {
		eecs = append(eecs, c.EEC)
	}
	mid := eecs[len(eecs)/2]
	ctx.AvgQueueDepth = 1.0 // ζ_mul = 1
	ctx.TasksLeft = 1
	ctx.EnergyLeft = mid
	ef := EnergyFilter{}
	kept, rejected := 0, 0
	for _, c := range cands {
		if ef.Keep(ctx, c) {
			kept++
			if c.EEC > mid {
				t.Fatalf("kept candidate with EEC %v above threshold %v", c.EEC, mid)
			}
		} else {
			rejected++
		}
	}
	if kept == 0 || rejected == 0 {
		t.Fatalf("degenerate filter split kept=%d rejected=%d", kept, rejected)
	}
}

func TestEnergyFilterCustomMul(t *testing.T) {
	ctx := &Context{EnergyLeft: 100, TasksLeft: 10, AvgQueueDepth: 99}
	ef := EnergyFilter{Mul: FixedZetaMul(2)}
	if got := ef.Threshold(ctx); math.Abs(got-20) > 1e-12 {
		t.Fatalf("threshold %v, want 20", got)
	}
}

func TestRobustnessFilterKeep(t *testing.T) {
	f := newFixture(t, 11)
	ctx := f.ctx()
	cands := BuildCandidates(ctx, f.view)
	rf := RobustnessFilter{}
	for _, c := range cands {
		want := c.Rho() >= PaperRhoThresh
		if rf.Keep(ctx, c) != want {
			t.Fatalf("robustness filter disagreement at rho %v", c.Rho())
		}
	}
	strict := RobustnessFilter{Thresh: 1.1} // impossible
	for _, c := range cands {
		if strict.Keep(ctx, c) {
			t.Fatal("threshold 1.1 should reject everything")
		}
	}
}

func TestMapperFiltersThenChooses(t *testing.T) {
	f := newFixture(t, 12)
	ctx := f.ctx()
	cands := BuildCandidates(ctx, f.view)
	m := &Mapper{Heuristic: MinExpectedCompletionTime{}, Filters: []Filter{RobustnessFilter{}}}
	got := m.Map(ctx, cands)
	if got == nil {
		t.Fatal("expected a feasible assignment")
	}
	if got.Rho() < PaperRhoThresh {
		t.Fatalf("mapper returned filtered-out candidate (rho %v)", got.Rho())
	}
}

func TestMapperDiscardsWhenAllFiltered(t *testing.T) {
	f := newFixture(t, 13)
	ctx := f.ctx()
	ctx.EnergyLeft = 0 // energy filter rejects everything
	cands := BuildCandidates(ctx, f.view)
	m := &Mapper{Heuristic: ShortestQueue{}, Filters: []Filter{EnergyFilter{}}}
	if got := m.Map(ctx, cands); got != nil {
		t.Fatalf("expected discard, got %v", got.Assignment)
	}
}

func TestMapperName(t *testing.T) {
	m := &Mapper{Heuristic: LightestLoad{}, Filters: []Filter{EnergyFilter{}, RobustnessFilter{}}}
	if m.Name() != "LL+en+rob" {
		t.Fatalf("name %q", m.Name())
	}
	m2 := &Mapper{Heuristic: Random{}}
	if m2.Name() != "Random" {
		t.Fatalf("name %q", m2.Name())
	}
}

func TestFilterVariants(t *testing.T) {
	wantNames := map[FilterVariant]string{
		NoFilter: "none", EnergyOnly: "en", RobustnessOnly: "rob", EnergyAndRobustness: "en+rob",
	}
	for v, want := range wantNames {
		if v.String() != want {
			t.Errorf("variant %d name %q, want %q", v, v.String(), want)
		}
	}
	if FilterVariant(99).String() != "unknown" {
		t.Error("unknown variant should stringify as unknown")
	}
	if len(NoFilter.Filters()) != 0 {
		t.Error("none variant should have no filters")
	}
	if len(EnergyAndRobustness.Filters()) != 2 {
		t.Error("en+rob should have two filters")
	}
	if len(AllFilterVariants()) != 4 {
		t.Error("expected 4 variants")
	}
}

func TestByNameAndAll(t *testing.T) {
	for _, h := range AllHeuristics() {
		if got := ByName(h.Name()); got == nil || got.Name() != h.Name() {
			t.Errorf("ByName(%q) failed", h.Name())
		}
	}
	if ByName("bogus") != nil {
		t.Error("ByName should return nil for unknown names")
	}
	if len(AllHeuristics()) != 4 {
		t.Error("expected 4 heuristics")
	}
}

func TestAssignmentString(t *testing.T) {
	a := Assignment{Core: cluster.CoreID{Node: 1, Proc: 2, Core: 3}, PState: cluster.P2}
	if a.String() != "n1.p2.c3@P2" {
		t.Fatalf("assignment string %q", a.String())
	}
}
