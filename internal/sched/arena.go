package sched

import (
	"repro/internal/pmf"
	"repro/internal/robustness"
)

// Arena is a caller-owned per-decision scratch that makes candidate
// enumeration allocation-free at steady state. BuildCandidates places the
// Candidate structs, the pointer slice it returns, and the per-core
// free-time shares in the arena's backing arrays instead of the heap;
// Mapper.Map filters the pointer slice in place. Each decision overwrites
// the previous one's storage, so candidates obtained through an arena are
// valid only until the next BuildCandidates call with the same arena — the
// engines consume the chosen candidate (Predict, enqueue) before the next
// decision, which is exactly that contract. Not safe for concurrent use;
// each engine owns one arena, matching its single-goroutine event loop.
type Arena struct {
	cands  []Candidate
	ptrs   []*Candidate
	shares []coreShare
}

// NewArena returns an empty arena; the first decision grows it to the
// cluster's candidate count and steady state reuses that storage.
func NewArena() *Arena { return &Arena{} }

// grow ensures capacity for maxCands candidates and nCores shares. The
// candidate array is sized fully up front because BuildCandidates takes
// interior pointers as it fills it — append-style regrowth would move the
// backing array out from under them.
func (a *Arena) grow(maxCands, nCores int) {
	if cap(a.cands) < maxCands {
		a.cands = make([]Candidate, maxCands)
	}
	a.cands = a.cands[:maxCands]
	if cap(a.ptrs) < maxCands {
		a.ptrs = make([]*Candidate, 0, maxCands)
	}
	if cap(a.shares) < nCores {
		a.shares = make([]coreShare, nCores)
	}
	a.shares = a.shares[:nCores]
}

// coreShare is the per-core slice of one decision's free-time memo: the
// queue snapshot plus a lazily materialized free-time distribution shared
// by all of the core's P-state candidates. It implements
// robustness.FreeSource as a pointer receiver, so handing it to the engine
// costs no closure allocation.
type coreShare struct {
	ft       *robustness.FreeTimeEngine
	calc     *robustness.Calculator
	counters *Counters
	idx      int
	q        robustness.CoreQueue
	now      float64
	head     pmf.PMF // precomputed head stage for the engine-less fallback
	cached   pmf.PMF
}

// FreePMF materializes (once) and returns the core's free-time
// distribution for this decision.
func (s *coreShare) FreePMF() pmf.PMF {
	hit := !s.cached.IsZero()
	s.counters.freeTime(hit)
	if !hit {
		if s.ft != nil {
			s.cached = s.ft.FreeTime(s.idx, s.q, s.now)
		} else {
			s.cached = s.calc.FreeTimeFrom(s.head, s.q, s.now)
		}
	}
	return s.cached
}
