package sched

// This file implements the four heuristics of §V-B through §V-E. All
// heuristics break exact ties deterministically in candidate order
// (core-major, P-state-minor) so trials are reproducible.

// ShortestQueue is the SQ heuristic (§V-B): assign to the feasible core
// with the fewest tasks currently assigned; break queue-length ties with
// the minimum expected execution time.
type ShortestQueue struct{}

// Name returns "SQ".
func (ShortestQueue) Name() string { return "SQ" }

// NeedsRho reports false: SQ reads only queue lengths and EET.
func (ShortestQueue) NeedsRho() bool { return false }

// Choose picks the minimum-queue candidate, tie-broken by minimum EET.
func (ShortestQueue) Choose(_ *Context, feasible []*Candidate) *Candidate {
	best := feasible[0]
	for _, c := range feasible[1:] {
		if c.QueueLen < best.QueueLen ||
			(c.QueueLen == best.QueueLen && c.EET < best.EET) {
			best = c
		}
	}
	return best
}

// MinExpectedCompletionTime is the MECT heuristic (§V-C): assign to the
// feasible (core, P-state) with the minimum expected completion time.
type MinExpectedCompletionTime struct{}

// Name returns "MECT".
func (MinExpectedCompletionTime) Name() string { return "MECT" }

// NeedsRho reports false: ECT is computed by linearity of expectation.
func (MinExpectedCompletionTime) NeedsRho() bool { return false }

// Choose picks the minimum-ECT candidate.
func (MinExpectedCompletionTime) Choose(_ *Context, feasible []*Candidate) *Candidate {
	best := feasible[0]
	bestECT := best.ECT()
	for _, c := range feasible[1:] {
		if ect := c.ECT(); ect < bestECT {
			best, bestECT = c, ect
		}
	}
	return best
}

// LightestLoad is the paper's new LL heuristic (§V-D): assign to the
// feasible (core, P-state) minimizing the load quantity
// L = EEC × (1 − ρ) (Eq. 5), balancing energy consumption against the
// probability of completing by the deadline.
type LightestLoad struct{}

// Name returns "LL".
func (LightestLoad) Name() string { return "LL" }

// NeedsRho reports true: the load quantity contains ρ.
func (LightestLoad) NeedsRho() bool { return true }

// Choose picks the minimum-load candidate per Eq. 5. Exact load ties —
// which occur whenever several assignments complete by the deadline with
// certainty, making L = 0 — keep the first candidate in enumeration order
// (P0 of the lowest-indexed core). The paper does not specify a tie-break;
// this naive reading reproduces its observed behaviour, where unfiltered LL
// performs on par with (slightly worse than) unfiltered SQ/MECT because it
// too burns high P-states whenever deadlines look safe, and degrades to
// minimum-energy choices only when congestion drives every ρ down (§VII).
// Breaking ties toward minimum EEC instead turns LL into a near-oracle that
// finishes almost everything (see the ablation bench), which contradicts
// the paper's Figure 4.
func (LightestLoad) Choose(_ *Context, feasible []*Candidate) *Candidate {
	best := feasible[0]
	bestL := best.EEC * (1 - best.Rho())
	for _, c := range feasible[1:] {
		if l := c.EEC * (1 - c.Rho()); l < bestL {
			best, bestL = c, l
		}
	}
	return best
}

// Random is the baseline heuristic (§V-E): assign to a feasible
// (core, P-state) chosen uniformly at random.
type Random struct{}

// Name returns "Random".
func (Random) Name() string { return "Random" }

// NeedsRho reports false.
func (Random) NeedsRho() bool { return false }

// Choose picks uniformly from the feasible set using the context's stream.
func (Random) Choose(ctx *Context, feasible []*Candidate) *Candidate {
	return feasible[ctx.Rand.IntN(len(feasible))]
}

// ByName returns the heuristic with the given name (SQ, MECT, LL, Random),
// or nil if unknown.
func ByName(name string) Heuristic {
	switch name {
	case "SQ":
		return ShortestQueue{}
	case "MECT":
		return MinExpectedCompletionTime{}
	case "LL":
		return LightestLoad{}
	case "Random":
		return Random{}
	}
	return nil
}

// AllHeuristics lists the four paper heuristics in presentation order
// (Figures 2–5).
func AllHeuristics() []Heuristic {
	return []Heuristic{ShortestQueue{}, MinExpectedCompletionTime{}, LightestLoad{}, Random{}}
}
