// Package sched implements §V of the paper: the immediate-mode resource
// allocation heuristics (Shortest Queue, Minimum Expected Completion Time,
// Lightest Load, Random) and the two generic filtering mechanisms (energy
// filter and robustness filter) that restrict the set of feasible
// assignments any heuristic may consider.
//
// An assignment maps a single task to a (node, multicore processor, core,
// P-state). A filter may eliminate every assignment, in which case the task
// is discarded (§V-A) and counts as a missed deadline.
package sched

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/pmf"
	"repro/internal/randx"
	"repro/internal/robustness"
	"repro/internal/workload"
)

// Assignment addresses one feasible mapping target: a core (by hierarchical
// ID and flat index) and a P-state.
type Assignment struct {
	Core    cluster.CoreID
	CoreIdx int
	PState  cluster.PState
}

// String renders the assignment compactly.
func (a Assignment) String() string { return fmt.Sprintf("%v@%v", a.Core, a.PState) }

// Candidate is one feasible assignment for the task being mapped, together
// with the quantities heuristics and filters consume. QueueLen, EET, and
// EEC are computed eagerly (they are cheap); the robustness value ρ is
// computed lazily on first use because it requires a pmf convolution.
type Candidate struct {
	Assignment
	// QueueLen is |MQ(i,j,k,t_l)|: tasks currently assigned to the core.
	QueueLen int
	// EET is the expected execution time of the task under this assignment.
	EET float64
	// EEC is the expected energy consumption (§V-A): EET·μ(i,π)/ε(i).
	EEC float64

	freeMean float64
	share    *coreShare
	deadline float64
	taskType int
	calc     *robustness.Calculator
	counters *Counters
	// ft, when non-nil, evaluates ρ through the cross-decision engine's
	// completion cache (against the engine's per-core recorded queue state)
	// instead of convolving free ⊛ exec per candidate.
	ft *robustness.FreeTimeEngine

	// rho memoizes Rho(); -1 (set by BuildCandidates) means not yet
	// computed. The sentinel instead of a bool keeps Candidate at 128
	// bytes — one allocation size class below the padded-bool layout,
	// which is measurable across 300 candidates per decision.
	rho float64
}

// ECT returns the expected completion time (§V-A). By linearity of
// expectation it is the core's expected free time plus EET, with no
// convolution needed.
func (c *Candidate) ECT() float64 { return c.freeMean + c.EET }

// Rho returns ρ(i,j,k,π,t_l,z): the probability of the task completing by
// its deadline under this assignment. The underlying completion-time
// convolution is performed once and cached.
func (c *Candidate) Rho() float64 {
	if c.rho < 0 {
		if c.ft != nil {
			c.rho = c.ft.RhoSeen(c.CoreIdx, c.taskType, c.PState, c.deadline, c.share)
		} else {
			c.rho = c.calc.ProbOnTime(c.share.FreePMF(), c.taskType, c.Core.Node, c.PState, c.deadline)
		}
		c.counters.addRho()
	}
	return c.rho
}

// Prediction is the scheduler's forecast for a chosen assignment at
// decision time: the robustness value ρ and a summary of the predicted
// completion-time distribution. The flight recorder persists it so the
// calibration stage can check predictions against observed outcomes.
type Prediction struct {
	// Rho is ρ(i,j,k,π,t_l,z): the predicted on-time probability.
	Rho float64
	// Mean, P50, and P99 summarize the predicted completion-time PMF
	// (absolute times, same axis as Arrival/Deadline).
	Mean, P50, P99 float64
}

// Predict evaluates the candidate's completion-time forecast: ρ plus the
// mean/median/p99 of the predicted completion distribution. Like Rho it
// convolves against the queue snapshot captured at BuildCandidates time, so
// it must be called before the chosen task is enqueued.
func (c *Candidate) Predict() Prediction {
	comp := c.calc.CompletionPMF(c.share.FreePMF(), c.taskType, c.Core.Node, c.PState)
	return Prediction{
		Rho:  c.Rho(),
		Mean: comp.Mean(),
		P50:  comp.Quantile(0.5),
		P99:  comp.Quantile(0.99),
	}
}

// Context is the information available to heuristics and filters when
// mapping one task at time-step t_l.
type Context struct {
	// Now is t_l, the decision instant (the task's arrival time).
	Now float64
	// Task is the task being mapped.
	Task workload.Task
	// Model is the fixed workload model.
	Model *workload.Model
	// Calc evaluates completion-time distributions.
	Calc *robustness.Calculator
	// EnergyLeft is ζ(t_l): the heuristic's running estimate of remaining
	// energy (budget minus the EEC of every assignment made so far, §V-F).
	EnergyLeft float64
	// TasksLeft is T_left(t_l): window tasks that have not yet arrived.
	TasksLeft int
	// AvgQueueDepth is the running time-average of per-core queue depth
	// (queued plus executing tasks divided by total cores), which selects
	// the energy filter's ζ_mul band.
	AvgQueueDepth float64
	// Rand drives the Random heuristic's choice.
	Rand *randx.Stream
	// Counters, when non-nil, receives hot-path instrumentation (candidate
	// enumeration, free-time cache traffic, filter rejections).
	Counters *Counters
	// FreeTimes, when non-nil, is the cross-decision incremental free-time
	// engine: BuildCandidates consults (and maintains) per-core cached
	// convolution chains instead of rebuilding every distribution from
	// scratch. Results are bit-identical either way; nil falls back to
	// per-decision derivation.
	FreeTimes *robustness.FreeTimeEngine

	// CoreUp, when non-nil, reports whether the core at a flat index is
	// currently up; BuildCandidates skips down cores entirely. Nil means
	// every core is up (the paper's fault-free world).
	CoreUp func(coreIdx int) bool
	// Availability, when non-nil, gives the steady-state probability that
	// the core at a flat index is up, for the reliability filter's ρ
	// discount. Nil means availability 1 everywhere.
	Availability func(coreIdx int) float64
	// PStateFloor, when above P0, restricts candidates to P-states at or
	// below it in speed (ps >= floor) — the brownout controller's lever for
	// forcing frugal dispatch as the budget drains.
	PStateFloor cluster.PState
	// ZetaMulOverride, when positive, caps the energy filter's ζ_mul at
	// min(schedule value, override) — the brownout controller's admission
	// tightening.
	ZetaMulOverride float64

	// Arena, when non-nil, is the caller-owned scratch BuildCandidates and
	// Map reuse across decisions, eliminating steady-state candidate
	// allocations. With an arena the candidate slice and the candidates it
	// points to are valid only until the next BuildCandidates call that
	// uses the same arena, and Map compacts the slice in place.
	Arena *Arena
}

// availability resolves the context's availability estimate for a core.
func (ctx *Context) availability(coreIdx int) float64 {
	if ctx.Availability == nil {
		return 1
	}
	return ctx.Availability(coreIdx)
}

// SystemView is the scheduler's read-only window into the simulator state.
type SystemView interface {
	// NumCores returns the number of cores in the cluster.
	NumCores() int
	// CoreID returns the hierarchical ID of the core at a flat index.
	CoreID(idx int) cluster.CoreID
	// Queue returns the core's current occupancy snapshot in FIFO order.
	Queue(idx int) robustness.CoreQueue
}

// BuildCandidates enumerates every (core, P-state) assignment for the
// context's task, precomputing queue lengths, EET, EEC, and the expected
// free time of each core. Per-core free-time distributions are shared and
// materialized lazily for candidates that need ρ.
func BuildCandidates(ctx *Context, view SystemView) []*Candidate {
	n := view.NumCores()
	arena := ctx.Arena
	var cands []*Candidate
	if arena != nil {
		arena.grow(n*cluster.NumPStates, n)
		cands = arena.ptrs[:0]
	} else {
		cands = make([]*Candidate, 0, n*cluster.NumPStates)
	}
	ctx.Counters.addDecision()
	for idx := 0; idx < n; idx++ {
		if ctx.CoreUp != nil && !ctx.CoreUp(idx) {
			continue
		}
		id := view.CoreID(idx)
		q := view.Queue(idx)
		node := ctx.Model.Cluster.Node(id)

		// The per-decision free-time memo (coreShare) shares one lazily
		// materialized distribution across the core's P-state candidates;
		// behind it sits either the cross-decision engine or a one-shot
		// derivation whose head PMF is shared with the linearity shortcut.
		var share *coreShare
		if arena != nil {
			share = &arena.shares[idx]
		} else {
			share = new(coreShare)
		}
		*share = coreShare{ft: ctx.FreeTimes, calc: ctx.Calc, counters: ctx.Counters, idx: idx, q: q, now: ctx.Now}
		var freeMean float64
		if share.ft != nil {
			freeMean = share.ft.FreeMean(idx, q, ctx.Now)
		} else {
			share.head = ctx.Calc.HeadPMF(q, ctx.Now)
			freeMean = freeMeanByLinearity(ctx, q, share.head)
		}
		for _, ps := range cluster.AllPStates() {
			if ps < ctx.PStateFloor {
				continue
			}
			eet := ctx.Model.ExecMean(ctx.Task.Type, id.Node, ps)
			var c *Candidate
			if arena != nil {
				c = &arena.cands[len(cands)]
			} else {
				c = new(Candidate)
			}
			// Field-wise assignment instead of a struct literal: the
			// literal's stack temporary plus 128-byte duffcopy is
			// measurable at 300 candidates per decision, and with an arena
			// every field must be overwritten anyway. ρ routes through the
			// engine's completion cache when one is attached: a repeat of
			// the same (type, P-state) against an unchanged chain costs no
			// convolution. The free-time access on a completion miss still
			// goes through the share so the per-decision cache counters
			// keep their meaning.
			c.Assignment = Assignment{Core: id, CoreIdx: idx, PState: ps}
			c.QueueLen = len(q.Tasks)
			c.EET = eet
			c.EEC = energy.ExpectedEnergy(node, ps, eet)
			c.freeMean = freeMean
			c.share = share
			c.deadline = ctx.Task.Deadline
			c.taskType = ctx.Task.Type
			c.calc = ctx.Calc
			c.counters = ctx.Counters
			c.ft = ctx.FreeTimes
			c.rho = -1
			cands = append(cands, c)
		}
	}
	if arena != nil {
		arena.ptrs = cands
	}
	ctx.Counters.addCandidates(len(cands))
	return cands
}

// freeMeanByLinearity computes E[free time] without convolutions: the
// truncated completion mean of the running task (if any) plus the execution
// means of the waiting tasks. head is the running task's truncated
// completion PMF (Calculator.HeadPMF) — derived once by the caller and
// shared with the full FreeTime chain, instead of each repeating the
// Shift+TruncateBelow work. It is the zero PMF when the queue is empty or
// the head task has not started.
func freeMeanByLinearity(ctx *Context, q robustness.CoreQueue, head pmf.PMF) float64 {
	if len(q.Tasks) == 0 {
		return ctx.Now
	}
	mean := 0.0
	for i, t := range q.Tasks {
		if i == 0 {
			if t.Started {
				mean = head.Mean()
			} else {
				mean = ctx.Now + ctx.Model.ExecMean(t.Type, q.Node, t.PState)
			}
			continue
		}
		mean += ctx.Model.ExecMean(t.Type, q.Node, t.PState)
	}
	return mean
}

// Heuristic selects one assignment from the feasible (post-filter) set.
type Heuristic interface {
	// Name identifies the heuristic in results and traces.
	Name() string
	// NeedsRho reports whether the heuristic reads Candidate.Rho, so the
	// mapper can skip convolution work entirely when it does not.
	NeedsRho() bool
	// Choose picks an assignment from a non-empty feasible set. The slice
	// is ordered deterministically (core-major, P-state-minor).
	Choose(ctx *Context, feasible []*Candidate) *Candidate
}

// Filter restricts the feasible assignment set (§V-F). Filters are generic:
// they can be applied to any heuristic.
type Filter interface {
	// Name identifies the filter in results and traces.
	Name() string
	// NeedsRho reports whether the filter reads Candidate.Rho.
	NeedsRho() bool
	// Keep reports whether the candidate remains feasible.
	Keep(ctx *Context, c *Candidate) bool
}

// Mapper combines a heuristic with zero or more filters into the complete
// immediate-mode mapping policy.
type Mapper struct {
	Heuristic Heuristic
	Filters   []Filter
}

// Name renders "heuristic" or "heuristic+f1+f2".
func (m *Mapper) Name() string {
	s := m.Heuristic.Name()
	for _, f := range m.Filters {
		s += "+" + f.Name()
	}
	return s
}

// Map applies the filters to the candidate set and lets the heuristic pick
// from the survivors. It returns nil when every assignment was filtered
// out, in which case the task is discarded (§V-A).
func (m *Mapper) Map(ctx *Context, cands []*Candidate) *Candidate {
	feasible := cands
	for i, f := range m.Filters {
		// With an arena the pointer slice is decision-scoped scratch, so
		// filtering compacts it in place; without one the original slice is
		// left untouched for the caller.
		kept := feasible[:0:0]
		if ctx.Arena != nil {
			kept = feasible[:0]
		}
		for _, c := range feasible {
			if f.Keep(ctx, c) {
				kept = append(kept, c)
			}
		}
		ctx.Counters.addRejections(i, len(feasible)-len(kept))
		feasible = kept
		if len(feasible) == 0 {
			ctx.Counters.addDiscard()
			return nil
		}
	}
	return m.Heuristic.Choose(ctx, feasible)
}
