package sched

import "math"

// This file contains extension policies beyond the paper's §V set,
// implementing the §VIII future-work directions so they can be studied with
// the same harness.

// PriorityLightestLoad extends LL (§V-D) to tasks with varying priorities
// (§VIII): the load quantity becomes L = EEC × (1−ρ)^w for task priority
// w, so a high-priority task weighs its miss probability more heavily and
// is steered toward assignments that complete on time even when they cost
// more energy. A uniform scaling of L (e.g. dividing by w) would not work:
// it preserves the argmin and degenerates to plain LL. With w = 1 the
// policy is exactly LL (including LL's first-wins tie-break).
type PriorityLightestLoad struct{}

// Name returns "PLL".
func (PriorityLightestLoad) Name() string { return "PLL" }

// NeedsRho reports true.
func (PriorityLightestLoad) NeedsRho() bool { return true }

// Choose minimizes EEC × (1 − ρ)^priority.
func (PriorityLightestLoad) Choose(ctx *Context, feasible []*Candidate) *Candidate {
	w := ctx.Task.Priority
	if w <= 0 {
		w = 1
	}
	load := func(c *Candidate) float64 {
		return c.EEC * math.Pow(1-c.Rho(), w)
	}
	best := feasible[0]
	bestL := load(best)
	for _, c := range feasible[1:] {
		if l := load(c); l < bestL {
			best, bestL = c, l
		}
	}
	return best
}

// GreenLightestLoad is LL with one change: exact load ties (L = 0, i.e.
// several assignments certain to meet the deadline) break toward the
// minimum expected energy consumption instead of enumeration order. This
// small repair of Eq. 5's degenerate case makes the heuristic dramatically
// stronger than anything in the paper — it runs tasks at the slowest
// P-state that is still certainly on time, conserving energy for the
// bursts. It is included as an extension/ablation to quantify how much the
// paper's LL leaves on the table.
type GreenLightestLoad struct{}

// Name returns "GreenLL".
func (GreenLightestLoad) Name() string { return "GreenLL" }

// NeedsRho reports true.
func (GreenLightestLoad) NeedsRho() bool { return true }

// Choose minimizes (EEC·(1−ρ), EEC) lexicographically.
func (GreenLightestLoad) Choose(_ *Context, feasible []*Candidate) *Candidate {
	best := feasible[0]
	bestL := best.EEC * (1 - best.Rho())
	for _, c := range feasible[1:] {
		l := c.EEC * (1 - c.Rho())
		if l < bestL || (l == bestL && c.EEC < best.EEC) {
			best, bestL = c, l
		}
	}
	return best
}

// MaxRobustness is a greedy upper-reference policy: it assigns each task
// where its probability of completing by its deadline is highest, ignoring
// energy entirely. §IV-C notes this maximizes ρ(t_l) for immediate-mode
// mapping; it is useful as a deadline-performance ceiling when studying how
// much the energy constraint costs.
type MaxRobustness struct{}

// Name returns "MaxRho".
func (MaxRobustness) Name() string { return "MaxRho" }

// NeedsRho reports true.
func (MaxRobustness) NeedsRho() bool { return true }

// Choose maximizes ρ; ties (e.g. several certain assignments) break toward
// lower EEC so the policy does not waste energy gratuitously.
func (MaxRobustness) Choose(_ *Context, feasible []*Candidate) *Candidate {
	best := feasible[0]
	for _, c := range feasible[1:] {
		if r, br := c.Rho(), best.Rho(); r > br || (r == br && c.EEC < best.EEC) {
			best = c
		}
	}
	return best
}

// MinEnergy is a greedy lower-reference policy: it always takes the
// feasible assignment with the smallest expected energy consumption,
// ignoring deadlines. It bounds how little energy immediate-mode mapping
// can spend.
type MinEnergy struct{}

// Name returns "MinEEC".
func (MinEnergy) Name() string { return "MinEEC" }

// NeedsRho reports false.
func (MinEnergy) NeedsRho() bool { return false }

// Choose minimizes EEC.
func (MinEnergy) Choose(_ *Context, feasible []*Candidate) *Candidate {
	best := feasible[0]
	for _, c := range feasible[1:] {
		if c.EEC < best.EEC {
			best = c
		}
	}
	return best
}
