package sched

import "math"

// This file implements the two generic filter mechanisms of §V-F.

// ZetaMulFunc maps the system's average queue depth to the energy filter's
// multiplier ζ_mul.
type ZetaMulFunc func(avgQueueDepth float64) float64

// PaperZetaMul is the adaptive ζ_mul schedule of §V-F: 0.8 for average
// queue depth below 0.8, 1.0 for depths in [0.8, 1.2], and 1.2 above 1.2.
// (The paper specifies 0.8→<0.8, 1.0→[0.8,1.0], 1.2→>1.2 and leaves
// (1.0, 1.2] open; we close the gap with 1.0, the adjacent band.)
func PaperZetaMul(avgQueueDepth float64) float64 {
	switch {
	case avgQueueDepth < 0.8:
		return 0.8
	case avgQueueDepth <= 1.2:
		return 1.0
	default:
		return 1.2
	}
}

// FixedZetaMul returns a ZetaMulFunc that ignores queue depth — used by the
// ζ_mul ablation study.
func FixedZetaMul(mul float64) ZetaMulFunc {
	return func(float64) float64 { return mul }
}

// EnergyFilter eliminates assignments whose expected energy consumption
// exceeds a "fair share" of the remaining energy budget (Eq. 6):
// ζ_fair(t_l) = ζ_mul × ζ(t_l) / T_left(t_l).
type EnergyFilter struct {
	// Mul selects ζ_mul from the average queue depth; nil means PaperZetaMul.
	Mul ZetaMulFunc
}

// Name returns "en".
func (EnergyFilter) Name() string { return "en" }

// NeedsRho reports false.
func (EnergyFilter) NeedsRho() bool { return false }

// Threshold returns ζ_fair(t_l) for the context. When no tasks remain
// unarrived the fair share is unbounded (every assignment passes); when the
// energy estimate is non-positive the threshold is zero and everything is
// eliminated, discarding the task.
func (f EnergyFilter) Threshold(ctx *Context) float64 {
	mul := f.Mul
	if mul == nil {
		mul = PaperZetaMul
	}
	if ctx.TasksLeft <= 0 {
		return math.Inf(1)
	}
	if ctx.EnergyLeft <= 0 {
		return 0
	}
	m := mul(ctx.AvgQueueDepth)
	if ctx.ZetaMulOverride > 0 && ctx.ZetaMulOverride < m {
		m = ctx.ZetaMulOverride
	}
	return m * ctx.EnergyLeft / float64(ctx.TasksLeft)
}

// Keep retains candidates with EEC at or below the fair share.
func (f EnergyFilter) Keep(ctx *Context, c *Candidate) bool {
	return c.EEC <= f.Threshold(ctx)
}

// PaperRhoThresh is ρ_thresh = 0.5, the probability threshold §V-F found to
// work well.
const PaperRhoThresh = 0.5

// RobustnessFilter eliminates assignments whose probability of completing
// the task by its deadline falls below the threshold (§V-F).
type RobustnessFilter struct {
	// Thresh is ρ_thresh; zero value means PaperRhoThresh.
	Thresh float64
}

// Name returns "rob".
func (RobustnessFilter) Name() string { return "rob" }

// NeedsRho reports true.
func (RobustnessFilter) NeedsRho() bool { return true }

// Keep retains candidates with ρ at or above the threshold.
func (f RobustnessFilter) Keep(_ *Context, c *Candidate) bool {
	t := f.Thresh
	if t == 0 {
		t = PaperRhoThresh
	}
	return c.Rho() >= t
}

// ReliabilityFilter eliminates assignments whose deadline probability,
// discounted by the target core's availability, falls below the threshold.
// Under fault injection a core that is up now may still fail before the
// task completes; availability·ρ is the probability the task both fits its
// deadline and lands on a core that stays up, under the steady-state
// up-fraction estimate of the configured transient-fault process. With no
// availability estimate in the context the filter reduces to the plain
// robustness filter.
type ReliabilityFilter struct {
	// Thresh is the availability·ρ threshold; zero value means
	// PaperRhoThresh.
	Thresh float64
}

// Name returns "rel".
func (ReliabilityFilter) Name() string { return "rel" }

// NeedsRho reports true.
func (ReliabilityFilter) NeedsRho() bool { return true }

// Keep retains candidates with availability·ρ at or above the threshold.
func (f ReliabilityFilter) Keep(ctx *Context, c *Candidate) bool {
	t := f.Thresh
	if t == 0 {
		t = PaperRhoThresh
	}
	avail := ctx.availability(c.CoreIdx)
	if avail <= 0 {
		return false
	}
	return avail*c.Rho() >= t
}

// EECCapFilter eliminates assignments whose expected energy consumption
// exceeds a fixed per-task ceiling. Unlike EnergyFilter, which derives its
// threshold from the remaining budget, the cap is absolute — it is the
// serving-path hook for requests that carry their own maxEnergy bound.
// A non-positive cap keeps everything (no constraint requested).
type EECCapFilter struct {
	// Cap is the maximum admissible EEC; <= 0 disables the filter.
	Cap float64
}

// Name returns "cap".
func (EECCapFilter) Name() string { return "cap" }

// NeedsRho reports false.
func (EECCapFilter) NeedsRho() bool { return false }

// Keep retains candidates with EEC at or below the cap.
func (f EECCapFilter) Keep(_ *Context, c *Candidate) bool {
	return f.Cap <= 0 || c.EEC <= f.Cap
}

// FilterVariant names one of the four filtering configurations evaluated in
// Figures 2–5.
type FilterVariant int

// The four variants, in the paper's presentation order.
const (
	// NoFilter is the unfiltered heuristic ("none").
	NoFilter FilterVariant = iota
	// EnergyOnly applies only the energy filter ("en").
	EnergyOnly
	// RobustnessOnly applies only the robustness filter ("rob").
	RobustnessOnly
	// EnergyAndRobustness applies both ("en+rob").
	EnergyAndRobustness
)

// String returns the paper's label for the variant.
func (v FilterVariant) String() string {
	switch v {
	case NoFilter:
		return "none"
	case EnergyOnly:
		return "en"
	case RobustnessOnly:
		return "rob"
	case EnergyAndRobustness:
		return "en+rob"
	}
	return "unknown"
}

// Filters instantiates the variant's filter chain with paper parameters.
func (v FilterVariant) Filters() []Filter {
	switch v {
	case EnergyOnly:
		return []Filter{EnergyFilter{}}
	case RobustnessOnly:
		return []Filter{RobustnessFilter{}}
	case EnergyAndRobustness:
		return []Filter{EnergyFilter{}, RobustnessFilter{}}
	}
	return nil
}

// AllFilterVariants lists the variants in the paper's presentation order.
func AllFilterVariants() []FilterVariant {
	return []FilterVariant{NoFilter, EnergyOnly, RobustnessOnly, EnergyAndRobustness}
}
