package sched

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/robustness"
)

// TestArenaMatchesFreshAllocation: running the same mapping decision with
// and without a caller-owned arena must pick the same assignment and score
// every candidate bit-identically — the arena changes where candidates
// live, never what they contain.
func TestArenaMatchesFreshAllocation(t *testing.T) {
	for _, grid := range []bool{false, true} {
		f := newFixture(t, 11)
		f.view.push(0, robustness.QueuedTask{Type: 1, PState: cluster.P0, Deadline: 1e9, Started: true, StartAt: 50})
		f.view.push(0, robustness.QueuedTask{Type: 3, PState: cluster.P1, Deadline: 1e9})
		f.view.push(2, robustness.QueuedTask{Type: 0, PState: cluster.P2, Deadline: 1e9})

		mkCtx := func(arena *Arena) *Context {
			ctx := f.ctx()
			eng := robustness.NewFreeTimeEngine(f.calc, f.view.NumCores())
			eng.SetGrid(grid)
			ctx.FreeTimes = eng
			ctx.Arena = arena
			return ctx
		}

		fresh := mkCtx(nil)
		want := BuildCandidates(fresh, f.view)

		arena := NewArena()
		m := &Mapper{Heuristic: LightestLoad{}, Filters: EnergyAndRobustness.Filters()}
		// Several rounds over the same arena: steady-state reuse must not
		// leak one decision's state into the next.
		for round := 0; round < 3; round++ {
			ctx := mkCtx(arena)
			got := BuildCandidates(ctx, f.view)
			if len(got) != len(want) {
				t.Fatalf("grid=%v round %d: %d candidates, want %d", grid, round, len(got), len(want))
			}
			for i := range want {
				if got[i].Core != want[i].Core || got[i].PState != want[i].PState {
					t.Fatalf("grid=%v round %d cand %d: (%v,%v) vs (%v,%v)",
						grid, round, i, got[i].Core, got[i].PState, want[i].Core, want[i].PState)
				}
				if got[i].EET != want[i].EET || got[i].EEC != want[i].EEC || got[i].ECT() != want[i].ECT() {
					t.Fatalf("grid=%v round %d cand %d: EET/EEC/ECT diverge", grid, round, i)
				}
				if g, w := got[i].Rho(), want[i].Rho(); g != w {
					t.Fatalf("grid=%v round %d cand %d: arena Rho %v, fresh Rho %v", grid, round, i, g, w)
				}
			}
		}

		// Full decision parity, including the in-place Map filter.
		freshCtx := mkCtx(nil)
		wantDec := m.Map(freshCtx, BuildCandidates(freshCtx, f.view))
		arenaCtx := mkCtx(arena)
		gotDec := m.Map(arenaCtx, BuildCandidates(arenaCtx, f.view))
		if (wantDec == nil) != (gotDec == nil) {
			t.Fatalf("grid=%v: map outcomes diverge: %v vs %v", grid, wantDec, gotDec)
		}
		if wantDec != nil {
			if gotDec.Core != wantDec.Core || gotDec.PState != wantDec.PState {
				t.Fatalf("grid=%v: arena chose (%v,%v), fresh chose (%v,%v)",
					grid, gotDec.Core, gotDec.PState, wantDec.Core, wantDec.PState)
			}
			if gotDec.Rho() != wantDec.Rho() || gotDec.ECT() != wantDec.ECT() {
				t.Fatalf("grid=%v: decision scores diverge: %+v vs %+v", grid, gotDec, wantDec)
			}
		}
	}
}

// TestArenaSteadyStateAllocs pins the tentpole's zero-alloc claim: once the
// arena has grown to the cluster's candidate count, a full
// enumerate-filter-score decision on the grid path stays allocation-free.
func TestArenaSteadyStateAllocs(t *testing.T) {
	f := newFixture(t, 12)
	f.view.push(0, robustness.QueuedTask{Type: 1, PState: cluster.P0, Deadline: 1e9, Started: true, StartAt: 80})
	f.view.push(1, robustness.QueuedTask{Type: 2, PState: cluster.P1, Deadline: 1e9})

	eng := robustness.NewFreeTimeEngine(f.calc, f.view.NumCores())
	eng.SetGrid(true)
	arena := NewArena()
	ctx := f.ctx()
	ctx.FreeTimes = eng
	ctx.Arena = arena
	m := &Mapper{Heuristic: LightestLoad{}, Filters: EnergyAndRobustness.Filters()}

	decide := func() {
		if c := m.Map(ctx, BuildCandidates(ctx, f.view)); c == nil {
			t.Fatal("decision filtered out every candidate")
		}
	}
	decide() // warm: grows the arena, fills engine caches
	if n := testing.AllocsPerRun(50, decide); n > 0 {
		t.Fatalf("steady-state decision allocates %v times, want 0", n)
	}
}
