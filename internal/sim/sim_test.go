package sim

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/randx"
	"repro/internal/sched"
	"repro/internal/workload"
)

// buildModel makes a small but real model: paper cluster shape, reduced
// type count and window so tests run in milliseconds.
func buildModel(t testing.TB, seed uint64, window int) *workload.Model {
	t.Helper()
	s := randx.NewStream(seed)
	c, err := cluster.Generate(s.Child("cluster"), cluster.PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	p := workload.PaperParams()
	p.TaskTypes = 10
	p.WindowSize = window
	p.BurstLen = window / 5
	p.PMFSamples = 300
	m, err := workload.BuildModel(s.Child("wl"), c, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func runOnce(t testing.TB, m *workload.Model, mapper *sched.Mapper, budget float64, trialSeed uint64, mut func(*Config)) *Result {
	t.Helper()
	tr, err := workload.GenerateTrial(randx.NewStream(trialSeed), m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: m, Mapper: mapper, EnergyBudget: budget, VerifyEnergy: true, Trace: true}
	if mut != nil {
		mut(&cfg)
	}
	res, err := Run(cfg, tr, randx.NewStream(trialSeed).Child("decisions"))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mapperFor(h sched.Heuristic, v sched.FilterVariant) *sched.Mapper {
	return &sched.Mapper{Heuristic: h, Filters: v.Filters()}
}

func TestRunUnconstrainedAccounting(t *testing.T) {
	m := buildModel(t, 1, 60)
	res := runOnce(t, m, mapperFor(sched.MinExpectedCompletionTime{}, sched.NoFilter), math.Inf(1), 7, nil)
	if res.Window != 60 {
		t.Fatalf("window %d", res.Window)
	}
	if res.EnergyExhausted {
		t.Fatal("unconstrained run reported exhaustion")
	}
	// No filters, no energy limit: every task is mapped and completes.
	if res.Mapped != 60 || res.Discarded != 0 || res.Unfinished != 0 {
		t.Fatalf("accounting wrong: %v", res)
	}
	if res.OnTime+res.Late != 60 {
		t.Fatalf("onTime %d + late %d != 60", res.OnTime, res.Late)
	}
	if res.Missed != res.Window-res.OnTime {
		t.Fatalf("missed %d inconsistent", res.Missed)
	}
	if res.EnergyConsumed <= 0 || res.Makespan <= 0 {
		t.Fatalf("degenerate run: %v", res)
	}
	if res.EnergyVerifyError > 1e-4 {
		t.Fatalf("meter drifted %v from Eq. 1/2 exact computation", res.EnergyVerifyError)
	}
}

func TestRunDeterministic(t *testing.T) {
	m := buildModel(t, 2, 50)
	a := runOnce(t, m, mapperFor(sched.Random{}, sched.EnergyAndRobustness), m.DefaultEnergyBudget(), 3, nil)
	b := runOnce(t, m, mapperFor(sched.Random{}, sched.EnergyAndRobustness), m.DefaultEnergyBudget(), 3, nil)
	if a.OnTime != b.OnTime || a.EnergyConsumed != b.EnergyConsumed || a.Makespan != b.Makespan {
		t.Fatalf("runs diverged: %v vs %v", a, b)
	}
}

func TestRunTraces(t *testing.T) {
	m := buildModel(t, 3, 50)
	res := runOnce(t, m, mapperFor(sched.ShortestQueue{}, sched.NoFilter), math.Inf(1), 11, nil)
	if len(res.Traces) != 50 {
		t.Fatalf("%d traces", len(res.Traces))
	}
	for i, tr := range res.Traces {
		if tr.Task.ID != i {
			t.Fatalf("trace %d has task %d", i, tr.Task.ID)
		}
		if !tr.Mapped {
			t.Fatalf("task %d unmapped in unfiltered run", i)
		}
		if tr.Outcome != OutcomeOnTime && tr.Outcome != OutcomeLate {
			t.Fatalf("task %d outcome %v in unconstrained run", i, tr.Outcome)
		}
		if tr.Finish < tr.Start || tr.Start < tr.Task.Arrival {
			t.Fatalf("task %d times inconsistent: arr %v start %v finish %v",
				i, tr.Task.Arrival, tr.Start, tr.Finish)
		}
		if tr.Outcome == OutcomeOnTime && tr.Finish > tr.Task.Deadline {
			t.Fatalf("task %d marked on-time but finished %v after deadline %v", i, tr.Finish, tr.Task.Deadline)
		}
		if tr.Outcome == OutcomeLate && tr.Finish <= tr.Task.Deadline {
			t.Fatalf("task %d marked late but met deadline", i)
		}
	}
}

func TestRunActualTimesMatchQuantiles(t *testing.T) {
	m := buildModel(t, 4, 40)
	res := runOnce(t, m, mapperFor(sched.MinExpectedCompletionTime{}, sched.NoFilter), math.Inf(1), 5, nil)
	for _, tr := range res.Traces {
		want := m.ActualExecTime(tr.Task, tr.Assignment.Core.Node, tr.Assignment.PState)
		if math.Abs((tr.Finish-tr.Start)-want) > 1e-9 {
			t.Fatalf("task %d ran %v, want pmf quantile %v", tr.Task.ID, tr.Finish-tr.Start, want)
		}
	}
}

func TestRunEnergyExhaustionHalts(t *testing.T) {
	m := buildModel(t, 5, 60)
	// A budget a fraction of the default forces exhaustion mid-run.
	res := runOnce(t, m, mapperFor(sched.MinExpectedCompletionTime{}, sched.NoFilter), m.DefaultEnergyBudget()*0.05, 9, nil)
	if !res.EnergyExhausted {
		t.Fatal("expected exhaustion under 5% budget")
	}
	if res.ExhaustedAt <= 0 || res.Makespan != res.ExhaustedAt {
		t.Fatalf("halt bookkeeping wrong: %v", res)
	}
	if math.Abs(res.EnergyConsumed-m.DefaultEnergyBudget()*0.05) > 1e-6*res.EnergyConsumed {
		t.Fatalf("consumed %v, want exactly the budget", res.EnergyConsumed)
	}
	if res.Unfinished == 0 {
		t.Fatal("exhaustion should strand tasks")
	}
	if res.OnTime+res.Late+res.Discarded+res.Unfinished+res.Cancelled != res.Window {
		t.Fatalf("outcome partition broken: %v", res)
	}
}

func TestRunBudgetBindsOutcome(t *testing.T) {
	m := buildModel(t, 6, 60)
	rich := runOnce(t, m, mapperFor(sched.MinExpectedCompletionTime{}, sched.NoFilter), math.Inf(1), 13, nil)
	poor := runOnce(t, m, mapperFor(sched.MinExpectedCompletionTime{}, sched.NoFilter), m.DefaultEnergyBudget()*0.05, 13, nil)
	if poor.OnTime >= rich.OnTime {
		t.Fatalf("5%% budget on-time %d not worse than unconstrained %d", poor.OnTime, rich.OnTime)
	}
}

func TestRunDiscardsWhenFiltersEliminate(t *testing.T) {
	m := buildModel(t, 7, 50)
	// Impossible robustness threshold discards every task.
	mapper := &sched.Mapper{
		Heuristic: sched.ShortestQueue{},
		Filters:   []sched.Filter{sched.RobustnessFilter{Thresh: 1.1}},
	}
	res := runOnce(t, m, mapper, math.Inf(1), 17, nil)
	if res.Discarded != res.Window {
		t.Fatalf("discarded %d, want all %d", res.Discarded, res.Window)
	}
	if res.Missed != res.Window || res.Mapped != 0 {
		t.Fatalf("accounting wrong: %v", res)
	}
	// Idle-only energy must still accrue.
	if res.EnergyConsumed <= 0 {
		t.Fatal("idle cluster consumed no energy")
	}
}

func TestRunWeightedOnTime(t *testing.T) {
	m := buildModel(t, 8, 50)
	tr, err := workload.GenerateTrialWithPriorities(randx.NewStream(23), m,
		[]workload.PriorityClass{{Weight: 5, Fraction: 0.3}, {Weight: 1, Fraction: 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: m, Mapper: mapperFor(sched.MinExpectedCompletionTime{}, sched.NoFilter), EnergyBudget: math.Inf(1), Trace: true}
	res, err := Run(cfg, tr, randx.NewStream(23).Child("d"))
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, trc := range res.Traces {
		if trc.Outcome == OutcomeOnTime {
			want += trc.Task.Priority
		}
	}
	if math.Abs(res.WeightedOnTime-want) > 1e-9 {
		t.Fatalf("weighted on-time %v, want %v", res.WeightedOnTime, want)
	}
	if res.WeightedOnTime <= float64(res.OnTime)-1e-9 {
		t.Fatalf("weights >1 present, weighted %v should exceed count %d", res.WeightedOnTime, res.OnTime)
	}
}

func TestRunCancelOverdueExtension(t *testing.T) {
	m := buildModel(t, 9, 80)
	// Tight deadlines: shrink load factor to force queue buildup and
	// overdue waiting tasks.
	p := m.Params
	p.LoadFactorMult = 0.05
	m2, err := workload.BuildModel(randx.NewStream(9).Child("wl2"), m.Cluster, p)
	if err != nil {
		t.Fatal(err)
	}
	// Pile everything on few cores via Random with a fixed seed; rely on
	// fast arrivals. Compare cancel vs no-cancel.
	base := runOnce(t, m2, mapperFor(sched.ShortestQueue{}, sched.NoFilter), math.Inf(1), 31, nil)
	cancel := runOnce(t, m2, mapperFor(sched.ShortestQueue{}, sched.NoFilter), math.Inf(1), 31,
		func(c *Config) { c.CancelOverdueWaiting = true })
	if base.Cancelled != 0 {
		t.Fatal("cancellation occurred without the extension enabled")
	}
	if cancel.Cancelled == 0 {
		t.Skip("no overdue waiting tasks materialized; extension untestable on this seed")
	}
	if cancel.OnTime+cancel.Late+cancel.Discarded+cancel.Unfinished+cancel.Cancelled != cancel.Window {
		t.Fatalf("cancel accounting broken: %v", cancel)
	}
}

func TestRunErrors(t *testing.T) {
	m := buildModel(t, 10, 30)
	tr, _ := workload.GenerateTrial(randx.NewStream(1), m)
	mapper := mapperFor(sched.ShortestQueue{}, sched.NoFilter)
	d := randx.NewStream(1)
	cases := []Config{
		{Model: nil, Mapper: mapper, EnergyBudget: 1},
		{Model: m, Mapper: nil, EnergyBudget: 1},
		{Model: m, Mapper: mapper, EnergyBudget: -5},
		{Model: m, Mapper: mapper, EnergyBudget: 1, IdlePState: cluster.PState(9)},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg, tr, d); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := Run(Config{Model: m, Mapper: mapper, EnergyBudget: 1}, nil, d); err == nil {
		t.Error("expected error for nil trial")
	}
	if _, err := Run(Config{Model: m, Mapper: mapper, EnergyBudget: 1}, tr, nil); err == nil {
		t.Error("expected error for nil decision stream")
	}
}

func TestRunZeroBudgetMeansUnconstrained(t *testing.T) {
	m := buildModel(t, 11, 30)
	res := runOnce(t, m, mapperFor(sched.ShortestQueue{}, sched.NoFilter), 0, 2, nil)
	if res.EnergyExhausted {
		t.Fatal("zero budget should mean unconstrained")
	}
}

func TestRunAllHeuristicVariantCombosComplete(t *testing.T) {
	m := buildModel(t, 12, 40)
	budget := m.DefaultEnergyBudget()
	for _, h := range sched.AllHeuristics() {
		for _, v := range sched.AllFilterVariants() {
			res := runOnce(t, m, mapperFor(h, v), budget, 41, nil)
			if res.OnTime+res.Late+res.Discarded+res.Unfinished+res.Cancelled != res.Window {
				t.Fatalf("%s/%s: outcome partition broken: %v", h.Name(), v, res)
			}
			if res.EnergyVerifyError > 1e-4 {
				t.Fatalf("%s/%s: energy accounting drifted %v", h.Name(), v, res.EnergyVerifyError)
			}
		}
	}
}

func TestOutcomeString(t *testing.T) {
	names := map[Outcome]string{
		OutcomeOnTime: "on-time", OutcomeLate: "late", OutcomeDiscarded: "discarded",
		OutcomeUnfinished: "unfinished", OutcomeCancelled: "cancelled", Outcome(99): "unknown",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("outcome %d string %q, want %q", o, o.String(), want)
		}
	}
}

func TestResultString(t *testing.T) {
	m := buildModel(t, 13, 30)
	res := runOnce(t, m, mapperFor(sched.ShortestQueue{}, sched.NoFilter), math.Inf(1), 2, nil)
	if res.String() == "" {
		t.Fatal("empty result string")
	}
}
