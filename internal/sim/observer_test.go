package sim

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/workload"
)

// logObserver appends a label per event into a shared log — the fixture for
// fan-out ordering and engine-parity tests.
type logObserver struct {
	name string
	log  *[]string
}

func (o logObserver) emit(kind string, task int) {
	*o.log = append(*o.log, fmt.Sprintf("%s:%s:%d", o.name, kind, task))
}

func (o logObserver) TaskMapped(_ float64, task workload.Task, _ sched.Assignment) {
	o.emit("mapped", task.ID)
}
func (o logObserver) TaskDiscarded(_ float64, task workload.Task) { o.emit("discarded", task.ID) }
func (o logObserver) TaskStarted(_ float64, task workload.Task, _ sched.Assignment) {
	o.emit("started", task.ID)
}
func (o logObserver) TaskFinished(_ float64, task workload.Task, _ sched.Assignment, _ bool) {
	o.emit("finished", task.ID)
}
func (o logObserver) PStateChanged(float64, cluster.CoreID, cluster.PState) { o.emit("pstate", -1) }
func (o logObserver) EnergyExhausted(float64)                               { o.emit("exhausted", -1) }

// energyLog additionally implements EnergyObserver.
type energyLog struct {
	logObserver
	samples *int
}

func (o energyLog) EnergySample(float64, float64, float64) { *o.samples++ }

// TestMultiObserverOrder: Multi must deliver every event to each observer
// in registration order before moving to the next event.
func TestMultiObserverOrder(t *testing.T) {
	m := buildModel(t, 60, 40)
	var log []string
	samples := 0
	a := energyLog{logObserver{name: "A", log: &log}, &samples}
	b := logObserver{name: "B", log: &log}
	runOnce(t, m, mapperFor(sched.LightestLoad{}, sched.NoFilter), math.Inf(1), 9, func(cfg *Config) {
		cfg.Observer = Multi(a, nil, b) // nils are dropped
	})
	if len(log) == 0 || len(log)%2 != 0 {
		t.Fatalf("log has %d entries, want a nonzero even count", len(log))
	}
	for i := 0; i < len(log); i += 2 {
		wantB := "B" + log[i][1:]
		if log[i][0] != 'A' || log[i+1] != wantB {
			t.Fatalf("event %d delivered out of order: %q then %q", i/2, log[i], log[i+1])
		}
	}
	if samples == 0 {
		t.Fatal("EnergyObserver member of Multi received no samples")
	}
}

func TestMultiDegenerateForms(t *testing.T) {
	if _, ok := Multi().(NopObserver); !ok {
		t.Fatal("Multi() should collapse to NopObserver")
	}
	var log []string
	o := logObserver{name: "A", log: &log}
	if got := Multi(o); got != Observer(o) {
		t.Fatal("Multi(single) should unwrap to the observer itself")
	}
	if _, ok := Multi(nil, nil).(NopObserver); !ok {
		t.Fatal("Multi(nil, nil) should collapse to NopObserver")
	}
}

// observe runs one trial with a logObserver attached and returns the event
// log plus the result.
func observeRun(t *testing.T, m *workload.Model, trialSeed uint64, mut func(*Config)) ([]string, *Result) {
	t.Helper()
	var log []string
	res := runOnce(t, m, nil, math.Inf(1), trialSeed, func(cfg *Config) {
		cfg.Observer = logObserver{name: "O", log: &log}
		if mut != nil {
			mut(cfg)
		}
	})
	return log, res
}

// TestEngineEventParity is the satellite-1 audit: for the same seed, the
// immediate-mode and central-queue engines must emit event streams of the
// same shape — per-kind counts agreeing with the Result accounting, and the
// per-task mapped→started→finished lifecycle in order — even though the
// schedules themselves differ.
func TestEngineEventParity(t *testing.T) {
	m := buildModel(t, 61, 50)
	const seed = 13

	immLog, immRes := observeRun(t, m, seed, func(cfg *Config) {
		cfg.Mapper = mapperFor(sched.LightestLoad{}, sched.NoFilter)
	})
	cenLog, cenRes := observeRun(t, m, seed, func(cfg *Config) {
		cfg.CentralQueue = EDFCheapest{}
	})

	for _, eng := range []struct {
		name string
		log  []string
		res  *Result
	}{{"immediate", immLog, immRes}, {"central", cenLog, cenRes}} {
		counts := map[string]int{}
		state := map[int]string{} // task -> last lifecycle stage
		for _, entry := range eng.log {
			counts[kindOf(entry)]++
			tid := taskOf(entry)
			switch kindOf(entry) {
			case "mapped":
				if prev, seen := state[tid]; seen {
					t.Fatalf("%s: task %d mapped after %s", eng.name, tid, prev)
				}
				state[tid] = "mapped"
			case "started":
				if state[tid] != "mapped" {
					t.Fatalf("%s: task %d started from state %q", eng.name, tid, state[tid])
				}
				state[tid] = "started"
			case "finished":
				if state[tid] != "started" {
					t.Fatalf("%s: task %d finished from state %q", eng.name, tid, state[tid])
				}
				state[tid] = "finished"
			}
		}
		if counts["mapped"] != eng.res.Mapped {
			t.Fatalf("%s: %d mapped events, result says %d", eng.name, counts["mapped"], eng.res.Mapped)
		}
		if counts["discarded"] != eng.res.Discarded {
			t.Fatalf("%s: %d discarded events, result says %d", eng.name, counts["discarded"], eng.res.Discarded)
		}
		if counts["finished"] != eng.res.OnTime+eng.res.Late {
			t.Fatalf("%s: %d finished events, result says %d",
				eng.name, counts["finished"], eng.res.OnTime+eng.res.Late)
		}
		if counts["started"] != counts["finished"] {
			t.Fatalf("%s: started %d != finished %d in a run-to-completion trial",
				eng.name, counts["started"], counts["finished"])
		}
		if counts["exhausted"] != 0 {
			t.Fatalf("%s: exhaustion event in an unconstrained run", eng.name)
		}
	}

	// Same shape across engines: both map and finish the full window.
	if immRes.Mapped != cenRes.Mapped {
		t.Fatalf("engines mapped different task counts: %d vs %d", immRes.Mapped, cenRes.Mapped)
	}
}

func kindOf(entry string) string {
	// entry is "N:kind:task"
	start := 2
	for i := start; i < len(entry); i++ {
		if entry[i] == ':' {
			return entry[start:i]
		}
	}
	return entry[start:]
}

func taskOf(entry string) int {
	for i := len(entry) - 1; i >= 0; i-- {
		if entry[i] == ':' {
			var id int
			fmt.Sscanf(entry[i+1:], "%d", &id)
			return id
		}
	}
	return -1
}

// resultKey projects a Result onto its value fields for equality checks
// (Traces compared separately — they are per-task structs).
func resultKey(r *Result) string {
	return fmt.Sprintf("%d/%d/%d/%d/%d/%d/%v/%v/%v/%v",
		r.Mapped, r.Discarded, r.OnTime, r.Late, r.Unfinished, r.Cancelled,
		r.EnergyConsumed, r.Makespan, r.EnergyExhausted, r.ExhaustedAt)
}

// TestObserversDoNotChangeResults is the satellite-6 determinism guard:
// attaching observers and a metrics registry must leave the simulation's
// outcome byte-identical for a fixed seed.
func TestObserversDoNotChangeResults(t *testing.T) {
	m := buildModel(t, 62, 50)
	mapper := func() *sched.Mapper { return mapperFor(sched.LightestLoad{}, sched.EnergyAndRobustness) }
	budget := m.DefaultEnergyBudget()

	base := runOnce(t, m, mapper(), budget, 17, nil)

	var log []string
	samples := 0
	instrumented := runOnce(t, m, mapper(), budget, 17, func(cfg *Config) {
		cfg.Metrics = metrics.NewRegistry()
		cfg.Observer = Multi(
			energyLog{logObserver{name: "A", log: &log}, &samples},
			logObserver{name: "B", log: &log},
		)
	})

	if resultKey(base) != resultKey(instrumented) {
		t.Fatalf("observers changed the outcome:\n  base         %s\n  instrumented %s",
			resultKey(base), resultKey(instrumented))
	}
	if !reflect.DeepEqual(base.Traces, instrumented.Traces) {
		t.Fatal("observers changed per-task traces")
	}

	// Same guard for the central-queue engine.
	cbase := runOnce(t, m, nil, budget, 18, func(cfg *Config) {
		cfg.CentralQueue = EDFCheapest{}
	})
	cinst := runOnce(t, m, nil, budget, 18, func(cfg *Config) {
		cfg.CentralQueue = EDFCheapest{}
		cfg.Metrics = metrics.NewRegistry()
		cfg.Observer = logObserver{name: "C", log: &log}
	})
	if resultKey(cbase) != resultKey(cinst) {
		t.Fatalf("central engine: observers changed the outcome:\n  base         %s\n  instrumented %s",
			resultKey(cbase), resultKey(cinst))
	}
}

// TestSimMetricsPopulated: a metrics-enabled run must account its events
// against the Result and capture scheduler instrumentation.
func TestSimMetricsPopulated(t *testing.T) {
	m := buildModel(t, 63, 50)
	reg := metrics.NewRegistry()
	res := runOnce(t, m, mapperFor(sched.LightestLoad{}, sched.EnergyAndRobustness),
		m.DefaultEnergyBudget(), 21, func(cfg *Config) { cfg.Metrics = reg })
	snap := reg.Snapshot()

	if v, _ := snap.Value("sim_tasks_total", metrics.L("outcome", "mapped")); int(v) != res.Mapped {
		t.Fatalf("mapped metric %v != result %d", v, res.Mapped)
	}
	if v, _ := snap.Value("sim_tasks_total", metrics.L("outcome", "discarded")); int(v) != res.Discarded {
		t.Fatalf("discarded metric %v != result %d", v, res.Discarded)
	}
	if v, _ := snap.Value("sched_decisions_total"); int(v) != res.Window {
		t.Fatalf("decisions %v != window %d", v, res.Window)
	}
	if v := snap.SumByName("sim_events_total"); v <= 0 {
		t.Fatal("no simulator events counted")
	}
	hits := snap.SumByName("robustness_freetime_cache_hits_total")
	misses := snap.SumByName("robustness_freetime_cache_misses_total")
	if hits+misses == 0 {
		t.Fatal("free-time cache saw no lookups")
	}
	if v, _ := snap.Value("sim_event_heap_high_water"); v < 1 {
		t.Fatalf("heap high-water %v", v)
	}
	if v, _ := snap.Value("energy_meter_consumed"); math.Abs(v-res.EnergyConsumed) > 1e-9 {
		t.Fatalf("consumed gauge %v != result %v", v, res.EnergyConsumed)
	}
	rej := 0.0
	for i := range snap.Metrics {
		if snap.Metrics[i].Name == "sched_filter_rejections_total" {
			rej += snap.Metrics[i].Value
		}
	}
	if res.Discarded > 0 && rej == 0 {
		t.Fatal("tasks were discarded but no filter rejections counted")
	}
}
