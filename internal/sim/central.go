package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/robustness"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Central-queue scheduling mode — the §VIII "ability to cancel and/or
// reschedule tasks" direction. Instead of committing each task to a core
// and P-state the instant it arrives (immediate mode, §III-B), arriving
// tasks wait in one cluster-wide pool and commit only when a core is ready
// to execute them. Deferring the decision lets the scheduler exploit
// everything it learns between arrival and start: which cores actually
// freed up, and how much energy remains.
//
// The mode reuses the engine's event loop: arrivals enter the pool, and a
// dispatch step greedily matches idle cores with pool tasks whenever
// either appears.

// PullPolicy decides, for an idle core, which pooled task to execute next
// and at which P-state. Implementations see the same robustness calculator
// the immediate-mode heuristics use.
type PullPolicy interface {
	// Name identifies the policy in results.
	Name() string
	// Select picks a task index from the pool (and a P-state) for the idle
	// core, or -1 to leave the core idle. pool is never empty. The engine
	// passes the node of the idle core, the current time, and the
	// heuristic-side remaining-energy estimate ζ(t_l).
	Select(calc *robustness.Calculator, pool []workload.Task, node int, now, energyLeft float64, tasksLeft int) (int, cluster.PState)
}

// EDFCheapest is the default pull policy: earliest deadline first, run at
// the cheapest P-state whose on-time probability still clears the
// threshold (default 0.5), or the fastest P-state when none does. It
// combines the robustness filter's idea with deadline ordering.
type EDFCheapest struct {
	// RhoThresh is the acceptable on-time probability (0 means 0.5).
	RhoThresh float64
}

// Name returns "EDFCheapest".
func (EDFCheapest) Name() string { return "EDFCheapest" }

// Select implements PullPolicy.
func (p EDFCheapest) Select(calc *robustness.Calculator, pool []workload.Task, node int, now, _ float64, _ int) (int, cluster.PState) {
	thresh := p.RhoThresh
	if thresh == 0 {
		thresh = 0.5
	}
	best := 0
	for i := 1; i < len(pool); i++ {
		if pool[i].Deadline < pool[best].Deadline {
			best = i
		}
	}
	task := pool[best]
	// The core is idle: completion distribution is the execution pmf
	// shifted to now. Walk from the cheapest state up.
	m := calc.Model()
	for ps := cluster.NumPStates - 1; ps >= 0; ps-- {
		state := cluster.PState(ps)
		rho := m.ExecPMF(task.Type, node, state).Shift(now).ProbByDeadline(task.Deadline)
		if rho >= thresh {
			return best, state
		}
	}
	return best, cluster.P0
}

// runCentral executes the central-queue variant of the simulation. It is
// selected by Config.CentralQueue.
type centralEngine struct {
	*engine
	policy PullPolicy
	pool   []workload.Task
	idle   map[int]bool
}

// validateCentral checks the central-queue configuration.
func validateCentral(cfg Config) error {
	if cfg.CentralQueue == nil {
		return nil
	}
	if cfg.Mapper != nil {
		return fmt.Errorf("sim: CentralQueue replaces the Mapper; configure exactly one")
	}
	if cfg.CancelOverdueWaiting {
		return fmt.Errorf("sim: CancelOverdueWaiting applies to per-core queues, not the central pool")
	}
	return nil
}

func (e *centralEngine) loopCentral() error {
	for e.events.Len() > 0 {
		if err := e.checkCancelled(); err != nil {
			return err
		}
		ev := popEvent(&e.events)
		if ev.kind == evFault && !e.faultWorkRemains() {
			continue // trailing fault; see engine.loop
		}
		e.depthIntegral += float64(e.inSystem+len(e.pool)) * (ev.time - e.lastT)
		e.lastT = ev.time
		at, exhausted := e.meter.Advance(ev.time)
		e.sampleEnergy(at)
		if exhausted {
			e.res.EnergyExhausted = true
			e.res.ExhaustedAt = at
			e.res.Makespan = at
			e.met.energyExhausted()
			e.cfg.Observer.EnergyExhausted(at)
			return nil
		}
		e.checkBrownout(at)
		e.met.event(ev.kind, e.inSystem+len(e.pool))
		switch ev.kind {
		case evArrival:
			e.arrived++
			task := e.trial.Tasks[ev.idx]
			e.pool = append(e.pool, task)
			e.dispatch(ev.time)
		case evCompletion:
			if !e.staleCompletion(ev) {
				e.completeCentral(ev.time, ev.idx)
			}
		case evPark:
			e.park(ev.idx, ev.gen)
		case evFault:
			e.handleFault(ev.time, ev.idx)
		case evRepair:
			e.handleRepair(ev.time, ev.idx)
		case evRequeue:
			e.handleRequeue(ev.time, ev.idx)
		}
		e.res.Makespan = ev.time
	}
	return nil
}

// dispatch matches idle cores to pool tasks until one side runs dry.
func (e *centralEngine) dispatch(now float64) {
	for len(e.pool) > 0 && len(e.idle) > 0 {
		// Deterministic idle-core order: lowest flat index first.
		coreIdx := -1
		for idx := range e.idle {
			if coreIdx == -1 || idx < coreIdx {
				coreIdx = idx
			}
		}
		node := e.cores[coreIdx].Node
		pick, ps := e.policy.Select(e.calc, e.pool, node, now, e.energyLeft, 0)
		if pick < 0 || pick >= len(e.pool) {
			return // policy declines; core stays idle
		}
		if e.bro != nil {
			// An active brownout stage floors dispatch at frugal P-states
			// regardless of what the pull policy asked for.
			if st := e.bro.Current(); st != nil && ps < st.PStateFloor {
				ps = st.PStateFloor
			}
		}
		task := e.pool[pick]
		e.pool = append(e.pool[:pick], e.pool[pick+1:]...)
		delete(e.idle, coreIdx)

		exec := e.cfg.Model.ExecPMF(task.Type, node, ps)
		eec := exec.Mean() * e.cfg.Model.Cluster.Node(e.cores[coreIdx]).Power[ps] /
			e.cfg.Model.Cluster.Node(e.cores[coreIdx]).Efficiency
		e.energyLeft -= eec
		e.res.Mapped++
		e.met.taskMapped()
		if e.dobs != nil {
			// The core is idle at dispatch, so the predicted completion
			// distribution is the execution pmf shifted to now — the same
			// quantity EDFCheapest evaluates when choosing the P-state.
			comp := exec.Shift(now)
			e.dobs.TaskDecision(now, task, e.assignment(coreIdx, ps), sched.Prediction{
				Rho:  comp.ProbByDeadline(task.Deadline),
				Mean: comp.Mean(),
				P50:  comp.Quantile(0.5),
				P99:  comp.Quantile(0.99),
			}, eec)
		}
		actual := e.cfg.Model.ActualExecTime(task, node, ps)
		// Central queues hold at most the running task, so no chain ever
		// spans more than the head: start() below invalidates the free-time
		// engine and no OnEnqueue extension is possible here.
		e.queues[coreIdx] = append(e.queues[coreIdx], queued{task: task, pstate: ps, actual: actual})
		e.inSystem++
		if e.cfg.Trace {
			tr := &e.res.Traces[task.ID]
			tr.Mapped = true
			tr.Assignment = e.assignment(coreIdx, ps)
		}
		e.cfg.Observer.TaskMapped(now, task, e.assignment(coreIdx, ps))
		e.start(now, coreIdx)
	}
}

func (e *centralEngine) completeCentral(now float64, coreIdx int) {
	e.complete(now, coreIdx)
	// complete() started the next per-core task if one existed; in central
	// mode per-core queues hold at most the running task, so the core is
	// idle now.
	if len(e.queues[coreIdx]) == 0 {
		e.idle[coreIdx] = true
		e.dispatch(now)
	}
}

func popEvent(h *eventHeap) event {
	return heap.Pop(h).(event)
}
