package sim

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/randx"
	"repro/internal/sched"
	"repro/internal/workload"
)

// faultSpec is the standard requeue-recovery transient process the tests
// use: frequent failures relative to t_avg so every seed exercises kills,
// retries, and losses.
func faultSpec(m *workload.Model) fault.Spec {
	return fault.Spec{
		Transient:  fault.Process{Enabled: true, Dist: fault.Exponential, MTBF: 2 * m.TAvg()},
		RepairTime: 0.3 * m.TAvg(),
		Recovery: fault.Recovery{
			Mode:          fault.Requeue,
			MaxRetries:    2,
			Backoff:       0.05 * m.TAvg(),
			DeadlineAware: true,
		},
	}
}

// faultPartition asserts the extended outcome partition of a faulty run.
func faultPartition(t *testing.T, label string, res *Result) {
	t.Helper()
	if res.OnTime+res.Late+res.Discarded+res.Unfinished+res.Cancelled+res.LostToFailure != res.Window {
		t.Fatalf("%s: outcome partition broken: %v (lost %d)", label, res, res.LostToFailure)
	}
	if res.Missed != res.Window-res.OnTime {
		t.Fatalf("%s: missed inconsistent: %v", label, res)
	}
}

func TestFaultRunTerminatesAndPartitions(t *testing.T) {
	m := buildModel(t, 80, 60)
	res := runOnce(t, m, mapperFor(sched.LightestLoad{}, sched.EnergyAndRobustness),
		m.DefaultEnergyBudget(), 3, func(c *Config) {
			c.VerifyEnergy = false
			c.Faults = faultSpec(m)
		})
	if res.Faults == 0 {
		t.Fatal("MTBF of 2·t_avg over a full window injected no faults")
	}
	faultPartition(t, "immediate", res)
	if res.TasksKilled > 0 && res.Retries == 0 && res.LostToFailure == 0 {
		t.Fatalf("killed %d tasks but neither retried nor lost any", res.TasksKilled)
	}
	if res.DownTime <= 0 {
		t.Fatalf("faults struck but DownTime %v", res.DownTime)
	}
}

func TestFaultRunCentralTerminatesAndPartitions(t *testing.T) {
	m := buildModel(t, 81, 60)
	tr, err := workload.GenerateTrial(randx.NewStream(5), m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Model: m, CentralQueue: EDFCheapest{}, EnergyBudget: m.DefaultEnergyBudget(),
		Trace: true, Faults: faultSpec(m),
	}
	res, err := Run(cfg, tr, randx.NewStream(5).Child("d"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == 0 {
		t.Fatal("no faults injected in central mode")
	}
	faultPartition(t, "central", res)
	if res.DownTime <= 0 {
		t.Fatalf("faults struck but DownTime %v", res.DownTime)
	}
}

// capturedEvent is one entry of the test observer's flat event log.
type capturedEvent struct {
	what string
	t    float64
	a, b int
}

// faultLogObserver records every observable event, including the fault and
// brownout extensions, for exact log comparison across runs.
type faultLogObserver struct {
	NopObserver
	log []capturedEvent
}

func (o *faultLogObserver) TaskMapped(t float64, task workload.Task, a sched.Assignment) {
	o.log = append(o.log, capturedEvent{"mapped", t, task.ID, int(a.PState)})
}
func (o *faultLogObserver) TaskDiscarded(t float64, task workload.Task) {
	o.log = append(o.log, capturedEvent{"discarded", t, task.ID, 0})
}
func (o *faultLogObserver) TaskStarted(t float64, task workload.Task, a sched.Assignment) {
	o.log = append(o.log, capturedEvent{"started", t, task.ID, int(a.PState)})
}
func (o *faultLogObserver) TaskFinished(t float64, task workload.Task, a sched.Assignment, onTime bool) {
	o.log = append(o.log, capturedEvent{"finished", t, task.ID, int(a.PState)})
}
func (o *faultLogObserver) CoreFailed(t float64, core cluster.CoreID, kind fault.Kind, repair float64) {
	o.log = append(o.log, capturedEvent{"failed/" + kind.String(), t, core.Node, core.Core})
}
func (o *faultLogObserver) CoreRepaired(t float64, core cluster.CoreID) {
	o.log = append(o.log, capturedEvent{"repaired", t, core.Node, core.Core})
}
func (o *faultLogObserver) TaskKilled(t float64, task workload.Task, core cluster.CoreID) {
	o.log = append(o.log, capturedEvent{"killed", t, task.ID, 0})
}
func (o *faultLogObserver) TaskRequeued(t float64, task workload.Task, attempt int) {
	o.log = append(o.log, capturedEvent{"requeued", t, task.ID, attempt})
}
func (o *faultLogObserver) BrownoutStageChanged(t float64, stage int, frac float64) {
	o.log = append(o.log, capturedEvent{"brownout", t, stage, 0})
}

// TestFaultDeterminism is the issue's acceptance criterion: with a fixed
// fault spec, two runs from the same seed produce identical event logs and
// metrics — in both engines.
func TestFaultDeterminism(t *testing.T) {
	m := buildModel(t, 82, 60)
	for _, central := range []bool{false, true} {
		var logs [2][]capturedEvent
		var results [2]*Result
		for rep := 0; rep < 2; rep++ {
			tr, err := workload.GenerateTrial(randx.NewStream(7), m)
			if err != nil {
				t.Fatal(err)
			}
			obs := &faultLogObserver{}
			fs := faultSpec(m)
			fs.Transient.MTBF = 0.4 * m.TAvg() // hammer the run so every seed faults
			cfg := Config{
				Model:        m,
				EnergyBudget: m.DefaultEnergyBudget(),
				Trace:        true,
				Observer:     obs,
				Faults:       fs,
				Brownout:     energy.DefaultBrownoutStages(),
			}
			if central {
				cfg.CentralQueue = EDFCheapest{}
			} else {
				cfg.Mapper = mapperFor(sched.LightestLoad{}, sched.EnergyAndRobustness)
			}
			res, err := Run(cfg, tr, randx.NewStream(7).Child("d"))
			if err != nil {
				t.Fatal(err)
			}
			logs[rep] = obs.log
			results[rep] = res
		}
		mode := map[bool]string{false: "immediate", true: "central"}[central]
		if !reflect.DeepEqual(logs[0], logs[1]) {
			t.Fatalf("%s: event logs diverged across same-seed runs (%d vs %d events)",
				mode, len(logs[0]), len(logs[1]))
		}
		if !reflect.DeepEqual(results[0], results[1]) {
			t.Fatalf("%s: results diverged: %v vs %v", mode, results[0], results[1])
		}
		if results[0].Faults == 0 {
			t.Fatalf("%s: determinism test exercised no faults", mode)
		}
	}
}

// TestFaultsDisabledBitIdentity is the other acceptance criterion: the
// fault-free, hard-halt configuration must be unaffected by the existence
// of the fault subsystem. A spec whose first failure falls beyond any
// reachable makespan must reproduce the disabled run bit for bit (the fault
// machinery consumes only its own child streams and its trailing event is
// dropped).
func TestFaultsDisabledBitIdentity(t *testing.T) {
	m := buildModel(t, 83, 50)
	run := func(mut func(*Config)) *Result {
		return runOnce(t, m, mapperFor(sched.LightestLoad{}, sched.EnergyAndRobustness),
			m.DefaultEnergyBudget(), 11, mut)
	}
	base := run(func(c *Config) { c.VerifyEnergy = false })
	far := run(func(c *Config) {
		c.VerifyEnergy = false
		c.Faults = fault.Spec{
			Transient:  fault.Process{Enabled: true, Dist: fault.Exponential, MTBF: 1e12},
			RepairTime: 1,
			Recovery:   fault.Recovery{Mode: fault.Drop},
		}
	})
	if base.OnTime != far.OnTime || base.Late != far.Late || base.Discarded != far.Discarded ||
		base.Mapped != far.Mapped || base.EnergyConsumed != far.EnergyConsumed ||
		base.Makespan != far.Makespan {
		t.Fatalf("never-firing fault process perturbed the run:\n  base %v\n  far  %v", base, far)
	}
	for i := range base.Traces {
		if base.Traces[i] != far.Traces[i] {
			t.Fatalf("task %d trace differs: %v vs %v", i, base.Traces[i], far.Traces[i])
		}
	}
}

// TestScriptedFaultParity runs the same scripted fault trace through both
// engines: each must register exactly the scripted failures, keep the
// extended outcome partition, and account DownTime for the repair interval.
func TestScriptedFaultParity(t *testing.T) {
	m := buildModel(t, 84, 50)
	spec := fault.Spec{
		RepairTime: 0.5 * m.TAvg(),
		Script: []fault.Scripted{
			{Time: 0.2 * m.TAvg(), Kind: fault.Transient, Core: 0},
			{Time: 0.4 * m.TAvg(), Kind: fault.Transient, Core: 1, Repair: 0.25 * m.TAvg()},
		},
		Recovery: fault.Recovery{Mode: fault.Requeue, MaxRetries: 3, Backoff: 0.02 * m.TAvg()},
	}
	for _, central := range []bool{false, true} {
		tr, err := workload.GenerateTrial(randx.NewStream(13), m)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Model: m, EnergyBudget: math.Inf(1), Trace: true, Faults: spec}
		if central {
			cfg.CentralQueue = EDFCheapest{}
		} else {
			cfg.Mapper = mapperFor(sched.LightestLoad{}, sched.NoFilter)
		}
		res, err := Run(cfg, tr, randx.NewStream(13).Child("d"))
		if err != nil {
			t.Fatal(err)
		}
		mode := map[bool]string{false: "immediate", true: "central"}[central]
		if res.Faults != 2 {
			t.Fatalf("%s: %d faults, want the 2 scripted", mode, res.Faults)
		}
		faultPartition(t, mode, res)
		// Both cores were down for their full repair windows (0.5 + 0.25
		// t_avg), well before the window ends.
		if want := 0.75 * m.TAvg(); math.Abs(res.DownTime-want) > 1e-9 {
			t.Fatalf("%s: DownTime %v, want %v", mode, res.DownTime, want)
		}
	}
}

func TestPermanentNodeFailuresTerminate(t *testing.T) {
	m := buildModel(t, 85, 50)
	// Script every node to die early: the run must still drain, with the
	// stranded work lost and DownTime accruing to the end of the run.
	var script []fault.Scripted
	for n := 0; n < m.Cluster.N(); n++ {
		script = append(script, fault.Scripted{Time: 0.1 * m.TAvg() * float64(n+1), Kind: fault.Permanent, Node: n})
	}
	spec := fault.Spec{Script: script, Recovery: fault.Recovery{Mode: fault.Requeue, MaxRetries: 1, Backoff: 1}}
	for _, central := range []bool{false, true} {
		tr, err := workload.GenerateTrial(randx.NewStream(17), m)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Model: m, EnergyBudget: math.Inf(1), Trace: true, Faults: spec}
		if central {
			cfg.CentralQueue = EDFCheapest{}
		} else {
			cfg.Mapper = mapperFor(sched.ShortestQueue{}, sched.NoFilter)
		}
		res, err := Run(cfg, tr, randx.NewStream(17).Child("d"))
		if err != nil {
			t.Fatal(err)
		}
		mode := map[bool]string{false: "immediate", true: "central"}[central]
		if res.Faults != m.Cluster.N() {
			t.Fatalf("%s: %d faults, want %d node deaths", mode, res.Faults, m.Cluster.N())
		}
		faultPartition(t, mode, res)
		if res.OnTime == res.Window {
			t.Fatalf("%s: every task on time despite total cluster death", mode)
		}
		if res.DownTime <= 0 {
			t.Fatalf("%s: no DownTime despite permanent failures", mode)
		}
	}
}

// TestStochasticPermanentProcess exercises the Weibull-distributed
// node-failure process end to end.
func TestStochasticPermanentProcess(t *testing.T) {
	m := buildModel(t, 86, 50)
	res := runOnce(t, m, mapperFor(sched.ShortestQueue{}, sched.NoFilter), math.Inf(1), 19,
		func(c *Config) {
			c.VerifyEnergy = false
			c.Faults = fault.Spec{
				Permanent: fault.Process{Enabled: true, Dist: fault.Weibull, MTBF: 3 * m.TAvg(), Shape: 1.5},
				Recovery:  fault.Recovery{Mode: fault.Drop},
			}
		})
	if res.Faults == 0 {
		t.Skip("no node failure materialized on this seed")
	}
	faultPartition(t, "weibull-permanent", res)
	if res.Retries != 0 {
		t.Fatalf("drop recovery retried %d tasks", res.Retries)
	}
	if res.TasksKilled > 0 && res.LostToFailure == 0 {
		t.Fatalf("killed %d but lost none under drop recovery", res.TasksKilled)
	}
}

func TestRecoveryDropVersusRequeue(t *testing.T) {
	m := buildModel(t, 87, 60)
	spec := fault.Spec{
		RepairTime: 0.3 * m.TAvg(),
		Script: []fault.Scripted{
			{Time: 0.3 * m.TAvg(), Kind: fault.Transient, Core: 0},
			{Time: 0.35 * m.TAvg(), Kind: fault.Transient, Core: 2},
			{Time: 0.4 * m.TAvg(), Kind: fault.Transient, Core: 4},
		},
	}
	run := func(rec fault.Recovery) *Result {
		s := spec
		s.Recovery = rec
		return runOnce(t, m, mapperFor(sched.ShortestQueue{}, sched.NoFilter), math.Inf(1), 23,
			func(c *Config) {
				c.VerifyEnergy = false
				c.Faults = s
			})
	}
	drop := run(fault.Recovery{Mode: fault.Drop})
	requeue := run(fault.Recovery{Mode: fault.Requeue, MaxRetries: 3, Backoff: 0.01 * m.TAvg()})
	if drop.TasksKilled == 0 {
		t.Skip("scripted faults struck idle cores on this seed")
	}
	// Drop loses every stranded task (running and waiting); requeue must
	// retry and can only lose what re-admission rejects past the bound.
	if drop.Retries != 0 || drop.LostToFailure == 0 {
		t.Fatalf("drop recovery: retries %d, lost %d", drop.Retries, drop.LostToFailure)
	}
	if requeue.Retries == 0 {
		t.Fatalf("requeue recovery never retried (killed %d)", requeue.TasksKilled)
	}
	if requeue.LostToFailure >= drop.LostToFailure+requeue.TasksKilled-drop.TasksKilled && requeue.LostToFailure > 0 {
		// Weak sanity bound; mainly assert requeue saves at least one task
		// relative to dropping everything it killed.
		if requeue.LostToFailure >= requeue.TasksKilled {
			t.Fatalf("requeue lost %d of %d killed — retries saved nothing", requeue.LostToFailure, requeue.TasksKilled)
		}
	}
	faultPartition(t, "drop", drop)
	faultPartition(t, "requeue", requeue)
}

func TestBrownoutStagesEngage(t *testing.T) {
	m := buildModel(t, 88, 60)
	// A tight budget drives consumption through every threshold.
	budget := m.DefaultEnergyBudget() * 0.4
	hard := runOnce(t, m, mapperFor(sched.MinExpectedCompletionTime{}, sched.NoFilter), budget, 29,
		func(c *Config) { c.VerifyEnergy = false })
	brown := runOnce(t, m, mapperFor(sched.MinExpectedCompletionTime{}, sched.NoFilter), budget, 29,
		func(c *Config) {
			c.VerifyEnergy = false
			c.Brownout = energy.DefaultBrownoutStages()
		})
	if !hard.EnergyExhausted {
		t.Fatal("40% budget did not exhaust the hard-halt run")
	}
	if brown.BrownoutStage == 0 {
		t.Fatal("brownout run tripped no stage under a 40% budget")
	}
	if brown.EnergyConsumed > budget*(1+1e-9) {
		t.Fatalf("brownout overspent: %v > %v", brown.EnergyConsumed, budget)
	}
	if hard.BrownoutStage != 0 {
		t.Fatalf("hard-halt run reports brownout stage %d", hard.BrownoutStage)
	}
}

func TestBrownoutFloorsDispatchPStates(t *testing.T) {
	m := buildModel(t, 89, 60)
	budget := m.DefaultEnergyBudget() * 0.5
	stages := []energy.BrownoutStage{{Frac: 0.05, ZetaMul: 1, PStateFloor: cluster.P3}}
	res := runOnce(t, m, mapperFor(sched.MinExpectedCompletionTime{}, sched.NoFilter), budget, 31,
		func(c *Config) {
			c.VerifyEnergy = false
			c.Brownout = stages
		})
	if res.BrownoutStage != 1 {
		t.Fatalf("stage %d, want 1", res.BrownoutStage)
	}
	// After the (very early) trip, every new assignment must run at P3+.
	floored := 0
	for _, tr := range res.Traces {
		if tr.Mapped && tr.Start > 0 && tr.Assignment.PState < cluster.P3 &&
			tr.Task.Arrival > res.Makespan*0.2 {
			t.Fatalf("task %d mapped at %v after the floor engaged", tr.Task.ID, tr.Assignment.PState)
		}
		if tr.Mapped && tr.Assignment.PState >= cluster.P3 {
			floored++
		}
	}
	if floored == 0 {
		t.Fatal("no assignment at or above the floor")
	}
}

func TestFaultConfigValidation(t *testing.T) {
	m := buildModel(t, 90, 30)
	tr, _ := workload.GenerateTrial(randx.NewStream(1), m)
	d := randx.NewStream(1)
	mapper := mapperFor(sched.ShortestQueue{}, sched.NoFilter)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"verify+faults", Config{Model: m, Mapper: mapper, EnergyBudget: 1, VerifyEnergy: true,
			Faults: fault.Spec{Transient: fault.Process{Enabled: true, MTBF: 10}, RepairTime: 1}}},
		{"invalid spec", Config{Model: m, Mapper: mapper, EnergyBudget: 1,
			Faults: fault.Spec{Transient: fault.Process{Enabled: true, MTBF: -1}, RepairTime: 1}}},
		{"script core out of range", Config{Model: m, Mapper: mapper, EnergyBudget: 1,
			Faults: fault.Spec{RepairTime: 1, Script: []fault.Scripted{{Time: 1, Core: 10000}}}}},
		{"bad brownout stages", Config{Model: m, Mapper: mapper, EnergyBudget: 1,
			Brownout: []energy.BrownoutStage{{Frac: 0.9}, {Frac: 0.5}}}},
		{"brownout without budget", Config{Model: m, Mapper: mapper, EnergyBudget: math.Inf(1),
			Brownout: energy.DefaultBrownoutStages()}},
		{"verify+parkidle brownout", Config{Model: m, Mapper: mapper, EnergyBudget: 1, VerifyEnergy: true,
			Brownout: energy.DefaultBrownoutStages()}},
	}
	for _, c := range cases {
		if _, err := Run(c.cfg, tr, d); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestFaultObserverFanOut(t *testing.T) {
	m := buildModel(t, 91, 50)
	a, b := &faultLogObserver{}, &faultLogObserver{}
	tr, err := workload.GenerateTrial(randx.NewStream(37), m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Model: m, Mapper: mapperFor(sched.ShortestQueue{}, sched.NoFilter),
		EnergyBudget: math.Inf(1), Observer: Multi(a, b),
		Faults: fault.Spec{
			RepairTime: 0.2 * m.TAvg(),
			Script:     []fault.Scripted{{Time: 0.3 * m.TAvg(), Kind: fault.Transient, Core: 0}},
			Recovery:   fault.Recovery{Mode: fault.Requeue, MaxRetries: 2, Backoff: 1},
		},
	}
	if _, err := Run(cfg, tr, randx.NewStream(37).Child("d")); err != nil {
		t.Fatal(err)
	}
	if len(a.log) == 0 || !reflect.DeepEqual(a.log, b.log) {
		t.Fatalf("fan-out diverged: %d vs %d events", len(a.log), len(b.log))
	}
	seen := map[string]bool{}
	for _, ev := range a.log {
		seen[ev.what] = true
	}
	if !seen["failed/transient"] || !seen["repaired"] {
		t.Fatalf("fault extension events missing from fan-out: %v", fmt.Sprint(seen))
	}
}
