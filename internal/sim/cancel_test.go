package sim

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/randx"
	"repro/internal/sched"
	"repro/internal/workload"
)

// cancelAfter is an observer that cancels a context after n mapped tasks,
// exercising mid-run cancellation from inside the event loop.
type cancelAfter struct {
	NopObserver
	n      int
	seen   int
	cancel context.CancelFunc
}

func (c *cancelAfter) TaskMapped(t float64, task workload.Task, a sched.Assignment) {
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	m := buildModel(t, 1, 60)
	tr, err := workload.GenerateTrial(randx.NewStream(7), m)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Model: m, Mapper: mapperFor(sched.LightestLoad{}, sched.NoFilter), EnergyBudget: math.Inf(1)}
	res, err := RunContext(ctx, cfg, tr, randx.NewStream(7).Child("decisions"))
	if res != nil {
		t.Fatalf("cancelled run leaked a result: %v", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	m := buildModel(t, 1, 120)
	tr, err := workload.GenerateTrial(randx.NewStream(7), m)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := &cancelAfter{n: 10, cancel: cancel}
	cfg := Config{
		Model:        m,
		Mapper:       mapperFor(sched.LightestLoad{}, sched.NoFilter),
		EnergyBudget: math.Inf(1),
		Observer:     obs,
	}
	res, err := RunContext(ctx, cfg, tr, randx.NewStream(7).Child("decisions"))
	if res != nil || err == nil {
		t.Fatalf("mid-run cancellation: res=%v err=%v, want nil result + error", res, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if obs.seen < 10 {
		t.Fatalf("run aborted after %d mapped tasks, before the cancellation fired", obs.seen)
	}
}

func TestRunContextDeadline(t *testing.T) {
	m := buildModel(t, 1, 60)
	tr, err := workload.GenerateTrial(randx.NewStream(7), m)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	cfg := Config{Model: m, Mapper: mapperFor(sched.LightestLoad{}, sched.NoFilter), EnergyBudget: math.Inf(1)}
	_, err = RunContext(ctx, cfg, tr, randx.NewStream(7).Child("decisions"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunContextCentralCancelled(t *testing.T) {
	m := buildModel(t, 1, 60)
	tr, err := workload.GenerateTrial(randx.NewStream(7), m)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Model: m, CentralQueue: EDFCheapest{}, EnergyBudget: math.Inf(1)}
	res, err := RunContext(ctx, cfg, tr, randx.NewStream(7).Child("decisions"))
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("central cancel: res=%v err=%v", res, err)
	}
}

// TestRunMatchesRunContext pins the compatibility contract: Run is exactly
// RunContext with a background context, bit for bit.
func TestRunMatchesRunContext(t *testing.T) {
	m := buildModel(t, 1, 60)
	tr, err := workload.GenerateTrial(randx.NewStream(7), m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: m, Mapper: mapperFor(sched.ShortestQueue{}, sched.EnergyAndRobustness), EnergyBudget: m.DefaultEnergyBudget()}
	a, err := Run(cfg, tr, randx.NewStream(7).Child("decisions"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg, tr, randx.NewStream(7).Child("decisions"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Run and RunContext diverged:\n%+v\n%+v", a, b)
	}
}
