package sim

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Property-style sweeps: the simulator's global invariants must hold for
// every (heuristic, filter, budget, seed) combination, not just the
// curated cases. These tests sweep a grid of configurations on a small
// model.

func TestInvariantsAcrossConfigurations(t *testing.T) {
	m := buildModel(t, 70, 50)
	budgets := []float64{math.Inf(1), m.DefaultEnergyBudget(), m.DefaultEnergyBudget() * 0.3}
	seeds := []uint64{1, 2, 3}
	for _, h := range sched.AllHeuristics() {
		for _, v := range sched.AllFilterVariants() {
			for _, budget := range budgets {
				for _, seed := range seeds {
					res := runOnce(t, m, mapperFor(h, v), budget, seed, func(c *Config) { c.VerifyEnergy = false })
					label := h.Name() + "/" + v.String()

					// Outcome partition is exact.
					if res.OnTime+res.Late+res.Discarded+res.Unfinished+res.Cancelled != res.Window {
						t.Fatalf("%s: outcome partition broken: %v", label, res)
					}
					// Missed is the complement of OnTime.
					if res.Missed != res.Window-res.OnTime {
						t.Fatalf("%s: missed inconsistent: %v", label, res)
					}
					// Energy never exceeds the budget.
					if !math.IsInf(budget, 1) && res.EnergyConsumed > budget*(1+1e-9) {
						t.Fatalf("%s: consumed %v over budget %v", label, res.EnergyConsumed, budget)
					}
					// Exhaustion implies full budget use and vice versa (for
					// finite budgets where the workload needs more).
					if res.EnergyExhausted && math.Abs(res.EnergyConsumed-budget) > 1e-6*budget {
						t.Fatalf("%s: exhausted but consumed %v != budget %v", label, res.EnergyConsumed, budget)
					}
					// Mapped counts bound the completions.
					if res.OnTime+res.Late > res.Mapped {
						t.Fatalf("%s: more completions than mapped tasks: %v", label, res)
					}
					// Makespan positive and weighted value consistent for
					// unit priorities.
					if res.Makespan <= 0 {
						t.Fatalf("%s: makespan %v", label, res.Makespan)
					}
					if math.Abs(res.WeightedOnTime-float64(res.OnTime)) > 1e-9 {
						t.Fatalf("%s: weighted %v != onTime %d with unit priorities", label, res.WeightedOnTime, res.OnTime)
					}
				}
			}
		}
	}
}

func TestCommonRandomNumbersAcrossHeuristics(t *testing.T) {
	// The same trial must present identical tasks to every heuristic
	// (§VI: execution-time realizations are properties of the trial), so a
	// task's actual execution time under the same assignment is equal
	// across heuristics.
	m := buildModel(t, 71, 40)
	tr, err := workload.GenerateTrial(randx.NewStream(42), m)
	if err != nil {
		t.Fatal(err)
	}
	runs := map[string]*Result{}
	for _, h := range []sched.Heuristic{sched.ShortestQueue{}, sched.MinExpectedCompletionTime{}} {
		cfg := Config{Model: m, Mapper: mapperFor(h, sched.NoFilter), EnergyBudget: math.Inf(1), Trace: true}
		res, err := Run(cfg, tr, randx.NewStream(42).Child("d"))
		if err != nil {
			t.Fatal(err)
		}
		runs[h.Name()] = res
	}
	a, b := runs["SQ"], runs["MECT"]
	for i := range a.Traces {
		ta, tb := a.Traces[i], b.Traces[i]
		if ta.Task != tb.Task {
			t.Fatalf("task %d differs across heuristics", i)
		}
		if ta.Assignment == tb.Assignment && ta.Mapped && tb.Mapped {
			da := ta.Finish - ta.Start
			db := tb.Finish - tb.Start
			if math.Abs(da-db) > 1e-9 {
				t.Fatalf("task %d: same assignment, different durations %v vs %v", i, da, db)
			}
		}
	}
}

func TestBudgetMonotonicityInAggregate(t *testing.T) {
	// More energy can only help in expectation. Individual trials could in
	// principle invert (different exhaustion points change which tasks
	// strand), so assert on the sum over several trials.
	m := buildModel(t, 72, 50)
	scales := []float64{0.25, 0.5, 1.0, 2.0}
	prev := -1
	for _, sc := range scales {
		total := 0
		for seed := uint64(1); seed <= 4; seed++ {
			res := runOnce(t, m, mapperFor(sched.MinExpectedCompletionTime{}, sched.NoFilter),
				m.DefaultEnergyBudget()*sc, seed, func(c *Config) { c.VerifyEnergy = false })
			total += res.OnTime
		}
		if total < prev {
			t.Fatalf("aggregate on-time fell from %d to %d when budget rose to %v×", prev, total, sc)
		}
		prev = total
	}
}

func TestIdlePStateConfigurable(t *testing.T) {
	// Parking idle cores at a hungrier P-state must consume at least as
	// much energy under an identical schedule.
	m := buildModel(t, 73, 40)
	lo := runOnce(t, m, mapperFor(sched.ShortestQueue{}, sched.NoFilter), math.Inf(1), 3, nil)
	hi := runOnce(t, m, mapperFor(sched.ShortestQueue{}, sched.NoFilter), math.Inf(1), 3,
		func(c *Config) { c.IdlePState = 2 /* P2 */ })
	if hi.EnergyConsumed <= lo.EnergyConsumed {
		t.Fatalf("idling at P2 (%v) should cost more than P4 (%v)", hi.EnergyConsumed, lo.EnergyConsumed)
	}
	// The schedule itself is identical (idle state does not affect FIFO
	// execution in unfiltered SQ: queue lengths and EET are state-free).
	if hi.OnTime != lo.OnTime {
		t.Fatalf("idle P-state changed the unfiltered schedule: %d vs %d", hi.OnTime, lo.OnTime)
	}
}
