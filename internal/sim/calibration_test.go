package sim

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/sched"
	"repro/internal/workload"
)

// This file validates the §IV robustness model against the simulator — the
// paper's contribution (a): ρ(i,j,k,π,t_l,z), the predicted probability of
// an on-time completion at mapping time, must be *calibrated*: among tasks
// mapped with predicted probability p, about a fraction p should actually
// finish on time. The test records the chosen assignment's ρ for every
// mapped task, runs the trial unconstrained (so energy exhaustion does not
// censor outcomes), and compares prediction to realization in aggregate
// and per probability band.

// rhoRecorder wraps a heuristic and records the ρ of each chosen
// assignment, keyed by task ID.
type rhoRecorder struct {
	inner sched.Heuristic
	rho   map[int]float64
}

func (r *rhoRecorder) Name() string   { return r.inner.Name() + "+rhorec" }
func (r *rhoRecorder) NeedsRho() bool { return true }
func (r *rhoRecorder) Choose(ctx *sched.Context, feasible []*sched.Candidate) *sched.Candidate {
	c := r.inner.Choose(ctx, feasible)
	r.rho[ctx.Task.ID] = c.Rho()
	return c
}

func TestRobustnessPredictionsAreCalibrated(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration study is slow")
	}
	m := buildModel(t, 100, 400)

	type sample struct {
		rho    float64
		onTime bool
	}
	var samples []sample

	// Random assignment spreads choices over all P-states and queue depths,
	// sampling ρ across its whole range; several trials diversify further.
	for trial := uint64(0); trial < 6; trial++ {
		rec := &rhoRecorder{inner: sched.Random{}, rho: make(map[int]float64)}
		tr, err := workload.GenerateTrial(randx.NewStream(200+trial), m)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Model:        m,
			Mapper:       &sched.Mapper{Heuristic: rec},
			EnergyBudget: math.Inf(1),
			Trace:        true,
		}
		res, err := Run(cfg, tr, randx.NewStream(300+trial))
		if err != nil {
			t.Fatal(err)
		}
		for _, trc := range res.Traces {
			if !trc.Mapped {
				continue
			}
			rho, ok := rec.rho[trc.Task.ID]
			if !ok {
				t.Fatalf("no recorded rho for task %d", trc.Task.ID)
			}
			samples = append(samples, sample{rho: rho, onTime: trc.Outcome == OutcomeOnTime})
		}
	}
	if len(samples) < 1000 {
		t.Fatalf("only %d samples", len(samples))
	}

	// Aggregate calibration: mean predicted probability vs realized rate.
	var predSum float64
	onTime := 0
	for _, s := range samples {
		predSum += s.rho
		if s.onTime {
			onTime++
		}
	}
	meanPred := predSum / float64(len(samples))
	realized := float64(onTime) / float64(len(samples))
	if math.Abs(meanPred-realized) > 0.05 {
		t.Fatalf("aggregate calibration off: predicted %.3f, realized %.3f over %d tasks",
			meanPred, realized, len(samples))
	}

	// Band calibration: within each predicted-probability band with enough
	// mass, the realized rate must sit near the band's mean prediction.
	const bands = 5
	cnt := make([]int, bands)
	pred := make([]float64, bands)
	real := make([]float64, bands)
	for _, s := range samples {
		b := int(s.rho * bands)
		if b >= bands {
			b = bands - 1
		}
		cnt[b]++
		pred[b] += s.rho
		if s.onTime {
			real[b]++
		}
	}
	for b := 0; b < bands; b++ {
		if cnt[b] < 100 {
			continue // too few samples for a stable frequency
		}
		p := pred[b] / float64(cnt[b])
		r := real[b] / float64(cnt[b])
		// Tolerance covers binomial noise (samples within a burst share the
		// backlog realization, so the effective n is well below cnt) plus
		// pmf-compaction error: 0.15 absolute.
		if math.Abs(p-r) > 0.15 {
			t.Errorf("band %d: predicted %.3f, realized %.3f (n=%d)", b, p, r, cnt[b])
		}
	}

	// Discrimination: tasks predicted above 0.8 must realize a much higher
	// on-time rate than tasks predicted below 0.2.
	var hiN, hiOK, loN, loOK int
	for _, s := range samples {
		switch {
		case s.rho >= 0.8:
			hiN++
			if s.onTime {
				hiOK++
			}
		case s.rho <= 0.2:
			loN++
			if s.onTime {
				loOK++
			}
		}
	}
	if hiN > 50 && loN > 50 {
		hiRate := float64(hiOK) / float64(hiN)
		loRate := float64(loOK) / float64(loN)
		if hiRate-loRate < 0.5 {
			t.Fatalf("poor discrimination: high-rho rate %.3f vs low-rho rate %.3f", hiRate, loRate)
		}
	}
}
