package sim

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Tests for the §VIII extensions: stochastic power draw (PowerCV) and idle
// core parking (power gating).

func TestPowerCVChangesEnergyNotSchedule(t *testing.T) {
	m := buildModel(t, 20, 50)
	base := runOnce(t, m, mapperFor(sched.MinExpectedCompletionTime{}, sched.NoFilter), math.Inf(1), 3,
		func(c *Config) { c.VerifyEnergy = false })
	noisy := runOnce(t, m, mapperFor(sched.MinExpectedCompletionTime{}, sched.NoFilter), math.Inf(1), 3,
		func(c *Config) { c.VerifyEnergy = false; c.PowerCV = 0.3 })
	// Power noise must not perturb the schedule itself (same mapping, same
	// execution times), only the consumed energy.
	if noisy.OnTime != base.OnTime || noisy.Makespan != base.Makespan {
		t.Fatalf("PowerCV changed the schedule: %v vs %v", noisy, base)
	}
	if noisy.EnergyConsumed == base.EnergyConsumed {
		t.Fatal("PowerCV had no effect on energy")
	}
	// Mean-1 noise keeps total energy in the same ballpark.
	ratio := noisy.EnergyConsumed / base.EnergyConsumed
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("energy ratio %v implausible for mean-1 noise", ratio)
	}
}

func TestPowerCVDeterministic(t *testing.T) {
	m := buildModel(t, 21, 40)
	a := runOnce(t, m, mapperFor(sched.ShortestQueue{}, sched.NoFilter), math.Inf(1), 5,
		func(c *Config) { c.VerifyEnergy = false; c.PowerCV = 0.25 })
	b := runOnce(t, m, mapperFor(sched.ShortestQueue{}, sched.NoFilter), math.Inf(1), 5,
		func(c *Config) { c.VerifyEnergy = false; c.PowerCV = 0.25 })
	if a.EnergyConsumed != b.EnergyConsumed {
		t.Fatal("PowerCV runs not deterministic")
	}
}

func TestPowerCVIncompatibleWithVerify(t *testing.T) {
	m := buildModel(t, 22, 30)
	tr, _ := workload.GenerateTrial(randx.NewStream(1), m)
	cfg := Config{Model: m, Mapper: mapperFor(sched.ShortestQueue{}, sched.NoFilter),
		EnergyBudget: 1, VerifyEnergy: true, PowerCV: 0.2}
	if _, err := Run(cfg, tr, randx.NewStream(1)); err == nil {
		t.Fatal("expected error combining VerifyEnergy with PowerCV")
	}
	cfg = Config{Model: m, Mapper: mapperFor(sched.ShortestQueue{}, sched.NoFilter),
		EnergyBudget: 1, PowerCV: -0.1}
	if _, err := Run(cfg, tr, randx.NewStream(1)); err == nil {
		t.Fatal("expected error for negative PowerCV")
	}
}

func defaultPark(m *workload.Model) ParkPolicy {
	return ParkPolicy{Enabled: true, Timeout: m.TAvg() / 4, WakeLatency: 5, PowerFrac: 0.05}
}

func TestParkingSavesEnergy(t *testing.T) {
	m := buildModel(t, 23, 60)
	mapper := mapperFor(sched.MinExpectedCompletionTime{}, sched.NoFilter)
	base := runOnce(t, m, mapper, math.Inf(1), 7, func(c *Config) { c.VerifyEnergy = false })
	parked := runOnce(t, m, mapper, math.Inf(1), 7, func(c *Config) {
		c.VerifyEnergy = false
		c.Park = defaultPark(m)
	})
	if parked.Wakeups == 0 || parked.ParkedTime <= 0 {
		t.Fatalf("parking never engaged: %+v", parked)
	}
	if parked.EnergyConsumed >= base.EnergyConsumed {
		t.Fatalf("parking did not save energy: %v >= %v", parked.EnergyConsumed, base.EnergyConsumed)
	}
	// Wake latency delays completions, so the makespan cannot shrink.
	if parked.Makespan < base.Makespan-1e-9 {
		t.Fatalf("parking shrank makespan: %v < %v", parked.Makespan, base.Makespan)
	}
}

func TestParkingWithBudgetImprovesOutcome(t *testing.T) {
	// Under a binding budget, the idle energy saved by parking should
	// translate into at least as many on-time completions.
	m := buildModel(t, 24, 60)
	mapper := mapperFor(sched.MinExpectedCompletionTime{}, sched.NoFilter)
	budget := m.DefaultEnergyBudget() * 0.5
	base := runOnce(t, m, mapper, budget, 9, func(c *Config) { c.VerifyEnergy = false })
	parked := runOnce(t, m, mapper, budget, 9, func(c *Config) {
		c.VerifyEnergy = false
		c.Park = defaultPark(m)
	})
	if parked.OnTime < base.OnTime {
		t.Fatalf("parking under a binding budget lost completions: %d < %d", parked.OnTime, base.OnTime)
	}
}

func TestParkingAccountsAllTime(t *testing.T) {
	m := buildModel(t, 25, 40)
	res := runOnce(t, m, mapperFor(sched.ShortestQueue{}, sched.NoFilter), math.Inf(1), 11,
		func(c *Config) {
			c.VerifyEnergy = false
			c.Park = defaultPark(m)
		})
	cores := float64(m.Cluster.TotalCores())
	if res.ParkedTime > res.Makespan*cores {
		t.Fatalf("parked time %v exceeds total core-time %v", res.ParkedTime, res.Makespan*cores)
	}
}

func TestParkPolicyValidate(t *testing.T) {
	m := buildModel(t, 26, 30)
	tr, _ := workload.GenerateTrial(randx.NewStream(1), m)
	bad := []ParkPolicy{
		{Enabled: true, Timeout: -1, PowerFrac: 0.1},
		{Enabled: true, WakeLatency: -1, PowerFrac: 0.1},
		{Enabled: true, PowerFrac: 1.5},
		{Enabled: true, PowerFrac: -0.1},
	}
	for i, pk := range bad {
		cfg := Config{Model: m, Mapper: mapperFor(sched.ShortestQueue{}, sched.NoFilter), EnergyBudget: 1, Park: pk}
		if _, err := Run(cfg, tr, randx.NewStream(1)); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	// Disabled policy ignores garbage fields.
	cfg := Config{Model: m, Mapper: mapperFor(sched.ShortestQueue{}, sched.NoFilter),
		EnergyBudget: math.Inf(1), Park: ParkPolicy{Timeout: -99}}
	if _, err := Run(cfg, tr, randx.NewStream(1)); err != nil {
		t.Fatalf("disabled park policy should not validate fields: %v", err)
	}
}

func TestParkingDeterministic(t *testing.T) {
	m := buildModel(t, 27, 40)
	mut := func(c *Config) { c.VerifyEnergy = false; c.Park = defaultPark(m) }
	a := runOnce(t, m, mapperFor(sched.ShortestQueue{}, sched.NoFilter), math.Inf(1), 2, mut)
	b := runOnce(t, m, mapperFor(sched.ShortestQueue{}, sched.NoFilter), math.Inf(1), 2, mut)
	if a.EnergyConsumed != b.EnergyConsumed || a.Wakeups != b.Wakeups || a.ParkedTime != b.ParkedTime {
		t.Fatal("parking runs not deterministic")
	}
}
