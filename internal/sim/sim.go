// Package sim is the discrete-event simulator that executes one trial of
// the paper's experiment: tasks arrive dynamically, the configured mapper
// assigns each to a (core, P-state) immediately on arrival (or discards
// it), cores execute their FIFO queues, idle cores drop to the deepest
// P-state, and a live energy meter halts the cluster the instant the energy
// constraint ζ_max is exhausted (everything not completed by then counts as
// missed).
package sim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/randx"
	"repro/internal/robustness"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Config configures one simulation run.
type Config struct {
	// Model is the fixed workload model (cluster + pmf tables).
	Model *workload.Model
	// Mapper is the heuristic+filter policy under test.
	Mapper *sched.Mapper
	// EnergyBudget is ζ_max; math.Inf(1) disables the constraint.
	EnergyBudget float64
	// IdlePState is the state idle cores are parked in. The paper's cores
	// cannot be turned off (§III-A); parking them in the deepest P-state is
	// the resource manager's only lever on idle power. Defaults to P4.
	IdlePState cluster.PState
	// VerifyEnergy records full P-state transition lists and cross-checks
	// the meter against the exact Eq. 1/Eq. 2 computation at the end of the
	// run (test and debugging aid; costs memory).
	VerifyEnergy bool
	// Trace records a per-task outcome log in the result.
	Trace bool
	// CancelOverdueWaiting is an extension beyond the paper (§VIII future
	// work): when true, waiting tasks whose deadline has already passed are
	// dropped from the queue instead of being executed to completion. The
	// paper's model always executes mapped tasks as a best effort; leave
	// this false to reproduce the paper.
	CancelOverdueWaiting bool
	// Observer, when non-nil, receives every simulation event as it
	// happens (see the Observer interface). Used by the trace package to
	// build event logs and core timelines. Compose several observers with
	// Multi; nil means no observation (the engine substitutes NopObserver).
	Observer Observer
	// Metrics, when non-nil, receives hot-path instrumentation for the
	// run: events processed, heap depth high-water, backlog histogram,
	// task outcomes, scheduler candidate/filter/cache counters, and energy
	// meter activity. Attaching a registry never changes simulation
	// results; a registry must not be shared between concurrent runs
	// unless the caller wants their counts blended.
	Metrics *metrics.Registry
	// PowerCV is a §VIII extension ("use full probability distributions to
	// represent power consumption"): when positive, each task execution
	// draws its actual power from a gamma distribution with mean μ(i,π) and
	// this coefficient of variation instead of the constant μ(i,π). The
	// heuristics still plan with the mean (EEC is unchanged), so this
	// studies how power uncertainty erodes the energy budget. Incompatible
	// with VerifyEnergy (the Eq. 1 replay knows only table powers). Zero
	// reproduces the paper.
	PowerCV float64
	// Park is a §VIII extension ("more energy-conserving techniques ...
	// power gating"): idle cores are power-gated after a timeout and pay a
	// wake latency when work next arrives. The zero value (disabled)
	// reproduces the paper, whose oversubscription rules parking out.
	Park ParkPolicy
	// CentralQueue, when non-nil, replaces immediate-mode mapping entirely
	// (§VIII "reschedule" direction): arriving tasks wait in one
	// cluster-wide pool and the policy assigns them to cores only when the
	// core is ready to execute. Mutually exclusive with Mapper.
	CentralQueue PullPolicy
	// Faults configures failure injection: stochastic transient-core and
	// permanent-node failure processes plus scripted fault traces, with a
	// recovery policy for stranded tasks (see internal/fault). The zero
	// value (no faults) reproduces the paper's never-failing cluster and
	// costs nothing on the hot path. Incompatible with VerifyEnergy: a
	// downed core draws zero watts via a power override, which the Eq. 1
	// transition replay cannot represent.
	Faults fault.Spec
	// Brownout, when non-empty, replaces the all-or-nothing halt at ζ_max
	// with staged degradation: as consumed energy crosses each stage's
	// fraction of the budget, the admission filter's ζ_mul tightens, new
	// dispatches are floored at deep P-states, and (optionally) idle cores
	// are power-gated. The hard halt at 100% is unchanged. See
	// energy.BrownoutStage / energy.DefaultBrownoutStages. Requires a
	// finite EnergyBudget; nil reproduces the paper.
	Brownout []energy.BrownoutStage
	// ExactRho switches candidate ρ evaluation to the direct double-sum
	// P(free + exec <= deadline) instead of materializing and compacting
	// the completion PMF (robustness.Calculator.SetExactRho). Numerically
	// tighter and allocation-free, but not bit-identical to the paper
	// pipeline; leave false to reproduce the paper.
	ExactRho bool
	// SparsePMF forces the §IV-B chains through the original sparse
	// impulse pipeline (convolve + compact per stage). By default the
	// engine runs on the fixed-grid lattice fast path, which convolves
	// exactly on a shared grid (robustness.DefaultGridRes bins per mean
	// execution time) instead of compacting — different rounding, same
	// model; set SparsePMF to reproduce the paper pipeline bit-for-bit.
	// ExactRho implies the sparse pipeline.
	SparsePMF bool
}

// ParkPolicy configures the power-gating extension.
type ParkPolicy struct {
	// Enabled turns parking on.
	Enabled bool
	// Timeout is how long a core must sit idle before it parks.
	Timeout float64
	// WakeLatency delays the start of the first task mapped to a parked
	// core; the latency interval is charged at the task's P-state power (a
	// deliberate simplification — real gate-up current is implementation
	// specific).
	WakeLatency float64
	// PowerFrac is the parked power as a fraction of the node's P4 power
	// (e.g. 0.05 ≈ deep gating with retention).
	PowerFrac float64
}

// Validate reports whether the policy is usable.
func (p ParkPolicy) Validate() error {
	if !p.Enabled {
		return nil
	}
	if p.Timeout < 0 || p.WakeLatency < 0 {
		return fmt.Errorf("sim: park timeout %v and wake latency %v must be >= 0", p.Timeout, p.WakeLatency)
	}
	if p.PowerFrac < 0 || p.PowerFrac > 1 {
		return fmt.Errorf("sim: parked power fraction %v outside [0,1]", p.PowerFrac)
	}
	return nil
}

// Observer receives simulation events in time order. Implementations must
// not retain the engine's internal state; all arguments are values.
// Callbacks run synchronously on the simulation goroutine.
type Observer interface {
	// TaskMapped fires when an arriving task receives an assignment.
	TaskMapped(t float64, task workload.Task, a sched.Assignment)
	// TaskDiscarded fires when filters eliminate every assignment.
	TaskDiscarded(t float64, task workload.Task)
	// TaskStarted fires when a core begins executing a task.
	TaskStarted(t float64, task workload.Task, a sched.Assignment)
	// TaskFinished fires at completion; onTime reports deadline success.
	TaskFinished(t float64, task workload.Task, a sched.Assignment, onTime bool)
	// PStateChanged fires on every core P-state transition.
	PStateChanged(t float64, core cluster.CoreID, ps cluster.PState)
	// EnergyExhausted fires once if ζ_max runs out; the run halts.
	EnergyExhausted(t float64)
}

// Outcome classifies what happened to one task.
type Outcome int

// Task outcomes.
const (
	// OutcomeOnTime: completed at or before its deadline.
	OutcomeOnTime Outcome = iota
	// OutcomeLate: completed, but after its deadline.
	OutcomeLate
	// OutcomeDiscarded: every assignment was filtered out at arrival.
	OutcomeDiscarded
	// OutcomeUnfinished: mapped but not completed when the run halted
	// (energy exhaustion), or never arrived before the halt.
	OutcomeUnfinished
	// OutcomeCancelled: dropped by the CancelOverdueWaiting extension.
	OutcomeCancelled
	// OutcomeFailed: lost to a core/node failure — killed or stranded by a
	// fault and not recovered (dropped, or retries exhausted).
	OutcomeFailed
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeOnTime:
		return "on-time"
	case OutcomeLate:
		return "late"
	case OutcomeDiscarded:
		return "discarded"
	case OutcomeUnfinished:
		return "unfinished"
	case OutcomeCancelled:
		return "cancelled"
	case OutcomeFailed:
		return "failed"
	}
	return "unknown"
}

// TaskTrace records one task's fate (populated when Config.Trace is set).
type TaskTrace struct {
	Task       workload.Task
	Outcome    Outcome
	Assignment sched.Assignment // zero value when discarded/not arrived
	Mapped     bool
	Start      float64
	Finish     float64
}

// Result summarizes one simulation run. The headline metric of the paper's
// figures is Missed: tasks of the window that did not complete by their
// individual deadline within the energy constraint.
type Result struct {
	// Window is the number of tasks in the trial.
	Window int
	// OnTime counts tasks completed by their deadlines.
	OnTime int
	// Missed = Window − OnTime (the paper's box-plot metric).
	Missed int
	// Late counts tasks completed after their deadlines.
	Late int
	// Discarded counts tasks whose feasible set was emptied by filters.
	Discarded int
	// Cancelled counts tasks dropped by the CancelOverdueWaiting extension.
	Cancelled int
	// Unfinished counts tasks mapped but not completed (plus tasks that
	// never arrived) when the run halted.
	Unfinished int
	// Mapped counts assignments issued. Without fault injection this equals
	// the number of tasks mapped; with requeue recovery a task counts once
	// per (re-)assignment.
	Mapped int

	// EnergyConsumed is the actual wall energy drawn (Eqs. 1–2).
	EnergyConsumed float64
	// EnergyExhausted reports whether ζ_max ran out before the workload
	// finished; ExhaustedAt is the halt instant when it did.
	EnergyExhausted bool
	ExhaustedAt     float64
	// EnergyEstimateLeft is the heuristic-side estimate ζ(t_end) at the end
	// of the run (§V-F); it drifts from the meter because it ignores idle
	// power and uses expected rather than actual execution times.
	EnergyEstimateLeft float64
	// Makespan is the time of the last processed event.
	Makespan float64
	// AvgQueueDepthTime is the time-averaged per-core queue depth over the
	// run (diagnostic; the filters use the instantaneous depth).
	AvgQueueDepthTime float64
	// WeightedOnTime is the priority-weighted on-time value (extension;
	// equals OnTime when all priorities are 1).
	WeightedOnTime float64
	// Wakeups counts parked-core wakeups (parking extension only).
	Wakeups int
	// ParkedTime is the total core-time spent parked (parking extension).
	ParkedTime float64
	// Faults counts injected failures (fault injection only); TasksKilled
	// counts running tasks killed mid-execution by them, Retries counts
	// requeue dispatch attempts, and LostToFailure counts tasks that ended
	// OutcomeFailed (dropped or retries exhausted). A killed task that a
	// retry later completes is NOT lost — it lands in OnTime/Late.
	Faults        int
	TasksKilled   int
	Retries       int
	LostToFailure int
	// DownTime is the total core-time spent failed (summed over cores).
	DownTime float64
	// BrownoutStage is the deepest degradation stage reached (0 = nominal;
	// brownout controller only).
	BrownoutStage int
	// EnergyVerifyError is |meter − exact Eq.1/2| when VerifyEnergy is set.
	EnergyVerifyError float64

	// Traces is the per-task log (only when Config.Trace is set), indexed
	// by task ID.
	Traces []TaskTrace
}

// queued is one task occupying a core.
type queued struct {
	task    workload.Task
	pstate  cluster.PState
	actual  float64 // realized execution time, fixed at map time
	started bool
	startAt float64
}

// event kinds, in tie-break priority order at equal times: completions
// free cores before a simultaneous arrival is mapped, and a core is handed
// work before a simultaneous park fires. The fault kinds sort after the
// paper's kinds so that, at equal times, normal progress happens before the
// failure strikes, a repair lands after the fault that caused it, and a
// requeued task re-enters the mapper last.
const (
	evCompletion = iota
	evArrival
	evPark
	evFault
	evRepair
	evRequeue
	numEventKinds
)

type event struct {
	time float64
	kind int
	idx  int // task index for arrivals/requeues, core index for completions/
	// parks/repairs, fault-source index for faults
	gen int // generation: stale park and (post-failure) completion events
	// are ignored
	seq int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// engine is the run state; it implements sched.SystemView.
type engine struct {
	cfg       Config
	ctx       context.Context
	processed int // events handled, for periodic cancellation checks
	trial     *workload.Trial
	calc      *robustness.Calculator
	ftc       *robustness.FreeTimeEngine
	meter     *energy.Meter
	rand      *randx.Stream
	cores     []cluster.CoreID
	queues    [][]queued
	events    eventHeap
	seq       int

	// Per-decision scratch: the scheduler arena and per-core queue-snapshot
	// buffers Queue() reuses. Safe because snapshots are decision-scoped —
	// every consumer (candidate shares, the free-time engine's seen-queue
	// record) is overwritten before the next decision reads them.
	arena *sched.Arena
	qbuf  [][]robustness.QueuedTask

	energyLeft    float64 // heuristic estimate ζ(t_l)
	inSystem      int     // mapped, not yet completed
	depthIntegral float64 // ∫ inSystem dt
	lastT         float64

	powerRand *randx.Stream // per-execution power draws (PowerCV extension)
	parked    []bool
	idleGen   []int // invalidates stale park events
	parkedAt  []float64

	arrived int           // arrival events processed, for requeue T_left
	flt     *faultRuntime // nil when fault injection is disabled
	bro     *energy.Brownout
	// Cached context decorations so fault-enabled dispatch does not
	// allocate per arrival; nil when faults are disabled.
	coreUpFn func(int) bool
	availFn  func(int) float64

	// Central-queue hooks, set only in central mode: the shared fault
	// handlers call them so pool accounting and the idle-core set stay
	// consistent with core up/down state.
	onDown     func(coreIdx int)
	onUp       func(now float64, coreIdx int)
	redispatch func(now float64, task workload.Task)
	poolLen    func() int

	pendingReq int // requeue events in flight, for fault-loop termination

	met  *simMetrics    // nil when Config.Metrics is nil
	eobs EnergyObserver // non-nil when the observer wants energy samples
	fobs FaultObserver  // non-nil when the observer wants fault events
	bobs BrownoutObserver
	dobs DecisionObserver // non-nil when the observer audits decisions

	res *Result
}

var _ sched.SystemView = (*engine)(nil)

// NumCores implements sched.SystemView.
func (e *engine) NumCores() int { return len(e.cores) }

// CoreID implements sched.SystemView.
func (e *engine) CoreID(idx int) cluster.CoreID { return e.cores[idx] }

// Queue implements sched.SystemView: a snapshot of the core's occupancy,
// built into a reusable per-core buffer (snapshots are decision-scoped).
func (e *engine) Queue(idx int) robustness.CoreQueue {
	q := e.queues[idx]
	cq := robustness.CoreQueue{Node: e.cores[idx].Node}
	if len(q) == 0 {
		return cq
	}
	if cap(e.qbuf[idx]) < len(q) {
		e.qbuf[idx] = make([]robustness.QueuedTask, len(q))
	}
	cq.Tasks = e.qbuf[idx][:len(q)]
	for i, t := range q {
		cq.Tasks[i] = robustness.QueuedTask{
			Type:     t.task.Type,
			PState:   t.pstate,
			Deadline: t.task.Deadline,
			Started:  t.started,
			StartAt:  t.startAt,
		}
	}
	return cq
}

// Run executes one trial under the configuration. decisions seeds the
// Random heuristic's draws (and any other stochastic policy choice); runs
// with equal (cfg, trial, decisions) are bit-identical.
func Run(cfg Config, trial *workload.Trial, decisions *randx.Stream) (*Result, error) {
	return RunContext(context.Background(), cfg, trial, decisions)
}

// RunContext is Run with cooperative cancellation: the event loop polls
// ctx between batches of events and aborts with an error wrapping
// ctx.Err() when the context is cancelled or its deadline passes. A
// cancelled run returns no Result — partial simulation state is never
// observable, so callers cannot mistake an aborted trial for a short one.
// A nil ctx behaves like context.Background().
func RunContext(ctx context.Context, cfg Config, trial *workload.Trial, decisions *randx.Stream) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Model == nil {
		return nil, errors.New("sim: Config.Model is nil")
	}
	if err := validateCentral(cfg); err != nil {
		return nil, err
	}
	if cfg.CentralQueue == nil && (cfg.Mapper == nil || cfg.Mapper.Heuristic == nil) {
		return nil, errors.New("sim: Config.Mapper is nil or has no heuristic")
	}
	if trial == nil || len(trial.Tasks) == 0 {
		return nil, errors.New("sim: empty trial")
	}
	if decisions == nil {
		return nil, errors.New("sim: nil decision stream")
	}
	if cfg.IdlePState == 0 {
		cfg.IdlePState = cluster.P4
	}
	if !cfg.IdlePState.Valid() {
		return nil, fmt.Errorf("sim: invalid idle P-state %d", cfg.IdlePState)
	}
	if cfg.PowerCV < 0 {
		return nil, fmt.Errorf("sim: PowerCV %v must be >= 0", cfg.PowerCV)
	}
	if err := cfg.Park.Validate(); err != nil {
		return nil, err
	}
	if cfg.VerifyEnergy && (cfg.PowerCV > 0 || cfg.Park.Enabled) {
		return nil, errors.New("sim: VerifyEnergy is incompatible with the PowerCV/Park extensions (Eq. 1 replay knows only P-state table powers)")
	}
	faultsOn := cfg.Faults.Enabled()
	if faultsOn {
		if err := cfg.Faults.Validate(cfg.Model.Cluster.TotalCores(), cfg.Model.Cluster.N()); err != nil {
			return nil, err
		}
		if cfg.VerifyEnergy {
			return nil, errors.New("sim: VerifyEnergy is incompatible with fault injection (downed cores draw zero watts via power overrides)")
		}
	}
	if len(cfg.Brownout) > 0 {
		if err := energy.ValidateBrownoutStages(cfg.Brownout); err != nil {
			return nil, err
		}
		for _, st := range cfg.Brownout {
			if st.ParkIdle && cfg.VerifyEnergy {
				return nil, errors.New("sim: VerifyEnergy is incompatible with brownout idle parking (power overrides)")
			}
		}
	}
	budget := cfg.EnergyBudget
	if budget == 0 {
		budget = math.Inf(1)
	}
	if budget <= 0 {
		return nil, fmt.Errorf("sim: energy budget %v must be positive (use +Inf to disable)", budget)
	}
	if len(cfg.Brownout) > 0 && math.IsInf(budget, 1) {
		return nil, errors.New("sim: brownout requires a finite energy budget")
	}
	meter, err := energy.NewMeter(cfg.Model.Cluster, cfg.IdlePState, budget, cfg.VerifyEnergy)
	if err != nil {
		return nil, err
	}
	if cfg.Observer == nil {
		cfg.Observer = NopObserver{}
	}

	e := &engine{
		cfg:        cfg,
		ctx:        ctx,
		trial:      trial,
		calc:       robustness.NewCalculator(cfg.Model),
		meter:      meter,
		rand:       decisions,
		cores:      cfg.Model.Cluster.Cores(),
		queues:     make([][]queued, cfg.Model.Cluster.TotalCores()),
		energyLeft: budget,
		res: &Result{
			Window: len(trial.Tasks),
		},
	}
	e.ftc = robustness.NewFreeTimeEngine(e.calc, len(e.queues))
	if cfg.ExactRho {
		e.calc.SetExactRho(true)
	}
	if !cfg.SparsePMF && !cfg.ExactRho {
		e.ftc.SetGrid(true)
	}
	e.arena = sched.NewArena()
	e.qbuf = make([][]robustness.QueuedTask, len(e.queues))
	if eo, ok := cfg.Observer.(EnergyObserver); ok {
		e.eobs = eo
	}
	if fo, ok := cfg.Observer.(FaultObserver); ok {
		e.fobs = fo
	}
	if bo, ok := cfg.Observer.(BrownoutObserver); ok {
		e.bobs = bo
	}
	if do, ok := cfg.Observer.(DecisionObserver); ok {
		e.dobs = do
	}
	if cfg.Metrics != nil {
		var filters []sched.Filter
		if cfg.Mapper != nil {
			filters = cfg.Mapper.Filters
		}
		e.met = newSimMetrics(cfg.Metrics)
		e.met.sched = sched.NewCounters(cfg.Metrics, filters)
		e.met.sched.InstrumentFreeTimes(e.ftc)
		e.calc.Instrument(
			cfg.Metrics.Counter("robustness_freetime_evals_total"),
			cfg.Metrics.Counter("robustness_completion_evals_total"))
		e.meter.Instrument(
			cfg.Metrics.Counter("energy_meter_advances_total"),
			cfg.Metrics.Counter("energy_pstate_transitions_total"),
			cfg.Metrics.Gauge("energy_meter_consumed"))
	}
	if cfg.Trace {
		e.res.Traces = make([]TaskTrace, len(trial.Tasks))
		for i, t := range trial.Tasks {
			e.res.Traces[i] = TaskTrace{Task: t, Outcome: OutcomeUnfinished}
		}
	}
	if cfg.PowerCV > 0 {
		e.powerRand = decisions.Child("power")
	}
	if cfg.Park.Enabled {
		e.parked = make([]bool, len(e.queues))
		e.idleGen = make([]int, len(e.queues))
		e.parkedAt = make([]float64, len(e.queues))
		// Every core is idle at t=0; schedule the initial park checks.
		for i := range e.queues {
			e.push(event{time: cfg.Park.Timeout, kind: evPark, idx: i, gen: 0})
		}
	}
	if faultsOn {
		e.initFaults(decisions)
	}
	if len(cfg.Brownout) > 0 {
		// Validated above; NewBrownout re-checks but cannot fail here.
		e.bro, _ = energy.NewBrownout(cfg.Brownout)
	}
	for i, t := range trial.Tasks {
		e.push(event{time: t.Arrival, kind: evArrival, idx: i})
	}
	if cfg.CentralQueue != nil {
		ce := &centralEngine{engine: e, policy: cfg.CentralQueue, idle: make(map[int]bool, len(e.queues))}
		for i := range e.queues {
			ce.idle[i] = true
		}
		if faultsOn {
			e.onDown = func(coreIdx int) { delete(ce.idle, coreIdx) }
			e.onUp = func(now float64, coreIdx int) {
				ce.idle[coreIdx] = true
				ce.dispatch(now)
			}
			e.redispatch = func(now float64, task workload.Task) {
				ce.pool = append(ce.pool, task)
				ce.dispatch(now)
			}
			e.poolLen = func() int { return len(ce.pool) }
		}
		if err := ce.loopCentral(); err != nil {
			return nil, err
		}
		ce.finalize()
		return ce.res, nil
	}
	if err := e.loop(); err != nil {
		return nil, err
	}
	e.finalize()
	return e.res, nil
}

func (e *engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.events, ev)
	e.met.heapDepth(e.events.Len())
}

// cancelCheckMask throttles context polls to one per 64 processed events:
// cheap enough for the hot path, responsive enough that a cancelled trial
// aborts within microseconds of simulated work.
const cancelCheckMask = 63

// checkCancelled polls the run context once every cancelCheckMask+1 events
// and converts a cancellation into the run-aborting error.
func (e *engine) checkCancelled() error {
	if e.processed&cancelCheckMask == 0 {
		if err := e.ctx.Err(); err != nil {
			return fmt.Errorf("sim: run cancelled at t=%.1f after %d events: %w", e.lastT, e.processed, err)
		}
	}
	e.processed++
	return nil
}

func (e *engine) loop() error {
	for e.events.Len() > 0 {
		if err := e.checkCancelled(); err != nil {
			return err
		}
		ev := heap.Pop(&e.events).(event)
		if ev.kind == evFault && !e.faultWorkRemains() {
			// Trailing fault beyond the last resolvable task: dropping it
			// (before the meter advances) is what lets the loop drain — the
			// stochastic processes otherwise reschedule forever.
			continue
		}
		e.depthIntegral += float64(e.inSystem) * (ev.time - e.lastT)
		e.lastT = ev.time
		at, exhausted := e.meter.Advance(ev.time)
		e.sampleEnergy(at)
		if exhausted {
			e.res.EnergyExhausted = true
			e.res.ExhaustedAt = at
			e.res.Makespan = at
			e.met.energyExhausted()
			e.cfg.Observer.EnergyExhausted(at)
			return nil
		}
		e.checkBrownout(at)
		e.met.event(ev.kind, e.inSystem)
		switch ev.kind {
		case evArrival:
			e.arrived++
			e.arrive(ev.time, ev.idx)
		case evCompletion:
			if !e.staleCompletion(ev) {
				e.complete(ev.time, ev.idx)
			}
		case evPark:
			e.park(ev.idx, ev.gen)
		case evFault:
			e.handleFault(ev.time, ev.idx)
		case evRepair:
			e.handleRepair(ev.time, ev.idx)
		case evRequeue:
			e.handleRequeue(ev.time, ev.idx)
		}
		e.res.Makespan = ev.time
	}
	return nil
}

// staleCompletion reports whether a completion event refers to an execution
// that a failure already killed (the core's run generation moved on).
func (e *engine) staleCompletion(ev event) bool {
	return e.flt != nil && ev.gen != e.flt.runGen[ev.idx]
}

// sampleEnergy forwards one energy-meter trajectory point to the observer
// if it asked for them.
func (e *engine) sampleEnergy(t float64) {
	if e.eobs != nil {
		e.eobs.EnergySample(t, e.meter.Consumed(), e.meter.Rate())
	}
}

// arrive maps one task in immediate mode.
func (e *engine) arrive(now float64, taskIdx int) {
	task := e.trial.Tasks[taskIdx]
	ctx := &sched.Context{
		Now:           now,
		Task:          task,
		Model:         e.cfg.Model,
		Calc:          e.calc,
		EnergyLeft:    e.energyLeft,
		TasksLeft:     len(e.trial.Tasks) - taskIdx - 1,
		AvgQueueDepth: float64(e.inSystem) / float64(len(e.cores)),
		Rand:          e.rand,
		Counters:      e.met.schedCounters(),
	}
	e.decorateCtx(ctx)
	cands := sched.BuildCandidates(ctx, e)
	// With every core down the candidate set is empty; Mapper.Map expects a
	// non-empty set when it reaches the heuristic, so discard directly.
	var chosen *sched.Candidate
	if len(cands) > 0 {
		chosen = e.cfg.Mapper.Map(ctx, cands)
	}
	if chosen == nil {
		e.res.Discarded++
		e.met.taskDiscarded()
		if e.cfg.Trace {
			e.res.Traces[taskIdx].Outcome = OutcomeDiscarded
		}
		e.cfg.Observer.TaskDiscarded(now, task)
		return
	}
	e.res.Mapped++
	e.met.taskMapped()
	e.energyLeft -= chosen.EEC
	// Predict() convolves against the queue snapshot captured by
	// BuildCandidates, so the decision must be audited before the chosen
	// task is enqueued (which mutates the free-time chain).
	if e.dobs != nil {
		e.dobs.TaskDecision(now, task, chosen.Assignment, chosen.Predict(), chosen.EEC)
	}
	actual := e.cfg.Model.ActualExecTime(task, chosen.Core.Node, chosen.PState)
	q := queued{task: task, pstate: chosen.PState, actual: actual}
	idx := chosen.CoreIdx
	e.queues[idx] = append(e.queues[idx], q)
	e.ftc.OnEnqueue(idx, chosen.Core.Node, task.Type, chosen.PState, len(e.queues[idx]))
	e.inSystem++
	if e.cfg.Trace {
		tr := &e.res.Traces[taskIdx]
		tr.Mapped = true
		tr.Assignment = chosen.Assignment
	}
	e.cfg.Observer.TaskMapped(now, task, chosen.Assignment)
	if len(e.queues[idx]) == 1 {
		e.start(now, idx)
	}
}

// start begins executing the head of the core's queue: the core (idle at
// this instant) transitions to the task's P-state and a completion event is
// scheduled at the realized finish time.
func (e *engine) start(now float64, coreIdx int) {
	e.ftc.Invalidate(coreIdx) // the head gains Started/StartAt
	head := &e.queues[coreIdx][0]
	wake := 0.0
	if e.cfg.Park.Enabled {
		e.idleGen[coreIdx]++ // invalidate any pending park check
		if e.parked[coreIdx] {
			e.parked[coreIdx] = false
			e.res.ParkedTime += now - e.parkedAt[coreIdx]
			e.res.Wakeups++
			wake = e.cfg.Park.WakeLatency
		}
	}
	e.setPState(now, coreIdx, head.pstate)
	if e.cfg.PowerCV > 0 {
		node := e.cfg.Model.Cluster.Node(e.cores[coreIdx])
		factor := e.powerRand.GammaMeanCV(1, e.cfg.PowerCV)
		e.meter.SetPower(coreIdx, node.Power[head.pstate]*factor)
	}
	head.started = true
	head.startAt = now
	if e.cfg.Trace {
		e.res.Traces[head.task.ID].Start = now
	}
	e.cfg.Observer.TaskStarted(now, head.task, e.assignment(coreIdx, head.pstate))
	gen := 0
	if e.flt != nil {
		gen = e.flt.runGen[coreIdx]
	}
	e.push(event{time: now + wake + head.actual, kind: evCompletion, idx: coreIdx, gen: gen})
}

// park power-gates a core if it is still idle and the check is current.
func (e *engine) park(coreIdx, gen int) {
	if !e.cfg.Park.Enabled || e.parked[coreIdx] || gen != e.idleGen[coreIdx] || len(e.queues[coreIdx]) > 0 {
		return
	}
	if e.coreDown(coreIdx) {
		return // a failed core already draws nothing; keep the 0 W override
	}
	e.parked[coreIdx] = true
	e.parkedAt[coreIdx] = e.meter.Now()
	node := e.cfg.Model.Cluster.Node(e.cores[coreIdx])
	e.meter.SetPower(coreIdx, e.cfg.Park.PowerFrac*node.Power[cluster.P4])
}

// setPState changes a core's P-state through the meter and notifies the
// observer of real transitions only. When a power override is active the
// meter call must happen even at an unchanged P-state, so the override is
// cleared and the core charges table power again (previously the early
// return left e.g. a parked core's retention power active while it
// executed a task at the idle P-state).
func (e *engine) setPState(now float64, coreIdx int, ps cluster.PState) {
	changed := e.meter.PStateOf(coreIdx) != ps
	if !changed && !e.meter.Overridden(coreIdx) {
		return
	}
	e.meter.SetPState(coreIdx, ps)
	if changed {
		e.cfg.Observer.PStateChanged(now, e.cores[coreIdx], ps)
	}
}

// assignment reconstructs the sched.Assignment of a core's current task.
func (e *engine) assignment(coreIdx int, ps cluster.PState) sched.Assignment {
	return sched.Assignment{Core: e.cores[coreIdx], CoreIdx: coreIdx, PState: ps}
}

// complete retires the head of the core's queue and starts the next task
// (or parks the core in the idle P-state).
func (e *engine) complete(now float64, coreIdx int) {
	q := e.queues[coreIdx]
	head := q[0]
	e.queues[coreIdx] = q[1:]
	// One version bump covers the head pop and any overdue-waiting drops
	// below: no free-time query can run before the queue settles.
	e.ftc.Invalidate(coreIdx)
	e.inSystem--
	onTime := now <= head.task.Deadline
	if onTime {
		e.res.OnTime++
		e.res.WeightedOnTime += head.task.Priority
		if e.cfg.Trace {
			e.res.Traces[head.task.ID].Outcome = OutcomeOnTime
		}
	} else {
		e.res.Late++
		if e.cfg.Trace {
			e.res.Traces[head.task.ID].Outcome = OutcomeLate
		}
	}
	e.met.taskFinished(onTime)
	e.cfg.Observer.TaskFinished(now, head.task, e.assignment(coreIdx, head.pstate), onTime)
	if e.cfg.Trace {
		e.res.Traces[head.task.ID].Finish = now
	}
	if e.cfg.CancelOverdueWaiting {
		for len(e.queues[coreIdx]) > 0 && e.queues[coreIdx][0].task.Deadline < now {
			dropped := e.queues[coreIdx][0]
			e.queues[coreIdx] = e.queues[coreIdx][1:]
			e.inSystem--
			e.res.Cancelled++
			e.met.taskCancelled()
			if e.cfg.Trace {
				e.res.Traces[dropped.task.ID].Outcome = OutcomeCancelled
			}
		}
	}
	if len(e.queues[coreIdx]) > 0 {
		e.start(now, coreIdx)
	} else {
		e.setPState(now, coreIdx, e.cfg.IdlePState)
		e.applyIdlePower(coreIdx)
		if e.cfg.Park.Enabled {
			e.idleGen[coreIdx]++
			e.push(event{time: now + e.cfg.Park.Timeout, kind: evPark, idx: coreIdx, gen: e.idleGen[coreIdx]})
		}
	}
}

func (e *engine) finalize() {
	r := e.res
	r.Missed = r.Window - r.OnTime
	r.Unfinished = r.Window - r.OnTime - r.Late - r.Discarded - r.Cancelled - r.LostToFailure
	if e.flt != nil {
		for i, down := range e.flt.down {
			if down {
				r.DownTime += e.meter.Now() - e.flt.downAt[i]
			}
		}
	}
	if e.cfg.Park.Enabled {
		for i, p := range e.parked {
			if p {
				r.ParkedTime += e.meter.Now() - e.parkedAt[i]
			}
		}
	}
	r.EnergyConsumed = e.meter.Consumed()
	r.EnergyEstimateLeft = e.energyLeft
	if r.Makespan > 0 {
		r.AvgQueueDepthTime = e.depthIntegral / (r.Makespan * float64(len(e.cores)))
	}
	if e.cfg.VerifyEnergy {
		if diff, err := e.meter.Verify(); err == nil {
			r.EnergyVerifyError = diff
		}
	}
	e.met.finish(r.Makespan)
}

// String summarizes the result in one line.
func (r *Result) String() string {
	return fmt.Sprintf("result{window=%d onTime=%d missed=%d late=%d discarded=%d unfinished=%d energy=%.3g exhausted=%v}",
		r.Window, r.OnTime, r.Missed, r.Late, r.Discarded, r.Unfinished, r.EnergyConsumed, r.EnergyExhausted)
}
