package sim

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/randx"
	"repro/internal/robustness"
	"repro/internal/sched"
	"repro/internal/workload"
)

func runCentral(t *testing.T, m *workload.Model, policy PullPolicy, budget float64, trialSeed uint64) *Result {
	t.Helper()
	tr, err := workload.GenerateTrial(randx.NewStream(trialSeed), m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: m, CentralQueue: policy, EnergyBudget: budget, Trace: true}
	res, err := Run(cfg, tr, randx.NewStream(trialSeed).Child("d"))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCentralQueueBasicRun(t *testing.T) {
	m := buildModel(t, 40, 60)
	res := runCentral(t, m, EDFCheapest{}, math.Inf(1), 3)
	if res.Mapped != 60 || res.Discarded != 0 {
		t.Fatalf("central mode accounting: %v", res)
	}
	if res.OnTime+res.Late != 60 {
		t.Fatalf("unconstrained central run should finish everything: %v", res)
	}
	if res.OnTime+res.Late+res.Discarded+res.Unfinished+res.Cancelled != res.Window {
		t.Fatalf("outcome partition broken: %v", res)
	}
	// Every trace must be consistent: start no earlier than arrival, finish
	// equals start + quantile execution time.
	for _, tr := range res.Traces {
		if !tr.Mapped {
			t.Fatalf("task %d unmapped", tr.Task.ID)
		}
		if tr.Start < tr.Task.Arrival {
			t.Fatalf("task %d started %v before arrival %v", tr.Task.ID, tr.Start, tr.Task.Arrival)
		}
		want := m.ActualExecTime(tr.Task, tr.Assignment.Core.Node, tr.Assignment.PState)
		if math.Abs((tr.Finish-tr.Start)-want) > 1e-9 {
			t.Fatalf("task %d exec mismatch", tr.Task.ID)
		}
	}
}

func TestCentralQueueDeterministic(t *testing.T) {
	m := buildModel(t, 41, 50)
	a := runCentral(t, m, EDFCheapest{}, m.DefaultEnergyBudget(), 5)
	b := runCentral(t, m, EDFCheapest{}, m.DefaultEnergyBudget(), 5)
	if a.OnTime != b.OnTime || a.EnergyConsumed != b.EnergyConsumed {
		t.Fatal("central runs diverged")
	}
}

func TestCentralQueueDispatchOrderIsEDF(t *testing.T) {
	m := buildModel(t, 42, 80)
	res := runCentral(t, m, EDFCheapest{}, math.Inf(1), 7)
	// Among tasks that waited in the pool together, the one with the
	// earlier deadline must not start after one with a later deadline that
	// arrived no later. Verify a weaker, robust property: start order never
	// inverts deadline order by more than the number of cores (greedy
	// matching can reorder within one dispatch round).
	type se struct{ deadline, start float64 }
	var xs []se
	for _, tr := range res.Traces {
		xs = append(xs, se{tr.Task.Deadline, tr.Start})
	}
	inversions := 0
	for i := range xs {
		for j := range xs {
			if xs[i].deadline < xs[j].deadline && xs[i].start > xs[j].start &&
				xs[j].start > xs[i].deadline {
				inversions++
			}
		}
	}
	if inversions > 0 {
		t.Fatalf("%d gross EDF inversions", inversions)
	}
}

func TestCentralQueueVsImmediateUnderBudget(t *testing.T) {
	// The central queue defers commitment; under the paper's budget it
	// should be at least competitive with unfiltered immediate-mode MECT
	// on the same trials.
	m := buildModel(t, 43, 80)
	budget := m.DefaultEnergyBudget()
	central := runCentral(t, m, EDFCheapest{}, budget, 11)
	immediate := runOnce(t, m, mapperFor(sched.MinExpectedCompletionTime{}, sched.NoFilter), budget, 11, nil)
	if central.OnTime < immediate.OnTime/2 {
		t.Fatalf("central mode collapsed: %d on-time vs immediate %d", central.OnTime, immediate.OnTime)
	}
}

func TestCentralQueueConfigValidation(t *testing.T) {
	m := buildModel(t, 44, 30)
	tr, _ := workload.GenerateTrial(randx.NewStream(1), m)
	d := randx.NewStream(1)
	// Mapper and CentralQueue together are rejected.
	cfg := Config{Model: m, Mapper: mapperFor(sched.ShortestQueue{}, sched.NoFilter),
		CentralQueue: EDFCheapest{}, EnergyBudget: 1}
	if _, err := Run(cfg, tr, d); err == nil {
		t.Fatal("expected error for Mapper+CentralQueue")
	}
	// CancelOverdueWaiting is a per-core-queue feature.
	cfg = Config{Model: m, CentralQueue: EDFCheapest{}, CancelOverdueWaiting: true, EnergyBudget: 1}
	if _, err := Run(cfg, tr, d); err == nil {
		t.Fatal("expected error for CentralQueue+CancelOverdueWaiting")
	}
}

// decliningPolicy always declines, stranding the pool.
type decliningPolicy struct{}

func (decliningPolicy) Name() string { return "decline" }
func (decliningPolicy) Select(*robustness.Calculator, []workload.Task, int, float64, float64, int) (int, cluster.PState) {
	return -1, cluster.P0
}

func TestCentralQueuePolicyMayDecline(t *testing.T) {
	m := buildModel(t, 45, 30)
	res := runCentral(t, m, decliningPolicy{}, math.Inf(1), 13)
	if res.Mapped != 0 || res.OnTime != 0 {
		t.Fatalf("declining policy still mapped tasks: %v", res)
	}
	if res.Unfinished != res.Window {
		t.Fatalf("pool tasks should be unfinished: %v", res)
	}
}

func TestEDFCheapestPStateChoice(t *testing.T) {
	m := buildModel(t, 46, 30)
	calc := robustness.NewCalculator(m)
	// Generous deadline: cheapest state qualifies.
	task := workload.Task{ID: 0, Type: 0, Arrival: 0, Deadline: 100 * m.TAvg(), U: 0.5, Priority: 1}
	_, ps := EDFCheapest{}.Select(calc, []workload.Task{task}, 0, 0, 0, 0)
	if ps != cluster.P4 {
		t.Fatalf("generous deadline should pick P4, got %v", ps)
	}
	// Hopeless deadline: falls back to fastest.
	task.Deadline = -1
	_, ps = EDFCheapest{}.Select(calc, []workload.Task{task}, 0, 0, 0, 0)
	if ps != cluster.P0 {
		t.Fatalf("hopeless deadline should pick P0, got %v", ps)
	}
	// Earliest deadline wins the pool.
	early := workload.Task{ID: 1, Type: 0, Deadline: 10, U: 0.5}
	late := workload.Task{ID: 2, Type: 0, Deadline: 20, U: 0.5}
	pick, _ := EDFCheapest{}.Select(calc, []workload.Task{late, early}, 0, 0, 0, 0)
	if pick != 1 {
		t.Fatalf("EDF picked pool index %d, want 1", pick)
	}
}
