package sim

// Fault injection and brownout mechanics for both engines. Everything here
// is gated on e.flt / e.bro being non-nil, so the paper's fault-free,
// hard-halt configuration takes none of these paths and stays bit-identical
// (enforced by test and benchmark).
//
// A failure event kills whatever the stricken core is doing: the running
// task's energy is already spent and cannot be refunded; the run generation
// counter invalidates its pending completion event; and the running plus
// waiting tasks go to the recovery policy (drop, or requeue with bounded
// retries through the full filter chain). A transiently-failed core draws
// zero watts until its repair event; a permanently-failed node's cores
// never come back.

import (
	"repro/internal/fault"
	"repro/internal/randx"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Fault-source indices carried in evFault events: the two stochastic
// processes, then the scripted entries.
const (
	srcTransient = 0
	srcPermanent = 1
	srcScript    = 2 // scripted fault i has source srcScript+i
)

// faultRuntime is the engine's failure-injection state.
type faultRuntime struct {
	spec fault.Spec
	// Independent child streams per decision type, so adding draws to one
	// process never perturbs the other.
	transientRng *randx.Stream
	permanentRng *randx.Stream
	targetRng    *randx.Stream

	down     []bool    // per flat core index
	downAt   []float64 // time the core went down (valid while down)
	nodeDead []bool    // per node index
	runGen   []int     // bumped on failure; stale completions are dropped
	attempts map[int]int
	avail    float64 // steady-state availability for the reliability filter
}

// initFaults prepares the runtime and schedules the first failure of each
// enabled process plus every scripted fault.
func (e *engine) initFaults(decisions *randx.Stream) {
	rng := decisions.Child("fault")
	f := &faultRuntime{
		spec:         e.cfg.Faults,
		transientRng: rng.Child("transient"),
		permanentRng: rng.Child("permanent"),
		targetRng:    rng.Child("target"),
		down:         make([]bool, len(e.queues)),
		downAt:       make([]float64, len(e.queues)),
		nodeDead:     make([]bool, e.cfg.Model.Cluster.N()),
		runGen:       make([]int, len(e.queues)),
		attempts:     make(map[int]int),
		avail:        e.cfg.Faults.Availability(),
	}
	e.flt = f
	e.coreUpFn = func(idx int) bool { return !f.down[idx] }
	e.availFn = func(int) float64 { return f.avail }
	if f.spec.Transient.Enabled {
		e.push(event{time: f.spec.Transient.Sample(f.transientRng), kind: evFault, idx: srcTransient})
	}
	if f.spec.Permanent.Enabled {
		e.push(event{time: f.spec.Permanent.Sample(f.permanentRng), kind: evFault, idx: srcPermanent})
	}
	for i, sf := range f.spec.Script {
		e.push(event{time: sf.Time, kind: evFault, idx: srcScript + i})
	}
}

// coreDown reports whether a core is currently failed.
func (e *engine) coreDown(coreIdx int) bool {
	return e.flt != nil && e.flt.down[coreIdx]
}

// faultWorkRemains reports whether any task could still be affected by a
// future failure: arrivals pending, tasks queued or running, requeue events
// in flight, or (central mode) tasks pooled. Once it is false, fault events
// are dropped instead of processed, which is what lets the event loop drain
// — the stochastic processes otherwise reschedule themselves forever.
func (e *engine) faultWorkRemains() bool {
	return e.arrived < len(e.trial.Tasks) || e.inSystem > 0 || e.pendingReq > 0 ||
		(e.poolLen != nil && e.poolLen() > 0)
}

// decorateCtx attaches the fault/brownout state the scheduler needs: down
// cores drop out of candidate enumeration, availability discounts ρ for the
// reliability filter, and an active brownout stage floors the P-state and
// caps ζ_mul. All fields stay nil/zero when the features are off.
func (e *engine) decorateCtx(ctx *sched.Context) {
	ctx.FreeTimes = e.ftc
	ctx.Arena = e.arena
	if e.flt != nil {
		ctx.CoreUp = e.coreUpFn
		ctx.Availability = e.availFn
	}
	if e.bro != nil {
		if st := e.bro.Current(); st != nil {
			ctx.PStateFloor = st.PStateFloor
			ctx.ZetaMulOverride = st.ZetaMul
		}
	}
}

// checkBrownout advances the brownout automaton after a meter advance and
// applies any newly-tripped stage's measures. Transitions are detected at
// event granularity: the consumed fraction is only inspected when the
// simulation clock moves, so a stage formally trips at the first event at
// or after the crossing instant (documented in DESIGN.md).
func (e *engine) checkBrownout(now float64) {
	if e.bro == nil {
		return
	}
	frac := e.meter.Consumed() / e.meter.Budget()
	stage, changed := e.bro.Update(frac)
	if !changed {
		return
	}
	e.res.BrownoutStage = stage
	e.met.brownoutStage(stage)
	if e.bobs != nil {
		e.bobs.BrownoutStageChanged(now, stage, frac)
	}
	if st := e.bro.Current(); st.ParkIdle {
		for i := range e.queues {
			if len(e.queues[i]) == 0 && !e.coreDown(i) {
				e.meter.SetPower(i, 0)
			}
		}
	}
}

// applyIdlePower power-gates a core that just went idle when the active
// brownout stage calls for it (otherwise the core sits at the idle P-state
// power as usual).
func (e *engine) applyIdlePower(coreIdx int) {
	if e.bro == nil {
		return
	}
	if st := e.bro.Current(); st != nil && st.ParkIdle {
		e.meter.SetPower(coreIdx, 0)
	}
}

// handleFault fires one failure: picks the victim (for stochastic sources),
// injects it, and reschedules the source process.
func (e *engine) handleFault(now float64, src int) {
	f := e.flt
	switch src {
	case srcTransient:
		if idx, ok := f.pickUpCore(); ok {
			e.injectFault(now, fault.Transient, idx, -1, f.spec.RepairTime)
		}
		// With every node permanently dead no core can ever be struck
		// again; rescheduling would spin the loop forever.
		if !f.allNodesDead() {
			e.push(event{time: now + f.spec.Transient.Sample(f.transientRng), kind: evFault, idx: srcTransient})
		}
	case srcPermanent:
		if node, ok := f.pickAliveNode(); ok {
			e.injectFault(now, fault.Permanent, -1, node, 0)
		}
		if !f.allNodesDead() {
			e.push(event{time: now + f.spec.Permanent.Sample(f.permanentRng), kind: evFault, idx: srcPermanent})
		}
	default:
		sf := f.spec.Script[src-srcScript]
		if sf.Kind == fault.Permanent {
			e.injectFault(now, fault.Permanent, -1, sf.Node, 0)
		} else {
			repair := sf.Repair
			if repair <= 0 {
				repair = f.spec.RepairTime
			}
			e.injectFault(now, fault.Transient, sf.Core, -1, repair)
		}
	}
}

// pickUpCore selects a victim uniformly among up cores. No draw is consumed
// when every core is already down.
func (f *faultRuntime) pickUpCore() (int, bool) {
	up := 0
	for _, d := range f.down {
		if !d {
			up++
		}
	}
	if up == 0 {
		return 0, false
	}
	n := f.targetRng.IntN(up)
	for idx, d := range f.down {
		if d {
			continue
		}
		if n == 0 {
			return idx, true
		}
		n--
	}
	return 0, false // unreachable
}

// pickAliveNode selects a victim uniformly among alive nodes.
func (f *faultRuntime) pickAliveNode() (int, bool) {
	alive := 0
	for _, d := range f.nodeDead {
		if !d {
			alive++
		}
	}
	if alive == 0 {
		return 0, false
	}
	n := f.targetRng.IntN(alive)
	for node, d := range f.nodeDead {
		if d {
			continue
		}
		if n == 0 {
			return node, true
		}
		n--
	}
	return 0, false // unreachable
}

func (f *faultRuntime) allNodesDead() bool {
	for _, d := range f.nodeDead {
		if !d {
			return false
		}
	}
	return true
}

// injectFault applies one failure (transient: coreIdx; permanent: every
// core of node). Striking an already-down core is counted but changes
// nothing further.
func (e *engine) injectFault(now float64, kind fault.Kind, coreIdx, node int, repair float64) {
	e.res.Faults++
	e.met.faultInjected(kind)
	if kind == fault.Permanent {
		if e.flt.nodeDead[node] {
			return
		}
		e.flt.nodeDead[node] = true
		for idx, id := range e.cores {
			if id.Node == node {
				e.downCore(now, kind, idx, 0)
			}
		}
		return
	}
	e.downCore(now, kind, coreIdx, repair)
}

// downCore takes one core down: kills its queue, hands the stranded tasks
// to recovery, zeroes its draw, and (for transient faults) schedules the
// repair.
func (e *engine) downCore(now float64, kind fault.Kind, coreIdx int, repair float64) {
	f := e.flt
	if f.down[coreIdx] {
		return
	}
	f.down[coreIdx] = true
	f.downAt[coreIdx] = now
	f.runGen[coreIdx]++ // pending completion (if any) is now stale
	if e.fobs != nil {
		e.fobs.CoreFailed(now, e.cores[coreIdx], kind, repair)
	}
	q := e.queues[coreIdx]
	e.queues[coreIdx] = nil
	e.ftc.Invalidate(coreIdx)
	if len(q) > 0 {
		e.inSystem -= len(q)
		for i := range q {
			if q[i].started {
				e.res.TasksKilled++
				e.met.taskKilled()
			}
			if e.fobs != nil {
				e.fobs.TaskKilled(now, q[i].task, e.cores[coreIdx])
			}
			e.recoverTask(now, q[i].task)
		}
	}
	if e.cfg.Park.Enabled {
		e.idleGen[coreIdx]++ // invalidate pending park checks
		if e.parked[coreIdx] {
			e.parked[coreIdx] = false
			e.res.ParkedTime += now - e.parkedAt[coreIdx]
		}
	}
	e.meter.SetPower(coreIdx, 0)
	if e.onDown != nil {
		e.onDown(coreIdx)
	}
	if kind == fault.Transient {
		e.push(event{time: now + repair, kind: evRepair, idx: coreIdx})
	}
}

// handleRepair brings a transiently-failed core back: it returns at the
// idle P-state (or gated, under a parking brownout stage) and becomes
// eligible for work again.
func (e *engine) handleRepair(now float64, coreIdx int) {
	f := e.flt
	if !f.down[coreIdx] {
		return
	}
	if f.nodeDead[e.cores[coreIdx].Node] {
		// The node died permanently while this core's transient repair was
		// pending; the repair must not resurrect it.
		return
	}
	f.down[coreIdx] = false
	e.res.DownTime += now - f.downAt[coreIdx]
	e.meter.ClearPower(coreIdx)
	e.setPState(now, coreIdx, e.cfg.IdlePState)
	e.applyIdlePower(coreIdx)
	if e.fobs != nil {
		e.fobs.CoreRepaired(now, e.cores[coreIdx])
	}
	if e.cfg.Park.Enabled {
		e.idleGen[coreIdx]++
		e.push(event{time: now + e.cfg.Park.Timeout, kind: evPark, idx: coreIdx, gen: e.idleGen[coreIdx]})
	}
	if e.onUp != nil {
		e.onUp(now, coreIdx)
	}
}

// recoverTask routes one stranded task through the recovery policy: either
// it is lost, or a requeue event is scheduled after the backoff.
func (e *engine) recoverTask(now float64, task workload.Task) {
	rec := e.flt.spec.Recovery
	used := e.flt.attempts[task.ID]
	if rec.Mode != fault.Requeue || used >= rec.MaxRetries {
		e.loseTask(task)
		return
	}
	if rec.DeadlineAware && task.Deadline <= now {
		// Already late: a retry can only burn energy on a missed deadline.
		e.loseTask(task)
		return
	}
	e.flt.attempts[task.ID] = used + 1
	delay := rec.Backoff * float64(used+1)
	if rec.DeadlineAware {
		if slack := task.Deadline - now; delay > slack/2 {
			delay = slack / 2
		}
	}
	if e.fobs != nil {
		e.fobs.TaskRequeued(now, task, used+1)
	}
	e.pendingReq++
	e.push(event{time: now + delay, kind: evRequeue, idx: task.ID})
}

// loseTask records a task as lost to failure.
func (e *engine) loseTask(task workload.Task) {
	e.res.LostToFailure++
	e.met.taskFailed()
	if e.cfg.Trace {
		e.res.Traces[task.ID].Outcome = OutcomeFailed
	}
}

// handleRequeue re-dispatches a previously-stranded task. In immediate mode
// it re-enters the mapper — full candidate enumeration and filter chain, so
// a retry still has to justify its energy and robustness. In central mode
// it rejoins the pool. A retry that fails admission goes back through
// recovery, consuming another attempt, until the bound is hit.
func (e *engine) handleRequeue(now float64, taskID int) {
	e.pendingReq--
	e.res.Retries++
	e.met.taskRequeued()
	task := e.trial.Tasks[taskID]
	if e.redispatch != nil {
		e.redispatch(now, task)
		return
	}
	ctx := &sched.Context{
		Now:           now,
		Task:          task,
		Model:         e.cfg.Model,
		Calc:          e.calc,
		EnergyLeft:    e.energyLeft,
		TasksLeft:     len(e.trial.Tasks) - e.arrived,
		AvgQueueDepth: float64(e.inSystem) / float64(len(e.cores)),
		Rand:          e.rand,
		Counters:      e.met.schedCounters(),
	}
	e.decorateCtx(ctx)
	cands := sched.BuildCandidates(ctx, e)
	var chosen *sched.Candidate
	if len(cands) > 0 {
		chosen = e.cfg.Mapper.Map(ctx, cands)
	}
	if chosen == nil {
		e.recoverTask(now, task)
		return
	}
	// The retry charges the energy estimate again (the first attempt's
	// joules are genuinely gone) and counts as a fresh mapping decision,
	// matching the central engine where a requeued task re-enters the pool.
	e.res.Mapped++
	e.met.taskMapped()
	e.energyLeft -= chosen.EEC
	// Audit the retry decision before enqueueing, same as arrive(): the
	// prediction is evaluated against the pre-enqueue queue snapshot.
	if e.dobs != nil {
		e.dobs.TaskDecision(now, task, chosen.Assignment, chosen.Predict(), chosen.EEC)
	}
	actual := e.cfg.Model.ActualExecTime(task, chosen.Core.Node, chosen.PState)
	idx := chosen.CoreIdx
	e.queues[idx] = append(e.queues[idx], queued{task: task, pstate: chosen.PState, actual: actual})
	e.ftc.OnEnqueue(idx, chosen.Core.Node, task.Type, chosen.PState, len(e.queues[idx]))
	e.inSystem++
	if e.cfg.Trace {
		tr := &e.res.Traces[taskID]
		tr.Mapped = true
		tr.Assignment = chosen.Assignment
		tr.Outcome = OutcomeUnfinished // pending again until it completes
	}
	e.cfg.Observer.TaskMapped(now, task, chosen.Assignment)
	if len(e.queues[idx]) == 1 {
		e.start(now, idx)
	}
}
