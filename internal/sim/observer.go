package sim

import (
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/workload"
)

// NopObserver is the do-nothing Observer. The engine substitutes it when
// Config.Observer is nil so every emission site is unconditional, and
// implementations can embed it to pick up defaults for events they ignore.
type NopObserver struct{}

var _ Observer = NopObserver{}

// TaskMapped implements Observer.
func (NopObserver) TaskMapped(float64, workload.Task, sched.Assignment) {}

// TaskDiscarded implements Observer.
func (NopObserver) TaskDiscarded(float64, workload.Task) {}

// TaskStarted implements Observer.
func (NopObserver) TaskStarted(float64, workload.Task, sched.Assignment) {}

// TaskFinished implements Observer.
func (NopObserver) TaskFinished(float64, workload.Task, sched.Assignment, bool) {}

// PStateChanged implements Observer.
func (NopObserver) PStateChanged(float64, cluster.CoreID, cluster.PState) {}

// EnergyExhausted implements Observer.
func (NopObserver) EnergyExhausted(float64) {}

// EnergyObserver is an optional Observer extension: implementations also
// receive the energy meter's trajectory — one sample per processed event,
// after the meter advanced to it. consumed is cumulative wall energy,
// rate the instantaneous cluster draw in watts. High-volume; implementors
// should decimate if they retain samples.
type EnergyObserver interface {
	EnergySample(t, consumed, rate float64)
}

// MultiObserver fans every simulation event out to each member in order,
// so trace recording and metrics collection (and anything else) attach to
// one run simultaneously. Members that also implement EnergyObserver
// receive energy samples; the fan-out preserves member order for every
// event type.
type MultiObserver struct {
	obs    []Observer
	energy []EnergyObserver
}

var (
	_ Observer       = (*MultiObserver)(nil)
	_ EnergyObserver = (*MultiObserver)(nil)
)

// Multi composes observers into one. Nil members are dropped; with zero
// survivors it returns NopObserver, with one it returns that observer
// unwrapped.
func Multi(obs ...Observer) Observer {
	kept := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return NopObserver{}
	case 1:
		return kept[0]
	}
	m := &MultiObserver{obs: kept}
	for _, o := range kept {
		if eo, ok := o.(EnergyObserver); ok {
			m.energy = append(m.energy, eo)
		}
	}
	return m
}

// TaskMapped implements Observer.
func (m *MultiObserver) TaskMapped(t float64, task workload.Task, a sched.Assignment) {
	for _, o := range m.obs {
		o.TaskMapped(t, task, a)
	}
}

// TaskDiscarded implements Observer.
func (m *MultiObserver) TaskDiscarded(t float64, task workload.Task) {
	for _, o := range m.obs {
		o.TaskDiscarded(t, task)
	}
}

// TaskStarted implements Observer.
func (m *MultiObserver) TaskStarted(t float64, task workload.Task, a sched.Assignment) {
	for _, o := range m.obs {
		o.TaskStarted(t, task, a)
	}
}

// TaskFinished implements Observer.
func (m *MultiObserver) TaskFinished(t float64, task workload.Task, a sched.Assignment, onTime bool) {
	for _, o := range m.obs {
		o.TaskFinished(t, task, a, onTime)
	}
}

// PStateChanged implements Observer.
func (m *MultiObserver) PStateChanged(t float64, core cluster.CoreID, ps cluster.PState) {
	for _, o := range m.obs {
		o.PStateChanged(t, core, ps)
	}
}

// EnergyExhausted implements Observer.
func (m *MultiObserver) EnergyExhausted(t float64) {
	for _, o := range m.obs {
		o.EnergyExhausted(t)
	}
}

// EnergySample implements EnergyObserver, forwarding to the members that
// asked for it.
func (m *MultiObserver) EnergySample(t, consumed, rate float64) {
	for _, eo := range m.energy {
		eo.EnergySample(t, consumed, rate)
	}
}

// backlogBuckets bounds the sim_backlog_depth histogram: tasks in system
// observed at every event, roughly log-spaced up to the paper's window.
var backlogBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// simMetrics is the engine's prepared instrumentation: handles registered
// once in Run, bumped on the event loop. A nil *simMetrics (no registry
// attached) makes every method a no-op.
type simMetrics struct {
	events     [3]*metrics.Counter // indexed by event kind
	heapHW     *metrics.Max
	backlog    *metrics.Histogram
	mapped     *metrics.Counter
	discarded  *metrics.Counter
	onTime     *metrics.Counter
	late       *metrics.Counter
	cancelled *metrics.Counter
	exhausted *metrics.Counter
	makespan  *metrics.Max
	sched     *sched.Counters
}

// newSimMetrics registers the simulator's instruments.
func newSimMetrics(r *metrics.Registry) *simMetrics {
	if r == nil {
		return nil
	}
	return &simMetrics{
		events: [3]*metrics.Counter{
			evCompletion: r.Counter("sim_events_total", metrics.L("kind", "completion")),
			evArrival:    r.Counter("sim_events_total", metrics.L("kind", "arrival")),
			evPark:       r.Counter("sim_events_total", metrics.L("kind", "park")),
		},
		heapHW:     r.Max("sim_event_heap_high_water"),
		backlog:    r.Histogram("sim_backlog_depth", backlogBuckets),
		mapped:     r.Counter("sim_tasks_total", metrics.L("outcome", "mapped")),
		discarded:  r.Counter("sim_tasks_total", metrics.L("outcome", "discarded")),
		onTime:     r.Counter("sim_tasks_total", metrics.L("outcome", "on-time")),
		late:       r.Counter("sim_tasks_total", metrics.L("outcome", "late")),
		cancelled: r.Counter("sim_tasks_total", metrics.L("outcome", "cancelled")),
		exhausted: r.Counter("sim_energy_exhausted_total"),
		makespan:  r.Max("sim_makespan"),
	}
}

// event records one processed event and the backlog observed at it.
func (m *simMetrics) event(kind, backlog int) {
	if m == nil {
		return
	}
	m.events[kind].Inc()
	m.backlog.Observe(float64(backlog))
}

func (m *simMetrics) heapDepth(n int) {
	if m == nil {
		return
	}
	m.heapHW.Observe(float64(n))
}

func (m *simMetrics) taskMapped() {
	if m == nil {
		return
	}
	m.mapped.Inc()
}

func (m *simMetrics) taskDiscarded() {
	if m == nil {
		return
	}
	m.discarded.Inc()
}

func (m *simMetrics) taskFinished(onTime bool) {
	if m == nil {
		return
	}
	if onTime {
		m.onTime.Inc()
	} else {
		m.late.Inc()
	}
}

func (m *simMetrics) taskCancelled() {
	if m == nil {
		return
	}
	m.cancelled.Inc()
}

func (m *simMetrics) energyExhausted() {
	if m == nil {
		return
	}
	m.exhausted.Inc()
}

func (m *simMetrics) finish(makespan float64) {
	if m == nil {
		return
	}
	m.makespan.Observe(makespan)
}

func (m *simMetrics) schedCounters() *sched.Counters {
	if m == nil {
		return nil
	}
	return m.sched
}
