package sim

import (
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/workload"
)

// NopObserver is the do-nothing Observer. The engine substitutes it when
// Config.Observer is nil so every emission site is unconditional, and
// implementations can embed it to pick up defaults for events they ignore.
type NopObserver struct{}

var _ Observer = NopObserver{}

// TaskMapped implements Observer.
func (NopObserver) TaskMapped(float64, workload.Task, sched.Assignment) {}

// TaskDiscarded implements Observer.
func (NopObserver) TaskDiscarded(float64, workload.Task) {}

// TaskStarted implements Observer.
func (NopObserver) TaskStarted(float64, workload.Task, sched.Assignment) {}

// TaskFinished implements Observer.
func (NopObserver) TaskFinished(float64, workload.Task, sched.Assignment, bool) {}

// PStateChanged implements Observer.
func (NopObserver) PStateChanged(float64, cluster.CoreID, cluster.PState) {}

// EnergyExhausted implements Observer.
func (NopObserver) EnergyExhausted(float64) {}

// EnergyObserver is an optional Observer extension: implementations also
// receive the energy meter's trajectory — one sample per processed event,
// after the meter advanced to it. consumed is cumulative wall energy,
// rate the instantaneous cluster draw in watts. High-volume; implementors
// should decimate if they retain samples.
type EnergyObserver interface {
	EnergySample(t, consumed, rate float64)
}

// FaultObserver is an optional Observer extension for runs with fault
// injection: implementations additionally see failures, repairs, killed
// tasks, and requeue decisions. repair is the scheduled down interval for
// transient faults and 0 for permanent ones.
type FaultObserver interface {
	CoreFailed(t float64, core cluster.CoreID, kind fault.Kind, repair float64)
	CoreRepaired(t float64, core cluster.CoreID)
	// TaskKilled fires for every task stranded on the failed core (running
	// or waiting); whether it is lost or retried is reported separately via
	// TaskRequeued / the task's final outcome.
	TaskKilled(t float64, task workload.Task, core cluster.CoreID)
	// TaskRequeued fires when the recovery policy schedules a retry;
	// attempt counts from 1.
	TaskRequeued(t float64, task workload.Task, attempt int)
}

// BrownoutObserver is an optional Observer extension for runs with a
// brownout schedule: stage transitions as the budget drains (stage counts
// from 1; frac is the consumed budget fraction at the transition).
type BrownoutObserver interface {
	BrownoutStageChanged(t float64, stage int, frac float64)
}

// DecisionObserver is an optional Observer extension for the flight
// recorder: it sees the full mapping decision — the chosen assignment
// together with the scheduler's prediction (ρ and the completion-time
// summary) and the expected energy charge — at the instant the decision is
// made, before the task is enqueued. TaskMapped still fires afterwards for
// observers that only need the assignment.
type DecisionObserver interface {
	TaskDecision(t float64, task workload.Task, a sched.Assignment, pred sched.Prediction, eec float64)
}

// MultiObserver fans every simulation event out to each member in order,
// so trace recording and metrics collection (and anything else) attach to
// one run simultaneously. Members that also implement the EnergyObserver,
// FaultObserver, or BrownoutObserver extensions receive those events; the
// fan-out preserves member order for every event type.
type MultiObserver struct {
	obs       []Observer
	energy    []EnergyObserver
	faults    []FaultObserver
	brownout  []BrownoutObserver
	decisions []DecisionObserver
}

var (
	_ Observer         = (*MultiObserver)(nil)
	_ EnergyObserver   = (*MultiObserver)(nil)
	_ FaultObserver    = (*MultiObserver)(nil)
	_ BrownoutObserver = (*MultiObserver)(nil)
	_ DecisionObserver = (*MultiObserver)(nil)
)

// Multi composes observers into one. Nil members are dropped; with zero
// survivors it returns NopObserver, with one it returns that observer
// unwrapped.
func Multi(obs ...Observer) Observer {
	kept := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return NopObserver{}
	case 1:
		return kept[0]
	}
	m := &MultiObserver{obs: kept}
	for _, o := range kept {
		if eo, ok := o.(EnergyObserver); ok {
			m.energy = append(m.energy, eo)
		}
		if fo, ok := o.(FaultObserver); ok {
			m.faults = append(m.faults, fo)
		}
		if bo, ok := o.(BrownoutObserver); ok {
			m.brownout = append(m.brownout, bo)
		}
		if do, ok := o.(DecisionObserver); ok {
			m.decisions = append(m.decisions, do)
		}
	}
	return m
}

// TaskMapped implements Observer.
func (m *MultiObserver) TaskMapped(t float64, task workload.Task, a sched.Assignment) {
	for _, o := range m.obs {
		o.TaskMapped(t, task, a)
	}
}

// TaskDiscarded implements Observer.
func (m *MultiObserver) TaskDiscarded(t float64, task workload.Task) {
	for _, o := range m.obs {
		o.TaskDiscarded(t, task)
	}
}

// TaskStarted implements Observer.
func (m *MultiObserver) TaskStarted(t float64, task workload.Task, a sched.Assignment) {
	for _, o := range m.obs {
		o.TaskStarted(t, task, a)
	}
}

// TaskFinished implements Observer.
func (m *MultiObserver) TaskFinished(t float64, task workload.Task, a sched.Assignment, onTime bool) {
	for _, o := range m.obs {
		o.TaskFinished(t, task, a, onTime)
	}
}

// PStateChanged implements Observer.
func (m *MultiObserver) PStateChanged(t float64, core cluster.CoreID, ps cluster.PState) {
	for _, o := range m.obs {
		o.PStateChanged(t, core, ps)
	}
}

// EnergyExhausted implements Observer.
func (m *MultiObserver) EnergyExhausted(t float64) {
	for _, o := range m.obs {
		o.EnergyExhausted(t)
	}
}

// EnergySample implements EnergyObserver, forwarding to the members that
// asked for it.
func (m *MultiObserver) EnergySample(t, consumed, rate float64) {
	for _, eo := range m.energy {
		eo.EnergySample(t, consumed, rate)
	}
}

// CoreFailed implements FaultObserver.
func (m *MultiObserver) CoreFailed(t float64, core cluster.CoreID, kind fault.Kind, repair float64) {
	for _, fo := range m.faults {
		fo.CoreFailed(t, core, kind, repair)
	}
}

// CoreRepaired implements FaultObserver.
func (m *MultiObserver) CoreRepaired(t float64, core cluster.CoreID) {
	for _, fo := range m.faults {
		fo.CoreRepaired(t, core)
	}
}

// TaskKilled implements FaultObserver.
func (m *MultiObserver) TaskKilled(t float64, task workload.Task, core cluster.CoreID) {
	for _, fo := range m.faults {
		fo.TaskKilled(t, task, core)
	}
}

// TaskRequeued implements FaultObserver.
func (m *MultiObserver) TaskRequeued(t float64, task workload.Task, attempt int) {
	for _, fo := range m.faults {
		fo.TaskRequeued(t, task, attempt)
	}
}

// BrownoutStageChanged implements BrownoutObserver.
func (m *MultiObserver) BrownoutStageChanged(t float64, stage int, frac float64) {
	for _, bo := range m.brownout {
		bo.BrownoutStageChanged(t, stage, frac)
	}
}

// TaskDecision implements DecisionObserver.
func (m *MultiObserver) TaskDecision(t float64, task workload.Task, a sched.Assignment, pred sched.Prediction, eec float64) {
	for _, do := range m.decisions {
		do.TaskDecision(t, task, a, pred, eec)
	}
}

// backlogBuckets bounds the sim_backlog_depth histogram: tasks in system
// observed at every event, roughly log-spaced up to the paper's window.
var backlogBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// simMetrics is the engine's prepared instrumentation: handles registered
// once in Run, bumped on the event loop. A nil *simMetrics (no registry
// attached) makes every method a no-op.
type simMetrics struct {
	events        [numEventKinds]*metrics.Counter // indexed by event kind
	heapHW        *metrics.Max
	backlog       *metrics.Histogram
	mapped        *metrics.Counter
	discarded     *metrics.Counter
	onTime        *metrics.Counter
	late          *metrics.Counter
	cancelled     *metrics.Counter
	exhausted     *metrics.Counter
	makespan      *metrics.Max
	faults        [2]*metrics.Counter // indexed by fault.Kind
	killed        *metrics.Counter
	requeues      *metrics.Counter
	failed        *metrics.Counter
	brownoutTrans *metrics.Counter
	brownoutGauge *metrics.Gauge
	sched         *sched.Counters
}

// newSimMetrics registers the simulator's instruments.
func newSimMetrics(r *metrics.Registry) *simMetrics {
	if r == nil {
		return nil
	}
	return &simMetrics{
		events: [numEventKinds]*metrics.Counter{
			evCompletion: r.Counter("sim_events_total", metrics.L("kind", "completion")),
			evArrival:    r.Counter("sim_events_total", metrics.L("kind", "arrival")),
			evPark:       r.Counter("sim_events_total", metrics.L("kind", "park")),
			evFault:      r.Counter("sim_events_total", metrics.L("kind", "fault")),
			evRepair:     r.Counter("sim_events_total", metrics.L("kind", "repair")),
			evRequeue:    r.Counter("sim_events_total", metrics.L("kind", "requeue")),
		},
		heapHW:    r.Max("sim_event_heap_high_water"),
		backlog:   r.Histogram("sim_backlog_depth", backlogBuckets),
		mapped:    r.Counter("sim_tasks_total", metrics.L("outcome", "mapped")),
		discarded: r.Counter("sim_tasks_total", metrics.L("outcome", "discarded")),
		onTime:    r.Counter("sim_tasks_total", metrics.L("outcome", "on-time")),
		late:      r.Counter("sim_tasks_total", metrics.L("outcome", "late")),
		cancelled: r.Counter("sim_tasks_total", metrics.L("outcome", "cancelled")),
		exhausted: r.Counter("sim_energy_exhausted_total"),
		makespan:  r.Max("sim_makespan"),
		faults: [2]*metrics.Counter{
			fault.Transient: r.Counter("sim_faults_total", metrics.L("kind", "transient")),
			fault.Permanent: r.Counter("sim_faults_total", metrics.L("kind", "permanent")),
		},
		killed:        r.Counter("sim_tasks_killed_total"),
		requeues:      r.Counter("sim_requeues_total"),
		failed:        r.Counter("sim_tasks_total", metrics.L("outcome", "failed")),
		brownoutTrans: r.Counter("sim_brownout_transitions_total"),
		brownoutGauge: r.Gauge("sim_brownout_stage"),
	}
}

// event records one processed event and the backlog observed at it.
func (m *simMetrics) event(kind, backlog int) {
	if m == nil {
		return
	}
	m.events[kind].Inc()
	m.backlog.Observe(float64(backlog))
}

func (m *simMetrics) heapDepth(n int) {
	if m == nil {
		return
	}
	m.heapHW.Observe(float64(n))
}

func (m *simMetrics) taskMapped() {
	if m == nil {
		return
	}
	m.mapped.Inc()
}

func (m *simMetrics) taskDiscarded() {
	if m == nil {
		return
	}
	m.discarded.Inc()
}

func (m *simMetrics) taskFinished(onTime bool) {
	if m == nil {
		return
	}
	if onTime {
		m.onTime.Inc()
	} else {
		m.late.Inc()
	}
}

func (m *simMetrics) taskCancelled() {
	if m == nil {
		return
	}
	m.cancelled.Inc()
}

func (m *simMetrics) faultInjected(kind fault.Kind) {
	if m == nil {
		return
	}
	m.faults[kind].Inc()
}

func (m *simMetrics) taskKilled() {
	if m == nil {
		return
	}
	m.killed.Inc()
}

func (m *simMetrics) taskRequeued() {
	if m == nil {
		return
	}
	m.requeues.Inc()
}

func (m *simMetrics) taskFailed() {
	if m == nil {
		return
	}
	m.failed.Inc()
}

func (m *simMetrics) brownoutStage(stage int) {
	if m == nil {
		return
	}
	m.brownoutTrans.Inc()
	m.brownoutGauge.Set(float64(stage))
}

func (m *simMetrics) energyExhausted() {
	if m == nil {
		return
	}
	m.exhausted.Inc()
}

func (m *simMetrics) finish(makespan float64) {
	if m == nil {
		return
	}
	m.makespan.Observe(makespan)
}

func (m *simMetrics) schedCounters() *sched.Counters {
	if m == nil {
		return nil
	}
	return m.sched
}
