// Package core is the public facade of the reproduction: a single import
// that wires the substrates together — cluster generation, workload and
// execution-time pmf construction, the robustness calculator, the
// heuristics and filters of §V, the discrete-event simulator, and the
// experiment harness that regenerates every figure and table of the
// paper's evaluation.
//
// Typical use:
//
//	spec := core.DefaultSpec()
//	spec.Trials = 10
//	sys, err := core.NewSystem(spec)
//	...
//	fig, err := sys.Figure(6)        // paper Figure 6
//	text, err := fig.Render(72)      // ASCII box plots
//
// or, for a single observable run:
//
//	res, err := sys.SimulateOnce("LL", core.EnergyAndRobustness, 0)
package core

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/randx"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Re-exported types: the facade's vocabulary is defined in the subsystem
// packages; aliases make them reachable through one import.
type (
	// Spec pins down a full experimental setup (seed, trials, cluster and
	// workload parameters, energy budget scale).
	Spec = experiment.Spec
	// Figure is a reproduced paper figure of box-plot rows.
	Figure = experiment.Figure
	// Table is a rendered results table.
	Table = experiment.Table
	// VariantResult aggregates one heuristic × filter configuration.
	VariantResult = experiment.VariantResult
	// Result is a single simulation run's outcome.
	Result = sim.Result
	// TaskTrace is a per-task record in a traced run.
	TaskTrace = sim.TaskTrace
	// Heuristic is the immediate-mode assignment policy interface; custom
	// policies implement it and run through the same harness.
	Heuristic = sched.Heuristic
	// Filter restricts the feasible assignment set (§V-F).
	Filter = sched.Filter
	// Mapper combines a heuristic with filters.
	Mapper = sched.Mapper
	// FilterVariant names one of the paper's four filter configurations.
	FilterVariant = sched.FilterVariant
	// PriorityClass configures the priority extension's task mix.
	PriorityClass = workload.PriorityClass
	// RunReport is the merged observability report of an environment run.
	RunReport = experiment.RunReport
	// MetricsSnapshot is a point-in-time view of the merged metric registry.
	MetricsSnapshot = metrics.Snapshot
	// FaultSpec configures the failure-injection processes and the recovery
	// policy for resilient runs.
	FaultSpec = fault.Spec
	// BrownoutStage is one rung of the staged energy-degradation schedule.
	BrownoutStage = energy.BrownoutStage
	// Journal is the write-ahead log of completed trials that makes
	// interrupted sweeps resumable.
	Journal = experiment.Journal
	// TrialRecord is one journaled trial (result + metrics snapshot).
	TrialRecord = experiment.TrialRecord
	// RetryPolicy bounds per-trial failure re-attempts in the harness.
	RetryPolicy = experiment.RetryPolicy
	// PanicError is a recovered per-trial panic converted into an error.
	PanicError = experiment.PanicError
)

// ErrTransient marks a trial error as retryable under the harness retry
// policy; see experiment.ErrTransient.
var ErrTransient = experiment.ErrTransient

// ParseFaultSpec parses the compact key=value fault syntax used by the CLI
// flags (e.g. "mtbf=5000,repair=300,recovery=requeue,retries=2").
func ParseFaultSpec(s string) (FaultSpec, error) { return fault.ParseSpec(s) }

// DefaultBrownoutStages returns the three-stage 90/95/98% degradation
// schedule (tighten ζ_mul, floor the P-state, park idle cores).
func DefaultBrownoutStages() []BrownoutStage { return energy.DefaultBrownoutStages() }

// The paper's filter variants.
const (
	NoFilter            = sched.NoFilter
	EnergyOnly          = sched.EnergyOnly
	RobustnessOnly      = sched.RobustnessOnly
	EnergyAndRobustness = sched.EnergyAndRobustness
)

// DefaultSpec returns the paper's experimental setup (§VI): 8-node
// heterogeneous cluster, 100 task types, 50 trials of 1,000 bursty tasks,
// ζ_max = t_avg·p_avg·1000.
func DefaultSpec() Spec { return experiment.PaperSpec() }

// System is a built reproduction environment ready to run experiments.
type System struct {
	env *experiment.Env
}

// NewSystem builds the environment: cluster, pmf tables, trials.
func NewSystem(spec Spec) (*System, error) {
	return NewSystemContext(context.Background(), spec)
}

// NewSystemContext is NewSystem with cooperative cancellation during the
// (potentially long) build phase. The context also becomes the system's
// default run context, so every subsequent figure, table, and variant run
// — including the ablation studies — aborts cleanly when it is cancelled.
func NewSystemContext(ctx context.Context, spec Spec) (*System, error) {
	env, err := experiment.BuildContext(ctx, spec)
	if err != nil {
		return nil, err
	}
	env.SetContext(ctx)
	return &System{env: env}, nil
}

// AttachJournal opens (or creates) the write-ahead trial journal at path
// and attaches it to the system: every completed trial of a journalable
// run is persisted atomically before it counts as done. With resume set,
// trials already present in the journal are replayed instead of
// re-simulated — bit-identical to an uninterrupted run. The journal keys
// records by spec hash, so a journal written under a different seed,
// trial count, or workload is simply never matched. It trusts its hash:
// after changing heuristic or simulator *code*, delete the journal file.
func (s *System) AttachJournal(path string, resume bool) (*Journal, error) {
	j, err := experiment.OpenJournal(path)
	if err != nil {
		return nil, err
	}
	s.env.SetJournal(j, resume)
	return j, nil
}

// Env exposes the underlying experiment environment for advanced use
// (custom mappers, ablations, priority studies).
func (s *System) Env() *experiment.Env { return s.env }

// Model returns the fixed workload model (cluster, pmf tables, t_avg).
func (s *System) Model() *workload.Model { return s.env.Model }

// Budget returns the resolved energy constraint ζ_max.
func (s *System) Budget() float64 { return s.env.Budget }

// Describe returns a human-readable sketch of the built instance.
func (s *System) Describe() string {
	m := s.env.Model
	return fmt.Sprintf(
		"cluster: %d nodes / %d cores; t_avg=%.0f; p_avg=%.1f W; λ_eq=%.5f (fast %.5f, slow %.5f); ζ_max=%.4g; %d trials × %d tasks",
		m.Cluster.N(), m.Cluster.TotalCores(), m.TAvg(), m.Cluster.AvgPower(),
		m.EquilibriumRate(), m.FastRate(), m.SlowRate(),
		s.env.Budget, s.env.Spec.Trials, s.env.Spec.Workload.WindowSize)
}

// HeuristicByName resolves "SQ", "MECT", "LL", "Random", plus the extension
// policies "PLL", "GreenLL", "MaxRho", and "MinEEC". It is the facade over
// experiment.HeuristicByName, which trace replay also uses — keeping one
// name table means a recorded policy always resolves the same way.
func HeuristicByName(name string) (Heuristic, error) {
	return experiment.HeuristicByName(name)
}

// RunHeuristic runs one named heuristic with a paper filter variant over
// all trials.
func (s *System) RunHeuristic(name string, v FilterVariant) (*VariantResult, error) {
	return s.RunHeuristicContext(nil, name, v)
}

// RunHeuristicContext is RunHeuristic under an explicit context; nil falls
// back to the system's default context.
func (s *System) RunHeuristicContext(ctx context.Context, name string, v FilterVariant) (*VariantResult, error) {
	h, err := HeuristicByName(name)
	if err != nil {
		return nil, err
	}
	return s.env.RunVariantContext(ctx, h, v)
}

// RunMapper runs a custom mapper over all trials; budgetScale <= 0 keeps
// the environment budget.
func (s *System) RunMapper(m *Mapper, budgetScale float64, tag string) (*VariantResult, error) {
	return s.env.RunMapper(m, budgetScale, tag)
}

// Report assembles the observability report of everything run so far:
// per-phase timings, merged per-trial metrics, pmf operation counts, and
// derived headline figures (convolutions, cache hit ratio, rejections).
func (s *System) Report() *RunReport { return s.env.Report() }

// Metrics returns a merged copy of all per-trial metric snapshots.
func (s *System) Metrics() *MetricsSnapshot { return s.env.MetricsSnapshot() }

// SetProgress installs a per-trial progress callback invoked as
// (completedTrials, totalTrials, variantLabel) while variants run.
func (s *System) SetProgress(fn func(done, total int, label string)) {
	s.env.SetProgress(fn)
}

// Figure regenerates a paper figure (2–6).
func (s *System) Figure(n int) (*Figure, error) { return s.env.Figure(n) }

// FigureContext is Figure under an explicit context.
func (s *System) FigureContext(ctx context.Context, n int) (*Figure, error) {
	return s.env.FigureContext(ctx, n)
}

// SummaryTable regenerates the §VII filtering-improvement comparison.
func (s *System) SummaryTable() (*Table, error) { return s.env.SummaryTable() }

// SummaryTableContext is SummaryTable under an explicit context.
func (s *System) SummaryTableContext(ctx context.Context) (*Table, error) {
	return s.env.SummaryTableContext(ctx)
}

// SimulateOnce runs a single traced trial of the named heuristic and filter
// variant and returns the full per-task result — the observable,
// inspectable unit the examples build on. trialIdx selects one of the
// environment's trials.
func (s *System) SimulateOnce(name string, v FilterVariant, trialIdx int) (*Result, error) {
	h, err := HeuristicByName(name)
	if err != nil {
		return nil, err
	}
	if trialIdx < 0 || trialIdx >= s.env.Spec.Trials {
		return nil, fmt.Errorf("core: trial %d outside [0,%d)", trialIdx, s.env.Spec.Trials)
	}
	cfg := sim.Config{
		Model:        s.env.Model,
		Mapper:       &sched.Mapper{Heuristic: h, Filters: v.Filters()},
		EnergyBudget: s.env.Budget,
		Trace:        true,
		VerifyEnergy: true,
	}
	return sim.Run(cfg, s.env.Trial(trialIdx), randx.NewStream(s.env.Spec.Seed).ChildN("decisions", trialIdx))
}

// SimulateOnceResilient is SimulateOnce with fault injection and/or a
// brownout schedule active. The per-task energy verification is off (a
// killed task's spent joules cannot be reconciled against its completion
// record), so the Result's energy fields come straight from the meter.
// A zero FaultSpec and nil brownout reduce to an unverified SimulateOnce.
func (s *System) SimulateOnceResilient(name string, v FilterVariant, trialIdx int, faults FaultSpec, brownout []BrownoutStage) (*Result, error) {
	h, err := HeuristicByName(name)
	if err != nil {
		return nil, err
	}
	if trialIdx < 0 || trialIdx >= s.env.Spec.Trials {
		return nil, fmt.Errorf("core: trial %d outside [0,%d)", trialIdx, s.env.Spec.Trials)
	}
	cfg := sim.Config{
		Model:        s.env.Model,
		Mapper:       &sched.Mapper{Heuristic: h, Filters: v.Filters()},
		EnergyBudget: s.env.Budget,
		Trace:        true,
		Faults:       faults,
		Brownout:     brownout,
	}
	return sim.Run(cfg, s.env.Trial(trialIdx), randx.NewStream(s.env.Spec.Seed).ChildN("decisions", trialIdx))
}

// GenerateCluster builds just a random heterogeneous cluster from a seed —
// a convenience for tooling that inspects the machine model.
func GenerateCluster(seed uint64) (*cluster.Cluster, error) {
	return cluster.Generate(randx.NewStream(seed).Child("cluster"), cluster.PaperGenParams())
}

// BuildServeModel constructs just the fixed workload model and resolved
// energy budget of a spec — no trials, no harness — for long-lived serving
// processes (cmd/ecserve) that receive their workload over the network
// instead of generating it. The cluster and pmf tables are derived exactly
// as BuildContext derives them, so a server and an offline experiment with
// the same spec allocate on the identical instance.
func BuildServeModel(spec Spec) (*workload.Model, float64, error) {
	return experiment.BuildModelFromSpec(spec)
}
