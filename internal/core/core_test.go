package core

import (
	"strings"
	"testing"

	"repro/internal/sched"
)

func smallSpec() Spec {
	s := DefaultSpec()
	s.Trials = 2
	s.Workload.TaskTypes = 8
	s.Workload.WindowSize = 80
	s.Workload.BurstLen = 16
	s.Workload.PMFSamples = 300
	return s
}

func newSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDefaultSpecIsPaper(t *testing.T) {
	s := DefaultSpec()
	if s.Trials != 50 || s.Workload.WindowSize != 1000 {
		t.Fatalf("default spec drifted: %+v", s)
	}
}

func TestNewSystemAndDescribe(t *testing.T) {
	sys := newSystem(t)
	d := sys.Describe()
	for _, want := range []string{"cluster:", "t_avg", "ζ_max", "trials"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe missing %q: %s", want, d)
		}
	}
	if sys.Model() == nil || sys.Env() == nil || sys.Budget() <= 0 {
		t.Fatal("accessors broken")
	}
}

func TestNewSystemRejectsBadSpec(t *testing.T) {
	s := smallSpec()
	s.Trials = 0
	if _, err := NewSystem(s); err == nil {
		t.Fatal("expected error")
	}
}

func TestHeuristicByName(t *testing.T) {
	for _, n := range []string{"SQ", "MECT", "LL", "Random", "PLL", "GreenLL", "MaxRho", "MinEEC"} {
		h, err := HeuristicByName(n)
		if err != nil || h.Name() != n {
			t.Errorf("HeuristicByName(%q) = %v, %v", n, h, err)
		}
	}
	if _, err := HeuristicByName("nope"); err == nil {
		t.Fatal("expected error for unknown heuristic")
	}
}

func TestRunHeuristic(t *testing.T) {
	sys := newSystem(t)
	vr, err := sys.RunHeuristic("SQ", EnergyAndRobustness)
	if err != nil {
		t.Fatal(err)
	}
	if vr.Label != "SQ+en+rob" || len(vr.Missed) != 2 {
		t.Fatalf("unexpected result: %+v", vr)
	}
	if _, err := sys.RunHeuristic("nope", NoFilter); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunMapperCustom(t *testing.T) {
	sys := newSystem(t)
	m := &Mapper{Heuristic: sched.MinEnergy{}, Filters: []Filter{sched.RobustnessFilter{Thresh: 0.25}}}
	vr, err := sys.RunMapper(m, 0, "custom")
	if err != nil {
		t.Fatal(err)
	}
	if vr.FilterLabel != "custom" {
		t.Fatalf("tag %q", vr.FilterLabel)
	}
}

func TestFigureAndSummary(t *testing.T) {
	sys := newSystem(t)
	f, err := sys.Figure(5)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "fig5" || len(f.Rows) != 4 {
		t.Fatalf("figure wrong: %+v", f)
	}
	tab, err := sys.SummaryTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("summary rows %d", len(tab.Rows))
	}
}

func TestSimulateOnce(t *testing.T) {
	sys := newSystem(t)
	res, err := sys.SimulateOnce("MECT", NoFilter, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 80 {
		t.Fatalf("traces %d", len(res.Traces))
	}
	if res.EnergyVerifyError > 1e-4 {
		t.Fatalf("energy drift %v", res.EnergyVerifyError)
	}
	// Matches the harness's aggregate for the same trial (consistent
	// decision streams).
	vr, err := sys.RunHeuristic("MECT", NoFilter)
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.Missed) != vr.Missed[0] {
		t.Fatalf("SimulateOnce missed %d, harness trial 0 %v", res.Missed, vr.Missed[0])
	}
	if _, err := sys.SimulateOnce("MECT", NoFilter, 99); err == nil {
		t.Fatal("expected error for out-of-range trial")
	}
	if _, err := sys.SimulateOnce("nope", NoFilter, 0); err == nil {
		t.Fatal("expected error for unknown heuristic")
	}
}

func TestGenerateCluster(t *testing.T) {
	c, err := GenerateCluster(7)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 8 {
		t.Fatalf("nodes %d", c.N())
	}
	c2, _ := GenerateCluster(7)
	if c2.TotalCores() != c.TotalCores() {
		t.Fatal("not deterministic")
	}
}
