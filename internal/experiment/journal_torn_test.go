package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// TestJournalTornTailOffsets cuts a journal mid-record at several byte
// positions and checks that the load (a) keeps every record before the
// tear, (b) reports the tear's byte offset, and (c) bumps the
// journal_torn_tail_total counter — a torn tail is tolerated, not silent.
func TestJournalTornTailOffsets(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(TrialRecord{SpecHash: "h", Variant: "v", Trial: i, Result: &sim.Result{Window: i}}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Line start offsets, for cutting inside chosen records.
	var starts []int
	starts = append(starts, 0)
	for i, b := range data {
		if b == '\n' && i+1 < len(data) {
			starts = append(starts, i+1)
		}
	}
	if len(starts) != 3 {
		t.Fatalf("expected 3 journal lines, found %d", len(starts))
	}

	cases := []struct {
		name       string
		cut        int // byte length to keep
		wantLen    int
		wantTorn   bool
		wantOffset int64
	}{
		{"mid-last-record", starts[2] + 10, 2, true, int64(starts[2])},
		{"one-byte-into-last", starts[2] + 1, 2, true, int64(starts[2])},
		{"mid-second-record", starts[1] + 7, 1, true, int64(starts[1])},
		{"clean-line-boundary", starts[2], 2, false, 0},
		{"intact", len(data), 3, false, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, tc.name+".wal")
			if err := os.WriteFile(p, data[:tc.cut], 0o644); err != nil {
				t.Fatal(err)
			}
			reg := metrics.NewRegistry()
			j2, err := OpenJournalWith(p, reg)
			if err != nil {
				t.Fatalf("torn tail must be tolerated: %v", err)
			}
			if j2.Len() != tc.wantLen {
				t.Fatalf("kept %d records, want %d", j2.Len(), tc.wantLen)
			}
			off, torn := j2.TornTail()
			if torn != tc.wantTorn || off != tc.wantOffset {
				t.Fatalf("TornTail() = (%d, %v), want (%d, %v)", off, torn, tc.wantOffset, tc.wantTorn)
			}
			want := int64(0)
			if tc.wantTorn {
				want = 1
			}
			if got := reg.Counter("journal_torn_tail_total").Value(); got != want {
				t.Fatalf("journal_torn_tail_total = %d, want %d", got, want)
			}
		})
	}

	// A cut that leaves valid JSON followed by more records is damage, not
	// a torn tail, regardless of offset bookkeeping.
	damaged := append([]byte{}, data[:starts[1]+5]...)
	damaged = append(damaged, '\n')
	damaged = append(damaged, data[starts[2]:]...)
	p := filepath.Join(dir, "damaged.wal")
	if err := os.WriteFile(p, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(p); err == nil || !bytes.Contains([]byte(err.Error()), []byte("mid-file")) {
		t.Fatalf("mid-file damage accepted: %v", err)
	}
}
