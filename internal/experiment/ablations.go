package experiment

import (
	"fmt"
	"math"

	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file implements the ablation studies DESIGN.md calls out: the
// sensitivity of the filters' two tuning constants (ζ_mul and ρ_thresh),
// the energy-budget sweep, the arrival-pattern variants of §VIII, and the
// priority extension.

// AblateZetaMul sweeps fixed ζ_mul values against the paper's adaptive
// schedule for a heuristic running with en+rob filtering.
func (e *Env) AblateZetaMul(h sched.Heuristic, muls []float64) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("ζ_mul sensitivity for %s+en+rob (median missed deadlines)", h.Name()),
		Header: []string{"ζ_mul", "median missed", "mean energy", "exhausted trials"},
	}
	row := func(name string, vr *VariantResult) {
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.1f", vr.Summary.Median),
			fmt.Sprintf("%.4g", vr.MeanEnergy),
			fmt.Sprintf("%d/%d", vr.ExhaustedTrials, vr.Summary.N),
		})
	}
	for _, mul := range muls {
		m := &sched.Mapper{Heuristic: h, Filters: []sched.Filter{
			sched.EnergyFilter{Mul: sched.FixedZetaMul(mul)},
			sched.RobustnessFilter{},
		}}
		vr, err := e.RunMapper(m, 0, fmt.Sprintf("zmul=%.2f", mul))
		if err != nil {
			return nil, err
		}
		row(fmt.Sprintf("%.2f", mul), vr)
	}
	adaptive, err := e.RunVariant(h, sched.EnergyAndRobustness)
	if err != nil {
		return nil, err
	}
	row("adaptive (paper)", adaptive)
	return t, nil
}

// AblateRhoThresh sweeps the robustness filter threshold ρ_thresh for a
// heuristic running with en+rob filtering (paper value: 0.5).
func (e *Env) AblateRhoThresh(h sched.Heuristic, threshes []float64) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("ρ_thresh sensitivity for %s+en+rob (median missed deadlines)", h.Name()),
		Header: []string{"ρ_thresh", "median missed", "mean discarded", "mean energy"},
	}
	for _, th := range threshes {
		m := &sched.Mapper{Heuristic: h, Filters: []sched.Filter{
			sched.EnergyFilter{},
			sched.RobustnessFilter{Thresh: th},
		}}
		vr, err := e.RunMapper(m, 0, fmt.Sprintf("rthresh=%.2f", th))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", th),
			fmt.Sprintf("%.1f", vr.Summary.Median),
			fmt.Sprintf("%.1f", vr.MeanDiscarded),
			fmt.Sprintf("%.4g", vr.MeanEnergy),
		})
	}
	return t, nil
}

// AblateBudget sweeps the energy budget scale for a heuristic with en+rob
// filtering; scale <= 0 rows run unconstrained.
func (e *Env) AblateBudget(h sched.Heuristic, scales []float64) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("energy-budget sweep for %s+en+rob (median missed deadlines)", h.Name()),
		Header: []string{"ζ_max scale", "median missed", "exhausted trials"},
	}
	for _, sc := range scales {
		m := &sched.Mapper{Heuristic: h, Filters: sched.EnergyAndRobustness.Filters()}
		label := fmt.Sprintf("%.2f", sc)
		if sc <= 0 {
			label = "unconstrained"
		}
		vr, err := e.runBudget(m, sc, label)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%.1f", vr.Summary.Median),
			fmt.Sprintf("%d/%d", vr.ExhaustedTrials, vr.Summary.N),
		})
	}
	return t, nil
}

// runBudget is RunMapper with scale <= 0 meaning unconstrained (RunMapper
// treats <= 0 as "environment default").
func (e *Env) runBudget(m *sched.Mapper, scale float64, tag string) (*VariantResult, error) {
	if scale > 0 {
		return e.RunMapper(m, scale, tag)
	}
	save := e.Budget
	e.Budget = math.Inf(1)
	defer func() { e.Budget = save }()
	return e.RunMapper(m, 0, tag)
}

// ArrivalPattern names one §VIII arrival-rate variant.
type ArrivalPattern struct {
	Name string
	// Mutate rewrites the workload arrival parameters.
	Mutate func(*workload.Params)
}

// ArrivalPatterns returns the arrival-rate variants studied beyond the
// paper's fast–slow–fast default (§VIII future work).
func ArrivalPatterns() []ArrivalPattern {
	return []ArrivalPattern{
		{Name: "paper (fast-slow-fast)", Mutate: func(*workload.Params) {}},
		{Name: "uniform equilibrium", Mutate: func(p *workload.Params) {
			p.FastFactor = 1
			p.SlowFactor = 1
			p.FastRate = workload.EquilibriumRate
			p.SlowRate = workload.EquilibriumRate
		}},
		{Name: "single leading burst", Mutate: func(p *workload.Params) {
			p.BurstLen = p.WindowSize * 2 / 5 // one 2×-size burst, then lull
		}},
		{Name: "heavy oversubscription", Mutate: func(p *workload.Params) {
			p.FastFactor *= 2
			p.FastRate *= 2
		}},
		{Name: "mild oversubscription", Mutate: func(p *workload.Params) {
			p.FastFactor = 1.75
			p.FastRate = 1.0 / 16
		}},
	}
}

// AblateArrivals rebuilds the environment under each arrival pattern and
// reports the median missed deadlines of the heuristic with and without
// filtering. Only arrival parameters change; the cluster and pmf tables are
// regenerated from the same seed and thus identical.
func AblateArrivals(spec Spec, h sched.Heuristic) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("arrival-pattern study for %s (median missed deadlines)", h.Name()),
		Header: []string{"pattern", "none", "en+rob", "improvement %"},
	}
	for _, pat := range ArrivalPatterns() {
		s := spec
		pat.Mutate(&s.Workload)
		env, err := Build(s)
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pat.Name, err)
		}
		base, err := env.RunVariant(h, sched.NoFilter)
		if err != nil {
			return nil, err
		}
		best, err := env.RunVariant(h, sched.EnergyAndRobustness)
		if err != nil {
			return nil, err
		}
		imp := 0.0
		if base.Summary.Median > 0 {
			imp = 100 * (base.Summary.Median - best.Summary.Median) / base.Summary.Median
		}
		t.Rows = append(t.Rows, []string{
			pat.Name,
			fmt.Sprintf("%.1f", base.Summary.Median),
			fmt.Sprintf("%.1f", best.Summary.Median),
			fmt.Sprintf("%.2f", imp),
		})
	}
	return t, nil
}

// ParkingStudy evaluates the §VIII power-gating extension: the heuristic
// (with en+rob filtering) runs with no parking and with parking at several
// idle timeouts, all under the environment's energy budget. Shorter
// timeouts save more idle energy but wake more often.
func (e *Env) ParkingStudy(h sched.Heuristic, timeoutFracs []float64) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("core-parking study for %s+en+rob (timeouts as fractions of t_avg)", h.Name()),
		Header: []string{"park timeout", "median missed", "mean energy", "wakeups/trial", "parked core-time"},
	}
	m := &sched.Mapper{Heuristic: h, Filters: sched.EnergyAndRobustness.Filters()}
	base, err := e.RunConfigured(m, "no parking", func(*sim.Config) {})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"disabled",
		fmt.Sprintf("%.1f", base.Summary.Median),
		fmt.Sprintf("%.4g", base.MeanEnergy), "0", "0"})
	for _, frac := range timeoutFracs {
		park := sim.ParkPolicy{
			Enabled:     true,
			Timeout:     frac * e.Model.TAvg(),
			WakeLatency: 0.01 * e.Model.TAvg(),
			PowerFrac:   0.05,
		}
		vr, err := e.RunConfigured(m, fmt.Sprintf("park %.2f", frac), func(c *sim.Config) { c.Park = park })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f·t_avg", frac),
			fmt.Sprintf("%.1f", vr.Summary.Median),
			fmt.Sprintf("%.4g", vr.MeanEnergy),
			fmt.Sprintf("%.1f", vr.MeanWakeups),
			fmt.Sprintf("%.4g", vr.MeanParkedTime),
		})
	}
	return t, nil
}

// PowerNoiseStudy evaluates the §VIII stochastic-power extension: actual
// per-execution power draws vary around μ(i,π) with the given coefficients
// of variation while the heuristics keep planning with the mean.
func (e *Env) PowerNoiseStudy(h sched.Heuristic, cvs []float64) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("stochastic-power study for %s+en+rob", h.Name()),
		Header: []string{"power CV", "median missed", "mean energy", "exhausted trials"},
	}
	m := &sched.Mapper{Heuristic: h, Filters: sched.EnergyAndRobustness.Filters()}
	for _, cv := range append([]float64{0}, cvs...) {
		cv := cv
		vr, err := e.RunConfigured(m, fmt.Sprintf("powercv %.2f", cv), func(c *sim.Config) { c.PowerCV = cv })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", cv),
			fmt.Sprintf("%.1f", vr.Summary.Median),
			fmt.Sprintf("%.4g", vr.MeanEnergy),
			fmt.Sprintf("%d/%d", vr.ExhaustedTrials, vr.Summary.N),
		})
	}
	return t, nil
}

// CancellationStudy evaluates the §VIII cancel/reschedule direction:
// dropping waiting tasks whose deadlines already passed instead of
// executing them to completion, which trades guaranteed-late work for
// energy.
func (e *Env) CancellationStudy(h sched.Heuristic) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("overdue-cancellation study for %s+en+rob", h.Name()),
		Header: []string{"policy", "median missed", "mean energy", "cancelled/trial"},
	}
	m := &sched.Mapper{Heuristic: h, Filters: sched.EnergyAndRobustness.Filters()}
	for _, mode := range []struct {
		name   string
		cancel bool
	}{{"execute to completion (paper)", false}, {"cancel overdue waiting", true}} {
		mode := mode
		vr, err := e.RunConfigured(m, mode.name, func(c *sim.Config) { c.CancelOverdueWaiting = mode.cancel })
		if err != nil {
			return nil, err
		}
		cancelled := float64(e.Spec.Workload.WindowSize) - vr.MeanOnTime - vr.MeanLate - vr.MeanDiscarded - vr.MeanUnfinished
		t.Rows = append(t.Rows, []string{
			mode.name,
			fmt.Sprintf("%.1f", vr.Summary.Median),
			fmt.Sprintf("%.4g", vr.MeanEnergy),
			fmt.Sprintf("%.1f", cancelled),
		})
	}
	return t, nil
}

// CentralQueueStudy compares the paper's immediate-mode mapping against
// the central-queue extension (§VIII "reschedule" direction), where tasks
// commit to a core and P-state only when the core is ready to run them.
func (e *Env) CentralQueueStudy() (*Table, error) {
	t := &Table{
		Title:  "immediate-mode vs central-queue dispatch (median missed deadlines)",
		Header: []string{"policy", "median missed", "mean on-time", "mean energy", "exhausted trials"},
	}
	row := func(name string, vr *VariantResult) {
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.1f", vr.Summary.Median),
			fmt.Sprintf("%.1f", vr.MeanOnTime),
			fmt.Sprintf("%.4g", vr.MeanEnergy),
			fmt.Sprintf("%d/%d", vr.ExhaustedTrials, vr.Summary.N),
		})
	}
	for _, h := range []sched.Heuristic{sched.MinExpectedCompletionTime{}, sched.LightestLoad{}} {
		m := &sched.Mapper{Heuristic: h, Filters: sched.EnergyAndRobustness.Filters()}
		vr, err := e.RunMapper(m, 0, "en+rob")
		if err != nil {
			return nil, err
		}
		row("immediate "+m.Name(), vr)
	}
	central := &sched.Mapper{Heuristic: sched.ShortestQueue{}} // placeholder label source
	vr, err := e.run(nil, central, runOpts{
		budget:    e.Budget,
		trials:    e.trials,
		filterTag: "central",
		simMut: func(c *sim.Config) {
			c.Mapper = nil
			c.CentralQueue = sim.EDFCheapest{}
		},
	})
	if err != nil {
		return nil, err
	}
	row("central EDFCheapest", vr)
	return t, nil
}

// MTBFStudy evaluates graceful degradation under transient core faults: the
// heuristic (with en+rob filtering) runs fault-free and then under
// exponential failures at several MTBF values (given as multiples of t_avg),
// with repair time 0.25·t_avg and a deadline-aware requeue policy (2
// retries, backoff 0.05·t_avg). Tighter MTBFs strike more often; the table
// shows how much of the window survives.
func (e *Env) MTBFStudy(h sched.Heuristic, mtbfFracs []float64) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("transient-fault study for %s+en+rob (MTBF as multiples of t_avg)", h.Name()),
		Header: []string{"MTBF", "median missed", "faults/trial", "retries/trial", "lost/trial"},
	}
	m := &sched.Mapper{Heuristic: h, Filters: sched.EnergyAndRobustness.Filters()}
	base, err := e.RunConfigured(m, "no faults", func(*sim.Config) {})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"disabled",
		fmt.Sprintf("%.1f", base.Summary.Median), "0", "0", "0"})
	tavg := e.Model.TAvg()
	for _, frac := range mtbfFracs {
		spec := fault.Spec{
			Transient:  fault.Process{Enabled: true, Dist: fault.Exponential, MTBF: frac * tavg},
			RepairTime: 0.25 * tavg,
			Recovery: fault.Recovery{
				Mode:          fault.Requeue,
				MaxRetries:    2,
				Backoff:       0.05 * tavg,
				DeadlineAware: true,
			},
		}
		vr, err := e.RunConfigured(m, fmt.Sprintf("mtbf %.0f", frac),
			func(c *sim.Config) { c.Faults = spec })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f·t_avg", frac),
			fmt.Sprintf("%.1f", vr.Summary.Median),
			fmt.Sprintf("%.1f", vr.MeanFaults),
			fmt.Sprintf("%.1f", vr.MeanRetries),
			fmt.Sprintf("%.1f", vr.MeanLost),
		})
	}
	return t, nil
}

// BrownoutStudy compares the paper's hard halt at ζ_max against the staged
// brownout controller across energy-budget scales. Under a tight budget the
// hard halt strands everything mapped after exhaustion, while the brownout
// stages trade P-state headroom and idle power for continued (degraded)
// service before the wall.
func (e *Env) BrownoutStudy(h sched.Heuristic, budgetScales []float64) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("brownout study for %s+en+rob (hard halt vs staged degradation)", h.Name()),
		Header: []string{"ζ_max scale", "policy", "median missed", "mean energy", "exhausted", "stage"},
	}
	m := &sched.Mapper{Heuristic: h, Filters: sched.EnergyAndRobustness.Filters()}
	for _, sc := range budgetScales {
		budget := sc * e.Model.DefaultEnergyBudget()
		for _, mode := range []struct {
			name   string
			stages []energy.BrownoutStage
		}{{"hard halt (paper)", nil}, {"staged brownout", energy.DefaultBrownoutStages()}} {
			mode := mode
			vr, err := e.run(nil, m, runOpts{
				budget:    budget,
				trials:    e.trials,
				filterTag: fmt.Sprintf("brownout %s @%.2f", mode.name, sc),
				simMut:    func(c *sim.Config) { c.Brownout = mode.stages },
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.2f", sc),
				mode.name,
				fmt.Sprintf("%.1f", vr.Summary.Median),
				fmt.Sprintf("%.4g", vr.MeanEnergy),
				fmt.Sprintf("%d/%d", vr.ExhaustedTrials, vr.Summary.N),
				fmt.Sprintf("%.1f", vr.MeanBrownoutStage),
			})
		}
	}
	return t, nil
}

// PriorityStudy compares LL against the priority-aware PLL extension
// (§VIII) on trials whose tasks carry weighted priorities. The metric is
// the mean priority-weighted on-time value per trial.
func (e *Env) PriorityStudy(classes []workload.PriorityClass) (*Table, error) {
	trials := make([]*workload.Trial, e.Spec.Trials)
	for i := range trials {
		tr, err := workload.GenerateTrialWithPriorities(
			e.rootRng.ChildN("ptrial", i), e.Model, classes)
		if err != nil {
			return nil, err
		}
		trials[i] = tr
	}
	t := &Table{
		Title:  "priority extension: mean weighted on-time value per trial (en+rob filtering)",
		Header: []string{"heuristic", "weighted on-time", "on-time count", "median missed"},
	}
	for _, h := range []sched.Heuristic{sched.LightestLoad{}, sched.PriorityLightestLoad{}} {
		m := &sched.Mapper{Heuristic: h, Filters: sched.EnergyAndRobustness.Filters()}
		vr, err := e.RunWithTrials(m, trials, h.Name())
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			h.Name(),
			fmt.Sprintf("%.1f", vr.MeanWeightedOnTime),
			fmt.Sprintf("%.1f", vr.MeanOnTime),
			fmt.Sprintf("%.1f", vr.Summary.Median),
		})
	}
	return t, nil
}
