package experiment

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

// testSpec shrinks the paper spec so the harness tests run quickly while
// exercising the full pipeline.
func testSpec() Spec {
	s := PaperSpec()
	s.Trials = 3
	s.Workload.TaskTypes = 10
	s.Workload.WindowSize = 120
	s.Workload.BurstLen = 24
	s.Workload.PMFSamples = 300
	return s
}

func buildEnv(t *testing.T) *Env {
	t.Helper()
	env, err := Build(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestPaperSpec(t *testing.T) {
	s := PaperSpec()
	if s.Trials != 50 {
		t.Fatalf("paper trials %d, want 50", s.Trials)
	}
	if s.Workload.WindowSize != 1000 || s.ClusterGen.Nodes != 8 {
		t.Fatalf("paper spec drifted: %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidate(t *testing.T) {
	s := testSpec()
	s.Trials = 0
	if err := s.Validate(); err == nil {
		t.Fatal("expected error for zero trials")
	}
	s = testSpec()
	s.ClusterGen.Nodes = 0
	if err := s.Validate(); err == nil {
		t.Fatal("expected error for bad cluster params")
	}
	s = testSpec()
	s.Workload.TaskTypes = 0
	if err := s.Validate(); err == nil {
		t.Fatal("expected error for bad workload params")
	}
}

func TestBuildEnvironment(t *testing.T) {
	env := buildEnv(t)
	if env.Model == nil || env.Budget <= 0 {
		t.Fatal("environment incomplete")
	}
	want := env.Model.DefaultEnergyBudget()
	if math.Abs(env.Budget-want) > 1e-9*want {
		t.Fatalf("budget %v, want default %v at scale 1", env.Budget, want)
	}
	for i := 0; i < env.Spec.Trials; i++ {
		tr := env.Trial(i)
		if len(tr.Tasks) != env.Spec.Workload.WindowSize {
			t.Fatalf("trial %d has %d tasks", i, len(tr.Tasks))
		}
	}
	// Trials differ from one another.
	if env.Trial(0).Tasks[0].Arrival == env.Trial(1).Tasks[0].Arrival {
		t.Fatal("trials identical; per-trial streams broken")
	}
}

func TestBuildUnconstrainedBudget(t *testing.T) {
	s := testSpec()
	s.BudgetScale = 0
	env, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(env.Budget, 1) {
		t.Fatalf("budget %v, want +Inf", env.Budget)
	}
}

func TestRunVariantAggregates(t *testing.T) {
	env := buildEnv(t)
	vr, err := env.RunVariant(sched.ShortestQueue{}, sched.EnergyAndRobustness)
	if err != nil {
		t.Fatal(err)
	}
	if vr.Label != "SQ+en+rob" || vr.FilterLabel != "en+rob" {
		t.Fatalf("labels wrong: %q %q", vr.Label, vr.FilterLabel)
	}
	if len(vr.Missed) != env.Spec.Trials {
		t.Fatalf("%d samples, want %d", len(vr.Missed), env.Spec.Trials)
	}
	if vr.Summary.N != env.Spec.Trials {
		t.Fatalf("summary over %d", vr.Summary.N)
	}
	window := float64(env.Spec.Workload.WindowSize)
	for _, m := range vr.Missed {
		if m < 0 || m > window {
			t.Fatalf("missed %v outside [0,window]", m)
		}
	}
	// Outcome partition must hold in the aggregate means.
	total := vr.MeanOnTime + vr.MeanLate + vr.MeanDiscarded + vr.MeanUnfinished
	if math.Abs(total-window) > 1e-6 {
		t.Fatalf("mean outcomes sum to %v, want %v", total, window)
	}
	if vr.MeanEnergy <= 0 {
		t.Fatal("no energy consumed")
	}
}

func TestRunVariantDeterministic(t *testing.T) {
	env := buildEnv(t)
	a, err := env.RunVariant(sched.Random{}, sched.NoFilter)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.RunVariant(sched.Random{}, sched.NoFilter)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Missed {
		if a.Missed[i] != b.Missed[i] {
			t.Fatalf("trial %d diverged across identical runs", i)
		}
	}
	// And a rebuilt environment reproduces the same numbers.
	env2, err := Build(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	c, err := env2.RunVariant(sched.Random{}, sched.NoFilter)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Missed {
		if a.Missed[i] != c.Missed[i] {
			t.Fatalf("trial %d not reproducible from spec", i)
		}
	}
}

func TestRunVariantMemoized(t *testing.T) {
	env := buildEnv(t)
	a, err := env.RunVariant(sched.ShortestQueue{}, sched.NoFilter)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.RunVariant(sched.ShortestQueue{}, sched.NoFilter)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical variant runs should return the memoized result")
	}
	// A different budget scale must not hit the same cache entry.
	m := &sched.Mapper{Heuristic: sched.ShortestQueue{}}
	c, err := env.RunMapper(m, 0.5, "none")
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different budgets must not share cache entries")
	}
}

func TestRunMapperBudgetScale(t *testing.T) {
	env := buildEnv(t)
	m := &sched.Mapper{Heuristic: sched.MinExpectedCompletionTime{}}
	tight, err := env.RunMapper(m, 0.05, "tight")
	if err != nil {
		t.Fatal(err)
	}
	loose, err := env.RunMapper(m, 100, "loose")
	if err != nil {
		t.Fatal(err)
	}
	if tight.Summary.Median < loose.Summary.Median {
		t.Fatalf("tight budget (%v missed) beat loose (%v)", tight.Summary.Median, loose.Summary.Median)
	}
	if tight.ExhaustedTrials == 0 {
		t.Fatal("5% budget should exhaust")
	}
	if loose.ExhaustedTrials != 0 {
		t.Fatal("100× budget should never exhaust")
	}
}

func TestFigures2Through5(t *testing.T) {
	env := buildEnv(t)
	wantHeur := map[int]string{2: "SQ", 3: "MECT", 4: "LL", 5: "Random"}
	for n, heur := range wantHeur {
		f, err := env.Figure(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Rows) != 4 {
			t.Fatalf("fig %d has %d rows", n, len(f.Rows))
		}
		labels := []string{"none", "en", "rob", "en+rob"}
		for i, r := range f.Rows {
			if r.FilterLabel != labels[i] {
				t.Fatalf("fig %d row %d label %q, want %q", n, i, r.FilterLabel, labels[i])
			}
			if !strings.HasPrefix(r.Label, heur) {
				t.Fatalf("fig %d row label %q does not match heuristic %q", n, r.Label, heur)
			}
		}
		out, err := f.Render(60)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "en+rob") {
			t.Fatalf("render missing labels:\n%s", out)
		}
		csv := f.CSV()
		if !strings.HasPrefix(csv, "figure,variant,trial,missed\n") {
			t.Fatalf("csv header wrong: %q", csv[:40])
		}
		if lines := strings.Count(csv, "\n"); lines != 1+4*env.Spec.Trials {
			t.Fatalf("csv has %d lines, want %d", lines, 1+4*env.Spec.Trials)
		}
	}
}

func TestFigure6(t *testing.T) {
	env := buildEnv(t)
	f, err := env.Figure(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 4 {
		t.Fatalf("fig6 rows %d", len(f.Rows))
	}
	wantOrder := []string{"LL+en+rob", "SQ+en+rob", "MECT+en+rob", "Random+en+rob"}
	for i, r := range f.Rows {
		if r.Label != wantOrder[i] {
			t.Fatalf("fig6 row %d label %q, want %q", i, r.Label, wantOrder[i])
		}
	}
}

func TestFigureUnknown(t *testing.T) {
	env := buildEnv(t)
	for _, n := range []int{0, 1, 7} {
		if _, err := env.Figure(n); err == nil {
			t.Errorf("expected error for figure %d", n)
		}
	}
}

func TestSummaryTable(t *testing.T) {
	env := buildEnv(t)
	tab, err := env.SummaryTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	out := tab.Render()
	for _, h := range []string{"SQ", "MECT", "LL", "Random"} {
		if !strings.Contains(out, h) {
			t.Fatalf("summary table missing %s:\n%s", h, out)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "heuristic,none,en+rob,improvement %\n") {
		t.Fatalf("csv header: %q", csv)
	}
}

func TestAblateZetaMul(t *testing.T) {
	env := buildEnv(t)
	tab, err := env.AblateZetaMul(sched.ShortestQueue{}, []float64{0.8, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // two fixed + adaptive
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if !strings.Contains(tab.Render(), "adaptive") {
		t.Fatal("missing adaptive row")
	}
}

func TestAblateRhoThresh(t *testing.T) {
	env := buildEnv(t)
	tab, err := env.AblateRhoThresh(sched.MinExpectedCompletionTime{}, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestAblateBudget(t *testing.T) {
	env := buildEnv(t)
	tab, err := env.AblateBudget(sched.ShortestQueue{}, []float64{0.5, -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if !strings.Contains(tab.Render(), "unconstrained") {
		t.Fatal("missing unconstrained row")
	}
	// Env budget restored after the unconstrained run.
	if math.IsInf(env.Budget, 1) {
		t.Fatal("AblateBudget leaked the unconstrained budget into the env")
	}
}

func TestAblateArrivals(t *testing.T) {
	spec := testSpec()
	spec.Trials = 2
	tab, err := AblateArrivals(spec, sched.ShortestQueue{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(ArrivalPatterns()) {
		t.Fatalf("%d rows, want %d", len(tab.Rows), len(ArrivalPatterns()))
	}
}

func TestPriorityStudy(t *testing.T) {
	env := buildEnv(t)
	tab, err := env.PriorityStudy([]workload.PriorityClass{
		{Weight: 4, Fraction: 0.25}, {Weight: 1, Fraction: 0.75},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	out := tab.Render()
	if !strings.Contains(out, "LL") || !strings.Contains(out, "PLL") {
		t.Fatalf("priority table missing heuristics:\n%s", out)
	}
}

func TestSignificanceTable(t *testing.T) {
	env := buildEnv(t)
	tab, err := env.SignificanceTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Exactly one row (the best) has the placeholder comparison.
	placeholders := 0
	for _, row := range tab.Rows {
		if row[3] == "-" {
			placeholders++
			if row[4] != "-" {
				t.Fatalf("best row should have no p-value: %v", row)
			}
		}
	}
	if placeholders != 1 {
		t.Fatalf("%d placeholder rows, want 1", placeholders)
	}
	if !strings.Contains(tab.Render(), "95% CI") {
		t.Fatal("missing CI column")
	}
}

func TestParkingStudy(t *testing.T) {
	env := buildEnv(t)
	tab, err := env.ParkingStudy(sched.ShortestQueue{}, []float64{0.1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // disabled + two timeouts
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if tab.Rows[0][0] != "disabled" {
		t.Fatalf("first row %v", tab.Rows[0])
	}
	out := tab.Render()
	if !strings.Contains(out, "t_avg") {
		t.Fatalf("table missing timeout labels:\n%s", out)
	}
}

func TestPowerNoiseStudy(t *testing.T) {
	env := buildEnv(t)
	tab, err := env.PowerNoiseStudy(sched.ShortestQueue{}, []float64{0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 { // CV 0 baseline + one noisy row
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if tab.Rows[0][0] != "0.00" {
		t.Fatalf("baseline row %v", tab.Rows[0])
	}
}

func TestCancellationStudy(t *testing.T) {
	env := buildEnv(t)
	tab, err := env.CancellationStudy(sched.ShortestQueue{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if !strings.Contains(tab.Render(), "paper") {
		t.Fatal("missing baseline row")
	}
}

func TestClassStudy(t *testing.T) {
	spec := testSpec()
	spec.Trials = 2
	tab, err := ClassStudy(spec, workload.PaperClassMix())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	totalTasks := 0
	for _, row := range tab.Rows {
		var n int
		if _, err := fmt.Sscanf(row[1], "%d", &n); err != nil {
			t.Fatal(err)
		}
		totalTasks += n
	}
	want := spec.Trials * spec.Workload.WindowSize
	if totalTasks != want {
		t.Fatalf("class rows cover %d tasks, want %d", totalTasks, want)
	}
}

func TestCentralQueueStudy(t *testing.T) {
	env := buildEnv(t)
	tab, err := env.CentralQueueStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if !strings.Contains(tab.Render(), "central EDFCheapest") {
		t.Fatal("missing central row")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"x", "1"}, {"yyyy", "2"}},
	}
	out := tab.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "long-header") {
		t.Fatalf("render wrong:\n%s", out)
	}
	if !strings.Contains(out, "----") {
		t.Fatal("missing separator")
	}
}
