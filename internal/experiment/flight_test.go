package experiment

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/trace"
)

// replayCheck records trial 0 under fc and asserts the replay reproduces
// the trace bit for bit — fields and bytes.
func replayCheck(t *testing.T, env *Env, fc FlightConfig) *trace.Trace {
	t.Helper()
	rec, _, err := env.FlightTrace(nil, fc, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ReplayTrace(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Diff) != 0 {
		t.Fatalf("replay diverged:\n%s", strings.Join(rr.Diff, "\n"))
	}
	var a, b bytes.Buffer
	if err := rec.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := rr.Trace.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("replayed encoding differs from the record at the byte level")
	}
	return rec
}

func TestFlightReplayBitIdentical(t *testing.T) {
	env := buildEnv(t)
	rec := replayCheck(t, env, FlightConfig{Heuristic: "LL", Filter: "en+rob"})
	if len(rec.Rows) != env.Spec.Workload.WindowSize {
		t.Fatalf("rows %d, want one per trial task (%d)", len(rec.Rows), env.Spec.Workload.WindowSize)
	}
	var mapped int
	for _, r := range rec.Rows {
		if r.Verdict == "mapped" {
			if r.PredRho < 0 || r.PredRho > 1 {
				t.Fatalf("task %d: mapped without a prediction (ρ=%v)", r.ID, r.PredRho)
			}
			mapped++
		}
	}
	if mapped == 0 {
		t.Fatal("no task was mapped; the decision audit never fired")
	}
}

func TestFlightReplayFaultsBrownout(t *testing.T) {
	env := buildEnv(t)
	fc := FlightConfig{
		Heuristic:   "MECT",
		Filter:      "rob",
		BudgetScale: 0.7,
		Faults: fault.Spec{
			Transient:  fault.Process{Enabled: true, Dist: fault.Exponential, MTBF: 2 * env.Model.TAvg()},
			RepairTime: 0.3 * env.Model.TAvg(),
			Recovery:   fault.Recovery{Mode: fault.Requeue, MaxRetries: 2, Backoff: 0.05 * env.Model.TAvg()},
		},
		Brownout: energy.DefaultBrownoutStages(),
	}
	rec := replayCheck(t, env, fc)
	if len(rec.Events) == 0 {
		t.Fatal("fault injection left no events in the trace")
	}
}

func TestFlightReplayCentralQueue(t *testing.T) {
	env := buildEnv(t)
	replayCheck(t, env, FlightConfig{Central: true, RhoThresh: 0.5})
}

// TestFlightReplayCatchesTampering edits a recorded row and checks the gate
// actually trips: a different deadline changes the decisions downstream, and
// the diff must say so rather than pass silently.
func TestFlightReplayCatchesTampering(t *testing.T) {
	env := buildEnv(t)
	rec, _, err := env.FlightTrace(nil, FlightConfig{Heuristic: "LL", Filter: "en+rob"}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	tampered := 0
	for i := range rec.Rows {
		if rec.Rows[i].Verdict == "mapped" {
			rec.Rows[i].Deadline *= 0.5
			tampered++
			break
		}
	}
	if tampered == 0 {
		t.Fatal("no mapped row to tamper with")
	}
	rr, err := ReplayTrace(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Diff) == 0 {
		t.Fatal("tampered trace replayed bit-identical; the gate is blind")
	}
}

func TestFlightReplayRejections(t *testing.T) {
	env := buildEnv(t)
	rec, _, err := env.FlightTrace(nil, FlightConfig{Heuristic: "LL"}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	serve := *rec
	serve.Header.Kind = trace.KindServe
	if _, err := ReplayTrace(nil, &serve); err == nil || !strings.Contains(err.Error(), "cannot replay") {
		t.Fatalf("serve trace accepted for replay: %v", err)
	}

	drifted := *rec
	drifted.Header.ModelHash = "0000000000000000"
	if _, err := ReplayTrace(nil, &drifted); err == nil || !strings.Contains(err.Error(), "hash") {
		t.Fatalf("model-hash drift not refused: %v", err)
	}

	nospec := *rec
	nospec.Header.Spec = nil
	if _, err := ReplayTrace(nil, &nospec); err == nil {
		t.Fatal("spec-less trace accepted for replay")
	}
}

func TestTrialFromRowsErrors(t *testing.T) {
	if _, err := trialFromRows(nil); err == nil {
		t.Fatal("empty row set accepted")
	}
	if _, err := trialFromRows([]trace.Row{{ID: 0}, {ID: 0}}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := trialFromRows([]trace.Row{{ID: 0}, {ID: 5}}); err == nil {
		t.Fatal("non-contiguous ids accepted")
	}
	if _, err := trialFromRows([]trace.Row{{ID: 0, Arrival: 2}, {ID: 1, Arrival: 1}}); err == nil {
		t.Fatal("out-of-order arrivals accepted")
	}
	tr, err := trialFromRows([]trace.Row{{ID: 0, Arrival: 0, U: 0.5}, {ID: 1, Arrival: 1, U: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tasks[0].Priority != 1 || tr.Tasks[1].Priority != 1 {
		t.Fatalf("omitted priority must decode as 1, got %v/%v", tr.Tasks[0].Priority, tr.Tasks[1].Priority)
	}
}

func TestCalibrationStudy(t *testing.T) {
	env := buildEnv(t)
	cal, err := env.CalibrationStudy(nil, FlightConfig{Heuristic: "LL", Filter: "en+rob"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Tasks == 0 {
		t.Fatal("calibration scored no tasks")
	}
	if cal.ECE < 0 || cal.ECE > 1 {
		t.Fatalf("ECE %v outside [0,1]", cal.ECE)
	}
	if cal.P50Coverage < 0 || cal.P50Coverage > 1 || cal.P99Coverage < 0 || cal.P99Coverage > 1 {
		t.Fatalf("coverage outside [0,1]: p50=%v p99=%v", cal.P50Coverage, cal.P99Coverage)
	}
	if got := env.Report().Calibration; got != cal {
		t.Fatal("calibration not attached to the run report")
	}
	out := CalibrationTable(cal).Render()
	for _, want := range []string{"ECE", "coverage", "ρ∈[0.9,1.0)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("calibration table missing %q:\n%s", want, out)
		}
	}
}
