package experiment

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestFairnessTable(t *testing.T) {
	tr := &trace.Trace{Rows: []trace.Row{
		{ID: 0, Tenant: "gold-a", SLO: "gold", Arrival: 0, Deadline: 5, Finish: 4, Verdict: "mapped", Outcome: "on-time"},
		{ID: 1, Tenant: "gold-a", SLO: "gold", Arrival: 1, Deadline: 5, Finish: 8, Verdict: "mapped", Outcome: "late"},
		{ID: 2, Tenant: "flood", SLO: "bronze", Arrival: 1, Deadline: 1, Finish: -1, Verdict: "shed", Shed: "infeasible-deadline"},
		{ID: 3, Tenant: "flood", SLO: "bronze", Arrival: 2, Deadline: 2, Finish: -1, Verdict: "shed", Shed: "brownout"},
		{ID: 4, Arrival: 3, Deadline: 9, Finish: 6, Verdict: "mapped", Outcome: "on-time"},
	}}
	tab := FairnessTable(tr)
	if len(tab.Rows) != 3 { // gold-a, flood, untagged "-"
		t.Fatalf("%d rows, want 3", len(tab.Rows))
	}
	out := tab.Render()
	for _, want := range []string{"gold-a", "flood", "goodput/s", "p99 lateness"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fairness table missing %q:\n%s", want, out)
		}
	}
	byID := map[string][]string{}
	for _, r := range tab.Rows {
		byID[r[0]] = r
	}
	// Horizon is max(arrival, finish) = 8. gold-a: 1 on-time, 1 late,
	// lateness p99 = 8-5 = 3.
	g := byID["gold-a"]
	if g[2] != "2" || g[3] != "1" || g[4] != "1" {
		t.Fatalf("gold-a counts wrong: %v", g)
	}
	if g[8] != "0.1250" {
		t.Fatalf("gold-a goodput = %s, want 0.1250", g[8])
	}
	if g[9] != "3.0000" {
		t.Fatalf("gold-a p99 lateness = %s, want 3.0000", g[9])
	}
	f := byID["flood"]
	if f[5] != "2" || f[6] != "1" {
		t.Fatalf("flood shed counts wrong: %v", f)
	}
	if u := byID["-"]; u[1] != "-" || u[3] != "1" {
		t.Fatalf("untagged row wrong: %v", u)
	}
}

func TestP99(t *testing.T) {
	if got := p99(nil); got != 0 {
		t.Fatalf("p99(nil) = %v", got)
	}
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	if got := p99(xs); got != 99 {
		t.Fatalf("p99(1..100) = %v, want 99", got)
	}
}
