package experiment

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Hash returns a stable hex digest of the spec fields that determine
// simulation *results*: seed, trial count, cluster and workload generation
// parameters, and the budget scale. Harness-only knobs (Parallelism, Retry,
// TrialTimeout) are deliberately excluded — two runs that differ only in
// how they were executed produce identical trials and may share a journal.
func (s Spec) Hash() string {
	identity := struct {
		Seed        uint64
		Trials      int
		ClusterGen  cluster.GenParams
		Workload    workload.Params
		BudgetScale float64
	}{s.Seed, s.Trials, s.ClusterGen, s.Workload, s.BudgetScale}
	b, err := json.Marshal(identity)
	if err != nil {
		// The identity struct contains only plain numeric fields; Marshal
		// cannot fail. Guard anyway so a future field type cannot silently
		// collapse every spec onto one hash.
		panic(fmt.Sprintf("experiment: spec hash: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// TrialRecord is one journaled trial: the full simulation result plus the
// trial's metrics snapshot, keyed by (spec hash, variant label, trial
// index, seed). Replaying the record is bit-identical to re-simulating
// because seed streams are keyed by trial index, aggregation iterates in
// index order, and JSON round-trips float64 exactly.
type TrialRecord struct {
	SpecHash string            `json:"specHash"`
	Seed     uint64            `json:"seed"`
	Variant  string            `json:"variant"`
	Trial    int               `json:"trial"`
	Result   *sim.Result       `json:"result"`
	Metrics  *metrics.Snapshot `json:"metrics,omitempty"`
}

type trialKey struct {
	specHash string
	variant  string
	trial    int
	seed     uint64
}

// Journal is a write-ahead log of completed trials. Every Append persists
// the whole record set atomically (write to a temp file in the same
// directory, fsync, rename), so a crash at any instant leaves either the
// previous or the new journal on disk — never a torn file. Loading
// tolerates a truncated final line (the one failure mode of a crash during
// a non-atomic write by an older tool or a copy) by dropping it — loudly:
// the drop is logged with its byte offset and counted, never silent.
//
// Records are idempotent by key: appending a key that is already present
// is a no-op, so interleaved writers replaying the same spec cannot bloat
// the file.
type Journal struct {
	mu    sync.Mutex
	path  string
	recs  []TrialRecord
	index map[trialKey]int

	tornOffset int64
	torn       bool
}

// OpenJournal loads (or creates) the journal at path. A missing file is an
// empty journal; corrupt trailing data is dropped with the valid prefix
// kept. Corrupt data *before* valid records is an error — that is not a
// torn tail but a damaged file.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalWith(path, nil)
}

// OpenJournalWith is OpenJournal with instrumentation: a dropped torn tail
// increments journal_torn_tail_total in reg (nil disables the counter; the
// stderr diagnostic with the byte offset is always emitted).
func OpenJournalWith(path string, reg *metrics.Registry) (*Journal, error) {
	j := &Journal{path: path, index: make(map[trialKey]int)}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return j, nil
	}
	if err != nil {
		return nil, fmt.Errorf("experiment: open journal: %w", err)
	}
	defer f.Close()
	dec := trace.NewLineDecoder(f)
	for {
		var rec TrialRecord
		ok, err := dec.Next(&rec)
		if err != nil {
			return nil, fmt.Errorf("experiment: journal %s: %v", path, err)
		}
		if !ok {
			break
		}
		j.add(rec)
	}
	if dec.Torn() {
		// A torn tail can only be the final line; anything after it would
		// have been written by a later (complete) append. Dropping it is
		// safe — the record never counted as done — but must be visible.
		line, off := dec.TornAt()
		j.torn, j.tornOffset = true, off
		fmt.Fprintf(os.Stderr, "experiment: journal %s: dropped torn final line %d at byte offset %d (crash mid-write; the trial will be re-run)\n",
			path, line, off)
		if reg != nil {
			reg.Counter("journal_torn_tail_total").Inc()
		}
	}
	return j, nil
}

// TornTail reports whether loading dropped a torn final line, and at which
// byte offset the tear began.
func (j *Journal) TornTail() (offset int64, torn bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tornOffset, j.torn
}

// add indexes one record in memory, keeping the first copy of a key.
func (j *Journal) add(rec TrialRecord) {
	k := trialKey{rec.SpecHash, rec.Variant, rec.Trial, rec.Seed}
	if _, dup := j.index[k]; dup {
		return
	}
	j.recs = append(j.recs, rec)
	j.index[k] = len(j.recs) - 1
}

// Append journals one completed trial and persists atomically. The record
// must carry a non-nil Result.
func (j *Journal) Append(rec TrialRecord) error {
	if rec.Result == nil {
		return fmt.Errorf("experiment: journal append: record %q trial %d has no result", rec.Variant, rec.Trial)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	before := len(j.recs)
	j.add(rec)
	if len(j.recs) == before {
		return nil // idempotent duplicate
	}
	if err := j.persistLocked(); err != nil {
		// Roll back the in-memory append so memory and disk agree.
		k := trialKey{rec.SpecHash, rec.Variant, rec.Trial, rec.Seed}
		delete(j.index, k)
		j.recs = j.recs[:before]
		return err
	}
	return nil
}

// persistLocked writes every record to a temp file and renames it over the
// journal path. Callers hold j.mu.
func (j *Journal) persistLocked() error {
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(j.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("experiment: journal persist: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	enc := json.NewEncoder(w)
	for i := range j.recs {
		if err := enc.Encode(&j.recs[i]); err != nil {
			tmp.Close()
			return fmt.Errorf("experiment: journal persist: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("experiment: journal persist: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("experiment: journal sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("experiment: journal close: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("experiment: journal rename: %w", err)
	}
	return nil
}

// Lookup returns the journaled record for a key, if present.
func (j *Journal) Lookup(specHash, variant string, trial int, seed uint64) (*TrialRecord, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	i, ok := j.index[trialKey{specHash, variant, trial, seed}]
	if !ok {
		return nil, false
	}
	return &j.recs[i], true
}

// Len reports how many records the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}

// Path returns the journal's on-disk location.
func (j *Journal) Path() string { return j.path }
