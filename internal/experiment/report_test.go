package experiment

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/sched"
)

func TestReportAfterVariant(t *testing.T) {
	env := buildEnv(t)

	var mu sync.Mutex
	seen := 0
	lastLabel := ""
	env.SetProgress(func(done, total int, label string) {
		mu.Lock()
		defer mu.Unlock()
		seen++
		if total != env.Spec.Trials {
			t.Errorf("progress total %d, want %d", total, env.Spec.Trials)
		}
		lastLabel = label
	})

	if _, err := env.RunVariant(sched.LightestLoad{}, sched.EnergyAndRobustness); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if seen != env.Spec.Trials {
		t.Fatalf("progress fired %d times, want %d", seen, env.Spec.Trials)
	}
	if !strings.Contains(lastLabel, "en+rob") {
		t.Fatalf("progress label %q lacks the filter tag", lastLabel)
	}
	mu.Unlock()

	r := env.Report()
	if r.Trials != env.Spec.Trials || r.Seed != env.Spec.Seed {
		t.Fatalf("report identity wrong: %+v", r)
	}

	d := &r.Derived
	if d.MappingDecisions != int64(env.Spec.Trials*env.Spec.Workload.WindowSize) {
		t.Fatalf("decisions %d, want %d", d.MappingDecisions, env.Spec.Trials*env.Spec.Workload.WindowSize)
	}
	if d.CandidatesEnumerated <= d.MappingDecisions {
		t.Fatalf("candidates %d should exceed decisions %d", d.CandidatesEnumerated, d.MappingDecisions)
	}
	if d.FreeTimeCacheHits+d.FreeTimeCacheMisses == 0 {
		t.Fatal("free-time cache saw no lookups")
	}
	if d.FreeTimeCacheHitRatio <= 0 || d.FreeTimeCacheHitRatio > 1 {
		t.Fatalf("hit ratio %v out of range", d.FreeTimeCacheHitRatio)
	}
	if len(d.FilterRejections) == 0 {
		t.Fatal("en+rob run recorded no per-filter rejection series")
	}
	if d.EventsProcessed == 0 {
		t.Fatal("no simulator events in merged snapshot")
	}
	if r.PMF.Convolutions == 0 && r.PMF.GridConvolutions == 0 {
		t.Fatal("no pmf convolutions attributed to the environment")
	}

	// Phase timings: build and simulate must both be present with wall time.
	names := map[string]bool{}
	for _, p := range r.Phases {
		names[p.Name] = true
		if p.Seconds < 0 {
			t.Fatalf("phase %s has negative duration", p.Name)
		}
	}
	for _, want := range []string{"build", "simulate", "aggregate"} {
		if !names[want] {
			t.Fatalf("phase %q missing from %v", want, r.Phases)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	env := buildEnv(t)
	if _, err := env.RunVariant(sched.ShortestQueue{}, sched.NoFilter); err != nil {
		t.Fatal(err)
	}
	r := env.Report()
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	// DerivedStats contains a map, so compare via JSON.
	a, _ := json.Marshal(r.Derived)
	b, _ := json.Marshal(back.Derived)
	if string(a) != string(b) {
		t.Fatalf("derived stats changed in round trip:\n%s\n%s", a, b)
	}
	if len(back.Metrics.Metrics) != len(r.Metrics.Metrics) {
		t.Fatalf("metric count changed: %d vs %d", len(back.Metrics.Metrics), len(r.Metrics.Metrics))
	}

	text := r.Render()
	for _, want := range []string{"run report", "phases:", "free-time cache", "pmf:", "simulator:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, text)
		}
	}
}

// TestMergedMetricsIndependentOfWorkerOrder: two environments built from
// the same spec must produce identical merged snapshots even though the
// worker pool completes trials in nondeterministic order.
func TestMergedMetricsIndependentOfWorkerOrder(t *testing.T) {
	runMerged := func() string {
		env, err := Build(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := env.RunVariant(sched.LightestLoad{}, sched.EnergyAndRobustness); err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(env.MetricsSnapshot())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	a, b := runMerged(), runMerged()
	if a != b {
		t.Fatal("merged metrics depend on trial completion order")
	}
}
