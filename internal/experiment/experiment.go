// Package experiment is the reproduction harness for the paper's
// evaluation (§VI–§VII): it builds the fixed simulation environment
// (cluster, pmf tables, energy budget), generates the 50 trials, runs any
// heuristic × filter configuration over all trials on a worker pool, and
// assembles the box-plot figures (Figures 2–6), the summary-improvement
// table, and the ablation studies.
//
// The harness is crash-safe: runs are cancellable through a
// context.Context (SIGINT in the CLIs), each trial executes behind panic
// isolation with a bounded-backoff retry policy, and completed trials can
// be journaled to a write-ahead log so an interrupted sweep resumes
// bit-identically instead of starting over (see Journal).
package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/pmf"
	"repro/internal/randx"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Spec pins down one complete experimental setup.
type Spec struct {
	// Seed makes the whole experiment reproducible: cluster, pmf tables,
	// and all trials derive from it.
	Seed uint64
	// Trials is the number of simulation trials (paper: 50).
	Trials int
	// ClusterGen parameterizes the random cluster.
	ClusterGen cluster.GenParams
	// Workload parameterizes the workload model and trial generation.
	Workload workload.Params
	// BudgetScale multiplies the paper's default energy budget
	// ζ_max = t_avg·p_avg·window; values <= 0 mean unconstrained.
	BudgetScale float64
	// Parallelism bounds concurrent trials; <= 0 means GOMAXPROCS.
	// Harness-only: it never changes results (excluded from Hash).
	Parallelism int
	// Retry governs how per-trial failures (including recovered panics)
	// are re-attempted before the trial is quarantined. The zero value
	// quarantines on first failure. Harness-only (excluded from Hash).
	Retry RetryPolicy
	// TrialTimeout bounds each trial attempt's wall-clock time; zero means
	// unbounded. A timed-out trial is quarantined, never retried (the
	// simulator is deterministic, so a re-run would time out again).
	// Harness-only (excluded from Hash).
	TrialTimeout time.Duration
}

// PaperSpec is the configuration of §VI: 50 trials of 1,000 tasks on the
// 8-node cluster with the paper's constants.
func PaperSpec() Spec {
	return Spec{
		Seed:        2011_0913, // ICPP 2011 conference date; any fixed seed works
		Trials:      50,
		ClusterGen:  cluster.PaperGenParams(),
		Workload:    workload.PaperParams(),
		BudgetScale: 1,
	}
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.Trials < 1 {
		return fmt.Errorf("experiment: Trials %d must be >= 1", s.Trials)
	}
	if s.TrialTimeout < 0 {
		return fmt.Errorf("experiment: TrialTimeout %v must be >= 0", s.TrialTimeout)
	}
	if err := s.Retry.Validate(); err != nil {
		return err
	}
	if err := s.ClusterGen.Validate(); err != nil {
		return err
	}
	return s.Workload.Validate()
}

// RetryPolicy bounds how the harness re-attempts failed trials.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure; 0
	// quarantines immediately.
	MaxRetries int
	// Backoff is the delay before the first retry; attempt k waits
	// Backoff·2^(k-1) (exponential), capped at MaxBackoff.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth; <= 0 means 30s.
	MaxBackoff time.Duration
	// RetryPanics treats recovered panics as retryable. The simulator is
	// deterministic, so a panicking trial usually panics again — but a
	// bounded retry distinguishes data races and environment flakes from
	// systematic faults, and the attempts are counted in the harness
	// metrics either way.
	RetryPanics bool
}

// Validate reports whether the policy is usable.
func (p RetryPolicy) Validate() error {
	if p.MaxRetries < 0 {
		return fmt.Errorf("experiment: Retry.MaxRetries %d must be >= 0", p.MaxRetries)
	}
	if p.Backoff < 0 {
		return fmt.Errorf("experiment: Retry.Backoff %v must be >= 0", p.Backoff)
	}
	return nil
}

// backoff returns the delay before re-attempt number attempt (0-based).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	cap := p.MaxBackoff
	if cap <= 0 {
		cap = 30 * time.Second
	}
	if attempt > 30 {
		attempt = 30 // 2^30 × anything positive already exceeds any sane cap
	}
	d := p.Backoff << uint(attempt)
	if d <= 0 || d > cap {
		return cap
	}
	return d
}

// ErrTransient marks a trial error as retryable: wrap it
// (fmt.Errorf("...: %w", experiment.ErrTransient)) from custom heuristics,
// filters, or sim-config mutators whose failures are environmental rather
// than deterministic.
var ErrTransient = errors.New("transient trial failure")

// IsTransient reports whether err is marked retryable, either by wrapping
// ErrTransient or by implementing interface{ Transient() bool }.
func IsTransient(err error) bool {
	if errors.Is(err, ErrTransient) {
		return true
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// PanicError is a recovered per-trial panic, converted into an error so
// one poisoned trial cannot kill a 50-trial sweep. The stack is captured
// at the panic site.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value and its stack.
func (p *PanicError) Error() string {
	return fmt.Sprintf("trial panicked: %v\n%s", p.Value, p.Stack)
}

// harnessCounters instrument the runner itself (as opposed to the
// simulations it runs): trial lifecycle outcomes across every variant the
// environment executes.
type harnessCounters struct {
	run         *metrics.Counter // trials simulated to completion
	resumed     *metrics.Counter // trials replayed from the journal
	panicked    *metrics.Counter // attempts that ended in a recovered panic
	retried     *metrics.Counter // re-attempts issued by the retry policy
	timedout    *metrics.Counter // attempts killed by TrialTimeout
	cancelled   *metrics.Counter // trials aborted or never run due to cancellation
	quarantined *metrics.Counter // trials permanently failed
}

// Env is a built environment: everything held constant across trials.
type Env struct {
	Spec    Spec
	Model   *workload.Model
	Budget  float64 // resolved ζ_max (possibly +Inf)
	trials  []*workload.Trial
	rootRng *randx.Stream

	memoMu sync.Mutex
	memo   map[string]*VariantResult

	// Telemetry: every simulated trial runs with its own metrics registry
	// whose snapshot is merged here in trial-index order, so the aggregate
	// reflects all work the environment performed and is bit-identical
	// across re-runs regardless of worker scheduling (memo hits contribute
	// nothing — no work was done). phases accumulates per-phase
	// wall-clock; pmfBase is the process-global pmf operation sample taken
	// at Build, so reports can attribute convolution work to this
	// environment's lifetime. harness holds the runner's own lifecycle
	// counters, kept separate from the trial aggregate so resumed runs
	// still report bit-identical simulation metrics.
	metricsMu  sync.Mutex
	metricsAgg *metrics.Snapshot
	phases     *metrics.Phases
	pmfBase    pmf.OpCounts
	harness    *metrics.Registry
	hc         harnessCounters

	// optMu guards the harness options below.
	optMu   sync.Mutex
	baseCtx context.Context
	journal *Journal
	resume  bool
	specKey string // memoized Spec.Hash()
	calib   *trace.Calibration

	progressMu sync.Mutex
	progress   func(done, total int, label string)
}

// Build constructs the environment: cluster, pmf tables, energy budget, and
// all trial task streams.
func Build(spec Spec) (*Env, error) {
	return BuildContext(context.Background(), spec)
}

// BuildContext is Build with cooperative cancellation between trial
// generations (pmf-table and trial construction dominate startup time on
// big specs).
func BuildContext(ctx context.Context, spec Spec) (*Env, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	phases := metrics.NewPhases()
	stopBuild := phases.Start("build")
	defer stopBuild()
	root := randx.NewStream(spec.Seed)
	c, err := cluster.Generate(root.Child("cluster"), spec.ClusterGen)
	if err != nil {
		return nil, err
	}
	model, err := workload.BuildModel(root.Child("model"), c, spec.Workload)
	if err != nil {
		return nil, err
	}
	budget := math.Inf(1)
	if spec.BudgetScale > 0 {
		budget = spec.BudgetScale * model.DefaultEnergyBudget()
	}
	harness := metrics.NewRegistry()
	env := &Env{
		Spec: spec, Model: model, Budget: budget, rootRng: root,
		metricsAgg: &metrics.Snapshot{},
		phases:     phases,
		pmfBase:    pmf.ReadOpCounts(),
		harness:    harness,
		hc: harnessCounters{
			run:         harness.Counter("experiment_trials_run_total"),
			resumed:     harness.Counter("experiment_trials_resumed_total"),
			panicked:    harness.Counter("experiment_trials_panicked_total"),
			retried:     harness.Counter("experiment_trials_retried_total"),
			timedout:    harness.Counter("experiment_trials_timedout_total"),
			cancelled:   harness.Counter("experiment_trials_cancelled_total"),
			quarantined: harness.Counter("experiment_trials_quarantined_total"),
		},
	}
	env.trials = make([]*workload.Trial, spec.Trials)
	for i := range env.trials {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiment: build cancelled at trial %d/%d: %w", i, spec.Trials, err)
		}
		tr, err := workload.GenerateTrial(root.ChildN("trial", i), model)
		if err != nil {
			return nil, err
		}
		env.trials[i] = tr
	}
	return env, nil
}

// Trial returns the i-th trial's task stream.
func (e *Env) Trial(i int) *workload.Trial { return e.trials[i] }

// SetContext installs a default context consulted by every Run*/Figure/
// table entry point that is not handed an explicit one — the CLI hook that
// makes an entire sweep (including ablation studies built from many Run*
// calls) respond to SIGINT. Pass nil to restore context.Background().
func (e *Env) SetContext(ctx context.Context) {
	e.optMu.Lock()
	e.baseCtx = ctx
	e.optMu.Unlock()
}

// SetJournal attaches a write-ahead journal: every completed trial of a
// journalable run (the environment's own trial set, no sim-config
// mutation) is persisted before it is counted done. With resume set,
// journaled trials are replayed instead of re-simulated — bit-identical to
// an uninterrupted run, because seed streams are keyed by trial index and
// aggregation order is fixed. Pass nil to detach.
func (e *Env) SetJournal(j *Journal, resume bool) {
	e.optMu.Lock()
	e.journal = j
	e.resume = resume
	e.optMu.Unlock()
}

// runContext resolves the effective context for a run.
func (e *Env) runContext(ctx context.Context) context.Context {
	if ctx != nil {
		return ctx
	}
	e.optMu.Lock()
	defer e.optMu.Unlock()
	if e.baseCtx != nil {
		return e.baseCtx
	}
	return context.Background()
}

// specHash returns the environment's memoized spec hash.
func (e *Env) specHash() string {
	e.optMu.Lock()
	defer e.optMu.Unlock()
	if e.specKey == "" {
		e.specKey = e.Spec.Hash()
	}
	return e.specKey
}

// SetProgress installs a live progress callback invoked after every
// completed trial with the number done, the total for the current variant,
// and the variant's label. Invocations are serialized; the callback itself
// may print without further locking. Pass nil to disable.
func (e *Env) SetProgress(fn func(done, total int, label string)) {
	e.progressMu.Lock()
	e.progress = fn
	e.progressMu.Unlock()
}

func (e *Env) notifyProgress(done, total int, label string) {
	e.progressMu.Lock()
	fn := e.progress
	if fn != nil {
		fn(done, total, label)
	}
	e.progressMu.Unlock()
}

// MetricsSnapshot returns a merged copy of every simulated trial's metrics
// so far: hot-path counters from the scheduler, robustness cache, energy
// meter, and simulator, aggregated with metrics.Snapshot.Merge semantics.
func (e *Env) MetricsSnapshot() *metrics.Snapshot {
	e.metricsMu.Lock()
	defer e.metricsMu.Unlock()
	out := &metrics.Snapshot{}
	_ = out.Merge(e.metricsAgg) // identical registrations cannot mismatch
	return out
}

// HarnessSnapshot returns the runner's own lifecycle counters (trials run,
// resumed, panicked, retried, timed out, cancelled, quarantined). They are
// kept out of MetricsSnapshot: a resumed run does less *work* than an
// uninterrupted one while producing bit-identical *results*, and the
// split keeps both stories true.
func (e *Env) HarnessSnapshot() *metrics.Snapshot { return e.harness.Snapshot() }

// Phases returns the environment's accumulated per-phase wall-clock
// timings (build, simulate, aggregate).
func (e *Env) Phases() []metrics.PhaseTiming { return e.phases.Timings() }

// PMFOpCounts returns the pmf operation counts attributable to this
// environment: the process-global counters sampled now minus the sample
// taken at Build.
func (e *Env) PMFOpCounts() pmf.OpCounts {
	return pmf.ReadOpCounts().Sub(e.pmfBase)
}

// VariantResult aggregates one heuristic × filter configuration over all
// trials.
type VariantResult struct {
	// Label identifies the configuration (e.g. "LL+en+rob").
	Label string
	// FilterLabel is the paper's variant name ("none", "en", "rob",
	// "en+rob") when applicable, otherwise a free-form tag.
	FilterLabel string
	// Missed holds the per-trial missed-deadline counts — the box-plot
	// sample of Figures 2–6.
	Missed []float64
	// Summary is the box-plot summary of Missed.
	Summary stats.Summary
	// MeanOnTime, MeanDiscarded, MeanLate, MeanUnfinished are per-trial
	// averages of the outcome partition.
	MeanOnTime, MeanDiscarded, MeanLate, MeanUnfinished float64
	// MeanEnergy is the average actual energy consumed per trial.
	MeanEnergy float64
	// ExhaustedTrials counts trials that hit ζ_max before finishing.
	ExhaustedTrials int
	// MeanWeightedOnTime is the priority-weighted value (equals MeanOnTime
	// for unit priorities).
	MeanWeightedOnTime float64
	// MeanWakeups and MeanParkedTime report the parking extension's
	// activity (zero when parking is disabled).
	MeanWakeups, MeanParkedTime float64
	// MeanFaults, MeanRetries, and MeanLost report fault-injection activity
	// per trial: failures struck, requeue dispatches, and tasks lost to
	// failure (all zero when faults are disabled).
	MeanFaults, MeanRetries, MeanLost float64
	// MeanBrownoutStage is the average deepest brownout stage reached per
	// trial (zero without a brownout schedule).
	MeanBrownoutStage float64
}

// runOpts are per-call overrides for RunConfigured.
type runOpts struct {
	budget    float64
	trials    []*workload.Trial
	simMut    func(*sim.Config)
	filterTag string
}

// RunVariant runs one heuristic with one paper filter variant over all
// trials and aggregates the results.
func (e *Env) RunVariant(h sched.Heuristic, v sched.FilterVariant) (*VariantResult, error) {
	return e.RunVariantContext(nil, h, v)
}

// RunVariantContext is RunVariant under an explicit context: cancellation
// stops dispatching new trials, aborts in-flight simulations at their next
// event-batch boundary, and returns an error joining every per-trial
// failure with the cancellation cause.
func (e *Env) RunVariantContext(ctx context.Context, h sched.Heuristic, v sched.FilterVariant) (*VariantResult, error) {
	m := &sched.Mapper{Heuristic: h, Filters: v.Filters()}
	return e.run(ctx, m, runOpts{budget: e.Budget, trials: e.trials, filterTag: v.String()})
}

// RunMapper runs an arbitrary mapper (custom filters, thresholds, or
// heuristics) with an explicit budget scale; scale <= 0 means the
// environment's resolved budget.
func (e *Env) RunMapper(m *sched.Mapper, budgetScale float64, filterTag string) (*VariantResult, error) {
	return e.RunMapperContext(nil, m, budgetScale, filterTag)
}

// RunMapperContext is RunMapper under an explicit context.
func (e *Env) RunMapperContext(ctx context.Context, m *sched.Mapper, budgetScale float64, filterTag string) (*VariantResult, error) {
	budget := e.Budget
	if budgetScale > 0 {
		budget = budgetScale * e.Model.DefaultEnergyBudget()
	}
	return e.run(ctx, m, runOpts{budget: budget, trials: e.trials, filterTag: filterTag})
}

// RunWithTrials runs a mapper over a caller-supplied trial set (used by the
// priority study, which needs trials carrying priority weights). Such runs
// bypass both the memo cache and the journal: the harness cannot prove a
// foreign trial set matches a cached key.
func (e *Env) RunWithTrials(m *sched.Mapper, trials []*workload.Trial, filterTag string) (*VariantResult, error) {
	return e.RunWithTrialsContext(nil, m, trials, filterTag)
}

// RunWithTrialsContext is RunWithTrials under an explicit context.
func (e *Env) RunWithTrialsContext(ctx context.Context, m *sched.Mapper, trials []*workload.Trial, filterTag string) (*VariantResult, error) {
	return e.run(ctx, m, runOpts{budget: e.Budget, trials: trials, filterTag: filterTag})
}

// RunConfigured runs a mapper over all trials with a simulation-config
// mutation applied per trial (extension studies: parking, power noise,
// cancellation). Mutated runs bypass the memo cache and the journal.
func (e *Env) RunConfigured(m *sched.Mapper, filterTag string, mut func(*sim.Config)) (*VariantResult, error) {
	return e.RunConfiguredContext(nil, m, filterTag, mut)
}

// RunConfiguredContext is RunConfigured under an explicit context.
func (e *Env) RunConfiguredContext(ctx context.Context, m *sched.Mapper, filterTag string, mut func(*sim.Config)) (*VariantResult, error) {
	return e.run(ctx, m, runOpts{budget: e.Budget, trials: e.trials, filterTag: filterTag, simMut: mut})
}

// runTrialOnce executes a single trial attempt behind panic isolation: a
// panic anywhere in the mapper, filters, or engine surfaces as a
// *PanicError instead of unwinding the worker goroutine.
func runTrialOnce(ctx context.Context, cfg sim.Config, tr *workload.Trial, decisions *randx.Stream) (res *sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return sim.RunContext(ctx, cfg, tr, decisions)
}

// runTrial runs trial i to a final verdict: success, or a quarantining
// error after the retry policy is exhausted. Each attempt gets a fresh
// metrics registry so a failed attempt contributes nothing to the
// aggregate.
func (e *Env) runTrial(ctx context.Context, m *sched.Mapper, opts runOpts, tr *workload.Trial, i int) (*sim.Result, *metrics.Snapshot, error) {
	pol := e.Spec.Retry
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		tctx := ctx
		var cancel context.CancelFunc
		if e.Spec.TrialTimeout > 0 {
			tctx, cancel = context.WithTimeout(ctx, e.Spec.TrialTimeout)
		}
		reg := metrics.NewRegistry()
		cfg := sim.Config{
			Model:        e.Model,
			Mapper:       m,
			EnergyBudget: opts.budget,
			Metrics:      reg,
		}
		if opts.simMut != nil {
			opts.simMut(&cfg)
		}
		res, err := runTrialOnce(tctx, cfg, tr, e.rootRng.ChildN("decisions", i))
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return res, reg.Snapshot(), nil
		}
		var pe *PanicError
		if errors.As(err, &pe) {
			e.hc.panicked.Inc()
		}
		if ctx.Err() != nil {
			return nil, nil, err // whole run is being cancelled; don't retry
		}
		if errors.Is(err, context.DeadlineExceeded) {
			// The trial's own timeout fired. Deterministic work would time
			// out again; quarantine immediately.
			e.hc.timedout.Inc()
			e.hc.quarantined.Inc()
			return nil, nil, fmt.Errorf("timed out after %v: %w", e.Spec.TrialTimeout, err)
		}
		retryable := (pe != nil && pol.RetryPanics) || IsTransient(err)
		if !retryable || attempt >= pol.MaxRetries {
			e.hc.quarantined.Inc()
			if attempt > 0 {
				err = fmt.Errorf("quarantined after %d attempts: %w", attempt+1, err)
			}
			return nil, nil, err
		}
		e.hc.retried.Inc()
		if d := pol.backoff(attempt); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
		}
	}
}

func (e *Env) run(ctx context.Context, m *sched.Mapper, opts runOpts) (*VariantResult, error) {
	ctx = e.runContext(ctx)
	trials := opts.trials
	n := len(trials)
	if n == 0 {
		return nil, fmt.Errorf("experiment: no trials")
	}
	// Runs are deterministic, so identical configurations over the
	// environment's own trial set are memoized (figures share variants with
	// the summary table). Caller-supplied trial sets and mutated sim
	// configs bypass the cache — and the journal, which shares the same
	// identity requirement.
	ownTrials := opts.simMut == nil && len(trials) == len(e.trials) && (len(trials) == 0 || &trials[0] == &e.trials[0])
	var memoKey string
	if ownTrials {
		memoKey = fmt.Sprintf("%s|%s|%g", m.Name(), opts.filterTag, opts.budget)
		e.memoMu.Lock()
		if e.memo == nil {
			e.memo = make(map[string]*VariantResult)
		}
		if vr, ok := e.memo[memoKey]; ok {
			e.memoMu.Unlock()
			return vr, nil
		}
		e.memoMu.Unlock()
	}
	e.optMu.Lock()
	journal, resume := e.journal, e.resume
	e.optMu.Unlock()
	if memoKey == "" {
		journal = nil
	}
	specHash := ""
	if journal != nil {
		specHash = e.specHash()
	}
	workers := e.Spec.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// Mapper.Name already embeds the paper filter variants ("LL+en+rob");
	// append the tag only when it adds information (ablation labels etc.).
	label := m.Name()
	if tag := opts.filterTag; tag != "" && tag != "none" && !strings.HasSuffix(label, "+"+tag) {
		label += " [" + tag + "]"
	}
	stopSim := e.phases.Start("simulate")
	results := make([]*sim.Result, n)
	snaps := make([]*metrics.Snapshot, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	var done atomic.Int64
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res, snap, err := e.runTrial(ctx, m, opts, trials[i], i)
				if err == nil && journal != nil {
					// Write-ahead: the record hits disk before the trial
					// counts as done, so a crash between the two re-runs
					// the trial instead of losing it.
					if jerr := journal.Append(TrialRecord{
						SpecHash: specHash,
						Seed:     e.Spec.Seed,
						Variant:  memoKey,
						Trial:    i,
						Result:   res,
						Metrics:  snap,
					}); jerr != nil {
						err = fmt.Errorf("journal: %w", jerr)
					}
				}
				if err != nil {
					errs[i] = err
				} else {
					results[i], snaps[i] = res, snap
					e.hc.run.Inc()
				}
				e.notifyProgress(int(done.Add(1)), n, label)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		if resume && journal != nil {
			if rec, ok := journal.Lookup(specHash, memoKey, i, e.Spec.Seed); ok {
				results[i], snaps[i] = rec.Result, rec.Metrics
				e.hc.resumed.Inc()
				e.notifyProgress(int(done.Add(1)), n, label)
				continue
			}
		}
		select {
		case next <- i:
		case <-ctx.Done():
			// Stop feeding the pool: workers drain what they already hold
			// and exit; undispatched trials are reported as cancelled.
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	stopSim()
	// Merge per-trial snapshots in index order — deterministic regardless
	// of worker completion order, so a resumed run reproduces the
	// uninterrupted aggregate bit for bit.
	for i := range snaps {
		if snaps[i] == nil {
			continue
		}
		e.metricsMu.Lock()
		mergeErr := e.metricsAgg.Merge(snaps[i])
		e.metricsMu.Unlock()
		if mergeErr != nil && errs[i] == nil {
			errs[i] = mergeErr
			results[i] = nil
		}
	}
	// Aggregate every failure (not just the first) so a multi-trial
	// breakage is diagnosable in one pass. Cancelled trials collapse into
	// a single summarizing error.
	var failures []error
	cancelledTrials, completed := 0, 0
	for i := range errs {
		switch {
		case errs[i] == nil && results[i] != nil:
			completed++
		case errs[i] == nil:
			cancelledTrials++ // never dispatched
		case ctx.Err() != nil && errors.Is(errs[i], ctx.Err()):
			cancelledTrials++ // aborted mid-flight by the run context
		default:
			failures = append(failures, fmt.Errorf("trial %d: %w", i, errs[i]))
		}
	}
	if cancelledTrials > 0 {
		e.hc.cancelled.Add(int64(cancelledTrials))
		cause := context.Cause(ctx)
		if cause == nil {
			cause = context.Canceled
		}
		failures = append(failures, fmt.Errorf("cancelled with %d/%d trials incomplete (%d completed): %w",
			cancelledTrials, n, completed, cause))
	}
	if len(failures) > 0 {
		return nil, fmt.Errorf("experiment: %s: %w", label, errors.Join(failures...))
	}
	stopAgg := e.phases.Start("aggregate")
	defer stopAgg()
	vr := &VariantResult{
		Label:       m.Name(),
		FilterLabel: opts.filterTag,
		Missed:      make([]float64, n),
	}
	for i, r := range results {
		vr.Missed[i] = float64(r.Missed)
		vr.MeanOnTime += float64(r.OnTime)
		vr.MeanDiscarded += float64(r.Discarded)
		vr.MeanLate += float64(r.Late)
		vr.MeanUnfinished += float64(r.Unfinished)
		vr.MeanEnergy += r.EnergyConsumed
		vr.MeanWeightedOnTime += r.WeightedOnTime
		vr.MeanWakeups += float64(r.Wakeups)
		vr.MeanParkedTime += r.ParkedTime
		vr.MeanFaults += float64(r.Faults)
		vr.MeanRetries += float64(r.Retries)
		vr.MeanLost += float64(r.LostToFailure)
		vr.MeanBrownoutStage += float64(r.BrownoutStage)
		if r.EnergyExhausted {
			vr.ExhaustedTrials++
		}
	}
	fn := float64(n)
	vr.MeanOnTime /= fn
	vr.MeanDiscarded /= fn
	vr.MeanLate /= fn
	vr.MeanUnfinished /= fn
	vr.MeanEnergy /= fn
	vr.MeanWeightedOnTime /= fn
	vr.MeanWakeups /= fn
	vr.MeanParkedTime /= fn
	vr.MeanFaults /= fn
	vr.MeanRetries /= fn
	vr.MeanLost /= fn
	vr.MeanBrownoutStage /= fn
	var err error
	vr.Summary, err = stats.Summarize(vr.Missed)
	if err != nil {
		return nil, err
	}
	if memoKey != "" {
		e.memoMu.Lock()
		e.memo[memoKey] = vr
		e.memoMu.Unlock()
	}
	return vr, nil
}
