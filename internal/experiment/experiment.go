// Package experiment is the reproduction harness for the paper's
// evaluation (§VI–§VII): it builds the fixed simulation environment
// (cluster, pmf tables, energy budget), generates the 50 trials, runs any
// heuristic × filter configuration over all trials on a worker pool, and
// assembles the box-plot figures (Figures 2–6), the summary-improvement
// table, and the ablation studies.
package experiment

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/pmf"
	"repro/internal/randx"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Spec pins down one complete experimental setup.
type Spec struct {
	// Seed makes the whole experiment reproducible: cluster, pmf tables,
	// and all trials derive from it.
	Seed uint64
	// Trials is the number of simulation trials (paper: 50).
	Trials int
	// ClusterGen parameterizes the random cluster.
	ClusterGen cluster.GenParams
	// Workload parameterizes the workload model and trial generation.
	Workload workload.Params
	// BudgetScale multiplies the paper's default energy budget
	// ζ_max = t_avg·p_avg·window; values <= 0 mean unconstrained.
	BudgetScale float64
	// Parallelism bounds concurrent trials; <= 0 means GOMAXPROCS.
	Parallelism int
}

// PaperSpec is the configuration of §VI: 50 trials of 1,000 tasks on the
// 8-node cluster with the paper's constants.
func PaperSpec() Spec {
	return Spec{
		Seed:        2011_0913, // ICPP 2011 conference date; any fixed seed works
		Trials:      50,
		ClusterGen:  cluster.PaperGenParams(),
		Workload:    workload.PaperParams(),
		BudgetScale: 1,
	}
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.Trials < 1 {
		return fmt.Errorf("experiment: Trials %d must be >= 1", s.Trials)
	}
	if err := s.ClusterGen.Validate(); err != nil {
		return err
	}
	return s.Workload.Validate()
}

// Env is a built environment: everything held constant across trials.
type Env struct {
	Spec    Spec
	Model   *workload.Model
	Budget  float64 // resolved ζ_max (possibly +Inf)
	trials  []*workload.Trial
	rootRng *randx.Stream

	memoMu sync.Mutex
	memo   map[string]*VariantResult

	// Telemetry: every simulated trial runs with its own metrics registry
	// whose snapshot is merged here, so the aggregate reflects all work
	// the environment performed (memo hits contribute nothing — no work
	// was done). phases accumulates per-phase wall-clock; pmfBase is the
	// process-global pmf operation sample taken at Build, so reports can
	// attribute convolution work to this environment's lifetime.
	metricsMu  sync.Mutex
	metricsAgg *metrics.Snapshot
	phases     *metrics.Phases
	pmfBase    pmf.OpCounts

	progressMu sync.Mutex
	progress   func(done, total int, label string)
}

// Build constructs the environment: cluster, pmf tables, energy budget, and
// all trial task streams.
func Build(spec Spec) (*Env, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	phases := metrics.NewPhases()
	stopBuild := phases.Start("build")
	defer stopBuild()
	root := randx.NewStream(spec.Seed)
	c, err := cluster.Generate(root.Child("cluster"), spec.ClusterGen)
	if err != nil {
		return nil, err
	}
	model, err := workload.BuildModel(root.Child("model"), c, spec.Workload)
	if err != nil {
		return nil, err
	}
	budget := math.Inf(1)
	if spec.BudgetScale > 0 {
		budget = spec.BudgetScale * model.DefaultEnergyBudget()
	}
	env := &Env{
		Spec: spec, Model: model, Budget: budget, rootRng: root,
		metricsAgg: &metrics.Snapshot{},
		phases:     phases,
		pmfBase:    pmf.ReadOpCounts(),
	}
	env.trials = make([]*workload.Trial, spec.Trials)
	for i := range env.trials {
		tr, err := workload.GenerateTrial(root.ChildN("trial", i), model)
		if err != nil {
			return nil, err
		}
		env.trials[i] = tr
	}
	return env, nil
}

// Trial returns the i-th trial's task stream.
func (e *Env) Trial(i int) *workload.Trial { return e.trials[i] }

// SetProgress installs a live progress callback invoked after every
// completed trial with the number done, the total for the current variant,
// and the variant's label. Invocations are serialized; the callback itself
// may print without further locking. Pass nil to disable.
func (e *Env) SetProgress(fn func(done, total int, label string)) {
	e.progressMu.Lock()
	e.progress = fn
	e.progressMu.Unlock()
}

func (e *Env) notifyProgress(done, total int, label string) {
	e.progressMu.Lock()
	fn := e.progress
	if fn != nil {
		fn(done, total, label)
	}
	e.progressMu.Unlock()
}

// MetricsSnapshot returns a merged copy of every simulated trial's metrics
// so far: hot-path counters from the scheduler, robustness cache, energy
// meter, and simulator, aggregated with metrics.Snapshot.Merge semantics.
func (e *Env) MetricsSnapshot() *metrics.Snapshot {
	e.metricsMu.Lock()
	defer e.metricsMu.Unlock()
	out := &metrics.Snapshot{}
	_ = out.Merge(e.metricsAgg) // identical registrations cannot mismatch
	return out
}

// Phases returns the environment's accumulated per-phase wall-clock
// timings (build, simulate, aggregate).
func (e *Env) Phases() []metrics.PhaseTiming { return e.phases.Timings() }

// PMFOpCounts returns the pmf operation counts attributable to this
// environment: the process-global counters sampled now minus the sample
// taken at Build.
func (e *Env) PMFOpCounts() pmf.OpCounts {
	return pmf.ReadOpCounts().Sub(e.pmfBase)
}

// VariantResult aggregates one heuristic × filter configuration over all
// trials.
type VariantResult struct {
	// Label identifies the configuration (e.g. "LL+en+rob").
	Label string
	// FilterLabel is the paper's variant name ("none", "en", "rob",
	// "en+rob") when applicable, otherwise a free-form tag.
	FilterLabel string
	// Missed holds the per-trial missed-deadline counts — the box-plot
	// sample of Figures 2–6.
	Missed []float64
	// Summary is the box-plot summary of Missed.
	Summary stats.Summary
	// MeanOnTime, MeanDiscarded, MeanLate, MeanUnfinished are per-trial
	// averages of the outcome partition.
	MeanOnTime, MeanDiscarded, MeanLate, MeanUnfinished float64
	// MeanEnergy is the average actual energy consumed per trial.
	MeanEnergy float64
	// ExhaustedTrials counts trials that hit ζ_max before finishing.
	ExhaustedTrials int
	// MeanWeightedOnTime is the priority-weighted value (equals MeanOnTime
	// for unit priorities).
	MeanWeightedOnTime float64
	// MeanWakeups and MeanParkedTime report the parking extension's
	// activity (zero when parking is disabled).
	MeanWakeups, MeanParkedTime float64
	// MeanFaults, MeanRetries, and MeanLost report fault-injection activity
	// per trial: failures struck, requeue dispatches, and tasks lost to
	// failure (all zero when faults are disabled).
	MeanFaults, MeanRetries, MeanLost float64
	// MeanBrownoutStage is the average deepest brownout stage reached per
	// trial (zero without a brownout schedule).
	MeanBrownoutStage float64
}

// runOpts are per-call overrides for RunConfigured.
type runOpts struct {
	budget    float64
	trials    []*workload.Trial
	simMut    func(*sim.Config)
	filterTag string
}

// RunVariant runs one heuristic with one paper filter variant over all
// trials and aggregates the results.
func (e *Env) RunVariant(h sched.Heuristic, v sched.FilterVariant) (*VariantResult, error) {
	m := &sched.Mapper{Heuristic: h, Filters: v.Filters()}
	return e.run(m, runOpts{budget: e.Budget, trials: e.trials, filterTag: v.String()})
}

// RunMapper runs an arbitrary mapper (custom filters, thresholds, or
// heuristics) with an explicit budget scale; scale <= 0 means the
// environment's resolved budget.
func (e *Env) RunMapper(m *sched.Mapper, budgetScale float64, filterTag string) (*VariantResult, error) {
	budget := e.Budget
	if budgetScale > 0 {
		budget = budgetScale * e.Model.DefaultEnergyBudget()
	}
	return e.run(m, runOpts{budget: budget, trials: e.trials, filterTag: filterTag})
}

// RunWithTrials runs a mapper over a caller-supplied trial set (used by the
// priority study, which needs trials carrying priority weights).
func (e *Env) RunWithTrials(m *sched.Mapper, trials []*workload.Trial, filterTag string) (*VariantResult, error) {
	return e.run(m, runOpts{budget: e.Budget, trials: trials, filterTag: filterTag})
}

// RunConfigured runs a mapper over all trials with a simulation-config
// mutation applied per trial (extension studies: parking, power noise,
// cancellation). Mutated runs bypass the memo cache.
func (e *Env) RunConfigured(m *sched.Mapper, filterTag string, mut func(*sim.Config)) (*VariantResult, error) {
	return e.run(m, runOpts{budget: e.Budget, trials: e.trials, filterTag: filterTag, simMut: mut})
}

func (e *Env) run(m *sched.Mapper, opts runOpts) (*VariantResult, error) {
	trials := opts.trials
	n := len(trials)
	if n == 0 {
		return nil, fmt.Errorf("experiment: no trials")
	}
	// Runs are deterministic, so identical configurations over the
	// environment's own trial set are memoized (figures share variants with
	// the summary table). Caller-supplied trial sets and mutated sim
	// configs bypass the cache.
	var memoKey string
	if opts.simMut == nil && len(trials) == len(e.trials) && (len(trials) == 0 || &trials[0] == &e.trials[0]) {
		memoKey = fmt.Sprintf("%s|%s|%g", m.Name(), opts.filterTag, opts.budget)
		e.memoMu.Lock()
		if e.memo == nil {
			e.memo = make(map[string]*VariantResult)
		}
		if vr, ok := e.memo[memoKey]; ok {
			e.memoMu.Unlock()
			return vr, nil
		}
		e.memoMu.Unlock()
	}
	workers := e.Spec.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// Mapper.Name already embeds the paper filter variants ("LL+en+rob");
	// append the tag only when it adds information (ablation labels etc.).
	label := m.Name()
	if tag := opts.filterTag; tag != "" && tag != "none" && !strings.HasSuffix(label, "+"+tag) {
		label += " [" + tag + "]"
	}
	stopSim := e.phases.Start("simulate")
	results := make([]*sim.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	var done atomic.Int64
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				// Each trial collects into its own registry; snapshots
				// merge associatively, so worker completion order cannot
				// change the aggregate.
				reg := metrics.NewRegistry()
				cfg := sim.Config{
					Model:        e.Model,
					Mapper:       m,
					EnergyBudget: opts.budget,
					Metrics:      reg,
				}
				if opts.simMut != nil {
					opts.simMut(&cfg)
				}
				results[i], errs[i] = sim.Run(cfg, trials[i], e.rootRng.ChildN("decisions", i))
				snap := reg.Snapshot()
				e.metricsMu.Lock()
				mergeErr := e.metricsAgg.Merge(snap)
				e.metricsMu.Unlock()
				if mergeErr != nil && errs[i] == nil {
					errs[i] = mergeErr
				}
				e.notifyProgress(int(done.Add(1)), n, label)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	stopSim()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: trial %d: %w", i, err)
		}
	}
	stopAgg := e.phases.Start("aggregate")
	defer stopAgg()
	vr := &VariantResult{
		Label:       m.Name(),
		FilterLabel: opts.filterTag,
		Missed:      make([]float64, n),
	}
	for i, r := range results {
		vr.Missed[i] = float64(r.Missed)
		vr.MeanOnTime += float64(r.OnTime)
		vr.MeanDiscarded += float64(r.Discarded)
		vr.MeanLate += float64(r.Late)
		vr.MeanUnfinished += float64(r.Unfinished)
		vr.MeanEnergy += r.EnergyConsumed
		vr.MeanWeightedOnTime += r.WeightedOnTime
		vr.MeanWakeups += float64(r.Wakeups)
		vr.MeanParkedTime += r.ParkedTime
		vr.MeanFaults += float64(r.Faults)
		vr.MeanRetries += float64(r.Retries)
		vr.MeanLost += float64(r.LostToFailure)
		vr.MeanBrownoutStage += float64(r.BrownoutStage)
		if r.EnergyExhausted {
			vr.ExhaustedTrials++
		}
	}
	fn := float64(n)
	vr.MeanOnTime /= fn
	vr.MeanDiscarded /= fn
	vr.MeanLate /= fn
	vr.MeanUnfinished /= fn
	vr.MeanEnergy /= fn
	vr.MeanWeightedOnTime /= fn
	vr.MeanWakeups /= fn
	vr.MeanParkedTime /= fn
	vr.MeanFaults /= fn
	vr.MeanRetries /= fn
	vr.MeanLost /= fn
	vr.MeanBrownoutStage /= fn
	var err error
	vr.Summary, err = stats.Summarize(vr.Missed)
	if err != nil {
		return nil, err
	}
	if memoKey != "" {
		e.memoMu.Lock()
		e.memo[memoKey] = vr
		e.memoMu.Unlock()
	}
	return vr, nil
}
