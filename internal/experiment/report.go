package experiment

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/pmf"
	"repro/internal/trace"
)

// RunReport is the observability summary of everything an environment has
// executed: per-phase wall-clock timings, the merged per-trial metrics
// snapshot, pmf hot-path operation counts, and headline derived figures
// (convolution volume, robustness-cache hit ratio, filter rejections).
// It serializes to JSON for tooling and renders human-readably for CLIs.
type RunReport struct {
	// Seed, Trials, Window identify the experimental setup.
	Seed   uint64 `json:"seed"`
	Trials int    `json:"trials"`
	Window int    `json:"window"`
	// SpecHash is the journal-compatible identity of the spec (see
	// Spec.Hash): reports with equal hashes describe the same experiment.
	SpecHash string `json:"specHash"`
	// Incomplete marks a report flushed from an interrupted or failing
	// run: the aggregates cover only the work finished before the
	// shutdown, and Reason says why. A resumed run that finishes cleanly
	// reports Incomplete=false like any other.
	Incomplete bool   `json:"incomplete,omitempty"`
	Reason     string `json:"reason,omitempty"`
	// Phases is the accumulated wall-clock per harness phase.
	Phases []metrics.PhaseTiming `json:"phases"`
	// PMF is the pmf-layer operation tally over the environment lifetime.
	// Like Phases and Harness it measures work performed, not results: a
	// resumed run reports fewer operations than an uninterrupted one while
	// producing identical Metrics and Derived figures.
	PMF pmf.OpCounts `json:"pmf"`
	// Derived are the headline figures extracted from Metrics.
	Derived DerivedStats `json:"derived"`
	// Metrics is the full merged snapshot (all registered series).
	Metrics *metrics.Snapshot `json:"metrics"`
	// Harness is the runner's own lifecycle counters (trials run /
	// resumed / panicked / retried / timed out / cancelled / quarantined).
	// Kept separate from Metrics so resumed runs still reproduce the
	// simulation aggregate bit for bit.
	Harness *metrics.Snapshot `json:"harness,omitempty"`
	// Calibration is the observe→predict→calibrate comparison, present
	// when a CalibrationStudy ran in this environment.
	Calibration *trace.Calibration `json:"calibration,omitempty"`
}

// MarkIncomplete flags the report as a partial flush from an interrupted
// run, recording why.
func (r *RunReport) MarkIncomplete(reason string) {
	r.Incomplete = true
	r.Reason = reason
}

// DerivedStats are the headline numbers pulled out of the merged snapshot
// so report consumers need not know metric names.
type DerivedStats struct {
	MappingDecisions      int64            `json:"mappingDecisions"`
	CandidatesEnumerated  int64            `json:"candidatesEnumerated"`
	FreeTimeCacheHits     int64            `json:"freeTimeCacheHits"`
	FreeTimeCacheMisses   int64            `json:"freeTimeCacheMisses"`
	FreeTimeCacheHitRatio float64          `json:"freeTimeCacheHitRatio"`
	RhoEvaluations        int64            `json:"rhoEvaluations"`
	FilterRejections      map[string]int64 `json:"filterRejections"`
	TasksFilteredToEmpty  int64            `json:"tasksFilteredToEmpty"`
	EventsProcessed       int64            `json:"eventsProcessed"`
	EnergyConsumed        float64          `json:"energyConsumed"`
	HeapDepthHighWater    int64            `json:"heapDepthHighWater"`
}

// Report assembles the environment's RunReport from everything executed so
// far. Call it after the figures/variants of interest have run.
func (e *Env) Report() *RunReport {
	snap := e.MetricsSnapshot()
	r := &RunReport{
		Seed:     e.Spec.Seed,
		Trials:   e.Spec.Trials,
		Window:   e.Spec.Workload.WindowSize,
		SpecHash: e.specHash(),
		Phases:   e.Phases(),
		PMF:      e.PMFOpCounts(),
		Metrics:  snap,
		Harness:  e.HarnessSnapshot(),
	}
	e.optMu.Lock()
	r.Calibration = e.calib
	e.optMu.Unlock()
	d := &r.Derived
	d.MappingDecisions = int64(snap.SumByName("sched_decisions_total"))
	d.CandidatesEnumerated = int64(snap.SumByName("sched_candidates_total"))
	d.FreeTimeCacheHits = int64(snap.SumByName("robustness_freetime_cache_hits_total"))
	d.FreeTimeCacheMisses = int64(snap.SumByName("robustness_freetime_cache_misses_total"))
	if total := d.FreeTimeCacheHits + d.FreeTimeCacheMisses; total > 0 {
		d.FreeTimeCacheHitRatio = float64(d.FreeTimeCacheHits) / float64(total)
	}
	d.RhoEvaluations = int64(snap.SumByName("sched_rho_evaluations_total"))
	d.TasksFilteredToEmpty = int64(snap.SumByName("sched_filtered_to_empty_total"))
	d.EventsProcessed = int64(snap.SumByName("sim_events_total"))
	d.EnergyConsumed = snap.SumByName("energy_meter_consumed")
	d.HeapDepthHighWater = int64(snap.SumByName("sim_event_heap_high_water"))
	d.FilterRejections = make(map[string]int64)
	for i := range snap.Metrics {
		mv := &snap.Metrics[i]
		if mv.Name != "sched_filter_rejections_total" {
			continue
		}
		for _, l := range mv.Labels {
			if l.Key == "filter" {
				d.FilterRejections[l.Value] += int64(mv.Value)
			}
		}
	}
	return r
}

// JSON serializes the report as indented, deterministic JSON.
func (r *RunReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render returns the human-readable report block.
func (r *RunReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run report (seed %d, %d trials × %d tasks, spec %s)\n", r.Seed, r.Trials, r.Window, r.SpecHash)
	if r.Incomplete {
		fmt.Fprintf(&b, "  INCOMPLETE: %s\n", r.Reason)
	}
	b.WriteString("  phases:\n")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "    %-10s %8.3fs  (%d intervals)\n", p.Name, p.Seconds, p.Count)
	}
	d := &r.Derived
	fmt.Fprintf(&b, "  scheduler: %d decisions, %d candidates enumerated, %d ρ evaluations\n",
		d.MappingDecisions, d.CandidatesEnumerated, d.RhoEvaluations)
	fmt.Fprintf(&b, "  free-time cache: %d hits / %d misses (%.1f%% hit ratio)\n",
		d.FreeTimeCacheHits, d.FreeTimeCacheMisses, 100*d.FreeTimeCacheHitRatio)
	if len(d.FilterRejections) > 0 {
		names := make([]string, 0, len(d.FilterRejections))
		for n := range d.FilterRejections {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString("  filter rejections:")
		for _, n := range names {
			fmt.Fprintf(&b, " %s=%d", n, d.FilterRejections[n])
		}
		fmt.Fprintf(&b, "; %d tasks filtered to empty\n", d.TasksFilteredToEmpty)
	}
	fmt.Fprintf(&b, "  pmf: %d convolutions (%d bucketed), %d compactions dropping %d impulses\n",
		r.PMF.Convolutions, r.PMF.BucketedConvolutions, r.PMF.Compactions, r.PMF.ImpulsesCompacted)
	if r.PMF.GridConvolutions > 0 || r.PMF.GridRhoEvals > 0 {
		fmt.Fprintf(&b, "  pmf grid: %d lattice convolutions (%d via FFT), %d ρ prefix-sum evaluations\n",
			r.PMF.GridConvolutions, r.PMF.FFTConvolutions, r.PMF.GridRhoEvals)
	}
	fmt.Fprintf(&b, "  simulator: %d events processed, heap high-water %d, energy consumed %.4g\n",
		d.EventsProcessed, d.HeapDepthHighWater, d.EnergyConsumed)
	if c := r.Calibration; c != nil {
		fmt.Fprintf(&b, "  calibration: %d tasks, ECE %.4f, p50 coverage %.3f (ideal .500), p99 coverage %.3f (ideal .990), %d groups\n",
			c.Tasks, c.ECE, c.P50Coverage, c.P99Coverage, len(c.Groups))
	}
	if h := r.Harness; h != nil {
		ran := h.SumByName("experiment_trials_run_total")
		resumed := h.SumByName("experiment_trials_resumed_total")
		panicked := h.SumByName("experiment_trials_panicked_total")
		retried := h.SumByName("experiment_trials_retried_total")
		timedout := h.SumByName("experiment_trials_timedout_total")
		cancelled := h.SumByName("experiment_trials_cancelled_total")
		quarantined := h.SumByName("experiment_trials_quarantined_total")
		if ran+resumed+panicked+retried+timedout+cancelled+quarantined > 0 {
			fmt.Fprintf(&b, "  harness: %.0f trials run, %.0f resumed from journal, %.0f panicked, %.0f retried, %.0f timed out, %.0f cancelled, %.0f quarantined\n",
				ran, resumed, panicked, retried, timedout, cancelled, quarantined)
		}
	}
	return b.String()
}
