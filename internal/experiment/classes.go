package experiment

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ClassStudy evaluates the §III-B task-class dimension: with a mixed
// population (compute/memory/io classes of different length and spread),
// which classes bear the missed deadlines under the paper's best policy?
// Wide-distribution classes have lower ρ at equal load, so the robustness
// filter discards them first and the scheduler hedges them to faster
// P-states — this table shows the resulting per-class miss rates.
func ClassStudy(spec Spec, classes []workload.TypeClass) (*Table, error) {
	s := spec
	s.Workload.Classes = classes
	env, err := Build(s)
	if err != nil {
		return nil, err
	}
	mapper := &sched.Mapper{Heuristic: sched.LightestLoad{}, Filters: sched.EnergyAndRobustness.Filters()}

	type agg struct {
		tasks, missed, discarded int
	}
	perClass := map[string]*agg{}
	for i := 0; i < s.Trials; i++ {
		cfg := sim.Config{
			Model:        env.Model,
			Mapper:       mapper,
			EnergyBudget: env.Budget,
			Trace:        true,
		}
		res, err := sim.Run(cfg, env.Trial(i), env.rootRng.ChildN("decisions", i))
		if err != nil {
			return nil, err
		}
		for _, tr := range res.Traces {
			name := env.Model.ClassOf(tr.Task.Type)
			a := perClass[name]
			if a == nil {
				a = &agg{}
				perClass[name] = a
			}
			a.tasks++
			if tr.Outcome != sim.OutcomeOnTime {
				a.missed++
			}
			if tr.Outcome == sim.OutcomeDiscarded {
				a.discarded++
			}
		}
	}
	t := &Table{
		Title:  fmt.Sprintf("per-class outcomes under LL+en+rob (%d trials)", s.Trials),
		Header: []string{"class", "tasks", "missed", "miss %", "discarded"},
	}
	for _, c := range classes {
		a := perClass[c.Name]
		if a == nil {
			a = &agg{}
		}
		pct := 0.0
		if a.tasks > 0 {
			pct = 100 * float64(a.missed) / float64(a.tasks)
		}
		t.Rows = append(t.Rows, []string{
			c.Name,
			fmt.Sprintf("%d", a.tasks),
			fmt.Sprintf("%d", a.missed),
			fmt.Sprintf("%.1f", pct),
			fmt.Sprintf("%d", a.discarded),
		})
	}
	return t, nil
}
