package experiment

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/randx"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Figure is one reproduced paper figure: a set of labeled box-plot rows.
type Figure struct {
	// ID is the paper's figure number ("fig2".."fig6").
	ID string
	// Title describes the figure.
	Title string
	// Rows are the box-plot entries in presentation order.
	Rows []*VariantResult
}

// figureHeuristics maps figure numbers 2–5 to their heuristic, in the
// paper's presentation order.
func figureHeuristic(n int) (sched.Heuristic, bool) {
	switch n {
	case 2:
		return sched.ShortestQueue{}, true
	case 3:
		return sched.MinExpectedCompletionTime{}, true
	case 4:
		return sched.LightestLoad{}, true
	case 5:
		return sched.Random{}, true
	}
	return nil, false
}

// Figure reproduces one of the paper's result figures:
//
//	2 — SQ with all four filter variants;
//	3 — MECT with all four filter variants;
//	4 — LL with all four filter variants;
//	5 — Random with all four filter variants;
//	6 — the best ("en+rob") variation of every heuristic.
func (e *Env) Figure(n int) (*Figure, error) {
	return e.FigureContext(nil, n)
}

// FigureContext is Figure under an explicit context: an interrupted figure
// returns the cancellation error, and already-completed trials survive in
// the attached journal (if any).
func (e *Env) FigureContext(ctx context.Context, n int) (*Figure, error) {
	if h, ok := figureHeuristic(n); ok {
		f := &Figure{
			ID:    fmt.Sprintf("fig%d", n),
			Title: fmt.Sprintf("Missed deadlines for all variations of the %s heuristic (%d trials)", h.Name(), e.Spec.Trials),
		}
		for _, v := range sched.AllFilterVariants() {
			vr, err := e.RunVariantContext(ctx, h, v)
			if err != nil {
				return nil, err
			}
			f.Rows = append(f.Rows, vr)
		}
		return f, nil
	}
	if n == 6 {
		f := &Figure{
			ID:    "fig6",
			Title: fmt.Sprintf("Missed deadlines for the best-performing variation of each heuristic (%d trials)", e.Spec.Trials),
		}
		// §VII: the best variation of every heuristic is "en+rob".
		for _, h := range []sched.Heuristic{
			sched.LightestLoad{}, sched.ShortestQueue{},
			sched.MinExpectedCompletionTime{}, sched.Random{},
		} {
			vr, err := e.RunVariantContext(ctx, h, sched.EnergyAndRobustness)
			if err != nil {
				return nil, err
			}
			// Figure 6 compares heuristics, so rows are labeled by the
			// heuristic; copy, since vr may be a shared memoized result.
			row := *vr
			row.FilterLabel = h.Name()
			f.Rows = append(f.Rows, &row)
		}
		return f, nil
	}
	return nil, fmt.Errorf("experiment: no figure %d (the paper has figures 2..6)", n)
}

// Render draws the figure as ASCII box plots plus a per-row statistics
// block.
func (f *Figure) Render(width int) (string, error) {
	labels := make([]string, len(f.Rows))
	sums := make([]stats.Summary, len(f.Rows))
	for i, r := range f.Rows {
		labels[i] = r.rowLabel()
		sums[i] = r.Summary
	}
	boxes, err := stats.RenderBoxes(labels, sums, width)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n\n%s\n", f.ID, f.Title, boxes)
	for i, r := range f.Rows {
		fmt.Fprintf(&b, "%-10s %s  (mean energy %.3g, exhausted %d/%d, discarded %.1f/trial)\n",
			labels[i], r.Summary, r.MeanEnergy, r.ExhaustedTrials, r.Summary.N, r.MeanDiscarded)
	}
	return b.String(), nil
}

// CSV emits the figure's per-trial samples: one row per (variant, trial).
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("figure,variant,trial,missed\n")
	for _, r := range f.Rows {
		for i, m := range r.Missed {
			fmt.Fprintf(&b, "%s,%s,%d,%g\n", f.ID, r.rowLabel(), i, m)
		}
	}
	return b.String()
}

func (r *VariantResult) rowLabel() string {
	if r.FilterLabel != "" {
		return r.FilterLabel
	}
	return r.Label
}

// Table is a rendered results table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV emits the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// SignificanceTable augments Figure 6 with inference: a bootstrap 95% CI
// for each en+rob heuristic's median missed deadlines, and pairwise
// rank-sum tests against the best-median heuristic. The paper reports only
// medians; this table says which orderings survive trial noise.
func (e *Env) SignificanceTable() (*Table, error) {
	heuristics := sched.AllHeuristics()
	results := make([]*VariantResult, len(heuristics))
	best := 0
	for i, h := range heuristics {
		vr, err := e.RunVariant(h, sched.EnergyAndRobustness)
		if err != nil {
			return nil, err
		}
		results[i] = vr
		if vr.Summary.Median < results[best].Summary.Median {
			best = i
		}
	}
	t := &Table{
		Title: fmt.Sprintf("en+rob heuristics: median missed deadlines with 95%% bootstrap CIs; rank-sum vs best (%s)",
			heuristics[best].Name()),
		Header: []string{"heuristic", "median", "95% CI", "P(beats best)", "p-value"},
	}
	ciStream := randx.NewStream(e.Spec.Seed).Child("bootstrap")
	for i, h := range heuristics {
		vr := results[i]
		lo, hi, err := stats.BootstrapMedianCI(vr.Missed, 0.95, 4000, ciStream.ChildN("h", i))
		if err != nil {
			return nil, err
		}
		cles, pval := "-", "-"
		if i != best {
			cmp, err := stats.RankSum(vr.Missed, results[best].Missed)
			if err != nil {
				return nil, err
			}
			cles = fmt.Sprintf("%.3f", cmp.CLES)
			pval = fmt.Sprintf("%.4f", cmp.P)
		}
		t.Rows = append(t.Rows, []string{
			h.Name(),
			fmt.Sprintf("%.1f", vr.Summary.Median),
			fmt.Sprintf("[%.1f, %.1f]", lo, hi),
			cles,
			pval,
		})
	}
	return t, nil
}

// SummaryTable reproduces the §VII in-text comparison: for each heuristic,
// the unfiltered and en+rob median missed deadlines and the percentage
// improvement due to filtering (paper: 25% Random, 13.65% SQ, 13.05% MECT,
// 15.5% LL — all at least 13%).
func (e *Env) SummaryTable() (*Table, error) {
	return e.SummaryTableContext(nil)
}

// SummaryTableContext is SummaryTable under an explicit context.
func (e *Env) SummaryTableContext(ctx context.Context) (*Table, error) {
	t := &Table{
		Title:  "Filtering improvement per heuristic (median missed deadlines)",
		Header: []string{"heuristic", "none", "en+rob", "improvement %"},
	}
	for _, h := range sched.AllHeuristics() {
		base, err := e.RunVariantContext(ctx, h, sched.NoFilter)
		if err != nil {
			return nil, err
		}
		best, err := e.RunVariantContext(ctx, h, sched.EnergyAndRobustness)
		if err != nil {
			return nil, err
		}
		imp := stats.ImprovementPct(base.Summary.Median, best.Summary.Median)
		t.Rows = append(t.Rows, []string{
			h.Name(),
			fmt.Sprintf("%.1f", base.Summary.Median),
			fmt.Sprintf("%.1f", best.Summary.Median),
			fmt.Sprintf("%.2f", imp),
		})
	}
	return t, nil
}
