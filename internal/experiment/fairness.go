package experiment

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// tenantAgg accumulates one tenant's rows while scanning a flight trace.
type tenantAgg struct {
	id       string
	slo      string
	tasks    int
	onTime   int
	late     int
	shed     int
	shedInf  int
	failed   int
	lateness []float64 // max(0, finish-deadline) per completed task
}

// FairnessTable summarizes a flight trace per tenant: goodput (on-time
// completions per unit virtual time over the trace horizon), shed counts
// (total and infeasible-deadline), and the p99 of completion lateness.
// Rows without a tenant tag are grouped under "-" so single-tenant traces
// still render. The horizon is the latest finish or arrival in the trace,
// shared across tenants so goodput figures are directly comparable.
func FairnessTable(tr *trace.Trace) *Table {
	aggs := map[string]*tenantAgg{}
	horizon := 0.0
	for i := range tr.Rows {
		r := &tr.Rows[i]
		horizon = math.Max(horizon, r.Arrival)
		if r.Finish >= 0 {
			horizon = math.Max(horizon, r.Finish)
		}
		id := r.Tenant
		if id == "" {
			id = "-"
		}
		a := aggs[id]
		if a == nil {
			a = &tenantAgg{id: id, slo: r.SLO}
			if a.slo == "" {
				a.slo = "-"
			}
			aggs[id] = a
		}
		a.tasks++
		switch r.Outcome {
		case "on-time":
			a.onTime++
			a.lateness = append(a.lateness, 0)
		case "late":
			a.late++
			a.lateness = append(a.lateness, math.Max(0, r.Finish-r.Deadline))
		case "failed":
			a.failed++
		}
		if r.Verdict == "shed" {
			a.shed++
			if r.Shed == "infeasible-deadline" {
				a.shedInf++
			}
		}
	}

	ids := make([]string, 0, len(aggs))
	for id := range aggs {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	tab := &Table{
		Title:  "per-tenant fairness (flight trace)",
		Header: []string{"tenant", "slo", "tasks", "on-time", "late", "shed", "infeasible", "failed", "goodput/s", "p99 lateness"},
	}
	for _, id := range ids {
		a := aggs[id]
		goodput := 0.0
		if horizon > 0 {
			goodput = float64(a.onTime) / horizon
		}
		tab.Rows = append(tab.Rows, []string{
			a.id, a.slo,
			fmt.Sprintf("%d", a.tasks),
			fmt.Sprintf("%d", a.onTime),
			fmt.Sprintf("%d", a.late),
			fmt.Sprintf("%d", a.shed),
			fmt.Sprintf("%d", a.shedInf),
			fmt.Sprintf("%d", a.failed),
			fmt.Sprintf("%.4f", goodput),
			fmt.Sprintf("%.4f", p99(a.lateness)),
		})
	}
	return tab
}

// p99 returns the 99th-percentile of xs (nearest-rank), 0 for empty input.
func p99(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(math.Ceil(0.99*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}
