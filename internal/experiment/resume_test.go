package experiment

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/pmf"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// --- spec hash ---------------------------------------------------------

func TestSpecHashStability(t *testing.T) {
	a := testSpec()
	if a.Hash() != testSpec().Hash() {
		t.Fatal("identical specs must hash identically")
	}
	// Result-determining fields change the hash.
	c := testSpec()
	c.Seed++
	if c.Hash() == a.Hash() {
		t.Fatal("seed change must change the hash")
	}
	d := testSpec()
	d.Trials++
	if d.Hash() == a.Hash() {
		t.Fatal("trial-count change must change the hash")
	}
	e := testSpec()
	e.BudgetScale = 0.5
	if e.Hash() == a.Hash() {
		t.Fatal("budget change must change the hash")
	}
	// Harness-only knobs do not: two runs that differ only in execution
	// strategy may share a journal.
	f := testSpec()
	f.Parallelism = 7
	f.TrialTimeout = time.Hour
	f.Retry = RetryPolicy{MaxRetries: 9, Backoff: time.Second, RetryPanics: true}
	if f.Hash() != a.Hash() {
		t.Fatal("harness-only knobs must not change the hash")
	}
}

// --- journal persistence ----------------------------------------------

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trial.wal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatalf("missing file should open empty, got %d records", j.Len())
	}
	for i := 0; i < 3; i++ {
		rec := TrialRecord{SpecHash: "abc", Seed: 1, Variant: "LL|none|1", Trial: i,
			Result: &sim.Result{Window: 120, OnTime: 100 + i, Missed: 20 - i, EnergyConsumed: 1.25 * float64(i)}}
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Idempotent duplicate.
	first, ok := j.Lookup("abc", "LL|none|1", 0, 1)
	if !ok {
		t.Fatal("lookup of journaled trial 0 missed")
	}
	if err := j.Append(*first); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 3 {
		t.Fatalf("duplicate append changed length to %d", j.Len())
	}
	// Reload from disk and compare a record bit-for-bit.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 3 {
		t.Fatalf("reloaded journal has %d records, want 3", j2.Len())
	}
	rec, ok := j2.Lookup("abc", "LL|none|1", 2, 1)
	if !ok {
		t.Fatal("record (abc, LL|none|1, 2, 1) missing after reload")
	}
	want, _ := j.Lookup("abc", "LL|none|1", 2, 1)
	if !reflect.DeepEqual(rec.Result, want.Result) {
		t.Fatalf("result changed across reload: %+v vs %+v", rec.Result, want.Result)
	}
	if _, ok := j2.Lookup("abc", "LL|none|1", 9, 1); ok {
		t.Fatal("lookup of absent trial must miss")
	}
	if _, ok := j2.Lookup("other", "LL|none|1", 0, 1); ok {
		t.Fatal("lookup under a different spec hash must miss")
	}
	if err := j.Append(TrialRecord{Variant: "x"}); err == nil {
		t.Fatal("append without a result must be rejected")
	}
}

func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := j.Append(TrialRecord{SpecHash: "h", Variant: "v", Trial: i, Result: &sim.Result{Window: 10}}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash mid-write by a non-atomic writer: valid prefix, torn
	// final line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, []byte(`{"specHash":"h","variant":"v","tri`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated, got %v", err)
	}
	if j2.Len() != 2 {
		t.Fatalf("torn-tail journal kept %d records, want 2", j2.Len())
	}
	// Corruption before valid records is damage, not a torn tail.
	if err := os.WriteFile(path, append([]byte("garbage-not-json\n"), data...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Fatal("corrupt leading record must be an error")
	}
}

// --- resume equivalence ------------------------------------------------

// TestResumeBitIdentical is the crash-safety acceptance test: a sweep is
// killed after k of n trials, resumed from the journal in a fresh
// environment, and the resumed run's variant result, merged metrics, and
// run report must be bit-identical to an uninterrupted run.
func TestResumeBitIdentical(t *testing.T) {
	spec := testSpec()
	spec.Parallelism = 1 // deterministic dispatch order for the cancel point
	path := filepath.Join(t.TempDir(), "resume.wal")

	// Phase 1: run with a journal attached and cancel after the first
	// completed trial.
	envA, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	jA, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	envA.SetJournal(jA, false)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	envA.SetProgress(func(done, total int, label string) {
		if done >= 1 {
			cancel()
		}
	})
	_, err = envA.RunVariantContext(ctx, sched.LightestLoad{}, sched.EnergyAndRobustness)
	if err == nil {
		t.Fatal("cancelled sweep must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep error should wrap context.Canceled, got %v", err)
	}
	if !strings.Contains(err.Error(), "cancelled with") {
		t.Fatalf("error should summarize the cancellation: %v", err)
	}
	k := jA.Len()
	if k < 1 || k >= spec.Trials {
		t.Fatalf("journal holds %d trials after interrupt, want in [1,%d)", k, spec.Trials)
	}

	// Phase 2: fresh environment, same journal, resume. Must succeed and
	// replay exactly the journaled trials.
	envB, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	jB, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	envB.SetJournal(jB, true)
	vrB, err := envB.RunVariant(sched.LightestLoad{}, sched.EnergyAndRobustness)
	if err != nil {
		t.Fatal(err)
	}
	hb := envB.HarnessSnapshot()
	if resumed, _ := hb.Value("experiment_trials_resumed_total"); int(resumed) != k {
		t.Fatalf("resumed %v trials, want %d", resumed, k)
	}
	if run, _ := hb.Value("experiment_trials_run_total"); int(run) != spec.Trials-k {
		t.Fatalf("re-ran %v trials, want %d", run, spec.Trials-k)
	}

	// Phase 3: uninterrupted reference run, no journal.
	envC, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	vrC, err := envC.RunVariant(sched.LightestLoad{}, sched.EnergyAndRobustness)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(vrB, vrC) {
		t.Fatalf("resumed variant result differs from uninterrupted run:\n%+v\nvs\n%+v", vrB, vrC)
	}
	if !envB.MetricsSnapshot().Equal(envC.MetricsSnapshot()) {
		t.Fatal("resumed metrics aggregate is not bit-identical to the uninterrupted run")
	}
	// Reports must match bit for bit once the execution-telemetry fields
	// are stripped: wall-clock phases, the harness lifecycle counters, and
	// the process-global pmf work tally all legitimately differ (run B did
	// less work). Everything else — SpecHash, Metrics, Derived — is a
	// simulation result and must be identical.
	rb, rc := envB.Report(), envC.Report()
	rb.Phases, rc.Phases = nil, nil
	rb.Harness, rc.Harness = nil, nil
	rb.PMF, rc.PMF = pmf.OpCounts{}, pmf.OpCounts{}
	jb, err := rb.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jc, err := rc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(jb) != string(jc) {
		t.Fatalf("resumed report differs from uninterrupted run:\n%s\nvs\n%s", jb, jc)
	}

	// Phase 4: the journal now holds all trials; a further resumed run
	// simulates nothing at all.
	envD, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	jD, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if jD.Len() != spec.Trials {
		t.Fatalf("journal holds %d records after completion, want %d", jD.Len(), spec.Trials)
	}
	envD.SetJournal(jD, true)
	vrD, err := envD.RunVariant(sched.LightestLoad{}, sched.EnergyAndRobustness)
	if err != nil {
		t.Fatal(err)
	}
	hd := envD.HarnessSnapshot()
	if run, _ := hd.Value("experiment_trials_run_total"); run != 0 {
		t.Fatalf("fully journaled run still simulated %v trials", run)
	}
	if !reflect.DeepEqual(vrD, vrC) {
		t.Fatal("fully replayed run differs from uninterrupted run")
	}
}

// TestResumeIgnoresForeignSpec pins the isolation property: a journal
// written under one spec never satisfies lookups for another.
func TestResumeIgnoresForeignSpec(t *testing.T) {
	spec := testSpec()
	path := filepath.Join(t.TempDir(), "foreign.wal")
	envA, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	jA, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	envA.SetJournal(jA, false)
	if _, err := envA.RunVariant(sched.ShortestQueue{}, sched.NoFilter); err != nil {
		t.Fatal(err)
	}
	if jA.Len() != spec.Trials {
		t.Fatalf("journal holds %d records, want %d", jA.Len(), spec.Trials)
	}
	// Same journal, different seed: nothing must be replayed.
	other := testSpec()
	other.Seed++
	envB, err := Build(other)
	if err != nil {
		t.Fatal(err)
	}
	jB, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	envB.SetJournal(jB, true)
	if _, err := envB.RunVariant(sched.ShortestQueue{}, sched.NoFilter); err != nil {
		t.Fatal(err)
	}
	h := envB.HarnessSnapshot()
	if resumed, _ := h.Value("experiment_trials_resumed_total"); resumed != 0 {
		t.Fatalf("foreign-spec run resumed %v trials, want 0", resumed)
	}
	if run, _ := h.Value("experiment_trials_run_total"); int(run) != other.Trials {
		t.Fatalf("foreign-spec run simulated %v trials, want %d", run, other.Trials)
	}
}

// --- panic quarantine --------------------------------------------------

// panicOn is a heuristic that panics while mapping the first task of the
// poisoned trial (identified by that task's arrival time, which is unique
// per trial) and otherwise behaves as LightestLoad.
type panicOn struct {
	sched.LightestLoad
	arrivals map[float64]bool
}

func (p panicOn) Name() string { return "PanicOn" }

func (p panicOn) Choose(ctx *sched.Context, feasible []*sched.Candidate) *sched.Candidate {
	if ctx.Task.ID == 0 && p.arrivals[ctx.Task.Arrival] {
		panic("poisoned trial")
	}
	return p.LightestLoad.Choose(ctx, feasible)
}

// TestPanicQuarantineIsolatesTrial injects a panicking mapper into one
// trial of a sweep and asserts that only that trial fails — quarantined
// after the retry policy is exhausted — while the others complete and are
// journaled.
func TestPanicQuarantineIsolatesTrial(t *testing.T) {
	spec := testSpec()
	spec.Retry = RetryPolicy{MaxRetries: 2, Backoff: time.Millisecond, RetryPanics: true}
	env, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "panic.wal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	env.SetJournal(j, false)
	poisoned := 1
	h := panicOn{arrivals: map[float64]bool{env.Trial(poisoned).Tasks[0].Arrival: true}}
	_, err = env.RunVariant(h, sched.NoFilter)
	if err == nil {
		t.Fatal("sweep with a poisoned trial must fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, "trial 1:") || !strings.Contains(msg, "panicked") || !strings.Contains(msg, "poisoned trial") {
		t.Fatalf("error should blame trial 1's panic: %v", msg)
	}
	if !strings.Contains(msg, "quarantined after 3 attempts") {
		t.Fatalf("error should report quarantine after initial + 2 retries: %v", msg)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatal("the panic should surface as a *PanicError in the chain")
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "panicOn") {
		t.Fatal("PanicError should carry the panic-site stack")
	}
	// Every healthy trial completed and was journaled before the run failed.
	if j.Len() != spec.Trials-1 {
		t.Fatalf("journal holds %d records, want %d (all but the poisoned trial)", j.Len(), spec.Trials-1)
	}
	h2 := env.HarnessSnapshot()
	if v, _ := h2.Value("experiment_trials_panicked_total"); v != 3 {
		t.Fatalf("panicked counter %v, want 3 (initial + 2 retries)", v)
	}
	if v, _ := h2.Value("experiment_trials_retried_total"); v != 2 {
		t.Fatalf("retried counter %v, want 2", v)
	}
	if v, _ := h2.Value("experiment_trials_quarantined_total"); v != 1 {
		t.Fatalf("quarantined counter %v, want 1", v)
	}
	if v, _ := h2.Value("experiment_trials_run_total"); int(v) != spec.Trials-1 {
		t.Fatalf("run counter %v, want %d", v, spec.Trials-1)
	}
}

// TestErrorsJoinAggregatesAllFailures pins the multi-error contract: every
// failed trial appears in the returned error, not just the first.
func TestErrorsJoinAggregatesAllFailures(t *testing.T) {
	env := buildEnv(t) // zero RetryPolicy: quarantine on first failure
	h := panicOn{arrivals: map[float64]bool{
		env.Trial(0).Tasks[0].Arrival: true,
		env.Trial(2).Tasks[0].Arrival: true,
	}}
	_, err := env.RunVariant(h, sched.NoFilter)
	if err == nil {
		t.Fatal("sweep with two poisoned trials must fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, "trial 0:") || !strings.Contains(msg, "trial 2:") {
		t.Fatalf("error must name both failed trials: %v", msg)
	}
	if strings.Contains(msg, "trial 1:") {
		t.Fatalf("healthy trial 1 must not appear as a failure: %v", msg)
	}
}

// --- trial timeout -----------------------------------------------------

// slowChoose delays every mapping decision so a trial's wall clock can
// exceed TrialTimeout even though the simulation itself is fine.
type slowChoose struct {
	sched.LightestLoad
	delay time.Duration
}

func (s slowChoose) Name() string { return "Slow" }

func (s slowChoose) Choose(ctx *sched.Context, feasible []*sched.Candidate) *sched.Candidate {
	time.Sleep(s.delay)
	return s.LightestLoad.Choose(ctx, feasible)
}

func TestTrialTimeoutQuarantines(t *testing.T) {
	spec := testSpec()
	spec.Trials = 1
	spec.TrialTimeout = 30 * time.Millisecond
	// Even a panic-retrying policy must not retry a deterministic timeout.
	spec.Retry = RetryPolicy{MaxRetries: 3, RetryPanics: true}
	env, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = env.RunVariant(slowChoose{delay: 5 * time.Millisecond}, sched.NoFilter)
	if err == nil {
		t.Fatal("a trial exceeding TrialTimeout must fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout should surface as DeadlineExceeded, got %v", err)
	}
	if !strings.Contains(err.Error(), "timed out after 30ms") {
		t.Fatalf("error should name the timeout: %v", err)
	}
	h := env.HarnessSnapshot()
	if v, _ := h.Value("experiment_trials_timedout_total"); v != 1 {
		t.Fatalf("timedout counter %v, want 1", v)
	}
	if v, _ := h.Value("experiment_trials_retried_total"); v != 0 {
		t.Fatalf("timeouts must not be retried, counter %v", v)
	}
	if v, _ := h.Value("experiment_trials_quarantined_total"); v != 1 {
		t.Fatalf("quarantined counter %v, want 1", v)
	}
}

// --- memo cache boundaries ---------------------------------------------

// TestMemoBypass pins the cache identity rule: only runs over the
// environment's own trial slice with an unmutated sim config may share (or
// populate) memoized results; everything else re-simulates.
func TestMemoBypass(t *testing.T) {
	env := buildEnv(t)
	var simulated int
	env.SetProgress(func(done, total int, label string) { simulated++ })

	a, err := env.RunVariant(sched.LightestLoad{}, sched.NoFilter)
	if err != nil {
		t.Fatal(err)
	}
	if simulated != env.Spec.Trials {
		t.Fatalf("first run simulated %d trials, want %d", simulated, env.Spec.Trials)
	}

	// Memo hit: identical result, zero additional work.
	b, err := env.RunVariant(sched.LightestLoad{}, sched.NoFilter)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatal("memo hit must return the identical result")
	}
	if simulated != env.Spec.Trials {
		t.Fatalf("memo hit re-simulated (progress count %d)", simulated)
	}

	// A caller-supplied trial set — even a copy with equal contents — has a
	// different backing array and must bypass the cache.
	copied := make([]*workload.Trial, env.Spec.Trials)
	for i := range copied {
		copied[i] = env.Trial(i)
	}
	m := &sched.Mapper{Heuristic: sched.LightestLoad{}}
	c, err := env.RunWithTrials(m, copied, "none")
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("caller-supplied trials must not share the memoized result")
	}
	if simulated != 2*env.Spec.Trials {
		t.Fatalf("bypassed run should re-simulate, progress count %d", simulated)
	}

	// A mutated sim config must bypass too, even when the mutation is a
	// no-op — the harness cannot inspect the closure.
	d, err := env.RunConfigured(m, "none", func(*sim.Config) {})
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Fatal("mutated-config runs must not share the memoized result")
	}
	if simulated != 3*env.Spec.Trials {
		t.Fatalf("mutated run should re-simulate, progress count %d", simulated)
	}

	// And neither bypass polluted the cache: the plain variant still hits.
	e, err := env.RunVariant(sched.LightestLoad{}, sched.NoFilter)
	if err != nil {
		t.Fatal(err)
	}
	if e != a || simulated != 3*env.Spec.Trials {
		t.Fatal("bypassing runs must not overwrite the memoized entry")
	}
}
