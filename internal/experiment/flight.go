package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/randx"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Flight recording, byte-for-byte replay, and calibration — the experiment
// layer of the per-task flight recorder (see internal/trace).
//
// Record: Env.FlightTrace runs one trial with a trace.Flight attached and
// stamps the header with everything replay needs: the serialized Spec (to
// rebuild the model), the FlightConfig (to rebuild the engine), the model
// hash (to refuse a drifted rebuild), and the (seed, trial) address of the
// decision stream.
//
// Replay: ReplayTrace rebuilds the model from the header's Spec, the
// engine from its FlightConfig, and the task stream from the recorded rows
// themselves — arrivals, types, deadlines, and execution quantiles are
// taken verbatim from the trace, with no distribution sampling — then
// re-runs and diffs. Because the simulator is deterministic given (config,
// trial, decision stream), the replayed trace must match the recorded one
// bit for bit; any diff is evidence of nondeterminism or code drift.
//
// Calibrate: Env.CalibrationStudy records a trial set and scores the
// predictions against outcomes (trace.Calibrate), closing the
// observe→predict→calibrate loop.

// FlightConfig pins down the engine configuration of a recorded run — the
// knobs beyond the Spec that decide how tasks are mapped. It serializes
// into the trace header and back out for replay.
type FlightConfig struct {
	// Heuristic names the immediate-mode heuristic (HeuristicByName);
	// ignored when Central is set.
	Heuristic string `json:"heuristic,omitempty"`
	// Filter names the paper filter variant: "none", "en", "rob", "en+rob".
	Filter string `json:"filter,omitempty"`
	// Central switches to the central-queue engine (EDFCheapest pull
	// policy) instead of immediate-mode mapping.
	Central bool `json:"central,omitempty"`
	// RhoThresh is the central pull policy's on-time threshold (0 = 0.5).
	RhoThresh float64 `json:"rhoThresh,omitempty"`
	// BudgetScale overrides the spec's energy budget scale; <= 0 keeps the
	// environment's resolved budget.
	BudgetScale float64 `json:"budgetScale,omitempty"`
	// Faults and Brownout configure the resilience extensions.
	Faults   fault.Spec             `json:"faults,omitempty"`
	Brownout []energy.BrownoutStage `json:"brownout,omitempty"`
}

// HeuristicByName resolves the paper heuristics ("SQ", "MECT", "LL",
// "Random") plus the extension policies ("PLL", "GreenLL", "MaxRho",
// "MinEEC"). The core facade delegates here.
func HeuristicByName(name string) (sched.Heuristic, error) {
	if h := sched.ByName(name); h != nil {
		return h, nil
	}
	switch name {
	case "PLL":
		return sched.PriorityLightestLoad{}, nil
	case "GreenLL":
		return sched.GreenLightestLoad{}, nil
	case "MaxRho":
		return sched.MaxRobustness{}, nil
	case "MinEEC":
		return sched.MinEnergy{}, nil
	}
	return nil, fmt.Errorf("experiment: unknown heuristic %q", name)
}

// FilterVariantByName resolves a paper filter variant label.
func FilterVariantByName(name string) (sched.FilterVariant, error) {
	for _, v := range sched.AllFilterVariants() {
		if v.String() == name {
			return v, nil
		}
	}
	return 0, fmt.Errorf("experiment: unknown filter variant %q (want none, en, rob, en+rob)", name)
}

// BuildModelFromSpec constructs just the fixed workload model and resolved
// energy budget of a spec — no trials, no harness. The cluster and pmf
// tables are derived exactly as BuildContext derives them (the stream tree
// is pure derivation), so replay, serving, and offline experiments with
// the same spec allocate on the identical instance.
func BuildModelFromSpec(spec Spec) (*workload.Model, float64, error) {
	if err := spec.Validate(); err != nil {
		return nil, 0, err
	}
	root := randx.NewStream(spec.Seed)
	c, err := cluster.Generate(root.Child("cluster"), spec.ClusterGen)
	if err != nil {
		return nil, 0, err
	}
	model, err := workload.BuildModel(root.Child("model"), c, spec.Workload)
	if err != nil {
		return nil, 0, err
	}
	budget := math.Inf(1)
	if spec.BudgetScale > 0 {
		budget = spec.BudgetScale * model.DefaultEnergyBudget()
	}
	return model, budget, nil
}

// simConfig materializes the engine configuration and its policy label.
// The returned config has no Observer or Metrics yet.
func (fc FlightConfig) simConfig(model *workload.Model, envBudget float64) (sim.Config, string, error) {
	budget := envBudget
	if fc.BudgetScale > 0 {
		budget = fc.BudgetScale * model.DefaultEnergyBudget()
	}
	cfg := sim.Config{
		Model:        model,
		EnergyBudget: budget,
		Faults:       fc.Faults,
		Brownout:     fc.Brownout,
	}
	if fc.Central {
		pull := sim.EDFCheapest{RhoThresh: fc.RhoThresh}
		cfg.CentralQueue = pull
		return cfg, pull.Name(), nil
	}
	h, err := HeuristicByName(fc.Heuristic)
	if err != nil {
		return sim.Config{}, "", err
	}
	filter := fc.Filter
	if filter == "" {
		filter = "none"
	}
	v, err := FilterVariantByName(filter)
	if err != nil {
		return sim.Config{}, "", err
	}
	cfg.Mapper = &sched.Mapper{Heuristic: h, Filters: v.Filters()}
	return cfg, cfg.Mapper.Name(), nil
}

// encodeBudget maps +Inf (unconstrained) to the JSON-safe -1 sentinel.
func encodeBudget(b float64) float64 {
	if math.IsInf(b, 1) {
		return -1
	}
	return b
}

// FlightTrace records one trial under the given engine configuration and
// returns the assembled flight trace. rec, when non-nil, receives the
// stream as it is produced (attach a trace.File to persist incrementally;
// keep its metrics registry separate from the run's, or the recorder's own
// counters would break record-vs-replay metric identity). The run bypasses
// the memo cache and journal — a flight recording is always live.
func (e *Env) FlightTrace(ctx context.Context, fc FlightConfig, trialIdx int, rec trace.Recorder) (*trace.Trace, *sim.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if trialIdx < 0 || trialIdx >= len(e.trials) {
		return nil, nil, fmt.Errorf("experiment: trial %d outside [0,%d)", trialIdx, len(e.trials))
	}
	cfg, label, err := fc.simConfig(e.Model, e.Budget)
	if err != nil {
		return nil, nil, err
	}
	specJSON, err := json.Marshal(e.Spec)
	if err != nil {
		return nil, nil, fmt.Errorf("experiment: serialize spec: %w", err)
	}
	knobs, err := json.Marshal(fc)
	if err != nil {
		return nil, nil, fmt.Errorf("experiment: serialize flight config: %w", err)
	}
	hdr := trace.Header{
		Kind:      trace.KindSim,
		ModelHash: e.Model.Hash(),
		Seed:      e.Spec.Seed,
		Trial:     trialIdx,
		Policy:    label,
		Budget:    encodeBudget(cfg.EnergyBudget),
		Spec:      specJSON,
		Knobs:     knobs,
	}
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	fl := trace.NewFlight(e.Model, hdr, rec)
	tr := e.trials[trialIdx]
	fl.SetTasks(tr.Tasks)
	cfg.Observer = fl
	res, err := sim.RunContext(ctx, cfg, tr, e.rootRng.ChildN("decisions", trialIdx))
	if err != nil {
		return nil, nil, err
	}
	return fl.Finish(trace.SummaryOf(res), reg.Snapshot()), res, nil
}

// ReplayResult is the outcome of re-driving a recorded trace.
type ReplayResult struct {
	// Trace is the replayed flight trace.
	Trace *trace.Trace
	// Result is the replayed run's summary.
	Result *sim.Result
	// Diff lists every field where the replay diverged from the record;
	// empty means the replay was bit-identical.
	Diff []string
}

// trialFromRows reassembles the task stream from recorded rows: no
// distribution sampling — arrival, type, deadline, quantile, and priority
// come verbatim from the trace. Rows must cover a contiguous ID range
// starting at 0 (guaranteed for sim traces, which pre-seed every task).
func trialFromRows(rows []trace.Row) (*workload.Trial, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("experiment: trace has no task rows")
	}
	tasks := make([]workload.Task, len(rows))
	seen := make([]bool, len(rows))
	for i := range rows {
		r := &rows[i]
		if r.ID < 0 || r.ID >= len(rows) || seen[r.ID] {
			return nil, fmt.Errorf("experiment: task rows are not a contiguous window (bad or duplicate id %d over %d rows)", r.ID, len(rows))
		}
		seen[r.ID] = true
		pri := r.Priority
		if pri == 0 {
			pri = 1 // omitted in the row encoding when 1
		}
		tasks[r.ID] = workload.Task{
			ID:       r.ID,
			Type:     r.Type,
			Arrival:  r.Arrival,
			Deadline: r.Deadline,
			U:        r.U,
			Priority: pri,
		}
	}
	if !sort.SliceIsSorted(tasks, func(i, j int) bool { return tasks[i].Arrival < tasks[j].Arrival }) {
		// Arrivals are nondecreasing in generated trials; recorded rows
		// preserve that. A violation means the trace was hand-edited.
		return nil, fmt.Errorf("experiment: recorded arrivals are not in order")
	}
	return &workload.Trial{Tasks: tasks}, nil
}

// ReplayTrace re-drives the simulator from a recorded flight trace and
// compares: same model (rebuilt from the header spec, hash-checked), same
// engine (rebuilt from the header config), same decision stream (re-derived
// from seed and trial index), and the recorded task stream itself. Returns
// the replayed trace and the field-level diff against the record; a
// non-empty diff means determinism was broken.
//
// Only simulator traces replay; serve traces (trace.KindServe) are driven
// by wall-clock admission and feed the calibration stage instead.
func ReplayTrace(ctx context.Context, rec *trace.Trace) (*ReplayResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rec.Header.Kind != trace.KindSim {
		return nil, fmt.Errorf("experiment: cannot replay a %q trace (replay targets the simulator engines)", rec.Header.Kind)
	}
	if len(rec.Header.Spec) == 0 {
		return nil, fmt.Errorf("experiment: trace header carries no spec")
	}
	var spec Spec
	if err := json.Unmarshal(rec.Header.Spec, &spec); err != nil {
		return nil, fmt.Errorf("experiment: decode header spec: %w", err)
	}
	var fc FlightConfig
	if len(rec.Header.Knobs) > 0 {
		if err := json.Unmarshal(rec.Header.Knobs, &fc); err != nil {
			return nil, fmt.Errorf("experiment: decode header config: %w", err)
		}
	}
	model, envBudget, err := BuildModelFromSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("experiment: rebuild model: %w", err)
	}
	if h := model.Hash(); h != rec.Header.ModelHash {
		return nil, fmt.Errorf("experiment: rebuilt model hash %s != recorded %s (code or spec drift; the trace cannot be replayed bit-for-bit)", h, rec.Header.ModelHash)
	}
	trial, err := trialFromRows(rec.Rows)
	if err != nil {
		return nil, err
	}
	cfg, label, err := fc.simConfig(model, envBudget)
	if err != nil {
		return nil, err
	}
	if label != rec.Header.Policy {
		return nil, fmt.Errorf("experiment: rebuilt policy %q != recorded %q", label, rec.Header.Policy)
	}
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	fl := trace.NewFlight(model, rec.Header, nil)
	fl.SetTasks(trial.Tasks)
	cfg.Observer = fl
	decisions := randx.NewStream(rec.Header.Seed).ChildN("decisions", rec.Header.Trial)
	res, err := sim.RunContext(ctx, cfg, trial, decisions)
	if err != nil {
		return nil, err
	}
	replayed := fl.Finish(trace.SummaryOf(res), reg.Snapshot())
	return &ReplayResult{
		Trace:  replayed,
		Result: res,
		Diff:   trace.Diff(rec, replayed, 20),
	}, nil
}

// CalibrationStudy records up to maxTrials trials under fc (0 or negative:
// the spec's full trial count), concatenates their rows, and scores the
// scheduler's predictions against observed outcomes. The result is also
// attached to the environment's run report.
func (e *Env) CalibrationStudy(ctx context.Context, fc FlightConfig, maxTrials int) (*trace.Calibration, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx = e.runContext(ctx)
	n := e.Spec.Trials
	if maxTrials > 0 && maxTrials < n {
		n = maxTrials
	}
	var rows []trace.Row
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiment: calibration cancelled at trial %d/%d: %w", i, n, err)
		}
		tr, _, err := e.FlightTrace(ctx, fc, i, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, tr.Rows...)
	}
	cal, err := trace.CalibrateRows(rows, e.Spec.Workload.BurstLen)
	if err != nil {
		return nil, err
	}
	e.optMu.Lock()
	e.calib = cal
	e.optMu.Unlock()
	return cal, nil
}

// CalibrationTable renders a calibration as an ecfig table: the
// reliability diagram (predicted-ρ bucket → observed on-time rate)
// followed by the per-(type, P-state, regime) groups, and the headline
// aggregates. Groups with too few completed tasks are annotated
// "insufficient data" rather than scored.
func CalibrationTable(c *trace.Calibration) *Table {
	t := &Table{
		Title:  "Calibration: predicted ρ vs observed on-time rate",
		Header: []string{"group", "n", "pred ρ", "observed", "gap", "p50 cov", "p99 cov"},
	}
	for _, b := range c.Buckets {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("ρ∈[%.1f,%.1f)", b.Lo, b.Hi),
			fmt.Sprintf("%d", b.N),
			fmt.Sprintf("%.3f", b.MeanPred),
			fmt.Sprintf("%.3f", b.Observed),
			fmt.Sprintf("%+.3f", b.Observed-b.MeanPred),
			"-", "-",
		})
	}
	for _, g := range c.Groups {
		label := fmt.Sprintf("type=%d %s %s", g.Type, g.PState, g.Regime)
		if g.Note != "" {
			t.Rows = append(t.Rows, []string{label, fmt.Sprintf("%d", g.N), g.Note, "-", "-", "-", "-"})
			continue
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%d", g.N),
			fmt.Sprintf("%.3f", g.MeanPredRho),
			fmt.Sprintf("%.3f", g.Observed),
			fmt.Sprintf("%+.3f", g.Gap),
			fmt.Sprintf("%.3f", g.P50Cov),
			fmt.Sprintf("%.3f", g.P99Cov),
		})
	}
	t.Rows = append(t.Rows,
		[]string{"ECE", fmt.Sprintf("%d", c.Tasks), fmt.Sprintf("%.4f", c.ECE), "-", "-", "-", "-"},
		[]string{"coverage (ideal .500/.990)", fmt.Sprintf("%d", c.Tasks), "-", "-", "-",
			fmt.Sprintf("%.3f", c.P50Coverage), fmt.Sprintf("%.3f", c.P99Coverage)},
	)
	return t
}
