package stats

import (
	"math"
	"testing"

	"repro/internal/randx"
)

func TestRankSumClearSeparation(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b := []float64{20, 21, 22, 23, 24, 25, 26, 27, 28, 29}
	c, err := RankSum(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.CLES != 1 {
		t.Fatalf("CLES %v, want 1 (every a < every b)", c.CLES)
	}
	if c.P > 0.001 {
		t.Fatalf("p %v, want tiny for complete separation", c.P)
	}
	if c.MedianA != 5.5 || c.MedianB != 24.5 {
		t.Fatalf("medians %v/%v", c.MedianA, c.MedianB)
	}
	if c.Z <= 0 {
		t.Fatalf("z %v should be positive when A is smaller", c.Z)
	}
}

func TestRankSumIdenticalSamples(t *testing.T) {
	a := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	c, err := RankSum(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.CLES-0.5) > 1e-12 {
		t.Fatalf("CLES %v, want 0.5 for identical samples", c.CLES)
	}
	if c.P < 0.99 {
		t.Fatalf("p %v, want ~1 for identical samples", c.P)
	}
}

func TestRankSumSymmetry(t *testing.T) {
	s := randx.NewStream(1)
	a := make([]float64, 30)
	b := make([]float64, 25)
	for i := range a {
		a[i] = s.Normal(10, 3)
	}
	for i := range b {
		b[i] = s.Normal(12, 3)
	}
	ab, err := RankSum(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := RankSum(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ab.CLES+ba.CLES-1) > 1e-9 {
		t.Fatalf("CLES not complementary: %v + %v", ab.CLES, ba.CLES)
	}
	if math.Abs(ab.P-ba.P) > 1e-9 {
		t.Fatalf("p not symmetric: %v vs %v", ab.P, ba.P)
	}
}

func TestRankSumFalsePositiveRate(t *testing.T) {
	// Under the null (same distribution), p < 0.05 should occur about 5%
	// of the time. With a fixed seed this is deterministic.
	s := randx.NewStream(7)
	reject := 0
	const reps = 400
	for r := 0; r < reps; r++ {
		a := make([]float64, 20)
		b := make([]float64, 20)
		for i := range a {
			a[i] = s.Normal(0, 1)
		}
		for i := range b {
			b[i] = s.Normal(0, 1)
		}
		c, err := RankSum(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if c.P < 0.05 {
			reject++
		}
	}
	rate := float64(reject) / reps
	if rate > 0.10 {
		t.Fatalf("null rejection rate %v, want ~0.05", rate)
	}
}

func TestRankSumPower(t *testing.T) {
	// A half-sigma shift at n=50 per group should usually be detected.
	s := randx.NewStream(9)
	reject := 0
	const reps = 100
	for r := 0; r < reps; r++ {
		a := make([]float64, 50)
		b := make([]float64, 50)
		for i := range a {
			a[i] = s.Normal(0, 1)
		}
		for i := range b {
			b[i] = s.Normal(0.8, 1)
		}
		c, _ := RankSum(a, b)
		if c.P < 0.05 {
			reject++
		}
	}
	if reject < 85 {
		t.Fatalf("detected %d/%d large shifts, want most", reject, reps)
	}
}

func TestRankSumErrors(t *testing.T) {
	if _, err := RankSum([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for tiny sample")
	}
	if _, err := RankSum([]float64{1, math.NaN()}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for NaN")
	}
	if _, err := RankSum([]float64{1, 2}, []float64{math.NaN(), 2}); err == nil {
		t.Fatal("expected error for NaN in B")
	}
}

func TestRankSumTies(t *testing.T) {
	// Heavy ties must not produce NaN or invalid CLES.
	a := []float64{1, 1, 1, 2, 2}
	b := []float64{1, 2, 2, 2, 3}
	c, err := RankSum(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(c.Z) || math.IsNaN(c.P) {
		t.Fatalf("NaN stats with ties: %+v", c)
	}
	if c.CLES <= 0.5 {
		t.Fatalf("CLES %v: A is stochastically smaller, want > 0.5", c.CLES)
	}
}

func TestBootstrapMedianCI(t *testing.T) {
	s := randx.NewStream(11)
	xs := make([]float64, 60)
	for i := range xs {
		xs[i] = s.Normal(100, 10)
	}
	lo, hi, err := BootstrapMedianCI(xs, 0.95, 2000, randx.NewStream(13))
	if err != nil {
		t.Fatal(err)
	}
	med, _ := Median(xs)
	if lo > med || hi < med {
		t.Fatalf("CI [%v,%v] excludes sample median %v", lo, hi, med)
	}
	if hi-lo <= 0 || hi-lo > 12 {
		t.Fatalf("CI width %v implausible for n=60 sd=10", hi-lo)
	}
	// Deterministic for equal streams.
	lo2, hi2, _ := BootstrapMedianCI(xs, 0.95, 2000, randx.NewStream(13))
	if lo != lo2 || hi != hi2 {
		t.Fatal("bootstrap not deterministic")
	}
}

func TestBootstrapMedianCIErrors(t *testing.T) {
	s := randx.NewStream(1)
	if _, _, err := BootstrapMedianCI([]float64{1}, 0.95, 100, s); err == nil {
		t.Fatal("expected error for tiny sample")
	}
	if _, _, err := BootstrapMedianCI([]float64{1, 2}, 1.5, 100, s); err == nil {
		t.Fatal("expected error for bad level")
	}
	if _, _, err := BootstrapMedianCI([]float64{1, 2}, 0.95, 5, s); err == nil {
		t.Fatal("expected error for too few iterations")
	}
	if _, _, err := BootstrapMedianCI([]float64{1, 2}, 0.95, 100, nil); err == nil {
		t.Fatal("expected error for nil stream")
	}
}

func TestComparisonString(t *testing.T) {
	c, _ := RankSum([]float64{1, 2, 3}, []float64{4, 5, 6})
	if c.String() == "" {
		t.Fatal("empty string")
	}
}
