package stats

import (
	"math"
	"strings"
	"testing"
)

func TestPercentileBasics(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := Percentile(s, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile([]float64{7}, 0.3) != 7 {
		t.Error("single-element percentile wrong")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 0.5) },
		func() { Percentile([]float64{1}, -0.1) },
		func() { Percentile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMedian(t *testing.T) {
	if m, _ := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median %v, want 2", m)
	}
	// Even count: mean of middle two — the convention matching the paper's
	// half-integer medians (375.5 of 50 trials).
	if m, _ := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median %v, want 2.5", m)
	}
	if _, err := Median(nil); err == nil {
		t.Fatal("expected error for empty sample")
	}
	// Median must not mutate its argument.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Fatal("Median mutated input")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("bounds wrong: %+v", s)
	}
	if s.Median != 4.5 {
		t.Fatalf("median %v, want 4.5", s.Median)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("mean %v, want 5", s.Mean)
	}
	if math.Abs(s.StdDev-2) > 1e-12 {
		t.Fatalf("sd %v, want 2", s.StdDev)
	}
	if s.Q1 > s.Median || s.Median > s.Q3 {
		t.Fatalf("quartiles out of order: %+v", s)
	}
}

func TestSummarizeOutliers(t *testing.T) {
	xs := []float64{10, 11, 12, 13, 14, 15, 16, 100}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Outliers) != 1 || s.Outliers[0] != 100 {
		t.Fatalf("outliers %v, want [100]", s.Outliers)
	}
	if s.WhiskerHi != 16 {
		t.Fatalf("upper whisker %v, want 16 (outlier excluded)", s.WhiskerHi)
	}
	if s.WhiskerLo != 10 {
		t.Fatalf("lower whisker %v, want 10", s.WhiskerLo)
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Fatal("expected error for empty sample")
	}
	if _, err := Summarize([]float64{1, math.NaN()}); err == nil {
		t.Fatal("expected error for NaN")
	}
	if _, err := Summarize([]float64{math.Inf(1)}); err == nil {
		t.Fatal("expected error for Inf")
	}
}

func TestSummarizeConstantSample(t *testing.T) {
	s, err := Summarize([]float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 5 || s.Max != 5 || s.Median != 5 || s.StdDev != 0 {
		t.Fatalf("constant sample summary wrong: %+v", s)
	}
	if len(s.Outliers) != 0 {
		t.Fatal("constant sample has outliers")
	}
}

func TestImprovementPct(t *testing.T) {
	if got := ImprovementPct(400, 300); math.Abs(got-25) > 1e-12 {
		t.Fatalf("improvement %v, want 25", got)
	}
	if got := ImprovementPct(100, 120); math.Abs(got+20) > 1e-12 {
		t.Fatalf("improvement %v, want -20", got)
	}
	if ImprovementPct(0, 5) != 0 {
		t.Fatal("zero base should yield 0")
	}
}

func TestRenderBoxes(t *testing.T) {
	a, _ := Summarize([]float64{1, 2, 3, 4, 5})
	b, _ := Summarize([]float64{10, 20, 30, 40, 100})
	out, err := RenderBoxes([]string{"none", "en+rob"}, []Summary{a, b}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "none") || !strings.Contains(out, "en+rob") {
		t.Fatalf("labels missing:\n%s", out)
	}
	if !strings.Contains(out, "M") || !strings.Contains(out, "=") || !strings.Contains(out, "|") {
		t.Fatalf("box glyphs missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // two boxes + axis line
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestRenderBoxesErrors(t *testing.T) {
	s, _ := Summarize([]float64{1})
	if _, err := RenderBoxes([]string{"a", "b"}, []Summary{s}, 40); err == nil {
		t.Fatal("expected error for label/summary mismatch")
	}
	if _, err := RenderBoxes(nil, nil, 40); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestRenderBoxesDegenerate(t *testing.T) {
	s, _ := Summarize([]float64{5, 5})
	out, err := RenderBoxes([]string{"const"}, []Summary{s}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestSummaryString(t *testing.T) {
	s, _ := Summarize([]float64{1, 2, 3})
	if !strings.Contains(s.String(), "med=2") {
		t.Fatalf("summary string %q", s.String())
	}
}
