// Package stats provides the descriptive statistics behind the paper's
// evaluation figures: five-number box-and-whiskers summaries over the 50
// simulation trials, quantiles with linear interpolation, and ASCII
// rendering of grouped box plots so every figure can be regenerated on a
// terminal.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrNoData is returned when a summary of an empty sample is requested.
var ErrNoData = errors.New("stats: no data")

// Summary is a Tukey box-and-whiskers description of a sample.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
	StdDev float64
	// WhiskerLo/WhiskerHi are the most extreme data points within 1.5·IQR
	// of the quartiles; points beyond are Outliers.
	WhiskerLo, WhiskerHi float64
	Outliers             []float64
}

// Percentile returns the p-quantile (p in [0,1]) of a sorted sample using
// linear interpolation between order statistics (type-7, the convention of
// most statistics packages: the median of an even-sized sample is the mean
// of the two central values). Panics if the sample is empty or p outside
// [0,1].
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("stats: percentile %v outside [0,1]", p))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return sorted[lo]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the sample median (the paper's headline statistic).
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Percentile(s, 0.5), nil
}

// Summarize computes the full box-plot summary of a sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrNoData
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum, sq := 0.0, 0.0
	for _, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Summary{}, fmt.Errorf("stats: invalid sample value %v", v)
		}
		sum += v
		sq += v * v
	}
	n := float64(len(s))
	mean := sum / n
	variance := math.Max(0, sq/n-mean*mean)
	out := Summary{
		N:      len(s),
		Min:    s[0],
		Q1:     Percentile(s, 0.25),
		Median: Percentile(s, 0.5),
		Q3:     Percentile(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   mean,
		StdDev: math.Sqrt(variance),
	}
	iqr := out.Q3 - out.Q1
	loFence := out.Q1 - 1.5*iqr
	hiFence := out.Q3 + 1.5*iqr
	out.WhiskerLo, out.WhiskerHi = out.Q1, out.Q3
	first := true
	for _, v := range s {
		if v < loFence || v > hiFence {
			out.Outliers = append(out.Outliers, v)
			continue
		}
		if first {
			out.WhiskerLo = v
			first = false
		}
		out.WhiskerHi = v
	}
	return out, nil
}

// String renders the five-number summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g mean=%.4g sd=%.4g",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean, s.StdDev)
}

// ImprovementPct returns the percentage improvement of value over base for
// a lower-is-better metric: 100·(base−value)/base. Positive means value is
// better (smaller).
func ImprovementPct(base, value float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - value) / base
}

// RenderBoxes draws horizontal ASCII box-and-whiskers plots, one row per
// labeled summary, on a shared axis of the given width. This is the
// terminal rendering of the paper's Figures 2–6.
func RenderBoxes(labels []string, summaries []Summary, width int) (string, error) {
	if len(labels) != len(summaries) {
		return "", fmt.Errorf("stats: %d labels for %d summaries", len(labels), len(summaries))
	}
	if len(summaries) == 0 {
		return "", ErrNoData
	}
	if width < 20 {
		width = 20
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	labelW := 0
	for i, s := range summaries {
		lo = math.Min(lo, s.Min)
		hi = math.Max(hi, s.Max)
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	span := hi - lo
	pos := func(v float64) int {
		p := int(math.Round(float64(width-1) * (v - lo) / span))
		if p < 0 {
			p = 0
		}
		if p > width-1 {
			p = width - 1
		}
		return p
	}
	var b strings.Builder
	for i, s := range summaries {
		row := make([]byte, width)
		for j := range row {
			row[j] = ' '
		}
		for j := pos(s.WhiskerLo); j <= pos(s.WhiskerHi); j++ {
			row[j] = '-'
		}
		for j := pos(s.Q1); j <= pos(s.Q3); j++ {
			row[j] = '='
		}
		row[pos(s.WhiskerLo)] = '|'
		row[pos(s.WhiskerHi)] = '|'
		row[pos(s.Median)] = 'M'
		for _, o := range s.Outliers {
			row[pos(o)] = 'o'
		}
		fmt.Fprintf(&b, "%-*s %s med=%.1f\n", labelW, labels[i], string(row), s.Median)
	}
	fmt.Fprintf(&b, "%-*s %-*.4g%*.4g\n", labelW, "", width/2, lo, width-width/2, hi)
	return b.String(), nil
}
