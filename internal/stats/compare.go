package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/randx"
)

// This file provides the inferential statistics used when comparing
// heuristics across trials: the Mann–Whitney (Wilcoxon rank-sum) test with
// normal approximation and tie correction, the common-language effect
// size, and bootstrap confidence intervals for medians. Box-plot medians
// alone cannot say whether "LL beats SQ" is signal or trial noise.

// Comparison summarizes a two-sample comparison of lower-is-better
// samples (missed-deadline counts).
type Comparison struct {
	// MedianA and MedianB are the sample medians.
	MedianA, MedianB float64
	// U is the Mann–Whitney statistic of sample A (number of (a,b) pairs
	// with a < b, counting ties as half).
	U float64
	// Z is the tie-corrected normal approximation of U's deviation from
	// its null mean.
	Z float64
	// P is the two-sided p-value under the normal approximation.
	P float64
	// CLES is the common-language effect size P(a < b) + P(a == b)/2: the
	// probability a random trial of A misses fewer deadlines than one of B.
	CLES float64
}

// String renders the comparison compactly.
func (c Comparison) String() string {
	return fmt.Sprintf("medians %.1f vs %.1f, P(A<B)=%.3f, z=%.2f, p=%.4f",
		c.MedianA, c.MedianB, c.CLES, c.Z, c.P)
}

// InsufficientDataError reports that a comparison or calibration group had
// too few samples for the requested statistic. The variance formulas below
// degenerate (zero or negative variance) under n<2, so callers get a typed
// error they can render as "insufficient data" instead of a bogus number.
type InsufficientDataError struct {
	// Op names the statistic that could not be computed.
	Op string
	// N is the offending sample size; Need is the minimum required.
	N, Need int
}

func (e *InsufficientDataError) Error() string {
	return fmt.Sprintf("stats: %s needs >= %d samples, got %d", e.Op, e.Need, e.N)
}

// RankSum runs the Mann–Whitney U test on two samples. It returns an
// *InsufficientDataError if either sample has fewer than 2 observations.
// The normal approximation is accurate for the 50-trial samples this
// repository produces.
func RankSum(a, b []float64) (Comparison, error) {
	n1, n2 := len(a), len(b)
	if n1 < 2 || n2 < 2 {
		n := n1
		if n2 < n {
			n = n2
		}
		return Comparison{}, &InsufficientDataError{Op: "RankSum", N: n, Need: 2}
	}
	medA, err := Median(a)
	if err != nil {
		return Comparison{}, err
	}
	medB, err := Median(b)
	if err != nil {
		return Comparison{}, err
	}
	type obs struct {
		v     float64
		fromA bool
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range a {
		if math.IsNaN(v) {
			return Comparison{}, fmt.Errorf("stats: NaN in sample A")
		}
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		if math.IsNaN(v) {
			return Comparison{}, fmt.Errorf("stats: NaN in sample B")
		}
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie groups; accumulate tie correction Σ(t³−t).
	ranks := make([]float64, len(all))
	tieCorr := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieCorr += t*t*t - t
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.fromA {
			r1 += ranks[i]
		}
	}
	f1, f2 := float64(n1), float64(n2)
	// U counts pairs where A exceeds B; convert so that U measures A-wins
	// for the lower-is-better reading later via CLES.
	uA := r1 - f1*(f1+1)/2 // pairs (a,b) with a > b (ties half)
	uLess := f1*f2 - uA    // pairs with a < b (ties half)
	mean := f1 * f2 / 2
	n := f1 + f2
	variance := f1 * f2 / 12 * ((n + 1) - tieCorr/(n*(n-1)))
	z := 0.0
	if variance > 0 {
		z = (uLess - mean) / math.Sqrt(variance)
	}
	p := 2 * (1 - stdNormCDF(math.Abs(z)))
	return Comparison{
		MedianA: medA,
		MedianB: medB,
		U:       uLess,
		Z:       z,
		P:       p,
		CLES:    uLess / (f1 * f2),
	}, nil
}

// stdNormCDF is Φ(x) via the complementary error function.
func stdNormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// BootstrapMedianCI returns a percentile bootstrap confidence interval for
// the median at the given level (e.g. 0.95), using iters resamples drawn
// from the stream. Deterministic for a fixed stream.
func BootstrapMedianCI(xs []float64, level float64, iters int, s *randx.Stream) (lo, hi float64, err error) {
	if len(xs) < 2 {
		return 0, 0, fmt.Errorf("stats: bootstrap needs >= 2 samples, got %d", len(xs))
	}
	if level <= 0 || level >= 1 {
		return 0, 0, fmt.Errorf("stats: confidence level %v outside (0,1)", level)
	}
	if iters < 10 {
		return 0, 0, fmt.Errorf("stats: bootstrap needs >= 10 iterations, got %d", iters)
	}
	if s == nil {
		return 0, 0, fmt.Errorf("stats: nil stream")
	}
	meds := make([]float64, iters)
	resample := make([]float64, len(xs))
	for it := 0; it < iters; it++ {
		for i := range resample {
			resample[i] = xs[s.IntN(len(xs))]
		}
		sort.Float64s(resample)
		meds[it] = Percentile(resample, 0.5)
	}
	sort.Float64s(meds)
	alpha := (1 - level) / 2
	return Percentile(meds, alpha), Percentile(meds, 1-alpha), nil
}
