package server

import (
	"fmt"
	"sync/atomic"
)

// BreakerConfig tunes the per-node circuit breakers. A breaker watches the
// fault events internal/fault injects on a node and, once tripped, removes
// the whole node from the candidate set so mapping routes around it — even
// after individual cores are repaired — until a cooldown elapses and one
// probe task completes there successfully.
type BreakerConfig struct {
	// Threshold is the number of fault strikes that trips the breaker.
	// Defaults to 2: a single transient blip does not blacklist a node,
	// repeated strikes do.
	Threshold int
	// Cooldown is how long (virtual time units) a tripped node stays
	// excluded before the breaker half-opens. Defaults to 4× the fault
	// spec's repair time, or the model's t_avg when no repair time is set.
	Cooldown float64
}

func (c *BreakerConfig) setDefaults(repair, tAvg float64) {
	if c.Threshold <= 0 {
		c.Threshold = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 4 * repair
		if c.Cooldown <= 0 {
			c.Cooldown = tAvg
		}
	}
}

// breakerState is one node's circuit state.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("breakerState(%d)", int(s))
}

// nodeBreaker is the per-node automaton. All mutating methods run on the
// engine goroutine; pub mirrors the state for lock-free /v1/stats reads
// from handler goroutines.
type nodeBreaker struct {
	state     breakerState
	strikes   int     // fault strikes since last close
	openUntil float64 // virtual time the open state ends
	probing   bool    // half-open: one probe task is in flight
	dead      bool    // permanent node failure: open forever
	pub       atomic.Int32
}

// pubDead is the published-state value for a permanently dead node; live
// states publish their breakerState value directly.
const pubDead = int32(breakerHalfOpen) + 1

// publish mirrors the automaton state into the atomic.
func (nb *nodeBreaker) publish() {
	s := int32(nb.state)
	if nb.dead {
		s = pubDead
	}
	nb.pub.Store(s)
}

// breakers manages the per-node set.
type breakers struct {
	cfg   BreakerConfig
	nodes []nodeBreaker
	// opens counts trip transitions (for metrics/stats).
	opens int
}

func newBreakers(cfg BreakerConfig, numNodes int, repair, tAvg float64) *breakers {
	cfg.setDefaults(repair, tAvg)
	return &breakers{cfg: cfg, nodes: make([]nodeBreaker, numNodes)}
}

// allows reports whether mapping may place work on the node at virtual time
// now. An open breaker whose cooldown has elapsed transitions to half-open
// and admits a single probe.
func (b *breakers) allows(node int, now float64) bool {
	nb := &b.nodes[node]
	if nb.dead {
		return false
	}
	switch nb.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now < nb.openUntil {
			return false
		}
		nb.state = breakerHalfOpen
		nb.probing = false
		nb.publish()
		return true
	case breakerHalfOpen:
		return !nb.probing
	}
	return true
}

// onMapped records that a task was placed on the node; in half-open state
// that task becomes the probe.
func (b *breakers) onMapped(node int) {
	nb := &b.nodes[node]
	if nb.state == breakerHalfOpen {
		nb.probing = true
	}
}

// onSuccess records a task completing on the node; a successful half-open
// probe closes the breaker.
func (b *breakers) onSuccess(node int) {
	nb := &b.nodes[node]
	if nb.state == breakerHalfOpen {
		nb.state = breakerClosed
		nb.strikes = 0
		nb.probing = false
		nb.publish()
	}
}

// onFault records a fault strike on the node at virtual time now and
// reports whether the breaker is (now) open. Permanent faults kill the node
// for good.
func (b *breakers) onFault(node int, now float64, permanent bool) bool {
	nb := &b.nodes[node]
	if permanent {
		if !nb.dead {
			nb.dead = true
			b.opens++
			nb.publish()
		}
		return true
	}
	if nb.state == breakerHalfOpen {
		// The probe failed: reopen immediately.
		nb.state = breakerOpen
		nb.openUntil = now + b.cfg.Cooldown
		nb.probing = false
		b.opens++
		nb.publish()
		return true
	}
	nb.strikes++
	if nb.state == breakerClosed && nb.strikes >= b.cfg.Threshold {
		nb.state = breakerOpen
		nb.openUntil = now + b.cfg.Cooldown
		b.opens++
		nb.publish()
	}
	return nb.state == breakerOpen
}

// stateOf returns the node's current state label for /v1/stats. Safe to
// call from any goroutine; it reads the published mirror, not the automaton.
func (b *breakers) stateOf(node int) string {
	s := b.nodes[node].pub.Load()
	if s == pubDead {
		return "dead"
	}
	return breakerState(s).String()
}
