package server

import (
	"strings"
	"testing"
)

// FuzzServerDecodeTask feeds arbitrary bytes to the POST /v1/tasks body
// decoder — the entire external input surface of the serving path. The
// contract: DecodeTask never panics, every rejection carries the "server: "
// prefix (so the HTTP layer can classify it as a 400), and everything it
// accepts re-validates cleanly — a request that decodes must be safe to
// hand to the engine as-is.
func FuzzServerDecodeTask(f *testing.F) {
	f.Add(`{"type": 0}`)
	f.Add(`{"type": 7, "deadline": 5000.5}`)
	f.Add(`{"type": 3, "slack": 120, "priority": 2, "maxEnergy": 1e6, "u": 0.25}`)
	f.Add(`{}`)
	f.Add(`{"type": -1}`)
	f.Add(`{"type": 1e99}`)
	f.Add(`{"type": 1, "deadline": 1, "slack": 1}`)
	f.Add(`{"type": 1, "u": 1.0}`)
	f.Add(`{"type": 1}{"type": 2}`)
	f.Add(`{"type": 1, "unknown": {"a": [1,2,3]}}`)
	f.Add(`[{"type": 1}]`)
	f.Add(`{"type": 1, "deadline": null, "slack": null}`)
	f.Add("{\"type\": 1, \"slack\": " + strings.Repeat("9", 400) + "}")
	f.Add("")
	f.Fuzz(func(t *testing.T, body string) {
		const types = 30
		req, err := DecodeTask(strings.NewReader(body), types)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "server: ") {
				t.Fatalf("error without package prefix: %v (input %q)", err, body)
			}
			return
		}
		if verr := req.Validate(types); verr != nil {
			t.Fatalf("accepted request fails re-validation: %v (input %q)", verr, body)
		}
		if req.Type < 0 || req.Type >= types {
			t.Fatalf("accepted out-of-range type %d (input %q)", req.Type, body)
		}
		if req.U != nil && !(*req.U > 0 && *req.U < 1) {
			t.Fatalf("accepted out-of-range u %v (input %q)", *req.U, body)
		}
	})
}
