package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/workload"
)

// TaskRequest is the decoded body of POST /v1/tasks. Only Type is
// mandatory; everything else defaults from the workload model.
type TaskRequest struct {
	// Type indexes the well-known task type in [0, TaskTypes).
	Type int `json:"type"`
	// Deadline, when set, is the absolute virtual-time deadline. Mutually
	// exclusive with Slack.
	Deadline *float64 `json:"deadline,omitempty"`
	// Slack, when set, places the deadline at arrival + slack. Mutually
	// exclusive with Deadline. When neither is given the server uses the
	// paper's rule: arrival + type mean execution time + load factor.
	Slack *float64 `json:"slack,omitempty"`
	// Priority is the task's weight (> 0); defaults to 1.
	Priority *float64 `json:"priority,omitempty"`
	// MaxEnergy, when set, caps the expected energy of any assignment the
	// mapper may choose for this task (an absolute per-task EEC ceiling on
	// top of the configured filter chain). Must be positive.
	MaxEnergy *float64 `json:"maxEnergy,omitempty"`
	// U, when set, pins the task's execution quantile in (0,1) — replay
	// and test hook; defaults to a draw from the server's seeded stream.
	U *float64 `json:"u,omitempty"`
	// Tenant identifies the submitting tenant for multi-tenant admission
	// control (quotas, weighted shedding, abuse quarantine). Empty opts out
	// of tenancy entirely — the pre-tenancy behavior, bit for bit.
	Tenant string `json:"tenant,omitempty"`
	// SLO names the tenant's class ("gold"/"silver"/"bronze"); requires
	// Tenant. Absent defaults to bronze.
	SLO *string `json:"slo,omitempty"`
}

// Class returns the request's parsed SLO class (bronze when absent; the
// request must have passed Validate).
func (req *TaskRequest) Class() workload.SLOClass {
	if req.SLO == nil {
		return workload.SLOBronze
	}
	c, _ := workload.ParseSLOClass(*req.SLO)
	return c
}

// maxTaskBody bounds the request body: a valid submission is a handful of
// scalar fields, so anything past 4 KiB is garbage or abuse.
const maxTaskBody = 4 << 10

// DecodeTask reads and validates one task submission from r. types is the
// model's task-type count (the valid range of TaskRequest.Type). It is the
// entire external input surface of the serving path, so it rejects
// everything malformed loudly: invalid JSON, unknown fields, trailing
// data, out-of-range types, non-finite or negative deadlines/slack,
// non-positive priority or energy caps, and quantiles outside (0,1).
func DecodeTask(r io.Reader, types int) (TaskRequest, error) {
	var req TaskRequest
	dec := json.NewDecoder(io.LimitReader(r, maxTaskBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("server: decode task: %w", err)
	}
	// A second Decode must see EOF: trailing objects mean a malformed (or
	// smuggled) request.
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return req, errors.New("server: decode task: trailing data after JSON object")
	}
	if err := req.Validate(types); err != nil {
		return req, err
	}
	return req, nil
}

// Validate checks the decoded request against the model's type range.
func (req *TaskRequest) Validate(types int) error {
	if req.Type < 0 || req.Type >= types {
		return fmt.Errorf("server: task type %d outside [0,%d)", req.Type, types)
	}
	if req.Deadline != nil && req.Slack != nil {
		return errors.New("server: deadline and slack are mutually exclusive")
	}
	if err := finitePositive("deadline", req.Deadline, true); err != nil {
		return err
	}
	if err := finitePositive("slack", req.Slack, true); err != nil {
		return err
	}
	if err := finitePositive("priority", req.Priority, false); err != nil {
		return err
	}
	if err := finitePositive("maxEnergy", req.MaxEnergy, false); err != nil {
		return err
	}
	if req.U != nil && !(*req.U > 0 && *req.U < 1) {
		return fmt.Errorf("server: u %v outside (0,1)", *req.U)
	}
	if req.Tenant != "" {
		if err := workload.ValidTenantID(req.Tenant); err != nil {
			return fmt.Errorf("server: %v", err)
		}
	}
	if req.SLO != nil {
		if req.Tenant == "" {
			return errors.New("server: slo requires a tenant id")
		}
		if _, err := workload.ParseSLOClass(*req.SLO); err != nil {
			return fmt.Errorf("server: %v", err)
		}
	}
	return nil
}

// finitePositive rejects NaN/Inf and negative values; zeroOK additionally
// admits zero (deadlines and slack may be zero — immediately infeasible,
// but well-formed; the shed path handles them).
func finitePositive(field string, v *float64, zeroOK bool) error {
	if v == nil {
		return nil
	}
	if math.IsNaN(*v) || math.IsInf(*v, 0) {
		return fmt.Errorf("server: %s %v must be finite", field, *v)
	}
	if *v < 0 || (!zeroOK && *v == 0) {
		bound := "positive"
		if zeroOK {
			bound = "non-negative"
		}
		return fmt.Errorf("server: %s %v must be %s", field, *v, bound)
	}
	return nil
}

// IsClientError reports whether err came from request validation (a 400)
// rather than server state.
func IsClientError(err error) bool {
	return err != nil && strings.HasPrefix(err.Error(), "server: ")
}
