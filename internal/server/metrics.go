package server

import "repro/internal/metrics"

// serverMetrics bundles the serving-path instrument handles. All handles
// come from the configured registry and are nil-safe, so an unconfigured
// server pays only dead branches.
type serverMetrics struct {
	requests *metrics.Counter
	admitted *metrics.Counter

	rejectedQueueFull  *metrics.Counter
	rejectedDraining   *metrics.Counter
	rejectedBrownout   *metrics.Counter
	rejectedHalted     *metrics.Counter
	rejectedBadReq     *metrics.Counter
	rejectedRecovering *metrics.Counter
	rejectedShardDown  *metrics.Counter
	rejectedTenant     map[string]*metrics.Counter

	mapped        *metrics.Counter
	shed          map[string]*metrics.Counter
	timedout      *metrics.Counter
	completedOn   *metrics.Counter
	completedLate *metrics.Counter
	failed        *metrics.Counter

	faults       *metrics.Counter
	retries      *metrics.Counter
	breakerOpens *metrics.Counter

	walRecords        *metrics.Counter
	walCommits        *metrics.Counter
	walErrors         *metrics.Counter
	checkpoints       *metrics.Counter
	recoveryReplayed  *metrics.Counter
	recoveryRedecided *metrics.Counter

	queueWait  *metrics.Histogram
	decideTime *metrics.Histogram
	queueHigh  *metrics.Max
	inflight   *metrics.Gauge
	stage      *metrics.Gauge
	consumed   *metrics.Gauge
}

// wall-clock latency buckets in seconds, admission-queue wait and mapping
// decision time.
var latencyBounds = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

func newServerMetrics(r *metrics.Registry) *serverMetrics {
	m := &serverMetrics{
		requests:           r.Counter("server_requests_total"),
		admitted:           r.Counter("server_admitted_total"),
		rejectedQueueFull:  r.Counter("server_rejected_total", metrics.L("reason", "queue-full")),
		rejectedDraining:   r.Counter("server_rejected_total", metrics.L("reason", "draining")),
		rejectedBrownout:   r.Counter("server_rejected_total", metrics.L("reason", "brownout")),
		rejectedHalted:     r.Counter("server_rejected_total", metrics.L("reason", "energy-exhausted")),
		rejectedBadReq:     r.Counter("server_rejected_total", metrics.L("reason", "bad-request")),
		rejectedRecovering: r.Counter("server_rejected_total", metrics.L("reason", "recovering")),
		rejectedShardDown:  r.Counter("server_rejected_total", metrics.L("reason", RejectShardDown)),
		walRecords:         r.Counter("server_wal_records_total"),
		walCommits:         r.Counter("server_wal_commits_total"),
		walErrors:          r.Counter("server_wal_errors_total"),
		checkpoints:        r.Counter("server_checkpoints_total"),
		recoveryReplayed:   r.Counter("server_recovery_replayed_total"),
		recoveryRedecided:  r.Counter("server_recovery_redecided_total"),
		mapped:             r.Counter("server_decisions_total", metrics.L("decision", "mapped")),
		timedout:           r.Counter("server_decisions_total", metrics.L("decision", "timed-out")),
		completedOn:        r.Counter("server_completed_total", metrics.L("result", "on-time")),
		completedLate:      r.Counter("server_completed_total", metrics.L("result", "late")),
		failed:             r.Counter("server_failed_total"),
		faults:             r.Counter("server_faults_total"),
		retries:            r.Counter("server_retries_total"),
		breakerOpens:       r.Counter("server_breaker_open_total"),
		queueWait:          r.Histogram("server_queue_wait_seconds", latencyBounds),
		decideTime:         r.Histogram("server_decision_seconds", latencyBounds),
		queueHigh:          r.Max("server_queue_depth_high_water"),
		inflight:           r.Gauge("server_inflight_tasks"),
		stage:              r.Gauge("server_brownout_stage"),
		consumed:           r.Gauge("server_energy_consumed"),
	}
	m.shed = map[string]*metrics.Counter{}
	for _, reason := range []string{ShedFiltered, ShedInfeasible, ShedBrownout, ShedHalted} {
		m.shed[reason] = r.Counter("server_shed_total", metrics.L("reason", reason))
	}
	m.rejectedTenant = map[string]*metrics.Counter{}
	for _, reason := range []string{RejectTenantQuarantined, RejectTenantRateLimit, RejectTenantQueueShare} {
		m.rejectedTenant[reason] = r.Counter("server_rejected_total", metrics.L("reason", reason))
	}
	return m
}

// rejectedTenantBy resolves the labeled tenant-rejection counter.
func (m *serverMetrics) rejectedTenantBy(reason string) *metrics.Counter {
	if m == nil {
		return nil
	}
	return m.rejectedTenant[reason]
}

// shedBy resolves the labeled shed counter (nil when the reason is unknown,
// which the nil-safe instruments tolerate).
func (m *serverMetrics) shedBy(reason string) *metrics.Counter {
	if m == nil {
		return nil
	}
	return m.shed[reason]
}
