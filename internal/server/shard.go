package server

// Sharded serving: a Shard wraps one Engine that owns a disjoint node slice
// of the cluster and an energy sub-budget carved from ζ_max. The Router
// (router.go) fans requests across shards through a pluggable Placement
// policy, mirroring the sched.Heuristic pattern — a small Choose interface
// over a candidate slice, deterministic tie-breaks, resolvable by name.

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// ShardHealth is the router's liveness verdict on one shard, driven by the
// health prober's loop-liveness probes: healthy shards answer a probe within
// the timeout, suspect shards have missed at least SuspectAfter consecutive
// probes (they are routed to only when no healthy shard can take the task),
// and dead shards have been fail-stopped — the router never routes to them
// and their unspent sub-budget has been reclaimed.
type ShardHealth int32

const (
	ShardHealthy ShardHealth = iota
	ShardSuspect
	ShardDead
)

// String returns the readiness vocabulary used by /v1/readyz.
func (h ShardHealth) String() string {
	switch h {
	case ShardHealthy:
		return "healthy"
	case ShardSuspect:
		return "suspect"
	default:
		return "dead"
	}
}

// Shard is one engine plus its routing identity: the global node indices it
// owns, its core count (the budget-carve weight), and the router's health
// verdict.
type Shard struct {
	// ID is the shard index, also the WAL suffix (<base>.s<ID>) and the
	// seed-stride multiplier.
	ID int
	// Nodes are the global node indices this shard's sub-cluster owns.
	Nodes []int
	// Cores is the total core count of the slice.
	Cores int

	eng    *Engine
	health atomic.Int32

	// misses counts consecutive failed liveness probes. Prober goroutine
	// only.
	misses int

	// budget is the router's sub-budget ledger entry for this shard — the
	// authoritative carve of ζ_max (the engine's meter mirrors it
	// best-effort via AdjustBudget). Guarded by the Router's budget mutex.
	budget float64
}

// Engine returns the wrapped engine.
func (s *Shard) Engine() *Engine { return s.eng }

// Health returns the router's current liveness verdict.
func (s *Shard) Health() ShardHealth { return ShardHealth(s.health.Load()) }

// HealthString returns the shard's readiness word for /v1/readyz:
// healthy, suspect, dead, or recovering (log replay in progress).
func (s *Shard) HealthString() string {
	if s.Health() != ShardDead && s.eng.Recovering() {
		return "recovering"
	}
	return s.Health().String()
}

// admitting reports whether the router may place new work here.
func (s *Shard) admitting() bool {
	return s.Health() != ShardDead && !s.eng.Killed() && s.eng.Accepting()
}

// probeLiveness checks that the engine loop is alive: it offers a sync
// barrier and waits for the loop to answer, bounded by timeout. A stalled,
// killed, or stopped loop misses the probe. The reply channel is buffered so
// an abandoned probe (loop answers after we gave up) can never wedge the
// loop. Recovering engines have no loop yet and report false; the prober
// skips them instead of counting misses.
func (e *Engine) probeLiveness(timeout time.Duration) bool {
	if e.killed.Load() || e.recovering.Load() {
		return false
	}
	ch := make(chan struct{}, 1)
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case e.syncCh <- ch:
	case <-e.doneCh:
		return false
	case <-t.C:
		return false
	}
	select {
	case <-ch:
		return true
	case <-e.doneCh:
		return false
	case <-t.C:
		return false
	}
}

// ShardCandidate is one admitting shard offered to a Placement policy,
// with the load and energy signals the policies rank by. Candidates are
// always presented in ascending shard-ID order, so a policy that scans with
// strict comparisons gets deterministic lowest-ID tie-breaks for free.
type ShardCandidate struct {
	Shard *Shard
	// QueueLen is the admission-queue occupancy; QueueCap its bound.
	QueueLen int
	QueueCap int
	// InFlight is the number of mapped tasks not yet completed.
	InFlight int64
	// Consumed and Budget are the shard's energy coordinates; Budget is
	// +Inf when the service is unconstrained.
	Consumed float64
	Budget   float64
}

// Load is the per-core backlog: (queued + in-flight) / cores. Normalizing
// by core count keeps heterogeneous slices comparable.
func (c *ShardCandidate) Load() float64 {
	return float64(int64(c.QueueLen)+c.InFlight) / float64(c.Shard.Cores)
}

// HeadroomFrac is the unspent fraction of the shard's sub-budget, in [0,1];
// 1 when unconstrained.
func (c *ShardCandidate) HeadroomFrac() float64 {
	if math.IsInf(c.Budget, 1) {
		return 1
	}
	if c.Budget <= 0 {
		return 0
	}
	f := (c.Budget - c.Consumed) / c.Budget
	return math.Max(0, math.Min(1, f))
}

// Placement picks the shard for one request, mirroring sched.Heuristic:
// Choose never sees an empty slice and must be deterministic given the
// candidate signals. Stateful policies (round-robin) are confined to the
// router's placement mutex.
type Placement interface {
	// Name identifies the policy (-placement flag, logs).
	Name() string
	// Choose picks one candidate; cands is non-empty, ascending shard ID.
	Choose(cands []*ShardCandidate) *ShardCandidate
}

// RoundRobinPlacement cycles through the admitting shards — the baseline
// policy, and the cheapest: no signal reads beyond candidate assembly.
type RoundRobinPlacement struct{ next int }

// Name returns "round-robin".
func (*RoundRobinPlacement) Name() string { return "round-robin" }

// Choose returns the next admitting shard in rotation.
func (p *RoundRobinPlacement) Choose(cands []*ShardCandidate) *ShardCandidate {
	c := cands[p.next%len(cands)]
	p.next++
	return c
}

// LeastLoadedPlacement picks the shard with the smallest per-core backlog.
// Exact load ties keep the lowest shard ID (strict < over ascending-ID
// candidates).
type LeastLoadedPlacement struct{}

// Name returns "least-loaded".
func (LeastLoadedPlacement) Name() string { return "least-loaded" }

// Choose picks the minimum-Load candidate.
func (LeastLoadedPlacement) Choose(cands []*ShardCandidate) *ShardCandidate {
	best := cands[0]
	bestL := best.Load()
	for _, c := range cands[1:] {
		if l := c.Load(); l < bestL {
			best, bestL = c, l
		}
	}
	return best
}

// RobustnessAwarePlacement balances load against energy headroom: score =
// headroom-fraction / (1 + load), so a lightly-loaded shard about to exhaust
// its sub-budget loses to a busier one with energy to spare — the serving
// analogue of the paper's load quantity, which trades completion probability
// against energy. Ties keep the lowest shard ID.
type RobustnessAwarePlacement struct{}

// Name returns "robustness".
func (RobustnessAwarePlacement) Name() string { return "robustness" }

// Choose picks the maximum-score candidate.
func (RobustnessAwarePlacement) Choose(cands []*ShardCandidate) *ShardCandidate {
	best := cands[0]
	bestS := best.HeadroomFrac() / (1 + best.Load())
	for _, c := range cands[1:] {
		if s := c.HeadroomFrac() / (1 + c.Load()); s > bestS {
			best, bestS = c, s
		}
	}
	return best
}

// PlacementNames lists the registered placement policies.
func PlacementNames() []string { return []string{"round-robin", "least-loaded", "robustness"} }

// PlacementByName resolves a placement policy, returning a fresh instance
// (round-robin carries a cursor).
func PlacementByName(name string) (Placement, error) {
	switch name {
	case "round-robin":
		return &RoundRobinPlacement{}, nil
	case "least-loaded":
		return LeastLoadedPlacement{}, nil
	case "robustness":
		return RobustnessAwarePlacement{}, nil
	}
	return nil, fmt.Errorf("server: unknown placement %q (have %v)", name, PlacementNames())
}
