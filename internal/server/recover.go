package server

// Crash-restart recovery: checkpoint + WAL-suffix replay.
//
// The recovery contract is bit-identity: an engine recovered at any record
// boundary continues exactly as the uninterrupted engine would have —
// same decisions, same RNG draws, same meter integration, same FinalReport.
// Three disciplines make that possible:
//
//   - records carry absolute meter coordinates and post-draw RNG stream
//     states, so replay installs rather than re-derives;
//   - replay applies record effects directly (counters, queues, breaker
//     automata) and never runs engine logic — with one deliberate
//     exception: *danglers*. The durable stream can only be cut at its very
//     end, so any task whose disposition fell past the cut (a killed task
//     without its requeue/fail record, a fired retry without its outcome,
//     an admit without its decision) is finished through the real engine
//     methods, which are deterministic given the restored stream states and
//     write their records into the new incarnation's WAL;
//   - the event heap is rebuilt canonically from the restored state
//     (completions from started queue heads, fault processes from the
//     mirrored schedule, repairs from repairAt, requeues from their fire
//     times), in a fixed order with the tie-break sequence reset.
//
// Recovery rotates the WAL: the recovered engine writes incarnation n+1 and
// a fresh checkpoint naming it. Until that checkpoint's atomic rename
// lands, the old checkpoint still points at the old, untouched WAL — a
// crash anywhere inside recovery just means recovering again from the same
// inputs.

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/randx"
	"repro/internal/workload"
)

// RecoveryReport summarizes one RecoverFrom pass.
type RecoveryReport struct {
	// Incarnation is the NEW WAL incarnation the recovered engine writes.
	Incarnation uint64 `json:"incarnation"`
	// FromCheckpoint is false when the whole genesis WAL was replayed.
	FromCheckpoint bool `json:"fromCheckpoint"`
	// CheckpointRecords is the replay cut (records already in the snapshot).
	CheckpointRecords uint64 `json:"checkpointRecords"`
	// ReplayedRecords counts WAL records applied after the cut.
	ReplayedRecords int `json:"replayedRecords"`
	// TornTail reports a torn final line (crash mid-append), dropped at
	// TornOffset.
	TornTail   bool  `json:"tornTail"`
	TornOffset int64 `json:"tornOffset,omitempty"`
	// ReDecided counts durably-admitted tasks whose decision was lost and
	// re-made; Danglers counts killed/retried tasks whose disposition was
	// lost and re-derived.
	ReDecided int `json:"reDecided"`
	Danglers  int `json:"danglers"`
	// VirtualNow is the recovered virtual time; the service resumes here.
	VirtualNow float64 `json:"virtualNow"`
}

// limboEntry is a killed task whose requeue/fail disposition fell past the
// durable cut; retryEntry a fired requeue slot whose outcome did.
type limboEntry struct {
	task     workload.Task
	attempts int
	at       float64
}

// openAdmit is a durably-admitted task whose decision fell past the cut.
type openAdmit struct {
	task workload.Task
	me   *float64
	at   float64
}

// replayState is the transient bookkeeping of one replay pass.
type replayState struct {
	lastMT, lastEN float64 // meter coordinates of the last engine record
	vt             float64 // highest virtual time seen
	budget         float64 // last adjusted budget (0 = never adjusted)
	admits         int64
	rejects        int64
	openAdmits     []openAdmit
	limbo          []limboEntry
	retries        []limboEntry
}

func (rs *replayState) closeAdmit(id int) {
	for i := range rs.openAdmits {
		if rs.openAdmits[i].task.ID == id {
			rs.openAdmits = append(rs.openAdmits[:i], rs.openAdmits[i+1:]...)
			return
		}
	}
}

func dropEntry(s []limboEntry, id int) []limboEntry {
	for i := range s {
		if s[i].task.ID == id {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// recTask materializes the task identity a record carries. TN/Cls decode to
// their zero values on pre-tenancy records, so old incarnations rebuild
// untagged tasks unchanged.
func recTask(r *walRecord) workload.Task {
	return workload.Task{ID: r.ID, Type: r.Ty, Arrival: r.Arr, Deadline: r.DL, U: r.U, Priority: r.Pri,
		Tenant: r.TN, Class: workload.SLOClass(r.Cls)}
}

// setHexState installs a recorded RNG stream state.
func setHexState(s *randx.Stream, hexs string) error {
	b, err := unhexState(hexs)
	if err != nil {
		return err
	}
	return s.SetState(b)
}

// RecoverFrom reconstructs the engine from its checkpoint and WAL. It must
// run between Prepare and Start: the engine goroutine is not running, the
// recovering flag keeps handlers out, and Start afterwards resumes service
// on the rebuilt state. Returns the recovery report; on error the engine
// must be discarded.
func (e *Engine) RecoverFrom() (*RecoveryReport, error) {
	if !e.recovering.Load() || e.wal != nil {
		return nil, errors.New("server: RecoverFrom requires a prepared, unstarted engine")
	}
	if e.cfg.WALPath == "" {
		return nil, errors.New("server: recovery requires Config.WALPath")
	}
	var ck *checkpoint
	if e.cfg.CheckpointPath != "" {
		var err error
		if ck, err = loadCheckpoint(e.cfg.CheckpointPath); err != nil {
			return nil, err
		}
	}
	oldInc, cut := uint64(1), uint64(0)
	if ck != nil {
		oldInc, cut = ck.Incarnation, ck.WALRecords
		if err := e.checkIdentity(ck.ModelHash, ck.Seed, ck.Policy, e.cfg.CheckpointPath); err != nil {
			return nil, err
		}
	}
	rep := &RecoveryReport{FromCheckpoint: ck != nil, CheckpointRecords: cut}
	var recs []walRecord
	if _, statErr := os.Stat(walPath(e.cfg.WALPath, oldInc)); statErr == nil || ck == nil {
		hdr, rr, torn, tornOff, err := readWAL(e.cfg.WALPath, oldInc)
		if err != nil {
			return nil, err
		}
		if err := e.checkIdentity(hdr.ModelHash, hdr.Seed, hdr.Policy, walPath(e.cfg.WALPath, oldInc)); err != nil {
			return nil, err
		}
		recs, rep.TornTail, rep.TornOffset = rr, torn, tornOff
		if torn {
			fmt.Fprintf(os.Stderr, "server: wal %s: dropped torn final line at byte offset %d (crash mid-append)\n",
				walPath(e.cfg.WALPath, oldInc), tornOff)
		}
	}
	// A checkpoint cut past the durable record count is legal: the cut was
	// taken under the append mutex and may include staged reject records the
	// crash then lost — their counts are inside the checkpoint already.

	if ck != nil {
		if err := e.restoreCheckpoint(ck); err != nil {
			return nil, err
		}
	} else {
		// Genesis replay: reproduce the fresh boot's fault-schedule draws
		// (same seed, same streams), then let the canonical rebuild below
		// discard and reconstruct the events.
		if e.needSchedule {
			e.scheduleFaults()
		}
		e.incarnation = 1
	}
	e.needSchedule = false

	var suffix []walRecord
	if uint64(len(recs)) > cut {
		suffix = recs[cut:]
	}
	rs, err := e.replay(suffix, ck)
	if err != nil {
		return nil, err
	}
	rep.ReplayedRecords = len(suffix)
	e.met.recoveryReplayed.Add(int64(len(suffix)))

	// Meter: straight from the checkpoint when nothing was replayed on top;
	// otherwise rebuilt from the last record's absolute coordinates plus the
	// structural invariants (a non-empty queue implies a started head at its
	// mapped P-state; a down core draws zero; everything else idles).
	recoveredVT := rs.vt
	e.virtualAt.Store(math.Float64bits(recoveredVT))
	ms := energy.MeterState{Now: rs.lastMT, Used: rs.lastEN, Budget: rs.budget}
	if len(suffix) == 0 && ck != nil {
		ms = ck.Meter
	} else {
		ms.States = make([]cluster.PState, len(e.cores))
		ms.Override = make([]float64, len(e.cores))
		for idx := range e.cores {
			ms.States[idx] = e.cfg.IdlePState
			if q := e.queues[idx]; len(q) > 0 && q[0].started {
				ms.States[idx] = q[0].pstate
			}
			ms.Override[idx] = -1
			if e.down[idx] {
				ms.Override[idx] = 0
			}
		}
	}
	if err := e.meter.Restore(ms); err != nil {
		return nil, err
	}
	e.budgetBits.Store(math.Float64bits(e.meter.Budget()))
	e.consumed.Store(math.Float64bits(e.meter.Consumed()))
	e.met.consumed.Set(e.meter.Consumed())
	e.lastEnergyEN = e.meter.Consumed()

	// Derived counters: admitted is exactly the decided count (submissions
	// that died in the admission channel were never acked and never logged);
	// received adds the durable rejection ledger on top. Add, not Store —
	// handlers may be counting recovering-rejections concurrently.
	restoredRejected := rs.rejects
	if ck != nil {
		restoredRejected += ck.Counters.Rejected
	}
	e.st.admitted.Add(e.decided)
	e.st.received.Add(e.decided + restoredRejected)
	e.rejectedBase = restoredRejected
	if e.brk != nil {
		e.st.brkOpens.Store(int64(e.brk.opens))
	}
	n := 0
	for idx := range e.queues {
		n += len(e.queues[idx])
	}
	e.inSystem = n
	e.updInflight()

	// Brownout: the stage is a pure monotone function of consumed/budget,
	// so one Update lands on the recovered stage.
	if e.bro != nil && !math.IsInf(e.meter.Budget(), 1) {
		stage, _ := e.bro.Update(e.meter.Consumed() / e.meter.Budget())
		e.stage.Store(int32(stage))
		e.met.stage.Set(float64(stage))
		cur := e.bro.Current()
		e.shedGate.Store(cur != nil && cur.ShedAdmission)
	}

	e.rebuildEvents()

	// Rotate: the recovered engine writes a fresh incarnation. Dangler
	// dispositions and re-decides below land in the NEW WAL.
	e.incarnation++
	rep.Incarnation = e.incarnation
	w, err := createWAL(e.cfg.WALPath, e.walHeader())
	if err != nil {
		return nil, err
	}
	e.wal = w
	e.walDead = false

	// Danglers: finish every interrupted disposition through the real
	// engine methods. recoverTask is deterministic given (time, task,
	// attempts); a re-run retry re-draws from the restored decision stream
	// state, reproducing the lost draws exactly.
	rep.Danglers = len(rs.limbo) + len(rs.retries)
	for _, le := range rs.limbo {
		e.recoverTask(le.at, le.task, le.attempts)
	}
	for _, rt := range rs.retries {
		snap := e.brkSnap()
		if chosen := e.mapTask(rt.at, rt.task, nil); chosen != nil {
			e.place(rt.at, rt.task, chosen, rt.attempts)
		} else {
			e.recoverTask(rt.at, rt.task, rt.attempts)
		}
		e.walBreakerDiff(rt.at, snap)
	}
	e.updInflight()

	// Re-decide durably-admitted tasks whose decision was lost. The pipeline
	// runs at the recovered virtual time with the restored stream states —
	// bit-identical to the lost decision when the cut fell right after the
	// admit record — and skips the wall-clock request timeout (the client is
	// gone; the admission is durable). A task whose deadline passed while
	// the process was down sheds as infeasible: failed visibly, never
	// orphaned.
	rep.ReDecided = len(rs.openAdmits)
	e.met.recoveryRedecided.Add(int64(len(rs.openAdmits)))
	for _, oa := range rs.openAdmits {
		e.decideTask(math.Max(recoveredVT, oa.at), oa.task, oa.me, 0, false)
	}

	e.commit()
	if e.cfg.CheckpointPath != "" && e.walOn() {
		cut2, rej2, tnRej2 := e.wal.cut()
		if err := writeCheckpoint(e.cfg.CheckpointPath, e.snapshotCheckpoint(cut2, rej2, tnRej2)); err != nil {
			return nil, err
		}
		e.met.checkpoints.Inc()
		// The new checkpoint names the new incarnation; the old WAL file is
		// dead weight now. Best-effort removal.
		if oldInc != e.incarnation {
			_ = os.Remove(walPath(e.cfg.WALPath, oldInc))
		}
	}

	// The service resumes at the recovered virtual time: wall time passed
	// while down, virtual time did not.
	if e.cfg.Clock == nil {
		e.clock = NewRealClockAt(recoveredVT, e.cfg.TimeScale)
	}
	rep.VirtualNow = recoveredVT
	return rep, nil
}

// checkIdentity refuses to replay state recorded by a differently-configured
// service: same model, same seed, same policy, or the replayed draws and
// decisions would be meaningless.
func (e *Engine) checkIdentity(modelHash string, seed uint64, policy, src string) error {
	if modelHash != e.model.Hash() {
		return fmt.Errorf("server: %s: model hash %s, engine has %s", src, modelHash, e.model.Hash())
	}
	if seed != e.cfg.Seed {
		return fmt.Errorf("server: %s: seed %d, engine has %d", src, seed, e.cfg.Seed)
	}
	if policy != e.cfg.Mapper.Name() {
		return fmt.Errorf("server: %s: policy %q, engine has %q", src, policy, e.cfg.Mapper.Name())
	}
	return nil
}

// restoreCheckpoint installs a checkpoint's snapshot into a prepared engine.
func (e *Engine) restoreCheckpoint(ck *checkpoint) error {
	if len(ck.Down) != len(e.down) || len(ck.Alive) != len(e.alive) ||
		len(ck.Queues) != len(e.queues) || len(ck.RepairAt) != len(e.repairAt) {
		return fmt.Errorf("server: checkpoint shape (%d cores, %d nodes) does not match the model (%d cores, %d nodes)",
			len(ck.Down), len(ck.Alive), len(e.down), len(e.alive))
	}
	e.incarnation = ck.Incarnation
	c := ck.Counters
	e.st.rejected.Add(c.Rejected)
	e.st.mapped.Add(c.Mapped)
	e.st.shed.Add(c.Shed)
	e.st.timedout.Add(c.TimedOut)
	e.st.onTime.Add(c.OnTime)
	e.st.late.Add(c.Late)
	e.st.failed.Add(c.Failed)
	e.st.faults.Add(c.Faults)
	e.st.retries.Add(c.Retries)
	e.st.assigned.Add(c.Assigned)
	for i := range c.ShedByReason {
		e.st.shedByRsn[i].Add(c.ShedByReason[i])
	}
	e.decided = ck.Decided
	e.nextID = ck.NextID
	e.reqSeq = ck.ReqSeq
	copy(e.down, ck.Down)
	copy(e.repairAt, ck.RepairAt)
	copy(e.alive, ck.Alive)
	for idx := range e.queues {
		e.queues[idx] = nil
		for _, q := range ck.Queues[idx] {
			e.queues[idx] = append(e.queues[idx], queued{
				task: q.Task.task(), pstate: cluster.PState(q.PS), actual: q.Act,
				attempts: q.Att, started: q.Started, startAt: q.StartAt,
			})
		}
	}
	e.requeues = make(map[int]requeueEntry, len(ck.Requeues))
	for _, r := range ck.Requeues {
		e.requeues[r.Slot] = requeueEntry{task: r.Task.task(), attempts: r.Att, fireAt: r.FireAt}
	}
	if e.brk != nil {
		if len(ck.Breakers) != len(e.brk.nodes) {
			return fmt.Errorf("server: checkpoint has %d breakers, engine has %d nodes", len(ck.Breakers), len(e.brk.nodes))
		}
		for nIdx := range ck.Breakers {
			b := ck.Breakers[nIdx]
			nb := &e.brk.nodes[nIdx]
			nb.state = breakerState(b.State)
			nb.strikes = b.Strikes
			nb.openUntil = b.Until
			nb.probing = b.Probing
			nb.dead = b.Dead
			nb.publish()
		}
		e.brk.opens = ck.BreakerOpens
	}
	for i := range ck.Tenants {
		row := &ck.Tenants[i]
		var ts *tenantState
		if row.Other {
			ts = e.tenants.other
		} else if ts = e.tenants.state(row.ID); ts != nil {
			ts.setClass(workload.SLOClass(row.Cls))
		}
		if ts == nil {
			continue
		}
		ts.rejectedBase = row.Rejected
		ts.admitted.Store(row.Admitted)
		ts.rejected.Store(row.Rejected)
		ts.mapped.Store(row.Mapped)
		ts.shed.Store(row.Shed)
		ts.shedInfeasible.Store(row.ShedInf)
		ts.timedout.Store(row.TimedOut)
		ts.onTime.Store(row.OnTime)
		ts.late.Store(row.Late)
		ts.failed.Store(row.Failed)
		ts.quarantines.Store(row.Quars)
		ts.winBits, ts.winPos, ts.winN, ts.winBad = row.WinBits, row.WinPos, row.WinN, row.WinBad
		ts.quarUntil.Store(math.Float64bits(row.QuarUntil))
		ts.mu.Lock()
		ts.tokens, ts.lastRefill = row.Tokens, row.LastRefill
		ts.mu.Unlock()
	}
	e.halted.Store(ck.Halted)
	e.nextTransient = ck.NextTransient
	e.nextPermanent = ck.NextPermanent
	copy(e.scriptFired, ck.ScriptFired)
	for _, s := range []struct {
		stream *randx.Stream
		hexs   string
	}{
		{e.rand, ck.RandDecisions},
		{e.transientRng, ck.RandTransient},
		{e.permanentRng, ck.RandPermanent},
		{e.targetRng, ck.RandTarget},
		{e.quantRn, ck.RandQuant},
	} {
		if err := setHexState(s.stream, s.hexs); err != nil {
			return err
		}
	}
	return nil
}

// replay applies one record suffix to the restored base state. Effects are
// applied directly; interrupted dispositions accumulate in the returned
// replayState for the dangler pass.
func (e *Engine) replay(recs []walRecord, base *checkpoint) (*replayState, error) {
	rs := &replayState{}
	if base != nil {
		rs.lastMT, rs.lastEN = base.Meter.Now, base.Meter.Used
		rs.vt = base.VirtualNow
		rs.budget = base.Meter.Budget
	}
	for i := range recs {
		r := &recs[i]
		if r.K != wkReject {
			// Reject records are written by handler goroutines and carry no
			// meter coordinates; every engine record does.
			rs.lastMT, rs.lastEN = r.MT, r.EN
			if r.T > rs.vt {
				rs.vt = r.T
			}
		}
		if err := e.apply(r, rs); err != nil {
			return nil, fmt.Errorf("server: wal replay: record %d (%s): %w", i, r.K, err)
		}
	}
	return rs, nil
}

// apply executes one record's effect.
func (e *Engine) apply(r *walRecord, rs *replayState) error {
	switch r.K {
	case wkReject:
		rs.rejects++
		e.st.rejected.Add(1)
		if r.TN != "" {
			if ts := e.tenants.lookup(r.TN); ts != nil {
				// rejectedBase too: replayed suffix rejects are durable but
				// absent from the new incarnation's ledger, so the next
				// snapshot's base must carry them — the per-tenant mirror of
				// e.rejectedBase = checkpoint + suffix.
				ts.rejected.Add(1)
				ts.rejectedBase++
			}
		}
	case wkAdmit:
		if err := setHexState(e.quantRn, r.QS); err != nil {
			return err
		}
		if r.ID >= e.nextID {
			e.nextID = r.ID + 1
		}
		e.decided++
		rs.admits++
		rs.openAdmits = append(rs.openAdmits, openAdmit{task: recTask(r), me: r.ME, at: r.T})
		if r.TN != "" {
			if ts := e.tenants.lookup(r.TN); ts != nil {
				ts.setClass(workload.SLOClass(r.Cls))
				ts.admitted.Add(1)
			}
		}
	case wkShed:
		if err := setHexState(e.rand, r.DS); err != nil {
			return err
		}
		e.st.shed.Add(1)
		e.st.shedByRsn[shedIdx(r.Rsn)].Add(1)
		rs.closeAdmit(r.ID)
		// Per-tenant effects mirror tenantOutcome exactly, abuse detector
		// included: the quarantine automaton is a deterministic function of
		// the decision stream, and replay drives it through the same code.
		if r.TN != "" {
			if ts := e.tenants.lookup(r.TN); ts != nil {
				ts.shed.Add(1)
				if r.Rsn == ShedInfeasible {
					ts.shedInfeasible.Add(1)
				}
				e.feedOutcome(ts, r.T, r.Rsn == ShedInfeasible)
			}
		}
	case wkTimeout:
		e.st.timedout.Add(1)
		rs.closeAdmit(r.ID)
		if r.TN != "" {
			if ts := e.tenants.lookup(r.TN); ts != nil {
				ts.timedout.Add(1)
				e.feedOutcome(ts, r.T, false)
			}
		}
	case wkMap:
		if err := setHexState(e.rand, r.DS); err != nil {
			return err
		}
		if r.Core < 0 || r.Core >= len(e.queues) {
			return fmt.Errorf("core %d out of range", r.Core)
		}
		e.queues[r.Core] = append(e.queues[r.Core], queued{
			task: recTask(r), pstate: cluster.PState(r.PS), actual: r.Act, attempts: r.Att,
		})
		e.st.assigned.Add(1)
		if r.New {
			e.st.mapped.Add(1)
			rs.closeAdmit(r.ID)
			if r.TN != "" {
				if ts := e.tenants.lookup(r.TN); ts != nil {
					ts.mapped.Add(1)
					e.feedOutcome(ts, r.T, false)
				}
			}
		} else {
			rs.retries = dropEntry(rs.retries, r.ID)
		}
	case wkStart:
		q := e.queues[r.Core]
		if len(q) == 0 || q[0].task.ID != r.ID {
			return fmt.Errorf("start for task %d does not match core %d queue head", r.ID, r.Core)
		}
		q[0].started = true
		q[0].startAt = r.T
	case wkFinish:
		q := e.queues[r.Core]
		if len(q) == 0 || q[0].task.ID != r.ID {
			return fmt.Errorf("finish for task %d does not match core %d queue head", r.ID, r.Core)
		}
		e.tenantCompleted(q[0].task, r.OK)
		e.queues[r.Core] = q[1:]
		if r.OK {
			e.st.onTime.Add(1)
		} else {
			e.st.late.Add(1)
		}
	case wkRetry:
		ent, ok := e.requeues[r.Slot]
		if !ok {
			return fmt.Errorf("retry fired for unknown slot %d", r.Slot)
		}
		delete(e.requeues, r.Slot)
		e.st.retries.Add(1)
		rs.retries = append(rs.retries, limboEntry{task: ent.task, attempts: ent.attempts, at: r.T})
	case wkRequeue:
		if err := setHexState(e.rand, r.DS); err != nil {
			return err
		}
		e.requeues[r.Slot] = requeueEntry{task: recTask(r), attempts: r.Att, fireAt: r.FT}
		if r.Slot >= e.reqSeq {
			e.reqSeq = r.Slot + 1
		}
		rs.limbo = dropEntry(rs.limbo, r.ID)
		rs.retries = dropEntry(rs.retries, r.ID)
	case wkFail:
		if err := setHexState(e.rand, r.DS); err != nil {
			return err
		}
		e.st.failed.Add(1)
		rs.failTenant(e, r.ID)
		rs.limbo = dropEntry(rs.limbo, r.ID)
		rs.retries = dropEntry(rs.retries, r.ID)
	case wkFault:
		e.st.faults.Add(1)
		if err := setHexState(e.targetRng, r.TGS); err != nil {
			return err
		}
		if !r.AP {
			break
		}
		if r.Src == "permanent" {
			if r.Node < 0 || r.Node >= len(e.alive) {
				return fmt.Errorf("node %d out of range", r.Node)
			}
			e.alive[r.Node] = false
			for idx, id := range e.cores {
				if id.Node == r.Node {
					rs.strand(e, idx, r.T)
				}
			}
		} else {
			if r.Core < 0 || r.Core >= len(e.down) {
				return fmt.Errorf("core %d out of range", r.Core)
			}
			rs.strand(e, r.Core, r.T)
			e.repairAt[r.Core] = r.RP
		}
	case wkFsched:
		switch r.Src {
		case "transient":
			if r.TRS != "" {
				if err := setHexState(e.transientRng, r.TRS); err != nil {
					return err
				}
			}
			if r.TGS != "" {
				if err := setHexState(e.targetRng, r.TGS); err != nil {
					return err
				}
			}
			e.nextTransient = r.NX
		case "permanent":
			if r.PRS != "" {
				if err := setHexState(e.permanentRng, r.PRS); err != nil {
					return err
				}
			}
			if r.TGS != "" {
				if err := setHexState(e.targetRng, r.TGS); err != nil {
					return err
				}
			}
			e.nextPermanent = r.NX
		case "script":
			if r.SI < 0 || r.SI >= len(e.scriptFired) {
				return fmt.Errorf("script index %d out of range", r.SI)
			}
			e.scriptFired[r.SI] = true
		default:
			return fmt.Errorf("unknown fault source %q", r.Src)
		}
	case wkRepair:
		if r.Core < 0 || r.Core >= len(e.down) {
			return fmt.Errorf("core %d out of range", r.Core)
		}
		e.repairAt[r.Core] = 0
		if r.AP {
			e.down[r.Core] = false
		}
	case wkBreaker:
		if e.brk == nil || r.Node < 0 || r.Node >= len(e.brk.nodes) {
			return fmt.Errorf("breaker record for node %d without matching automaton", r.Node)
		}
		nb := &e.brk.nodes[r.Node]
		nb.state = breakerState(r.BSt)
		nb.strikes = r.Strikes
		nb.openUntil = r.Until
		nb.probing = r.Probing
		nb.dead = r.Dead
		nb.publish()
		e.brk.opens = r.Opens
	case wkBrownout, wkEnergy:
		// Brownout stage is re-derived from the restored meter; energy
		// records exist for their meter coordinates, consumed generically.
	case wkBudget:
		// The meter restore below installs the final adjusted budget.
		rs.budget = r.BG
	case wkHalt:
		e.halted.Store(true)
		e.st.failed.Add(int64(r.N))
		rs.clearInFlight(e)
	case wkFlush:
		e.st.failed.Add(int64(r.N))
		rs.clearInFlight(e)
	case wkKill:
		// Audit record; the strand already happened at the fault record.
	default:
		return fmt.Errorf("unknown record kind %q", r.K)
	}
	return nil
}

// strand mirrors downCore's structural effect: the core goes down and its
// queue moves into limbo awaiting each task's durable disposition.
func (rs *replayState) strand(e *Engine, idx int, at float64) {
	if e.down[idx] {
		return
	}
	e.down[idx] = true
	for _, q := range e.queues[idx] {
		rs.limbo = append(rs.limbo, limboEntry{task: q.task, attempts: q.attempts, at: at})
	}
	e.queues[idx] = nil
}

// failTenant credits the per-tenant failure of a replayed fail record: the
// fail record carries only the task id, but the full task identity lives in
// the limbo/retry entry the record is about to drop.
func (rs *replayState) failTenant(e *Engine, id int) {
	for _, s := range [][]limboEntry{rs.limbo, rs.retries} {
		for i := range s {
			if s[i].task.ID == id {
				e.tenantFailed(s[i].task)
				return
			}
		}
	}
}

// clearInFlight mirrors the wholesale clears (halt, drain flush), per-tenant
// failure credits included — the live path fails each cleared task through
// fail(), which feeds tenantFailed.
func (rs *replayState) clearInFlight(e *Engine) {
	for idx := range e.queues {
		for _, q := range e.queues[idx] {
			e.tenantFailed(q.task)
		}
		e.queues[idx] = nil
	}
	for _, r := range e.requeues {
		e.tenantFailed(r.task)
	}
	e.requeues = make(map[int]requeueEntry)
	rs.limbo = nil
	rs.retries = nil
}

// rebuildEvents reconstructs the heap canonically: completions per started
// queue head, the fault processes, pending repairs, and requeue firings —
// fixed order, sequence counter reset. A halted engine gets no events; its
// heap was dropped at the halt.
func (e *Engine) rebuildEvents() {
	e.events = nil
	e.seq = 0
	if e.halted.Load() {
		return
	}
	for idx := range e.queues {
		if q := e.queues[idx]; len(q) > 0 && q[0].started {
			e.push(event{time: q[0].startAt + q[0].actual, kind: evCompletion, idx: idx, gen: e.runGen[idx]})
		}
	}
	if e.nextTransient > 0 {
		e.push(event{time: e.nextTransient, kind: evFault, idx: srcTransient})
	}
	if e.nextPermanent > 0 {
		e.push(event{time: e.nextPermanent, kind: evFault, idx: srcPermanent})
	}
	for i, sf := range e.cfg.Faults.Script {
		if !e.scriptFired[i] {
			e.push(event{time: sf.Time, kind: evFault, idx: srcScript + i})
		}
	}
	for idx := range e.down {
		if e.down[idx] && e.repairAt[idx] > 0 {
			e.push(event{time: e.repairAt[idx], kind: evRepair, idx: idx})
		}
	}
	slots := make([]int, 0, len(e.requeues))
	for s := range e.requeues {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	for _, s := range slots {
		e.push(event{time: e.requeues[s].fireAt, kind: evRequeue, idx: s})
	}
}

// DrainNow runs the graceful drain inline on the caller's goroutine without
// ever starting the engine loop — the deterministic-replay harness: recover,
// drain, report, with no live clock in the path. The engine is finished
// afterwards (Start must not be called).
func (e *Engine) DrainNow() error {
	e.beginInlineDrain()
	err := e.drain()
	e.finishInlineDrain()
	return err
}

// beginInlineDrain freezes the clock at the recovered virtual instant and
// flips the draining flag. RecoverFrom installs a wall-driven clock for the
// serving path; here the drain's fast-forward owns the virtual axis, and a
// ticking clock would leak wall jitter into VirtualNow (and through it, the
// drained report and flight summary), breaking the run-twice byte-identity
// the chaos gate asserts.
func (e *Engine) beginInlineDrain() {
	frozen := NewManualClock()
	frozen.Advance(math.Float64frombits(e.virtualAt.Load()))
	e.clock = frozen
	e.draining.Store(true)
}

// finishInlineDrain closes the WAL and marks the engine finished after an
// inline (loop-less) drain.
func (e *Engine) finishInlineDrain() {
	if e.wal != nil {
		_ = e.wal.close()
	}
	close(e.doneCh)
}
