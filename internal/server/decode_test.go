package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestDecodeTask(t *testing.T) {
	const types = 10
	ok := []string{
		`{"type": 0}`,
		`{"type": 9}`,
		`{"type": 3, "deadline": 5000}`,
		`{"type": 3, "slack": 0}`,
		`{"type": 3, "priority": 2.5, "maxEnergy": 1e6}`,
		`{"type": 3, "u": 0.5}`,
		`{}`, // type defaults to 0
	}
	for _, body := range ok {
		if _, err := DecodeTask(strings.NewReader(body), types); err != nil {
			t.Errorf("valid body rejected: %s: %v", body, err)
		}
	}
	bad := []struct{ name, body string }{
		{"empty", ""},
		{"not json", "hello"},
		{"wrong shape", `[1,2,3]`},
		{"unknown field", `{"type": 1, "bogus": true}`},
		{"trailing data", `{"type": 1}{"type": 2}`},
		{"type negative", `{"type": -1}`},
		{"type too large", `{"type": 10}`},
		{"type non-integer", `{"type": 1.5}`},
		{"deadline and slack", `{"type": 1, "deadline": 5, "slack": 5}`},
		{"deadline negative", `{"type": 1, "deadline": -1}`},
		{"deadline nan", `{"type": 1, "deadline": "NaN"}`},
		{"slack negative", `{"type": 1, "slack": -0.5}`},
		{"priority zero", `{"type": 1, "priority": 0}`},
		{"priority negative", `{"type": 1, "priority": -2}`},
		{"maxEnergy zero", `{"type": 1, "maxEnergy": 0}`},
		{"u zero", `{"type": 1, "u": 0}`},
		{"u one", `{"type": 1, "u": 1}`},
		{"u negative", `{"type": 1, "u": -0.1}`},
		{"oversized body", `{"type": 1, "slack": ` + strings.Repeat("0", maxTaskBody) + `}`},
	}
	for _, tc := range bad {
		req, err := DecodeTask(strings.NewReader(tc.body), types)
		if err == nil {
			t.Errorf("%s: accepted %q as %+v", tc.name, tc.body, req)
			continue
		}
		if !IsClientError(err) {
			t.Errorf("%s: error lacks the client prefix: %v", tc.name, err)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	m := buildModel(t, 30)
	eng, _ := newTestEngine(t, m, nil)
	srv := httptest.NewServer(NewServer(eng))
	defer srv.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/tasks", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// A good task maps.
	resp := post(`{"type": 0}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST good task: %s", resp.Status)
	}
	var d Decision
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d.Status != StatusMapped || d.Assignment == nil {
		t.Fatalf("decision: %+v", d)
	}

	// Malformed bodies are 400 and counted.
	for _, body := range []string{`{"type": 999}`, `not json`, `{"x":1}`} {
		resp = post(body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %q: %s, want 400", body, resp.Status)
		}
	}

	// An infeasible deadline is shed with 422.
	resp = post(`{"type": 0, "slack": 0}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("POST infeasible: %s, want 422", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d.Status != StatusShed || d.Reason != ShedInfeasible {
		t.Fatalf("shed decision: %+v", d)
	}

	// Health, readiness, stats, model.
	get := func(path string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		doc := map[string]any{}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp, doc
	}
	if resp, doc := get("/v1/healthz"); resp.StatusCode != 200 || doc["status"] != "ok" {
		t.Fatalf("healthz: %s %v", resp.Status, doc)
	}
	if resp, doc := get("/v1/readyz"); resp.StatusCode != 200 || doc["ready"] != true {
		t.Fatalf("readyz: %s %v", resp.Status, doc)
	}
	if _, doc := get("/v1/stats"); doc["queueCap"] == nil || doc["stats"] == nil {
		t.Fatalf("stats doc: %v", doc)
	}
	_, doc := get("/v1/model")
	if int(doc["taskTypes"].(float64)) != m.Params.TaskTypes || doc["equilibriumRate"].(float64) <= 0 {
		t.Fatalf("model doc: %v", doc)
	}

	// Draining flips readiness to 503 and new tasks to 503.
	if err := eng.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	if resp, _ := get("/v1/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %s", resp.Status)
	}
	resp = post(`{"type": 0}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining: %s, want 503", resp.Status)
	}
	if resp, doc := get("/v1/healthz"); resp.StatusCode != 200 || doc["draining"] != true {
		t.Fatalf("healthz while draining: %s %v", resp.Status, doc)
	}
}

func TestHTTPBackpressureHeaders(t *testing.T) {
	m := buildModel(t, 31)
	eng, _ := newTestEngine(t, m, func(c *Config) { c.QueueCap = 1 })
	srv := httptest.NewServer(NewServer(eng))
	defer srv.Close()

	release := blockEngine(eng)
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(srv.URL+"/v1/tasks", "application/json", strings.NewReader(`{"type": 0}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	for eng.QueueDepth() < 1 {
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Post(srv.URL+"/v1/tasks", "application/json", strings.NewReader(`{"type": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow POST: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	release()
	<-done
}

func TestIsClientError(t *testing.T) {
	if IsClientError(nil) {
		t.Fatal("nil is a client error")
	}
	_, err := DecodeTask(strings.NewReader(`{"type": -5}`), 4)
	if !IsClientError(err) {
		t.Fatalf("validation error not classified: %v", err)
	}
	if IsClientError(errors.New("some transport failure")) {
		t.Fatal("foreign error classified as client error")
	}
}
