package server

import (
	"sync"
	"time"
)

// Clock maps wall-clock time onto the simulation's virtual time axis. The
// allocation engine is written entirely against virtual time (the same
// units as task execution pmfs and deadlines); the clock decides how fast
// that axis advances. A RealClock ties it to the wall at a configurable
// scale; tests drive a ManualClock by hand for fully deterministic runs.
type Clock interface {
	// Now returns the current virtual time. It must be monotone
	// non-decreasing.
	Now() float64
	// WaitUntil returns a channel that receives (or closes) once virtual
	// time vt has been reached. A vt at or before Now fires immediately.
	// Each call returns an independent one-shot channel.
	WaitUntil(vt float64) <-chan struct{}
}

// RealClock advances virtual time at Scale units per wall second, starting
// from a fixed virtual origin at construction (zero for a fresh service).
type RealClock struct {
	start  time.Time
	origin float64
	scale  float64
}

// NewRealClock returns a clock running at scale virtual units per wall
// second; scale must be positive.
func NewRealClock(scale float64) *RealClock {
	return NewRealClockAt(0, scale)
}

// NewRealClockAt returns a clock that reads origin now and advances at
// scale virtual units per wall second — the recovery path's clock, so a
// restarted engine resumes at the virtual time it recovered rather than
// stalling behind the monotone clamp until the wall catches up. Virtual
// time is frozen while the process is down.
func NewRealClockAt(origin, scale float64) *RealClock {
	return &RealClock{start: time.Now(), origin: origin, scale: scale}
}

// Now implements Clock.
func (c *RealClock) Now() float64 {
	return c.origin + time.Since(c.start).Seconds()*c.scale
}

// WaitUntil implements Clock.
func (c *RealClock) WaitUntil(vt float64) <-chan struct{} {
	ch := make(chan struct{}, 1)
	delta := vt - c.Now()
	if delta <= 0 {
		ch <- struct{}{}
		return ch
	}
	d := time.Duration(delta / c.scale * float64(time.Second))
	time.AfterFunc(d, func() { ch <- struct{}{} })
	return ch
}

// ManualClock is a hand-driven clock for deterministic tests: virtual time
// only moves when Advance is called, and waiters fire synchronously inside
// the Advance that reaches them.
type ManualClock struct {
	mu      sync.Mutex
	now     float64
	waiters []manualWaiter
}

type manualWaiter struct {
	vt float64
	ch chan struct{}
}

// NewManualClock returns a manual clock at virtual time 0.
func NewManualClock() *ManualClock { return &ManualClock{} }

// Now implements Clock.
func (c *ManualClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// WaitUntil implements Clock.
func (c *ManualClock) WaitUntil(vt float64) <-chan struct{} {
	ch := make(chan struct{}, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if vt <= c.now {
		ch <- struct{}{}
		return ch
	}
	c.waiters = append(c.waiters, manualWaiter{vt: vt, ch: ch})
	return ch
}

// Advance moves virtual time forward by dt and fires every waiter whose
// deadline has been reached.
func (c *ManualClock) Advance(dt float64) {
	c.mu.Lock()
	c.now += dt
	var fire []chan struct{}
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if w.vt <= c.now {
			fire = append(fire, w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
	c.mu.Unlock()
	for _, ch := range fire {
		ch <- struct{}{}
	}
}
