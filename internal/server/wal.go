package server

// Write-ahead admission log (ecwal/v1). Every externally-visible state
// transition the engine makes — admit, shed, timeout, map, start, finish,
// requeue, fault/kill, repair, breaker transition, brownout stage change,
// energy debit, halt, and pre-admission reject — is appended as one JSONL
// record and fsync'd *before* the client sees the acknowledgement (group
// commit: the engine batches each loop iteration's records into a single
// flush+fsync and only then releases the deferred Decision replies).
//
// The file reuses the flight recorder's envelope discipline
// (internal/trace.LineDecoder): header-first JSONL, a 16MB line cap, and
// exactly one tolerated failure mode — a torn final line, the signature of
// a crash mid-append. Records carry everything recovery needs to rebuild
// the engine bit-identically:
//
//   - absolute meter coordinates (mt = meter time, en = consumed energy) on
//     every record, so the meter restores from the last durable record with
//     no floating-point path dependence and no possibility of double-debit;
//   - post-draw RNG stream states (hex-encoded PCG state) on every record
//     whose production consumed randomness, so replay installs states
//     instead of re-drawing;
//   - full task identity on admit, map, and requeue records, so a record
//     suffix is self-contained — an admitted task whose outcome was lost to
//     the torn tail can be re-decided from its admit record alone.
//
// WAL files are incarnation-numbered: `<path>.<n>` where n starts at 1 on a
// fresh boot and increments at every recovery rotation. The checkpoint
// names the incarnation it belongs to, which makes the rotation crash-safe:
// until the new checkpoint's atomic rename lands, the old checkpoint still
// points at the old (untouched) WAL file. See DESIGN.md §11 for the record
// grammar and the recovery contract.

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/trace"
)

// walFormat is the WAL header format tag.
const walFormat = "ecwal/v1"

// walHeader is the first line of every WAL incarnation.
type walHeader struct {
	Format      string  `json:"format"`
	ModelHash   string  `json:"modelHash"`
	Seed        uint64  `json:"seed"`
	Policy      string  `json:"policy"`
	Budget      float64 `json:"budget"` // -1 encodes an unconstrained run
	Incarnation uint64  `json:"incarnation"`
}

// WAL record kinds. One record per state transition; the comment names the
// engine path that emits it.
const (
	wkReject   = "reject"   // Submit/decode: pre-admission rejection
	wkAdmit    = "admit"    // decide: task built, durably admitted
	wkShed     = "shed"     // decide/re-decide: admission pipeline rejection
	wkTimeout  = "timeout"  // decide: request-timeout expiry
	wkMap      = "map"      // place: assignment issued (first or retry)
	wkStart    = "start"    // start: queue head began executing
	wkFinish   = "finish"   // complete: queue head retired
	wkRetry    = "retry"    // handleRequeue: requeue slot fired
	wkRequeue  = "requeue"  // recoverTask: stranded task scheduled for retry
	wkFail     = "fail"     // recoverTask: stranded task lost for good
	wkFault    = "fault"    // injectFault: failure struck
	wkKill     = "kill"     // downCore: queued task killed by the failure
	wkFsched   = "fsched"   // handleFault: fault process rescheduled
	wkRepair   = "repair"   // handleRepair: core back up
	wkBreaker  = "breaker"  // breaker automaton transition (full new state)
	wkBrownout = "brownout" // advance: brownout stage change
	wkEnergy   = "energy"   // advance: periodic energy debit record
	wkHalt     = "halt"     // halt: budget exhausted, cluster down
	wkFlush    = "flush"    // drain: grace expired, stragglers failed wholesale
	wkBudget   = "budget"   // AdjustBudget: sub-budget reset by the router's controller
)

// walRecord is one transition. Fields are shared across kinds (keyed by K);
// omitempty never changes a decoded value — absent always decodes to the
// zero that was encoded — so replay reads fields unconditionally.
type walRecord struct {
	K string `json:"k"`
	// T is the virtual time of the transition.
	T float64 `json:"t"`
	// MT/EN are the meter's absolute coordinates (time, consumed) after the
	// transition. Absolutes, never deltas: restoring from the last record is
	// exact and double-debit is impossible by construction.
	MT float64 `json:"mt"`
	EN float64 `json:"en"`

	// Task identity (admit, map, requeue).
	ID  int     `json:"id,omitempty"`
	Ty  int     `json:"ty,omitempty"`
	Arr float64 `json:"ar,omitempty"`
	DL  float64 `json:"dl,omitempty"`
	U   float64 `json:"u,omitempty"`
	Pri float64 `json:"pr,omitempty"`
	// ME is the request's per-task energy cap (admit only; nil = none).
	ME *float64 `json:"me,omitempty"`
	// TN/Cls are the task's tenant id and SLO class ordinal (admit, map,
	// shed, timeout, reject). Absent for untagged traffic; by the omitempty
	// rule above, a pre-tenancy WAL decodes both to their zero values, so
	// old incarnations replay unchanged.
	TN  string `json:"tn,omitempty"`
	Cls int    `json:"cls,omitempty"`

	// Placement (map, start, finish, kill, fault, repair).
	Core int     `json:"c,omitempty"`  // flat core index (-1 = none on fault)
	Node int     `json:"n,omitempty"`  // node index (breaker, fault)
	PS   int     `json:"ps,omitempty"` // P-state ordinal
	Act  float64 `json:"act,omitempty"`
	Att  int     `json:"att,omitempty"` // fault-retry attempts consumed
	New  bool    `json:"new,omitempty"` // map: first mapping (vs. retry placement)
	OK   bool    `json:"ok,omitempty"`  // finish: on time

	// Requeue scheduling (retry, requeue).
	Slot int     `json:"sl,omitempty"`
	FT   float64 `json:"ft,omitempty"` // absolute requeue fire time

	// Reasons (reject, shed, fail, flush).
	Rsn string `json:"rsn,omitempty"`

	// Fault process bookkeeping (fault, fsched).
	Src string  `json:"src,omitempty"` // "transient" | "permanent" | "script"
	SI  int     `json:"si,omitempty"`  // script entry index
	AP  bool    `json:"ap,omitempty"`  // fault actually applied (victim was up)
	RP  float64 `json:"rp,omitempty"`  // absolute repair event time (transient)
	NX  float64 `json:"nx,omitempty"`  // absolute next process firing (0 = none)

	// Breaker automaton state (breaker): the full new per-node state.
	BSt     int     `json:"bst,omitempty"`
	Strikes int     `json:"bsk,omitempty"`
	Until   float64 `json:"bu,omitempty"`
	Probing bool    `json:"bp,omitempty"`
	Dead    bool    `json:"bd,omitempty"`
	Opens   int     `json:"bo,omitempty"` // cumulative trip count after this transition

	// Brownout (brownout).
	Stage int  `json:"stg,omitempty"`
	Gate  bool `json:"gate,omitempty"` // ShedAdmission active

	// Budget adjustment (budget): the meter's new ζ budget after the
	// router's controller reclaimed or granted headroom.
	BG float64 `json:"bg,omitempty"`

	// Wholesale clears (flush): number of in-flight tasks failed.
	N int `json:"nn,omitempty"`

	// Post-draw RNG stream states (hex PCG state), present only when the
	// transition consumed draws from that stream. Replay installs these;
	// it never re-draws.
	QS  string `json:"qs,omitempty"`  // quantiles (admit)
	DS  string `json:"ds,omitempty"`  // decisions (map / shed-filtered / failed remap)
	TRS string `json:"trs,omitempty"` // transient fault process (fsched)
	PRS string `json:"prs,omitempty"` // permanent fault process (fsched)
	TGS string `json:"tgs,omitempty"` // fault target picker (fault)
}

// walLine is the on-disk envelope: exactly one of H or R per line.
type walLine struct {
	H *walHeader `json:"h,omitempty"`
	R *walRecord `json:"r,omitempty"`
}

// walPath names the incarnation-numbered WAL file.
func walPath(base string, incarnation uint64) string {
	return fmt.Sprintf("%s.%d", base, incarnation)
}

// wal is the append side. All appends are serialized by mu — the engine
// goroutine writes transition records, handler goroutines write reject
// records — and nothing is durable until commit's flush+fsync returns.
// A write or sync failure latches: the wal goes dead, the error surfaces
// once through commit, and the engine drops to WAL-less operation rather
// than acking requests it can no longer make durable claims about.
type wal struct {
	mu        sync.Mutex
	f         *os.File
	bw        *bufio.Writer
	hdr       walHeader
	n         uint64 // records appended (header excluded)
	rejects   uint64 // reject records appended (subset of n)
	tnRejects map[string]uint64 // reject records per tenant id (subset of rejects)
	dirty     bool
	err       error
}

// createWAL creates (truncating) the WAL file for one incarnation and makes
// the header durable before returning.
func createWAL(base string, hdr walHeader) (*wal, error) {
	f, err := os.OpenFile(walPath(base, hdr.Incarnation), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: create wal: %w", err)
	}
	w := &wal{f: f, bw: bufio.NewWriterSize(f, 64*1024), hdr: hdr}
	if err := w.encode(walLine{H: &hdr}); err != nil {
		f.Close()
		return nil, err
	}
	w.dirty = true
	if err := w.commit(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// encode appends one line to the buffer. Callers hold mu (or have exclusive
// access during construction).
func (w *wal) encode(ln walLine) error {
	b, err := json.Marshal(ln)
	if err != nil {
		return fmt.Errorf("server: wal encode: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.bw.Write(b); err != nil {
		return fmt.Errorf("server: wal write: %w", err)
	}
	return nil
}

// append stages one record. Errors latch; the caller sees them at commit.
func (w *wal) append(rec *walRecord) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if err := w.encode(walLine{R: rec}); err != nil {
		w.err = err
		return
	}
	w.n++
	if rec.K == wkReject {
		w.rejects++
		if rec.TN != "" {
			if w.tnRejects == nil {
				w.tnRejects = make(map[string]uint64)
			}
			w.tnRejects[rec.TN]++
		}
	}
	w.dirty = true
}

// commit makes every staged record durable: flush, then fsync. A clean
// no-op when nothing is staged. Returns (and clears nothing of) the latched
// error, so the engine can disable the wal on first failure.
func (w *wal) commit() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if !w.dirty {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		w.err = fmt.Errorf("server: wal flush: %w", err)
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("server: wal fsync: %w", err)
		return w.err
	}
	w.dirty = false
	return nil
}

// cut atomically reads (records, rejects, per-tenant rejects) for a
// checkpoint. Taking all of them under the append mutex is what makes
// checkpoint accounting exact: a concurrent reject record is either ≤ the
// cut (inside the checkpoint's counters) or > it (replayed from the suffix)
// — never both, never neither. The same holds per tenant, which is why the
// per-tenant reject base comes from this ledger and not from the live
// handler-side atomics.
func (w *wal) cut() (records, rejects uint64, tnRejects map[string]uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	tn := make(map[string]uint64, len(w.tnRejects))
	for id, n := range w.tnRejects {
		tn[id] = n
	}
	return w.n, w.rejects, tn
}

// close flushes, fsyncs, and closes the file.
func (w *wal) close() error {
	err := w.commit()
	w.mu.Lock()
	defer w.mu.Unlock()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// readWAL loads one incarnation's header and records, tolerating (and
// reporting) a torn final line.
func readWAL(base string, incarnation uint64) (hdr walHeader, recs []walRecord, torn bool, tornOff int64, err error) {
	path := walPath(base, incarnation)
	f, err := os.Open(path)
	if err != nil {
		return hdr, nil, false, 0, fmt.Errorf("server: open wal: %w", err)
	}
	defer f.Close()
	dec := trace.NewLineDecoder(f)
	first := true
	for {
		var ln walLine
		ok, derr := dec.Next(&ln)
		if derr != nil {
			return hdr, nil, false, 0, fmt.Errorf("server: wal %s: %w", path, derr)
		}
		if !ok {
			break
		}
		if first {
			if ln.H == nil {
				return hdr, nil, false, 0, fmt.Errorf("server: wal %s: first line is not a header", path)
			}
			if ln.H.Format != walFormat {
				return hdr, nil, false, 0, fmt.Errorf("server: wal %s: format %q, want %q", path, ln.H.Format, walFormat)
			}
			hdr = *ln.H
			first = false
			continue
		}
		if ln.H != nil {
			return hdr, nil, false, 0, fmt.Errorf("server: wal %s: duplicate header at line %d", path, dec.Lines())
		}
		if ln.R == nil {
			return hdr, nil, false, 0, fmt.Errorf("server: wal %s: line %d has neither header nor record", path, dec.Lines())
		}
		recs = append(recs, *ln.R)
	}
	if first {
		return hdr, nil, false, 0, fmt.Errorf("server: wal %s: empty file", path)
	}
	if dec.Torn() {
		_, off := dec.TornAt()
		return hdr, recs, true, off, nil
	}
	return hdr, recs, false, 0, nil
}

// hexState encodes a captured RNG stream state for a record.
func hexState(b []byte) string { return hex.EncodeToString(b) }

// unhexState decodes a recorded stream state.
func unhexState(s string) ([]byte, error) {
	b, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("server: wal stream state %q: %w", s, err)
	}
	return b, nil
}
