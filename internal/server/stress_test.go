package server

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
)

// TestBreakerHalfOpenToDeadUnderRequeueBurst drives a node's breaker
// through half-open and then kills the node permanently while the
// fault-driven requeue burst from the earlier strikes is still in flight:
// the retries must re-map away from the dead node (or fail visibly), the
// breaker must land on dead, and nothing may be orphaned. Run under -race:
// the requeue handlers, breaker publishes, and WAL appends all interleave
// on this path.
func TestBreakerHalfOpenToDeadUnderRequeueBurst(t *testing.T) {
	m := buildModel(t, 40)
	tAvg := m.TAvg()
	dir := t.TempDir()
	eng, clk := newTestEngine(t, m, func(c *Config) {
		c.Faults = fault.Spec{
			RepairTime: tAvg,
			Script: []fault.Scripted{
				// Two strikes on node 0's cores open its breaker...
				{Time: tAvg / 100, Kind: fault.Transient, Core: 0},
				{Time: tAvg / 95, Kind: fault.Transient, Core: 1},
				// ...the short cooldown flips it half-open, and the node dies
				// while the strikes' requeue backoffs are still pending.
				{Time: tAvg / 30, Kind: fault.Permanent, Node: 0},
			},
			Recovery: fault.Recovery{Mode: fault.Requeue, MaxRetries: 3, Backoff: tAvg / 20},
		}
		c.Breaker = BreakerConfig{Threshold: 2, Cooldown: tAvg / 90}
		c.WALPath = filepath.Join(dir, "wal")
		c.CheckpointPath = filepath.Join(dir, "ckpt")
	})

	// Load every core so both strikes and the node death strand real work.
	n := len(eng.cores) + 12
	for i := 0; i < n; i++ {
		if d := submitType(t, eng, i%m.Params.TaskTypes); d.Status != StatusMapped {
			t.Fatalf("task %d not mapped: %v/%q", i, d.Status, d.Reason)
		}
	}
	clk.Advance(1000 * tAvg)
	eng.Sync()

	st := eng.Stats()
	if st.Faults != 3 {
		t.Fatalf("faults = %d, want 3", st.Faults)
	}
	if st.Retries == 0 {
		t.Fatal("requeue burst never fired")
	}
	if len(st.Breakers) == 0 || st.Breakers[0] != "dead" {
		t.Fatalf("breakers = %v, want node 0 dead", st.Breakers)
	}
	if st.InFlight != 0 || st.Mapped != st.OnTime+st.Late+st.Failed {
		t.Fatalf("requeue-vs-death race lost work: %+v", st)
	}
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rep := eng.FinalReport(); rep.Orphaned != 0 || !rep.Balanced {
		t.Fatalf("final report: orphaned %d balanced %v", rep.Orphaned, rep.Balanced)
	}
}

// TestDrainWithAdmissionQueueFull floods a tiny admission queue from many
// goroutines and starts the drain mid-flood: every submission must get an
// answer (decision, queue-full, or draining — never a hang), the WAL's
// reject path and group commit race the drain, and the terminal accounting
// must balance. Run under -race.
func TestDrainWithAdmissionQueueFull(t *testing.T) {
	m := buildModel(t, 41)
	dir := t.TempDir()
	eng, _ := newTestEngine(t, m, func(c *Config) {
		c.QueueCap = 2
		c.WALPath = filepath.Join(dir, "wal")
		c.CheckpointPath = filepath.Join(dir, "ckpt")
	})

	const flood = 64
	var (
		wg        sync.WaitGroup
		decided   atomic.Int64
		rejected  atomic.Int64
		timedOut  atomic.Int64
		unexpects atomic.Int64
	)
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := eng.Submit(TaskRequest{Type: i % m.Params.TaskTypes})
			switch {
			case err == nil && d.Status == StatusTimedOut:
				timedOut.Add(1)
			case err == nil:
				decided.Add(1)
			default:
				var rej *ErrRejected
				if errors.As(err, &rej) {
					rejected.Add(1)
				} else {
					unexpects.Add(1)
				}
			}
		}(i)
	}
	// Let the flood hit the queue, then drain into it.
	time.Sleep(5 * time.Millisecond)
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	if unexpects.Load() != 0 {
		t.Fatalf("%d submissions got non-rejection errors", unexpects.Load())
	}
	if got := decided.Load() + rejected.Load() + timedOut.Load(); got != flood {
		t.Fatalf("answered %d of %d submissions", got, flood)
	}
	if rejected.Load() == 0 {
		t.Fatal("flood at queue cap 2 produced no backpressure — test not exercising the race")
	}
	rep := eng.FinalReport()
	if rep.Orphaned != 0 || !rep.Balanced {
		t.Fatalf("drain under flood broke accounting: orphaned %d balanced %v %+v", rep.Orphaned, rep.Balanced, rep.Stats)
	}
}
