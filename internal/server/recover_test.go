package server

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/workload"
)

// idleRate probes the cluster's idle power draw so tests can pick budgets
// relative to it without hard-coding watts.
func idleRate(t testing.TB, m *workload.Model) float64 {
	t.Helper()
	probe, err := energy.NewMeter(m.Cluster, cluster.P4, math.Inf(1), false)
	if err != nil {
		t.Fatal(err)
	}
	return probe.Rate()
}

// durableCfg is the shared configuration of the durability tests: scripted
// faults (two transients striking one breaker, then a permanent node death),
// requeue recovery, a finite budget, and the WAL + checkpoint in dir.
func durableCfg(t testing.TB, m *workload.Model, dir string, clk *ManualClock) Config {
	t.Helper()
	tAvg := m.TAvg()
	return Config{
		Model:  m,
		Mapper: testMapper(0),
		Clock:  clk,
		Seed:   42,
		Budget: idleRate(t, m) * 500 * tAvg,
		Faults: fault.Spec{
			RepairTime: tAvg / 2,
			Script: []fault.Scripted{
				{Time: tAvg / 3, Kind: fault.Transient, Core: 0},
				{Time: tAvg / 2.5, Kind: fault.Transient, Core: 1},
				{Time: 2.2 * tAvg, Kind: fault.Permanent, Node: 1},
			},
			Recovery: fault.Recovery{Mode: fault.Requeue, MaxRetries: 2, Backoff: tAvg / 10},
		},
		Breaker:        BreakerConfig{Threshold: 2, Cooldown: tAvg / 2},
		WALPath:        filepath.Join(dir, "wal"),
		CheckpointPath: filepath.Join(dir, "ckpt"),
	}
}

// driveScenario runs the deterministic history both the reference and the
// crash runs share: admissions interleaved with virtual time, an infeasible
// shed, the scripted faults, a mid-stream checkpoint, then a late burst.
func driveScenario(t testing.TB, eng *Engine, clk *ManualClock, m *workload.Model) {
	t.Helper()
	tAvg := m.TAvg()
	for i := 0; i < 12; i++ {
		if _, err := eng.Submit(TaskRequest{Type: i % m.Params.TaskTypes}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if i%3 == 2 {
			clk.Advance(tAvg / 4)
			eng.Sync()
		}
	}
	zero := 0.0
	if _, err := eng.Submit(TaskRequest{Type: 0, Slack: &zero}); err != nil {
		t.Fatalf("infeasible submit: %v", err)
	}
	clk.Advance(tAvg)
	eng.Sync()
	if err := eng.CheckpointNow(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Preserve the mid-stream checkpoint: the final CheckpointNow below
	// overwrites the live file, and the bit-identity test wants to replay
	// from this one plus the record suffix.
	mid, err := os.ReadFile(eng.cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(eng.cfg.CheckpointPath+".mid", mid, 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := eng.Submit(TaskRequest{Type: (i + 5) % m.Params.TaskTypes}); err != nil {
			t.Fatalf("late submit %d: %v", i, err)
		}
	}
	clk.Advance(3 * tAvg)
	eng.Sync()
	// Pin the final meter coordinates into the stream (quiet-stretch meter
	// advance is otherwise lost to the budget/1024 energy granularity).
	if err := eng.CheckpointNow(); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
}

// walLines splits a WAL file into its header line and record lines.
func walLines(t *testing.T, path string) (header []byte, records [][]byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		t.Fatalf("%s: empty WAL", path)
	}
	return lines[0], lines[1:]
}

// writeTruncatedWAL writes header + the first k records of src as dst.
func writeTruncatedWAL(t *testing.T, header []byte, records [][]byte, k int, dst string) {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(header)
	for _, r := range records[:k] {
		buf.Write(r)
	}
	if err := os.WriteFile(dst, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// recoverEngine prepares an engine over dir's WAL + checkpoint and replays.
func recoverEngine(t *testing.T, m *workload.Model, dir string) (*Engine, *RecoveryReport) {
	t.Helper()
	cfg := durableCfg(t, m, dir, NewManualClock())
	eng, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.RecoverFrom()
	if err != nil {
		t.Fatalf("recover from %s: %v", dir, err)
	}
	return eng, rep
}

// recoverAndDrain recovers from dir and drains deterministically, returning
// the normalized final report (wall uptime zeroed).
func recoverAndDrain(t *testing.T, m *workload.Model, dir string) *FinalReport {
	t.Helper()
	eng, _ := recoverEngine(t, m, dir)
	_ = eng.DrainNow() // grace expiry is reported in the final accounting
	rep := eng.FinalReport()
	rep.UptimeSeconds = 0
	return rep
}

// TestRecoveryBitIdentity is the recovery contract's property test. One
// deterministic scenario runs twice: a reference run that drains normally,
// and a crash run that stops abruptly, leaving its WAL and mid-stream
// checkpoint behind. Then, for cuts across the whole record stream:
//
//   - recovering from the WAL prefix and recovering again from the state
//     the first recovery persisted (checkpoint round-trip) must produce
//     bit-identical final reports;
//   - for cuts at or past the checkpoint, genesis replay (WAL alone) and
//     checkpoint + suffix replay must agree bit-identically;
//   - at the full-stream cut, the recovered report must equal the
//     uninterrupted reference run's report.
func TestRecoveryBitIdentity(t *testing.T) {
	m := buildModel(t, 30)

	// Reference: identical history, graceful drain, no crash.
	refDir := t.TempDir()
	refClk := NewManualClock()
	refEng, err := New(durableCfg(t, m, refDir, refClk))
	if err != nil {
		t.Fatal(err)
	}
	driveScenario(t, refEng, refClk, m)
	refEng.Close() // abrupt: the crash whose artifacts everything below replays

	// The uninterrupted reference: same history, drained in place.
	ref2Dir := t.TempDir()
	ref2Clk := NewManualClock()
	ref2Eng, err := New(durableCfg(t, m, ref2Dir, ref2Clk))
	if err != nil {
		t.Fatal(err)
	}
	driveScenario(t, ref2Eng, ref2Clk, m)
	if err := ref2Eng.Drain(t.Context()); err != nil {
		t.Fatalf("reference drain: %v", err)
	}
	refRep := ref2Eng.FinalReport()
	refRep.UptimeSeconds = 0

	// Sanity: the scenario must actually exercise the record kinds the
	// replayer handles, or the property below proves nothing.
	if st := refRep.Stats; st.Faults != 3 || st.Retries == 0 || st.Shed == 0 {
		t.Fatalf("scenario too tame to test recovery: %+v", st)
	}

	header, records := walLines(t, filepath.Join(refDir, "wal.1"))
	n := len(records)
	ck, err := loadCheckpoint(filepath.Join(refDir, "ckpt.mid"))
	if err != nil || ck == nil {
		t.Fatalf("mid-stream checkpoint missing: %v", err)
	}
	c := int(ck.WALRecords)
	if n < 40 || c <= 0 || c >= n {
		t.Fatalf("degenerate stream: %d records, checkpoint cut %d", n, c)
	}

	cuts := map[int]bool{0: true, 1: true, c - 1: true, c: true, c + 1: true, (c + n) / 2: true, n - 1: true, n: true}
	for k := 7; k < n; k += n / 6 {
		cuts[k] = true
	}
	for k := range cuts {
		if k < 0 || k > n {
			continue
		}
		t.Run(fmt.Sprintf("cut=%d", k), func(t *testing.T) {
			// Genesis replay of the prefix alone.
			dirA := t.TempDir()
			writeTruncatedWAL(t, header, records, k, filepath.Join(dirA, "wal.1"))
			finA := recoverAndDrain(t, m, dirA)

			// Checkpoint round-trip: recover, crash immediately (the first
			// recovery persisted a rotated WAL + fresh checkpoint), recover
			// again from what it left behind, then drain.
			dirB := t.TempDir()
			writeTruncatedWAL(t, header, records, k, filepath.Join(dirB, "wal.1"))
			eng1, rep1 := recoverEngine(t, m, dirB)
			_ = eng1.wal.close() // crash: no drain, file released
			eng2, rep2 := recoverEngine(t, m, dirB)
			if rep2.Incarnation != rep1.Incarnation+1 {
				t.Fatalf("incarnation %d after %d", rep2.Incarnation, rep1.Incarnation)
			}
			_ = eng2.DrainNow()
			finB := eng2.FinalReport()
			finB.UptimeSeconds = 0
			if !reflect.DeepEqual(finA, finB) {
				t.Errorf("checkpoint round-trip diverged at cut %d:\n direct: %+v\n roundtrip: %+v", k, finA.Stats, finB.Stats)
			}

			// Checkpoint + suffix must equal genesis replay.
			if k >= c {
				dirC := t.TempDir()
				writeTruncatedWAL(t, header, records, k, filepath.Join(dirC, "wal.1"))
				cp, err := os.ReadFile(filepath.Join(refDir, "ckpt.mid"))
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dirC, "ckpt"), cp, 0o644); err != nil {
					t.Fatal(err)
				}
				finC := recoverAndDrain(t, m, dirC)
				if !reflect.DeepEqual(finA, finC) {
					t.Errorf("checkpoint+suffix diverged from genesis at cut %d:\n genesis: %+v\n ckpt: %+v", k, finA.Stats, finC.Stats)
				}
			}

			// The full stream must reproduce the uninterrupted run.
			if k == n && !reflect.DeepEqual(finA, refRep) {
				t.Errorf("full-stream recovery diverged from the uninterrupted run:\n recovered: %+v\n reference: %+v", finA.Stats, refRep.Stats)
			}
		})
	}
}

// TestRecoverReDecidesOpenAdmit cuts the stream right after an admit record:
// the recovered engine must re-make the lost decision (the client was acked,
// the admission is durable) and account for the task.
func TestRecoverReDecidesOpenAdmit(t *testing.T) {
	m := buildModel(t, 31)
	dir := t.TempDir()
	clk := NewManualClock()
	eng, err := New(durableCfg(t, m, dir, clk))
	if err != nil {
		t.Fatal(err)
	}
	driveScenario(t, eng, clk, m)
	eng.Close()

	header, records := walLines(t, filepath.Join(dir, "wal.1"))
	admitAt := -1
	for i, line := range records {
		if bytes.Contains(line, []byte(`"k":"admit"`)) {
			admitAt = i
		}
	}
	if admitAt < 0 {
		t.Fatal("no admit record in the stream")
	}
	cutDir := t.TempDir()
	writeTruncatedWAL(t, header, records, admitAt+1, filepath.Join(cutDir, "wal.1"))
	reng, rep := recoverEngine(t, m, cutDir)
	if rep.ReDecided != 1 {
		t.Fatalf("re-decided %d admits, want 1", rep.ReDecided)
	}
	_ = reng.DrainNow()
	fin := reng.FinalReport()
	if fin.Orphaned != 0 || !fin.Balanced {
		t.Fatalf("re-decide left the accounting broken: orphaned %d balanced %v %+v", fin.Orphaned, fin.Balanced, fin.Stats)
	}
}

// TestRecoverFailsExpiredDeadline hand-crafts a WAL whose open admit's
// deadline has already passed by the recovered virtual time: the task must
// be shed (visible, accounted) — never orphaned.
func TestRecoverFailsExpiredDeadline(t *testing.T) {
	m := buildModel(t, 32)
	dir := t.TempDir()
	cfg := durableCfg(t, m, dir, NewManualClock())
	donor, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rate := idleRate(t, m)
	donor.incarnation = 1 // Start would do this; the donor never starts
	w, err := createWAL(cfg.WALPath, donor.walHeader())
	if err != nil {
		t.Fatal(err)
	}
	w.append(&walRecord{
		K: wkAdmit, T: 5, MT: 5, EN: 5 * rate,
		ID: 0, Ty: 0, Arr: 5, DL: 6, U: 0.5, Pri: 1,
		QS: hexState(donor.quantRn.State()),
	})
	// Virtual time moves far past the deadline before the crash.
	w.append(&walRecord{K: wkEnergy, T: 500, MT: 500, EN: 500 * rate})
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	eng, rep := recoverEngine(t, m, dir)
	if rep.ReDecided != 1 {
		t.Fatalf("re-decided %d, want 1", rep.ReDecided)
	}
	_ = eng.DrainNow()
	fin := eng.FinalReport()
	if fin.Stats.Shed != 1 || fin.Stats.ShedInfeasible != 1 {
		t.Fatalf("expired admit not shed as infeasible: %+v", fin.Stats)
	}
	if fin.Orphaned != 0 || !fin.Balanced {
		t.Fatalf("expired admit orphaned: %+v", fin.Stats)
	}
}

// TestRecoverTornTail appends garbage after the last full record: recovery
// must drop the torn line, report its byte offset, and still replay the
// intact prefix.
func TestRecoverTornTail(t *testing.T) {
	m := buildModel(t, 33)
	dir := t.TempDir()
	clk := NewManualClock()
	eng, err := New(durableCfg(t, m, dir, clk))
	if err != nil {
		t.Fatal(err)
	}
	driveScenario(t, eng, clk, m)
	eng.Close()

	path := filepath.Join(dir, "wal.1")
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, intact...), []byte(`{"k":"map","t":12.5,"id"`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, "ckpt")) // force full genesis replay

	reng, rep := recoverEngine(t, m, dir)
	if !rep.TornTail {
		t.Fatal("torn tail not detected")
	}
	if rep.TornOffset != int64(len(intact)) {
		t.Fatalf("torn offset %d, want %d", rep.TornOffset, len(intact))
	}
	_ = reng.DrainNow()
	if fin := reng.FinalReport(); fin.Orphaned != 0 || !fin.Balanced {
		t.Fatalf("torn-tail recovery broke accounting: %+v", fin.Stats)
	}
}

// TestRecoverIdentityMismatch refuses logs recorded by a differently
// configured service.
func TestRecoverIdentityMismatch(t *testing.T) {
	m := buildModel(t, 34)
	dir := t.TempDir()
	clk := NewManualClock()
	eng, err := New(durableCfg(t, m, dir, clk))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(TaskRequest{Type: 0}); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	os.Remove(filepath.Join(dir, "ckpt"))

	cfg := durableCfg(t, m, dir, NewManualClock())
	cfg.Seed = 43 // wrong universe
	reng, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reng.RecoverFrom(); err == nil {
		t.Fatal("recovery accepted a WAL from a different seed")
	}
}
