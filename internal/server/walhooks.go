package server

// WAL emission hooks: every helper here runs on the engine goroutine (and
// therefore may read the meter and RNG streams) except walReject, which
// handler goroutines call and which touches only atomic mirrors. Each hook
// is a no-op when durability is off, so the WAL-less hot path pays one
// predictable branch per transition.

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// walOn reports whether the engine should emit WAL records. Engine
// goroutine only: walDead is unsynchronized.
func (e *Engine) walOn() bool { return e.wal != nil && !e.walDead }

// walAppend stamps the record with the meter's absolute coordinates and
// stages it. Engine goroutine only.
func (e *Engine) walAppend(rec *walRecord) {
	if !e.walOn() {
		return
	}
	rec.MT = e.meter.Now()
	rec.EN = e.meter.Consumed()
	e.wal.append(rec)
	e.met.walRecords.Inc()
}

// walReject logs one pre-admission rejection. Handler goroutines call this,
// so the record carries no meter coordinates (the meter is confined to the
// engine goroutine; replay tracks the meter through engine records only)
// and the virtual time comes from the atomic mirror. The record rides the
// next group commit — the 429/503 response does not wait for the fsync:
// rejects only move counters, so a bounded tail loss is acceptable where an
// fsync stall on the overload path is not.
func (e *Engine) walReject(reason, tenant string) {
	if e.recovering.Load() || e.wal == nil {
		return
	}
	e.wal.append(&walRecord{
		K:   wkReject,
		T:   math.Float64frombits(e.virtualAt.Load()),
		Rsn: reason,
		TN:  tenant,
	})
	e.met.walRecords.Inc()
}

// walAdmit logs one durably-admitted task: full identity, the request's
// energy cap, and the post-draw quantile stream state. Recovery can
// re-decide the task from this record alone.
func (e *Engine) walAdmit(now float64, task workload.Task, maxEnergy *float64) {
	if !e.walOn() {
		return
	}
	e.walAppend(&walRecord{
		K: wkAdmit, T: now,
		ID: task.ID, Ty: task.Type, Arr: task.Arrival, DL: task.Deadline,
		U: task.U, Pri: task.Priority, ME: maxEnergy,
		TN: task.Tenant, Cls: int(task.Class),
		QS: hexState(e.quantRn.State()),
	})
}

// walShed logs one admission-pipeline rejection. The decision stream state
// is captured because a filtered shed may have consumed heuristic draws.
func (e *Engine) walShed(now float64, id int, reason, tenant string) {
	if !e.walOn() {
		return
	}
	e.walAppend(&walRecord{
		K: wkShed, T: now, ID: id, Rsn: reason, TN: tenant,
		DS: hexState(e.rand.State()),
	})
}

// walMap logs one assignment (first mapping or retry placement) with full
// task identity — map records must be self-contained so a replay that lost
// the admit record to a checkpoint cut can still reconstruct the queue
// entry — plus the post-draw decision stream state.
func (e *Engine) walMap(now float64, task workload.Task, coreIdx int, ps cluster.PState, actual float64, attempts int) {
	if !e.walOn() {
		return
	}
	e.walAppend(&walRecord{
		K: wkMap, T: now,
		ID: task.ID, Ty: task.Type, Arr: task.Arrival, DL: task.Deadline,
		U: task.U, Pri: task.Priority,
		TN: task.Tenant, Cls: int(task.Class),
		Core: coreIdx, PS: int(ps), Act: actual, Att: attempts,
		New: attempts == 0,
		DS:  hexState(e.rand.State()),
	})
}

// brkSnapshot is one node's breaker automaton state, value-copied for
// diffing (nodeBreaker itself embeds an atomic and cannot be copied).
type brkSnapshot struct {
	state     breakerState
	strikes   int
	openUntil float64
	probing   bool
	dead      bool
}

// brkSnap captures every node's breaker state into a reused scratch slice.
// Returns nil when there is nothing to diff against (no breakers, or no
// armed WAL).
func (e *Engine) brkSnap() []brkSnapshot {
	if e.brk == nil || !e.walOn() {
		return nil
	}
	if cap(e.brkScratch) < len(e.brk.nodes) {
		e.brkScratch = make([]brkSnapshot, len(e.brk.nodes))
	}
	snap := e.brkScratch[:len(e.brk.nodes)]
	for n := range e.brk.nodes {
		nb := &e.brk.nodes[n]
		snap[n] = brkSnapshot{nb.state, nb.strikes, nb.openUntil, nb.probing, nb.dead}
	}
	return snap
}

// walBreakerDiff emits one record per node whose breaker automaton changed
// since snap, carrying the full new state (not the transition), so replay
// installs rather than re-derives. A nil snap (WAL off, no breakers) is a
// no-op.
func (e *Engine) walBreakerDiff(now float64, snap []brkSnapshot) {
	if snap == nil || !e.walOn() {
		return
	}
	for n := range e.brk.nodes {
		nb := &e.brk.nodes[n]
		if snap[n] == (brkSnapshot{nb.state, nb.strikes, nb.openUntil, nb.probing, nb.dead}) {
			continue
		}
		e.walAppend(&walRecord{
			K: wkBreaker, T: now, Node: n,
			BSt: int(nb.state), Strikes: nb.strikes, Until: nb.openUntil,
			Probing: nb.probing, Dead: nb.dead, Opens: e.brk.opens,
		})
	}
}
