package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
)

// Server exposes an Engine over HTTP/JSON:
//
//	POST /v1/tasks    submit one task; the response is the mapping decision
//	GET  /v1/healthz  liveness (200 while the process runs, even draining)
//	GET  /v1/readyz   readiness (200 only while admitting new work)
//	GET  /v1/stats    the accounting snapshot
//	GET  /v1/model    the workload model's serving parameters (for clients
//	                  and load generators)
//
// Admission outcomes map onto status codes: 200 mapped, 400 malformed
// request, 422 shed (infeasible deadline or filtered to empty — the
// paper's discard), 429 backpressure (queue full or brownout gate, with
// Retry-After), 503 not accepting (draining or energy exhausted), 504
// timed out waiting in the admission queue.
type Server struct {
	// eng is the single engine, or — in router mode — shard 0's engine,
	// which anchors the shared pieces (task-type count for decode, the
	// metrics registry, bad-request accounting).
	eng *Engine
	// rt is non-nil in sharded mode; Submit and the introspection endpoints
	// then go through the router.
	rt  *Router
	mux *http.ServeMux
}

// NewServer wraps the engine with the HTTP API.
func NewServer(eng *Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.routes()
	return s
}

// NewRouterServer wraps a sharded router with the HTTP API. When
// enableChaos is set, POST /v1/chaos/kill?shard=N is additionally exposed —
// the kill switch the chaos harness uses to fail-stop one shard mid-burst.
func NewRouterServer(rt *Router, enableChaos bool) *Server {
	s := &Server{eng: rt.shards[0].eng, rt: rt, mux: http.NewServeMux()}
	s.routes()
	if enableChaos {
		s.mux.HandleFunc("POST /v1/chaos/kill", s.handleChaosKill)
	}
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/tasks", s.handleTask)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/model", s.handleModel)
}

// submit routes one decoded request to the engine or the router tier.
func (s *Server) submit(req TaskRequest) (Decision, error) {
	if s.rt != nil {
		return s.rt.Submit(req)
	}
	return s.eng.Submit(req)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Engine returns the wrapped engine.
func (s *Server) Engine() *Engine { return s.eng }

// errorBody is the JSON error envelope.
type errorBody struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeTask(r.Body, s.eng.model.Params.TaskTypes)
	if err != nil {
		s.eng.recordBadRequest()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Reason: "bad-request"})
		return
	}
	d, err := s.submit(req)
	if err != nil {
		var rej *ErrRejected
		if errors.As(err, &rej) {
			code := http.StatusServiceUnavailable
			switch rej.Reason {
			case RejectQueueFull, ShedBrownout,
				RejectTenantQuarantined, RejectTenantRateLimit, RejectTenantQueueShare:
				code = http.StatusTooManyRequests
			}
			if rej.RetryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(rej.RetryAfter.Seconds()))))
			}
			writeJSON(w, code, errorBody{Error: err.Error(), Reason: rej.Reason})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	switch d.Status {
	case StatusMapped:
		writeJSON(w, http.StatusOK, d)
	case StatusTimedOut:
		writeJSON(w, http.StatusGatewayTimeout, d)
	default:
		writeJSON(w, http.StatusUnprocessableEntity, d)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.rt != nil {
		st := s.rt.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":     "ok",
			"draining":   st.Draining,
			"halted":     st.Halted,
			"recovering": s.rt.Recovering(),
			"shards":     len(s.rt.shards),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"draining":   s.eng.draining.Load(),
		"halted":     s.eng.halted.Load(),
		"recovering": s.eng.Recovering(),
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.rt != nil {
		// Sharded readiness: the per-shard health rows
		// (healthy/suspect/dead/recovering) plus the router-level bit —
		// 200 only while at least one shard admits work.
		doc := map[string]any{"ready": s.rt.Admitting(), "shards": s.rt.ShardStatuses()}
		code := http.StatusOK
		if !s.rt.Admitting() {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, doc)
		return
	}
	if !s.eng.Accepting() {
		reason := RejectDraining
		switch {
		case s.eng.Recovering():
			reason = RejectRecovering
		case s.eng.halted.Load():
			reason = ShedHalted
		case s.eng.shedGate.Load():
			reason = ShedBrownout
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// handleChaosKill fail-stops one shard (router mode with -chaos only):
// POST /v1/chaos/kill?shard=N. The response carries the post-kill shard
// table so the chaos harness can assert the verdict landed.
func (s *Server) handleChaosKill(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "chaos: shard must be an integer", Reason: "bad-request"})
		return
	}
	if err := s.rt.KillShard(id); err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error(), Reason: "no-shard"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"killed": id, "shards": s.rt.ShardStatuses()})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.statsDoc())
}

// statsDoc augments the engine snapshot with queue occupancy and the
// per-tenant accounting (absent for single-tenant traffic). In router mode
// the stats aggregate across shards and the per-shard rows ride along.
func (s *Server) statsDoc() map[string]any {
	if s.rt != nil {
		depth, capSum := 0, 0
		for _, sh := range s.rt.shards {
			depth += sh.eng.QueueDepth()
			capSum += sh.eng.QueueCap()
		}
		doc := map[string]any{
			"stats":      s.rt.Stats(),
			"queueDepth": depth,
			"queueCap":   capSum,
			"policy":     s.eng.cfg.Mapper.Name(),
			"placement":  s.rt.Placement(),
			"shards":     s.rt.ShardStatuses(),
		}
		if tr := s.rt.mergedTenants(); len(tr) > 0 {
			doc["tenants"] = tr
		}
		return doc
	}
	doc := map[string]any{
		"stats":      s.eng.Stats(),
		"queueDepth": s.eng.QueueDepth(),
		"queueCap":   s.eng.QueueCap(),
		"policy":     s.eng.cfg.Mapper.Name(),
	}
	if tr := s.eng.TenantReports(); len(tr) > 0 {
		doc["tenants"] = tr
	}
	return doc
}

// ModelInfo is the GET /v1/model document: everything a client or load
// generator needs to drive the server at a meaningful rate.
type ModelInfo struct {
	TaskTypes       int     `json:"taskTypes"`
	Nodes           int     `json:"nodes"`
	Cores           int     `json:"cores"`
	TAvg            float64 `json:"tAvg"`
	EquilibriumRate float64 `json:"equilibriumRate"`
	TimeScale       float64 `json:"timeScale"`
	EnergyBudget    float64 `json:"energyBudget,omitempty"`
	// EnergyWindow is the virtual time the idle draw alone takes to exhaust
	// the budget — the service's maximum lifetime (absent when unconstrained).
	EnergyWindow float64 `json:"energyWindow,omitempty"`
	VirtualNow   float64 `json:"virtualNow"`
	Policy       string  `json:"policy"`
	Seed         uint64  `json:"seed"`
}

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	// Router mode serves the full (unsliced) cluster document and the global
	// ζ_max — load generators size against the whole service, not one shard.
	m, seed := s.eng.model, s.eng.cfg.Seed
	budget, window, vnow := s.eng.Budget(), s.eng.IdleEnergyWindow(), s.eng.VirtualNow()
	if s.rt != nil {
		m, seed = s.rt.baseModel, s.rt.baseSeed
		budget, window, vnow = s.rt.total, s.rt.idleWindow, s.rt.Stats().VirtualNow
	}
	info := ModelInfo{
		TaskTypes:       m.Params.TaskTypes,
		Nodes:           m.Cluster.N(),
		Cores:           m.Cluster.TotalCores(),
		TAvg:            m.TAvg(),
		EquilibriumRate: m.EquilibriumRate(),
		TimeScale:       s.eng.cfg.TimeScale,
		VirtualNow:      vnow,
		Policy:          s.eng.cfg.Mapper.Name(),
		Seed:            seed,
	}
	if !math.IsInf(budget, 1) {
		info.EnergyBudget = budget
		info.EnergyWindow = window
	}
	writeJSON(w, http.StatusOK, info)
}

// recordBadRequest counts a request rejected at decode time.
func (e *Engine) recordBadRequest() {
	e.st.received.Add(1)
	e.st.rejected.Add(1)
	e.met.requests.Inc()
	e.met.rejectedBadReq.Inc()
	e.walReject("bad-request", "")
}

// FinalReport is the document ecserve flushes after a graceful drain: the
// terminal accounting, the orphan check, and the full metrics snapshot.
type FinalReport struct {
	Policy string `json:"policy"`
	Seed   uint64 `json:"seed"`
	// UptimeSeconds is wall-clock time from engine start to report.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Stats         Stats   `json:"stats"`
	// Orphaned counts admitted tasks that never reached a terminal state;
	// a clean drain reports 0.
	Orphaned int64 `json:"orphaned"`
	Balanced bool  `json:"balanced"`
	// Tenants is the per-tenant accounting, sorted by id (absent for
	// single-tenant traffic).
	Tenants []TenantReport `json:"tenants,omitempty"`
	// Shards is the per-shard readiness/topology snapshot (sharded runs
	// only; the router's FinalReport fills it).
	Shards  []ShardStatus     `json:"shards,omitempty"`
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// FinalReport assembles the post-drain document. Call it after Drain (or
// Close) has returned; the engine must be stopped.
func (e *Engine) FinalReport() *FinalReport {
	st := e.Stats()
	orphaned := (st.Admitted - st.Mapped - st.Shed - st.TimedOut) +
		(st.Mapped - st.OnTime - st.Late - st.Failed)
	r := &FinalReport{
		Policy:        e.cfg.Mapper.Name(),
		Seed:          e.cfg.Seed,
		UptimeSeconds: time.Since(e.started).Seconds(),
		Stats:         st,
		Orphaned:      orphaned,
		Balanced:      st.Balanced() && st.InFlight == 0,
		Tenants:       e.TenantReports(),
	}
	if e.cfg.Metrics != nil {
		r.Metrics = e.cfg.Metrics.Snapshot()
	}
	return r
}

// Render returns the human-readable drain summary ecserve prints.
func (r *FinalReport) Render() string {
	st := r.Stats
	s := fmt.Sprintf(
		"drain report (%s, seed %d, up %.1fs)\n"+
			"  received %d  rejected %d  admitted %d\n"+
			"  mapped %d  shed %d (filtered %d, infeasible %d, brownout %d, halted %d)  timed-out %d\n"+
			"  completed on-time %d, late %d  failed %d  retries %d  faults %d  breaker-opens %d\n"+
			"  energy %.4g",
		r.Policy, r.Seed, r.UptimeSeconds,
		st.Received, st.Rejected, st.Admitted,
		st.Mapped, st.Shed, st.ShedFiltered, st.ShedInfeasible, st.ShedBrownout, st.ShedHalted, st.TimedOut,
		st.OnTime, st.Late, st.Failed, st.Retries, st.Faults, st.BreakerOpens,
		st.EnergyConsumed)
	if st.EnergyBudget > 0 {
		s += fmt.Sprintf(" / budget %.4g (%.1f%%)", st.EnergyBudget, 100*st.EnergyConsumed/st.EnergyBudget)
	}
	s += fmt.Sprintf("\n  orphaned %d  balanced %v\n", r.Orphaned, r.Balanced)
	// One stable key=value line per tenant: the adversarial soak harness
	// greps these to prove gold SLOs survived a bronze attack.
	for _, t := range r.Tenants {
		s += fmt.Sprintf("  tenant %s: class=%s admitted=%d rejected=%d mapped=%d shed=%d infeasible=%d timedout=%d ontime=%d late=%d failed=%d quarantines=%d\n",
			t.ID, t.Class, t.Admitted, t.Rejected, t.Mapped, t.Shed, t.ShedInfeasible,
			t.TimedOut, t.OnTime, t.Late, t.Failed, t.Quarantines)
	}
	return s
}

// JSON serializes the report as indented JSON.
func (r *FinalReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ListenAndServe binds addr and serves the API until the returned shutdown
// function is called. Shutdown stops the listener and waits for in-flight
// handlers — run the engine drain concurrently so blocked Submit calls get
// their answers and the handlers can finish.
func (s *Server) ListenAndServe(addr string) (net.Addr, func(context.Context) error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), srv.Shutdown, nil
}
