package server

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// Tenant rejection reasons (pre-admission, all answered 429 + Retry-After).
const (
	// RejectTenantQuarantined: the abuse detector has the tenant in
	// quarantine (or half-open with the probe slot taken).
	RejectTenantQuarantined = "tenant-quarantined"
	// RejectTenantRateLimit: the tenant's token bucket is empty.
	RejectTenantRateLimit = "tenant-rate-limit"
	// RejectTenantQueueShare: the tenant's backlog already occupies its full
	// share of the bounded admission queue.
	RejectTenantQueueShare = "tenant-queue-share"
)

// TenantQuota is one tenant's server-side quota row.
type TenantQuota struct {
	// ID is the tenant's wire identity.
	ID string
	// Class is the tenant's SLO class (deadline tightness + shed weight).
	Class workload.SLOClass
	// Rate is the token-bucket refill in tokens per virtual time unit;
	// 0 disables the bucket for this tenant.
	Rate float64
	// Burst is the bucket capacity in tokens; 0 defaults to 16.
	Burst float64
	// QueueShare bounds the fraction of the admission queue this tenant's
	// backlog may occupy, in (0,1]; 0 means unlimited.
	QueueShare float64
}

// TenantConfig arms multi-tenant admission control. The zero value of every
// field picks a sane default, so &TenantConfig{} enables tenancy with
// abuse detection and no quotas.
type TenantConfig struct {
	// Quotas lists the statically known tenants. Unknown tenants register
	// dynamically (quota-less) up to MaxTenants; past the cap they coalesce
	// into one shared "other" bucket with counters but no quota state.
	Quotas []TenantQuota
	// AbuseWindow is the per-tenant ring of recent admission outcomes the
	// abuse detector inspects; in [1,64] (bit-packed), default 64.
	AbuseWindow int
	// AbuseMinSamples is how many outcomes the window must hold before the
	// detector may trip; default 32.
	AbuseMinSamples int
	// AbuseThreshold trips quarantine when the fraction of
	// infeasible-deadline sheds in the window reaches it; (0,1], default 0.75.
	AbuseThreshold float64
	// Quarantine is how long (virtual time units) a tripped tenant stays
	// quarantined before the half-open probe; default 4·t_avg.
	Quarantine float64
	// MaxTenants caps tracked-tenant cardinality (state, metrics labels,
	// report rows); default 64.
	MaxTenants int
}

// QuotasFromSpec converts a parsed tenant-spec file into server quota rows:
// the spec's rateLimit multiples of λ_eq become absolute token rates.
func QuotasFromSpec(spec *workload.TenantSpec, eqRate float64) []TenantQuota {
	out := make([]TenantQuota, 0, len(spec.Tenants))
	for _, t := range spec.Tenants {
		out = append(out, TenantQuota{
			ID:         t.ID,
			Class:      t.Class(),
			Rate:       t.RateLimit * eqRate,
			Burst:      t.Burst,
			QueueShare: t.QueueShare,
		})
	}
	return out
}

// validate checks a tenant configuration at Prepare time.
func (c *TenantConfig) validate() error {
	if c.AbuseWindow < 0 || c.AbuseWindow > 64 {
		return fmt.Errorf("server: AbuseWindow %d outside [0,64]", c.AbuseWindow)
	}
	if c.AbuseMinSamples < 0 {
		return fmt.Errorf("server: AbuseMinSamples %d must be >= 0", c.AbuseMinSamples)
	}
	if c.AbuseThreshold < 0 || c.AbuseThreshold > 1 || math.IsNaN(c.AbuseThreshold) {
		return fmt.Errorf("server: AbuseThreshold %v outside [0,1]", c.AbuseThreshold)
	}
	if !(c.Quarantine >= 0) || math.IsInf(c.Quarantine, 0) {
		return fmt.Errorf("server: Quarantine %v must be >= 0 and finite", c.Quarantine)
	}
	if c.MaxTenants < 0 {
		return fmt.Errorf("server: MaxTenants %d must be >= 0", c.MaxTenants)
	}
	seen := make(map[string]bool, len(c.Quotas))
	for _, q := range c.Quotas {
		if err := workload.ValidTenantID(q.ID); err != nil {
			return fmt.Errorf("server: tenant quota: %v", err)
		}
		if seen[q.ID] {
			return fmt.Errorf("server: tenant quota: duplicate tenant id %q", q.ID)
		}
		seen[q.ID] = true
		switch {
		case !(q.Rate >= 0) || math.IsInf(q.Rate, 0):
			return fmt.Errorf("server: tenant %q: rate %v must be >= 0 and finite", q.ID, q.Rate)
		case !(q.Burst >= 0) || math.IsInf(q.Burst, 0):
			return fmt.Errorf("server: tenant %q: burst %v must be >= 0 and finite", q.ID, q.Burst)
		case !(q.QueueShare >= 0) || q.QueueShare > 1:
			return fmt.Errorf("server: tenant %q: queueShare %v outside [0,1]", q.ID, q.QueueShare)
		}
	}
	return nil
}

// tenantState is one tracked tenant. Quota gating runs on handler
// goroutines (token bucket under mu, queue-share occupancy atomic,
// quarantine state in atomics); the abuse window and its transitions are
// engine-goroutine-only, fed from decision outcomes — live decisions and
// WAL replay drive the same code, so recovery reconstructs the detector
// deterministically.
type tenantState struct {
	id    string
	class workload.SLOClass
	// quarantinable is false only for the shared overflow bucket: punishing
	// every uncounted tenant for one abuser would be collective punishment.
	quarantinable bool

	// Token bucket (handler goroutines; refilled on virtual time).
	mu         sync.Mutex
	rate       float64
	burst      float64
	tokens     float64
	lastRefill float64

	// Queue share: reserved slots in the bounded admission queue.
	shareCap  int64 // 0 = unlimited
	occupancy atomic.Int64

	// Quarantine automaton (breaker-style): quarUntil == 0 is closed;
	// vnow < quarUntil is open; vnow >= quarUntil > 0 is half-open — one
	// probe passes (the probing CAS), and the probe's outcome either closes
	// the quarantine or re-opens it for another period.
	quarUntil   atomic.Uint64 // float bits; 0 = not quarantined
	probing     atomic.Bool
	quarantines atomic.Int64

	// Abuse window: bit-packed ring of recent admission outcomes
	// (1 = infeasible-deadline shed). Engine goroutine only.
	winLen  int
	winBits uint64
	winPos  int
	winN    int
	winBad  int

	// Accounting (atomics: written on engine or handler goroutines, read
	// by Stats/reports). rejectedBase is the checkpoint-restored rejection
	// count (set before Start, read at the next snapshot); the live rejected
	// atomic includes it.
	rejectedBase   int64
	admitted       atomic.Int64
	rejected       atomic.Int64
	mapped         atomic.Int64
	shed           atomic.Int64
	shedInfeasible atomic.Int64
	timedout       atomic.Int64
	onTime         atomic.Int64
	late           atomic.Int64
	failed         atomic.Int64

	// Labeled metrics (nil-safe).
	admittedC, rejectedC, shedC, quarantinesC *metrics.Counter
}

// tenancy is the engine's tenant table plus the detector tuning.
type tenancy struct {
	mu    sync.RWMutex
	byID  map[string]*tenantState
	other *tenantState

	max        int
	window     int
	minSamples int
	threshold  float64
	quarFor    float64
	queueCap   int
	reg        *metrics.Registry
}

// newTenancy builds the tenant table. cfg may be nil: tenancy then runs
// with pure defaults (no quotas, abuse detection armed), so a tagged
// request is always tracked even on an unconfigured server.
func newTenancy(cfg *TenantConfig, queueCap int, tAvg float64, reg *metrics.Registry) *tenancy {
	if cfg == nil {
		cfg = &TenantConfig{}
	}
	tn := &tenancy{
		byID:       make(map[string]*tenantState),
		max:        cfg.MaxTenants,
		window:     cfg.AbuseWindow,
		minSamples: cfg.AbuseMinSamples,
		threshold:  cfg.AbuseThreshold,
		quarFor:    cfg.Quarantine,
		queueCap:   queueCap,
		reg:        reg,
	}
	if tn.max == 0 {
		tn.max = 64
	}
	if tn.window == 0 {
		tn.window = 64
	}
	if tn.minSamples == 0 {
		tn.minSamples = 32
	}
	if tn.threshold == 0 {
		tn.threshold = 0.75
	}
	if tn.quarFor == 0 {
		tn.quarFor = 4 * tAvg
	}
	for _, q := range cfg.Quotas {
		tn.byID[q.ID] = tn.newState(q)
	}
	tn.other = &tenantState{id: "other", winLen: tn.window}
	return tn
}

// newState materializes one tracked tenant's state.
func (tn *tenancy) newState(q TenantQuota) *tenantState {
	burst := q.Burst
	if burst == 0 {
		burst = 16
	}
	ts := &tenantState{
		id:            q.ID,
		class:         q.Class,
		quarantinable: true,
		rate:          q.Rate,
		burst:         burst,
		tokens:        burst,
		winLen:        tn.window,
	}
	if q.QueueShare > 0 {
		ts.shareCap = int64(math.Ceil(q.QueueShare * float64(tn.queueCap)))
		if ts.shareCap < 1 {
			ts.shareCap = 1
		}
	}
	if tn.reg != nil {
		ts.admittedC = tn.reg.Counter("server_tenant_admitted_total", metrics.L("tenant", q.ID))
		ts.rejectedC = tn.reg.Counter("server_tenant_rejected_total", metrics.L("tenant", q.ID))
		ts.shedC = tn.reg.Counter("server_tenant_shed_total", metrics.L("tenant", q.ID))
		ts.quarantinesC = tn.reg.Counter("server_tenant_quarantines_total", metrics.L("tenant", q.ID))
	}
	return ts
}

// state returns (registering if needed) the tracked state for a tenant id.
// Past the cardinality cap the shared overflow bucket is returned: counters
// still move, but no quota or quarantine state is kept — the cap bounds
// memory and metric cardinality, not correctness.
func (tn *tenancy) state(id string) *tenantState {
	if id == "" {
		return nil
	}
	tn.mu.RLock()
	ts := tn.byID[id]
	tn.mu.RUnlock()
	if ts != nil {
		return ts
	}
	tn.mu.Lock()
	defer tn.mu.Unlock()
	if ts := tn.byID[id]; ts != nil {
		return ts
	}
	if len(tn.byID) >= tn.max {
		return tn.other
	}
	// Class for a dynamically registered tenant rides in on its first
	// request; the state's class is refreshed on admission (setClass).
	ts = tn.newState(TenantQuota{ID: id})
	tn.byID[id] = ts
	return ts
}

// lookup is the read-only variant (decision outcomes, replay): it registers
// too, because replayed WAL records may name tenants the restored
// checkpoint has not seen.
func (tn *tenancy) lookup(id string) *tenantState { return tn.state(id) }

// setClass refreshes a dynamically registered tenant's class from its
// latest request (statically configured tenants keep their quota row class).
func (ts *tenantState) setClass(c workload.SLOClass) {
	if ts.class != c {
		ts.class = c
	}
}

// states snapshots the tracked tenants sorted by id, the overflow bucket
// last (only when it saw traffic).
func (tn *tenancy) states() []*tenantState {
	tn.mu.RLock()
	out := make([]*tenantState, 0, len(tn.byID)+1)
	for _, ts := range tn.byID {
		out = append(out, ts)
	}
	tn.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	if tn.other.admitted.Load() > 0 || tn.other.rejected.Load() > 0 {
		out = append(out, tn.other)
	}
	return out
}

// vtWall converts a virtual-time duration to wall time at the engine's
// time scale, clamped to at least one second so Retry-After stays useful.
func vtWall(vt, scale float64) time.Duration {
	d := time.Duration(vt / scale * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	return d
}

// admitGate runs the handler-side tenant gates in order — quarantine,
// token bucket, queue share — and reserves one queue-share slot on success.
// probe reports that this request is the half-open quarantine probe (it
// bypasses the bucket and the share cap: it is the single request the
// detector readmits to test the tenant).
func (ts *tenantState) admitGate(vnow, scale float64) (probe bool, rej *ErrRejected) {
	if qu := math.Float64frombits(ts.quarUntil.Load()); qu > 0 {
		if vnow < qu {
			return false, &ErrRejected{Reason: RejectTenantQuarantined, RetryAfter: vtWall(qu-vnow, scale)}
		}
		// Half-open: exactly one probe through; everyone else keeps waiting.
		if !ts.probing.CompareAndSwap(false, true) {
			return false, &ErrRejected{Reason: RejectTenantQuarantined, RetryAfter: time.Second}
		}
		ts.occupancy.Add(1)
		return true, nil
	}
	if ts.rate > 0 {
		ts.mu.Lock()
		if vnow > ts.lastRefill {
			ts.tokens = math.Min(ts.burst, ts.tokens+(vnow-ts.lastRefill)*ts.rate)
			ts.lastRefill = vnow
		}
		ok := ts.tokens >= 1
		if ok {
			ts.tokens--
		}
		short := 1 - ts.tokens
		ts.mu.Unlock()
		if !ok {
			return false, &ErrRejected{Reason: RejectTenantRateLimit, RetryAfter: vtWall(short/ts.rate, scale)}
		}
	}
	if ts.shareCap > 0 && ts.occupancy.Add(1) > ts.shareCap {
		ts.occupancy.Add(-1)
		return false, &ErrRejected{Reason: RejectTenantQueueShare, RetryAfter: time.Second}
	}
	if ts.shareCap == 0 {
		ts.occupancy.Add(1)
	}
	return false, nil
}

// release returns one reserved queue-share slot (the request left the
// admission queue, by decision or abort).
func (ts *tenantState) release() { ts.occupancy.Add(-1) }

// quarantine opens (or re-opens) the tenant's quarantine at now.
func (ts *tenantState) quarantine(now, quarFor float64) {
	ts.quarUntil.Store(math.Float64bits(now + quarFor))
	ts.quarantines.Add(1)
	ts.quarantinesC.Inc()
	ts.winReset()
}

// clearQuarantine closes the quarantine after a benign probe.
func (ts *tenantState) clearQuarantine() {
	ts.quarUntil.Store(0)
	ts.winReset()
}

func (ts *tenantState) winReset() {
	ts.winBits, ts.winPos, ts.winN, ts.winBad = 0, 0, 0, 0
}

// winPush records one admission outcome in the ring (bad = the admission
// was shed for an infeasible deadline).
func (ts *tenantState) winPush(bad bool) {
	bit := uint64(1) << uint(ts.winPos)
	if ts.winN == ts.winLen {
		if ts.winBits&bit != 0 {
			ts.winBad--
		}
	} else {
		ts.winN++
	}
	if bad {
		ts.winBits |= bit
		ts.winBad++
	} else {
		ts.winBits &^= bit
	}
	ts.winPos = (ts.winPos + 1) % ts.winLen
}

// feedOutcome drives the abuse detector with one decision outcome for this
// tenant, at virtual time now. Engine goroutine only; live decisions,
// recovery re-decides, and WAL replay all come through here, which is what
// makes the quarantine state a deterministic function of the durable log.
func (e *Engine) feedOutcome(ts *tenantState, now float64, bad bool) {
	if ts == nil || !ts.quarantinable {
		return
	}
	if qu := math.Float64frombits(ts.quarUntil.Load()); qu > 0 {
		if now < qu {
			// Decided while the quarantine is open (admitted before it
			// tripped): not a probe, and the window is already reset.
			return
		}
		// The half-open probe's verdict.
		ts.probing.Store(false)
		if bad {
			ts.quarantine(now, e.tenants.quarFor)
		} else {
			ts.clearQuarantine()
		}
		return
	}
	ts.winPush(bad)
	if ts.winN >= e.tenants.minSamples && float64(ts.winBad) >= e.tenants.threshold*float64(ts.winN) {
		ts.quarantine(now, e.tenants.quarFor)
	}
}

// tenantOutcome applies a decision's per-tenant accounting and feeds the
// abuse detector. Engine goroutine only.
func (e *Engine) tenantOutcome(now float64, task workload.Task, d Decision) {
	if task.Tenant == "" {
		return
	}
	ts := e.tenants.lookup(task.Tenant)
	if ts == nil {
		return
	}
	bad := false
	switch d.Status {
	case StatusMapped:
		ts.mapped.Add(1)
	case StatusShed:
		ts.shed.Add(1)
		ts.shedC.Inc()
		if d.Reason == ShedInfeasible {
			ts.shedInfeasible.Add(1)
			bad = true
		}
	case StatusTimedOut:
		ts.timedout.Add(1)
	}
	e.feedOutcome(ts, now, bad)
}

// tenantCompleted / tenantFailed credit terminal execution outcomes.
func (e *Engine) tenantCompleted(task workload.Task, onTime bool) {
	if task.Tenant == "" {
		return
	}
	if ts := e.tenants.lookup(task.Tenant); ts != nil {
		if onTime {
			ts.onTime.Add(1)
		} else {
			ts.late.Add(1)
		}
	}
}

func (e *Engine) tenantFailed(task workload.Task) {
	if task.Tenant == "" {
		return
	}
	if ts := e.tenants.lookup(task.Tenant); ts != nil {
		ts.failed.Add(1)
	}
}

// Quarantined reports whether the tenant is currently quarantined at
// virtual time vnow (tests and handlers).
func (e *Engine) Quarantined(id string) bool {
	e.tenants.mu.RLock()
	ts := e.tenants.byID[id]
	e.tenants.mu.RUnlock()
	if ts == nil {
		return false
	}
	qu := math.Float64frombits(ts.quarUntil.Load())
	return qu > 0 && e.now() < qu
}

// TenantReport is one tenant's slice of the final accounting.
type TenantReport struct {
	ID             string `json:"id"`
	Class          string `json:"class"`
	Admitted       int64  `json:"admitted"`
	Rejected       int64  `json:"rejected"`
	Mapped         int64  `json:"mapped"`
	Shed           int64  `json:"shed"`
	ShedInfeasible int64  `json:"shedInfeasible"`
	TimedOut       int64  `json:"timedOut"`
	OnTime         int64  `json:"onTime"`
	Late           int64  `json:"late"`
	Failed         int64  `json:"failed"`
	Quarantines    int64  `json:"quarantines"`
}

// Balanced mirrors the global invariant per tenant: every admitted task
// reached exactly one decision.
func (r TenantReport) Balanced() bool {
	return r.Admitted == r.Mapped+r.Shed+r.TimedOut
}

// TenantReports snapshots the per-tenant accounting, sorted by id.
func (e *Engine) TenantReports() []TenantReport {
	states := e.tenants.states()
	if len(states) == 0 {
		return nil
	}
	out := make([]TenantReport, 0, len(states))
	for _, ts := range states {
		out = append(out, TenantReport{
			ID:             ts.id,
			Class:          ts.class.String(),
			Admitted:       ts.admitted.Load(),
			Rejected:       ts.rejected.Load(),
			Mapped:         ts.mapped.Load(),
			Shed:           ts.shed.Load(),
			ShedInfeasible: ts.shedInfeasible.Load(),
			TimedOut:       ts.timedout.Load(),
			OnTime:         ts.onTime.Load(),
			Late:           ts.late.Load(),
			Failed:         ts.failed.Load(),
			Quarantines:    ts.quarantines.Load(),
		})
	}
	return out
}
