package server

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/randx"
	"repro/internal/sched"
	"repro/internal/workload"
)

// buildModel makes a small but real model: paper cluster shape, reduced
// type count so tests run in milliseconds.
func buildModel(t testing.TB, seed uint64) *workload.Model {
	t.Helper()
	s := randx.NewStream(seed)
	c, err := cluster.Generate(s.Child("cluster"), cluster.PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	p := workload.PaperParams()
	p.TaskTypes = 10
	p.WindowSize = 60
	p.BurstLen = 12
	p.PMFSamples = 300
	m, err := workload.BuildModel(s.Child("wl"), c, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testMapper(v sched.FilterVariant) *sched.Mapper {
	return &sched.Mapper{Heuristic: sched.LightestLoad{}, Filters: v.Filters()}
}

// newTestEngine builds an engine on a ManualClock. mut tweaks the config
// before construction.
func newTestEngine(t testing.TB, m *workload.Model, mut func(*Config)) (*Engine, *ManualClock) {
	t.Helper()
	clk := NewManualClock()
	cfg := Config{
		Model:  m,
		Mapper: testMapper(sched.NoFilter),
		Clock:  clk,
		Seed:   42,
	}
	if mut != nil {
		mut(&cfg)
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng, clk
}

func submitType(t *testing.T, eng *Engine, ty int) Decision {
	t.Helper()
	d, err := eng.Submit(TaskRequest{Type: ty})
	if err != nil {
		t.Fatalf("submit type %d: %v", ty, err)
	}
	return d
}

func TestEngineMapsAndCompletes(t *testing.T) {
	m := buildModel(t, 1)
	eng, clk := newTestEngine(t, m, nil)

	const n = 8
	for i := 0; i < n; i++ {
		d := submitType(t, eng, i%m.Params.TaskTypes)
		if d.Status != StatusMapped {
			t.Fatalf("task %d: status %v (reason %q), want mapped", i, d.Status, d.Reason)
		}
		if d.Assignment == nil || d.Assignment.ETA <= 0 {
			t.Fatalf("task %d: degenerate assignment %+v", i, d.Assignment)
		}
		if d.Deadline <= d.Arrival {
			t.Fatalf("task %d: deadline %v not after arrival %v", i, d.Deadline, d.Arrival)
		}
	}
	st := eng.Stats()
	if st.Admitted != n || st.Mapped != n || st.InFlight != n {
		t.Fatalf("pre-advance stats: %+v", st)
	}
	if !st.Balanced() {
		t.Fatalf("stats not balanced mid-flight: %+v", st)
	}

	// Fast-forward far past every completion.
	clk.Advance(1000 * m.TAvg())
	eng.Sync()
	st = eng.Stats()
	if st.InFlight != 0 {
		t.Fatalf("tasks still in flight after fast-forward: %+v", st)
	}
	if st.OnTime+st.Late != n || st.Failed != 0 {
		t.Fatalf("completion accounting: %+v", st)
	}
	if st.EnergyConsumed <= 0 {
		t.Fatal("meter did not advance")
	}
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	rep := eng.FinalReport()
	if rep.Orphaned != 0 || !rep.Balanced {
		t.Fatalf("final report: orphaned %d balanced %v", rep.Orphaned, rep.Balanced)
	}
}

func TestEngineDeterministicAcrossRuns(t *testing.T) {
	m := buildModel(t, 2)
	run := func() []Decision {
		eng, clk := newTestEngine(t, m, nil)
		var out []Decision
		for i := 0; i < 6; i++ {
			out = append(out, submitType(t, eng, i))
			clk.Advance(m.TAvg() / 2)
			eng.Sync()
		}
		eng.Close()
		return out
	}
	a, b := run(), run()
	for i := range a {
		// QueueWait is wall time; everything else must be bit-identical.
		x, y := a[i], b[i]
		x.QueueWait, y.QueueWait = 0, 0
		ax, ay := x.Assignment, y.Assignment
		x.Assignment, y.Assignment = nil, nil
		if x != y || (ax == nil) != (ay == nil) || (ax != nil && *ax != *ay) {
			t.Fatalf("decision %d diverged: %+v/%+v vs %+v/%+v", i, x, ax, y, ay)
		}
	}
}

func TestShedInfeasibleDeadline(t *testing.T) {
	m := buildModel(t, 3)
	eng, _ := newTestEngine(t, m, nil)
	zero := 0.0
	d, err := eng.Submit(TaskRequest{Type: 0, Slack: &zero})
	if err != nil {
		t.Fatal(err)
	}
	if d.Status != StatusShed || d.Reason != ShedInfeasible {
		t.Fatalf("status %v reason %q, want shed/%s", d.Status, d.Reason, ShedInfeasible)
	}
	st := eng.Stats()
	if st.Shed != 1 || st.ShedInfeasible != 1 || st.Mapped != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNoShedInfeasibleRunsFilterChain(t *testing.T) {
	m := buildModel(t, 3)
	eng, _ := newTestEngine(t, m, func(c *Config) {
		c.NoShedInfeasible = true
		c.Mapper = testMapper(sched.RobustnessOnly)
	})
	zero := 0.0
	d, err := eng.Submit(TaskRequest{Type: 0, Slack: &zero})
	if err != nil {
		t.Fatal(err)
	}
	// The robustness filter sees a hopeless deadline and empties the set:
	// same verdict, but via the paper's discard path.
	if d.Status != StatusShed || d.Reason != ShedFiltered {
		t.Fatalf("status %v reason %q, want shed/%s", d.Status, d.Reason, ShedFiltered)
	}
}

func TestPerRequestEnergyCapSheds(t *testing.T) {
	m := buildModel(t, 4)
	eng, _ := newTestEngine(t, m, nil)
	tiny := 1e-300
	d, err := eng.Submit(TaskRequest{Type: 0, MaxEnergy: &tiny})
	if err != nil {
		t.Fatal(err)
	}
	if d.Status != StatusShed || d.Reason != ShedFiltered {
		t.Fatalf("status %v reason %q, want shed/%s", d.Status, d.Reason, ShedFiltered)
	}
	// A sane cap maps fine and the config mapper is not mutated.
	d = submitType(t, eng, 0)
	if d.Status != StatusMapped {
		t.Fatalf("uncapped task not mapped: %v/%q", d.Status, d.Reason)
	}
}

// blockEngine parks the engine goroutine inside the sync handshake so the
// admission queue can be filled (or aged) deterministically. The returned
// release function unblocks it.
func blockEngine(e *Engine) (release func()) {
	gate := make(chan struct{})
	e.syncCh <- gate
	return func() { <-gate }
}

func TestQueueFullBackpressure(t *testing.T) {
	m := buildModel(t, 5)
	eng, _ := newTestEngine(t, m, func(c *Config) { c.QueueCap = 2 })

	release := blockEngine(eng)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = eng.Submit(TaskRequest{Type: 0})
		}()
	}
	// Wait until both occupy the queue (the engine is blocked, so depth can
	// only grow).
	for eng.QueueDepth() < 2 {
		time.Sleep(time.Millisecond)
	}
	_, err := eng.Submit(TaskRequest{Type: 1})
	rej, ok := err.(*ErrRejected)
	if !ok || rej.Reason != RejectQueueFull {
		t.Fatalf("overflow submit: err %v, want queue-full rejection", err)
	}
	if rej.RetryAfter <= 0 {
		t.Fatal("queue-full rejection carries no Retry-After hint")
	}
	release()
	wg.Wait()
	st := eng.Stats()
	if st.Rejected != 1 || st.Admitted != 2 {
		t.Fatalf("stats after backpressure: %+v", st)
	}
}

func TestRequestTimeout(t *testing.T) {
	m := buildModel(t, 6)
	eng, _ := newTestEngine(t, m, func(c *Config) { c.RequestTimeout = time.Nanosecond })

	release := blockEngine(eng)
	done := make(chan Decision, 1)
	go func() {
		d, err := eng.Submit(TaskRequest{Type: 0})
		if err != nil {
			t.Error(err)
		}
		done <- d
	}()
	for eng.QueueDepth() < 1 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond) // age the request well past 1ns
	release()
	d := <-done
	if d.Status != StatusTimedOut {
		t.Fatalf("status %v, want timed-out", d.Status)
	}
	st := eng.Stats()
	if st.TimedOut != 1 || !st.Balanced() {
		t.Fatalf("stats: %+v", st)
	}
}

func TestEnergyExhaustionHalts(t *testing.T) {
	m := buildModel(t, 7)
	eng, clk := newTestEngine(t, m, func(c *Config) {
		c.Budget = m.DefaultEnergyBudget() / 100
	})
	d := submitType(t, eng, 0)
	if d.Status != StatusMapped {
		t.Fatalf("first task not mapped: %v", d.Status)
	}
	// Idle draw alone exhausts 1% of ζ_max quickly.
	for i := 0; i < 1000 && !eng.halted.Load(); i++ {
		clk.Advance(m.TAvg())
		eng.Sync()
	}
	if !eng.halted.Load() {
		t.Fatal("meter never exhausted")
	}
	if _, err := eng.Submit(TaskRequest{Type: 0}); err == nil {
		t.Fatal("submit after halt succeeded")
	} else if rej, ok := err.(*ErrRejected); !ok || rej.Reason != ShedHalted {
		t.Fatalf("post-halt rejection: %v", err)
	}
	st := eng.Stats()
	if !st.Halted || st.InFlight != 0 {
		t.Fatalf("halt state: %+v", st)
	}
	// The in-flight task either completed before the budget ran out or was
	// failed by the halt — never orphaned.
	if st.OnTime+st.Late+st.Failed != st.Mapped {
		t.Fatalf("halt accounting: %+v", st)
	}
	if st.EnergyConsumed > st.EnergyBudget+1e-9 {
		t.Fatalf("meter drifted past ζ_max: %v > %v", st.EnergyConsumed, st.EnergyBudget)
	}
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rep := eng.FinalReport(); rep.Orphaned != 0 || !rep.Balanced {
		t.Fatalf("final report: %+v", rep)
	}
}

func TestBrownoutGatesAdmission(t *testing.T) {
	m := buildModel(t, 8)
	eng, clk := newTestEngine(t, m, func(c *Config) {
		c.Budget = m.DefaultEnergyBudget() / 50
		c.Brownout = []energy.BrownoutStage{
			{Frac: 0.10, ZetaMul: 0.8, PStateFloor: cluster.P2},
			{Frac: 0.30, ZetaMul: 0.5, PStateFloor: cluster.P4, ShedAdmission: true},
		}
	})
	if !eng.Accepting() {
		t.Fatal("fresh engine not accepting")
	}
	// Steps small relative to the budget so stages trip in order instead of
	// being jumped over straight into the halt.
	for i := 0; i < 100000 && !eng.shedGate.Load(); i++ {
		clk.Advance(m.TAvg() / 2000)
		eng.Sync()
		if eng.halted.Load() {
			t.Fatal("halted before the shed stage tripped")
		}
	}
	if !eng.shedGate.Load() {
		t.Fatal("deepest brownout stage never tripped")
	}
	if eng.Accepting() {
		t.Fatal("still accepting under ShedAdmission stage")
	}
	if st := eng.Stats(); st.BrownoutStage != 2 {
		t.Fatalf("stage %d, want 2", st.BrownoutStage)
	}
	_, err := eng.Submit(TaskRequest{Type: 0})
	rej, ok := err.(*ErrRejected)
	if !ok || rej.Reason != ShedBrownout {
		t.Fatalf("brownout rejection: %v", err)
	}
	if rej.RetryAfter <= 0 {
		t.Fatal("brownout rejection carries no Retry-After hint")
	}
}

// TestDrainNeverOrphans is the graceful-drain invariant: a loaded engine
// that drains — with more submissions racing in — answers every request and
// leaves admitted == mapped + shed + timed-out with nothing in flight.
func TestDrainNeverOrphans(t *testing.T) {
	m := buildModel(t, 9)
	eng, _ := newTestEngine(t, m, func(c *Config) { c.QueueCap = 8 })

	// Load the engine: mapped tasks sit in flight (the clock never moves),
	// plus a couple of sheds for variety.
	for i := 0; i < 20; i++ {
		submitType(t, eng, i%m.Params.TaskTypes)
	}
	zero := 0.0
	if _, err := eng.Submit(TaskRequest{Type: 0, Slack: &zero}); err != nil {
		t.Fatal(err)
	}

	// Racers submit while the drain starts; each must get either a decision
	// or a clean rejection, never a hang.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(ty int) {
			defer wg.Done()
			_, err := eng.Submit(TaskRequest{Type: ty})
			if err != nil {
				if _, ok := err.(*ErrRejected); !ok {
					t.Errorf("racer: unexpected error %v", err)
				}
			}
		}(i % m.Params.TaskTypes)
	}
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	st := eng.Stats()
	if st.InFlight != 0 {
		t.Fatalf("in-flight after drain: %+v", st)
	}
	if st.Admitted != st.Mapped+st.Shed+st.TimedOut {
		t.Fatalf("admission accounting broken: %+v", st)
	}
	if st.Mapped != st.OnTime+st.Late+st.Failed {
		t.Fatalf("completion accounting broken: %+v", st)
	}
	rep := eng.FinalReport()
	if rep.Orphaned != 0 || !rep.Balanced {
		t.Fatalf("final report: orphaned %d balanced %v", rep.Orphaned, rep.Balanced)
	}
	// Drain is idempotent.
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	// Post-drain submissions are rejected as draining.
	if _, err := eng.Submit(TaskRequest{Type: 0}); err == nil {
		t.Fatal("submit after drain succeeded")
	} else if rej, ok := err.(*ErrRejected); !ok || rej.Reason != RejectDraining {
		t.Fatalf("post-drain rejection: %v", err)
	}
}

func TestDrainGraceFailsStragglers(t *testing.T) {
	m := buildModel(t, 10)
	eng, _ := newTestEngine(t, m, func(c *Config) {
		// An immediately-expiring grace forces the straggler path.
		c.DrainGrace = time.Nanosecond
	})
	for i := 0; i < 5; i++ {
		submitType(t, eng, i)
	}
	err := eng.Drain(context.Background())
	if err == nil {
		t.Fatal("drain with 1ns grace reported success despite in-flight work")
	}
	st := eng.Stats()
	if st.InFlight != 0 {
		t.Fatalf("stragglers left in flight: %+v", st)
	}
	if st.Failed == 0 {
		t.Fatalf("no straggler failed: %+v", st)
	}
	if rep := eng.FinalReport(); rep.Orphaned != 0 || !rep.Balanced {
		t.Fatalf("final report: %+v", rep)
	}
}

func TestConfigValidation(t *testing.T) {
	m := buildModel(t, 11)
	mapper := testMapper(sched.NoFilter)
	cases := []Config{
		{},
		{Model: m},
		{Model: m, Mapper: &sched.Mapper{}},
		{Model: m, Mapper: mapper, Budget: -1},
		{Model: m, Mapper: mapper, QueueCap: -3},
		{Model: m, Mapper: mapper, RequestTimeout: -time.Second},
		{Model: m, Mapper: mapper, Horizon: -1},
		{Model: m, Mapper: mapper, TimeScale: math.NaN()},
		{Model: m, Mapper: mapper, IdlePState: cluster.PState(99)},
		// Brownout without a finite budget.
		{Model: m, Mapper: mapper, Brownout: energy.DefaultServeBrownoutStages()},
		// Malformed brownout schedule.
		{Model: m, Mapper: mapper, Budget: 1, Brownout: []energy.BrownoutStage{{Frac: 2}}},
	}
	for i, cfg := range cases {
		if eng, err := New(cfg); err == nil {
			eng.Close()
			t.Errorf("case %d: config accepted: %+v", i, cfg)
		}
	}
}

func TestStatsSnapshotAndMetrics(t *testing.T) {
	m := buildModel(t, 12)
	reg := metrics.NewRegistry()
	eng, clk := newTestEngine(t, m, func(c *Config) { c.Metrics = reg })
	for i := 0; i < 4; i++ {
		submitType(t, eng, i)
	}
	clk.Advance(1000 * m.TAvg())
	eng.Sync()
	snap := reg.Snapshot()
	if v, ok := snap.Value("server_admitted_total"); !ok || v != 4 {
		t.Fatalf("server_admitted_total = %v (present %v)", v, ok)
	}
	if v, ok := snap.Value("server_decisions_total", metrics.L("decision", "mapped")); !ok || v != 4 {
		t.Fatalf("mapped decisions metric = %v (present %v)", v, ok)
	}
	if got := snap.SumByName("server_completed_total"); got != 4 {
		t.Fatalf("completed metric sum = %v", got)
	}
	if v, _ := snap.Value("energy_meter_consumed"); v <= 0 {
		t.Fatalf("energy gauge not exported: %v", v)
	}
}
