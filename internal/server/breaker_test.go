package server

import (
	"context"
	"testing"

	"repro/internal/fault"
)

func TestBreakerAutomaton(t *testing.T) {
	b := newBreakers(BreakerConfig{Threshold: 2, Cooldown: 100}, 2, 0, 0)

	if !b.allows(0, 0) {
		t.Fatal("fresh breaker closed to traffic")
	}
	// First strike: still closed.
	if open := b.onFault(0, 10, false); open {
		t.Fatal("single strike opened the breaker")
	}
	if !b.allows(0, 11) {
		t.Fatal("breaker open after one strike with threshold 2")
	}
	// Second strike trips it.
	if open := b.onFault(0, 20, false); !open {
		t.Fatal("threshold strike did not open the breaker")
	}
	if b.allows(0, 50) {
		t.Fatal("open breaker admits traffic inside the cooldown")
	}
	if b.opens != 1 {
		t.Fatalf("opens = %d, want 1", b.opens)
	}
	// Cooldown elapsed: half-open, one probe allowed.
	if !b.allows(0, 121) {
		t.Fatal("breaker still closed after cooldown")
	}
	b.onMapped(0)
	if b.allows(0, 122) {
		t.Fatal("half-open breaker admitted a second probe")
	}
	// Probe succeeds: closed, strikes reset.
	b.onSuccess(0)
	if b.stateOf(0) != "closed" {
		t.Fatalf("state %q after successful probe", b.stateOf(0))
	}
	if open := b.onFault(0, 200, false); open {
		t.Fatal("strike count not reset by close")
	}

	// A failed probe reopens immediately.
	b.onFault(0, 210, false) // trips again (second strike since reset)
	if !b.allows(0, 311) {   // half-open
		t.Fatal("no half-open after second cooldown")
	}
	b.onMapped(0)
	if open := b.onFault(0, 312, false); !open {
		t.Fatal("failed probe did not reopen")
	}

	// Permanent death is forever, and independent per node.
	b.onFault(1, 5, true)
	if b.stateOf(1) != "dead" {
		t.Fatalf("state %q after permanent fault", b.stateOf(1))
	}
	if b.allows(1, 1e12) {
		t.Fatal("dead node admits traffic")
	}
}

// TestScriptedFaultRequeue drives a deterministic failure into a loaded
// engine: the stranded task must be requeued, re-mapped, and completed (or
// failed) — never lost — and the node's breaker must record the strikes.
func TestScriptedFaultRequeue(t *testing.T) {
	m := buildModel(t, 20)
	tAvg := m.TAvg()
	eng, clk := newTestEngine(t, m, func(c *Config) {
		c.Faults = fault.Spec{
			RepairTime: tAvg / 2,
			Script: []fault.Scripted{
				{Time: tAvg / 100, Kind: fault.Transient, Core: 0},
				{Time: tAvg / 90, Kind: fault.Transient, Core: 1},
			},
			Recovery: fault.Recovery{Mode: fault.Requeue, MaxRetries: 3, Backoff: tAvg / 10},
		}
		c.Breaker = BreakerConfig{Threshold: 2, Cooldown: tAvg}
	})

	// Load every core so the scripted victims are guaranteed to hold work.
	n := len(eng.cores) + 10
	for i := 0; i < n; i++ {
		if d := submitType(t, eng, i%m.Params.TaskTypes); d.Status != StatusMapped {
			t.Fatalf("task %d not mapped: %v/%q", i, d.Status, d.Reason)
		}
	}
	clk.Advance(1000 * tAvg)
	eng.Sync()

	st := eng.Stats()
	if st.Faults != 2 {
		t.Fatalf("faults = %d, want 2", st.Faults)
	}
	if st.Retries == 0 {
		t.Fatal("no stranded task was retried")
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight after fast-forward: %+v", st)
	}
	if st.Mapped != st.OnTime+st.Late+st.Failed {
		t.Fatalf("fault accounting broken: %+v", st)
	}
	// Cores 0 and 1 are on the same node in cluster order; two strikes with
	// threshold 2 must have opened its breaker.
	if eng.cores[0].Node == eng.cores[1].Node && st.BreakerOpens == 0 {
		t.Fatalf("same-node double strike did not open the breaker: %+v", st)
	}
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rep := eng.FinalReport(); rep.Orphaned != 0 || !rep.Balanced {
		t.Fatalf("final report: orphaned %d balanced %v", rep.Orphaned, rep.Balanced)
	}
}

// TestPermanentNodeFailure kills a node outright: its queued tasks route
// through recovery, the breaker reports dead, and mapping avoids the node
// from then on.
func TestPermanentNodeFailure(t *testing.T) {
	m := buildModel(t, 21)
	tAvg := m.TAvg()
	eng, clk := newTestEngine(t, m, func(c *Config) {
		c.Faults = fault.Spec{
			Script:   []fault.Scripted{{Time: tAvg / 100, Kind: fault.Permanent, Node: 0}},
			Recovery: fault.Recovery{Mode: fault.Drop},
		}
	})
	n := len(eng.cores) + 5
	for i := 0; i < n; i++ {
		submitType(t, eng, i%m.Params.TaskTypes)
	}
	clk.Advance(10 * tAvg)
	eng.Sync()

	st := eng.Stats()
	if st.Failed == 0 {
		t.Fatalf("node death with drop recovery failed nothing: %+v", st)
	}
	if len(st.Breakers) == 0 || st.Breakers[0] != "dead" {
		t.Fatalf("breakers = %v, want node 0 dead", st.Breakers)
	}
	// New work must never land on the dead node.
	for i := 0; i < 10; i++ {
		d := submitType(t, eng, i%m.Params.TaskTypes)
		if d.Status == StatusMapped && d.Assignment.Node == 0 {
			t.Fatalf("task mapped onto the dead node: %+v", d.Assignment)
		}
	}
	clk.Advance(1000 * tAvg)
	eng.Sync()
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rep := eng.FinalReport(); rep.Orphaned != 0 || !rep.Balanced {
		t.Fatalf("final report: orphaned %d balanced %v", rep.Orphaned, rep.Balanced)
	}
}
