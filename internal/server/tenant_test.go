package server

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

func sloPtr(s string) *string { return &s }

// tenantTestQuotas is the three-class quota table the weighted-shed tests
// share: one tenant per class, no rate or share limits.
func tenantTestQuotas() *TenantConfig {
	return &TenantConfig{Quotas: []TenantQuota{
		{ID: "g", Class: workload.SLOGold},
		{ID: "s", Class: workload.SLOSilver},
		{ID: "b", Class: workload.SLOBronze},
	}}
}

// queueTagged parks the engine, submits one tagged request per (tenant,
// class) pair in tenants concurrently so they all sit in the admission
// queue, then flips the brownout stage and releases the engine — the
// decide-side weighted shed path, not the pre-queue gate, judges them.
func queueTagged(t *testing.T, eng *Engine, tenants map[string]string, perTenant int, stage int32) {
	t.Helper()
	release := blockEngine(eng)
	var wg sync.WaitGroup
	want := 0
	for id, slo := range tenants {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			want++
			go func(id, slo string, ty int) {
				defer wg.Done()
				if _, err := eng.Submit(TaskRequest{Type: ty, Tenant: id, SLO: sloPtr(slo)}); err != nil {
					t.Errorf("tenant %s submit: %v", id, err)
				}
			}(id, slo, i%eng.cfg.Model.Params.TaskTypes)
		}
	}
	for eng.QueueDepth() < want {
		time.Sleep(time.Millisecond)
	}
	eng.stage.Store(stage)
	release()
	wg.Wait()
}

// TestTenantWeightedShedKeepsBalance drives tagged traffic into the queue
// at successive brownout stages: stage 1 sheds bronze, stage 2 adds silver,
// stage 3 adds gold — and after every round the per-tenant accounting and
// the global accounting both satisfy admitted == mapped + shed + timedout.
// Run under -race this also proves the stage flip, the handler-side gates,
// and the engine-side shed never race on shared tenant state.
func TestTenantWeightedShedKeepsBalance(t *testing.T) {
	m := buildModel(t, 11)
	eng, _ := newTestEngine(t, m, func(c *Config) {
		c.QueueCap = 16
		c.Tenants = tenantTestQuotas()
	})

	checkBalance := func(round string) map[string]TenantReport {
		t.Helper()
		byID := map[string]TenantReport{}
		for _, r := range eng.TenantReports() {
			if !r.Balanced() {
				t.Fatalf("%s: tenant %s unbalanced: %+v", round, r.ID, r)
			}
			byID[r.ID] = r
		}
		if st := eng.Stats(); !st.Balanced() {
			t.Fatalf("%s: global stats unbalanced: %+v", round, st)
		}
		return byID
	}

	// Round 1: all three classes queued, stage flips to 1 — bronze sheds,
	// silver and gold map.
	queueTagged(t, eng, map[string]string{"g": "gold", "s": "silver", "b": "bronze"}, 4, 1)
	rep := checkBalance("round 1")
	if b := rep["b"]; b.Shed != 4 || b.Mapped != 0 {
		t.Fatalf("round 1 bronze: %+v", b)
	}
	if g, s := rep["g"], rep["s"]; g.Mapped != 4 || s.Mapped != 4 {
		t.Fatalf("round 1 gold/silver: %+v / %+v", g, s)
	}

	// At stage 1 the pre-queue gate turns bronze away before it can occupy
	// a slot: a 429-style rejection, not an admitted-then-shed decision.
	if _, err := eng.Submit(TaskRequest{Type: 0, Tenant: "b", SLO: sloPtr("bronze")}); err == nil {
		t.Fatal("bronze admitted through the stage-1 gate")
	} else if rej, ok := err.(*ErrRejected); !ok || rej.Reason != ShedBrownout {
		t.Fatalf("bronze gate rejection: %v", err)
	}

	// Round 2: gold and silver pass the stage-1 gate, then the stage flips
	// to 2 while they wait — silver sheds, gold maps.
	queueTagged(t, eng, map[string]string{"g": "gold", "s": "silver"}, 4, 2)
	rep = checkBalance("round 2")
	if s := rep["s"]; s.Shed != 4 || s.Mapped != 4 {
		t.Fatalf("round 2 silver: %+v", s)
	}
	if g := rep["g"]; g.Mapped != 8 {
		t.Fatalf("round 2 gold: %+v", g)
	}

	// Round 3: even gold sheds at stage 3.
	queueTagged(t, eng, map[string]string{"g": "gold"}, 4, 3)
	rep = checkBalance("round 3")
	if g := rep["g"]; g.Shed != 4 || g.Mapped != 8 || g.Admitted != 12 {
		t.Fatalf("round 3 gold: %+v", g)
	}
	if st := eng.Stats(); st.Admitted != 24 || st.Mapped != 12 || st.Shed != 12 {
		t.Fatalf("final global stats: %+v", st)
	}
}

func TestTenantRateLimitBucket(t *testing.T) {
	m := buildModel(t, 12)
	eng, clk := newTestEngine(t, m, func(c *Config) {
		c.Tenants = &TenantConfig{Quotas: []TenantQuota{
			{ID: "r", Class: workload.SLOSilver, Rate: 1, Burst: 2},
		}}
	})
	submit := func() error {
		_, err := eng.Submit(TaskRequest{Type: 0, Tenant: "r", SLO: sloPtr("silver")})
		return err
	}
	// Burst of 2 drains the bucket; the third is rejected with a refill hint.
	for i := 0; i < 2; i++ {
		if err := submit(); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	err := submit()
	rej, ok := err.(*ErrRejected)
	if !ok || rej.Reason != RejectTenantRateLimit {
		t.Fatalf("over-rate submit: %v, want %s", err, RejectTenantRateLimit)
	}
	if rej.RetryAfter <= 0 {
		t.Fatal("rate-limit rejection carries no Retry-After")
	}
	// Virtual time refills the bucket.
	clk.Advance(1.5)
	eng.Sync()
	if err := submit(); err != nil {
		t.Fatalf("post-refill submit: %v", err)
	}
	rep := eng.TenantReports()
	if len(rep) != 1 || rep[0].Rejected != 1 || rep[0].Admitted != 3 || !rep[0].Balanced() {
		t.Fatalf("tenant report: %+v", rep)
	}
	if st := eng.Stats(); st.Rejected != 1 || !st.Balanced() {
		t.Fatalf("global stats: %+v", st)
	}
}

func TestTenantQueueShareCap(t *testing.T) {
	m := buildModel(t, 13)
	eng, _ := newTestEngine(t, m, func(c *Config) {
		c.QueueCap = 8
		c.Tenants = &TenantConfig{Quotas: []TenantQuota{
			{ID: "q", Class: workload.SLOBronze, QueueShare: 0.25}, // 2 of 8 slots
		}}
	})
	release := blockEngine(eng)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Submit(TaskRequest{Type: 0, Tenant: "q"}); err != nil {
				t.Errorf("share submit: %v", err)
			}
		}()
	}
	for eng.QueueDepth() < 2 {
		time.Sleep(time.Millisecond)
	}
	_, err := eng.Submit(TaskRequest{Type: 0, Tenant: "q"})
	rej, ok := err.(*ErrRejected)
	if !ok || rej.Reason != RejectTenantQueueShare {
		t.Fatalf("over-share submit: %v, want %s", err, RejectTenantQueueShare)
	}
	// A different tenant still has the rest of the queue: the share bounds
	// one tenant's backlog, not the queue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := eng.Submit(TaskRequest{Type: 0, Tenant: "free"}); err != nil {
			t.Errorf("other-tenant submit: %v", err)
		}
	}()
	for eng.QueueDepth() < 3 {
		time.Sleep(time.Millisecond)
	}
	release()
	wg.Wait()
	if st := eng.Stats(); st.Admitted != 3 || st.Rejected != 1 || !st.Balanced() {
		t.Fatalf("stats: %+v", st)
	}
}

// TestTenantAbuseQuarantineIsolation is the adversarial-survival contract as
// a -race engine test: a bronze tenant flooding infeasible deadlines gets
// quarantined (429 + Retry-After) while a compliant gold tenant's mapped
// throughput stays within 5% of an attack-free baseline; the half-open probe
// re-opens the quarantine on a bad probe and closes it on a good one.
func TestTenantAbuseQuarantineIsolation(t *testing.T) {
	m := buildModel(t, 14)
	tAvg := m.TAvg()
	cfg := func(c *Config) {
		c.Tenants = &TenantConfig{
			Quotas: []TenantQuota{
				{ID: "gold-a", Class: workload.SLOGold},
				{ID: "flood", Class: workload.SLOBronze},
			},
			AbuseWindow:     16,
			AbuseMinSamples: 8,
			AbuseThreshold:  0.75,
			Quarantine:      10 * tAvg,
		}
	}
	const goldN = 40
	driveGold := func(eng *Engine, clk *ManualClock, attack bool) (goldMapped int64) {
		t.Helper()
		zero := 0.0
		for i := 0; i < goldN; i++ {
			if attack {
				// Two flood submissions per gold one; rejections once the
				// quarantine trips are the expected steady state.
				for j := 0; j < 2; j++ {
					_, err := eng.Submit(TaskRequest{Type: (i + j) % m.Params.TaskTypes, Tenant: "flood", Slack: &zero})
					if err != nil {
						rej, ok := err.(*ErrRejected)
						if !ok || rej.Reason != RejectTenantQuarantined || rej.RetryAfter <= 0 {
							t.Fatalf("flood submit %d: %v", i, err)
						}
					}
				}
			}
			if _, err := eng.Submit(TaskRequest{Type: i % m.Params.TaskTypes, Tenant: "gold-a", SLO: sloPtr("gold")}); err != nil {
				t.Fatalf("gold submit %d: %v", i, err)
			}
			clk.Advance(tAvg / 2)
			eng.Sync()
		}
		for _, r := range eng.TenantReports() {
			if !r.Balanced() {
				t.Fatalf("tenant %s unbalanced: %+v", r.ID, r)
			}
			if r.ID == "gold-a" {
				goldMapped = r.Mapped
			}
		}
		if st := eng.Stats(); !st.Balanced() {
			t.Fatalf("global stats unbalanced: %+v", st)
		}
		return goldMapped
	}

	// Attack-free baseline.
	base, baseClk := newTestEngine(t, buildModel(t, 14), cfg)
	baseMapped := driveGold(base, baseClk, false)
	if baseMapped == 0 {
		t.Fatal("baseline mapped nothing; scenario is vacuous")
	}

	// Under attack.
	eng, clk := newTestEngine(t, m, cfg)
	attackMapped := driveGold(eng, clk, true)
	if !eng.Quarantined("flood") {
		t.Fatal("flooding tenant never quarantined")
	}
	var flood TenantReport
	for _, r := range eng.TenantReports() {
		if r.ID == "flood" {
			flood = r
		}
	}
	if flood.Quarantines < 1 || flood.ShedInfeasible < 8 {
		t.Fatalf("flood report: %+v", flood)
	}
	if flood.Rejected == 0 {
		t.Fatal("quarantine never turned a flood request away")
	}
	if float64(attackMapped) < 0.95*float64(baseMapped) {
		t.Fatalf("gold throughput under attack %d < 95%% of baseline %d", attackMapped, baseMapped)
	}

	// Half-open: a bad probe re-opens the quarantine for another period.
	clk.Advance(20 * tAvg)
	eng.Sync()
	zero := 0.0
	if _, err := eng.Submit(TaskRequest{Type: 0, Tenant: "flood", Slack: &zero}); err != nil {
		t.Fatalf("bad probe submit: %v", err)
	}
	if !eng.Quarantined("flood") {
		t.Fatal("bad probe did not re-open the quarantine")
	}
	// A good probe closes it and traffic flows again.
	clk.Advance(20 * tAvg)
	eng.Sync()
	if _, err := eng.Submit(TaskRequest{Type: 0, Tenant: "flood"}); err != nil {
		t.Fatalf("good probe submit: %v", err)
	}
	if eng.Quarantined("flood") {
		t.Fatal("good probe did not close the quarantine")
	}
	if _, err := eng.Submit(TaskRequest{Type: 1, Tenant: "flood"}); err != nil {
		t.Fatalf("post-probe submit: %v", err)
	}
}

// driveTenantScenario is the durable multi-tenant history: compliant gold
// traffic interleaved with an infeasible-deadline flood that trips the
// quarantine, a mid-stream checkpoint, the quarantine expiring, a bad
// half-open probe, and a final gold burst.
func driveTenantScenario(t testing.TB, eng *Engine, clk *ManualClock, m *workload.Model) {
	t.Helper()
	tAvg := m.TAvg()
	zero := 0.0
	flood := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := eng.Submit(TaskRequest{Type: i % m.Params.TaskTypes, Tenant: "flood", Slack: &zero}); err != nil {
				if _, ok := err.(*ErrRejected); !ok {
					t.Fatalf("flood submit: %v", err)
				}
			}
		}
	}
	for i := 0; i < 6; i++ {
		if _, err := eng.Submit(TaskRequest{Type: i % m.Params.TaskTypes, Tenant: "gold-a", SLO: sloPtr("gold")}); err != nil {
			t.Fatalf("gold submit %d: %v", i, err)
		}
		flood(2)
		clk.Advance(tAvg / 4)
		eng.Sync()
	}
	if err := eng.CheckpointNow(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	mid, err := os.ReadFile(eng.cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(eng.cfg.CheckpointPath+".mid", mid, 0o644); err != nil {
		t.Fatal(err)
	}
	// Quarantine rejections while open, then the expiry and a bad probe.
	flood(3)
	clk.Advance(4 * tAvg)
	eng.Sync()
	flood(2)
	for i := 0; i < 4; i++ {
		if _, err := eng.Submit(TaskRequest{Type: (i + 3) % m.Params.TaskTypes, Tenant: "gold-a", SLO: sloPtr("gold")}); err != nil {
			t.Fatalf("late gold submit %d: %v", i, err)
		}
	}
	clk.Advance(2 * tAvg)
	eng.Sync()
	if err := eng.CheckpointNow(); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
}

// TestTenantRecoveryBitIdentity extends the recovery contract to the tenant
// fields: a multi-tenant history with a quarantine trip recovers from the
// WAL alone, and from checkpoint + suffix, to the same per-tenant report as
// the uninterrupted run — including quarantine counts, which are never
// logged directly but re-derived by replaying decision outcomes through the
// abuse detector.
func TestTenantRecoveryBitIdentity(t *testing.T) {
	m := buildModel(t, 32)
	tAvg := m.TAvg()
	tenantize := func(c *Config) {
		c.Tenants = &TenantConfig{
			Quotas: []TenantQuota{
				{ID: "gold-a", Class: workload.SLOGold},
				{ID: "flood", Class: workload.SLOBronze},
			},
			AbuseWindow:     16,
			AbuseMinSamples: 8,
			AbuseThreshold:  0.75,
			Quarantine:      2 * tAvg,
		}
	}

	// Uninterrupted reference.
	refDir := t.TempDir()
	refClk := NewManualClock()
	refCfg := durableCfg(t, m, refDir, refClk)
	tenantize(&refCfg)
	refEng, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	driveTenantScenario(t, refEng, refClk, m)
	if err := refEng.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	refRep := refEng.FinalReport()
	refRep.UptimeSeconds = 0
	var refFlood TenantReport
	for _, r := range refRep.Tenants {
		if r.ID == "flood" {
			refFlood = r
		}
	}
	if refFlood.Quarantines < 1 || refFlood.ShedInfeasible < 8 || refFlood.Rejected == 0 {
		t.Fatalf("scenario too tame (no quarantine exercised): %+v", refFlood)
	}

	// Crash run: same history, abrupt stop.
	crashDir := t.TempDir()
	crashClk := NewManualClock()
	crashCfg := durableCfg(t, m, crashDir, crashClk)
	tenantize(&crashCfg)
	crashEng, err := New(crashCfg)
	if err != nil {
		t.Fatal(err)
	}
	driveTenantScenario(t, crashEng, crashClk, m)
	crashEng.Close()

	recoverTenant := func(dir string) *FinalReport {
		t.Helper()
		cfg := durableCfg(t, m, dir, NewManualClock())
		tenantize(&cfg)
		eng, perr := Prepare(cfg)
		if perr != nil {
			t.Fatal(perr)
		}
		if _, rerr := eng.RecoverFrom(); rerr != nil {
			t.Fatalf("recover from %s: %v", dir, rerr)
		}
		_ = eng.DrainNow()
		rep := eng.FinalReport()
		rep.UptimeSeconds = 0
		return rep
	}

	// Genesis replay of the full WAL.
	header, records := walLines(t, filepath.Join(crashDir, "wal.1"))
	dirA := t.TempDir()
	writeTruncatedWAL(t, header, records, len(records), filepath.Join(dirA, "wal.1"))
	finA := recoverTenant(dirA)
	if !reflect.DeepEqual(finA, refRep) {
		t.Errorf("genesis recovery diverged from the uninterrupted run:\n recovered: %+v\n reference: %+v", finA.Tenants, refRep.Tenants)
	}

	// Checkpoint + suffix replay.
	dirB := t.TempDir()
	writeTruncatedWAL(t, header, records, len(records), filepath.Join(dirB, "wal.1"))
	cp, err := os.ReadFile(filepath.Join(crashDir, "ckpt.mid"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirB, "ckpt"), cp, 0o644); err != nil {
		t.Fatal(err)
	}
	finB := recoverTenant(dirB)
	if !reflect.DeepEqual(finA, finB) {
		t.Errorf("checkpoint+suffix diverged from genesis:\n genesis: %+v\n ckpt: %+v", finA.Tenants, finB.Tenants)
	}
}
