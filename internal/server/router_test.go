package server

import (
	"context"
	"math"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/workload"
)

// newTestRouter builds an n-shard router over a shared ManualClock and
// starts it with every periodic duty disabled, so tests drive time and
// health transitions explicitly. mut tweaks the base config.
func newTestRouter(t testing.TB, m *workload.Model, n int, mut func(*Config)) (*Router, *ManualClock) {
	t.Helper()
	clk := NewManualClock()
	cfg := Config{
		Model:  m,
		Mapper: testMapper(0),
		Clock:  clk,
		Seed:   42,
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := NewSharded(cfg, n, RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt, clk
}

// syncShards flushes every live shard's event loop at the current virtual
// instant.
func syncShards(rt *Router) {
	for _, sh := range rt.Shards() {
		if !sh.Engine().Killed() {
			sh.Engine().Sync()
		}
	}
}

func TestPartitionNodesCoversCluster(t *testing.T) {
	m := buildModel(t, 7)
	c := m.Cluster
	for n := 1; n <= c.N(); n++ {
		parts := partitionNodes(c, n)
		if len(parts) != n {
			t.Fatalf("n=%d: got %d parts", n, len(parts))
		}
		next := 0
		for i, p := range parts {
			if len(p) == 0 {
				t.Fatalf("n=%d: shard %d owns no nodes", n, i)
			}
			for _, node := range p {
				if node != next {
					t.Fatalf("n=%d shard %d: want contiguous node %d, got %d", n, i, next, node)
				}
				next++
			}
		}
		if next != c.N() {
			t.Fatalf("n=%d: %d of %d nodes owned", n, next, c.N())
		}
	}
}

// TestSubBudgetLedgerExact checks the construction-time carve: sub-budgets
// are proportional to core counts and sum to ζ_max to the bit, with no
// slack parked at the router.
func TestSubBudgetLedgerExact(t *testing.T) {
	m := buildModel(t, 7)
	zeta := idleRate(t, m) * 100 * m.TAvg()
	rt, _ := newTestRouter(t, m, 3, func(c *Config) { c.Budget = zeta })
	var sum float64
	for _, b := range rt.SubBudgets() {
		if !(b > 0) {
			t.Fatalf("non-positive sub-budget %v", b)
		}
		sum += b
	}
	if sum != zeta {
		t.Fatalf("sub-budgets sum %v != ζ_max %v", sum, zeta)
	}
	if s := rt.SlackBudget(); s != 0 {
		t.Fatalf("construction slack %v, want 0", s)
	}
	// Each engine's meter mirrors its ledger entry.
	for i, sh := range rt.Shards() {
		if got, want := sh.Engine().Budget(), rt.SubBudgets()[i]; got != want {
			t.Fatalf("shard %d meter budget %v != ledger %v", i, got, want)
		}
	}
}

// TestRoundRobinDistribution routes a burst through three healthy shards
// and expects an exactly even split: the rotation cursor advances once per
// pick over a stable candidate set.
func TestRoundRobinDistribution(t *testing.T) {
	m := buildModel(t, 3)
	rt, _ := newTestRouter(t, m, 3, nil)
	const perShard = 10
	for i := 0; i < 3*perShard; i++ {
		if _, err := rt.Submit(TaskRequest{Type: i % m.Params.TaskTypes}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for _, sh := range rt.Shards() {
		if got := sh.Engine().Stats().Received; got != perShard {
			t.Fatalf("shard %d received %d, want %d", sh.ID, got, perShard)
		}
	}
}

// TestLeastLoadedChoose exercises the least-loaded policy directly: exact
// load ties break to the lowest shard ID, and a genuinely lighter shard
// wins regardless of position.
func TestLeastLoadedChoose(t *testing.T) {
	cand := func(id, cores, queued int, inflight int64) *ShardCandidate {
		return &ShardCandidate{Shard: &Shard{ID: id, Cores: cores}, QueueLen: queued, InFlight: inflight}
	}
	p := LeastLoadedPlacement{}
	// Identical loads: lowest ID must win, on every permutation-free scan.
	tie := []*ShardCandidate{cand(0, 4, 2, 2), cand(1, 4, 2, 2), cand(2, 4, 2, 2)}
	for i := 0; i < 5; i++ {
		if got := p.Choose(tie).Shard.ID; got != 0 {
			t.Fatalf("tie-break picked shard %d, want 0", got)
		}
	}
	// Shard 2 has half the per-core backlog of the others.
	uneven := []*ShardCandidate{cand(0, 4, 4, 4), cand(1, 4, 4, 4), cand(2, 8, 4, 4)}
	if got := p.Choose(uneven).Shard.ID; got != 2 {
		t.Fatalf("picked shard %d, want least-loaded 2", got)
	}
}

// TestRobustnessAwareChoose checks the headroom/load trade: a lightly
// loaded shard about to exhaust its sub-budget loses to a busier shard
// with energy to spare, and unconstrained candidates tie-break by ID.
func TestRobustnessAwareChoose(t *testing.T) {
	p := RobustnessAwarePlacement{}
	starved := &ShardCandidate{Shard: &Shard{ID: 0, Cores: 4}, QueueLen: 0, Budget: 100, Consumed: 99}
	fed := &ShardCandidate{Shard: &Shard{ID: 1, Cores: 4}, QueueLen: 4, InFlight: 4, Budget: 100, Consumed: 10}
	if got := p.Choose([]*ShardCandidate{starved, fed}).Shard.ID; got != 1 {
		t.Fatalf("picked shard %d, want energy-headroom shard 1", got)
	}
	a := &ShardCandidate{Shard: &Shard{ID: 0, Cores: 4}, Budget: math.Inf(1)}
	b := &ShardCandidate{Shard: &Shard{ID: 1, Cores: 4}, Budget: math.Inf(1)}
	if got := p.Choose([]*ShardCandidate{a, b}).Shard.ID; got != 0 {
		t.Fatalf("unconstrained tie picked shard %d, want 0", got)
	}
}

func TestNewShardedValidation(t *testing.T) {
	m := buildModel(t, 5)
	base := Config{Model: m, Mapper: testMapper(0), Clock: NewManualClock(), Seed: 1}
	if _, err := NewSharded(base, 0, RouterConfig{}); err == nil {
		t.Fatal("want error for 0 shards")
	}
	if _, err := NewSharded(base, m.Cluster.N()+1, RouterConfig{}); err == nil {
		t.Fatal("want error for more shards than nodes")
	}
	bad := base
	bad.Faults.Script = []fault.Scripted{{Time: 1, Kind: fault.Transient, Core: 0}}
	if _, err := NewSharded(bad, 2, RouterConfig{}); err == nil {
		t.Fatal("want error for scripted faults with shards > 1")
	}
	bad = base
	bad.Faults.ShardKills = []fault.ShardKill{{Time: 1, Shard: 2}}
	if _, err := NewSharded(bad, 2, RouterConfig{}); err == nil {
		t.Fatal("want error for shard-kill beyond shard count")
	}
}

// TestKillShardReclaimsBudget kills one of three shards and checks the
// reclamation contract: the dead entry is pinned at its final consumption,
// the freed remainder moves to the survivors' ledgers and meters, and
// Σ ledger + slack ≡ ζ_max is preserved through the transfer.
func TestKillShardReclaimsBudget(t *testing.T) {
	m := buildModel(t, 11)
	zeta := idleRate(t, m) * 200 * m.TAvg()
	rt, clk := newTestRouter(t, m, 3, func(c *Config) { c.Budget = zeta })

	for i := 0; i < 12; i++ {
		if _, err := rt.Submit(TaskRequest{Type: i % m.Params.TaskTypes}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	clk.Advance(m.TAvg() / 2)
	syncShards(rt)

	before := rt.SubBudgets()
	victim := rt.Shards()[1]
	if err := rt.KillShard(1); err != nil {
		t.Fatal(err)
	}
	if victim.Health() != ShardDead || !victim.Engine().Killed() {
		t.Fatal("victim not dead after KillShard")
	}
	if err := rt.KillShard(1); err != nil {
		t.Fatalf("second kill not idempotent: %v", err)
	}

	after := rt.SubBudgets()
	cons := victim.Engine().EnergyConsumed()
	if after[1] != cons {
		t.Fatalf("dead ledger entry %v, want pinned at consumed %v", after[1], cons)
	}
	if !(after[0] > before[0]) || !(after[2] > before[2]) {
		t.Fatalf("survivors did not grow: before %v after %v", before, after)
	}
	sum := rt.SlackBudget()
	for _, b := range after {
		sum += b
	}
	// The reclaim transfer moves real float amounts; allow rounding noise
	// only, not a stranded or invented share.
	if math.Abs(sum-(zeta-(before[1]-cons))-(before[1]-cons)) > 1e-9*zeta {
		t.Fatalf("ledger sum %v + slack drifted from ζ_max %v", sum, zeta)
	}
	if math.Abs(sum-zeta) > 1e-9*zeta {
		t.Fatalf("Σ ledger + slack = %v, want ζ_max %v", sum, zeta)
	}
	// Meters mirror the post-reclaim ledger.
	for i, sh := range rt.Shards() {
		if i == 1 {
			continue
		}
		if got := sh.Engine().Budget(); math.Abs(got-after[i]) > 1e-9*zeta {
			t.Fatalf("shard %d meter %v != ledger %v after reclaim", i, got, after[i])
		}
	}

	// The dead shard is out of the rotation; survivors take everything.
	recBefore := victim.Engine().Stats().Received
	for i := 0; i < 10; i++ {
		if _, err := rt.Submit(TaskRequest{Type: i % m.Params.TaskTypes}); err != nil {
			t.Fatalf("post-kill submit %d: %v", i, err)
		}
	}
	if got := victim.Engine().Stats().Received; got != recBefore {
		t.Fatalf("dead shard received %d new requests", got-recBefore)
	}
}

// TestRouterFailoverAccounting hammers a three-shard router with
// concurrent submitters while one shard is killed mid-burst, then drains
// and audits the merged ledger: every request that got a Decision is
// accounted exactly once (no orphan, no double-decide), and requests
// bounced off the dying shard either landed on a survivor or were shed
// with a retryable reason. Run with -race.
func TestRouterFailoverAccounting(t *testing.T) {
	m := buildModel(t, 13)
	rt, _ := newTestRouter(t, m, 3, func(c *Config) { c.QueueCap = 1024 })

	const (
		workers = 8
		perW    = 50
	)
	var decided, rejected atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				_, err := rt.Submit(TaskRequest{Type: (w + i) % m.Params.TaskTypes})
				if err == nil {
					decided.Add(1)
					continue
				}
				rejected.Add(1)
				rej, ok := err.(*ErrRejected)
				if !ok {
					t.Errorf("worker %d: non-rejection error %v", w, err)
					return
				}
				// The router never leaks a single shard's availability
				// verdict: by the time Submit gives up, every shard was
				// tried.
				if rej.Reason == RejectShardDown {
					t.Errorf("worker %d: shard-down escaped the failover loop", w)
					return
				}
				if i == perW/2 && w == 0 {
					// Ensure the kill below isn't racing an empty router.
					time.Sleep(time.Millisecond)
				}
			}
		}(w)
	}
	// Kill shard 1 mid-burst.
	time.Sleep(2 * time.Millisecond)
	if err := rt.KillShard(1); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rt.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	rep := rt.FinalReport()
	if rep.Orphaned != 0 {
		t.Fatalf("%d task(s) orphaned across failover", rep.Orphaned)
	}
	if !rep.Balanced {
		t.Fatalf("merged ledger unbalanced: %+v", rep.Stats)
	}
	st := rep.Stats
	if got, want := st.Mapped+st.Shed+st.TimedOut, decided.Load(); got != want {
		t.Fatalf("decisions in ledger %d != decisions returned %d (double-decide or loss)", got, want)
	}
	if got, want := st.Received, int64(workers*perW)+rejected.Load()+st.Retries; got < int64(workers*perW) {
		t.Fatalf("received %d < submitted %d (want >= including failover retries, got %d/%d)", got, workers*perW, got, want)
	}
	// Each shard's own ledger balances too — failover must not smear
	// accounting across engines.
	for _, sh := range rt.Shards() {
		s := sh.Engine().Stats()
		if s.Admitted != s.Mapped+s.Shed+s.TimedOut {
			t.Fatalf("shard %d ledger unbalanced: admitted %d != %d+%d+%d",
				sh.ID, s.Admitted, s.Mapped, s.Shed, s.TimedOut)
		}
	}
}

// TestRouterNoShard kills every shard and expects the router-level shed:
// RejectNoShard with a Retry-After, never a panic or a hang.
func TestRouterNoShard(t *testing.T) {
	m := buildModel(t, 17)
	rt, _ := newTestRouter(t, m, 2, nil)
	for i := range rt.Shards() {
		if err := rt.KillShard(i); err != nil {
			t.Fatal(err)
		}
	}
	if rt.Admitting() {
		t.Fatal("router still admitting with every shard dead")
	}
	_, err := rt.Submit(TaskRequest{Type: 0})
	rej, ok := err.(*ErrRejected)
	if !ok || rej.Reason != RejectNoShard {
		t.Fatalf("got %v, want RejectNoShard", err)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("RetryAfter %v, want > 0", rej.RetryAfter)
	}
}

// TestShardsOneIdentity drives the same deterministic scenario through a
// plain engine and a one-shard router and expects identical decisions and
// identical final accounting — the identity the shards=1 flight-trace gate
// in verify.sh asserts end to end.
func TestShardsOneIdentity(t *testing.T) {
	m := buildModel(t, 23)
	zeta := idleRate(t, m) * 300 * m.TAvg()

	type step struct {
		d   Decision
		err string
	}
	drive := func(submit func(TaskRequest) (Decision, error), advance func(float64), sync func()) []step {
		var steps []step
		for i := 0; i < 20; i++ {
			d, err := submit(TaskRequest{Type: i % m.Params.TaskTypes})
			d.QueueWait = 0 // wall-clock noise, excluded from identity
			s := step{d: d}
			if err != nil {
				s.err = err.Error()
			}
			steps = append(steps, s)
			if i%4 == 3 {
				advance(m.TAvg() / 3)
				sync()
			}
		}
		advance(4 * m.TAvg())
		sync()
		return steps
	}

	eng, clkA := newTestEngine(t, m, func(c *Config) { c.Budget = zeta })
	ref := drive(eng.Submit, clkA.Advance, eng.Sync)

	rt, clkB := newTestRouter(t, m, 1, func(c *Config) { c.Budget = zeta })
	got := drive(rt.Submit, clkB.Advance, func() { syncShards(rt) })

	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("decision streams diverge:\n engine: %+v\n router: %+v", ref, got)
	}
	es, rs := eng.Stats(), rt.Stats()
	if !reflect.DeepEqual(es, rs) {
		t.Fatalf("stats diverge:\n engine: %+v\n router: %+v", es, rs)
	}
	sh := rt.Shards()[0]
	if sh.Engine().Budget() != eng.Budget() {
		t.Fatalf("budget diverges: %v vs %v", sh.Engine().Budget(), eng.Budget())
	}
	if len(sh.Nodes) != m.Cluster.N() {
		t.Fatalf("one-shard router owns %d of %d nodes", len(sh.Nodes), m.Cluster.N())
	}
}

// TestShardedRecoveryDeterminism is the multi-shard recovery contract: a
// three-shard durable router crashes abruptly mid-stream, then two
// independent recover + deterministic-drain passes over the surviving
// per-shard WALs must produce bit-identical final reports — the in-process
// version of verify.sh's sharded replay gate.
func TestShardedRecoveryDeterminism(t *testing.T) {
	m := buildModel(t, 31)
	dir := t.TempDir()
	zeta := idleRate(t, m) * 400 * m.TAvg()
	base := func() Config {
		return Config{
			Model:          m,
			Mapper:         testMapper(0),
			Clock:          NewManualClock(),
			Seed:           42,
			Budget:         zeta,
			WALPath:        filepath.Join(dir, "wal"),
			CheckpointPath: filepath.Join(dir, "ckpt"),
		}
	}

	// Crash run: serve a deterministic burst, checkpoint one shard
	// mid-stream (exercising the checkpoint + WAL-suffix replay path for
	// that shard against genesis replay for the others), then stop
	// abruptly without draining.
	cfg := base()
	clk := cfg.Clock.(*ManualClock)
	rt, err := NewSharded(cfg, 3, RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 18; i++ {
		if _, err := rt.Submit(TaskRequest{Type: i % m.Params.TaskTypes}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if i%5 == 4 {
			clk.Advance(m.TAvg() / 4)
			syncShards(rt)
		}
	}
	if err := rt.Shards()[1].Engine().CheckpointNow(); err != nil {
		t.Fatalf("checkpoint shard 1: %v", err)
	}
	for i := 0; i < 6; i++ {
		if _, err := rt.Submit(TaskRequest{Type: (i + 3) % m.Params.TaskTypes}); err != nil {
			t.Fatalf("late submit %d: %v", i, err)
		}
	}
	clk.Advance(m.TAvg() / 2)
	syncShards(rt)
	rt.Close() // crash: loops stop, per-shard WALs survive

	recoverDrain := func() *FinalReport {
		t.Helper()
		rrt, err := NewSharded(base(), 3, RouterConfig{})
		if err != nil {
			t.Fatal(err)
		}
		reps, err := rrt.RecoverAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(reps) != 3 {
			t.Fatalf("recovered %d shard(s), want 3", len(reps))
		}
		if err := rrt.DrainAllNow(); err != nil {
			t.Fatalf("drain-all-now: %v", err)
		}
		rep := rrt.FinalReport()
		rep.UptimeSeconds = 0
		return rep
	}

	first := recoverDrain()
	second := recoverDrain()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("sharded recovery diverges across replays:\n first: %+v\n second: %+v", first, second)
	}
	if first.Orphaned != 0 {
		t.Fatalf("%d task(s) orphaned across crash recovery", first.Orphaned)
	}
	if !first.Balanced {
		t.Fatalf("recovered merged ledger unbalanced: %+v", first.Stats)
	}
	if !math.IsInf(rtTotal(first), 1) && first.Stats.EnergyConsumed > zeta+1e-9 {
		t.Fatalf("recovered consumption %v exceeds ζ_max %v", first.Stats.EnergyConsumed, zeta)
	}
}

// rtTotal extracts the report's budget or +Inf when unconstrained.
func rtTotal(r *FinalReport) float64 {
	if r.Stats.EnergyBudget == 0 {
		return math.Inf(1)
	}
	return r.Stats.EnergyBudget
}

// BenchmarkServeAdmit measures end-to-end admission throughput (Submit →
// decision) with parallel clients against 1 vs 4 shards. The sharded
// configuration must scale: each shard decides on its own loop goroutine.
func BenchmarkServeAdmit(b *testing.B) {
	m := buildModel(b, 29)
	for _, shards := range []int{1, 4} {
		b.Run(map[int]string{1: "shards=1", 4: "shards=4"}[shards], func(b *testing.B) {
			cfg := Config{
				Model:     m,
				Mapper:    testMapper(0),
				Seed:      42,
				TimeScale: 1e6, // virtual time flies: completions retire quickly
				QueueCap:  4096,
			}
			rt, err := NewSharded(cfg, shards, RouterConfig{})
			if err != nil {
				b.Fatal(err)
			}
			if err := rt.Start(); err != nil {
				b.Fatal(err)
			}
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(seq.Add(1))
					if _, err := rt.Submit(TaskRequest{Type: i % m.Params.TaskTypes}); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			rt.Close()
		})
	}
}
