package server

// Engine checkpoints (eccheck/v1). A checkpoint is a full snapshot of the
// engine's recoverable state — queues, in-flight tasks, requeue slots,
// breaker automata, fault-process schedule, RNG stream states, the energy
// meter, and the terminal counters — written atomically (temp file in the
// same directory, fsync, rename; the same discipline as
// internal/experiment.Journal). Recovery is checkpoint + WAL-suffix replay:
// the checkpoint names its WAL incarnation and how many records of it the
// snapshot already covers, and replay applies only the records after that
// cut.
//
// Deliberately absent:
//   - the brownout stage: Brownout.Update is a pure monotone function of
//     consumed/budget, so recovery re-derives it from the restored meter;
//   - received/admitted/inflight counters: derived (admitted = Decided +
//     replayed admits, received = admitted + rejected, inflight = queue
//     occupancy + requeue slots);
//   - event-heap contents: rebuilt canonically from queue heads (their
//     completion times are startAt + actual), repairAt, requeue fire times,
//     and the fault-process schedule (NextTransient/NextPermanent/
//     ScriptFired).

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/energy"
	"repro/internal/workload"
)

// ckptFormat is the checkpoint format tag.
const ckptFormat = "eccheck/v1"

// ckptTask is a serialized workload.Task. Tn/Cls are omitempty: a
// pre-tenancy checkpoint decodes them to their zero values (untagged,
// bronze), the same incarnation-compatibility rule as the WAL grammar.
type ckptTask struct {
	ID  int     `json:"id"`
	Ty  int     `json:"ty"`
	Arr float64 `json:"ar"`
	DL  float64 `json:"dl"`
	U   float64 `json:"u"`
	Pri float64 `json:"pr"`
	Tn  string  `json:"tn,omitempty"`
	Cls int     `json:"cls,omitempty"`
}

func toCkptTask(t workload.Task) ckptTask {
	return ckptTask{ID: t.ID, Ty: t.Type, Arr: t.Arrival, DL: t.Deadline, U: t.U, Pri: t.Priority,
		Tn: t.Tenant, Cls: int(t.Class)}
}

func (c ckptTask) task() workload.Task {
	return workload.Task{ID: c.ID, Type: c.Ty, Arrival: c.Arr, Deadline: c.DL, U: c.U, Priority: c.Pri,
		Tenant: c.Tn, Class: workload.SLOClass(c.Cls)}
}

// ckptQueued is one core-queue entry.
type ckptQueued struct {
	Task    ckptTask `json:"task"`
	PS      int      `json:"ps"`
	Act     float64  `json:"act"`
	Att     int      `json:"att"`
	Started bool     `json:"started"`
	StartAt float64  `json:"startAt"`
}

// ckptRequeue is one pending retry slot.
type ckptRequeue struct {
	Slot   int      `json:"slot"`
	Task   ckptTask `json:"task"`
	Att    int      `json:"att"`
	FireAt float64  `json:"fireAt"`
}

// ckptBreaker is one node's breaker automaton.
type ckptBreaker struct {
	State   int     `json:"state"`
	Strikes int     `json:"strikes"`
	Until   float64 `json:"until"`
	Probing bool    `json:"probing"`
	Dead    bool    `json:"dead"`
}

// ckptCounters are the terminal-accounting bases the replayed suffix adds
// onto. Rejected is taken at the WAL cut (under the append mutex), so the
// identity rejected == base + suffix-reject-records is exact.
type ckptCounters struct {
	Rejected     int64    `json:"rejected"`
	Mapped       int64    `json:"mapped"`
	Shed         int64    `json:"shed"`
	TimedOut     int64    `json:"timedOut"`
	OnTime       int64    `json:"onTime"`
	Late         int64    `json:"late"`
	Failed       int64    `json:"failed"`
	Faults       int64    `json:"faults"`
	Retries      int64    `json:"retries"`
	Assigned     int64    `json:"assigned"`
	BrkOpens     int64    `json:"breakerOpens"`
	ShedByReason [4]int64 `json:"shedByReason"`
}

// ckptTenant is one tracked tenant's slice of the snapshot: terminal
// counters, the abuse-detector window, the quarantine automaton, and the
// token bucket. Admitted is the *decided* count (mapped+shed+timedout at
// the cut) for the same reason the global admitted counter restores from
// Decided: submissions still in the admission channel die unacknowledged
// with the process and must not be in the ledger. Rejected comes from the
// WAL's per-tenant reject ledger at the cut, so checkpoint+suffix replay
// is exact per tenant too. The probing flag is deliberately absent: an
// in-flight half-open probe dies with the process, and restoring
// probing=false lets the recovered tenant re-probe.
type ckptTenant struct {
	ID       string `json:"id"`
	Cls      int    `json:"cls"`
	Other    bool   `json:"other,omitempty"` // the shared overflow bucket
	Admitted int64  `json:"admitted"`
	Rejected int64  `json:"rejected"`
	Mapped   int64  `json:"mapped"`
	Shed     int64  `json:"shed"`
	ShedInf  int64  `json:"shedInfeasible"`
	TimedOut int64  `json:"timedOut"`
	OnTime   int64  `json:"onTime"`
	Late     int64  `json:"late"`
	Failed   int64  `json:"failed"`
	Quars    int64  `json:"quarantines"`

	WinBits   uint64  `json:"winBits,omitempty"`
	WinPos    int     `json:"winPos,omitempty"`
	WinN      int     `json:"winN,omitempty"`
	WinBad    int     `json:"winBad,omitempty"`
	QuarUntil float64 `json:"quarUntil,omitempty"`

	Tokens     float64 `json:"tokens"`
	LastRefill float64 `json:"lastRefill"`
}

// checkpoint is the eccheck/v1 document.
type checkpoint struct {
	Format      string `json:"format"`
	ModelHash   string `json:"modelHash"`
	Seed        uint64 `json:"seed"`
	Policy      string `json:"policy"`
	Incarnation uint64 `json:"incarnation"`
	// WALRecords is the replay cut: records [0, WALRecords) of the named
	// incarnation are already inside this snapshot.
	WALRecords uint64 `json:"walRecords"`

	VirtualNow float64           `json:"virtualNow"`
	Meter      energy.MeterState `json:"meter"`
	Counters   ckptCounters      `json:"counters"`
	// Decided counts decide() outcomes (== admit records written); the
	// restored admitted counter starts here, which keeps submissions that
	// were in the admission channel but never decided — lost with the
	// process, unacknowledged — out of the ledger.
	Decided int64 `json:"decided"`
	NextID  int   `json:"nextID"`
	ReqSeq  int   `json:"reqSeq"`

	Queues   [][]ckptQueued `json:"queues"`
	Requeues []ckptRequeue  `json:"requeues"`
	Down     []bool         `json:"down"`
	RepairAt []float64      `json:"repairAt"`
	Alive    []bool         `json:"alive"`

	Breakers     []ckptBreaker `json:"breakers,omitempty"`
	BreakerOpens int           `json:"breakerTrips"`

	// Tenants is the multi-tenant slice of the snapshot; absent for
	// single-tenant serving, so pre-tenancy checkpoints load unchanged.
	Tenants []ckptTenant `json:"tenants,omitempty"`

	Halted bool `json:"halted"`

	// Fault-process schedule: absolute next firing per stochastic source
	// (0 = none pending) and which scripted entries have fired.
	NextTransient float64 `json:"nextTransient"`
	NextPermanent float64 `json:"nextPermanent"`
	ScriptFired   []bool  `json:"scriptFired,omitempty"`

	// Hex-encoded PCG states of the engine's five RNG streams.
	RandDecisions string `json:"randDecisions"`
	RandTransient string `json:"randTransient"`
	RandPermanent string `json:"randPermanent"`
	RandTarget    string `json:"randTarget"`
	RandQuant     string `json:"randQuantiles"`
}

// snapshotCheckpoint captures the engine's state. Runs on the engine
// goroutine (or pre-Start during recovery); cut is the WAL record count the
// snapshot covers, rejects the reject-record count at that cut, and
// tnRejects the per-tenant slice of those reject records.
func (e *Engine) snapshotCheckpoint(cut, rejects uint64, tnRejects map[string]uint64) *checkpoint {
	ck := &checkpoint{
		Format:      ckptFormat,
		ModelHash:   e.model.Hash(),
		Seed:        e.cfg.Seed,
		Policy:      e.cfg.Mapper.Name(),
		Incarnation: e.incarnation,
		WALRecords:  cut,
		VirtualNow:  math.Float64frombits(e.virtualAt.Load()),
		Meter:       e.meter.State(),
		Counters: ckptCounters{
			Rejected: int64(rejects) + e.rejectedBase,
			Mapped:   e.st.mapped.Load(),
			Shed:     e.st.shed.Load(),
			TimedOut: e.st.timedout.Load(),
			OnTime:   e.st.onTime.Load(),
			Late:     e.st.late.Load(),
			Failed:   e.st.failed.Load(),
			Faults:   e.st.faults.Load(),
			Retries:  e.st.retries.Load(),
			Assigned: e.st.assigned.Load(),
			BrkOpens: e.st.brkOpens.Load(),
		},
		Decided:       e.decided,
		NextID:        e.nextID,
		ReqSeq:        e.reqSeq,
		Down:          append([]bool(nil), e.down...),
		RepairAt:      append([]float64(nil), e.repairAt...),
		Alive:         append([]bool(nil), e.alive...),
		Halted:        e.halted.Load(),
		NextTransient: e.nextTransient,
		NextPermanent: e.nextPermanent,
		ScriptFired:   append([]bool(nil), e.scriptFired...),
		RandDecisions: hexState(e.rand.State()),
		RandTransient: hexState(e.transientRng.State()),
		RandPermanent: hexState(e.permanentRng.State()),
		RandTarget:    hexState(e.targetRng.State()),
		RandQuant:     hexState(e.quantRn.State()),
	}
	for i := range ck.Counters.ShedByReason {
		ck.Counters.ShedByReason[i] = e.st.shedByRsn[i].Load()
	}
	ck.Queues = make([][]ckptQueued, len(e.queues))
	for idx, q := range e.queues {
		if len(q) == 0 {
			continue
		}
		ck.Queues[idx] = make([]ckptQueued, len(q))
		for i, ent := range q {
			ck.Queues[idx][i] = ckptQueued{
				Task: toCkptTask(ent.task), PS: int(ent.pstate), Act: ent.actual,
				Att: ent.attempts, Started: ent.started, StartAt: ent.startAt,
			}
		}
	}
	for slot, r := range e.requeues {
		ck.Requeues = append(ck.Requeues, ckptRequeue{
			Slot: slot, Task: toCkptTask(r.task), Att: r.attempts, FireAt: r.fireAt,
		})
	}
	sortRequeues(ck.Requeues)
	if e.brk != nil {
		ck.Breakers = make([]ckptBreaker, len(e.brk.nodes))
		for n := range e.brk.nodes {
			nb := &e.brk.nodes[n]
			ck.Breakers[n] = ckptBreaker{
				State: int(nb.state), Strikes: nb.strikes, Until: nb.openUntil,
				Probing: nb.probing, Dead: nb.dead,
			}
		}
		ck.BreakerOpens = e.brk.opens
	}
	ck.Tenants = e.snapshotTenants(tnRejects)
	return ck
}

// snapshotTenants serializes every tracked tenant (plus the overflow bucket
// when it saw traffic). The per-tenant reject base folds in tnRejects — ids
// past the cardinality cap are not in the tenant table and coalesce into
// the overflow row, mirroring where their live counters went.
func (e *Engine) snapshotTenants(tnRejects map[string]uint64) []ckptTenant {
	states := e.tenants.states()
	if len(states) == 0 {
		return nil
	}
	tracked := make(map[string]bool, len(states))
	for _, ts := range states {
		if ts != e.tenants.other {
			tracked[ts.id] = true
		}
	}
	var overflowRejects int64
	for id, n := range tnRejects {
		if !tracked[id] {
			overflowRejects += int64(n)
		}
	}
	out := make([]ckptTenant, 0, len(states))
	for _, ts := range states {
		row := ckptTenant{
			ID:       ts.id,
			Cls:      int(ts.class),
			Other:    ts == e.tenants.other,
			Admitted: ts.mapped.Load() + ts.shed.Load() + ts.timedout.Load(),
			Rejected: ts.rejectedBase,
			Mapped:   ts.mapped.Load(),
			Shed:     ts.shed.Load(),
			ShedInf:  ts.shedInfeasible.Load(),
			TimedOut: ts.timedout.Load(),
			OnTime:   ts.onTime.Load(),
			Late:     ts.late.Load(),
			Failed:   ts.failed.Load(),
			Quars:    ts.quarantines.Load(),

			WinBits:   ts.winBits,
			WinPos:    ts.winPos,
			WinN:      ts.winN,
			WinBad:    ts.winBad,
			QuarUntil: math.Float64frombits(ts.quarUntil.Load()),
		}
		if ts == e.tenants.other {
			row.Rejected += overflowRejects
		} else {
			row.Rejected += int64(tnRejects[ts.id])
		}
		ts.mu.Lock()
		row.Tokens, row.LastRefill = ts.tokens, ts.lastRefill
		ts.mu.Unlock()
		out = append(out, row)
	}
	return out
}

// sortRequeues orders slots ascending for a deterministic document.
func sortRequeues(rs []ckptRequeue) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Slot < rs[j-1].Slot; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// writeCheckpoint persists the document atomically: temp file in the same
// directory, fsync, rename.
func writeCheckpoint(path string, ck *checkpoint) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("server: checkpoint encode: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("server: checkpoint persist: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("server: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("server: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("server: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("server: checkpoint rename: %w", err)
	}
	return nil
}

// loadCheckpoint reads and validates a checkpoint document. A missing file
// returns (nil, nil): recovery then replays the genesis WAL from scratch.
func loadCheckpoint(path string) (*checkpoint, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: open checkpoint: %w", err)
	}
	var ck checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("server: checkpoint %s: %w", path, err)
	}
	if ck.Format != ckptFormat {
		return nil, fmt.Errorf("server: checkpoint %s: format %q, want %q", path, ck.Format, ckptFormat)
	}
	return &ck, nil
}
