package server

// Live fault injection for the serving engine, mirroring internal/sim's
// mechanics: a failure kills whatever the stricken core is doing (the
// energy is already spent), the run-generation counter invalidates its
// pending completion event, and stranded tasks go through the recovery
// policy. On top of the simulator's behavior the serving path feeds every
// strike into the per-node circuit breakers, so mapping routes around
// flapping nodes instead of rediscovering them the hard way.

import (
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/robustness"
	"repro/internal/workload"
)

// NumCores implements sched.SystemView.
func (e *Engine) NumCores() int { return len(e.cores) }

// CoreID implements sched.SystemView.
func (e *Engine) CoreID(idx int) cluster.CoreID { return e.cores[idx] }

// Queue implements sched.SystemView: a snapshot of the core's occupancy,
// built into a reusable per-core buffer (snapshots are decision-scoped).
func (e *Engine) Queue(idx int) robustness.CoreQueue {
	q := e.queues[idx]
	out := robustness.CoreQueue{Node: e.cores[idx].Node}
	if len(q) == 0 {
		return out
	}
	if cap(e.qbuf[idx]) < len(q) {
		e.qbuf[idx] = make([]robustness.QueuedTask, len(q))
	}
	out.Tasks = e.qbuf[idx][:len(q)]
	for i, t := range q {
		out.Tasks[i] = robustness.QueuedTask{
			Type:     t.task.Type,
			PState:   t.pstate,
			Deadline: t.task.Deadline,
			Started:  t.started,
			StartAt:  t.startAt,
		}
	}
	return out
}

// scheduleFaults seeds the event heap with the first firing of each
// enabled stochastic process and every scripted entry, mirroring the
// absolute firing times into the checkpointable schedule fields.
func (e *Engine) scheduleFaults() {
	spec := &e.cfg.Faults
	if spec.Transient.Enabled {
		e.nextTransient = spec.Transient.Sample(e.transientRng)
		e.push(event{time: e.nextTransient, kind: evFault, idx: srcTransient})
	}
	if spec.Permanent.Enabled {
		e.nextPermanent = spec.Permanent.Sample(e.permanentRng)
		e.push(event{time: e.nextPermanent, kind: evFault, idx: srcPermanent})
	}
	for i, sf := range spec.Script {
		e.push(event{time: sf.Time, kind: evFault, idx: srcScript + i})
	}
}

// handleFault fires one failure source at virtual time now: picks the
// victim (stochastic sources), injects it, and reschedules the process.
// The closing fsched record carries the post-draw process stream states and
// the absolute next firing, so replay reschedules without re-drawing.
func (e *Engine) handleFault(now float64, src int) {
	spec := &e.cfg.Faults
	switch src {
	case srcTransient:
		if idx, ok := e.pickUpCore(); ok {
			e.injectFault(now, fault.Transient, idx, -1, spec.RepairTime)
		}
		e.nextTransient = 0
		if !e.allNodesDead() {
			e.nextTransient = now + spec.Transient.Sample(e.transientRng)
			e.push(event{time: e.nextTransient, kind: evFault, idx: srcTransient})
		}
		if e.walOn() {
			e.walAppend(&walRecord{K: wkFsched, T: now, Src: "transient", NX: e.nextTransient,
				TRS: hexState(e.transientRng.State()), TGS: hexState(e.targetRng.State())})
		}
	case srcPermanent:
		if node, ok := e.pickAliveNode(); ok {
			e.injectFault(now, fault.Permanent, -1, node, 0)
		}
		e.nextPermanent = 0
		if !e.allNodesDead() {
			e.nextPermanent = now + spec.Permanent.Sample(e.permanentRng)
			e.push(event{time: e.nextPermanent, kind: evFault, idx: srcPermanent})
		}
		if e.walOn() {
			e.walAppend(&walRecord{K: wkFsched, T: now, Src: "permanent", NX: e.nextPermanent,
				PRS: hexState(e.permanentRng.State()), TGS: hexState(e.targetRng.State())})
		}
	default:
		i := src - srcScript
		sf := spec.Script[i]
		if sf.Kind == fault.Permanent {
			e.injectFault(now, fault.Permanent, -1, sf.Node, 0)
		} else {
			repair := sf.Repair
			if repair <= 0 {
				repair = spec.RepairTime
			}
			e.injectFault(now, fault.Transient, sf.Core, -1, repair)
		}
		e.scriptFired[i] = true
		e.walAppend(&walRecord{K: wkFsched, T: now, Src: "script", SI: i})
	}
}

// pickUpCore selects a victim uniformly among up cores; no draw is
// consumed when every core is already down.
func (e *Engine) pickUpCore() (int, bool) {
	up := 0
	for _, d := range e.down {
		if !d {
			up++
		}
	}
	if up == 0 {
		return 0, false
	}
	n := e.targetRng.IntN(up)
	for idx, d := range e.down {
		if d {
			continue
		}
		if n == 0 {
			return idx, true
		}
		n--
	}
	return 0, false // unreachable
}

// pickAliveNode selects a victim uniformly among alive nodes.
func (e *Engine) pickAliveNode() (int, bool) {
	alive := 0
	for _, d := range e.alive {
		if d {
			alive++
		}
	}
	if alive == 0 {
		return 0, false
	}
	n := e.targetRng.IntN(alive)
	for node, up := range e.alive {
		if !up {
			continue
		}
		if n == 0 {
			return node, true
		}
		n--
	}
	return 0, false // unreachable
}

func (e *Engine) allNodesDead() bool {
	for _, up := range e.alive {
		if up {
			return false
		}
	}
	return true
}

// injectFault applies one failure and feeds the circuit breaker. The fault
// record goes to the WAL before any mutation — with the applied flag, the
// absolute repair time, and the post-draw target stream state — so replay
// applies the same strike to the same victim without re-drawing.
func (e *Engine) injectFault(now float64, kind fault.Kind, coreIdx, node int, repair float64) {
	e.st.faults.Add(1)
	e.met.faults.Inc()
	if kind == fault.Permanent {
		applied := e.alive[node]
		if e.walOn() {
			e.walAppend(&walRecord{K: wkFault, T: now, Src: "permanent", Core: -1, Node: node,
				AP: applied, TGS: hexState(e.targetRng.State())})
		}
		if !applied {
			// A scripted strike on an already-dead node: counted, no effect.
			return
		}
		e.alive[node] = false
		e.tripBreaker(node, now, true)
		for idx, id := range e.cores {
			if id.Node == node {
				e.downCore(now, kind, idx, 0)
			}
		}
		return
	}
	applied := !e.down[coreIdx]
	rp := 0.0
	if applied {
		rp = now + repair
	}
	if e.walOn() {
		e.walAppend(&walRecord{K: wkFault, T: now, Src: "transient", Core: coreIdx,
			Node: e.cores[coreIdx].Node, AP: applied, RP: rp, TGS: hexState(e.targetRng.State())})
	}
	e.tripBreaker(e.cores[coreIdx].Node, now, false)
	e.downCore(now, kind, coreIdx, repair)
}

// tripBreaker records a strike, publishes any open transition, and logs the
// automaton's new state.
func (e *Engine) tripBreaker(node int, now float64, permanent bool) {
	if e.brk == nil {
		return
	}
	snap := e.brkSnap()
	before := e.brk.opens
	e.brk.onFault(node, now, permanent)
	if d := e.brk.opens - before; d > 0 {
		e.st.brkOpens.Add(int64(d))
		e.met.breakerOpens.Inc()
	}
	e.walBreakerDiff(now, snap)
}

// downCore takes one core down: kills its queue, hands stranded tasks to
// recovery, zeroes its draw, and (transient only) schedules the repair.
func (e *Engine) downCore(now float64, kind fault.Kind, coreIdx int, repair float64) {
	if e.down[coreIdx] {
		return
	}
	e.down[coreIdx] = true
	e.runGen[coreIdx]++ // pending completion (if any) is now stale
	if e.fobs != nil {
		e.fobs.CoreFailed(now, e.cores[coreIdx], kind, repair)
	}
	q := e.queues[coreIdx]
	e.queues[coreIdx] = nil
	e.ftc.Invalidate(coreIdx)
	if len(q) > 0 {
		e.inSystem -= len(q)
		for i := range q {
			if e.fobs != nil {
				e.fobs.TaskKilled(now, q[i].task, e.cores[coreIdx])
			}
			e.walAppend(&walRecord{K: wkKill, T: now, ID: q[i].task.ID, Core: coreIdx, Att: q[i].attempts})
			e.recoverTask(now, q[i].task, q[i].attempts)
		}
		e.updInflight()
	}
	e.meter.SetPower(coreIdx, 0)
	if kind == fault.Transient {
		e.repairAt[coreIdx] = now + repair
		e.push(event{time: now + repair, kind: evRepair, idx: coreIdx})
	}
}

// handleRepair brings a transiently-failed core back at the idle P-state.
func (e *Engine) handleRepair(now float64, coreIdx int) {
	if !e.down[coreIdx] {
		return
	}
	if !e.alive[e.cores[coreIdx].Node] {
		// The node died permanently while this core's repair was pending;
		// the repair must not resurrect it.
		e.repairAt[coreIdx] = 0
		e.walAppend(&walRecord{K: wkRepair, T: now, Core: coreIdx, AP: false})
		return
	}
	e.repairAt[coreIdx] = 0
	e.down[coreIdx] = false
	e.meter.ClearPower(coreIdx)
	e.setPState(now, coreIdx, e.cfg.IdlePState)
	e.walAppend(&walRecord{K: wkRepair, T: now, Core: coreIdx, AP: true})
	if e.fobs != nil {
		e.fobs.CoreRepaired(now, e.cores[coreIdx])
	}
}

// recoverTask routes one stranded task through the recovery policy. used
// is the retry count the task has already consumed. Deterministic given
// (now, task, used): no randomness is consumed, which is what lets recovery
// re-run it for dangling kills whose disposition was lost to a torn tail.
func (e *Engine) recoverTask(now float64, task workload.Task, used int) {
	rec := e.cfg.Faults.Recovery
	if rec.Mode != fault.Requeue || used >= rec.MaxRetries {
		e.walFailRec(now, task.ID, FailFault)
		e.fail(task, FailFault)
		return
	}
	if rec.DeadlineAware && task.Deadline <= now {
		// Already late: a retry can only burn energy on a missed deadline.
		e.walFailRec(now, task.ID, FailFault)
		e.fail(task, FailFault)
		return
	}
	delay := rec.Backoff * float64(used+1)
	if rec.DeadlineAware {
		if slack := task.Deadline - now; delay > slack/2 {
			delay = slack / 2
		}
	}
	if e.fobs != nil {
		e.fobs.TaskRequeued(now, task, used+1)
	}
	slot := e.reqSeq
	e.reqSeq++
	fireAt := now + delay
	e.requeues[slot] = requeueEntry{task: task, attempts: used + 1, fireAt: fireAt}
	if e.walOn() {
		e.walAppend(&walRecord{K: wkRequeue, T: now,
			ID: task.ID, Ty: task.Type, Arr: task.Arrival, DL: task.Deadline,
			U: task.U, Pri: task.Priority,
			Slot: slot, Att: used + 1, FT: fireAt,
			DS: hexState(e.rand.State())})
	}
	e.push(event{time: fireAt, kind: evRequeue, idx: slot})
}

// walFailRec logs one stranded task lost for good. The decision stream
// state rides along because the fail may follow a remap attempt that
// consumed heuristic draws without producing a map record.
func (e *Engine) walFailRec(now float64, id int, reason string) {
	if !e.walOn() {
		return
	}
	e.walAppend(&walRecord{K: wkFail, T: now, ID: id, Rsn: reason, DS: hexState(e.rand.State())})
}

// handleRequeue re-dispatches a previously-stranded task through the full
// mapping pipeline; a retry that fails admission goes back through
// recovery, consuming another attempt, until the bound is hit.
func (e *Engine) handleRequeue(now float64, slot int) {
	entry, ok := e.requeues[slot]
	if !ok {
		return
	}
	delete(e.requeues, slot)
	e.st.retries.Add(1)
	e.met.retries.Inc()
	e.walAppend(&walRecord{K: wkRetry, T: now, Slot: slot, ID: entry.task.ID})
	snap := e.brkSnap()
	chosen := e.mapTask(now, entry.task, nil)
	if chosen == nil {
		e.recoverTask(now, entry.task, entry.attempts)
		e.walBreakerDiff(now, snap)
		e.updInflight()
		return
	}
	e.place(now, entry.task, chosen, entry.attempts)
	e.walBreakerDiff(now, snap)
}
