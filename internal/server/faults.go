package server

// Live fault injection for the serving engine, mirroring internal/sim's
// mechanics: a failure kills whatever the stricken core is doing (the
// energy is already spent), the run-generation counter invalidates its
// pending completion event, and stranded tasks go through the recovery
// policy. On top of the simulator's behavior the serving path feeds every
// strike into the per-node circuit breakers, so mapping routes around
// flapping nodes instead of rediscovering them the hard way.

import (
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/robustness"
	"repro/internal/workload"
)

// NumCores implements sched.SystemView.
func (e *Engine) NumCores() int { return len(e.cores) }

// CoreID implements sched.SystemView.
func (e *Engine) CoreID(idx int) cluster.CoreID { return e.cores[idx] }

// Queue implements sched.SystemView.
func (e *Engine) Queue(idx int) robustness.CoreQueue {
	q := e.queues[idx]
	out := robustness.CoreQueue{Node: e.cores[idx].Node}
	if len(q) == 0 {
		return out
	}
	out.Tasks = make([]robustness.QueuedTask, len(q))
	for i, t := range q {
		out.Tasks[i] = robustness.QueuedTask{
			Type:     t.task.Type,
			PState:   t.pstate,
			Deadline: t.task.Deadline,
			Started:  t.started,
			StartAt:  t.startAt,
		}
	}
	return out
}

// scheduleFaults seeds the event heap with the first firing of each
// enabled stochastic process and every scripted entry.
func (e *Engine) scheduleFaults() {
	spec := &e.cfg.Faults
	if spec.Transient.Enabled {
		e.push(event{time: spec.Transient.Sample(e.transientRng), kind: evFault, idx: srcTransient})
	}
	if spec.Permanent.Enabled {
		e.push(event{time: spec.Permanent.Sample(e.permanentRng), kind: evFault, idx: srcPermanent})
	}
	for i, sf := range spec.Script {
		e.push(event{time: sf.Time, kind: evFault, idx: srcScript + i})
	}
}

// handleFault fires one failure source at virtual time now: picks the
// victim (stochastic sources), injects it, and reschedules the process.
func (e *Engine) handleFault(now float64, src int) {
	spec := &e.cfg.Faults
	switch src {
	case srcTransient:
		if idx, ok := e.pickUpCore(); ok {
			e.injectFault(now, fault.Transient, idx, -1, spec.RepairTime)
		}
		if !e.allNodesDead() {
			e.push(event{time: now + spec.Transient.Sample(e.transientRng), kind: evFault, idx: srcTransient})
		}
	case srcPermanent:
		if node, ok := e.pickAliveNode(); ok {
			e.injectFault(now, fault.Permanent, -1, node, 0)
		}
		if !e.allNodesDead() {
			e.push(event{time: now + spec.Permanent.Sample(e.permanentRng), kind: evFault, idx: srcPermanent})
		}
	default:
		sf := spec.Script[src-srcScript]
		if sf.Kind == fault.Permanent {
			e.injectFault(now, fault.Permanent, -1, sf.Node, 0)
		} else {
			repair := sf.Repair
			if repair <= 0 {
				repair = spec.RepairTime
			}
			e.injectFault(now, fault.Transient, sf.Core, -1, repair)
		}
	}
}

// pickUpCore selects a victim uniformly among up cores; no draw is
// consumed when every core is already down.
func (e *Engine) pickUpCore() (int, bool) {
	up := 0
	for _, d := range e.down {
		if !d {
			up++
		}
	}
	if up == 0 {
		return 0, false
	}
	n := e.targetRng.IntN(up)
	for idx, d := range e.down {
		if d {
			continue
		}
		if n == 0 {
			return idx, true
		}
		n--
	}
	return 0, false // unreachable
}

// pickAliveNode selects a victim uniformly among alive nodes.
func (e *Engine) pickAliveNode() (int, bool) {
	alive := 0
	for _, d := range e.alive {
		if d {
			alive++
		}
	}
	if alive == 0 {
		return 0, false
	}
	n := e.targetRng.IntN(alive)
	for node, up := range e.alive {
		if !up {
			continue
		}
		if n == 0 {
			return node, true
		}
		n--
	}
	return 0, false // unreachable
}

func (e *Engine) allNodesDead() bool {
	for _, up := range e.alive {
		if up {
			return false
		}
	}
	return true
}

// injectFault applies one failure and feeds the circuit breaker.
func (e *Engine) injectFault(now float64, kind fault.Kind, coreIdx, node int, repair float64) {
	e.st.faults.Add(1)
	e.met.faults.Inc()
	if kind == fault.Permanent {
		if !e.alive[node] {
			return
		}
		e.alive[node] = false
		e.tripBreaker(node, now, true)
		for idx, id := range e.cores {
			if id.Node == node {
				e.downCore(now, kind, idx, 0)
			}
		}
		return
	}
	e.tripBreaker(e.cores[coreIdx].Node, now, false)
	e.downCore(now, kind, coreIdx, repair)
}

// tripBreaker records a strike and publishes any open transition.
func (e *Engine) tripBreaker(node int, now float64, permanent bool) {
	if e.brk == nil {
		return
	}
	before := e.brk.opens
	e.brk.onFault(node, now, permanent)
	if d := e.brk.opens - before; d > 0 {
		e.st.brkOpens.Add(int64(d))
		e.met.breakerOpens.Inc()
	}
}

// downCore takes one core down: kills its queue, hands stranded tasks to
// recovery, zeroes its draw, and (transient only) schedules the repair.
func (e *Engine) downCore(now float64, kind fault.Kind, coreIdx int, repair float64) {
	if e.down[coreIdx] {
		return
	}
	e.down[coreIdx] = true
	e.runGen[coreIdx]++ // pending completion (if any) is now stale
	if e.fobs != nil {
		e.fobs.CoreFailed(now, e.cores[coreIdx], kind, repair)
	}
	q := e.queues[coreIdx]
	e.queues[coreIdx] = nil
	e.ftc.Invalidate(coreIdx)
	if len(q) > 0 {
		e.inSystem -= len(q)
		for i := range q {
			if e.fobs != nil {
				e.fobs.TaskKilled(now, q[i].task, e.cores[coreIdx])
			}
			e.recoverTask(now, q[i].task, q[i].attempts)
		}
		e.updInflight()
	}
	e.meter.SetPower(coreIdx, 0)
	if kind == fault.Transient {
		e.push(event{time: now + repair, kind: evRepair, idx: coreIdx})
	}
}

// handleRepair brings a transiently-failed core back at the idle P-state.
func (e *Engine) handleRepair(now float64, coreIdx int) {
	if !e.down[coreIdx] {
		return
	}
	if !e.alive[e.cores[coreIdx].Node] {
		// The node died permanently while this core's repair was pending;
		// the repair must not resurrect it.
		return
	}
	e.down[coreIdx] = false
	e.meter.ClearPower(coreIdx)
	e.setPState(now, coreIdx, e.cfg.IdlePState)
	if e.fobs != nil {
		e.fobs.CoreRepaired(now, e.cores[coreIdx])
	}
}

// recoverTask routes one stranded task through the recovery policy. used
// is the retry count the task has already consumed.
func (e *Engine) recoverTask(now float64, task workload.Task, used int) {
	rec := e.cfg.Faults.Recovery
	if rec.Mode != fault.Requeue || used >= rec.MaxRetries {
		e.fail(task, FailFault)
		return
	}
	if rec.DeadlineAware && task.Deadline <= now {
		// Already late: a retry can only burn energy on a missed deadline.
		e.fail(task, FailFault)
		return
	}
	delay := rec.Backoff * float64(used+1)
	if rec.DeadlineAware {
		if slack := task.Deadline - now; delay > slack/2 {
			delay = slack / 2
		}
	}
	if e.fobs != nil {
		e.fobs.TaskRequeued(now, task, used+1)
	}
	slot := e.reqSeq
	e.reqSeq++
	e.requeues[slot] = requeueEntry{task: task, attempts: used + 1}
	e.push(event{time: now + delay, kind: evRequeue, idx: slot})
}

// handleRequeue re-dispatches a previously-stranded task through the full
// mapping pipeline; a retry that fails admission goes back through
// recovery, consuming another attempt, until the bound is hit.
func (e *Engine) handleRequeue(now float64, slot int) {
	entry, ok := e.requeues[slot]
	if !ok {
		return
	}
	delete(e.requeues, slot)
	e.st.retries.Add(1)
	e.met.retries.Inc()
	chosen := e.mapTask(now, entry.task, nil)
	if chosen == nil {
		e.recoverTask(now, entry.task, entry.attempts)
		e.updInflight()
		return
	}
	e.place(now, entry.task, chosen, entry.attempts)
}
