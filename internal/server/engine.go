// Package server turns the paper's immediate-mode allocator into a
// long-lived online allocation service: tasks arrive over HTTP instead of
// from a pre-generated trial, the mapper assigns each to a (core, P-state)
// the moment it is admitted, and a full overload-robustness kit — bounded
// admission queue with backpressure, deadline-aware load shedding,
// per-request timeouts, per-node circuit breakers fed by fault injection,
// staged energy brownout that also gates admission, and graceful
// stop-drain-flush shutdown — keeps the service degrading predictably
// instead of collapsing when offered more work than the energy budget or
// the cluster can absorb.
//
// The paper's discard decision (§V-A: a task whose feasible set is empty
// is dropped) generalizes here to a four-stage admission pipeline; see
// DESIGN.md §8. The engine runs everything on one goroutine against a
// virtual clock, so a serving run with a ManualClock is as deterministic
// as a batch simulation.
package server

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/randx"
	"repro/internal/robustness"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Shed reasons: why an admitted task was rejected without an assignment.
const (
	// ShedFiltered: the configured filter chain emptied the feasible set —
	// the paper's discard decision verbatim.
	ShedFiltered = "filtered"
	// ShedInfeasible: the deadline was already unreachable even in the
	// best case (fastest node, fastest P-state, empty queue), so the task
	// was rejected before any mapping work was spent on it.
	ShedInfeasible = "infeasible-deadline"
	// ShedBrownout: a brownout stage with ShedAdmission was active.
	ShedBrownout = "brownout"
	// ShedHalted: the energy budget was exhausted; the cluster is down.
	ShedHalted = "energy-exhausted"
)

// Fail reasons: why a mapped task never completed.
const (
	// FailFault: lost to a core/node failure (dropped, or retries
	// exhausted).
	FailFault = "fault"
	// FailHalted: in flight when the energy budget ran out.
	FailHalted = "energy-exhausted"
	// FailDrainTimeout: still in flight when the drain grace expired.
	FailDrainTimeout = "drain-timeout"
	// FailShardKilled: in flight when the owning shard fail-stopped.
	FailShardKilled = "shard-killed"
)

// DecisionStatus classifies the outcome of one admitted task request.
type DecisionStatus int

// Decision statuses.
const (
	// StatusMapped: the task received an assignment.
	StatusMapped DecisionStatus = iota
	// StatusShed: the task was rejected by the admission pipeline.
	StatusShed
	// StatusTimedOut: the request waited in the admission queue past the
	// per-request timeout and was never mapped.
	StatusTimedOut
)

// String names the status.
func (s DecisionStatus) String() string {
	switch s {
	case StatusMapped:
		return "mapped"
	case StatusShed:
		return "shed"
	case StatusTimedOut:
		return "timed-out"
	}
	return fmt.Sprintf("DecisionStatus(%d)", int(s))
}

// MarshalJSON emits the status by name — the wire format is part of the
// API, and "mapped" survives reordering the constants where 0 would not.
func (s DecisionStatus) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON restores a status from its name.
func (s *DecisionStatus) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for _, v := range []DecisionStatus{StatusMapped, StatusShed, StatusTimedOut} {
		if v.String() == name {
			*s = v
			return nil
		}
	}
	return fmt.Errorf("server: unknown decision status %q", name)
}

// AssignmentView is the client-visible slice of a mapping decision.
type AssignmentView struct {
	Node   int    `json:"node"`
	Core   string `json:"core"`
	PState string `json:"pstate"`
	// ETA is the expected completion time (virtual), §V-A's ECT.
	ETA float64 `json:"eta"`
}

// Decision is the engine's verdict on one admitted task.
type Decision struct {
	Status     DecisionStatus  `json:"status"`
	Reason     string          `json:"reason,omitempty"`
	TaskID     int             `json:"id"`
	Arrival    float64         `json:"arrival"`
	Deadline   float64         `json:"deadline"`
	Assignment *AssignmentView `json:"assignment,omitempty"`
	// QueueWait is the wall time the request spent in the admission queue.
	QueueWait time.Duration `json:"-"`
}

// ErrRejected is returned by Submit for requests refused before admission
// (backpressure, draining, brownout, energy exhaustion). Reason mirrors
// the shed vocabulary; RetryAfter suggests a client backoff.
type ErrRejected struct {
	Reason     string
	RetryAfter time.Duration
}

// Error implements error.
func (e *ErrRejected) Error() string { return "server: rejected: " + e.Reason }

// Rejection reasons (pre-admission).
const (
	RejectQueueFull  = "queue-full"
	RejectDraining   = "draining"
	RejectRecovering = "recovering"
	// RejectShardDown: the engine shard that would have decided this request
	// fail-stopped. The router retries survivors before surfacing this.
	RejectShardDown = "shard-down"
	// RejectNoShard: every shard was down or without headroom (router-level).
	RejectNoShard = "no-shard"
)

// statusShardKilled is the internal sentinel a fail-stopping engine uses to
// answer queued-but-undecided requests: Submit converts it back into an
// *ErrRejected{RejectShardDown} and unwinds the admission accounting, so the
// router can re-route the task to a surviving shard with the dead shard's
// admitted = mapped + shed + timed-out ledger still balanced. Never
// serialized; never escapes Submit.
const statusShardKilled DecisionStatus = -1

// Config configures an Engine.
type Config struct {
	// Model is the fixed workload model (cluster + pmf tables).
	Model *workload.Model
	// Mapper is the immediate-mode policy (heuristic + filter chain).
	Mapper *sched.Mapper
	// Budget is ζ_max; 0 or +Inf disables the energy constraint.
	Budget float64
	// IdlePState parks idle cores; defaults to P4.
	IdlePState cluster.PState
	// Clock is the virtual time source; nil uses a RealClock at TimeScale.
	Clock Clock
	// TimeScale is virtual time units per wall second for the default
	// RealClock (ignored when Clock is set); defaults to 1000.
	TimeScale float64
	// QueueCap bounds the admission queue; defaults to 256. Requests
	// arriving at a full queue are rejected with backpressure (429).
	QueueCap int
	// RequestTimeout bounds the wall time a request may wait in the
	// admission queue before it is answered 504; defaults to 5s.
	RequestTimeout time.Duration
	// Horizon is the serving-mode stand-in for the batch run's T_left in
	// the energy filter's fair share ζ_mul·ζ/T_left: an open-ended server
	// has no fixed window, so it budgets energy as if Horizon tasks were
	// still to come. Defaults to the model's window size.
	Horizon int
	// Faults injects live failures (virtual-time processes); zero = none.
	Faults fault.Spec
	// Brownout is the staged energy-degradation schedule; stages with
	// ShedAdmission additionally close the admission gate. Requires a
	// finite Budget.
	Brownout []energy.BrownoutStage
	// Breaker tunes the per-node circuit breakers (only armed when Faults
	// is enabled).
	Breaker BreakerConfig
	// Metrics receives serving-path instrumentation; nil disables.
	Metrics *metrics.Registry
	// Observer receives simulation events (trace recording); nil disables.
	// If it also implements TaskShed(t, task, reason), shed decisions are
	// recorded too.
	Observer sim.Observer
	// Seed drives every stochastic choice (Random heuristic, execution
	// quantiles, fault processes).
	Seed uint64
	// DrainGrace bounds the wall time Drain may spend fast-forwarding
	// in-flight work; defaults to 10s.
	DrainGrace time.Duration
	// ExactRho switches candidate ρ evaluation to the direct double-sum
	// P(free + exec <= deadline) instead of materializing and compacting
	// the completion PMF (robustness.Calculator.SetExactRho). Numerically
	// tighter and allocation-free on the serving hot path, but not
	// bit-identical to the simulation default; off by default.
	ExactRho bool
	// SparsePMF forces the §IV-B chains through the original sparse
	// impulse pipeline. By default the serving engine runs on the
	// fixed-grid lattice fast path (see sim.Config.SparsePMF); ExactRho
	// implies the sparse pipeline.
	SparsePMF bool
	// NoShedInfeasible disables deadline-aware admission shedding (tasks
	// with hopeless deadlines then run the full filter chain instead).
	NoShedInfeasible bool
	// WALPath enables the write-ahead admission log: every state transition
	// is appended to `<WALPath>.<incarnation>` and made durable (group
	// commit: flush+fsync) before the client sees the decision. Empty
	// disables durability. See wal.go and DESIGN.md §11.
	WALPath string
	// CheckpointPath is where engine checkpoints land (atomic
	// tmp+fsync+rename). Recovery is checkpoint + WAL-suffix replay; with
	// no checkpoint the whole WAL incarnation is replayed from genesis.
	CheckpointPath string
	// CheckpointEvery is the wall-clock period between automatic
	// checkpoints; 0 disables the timer (CheckpointNow still works).
	CheckpointEvery time.Duration
	// Tenants tunes multi-tenant admission control: per-tenant token-bucket
	// rate limits, bounded queue shares, and the abuse detector. nil runs
	// tenancy with pure defaults — tagged requests are still tracked,
	// class-weighted brownout shedding and abuse quarantine still apply, but
	// no tenant has a quota. Untagged requests bypass tenancy entirely.
	Tenants *TenantConfig
}

// shedObserver is implemented by observers (trace.EventLog) that want
// serving-mode shed events.
type shedObserver interface {
	TaskShed(t float64, task workload.Task, reason string)
}

// pending is one admitted request waiting for the engine's decision.
type pending struct {
	req    TaskRequest
	wallAt time.Time
	resp   chan Decision // buffered(1); the engine always answers exactly once
	ts     *tenantState  // queue-share slot to release on decision (nil untagged)
	probe  bool          // this request is a half-open quarantine probe
}

// queued is one task occupying a core.
type queued struct {
	task     workload.Task
	pstate   cluster.PState
	actual   float64
	attempts int // fault requeue attempts consumed
	started  bool
	startAt  float64
}

// Event kinds, in tie-break priority order at equal virtual times
// (completions free cores before the failure strikes; repairs land after
// the fault that caused them; requeues re-enter the mapper last).
const (
	evCompletion = iota
	evFault
	evRepair
	evRequeue
)

// Fault event sources (event.idx for evFault).
const (
	srcTransient = iota
	srcPermanent
	srcScript // srcScript+n is scripted entry n
)

type event struct {
	time float64
	kind int
	idx  int // core for completions/repairs, source for faults, slot for requeues
	gen  int // run generation; stale completions are ignored
	seq  int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// requeueEntry is a fault-stranded task waiting for its retry dispatch.
type requeueEntry struct {
	task     workload.Task
	attempts int
	fireAt   float64 // absolute virtual dispatch time (for checkpoints)
}

// ackPair is one decided request whose reply is held back until the
// decision's WAL records are durable (group commit).
type ackPair struct {
	p *pending
	d Decision
}

// Engine is the live allocation core: one goroutine owns the cluster
// state, the event heap, and every admission decision; HTTP handlers (and
// tests) talk to it through Submit.
type Engine struct {
	cfg   Config
	clock Clock
	model *workload.Model
	calc  *robustness.Calculator
	ftc   *robustness.FreeTimeEngine
	meter *energy.Meter
	bro   *energy.Brownout
	brk   *breakers
	rand  *randx.Stream
	// Independent fault-process streams, mirroring internal/sim's layout so
	// adding draws to one process never perturbs another.
	transientRng *randx.Stream
	permanentRng *randx.Stream
	targetRng    *randx.Stream
	quantRn      *randx.Stream

	tenants *tenancy

	cores  []cluster.CoreID
	queues [][]queued
	// Per-decision scratch: the scheduler arena and per-core queue-snapshot
	// buffers Queue() reuses (snapshots are decision-scoped, and the event
	// loop is single-goroutine).
	arena  *sched.Arena
	qbuf   [][]robustness.QueuedTask
	runGen []int
	down   []bool
	alive  []bool // per node, false after a permanent failure
	minEET []float64

	events   eventHeap
	seq      int
	inSystem int
	nextID   int
	requeues map[int]requeueEntry
	reqSeq   int

	// Fault-process schedule, mirrored out of the event heap so checkpoints
	// can rebuild it: absolute next firing per stochastic source (0 = none)
	// and which scripted entries have already fired.
	repairAt      []float64 // absolute repair event time per core (0 = none)
	nextTransient float64
	nextPermanent float64
	scriptFired   []bool

	// Durability (zero-valued when Config.WALPath is unset).
	wal          *wal
	walDead      bool // engine goroutine: commit failed, durability disabled
	incarnation  uint64
	decided      int64 // decide() outcomes == admit records written (cumulative)
	rejectedBase int64 // rejected count carried over from prior incarnations
	acks         []ackPair
	brkScratch   []brkSnapshot
	lastEnergyEN float64 // consumed at the last periodic wkEnergy record
	lastCkpt     time.Time
	ckptCh       chan chan error
	needSchedule bool // Start must seed the fault processes (fresh boot)

	admit    chan *pending
	drainCh  chan chan error
	syncCh   chan chan struct{}
	budgetCh chan budgetReq
	killCh   chan struct{}
	stopCh   chan struct{}
	doneCh   chan struct{}

	// Handler-visible state (read outside the engine goroutine).
	recovering atomic.Bool // true from Prepare until Start: replay in progress
	draining   atomic.Bool
	halted     atomic.Bool
	killed     atomic.Bool // fail-stopped via Kill (chaos or router verdict)
	shedGate   atomic.Bool // brownout stage with ShedAdmission active
	stage      atomic.Int32
	virtualAt  atomic.Uint64 // last processed virtual time (float bits)
	consumed   atomic.Uint64 // energy consumed (float bits); the meter itself
	// is confined to the engine goroutine, so Stats reads this mirror
	budgetBits atomic.Uint64 // meter budget (float bits); mirrors the meter
	// because AdjustBudget makes the budget mutable at runtime

	avail float64 // steady-state availability estimate for the rel filter
	// idleWindow is how long (virtual time) the idle cluster draw alone
	// takes to exhaust the budget — the service's maximum lifetime, fixed at
	// construction. +Inf when unconstrained.
	idleWindow float64

	counters *sched.Counters
	met      *serverMetrics
	shedObs  shedObserver
	fobs     sim.FaultObserver
	dobs     sim.DecisionObserver
	st       stats
	started  time.Time
}

// stats is the engine's atomically-updated accounting; Stats() snapshots
// it. The drain invariant is Admitted == Mapped + Shed + TimedOut and
// Mapped == Completed + Failed (+ InFlight while running).
type stats struct {
	received  atomic.Int64
	rejected  atomic.Int64
	admitted  atomic.Int64
	mapped    atomic.Int64
	shed      atomic.Int64
	timedout  atomic.Int64
	onTime    atomic.Int64
	late      atomic.Int64
	failed    atomic.Int64
	faults    atomic.Int64
	retries   atomic.Int64
	inflight  atomic.Int64
	assigned  atomic.Int64 // assignments issued incl. retries
	brkOpens  atomic.Int64
	shedByRsn [4]atomic.Int64 // filtered, infeasible, brownout, halted
}

func shedIdx(reason string) int {
	switch reason {
	case ShedFiltered:
		return 0
	case ShedInfeasible:
		return 1
	case ShedBrownout:
		return 2
	default:
		return 3
	}
}

// Stats is a point-in-time accounting snapshot for /v1/stats and tests.
type Stats struct {
	Received     int64 `json:"received"`
	Rejected     int64 `json:"rejected"`
	Admitted     int64 `json:"admitted"`
	Mapped       int64 `json:"mapped"`
	Shed         int64 `json:"shed"`
	TimedOut     int64 `json:"timedOut"`
	OnTime       int64 `json:"onTime"`
	Late         int64 `json:"late"`
	Failed       int64 `json:"failed"`
	InFlight     int64 `json:"inFlight"`
	Assigned     int64 `json:"assigned"`
	Faults       int64 `json:"faults"`
	Retries      int64 `json:"retries"`
	BreakerOpens int64 `json:"breakerOpens"`

	ShedFiltered   int64 `json:"shedFiltered"`
	ShedInfeasible int64 `json:"shedInfeasible"`
	ShedBrownout   int64 `json:"shedBrownout"`
	ShedHalted     int64 `json:"shedHalted"`

	EnergyConsumed float64  `json:"energyConsumed"`
	EnergyBudget   float64  `json:"energyBudget,omitempty"`
	BrownoutStage  int      `json:"brownoutStage"`
	VirtualNow     float64  `json:"virtualNow"`
	Draining       bool     `json:"draining"`
	Halted         bool     `json:"halted"`
	Breakers       []string `json:"breakers,omitempty"`
}

// Balanced reports whether the terminal accounting adds up: every admitted
// task reached exactly one decision, and every mapped task reached exactly
// one completion state (modulo the still-in-flight ones).
func (s Stats) Balanced() bool {
	return s.Admitted == s.Mapped+s.Shed+s.TimedOut &&
		s.Mapped == s.OnTime+s.Late+s.Failed+s.InFlight
}

// New validates the configuration, builds the engine, and starts its
// goroutine. Callers must eventually Drain (graceful) or Close (abrupt).
func New(cfg Config) (*Engine, error) {
	e, err := Prepare(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.Start(); err != nil {
		return nil, err
	}
	return e, nil
}

// Prepare validates the configuration and builds the engine without
// starting it: no fault processes are seeded, no WAL is created, and the
// engine goroutine does not run. Until Start, the engine reports itself as
// recovering — Submit rejects, readyz answers 503 — which lets a server
// bind its API before RecoverFrom replays the log. Follow with RecoverFrom
// (optional) and then Start.
func Prepare(cfg Config) (*Engine, error) {
	if cfg.Model == nil {
		return nil, errors.New("server: Config.Model is nil")
	}
	if cfg.Mapper == nil || cfg.Mapper.Heuristic == nil {
		return nil, errors.New("server: Config.Mapper is nil or has no heuristic")
	}
	if cfg.IdlePState == 0 {
		cfg.IdlePState = cluster.P4
	}
	if !cfg.IdlePState.Valid() {
		return nil, fmt.Errorf("server: invalid idle P-state %d", cfg.IdlePState)
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1000
	}
	if cfg.TimeScale < 0 || math.IsNaN(cfg.TimeScale) || math.IsInf(cfg.TimeScale, 0) {
		return nil, fmt.Errorf("server: TimeScale %v must be positive and finite", cfg.TimeScale)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 256
	}
	if cfg.QueueCap < 1 {
		return nil, fmt.Errorf("server: QueueCap %d must be >= 1", cfg.QueueCap)
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.RequestTimeout < 0 {
		return nil, fmt.Errorf("server: RequestTimeout %v must be >= 0", cfg.RequestTimeout)
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = cfg.Model.Params.WindowSize
	}
	if cfg.Horizon < 1 {
		return nil, fmt.Errorf("server: Horizon %d must be >= 1", cfg.Horizon)
	}
	if cfg.DrainGrace == 0 {
		cfg.DrainGrace = 10 * time.Second
	}
	budget := cfg.Budget
	if budget == 0 {
		budget = math.Inf(1)
	}
	if budget <= 0 {
		return nil, fmt.Errorf("server: budget %v must be positive (use 0 or +Inf to disable)", budget)
	}
	if len(cfg.Brownout) > 0 {
		if err := energy.ValidateBrownoutStages(cfg.Brownout); err != nil {
			return nil, err
		}
		if math.IsInf(budget, 1) {
			return nil, errors.New("server: brownout requires a finite energy budget")
		}
	}
	if cfg.Tenants != nil {
		if err := cfg.Tenants.validate(); err != nil {
			return nil, err
		}
	}
	faultsOn := cfg.Faults.Enabled()
	if faultsOn {
		if err := cfg.Faults.Validate(cfg.Model.Cluster.TotalCores(), cfg.Model.Cluster.N()); err != nil {
			return nil, err
		}
	}
	meter, err := energy.NewMeter(cfg.Model.Cluster, cfg.IdlePState, budget, false)
	if err != nil {
		return nil, err
	}
	clock := cfg.Clock
	if clock == nil {
		clock = NewRealClock(cfg.TimeScale)
	}

	root := randx.NewStream(cfg.Seed)
	faultRn := root.Child("faults")
	e := &Engine{
		cfg:          cfg,
		clock:        clock,
		model:        cfg.Model,
		calc:         robustness.NewCalculator(cfg.Model),
		meter:        meter,
		rand:         root.Child("decisions"),
		transientRng: faultRn.Child("transient"),
		permanentRng: faultRn.Child("permanent"),
		targetRng:    faultRn.Child("target"),
		quantRn:      root.Child("quantiles"),
		cores:        cfg.Model.Cluster.Cores(),
		requeues:     make(map[int]requeueEntry),
		admit:        make(chan *pending, cfg.QueueCap),
		drainCh:      make(chan chan error, 1),
		syncCh:       make(chan chan struct{}),
		ckptCh:       make(chan chan error),
		budgetCh:     make(chan budgetReq),
		killCh:       make(chan struct{}),
		stopCh:       make(chan struct{}),
		doneCh:       make(chan struct{}),
		avail:        cfg.Faults.Availability(),
		met:          newServerMetrics(cfg.Metrics),
		started:      time.Now(),
	}
	e.queues = make([][]queued, len(e.cores))
	e.ftc = robustness.NewFreeTimeEngine(e.calc, len(e.cores))
	if cfg.ExactRho {
		e.calc.SetExactRho(true)
	}
	if !cfg.SparsePMF && !cfg.ExactRho {
		e.ftc.SetGrid(true)
	}
	e.arena = sched.NewArena()
	e.qbuf = make([][]robustness.QueuedTask, len(e.cores))
	e.runGen = make([]int, len(e.cores))
	e.down = make([]bool, len(e.cores))
	e.repairAt = make([]float64, len(e.cores))
	e.scriptFired = make([]bool, len(cfg.Faults.Script))
	e.alive = make([]bool, cfg.Model.Cluster.N())
	for i := range e.alive {
		e.alive[i] = true
	}
	e.minEET = bestCaseEET(cfg.Model)
	e.budgetBits.Store(math.Float64bits(budget))
	e.tenants = newTenancy(cfg.Tenants, cfg.QueueCap, cfg.Model.TAvg(), cfg.Metrics)
	e.idleWindow = math.Inf(1)
	if !math.IsInf(budget, 1) && meter.Rate() > 0 {
		e.idleWindow = budget / meter.Rate()
	}
	if cfg.Metrics != nil {
		e.counters = sched.NewCounters(cfg.Metrics, cfg.Mapper.Filters)
		e.counters.InstrumentFreeTimes(e.ftc)
		e.meter.Instrument(
			cfg.Metrics.Counter("energy_meter_advances_total"),
			cfg.Metrics.Counter("energy_pstate_transitions_total"),
			cfg.Metrics.Gauge("energy_meter_consumed"))
	}
	if len(cfg.Brownout) > 0 {
		e.bro, _ = energy.NewBrownout(cfg.Brownout)
	}
	if faultsOn {
		e.brk = newBreakers(cfg.Breaker, cfg.Model.Cluster.N(), cfg.Faults.RepairTime, cfg.Model.TAvg())
		e.needSchedule = true
	}
	if cfg.Observer == nil {
		e.cfg.Observer = sim.NopObserver{}
	}
	if so, ok := e.cfg.Observer.(shedObserver); ok {
		e.shedObs = so
	}
	if fo, ok := e.cfg.Observer.(sim.FaultObserver); ok {
		e.fobs = fo
	}
	if do, ok := e.cfg.Observer.(sim.DecisionObserver); ok {
		e.dobs = do
	}
	e.recovering.Store(true)
	return e, nil
}

// Start seeds the fault processes (fresh boot only — RecoverFrom restores
// the schedule instead), opens the WAL when configured, clears the
// recovering flag, and launches the engine goroutine.
func (e *Engine) Start() error {
	if e.needSchedule {
		e.scheduleFaults()
		e.needSchedule = false
	}
	if e.cfg.WALPath != "" && e.wal == nil {
		// Fresh boot with durability: this service's history starts now.
		// A stale checkpoint or WAL incarnation left by a previous process
		// must not survive to confuse a later -recover, so both are cleared.
		if e.cfg.CheckpointPath != "" {
			if err := os.Remove(e.cfg.CheckpointPath); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("server: clear stale checkpoint: %w", err)
			}
		}
		if old, err := filepath.Glob(e.cfg.WALPath + ".*"); err == nil {
			for _, p := range old {
				_ = os.Remove(p)
			}
		}
		e.incarnation = 1
		w, err := createWAL(e.cfg.WALPath, e.walHeader())
		if err != nil {
			return err
		}
		e.wal = w
	}
	e.lastCkpt = time.Now()
	e.recovering.Store(false)
	go e.loop()
	return nil
}

// walHeader builds the header for this engine's current incarnation.
func (e *Engine) walHeader() walHeader {
	budget := e.meter.Budget()
	if math.IsInf(budget, 1) {
		budget = -1
	}
	return walHeader{
		Format:      walFormat,
		ModelHash:   e.model.Hash(),
		Seed:        e.cfg.Seed,
		Policy:      e.cfg.Mapper.Name(),
		Budget:      budget,
		Incarnation: e.incarnation,
	}
}

// bestCaseEET precomputes, per task type, the smallest expected execution
// time over all nodes at the fastest P-state — the optimistic bound the
// deadline-aware shed check compares against. Using a lower bound means
// the check never sheds a task some assignment could still finish.
func bestCaseEET(m *workload.Model) []float64 {
	out := make([]float64, m.Params.TaskTypes)
	for ty := range out {
		best := math.Inf(1)
		for n := 0; n < m.Cluster.N(); n++ {
			if eet := m.ExecPMF(ty, n, cluster.P0).Mean(); eet < best {
				best = eet
			}
		}
		out[ty] = best
	}
	return out
}

// Stats snapshots the accounting.
func (e *Engine) Stats() Stats {
	s := Stats{
		Received:     e.st.received.Load(),
		Rejected:     e.st.rejected.Load(),
		Admitted:     e.st.admitted.Load(),
		Mapped:       e.st.mapped.Load(),
		Shed:         e.st.shed.Load(),
		TimedOut:     e.st.timedout.Load(),
		OnTime:       e.st.onTime.Load(),
		Late:         e.st.late.Load(),
		Failed:       e.st.failed.Load(),
		InFlight:     e.st.inflight.Load(),
		Assigned:     e.st.assigned.Load(),
		Faults:       e.st.faults.Load(),
		Retries:      e.st.retries.Load(),
		BreakerOpens: e.st.brkOpens.Load(),

		ShedFiltered:   e.st.shedByRsn[0].Load(),
		ShedInfeasible: e.st.shedByRsn[1].Load(),
		ShedBrownout:   e.st.shedByRsn[2].Load(),
		ShedHalted:     e.st.shedByRsn[3].Load(),

		EnergyConsumed: math.Float64frombits(e.consumed.Load()),
		BrownoutStage:  int(e.stage.Load()),
		VirtualNow:     math.Float64frombits(e.virtualAt.Load()),
		Draining:       e.draining.Load(),
		Halted:         e.halted.Load(),
	}
	if b := e.Budget(); !math.IsInf(b, 1) {
		s.EnergyBudget = b
	}
	if e.brk != nil {
		s.Breakers = make([]string, len(e.brk.nodes))
		for n := range e.brk.nodes {
			s.Breakers[n] = e.brk.stateOf(n)
		}
	}
	return s
}

// Budget returns the engine's current energy budget — the boot-time carve,
// or the controller's latest AdjustBudget. Safe off the engine goroutine:
// it reads the atomic mirror, not the meter.
func (e *Engine) Budget() float64 { return math.Float64frombits(e.budgetBits.Load()) }

// EnergyConsumed returns the energy consumed so far (atomic mirror).
func (e *Engine) EnergyConsumed() float64 { return math.Float64frombits(e.consumed.Load()) }

// VirtualNow returns the last processed virtual time (atomic mirror).
func (e *Engine) VirtualNow() float64 { return math.Float64frombits(e.virtualAt.Load()) }

// Killed reports whether the engine fail-stopped via Kill.
func (e *Engine) Killed() bool { return e.killed.Load() }

// IdleEnergyWindow returns the virtual time the idle cluster draw alone
// takes to exhaust ζ_max — an upper bound on the service's lifetime, and
// the number operators should size -scale and -budget against. +Inf when
// the budget is unconstrained.
func (e *Engine) IdleEnergyWindow() float64 { return e.idleWindow }

// QueueDepth returns the current admission-queue occupancy.
func (e *Engine) QueueDepth() int { return len(e.admit) }

// QueueCap returns the admission-queue capacity.
func (e *Engine) QueueCap() int { return e.cfg.QueueCap }

// Accepting reports whether new submissions can currently be admitted.
func (e *Engine) Accepting() bool {
	return !e.recovering.Load() && !e.draining.Load() && !e.halted.Load() && !e.shedGate.Load()
}

// Recovering reports whether the engine is still replaying its log
// (between Prepare and Start).
func (e *Engine) Recovering() bool { return e.recovering.Load() }

// Submit runs one task request through the admission pipeline and blocks
// until the engine decides (mapped, shed, or timed out). Pre-admission
// rejections (queue full, draining, brownout gate, energy exhausted)
// return *ErrRejected immediately — the backpressure path.
func (e *Engine) Submit(req TaskRequest) (Decision, error) {
	e.st.received.Add(1)
	e.met.requests.Inc()
	if e.recovering.Load() {
		// Replay in progress: the engine's state is mid-reconstruction and
		// the WAL may be mid-rotation, so nothing is logged here — these
		// rejections live only in this process's counters.
		e.st.rejected.Add(1)
		e.met.rejectedRecovering.Inc()
		return Decision{}, &ErrRejected{Reason: RejectRecovering, RetryAfter: time.Second}
	}
	if e.killed.Load() {
		// Fail-stopped shard: the WAL is closed or closing, so like the
		// recovering path this rejection lives only in this process's
		// counters. The router routes around dead shards; this is the
		// belt-and-suspenders answer for requests that raced the verdict.
		e.st.rejected.Add(1)
		e.met.rejectedShardDown.Inc()
		return Decision{}, &ErrRejected{Reason: RejectShardDown, RetryAfter: time.Second}
	}
	var ts *tenantState
	if req.Tenant != "" {
		ts = e.tenants.state(req.Tenant)
	}
	reject := func(rej *ErrRejected, met *metrics.Counter) (Decision, error) {
		e.st.rejected.Add(1)
		met.Inc()
		if ts != nil {
			ts.rejected.Add(1)
			ts.rejectedC.Inc()
		}
		e.walReject(rej.Reason, req.Tenant)
		return Decision{}, rej
	}
	if e.draining.Load() {
		return reject(&ErrRejected{Reason: RejectDraining}, e.met.rejectedDraining)
	}
	if e.halted.Load() {
		return reject(&ErrRejected{Reason: ShedHalted}, e.met.rejectedHalted)
	}
	if e.shedGate.Load() {
		return reject(&ErrRejected{Reason: ShedBrownout, RetryAfter: 5 * time.Second}, e.met.rejectedBrownout)
	}
	probe := false
	if ts != nil {
		ts.setClass(req.Class())
		// Weighted brownout gate: at stage s, classes ranked below s are
		// turned away before they can occupy a queue slot — bronze at
		// stage >= 1, silver at >= 2, gold at >= 3. Untagged traffic is
		// untouched here; only the legacy ShedAdmission gate above sees it.
		if stg := int(e.stage.Load()); stg > int(req.Class()) {
			return reject(&ErrRejected{Reason: ShedBrownout, RetryAfter: 5 * time.Second}, e.met.rejectedBrownout)
		}
		var rej *ErrRejected
		probe, rej = ts.admitGate(e.now(), e.cfg.TimeScale)
		if rej != nil {
			return reject(rej, e.met.rejectedTenantBy(rej.Reason))
		}
	}
	p := &pending{req: req, wallAt: time.Now(), resp: make(chan Decision, 1), ts: ts, probe: probe}
	select {
	case e.admit <- p:
	default:
		if ts != nil {
			ts.release()
			if probe {
				ts.probing.Store(false)
			}
		}
		return reject(&ErrRejected{Reason: RejectQueueFull, RetryAfter: time.Second}, e.met.rejectedQueueFull)
	}
	e.st.admitted.Add(1)
	e.met.admitted.Inc()
	if ts != nil {
		ts.admitted.Add(1)
		ts.admittedC.Inc()
	}
	e.met.queueHigh.Observe(float64(len(e.admit)))
	d := <-p.resp
	if d.Status == statusShardKilled {
		// The shard fail-stopped with this request still queued-undecided.
		// Nothing durable claims the task (admit records are written at
		// decision time), so unwind the admission accounting and surface a
		// retryable rejection — the router re-routes it to a survivor.
		e.st.admitted.Add(-1)
		e.st.rejected.Add(1)
		e.met.rejectedShardDown.Inc()
		if ts != nil {
			ts.admitted.Add(-1)
			ts.rejected.Add(1)
			ts.rejectedC.Inc()
		}
		return Decision{}, &ErrRejected{Reason: RejectShardDown, RetryAfter: time.Second}
	}
	return d, nil
}

// Drain gracefully shuts the engine down: new submissions are rejected,
// everything already admitted is decided (mapped or shed), and in-flight
// work is fast-forwarded in virtual time until it completes — bounded by
// DrainGrace, after which stragglers are failed, never orphaned. Drain is
// idempotent; concurrent calls share one drain.
func (e *Engine) Drain(ctx context.Context) error {
	if e.draining.Swap(true) {
		<-e.doneCh
		return nil
	}
	done := make(chan error, 1)
	e.drainCh <- done
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Sync blocks until the engine goroutine has processed every event due at
// the current virtual time — the barrier tests use with a ManualClock to
// make assertions deterministic. It must not be called after Drain/Close.
func (e *Engine) Sync() {
	ch := make(chan struct{})
	e.syncCh <- ch
	<-ch
}

// Close stops the engine goroutine without draining (tests and error
// paths). Admitted-but-undecided requests are answered as timed out.
func (e *Engine) Close() {
	if e.draining.Swap(true) {
		<-e.doneCh
		return
	}
	close(e.stopCh)
	<-e.doneCh
}

// budgetReq asks the engine loop to reset the meter's budget.
type budgetReq struct {
	budget float64
	resp   chan error
}

// AdjustBudget resets the engine's energy budget from outside the engine
// goroutine — the router's budget controller reclaiming a dead shard's
// headroom or rebalancing sub-budgets toward observed consumption. The new
// budget must be at least the energy already consumed (enforced by the
// meter); the change is WAL-logged (wkBudget) so recovery restores the
// adjusted budget, not the boot-time carve. Fails once the engine has
// stopped.
func (e *Engine) AdjustBudget(b float64) error {
	req := budgetReq{budget: b, resp: make(chan error, 1)}
	select {
	case e.budgetCh <- req:
		return <-req.resp
	case <-e.doneCh:
		return errors.New("server: engine is not running")
	}
}

// applyBudget installs a new budget on the engine goroutine: meter, atomic
// mirror, WAL record, and a brownout re-evaluation (the stage is a function
// of consumed/budget, so moving the denominator can cross a threshold).
func (e *Engine) applyBudget(b float64) error {
	if err := e.meter.SetBudget(b); err != nil {
		return err
	}
	e.budgetBits.Store(math.Float64bits(b))
	e.walAppend(&walRecord{K: wkBudget, T: e.meter.Now(), BG: b})
	e.updateBrownout(e.meter.Now())
	return nil
}

// Kill fail-stops the engine: in-flight work fails as FailShardKilled,
// queued-but-undecided requests are bounced back for re-routing, the WAL is
// flushed and closed, and the loop exits. The chaos kill switch and the
// router's dead-shard verdict both land here. Idempotent; safe alongside
// Drain/Close (first caller wins).
func (e *Engine) Kill() {
	e.killed.Store(true)
	if e.draining.Swap(true) {
		<-e.doneCh
		return
	}
	close(e.killCh)
	<-e.doneCh
}

// failStop is Kill's engine-goroutine half: the orderly fail-stop.
func (e *Engine) failStop() {
	at := math.Float64frombits(e.virtualAt.Load())
	n := 0
	for idx := range e.queues {
		for _, q := range e.queues[idx] {
			e.fail(q.task, FailShardKilled)
			n++
		}
		e.queues[idx] = nil
		e.ftc.Invalidate(idx)
	}
	for _, r := range e.requeues {
		e.fail(r.task, FailShardKilled)
		n++
	}
	e.requeues = make(map[int]requeueEntry)
	e.inSystem = 0
	e.updInflight()
	e.events = nil
	if n > 0 {
		// One atomic record for the wholesale clear, like halt and the
		// drain flush: replay fails N tasks in a single step.
		e.walAppend(&walRecord{K: wkFlush, T: at, Rsn: FailShardKilled, N: n})
	}
	// Queued-but-undecided requests have no admit record yet (walAdmit
	// happens at decision time), so bouncing them is WAL-consistent: the
	// durable stream never heard of them, and Submit unwinds the in-memory
	// admission counts when it sees the sentinel.
	for {
		select {
		case p := <-e.admit:
			if p.ts != nil {
				p.ts.release()
				if p.probe {
					p.ts.probing.Store(false)
				}
			}
			p.resp <- Decision{Status: statusShardKilled}
		default:
			return
		}
	}
}

// now reads the clock, clamped monotone against the last processed event
// (a real clock can only move forward, but event fast-forwarding during
// drain may have advanced virtual time past the wall mapping).
func (e *Engine) now() float64 {
	t := e.clock.Now()
	if last := math.Float64frombits(e.virtualAt.Load()); last > t {
		return last
	}
	return t
}

// loop is the engine goroutine: admission decisions and timed events. Every
// iteration ends in commit(): the iteration's WAL records become durable in
// one flush+fsync and only then are the deferred Decision replies released
// — the group-commit discipline that makes "acked means durable" hold.
func (e *Engine) loop() {
	defer func() {
		e.commit()
		if e.wal != nil {
			_ = e.wal.close()
		}
		close(e.doneCh)
	}()
	for {
		e.runDue(e.now())
		e.commit()
		e.maybeCheckpoint()
		var timer <-chan struct{}
		if len(e.events) > 0 {
			timer = e.clock.WaitUntil(e.events[0].time)
		}
		select {
		case p := <-e.admit:
			e.decide(p)
			// Group commit: decide everything else already queued, so one
			// fsync covers the whole burst.
		batch:
			for i := 1; i < e.cfg.QueueCap; i++ {
				select {
				case q := <-e.admit:
					e.decide(q)
				default:
					break batch
				}
			}
			e.commit()
		case <-timer:
			// Loop back around; runDue processes everything now due.
		case ch := <-e.syncCh:
			e.runDue(e.now())
			e.commit()
			ch <- struct{}{}
		case ch := <-e.ckptCh:
			e.runDue(e.now())
			e.commit()
			ch <- e.writeCheckpointNow()
		case req := <-e.budgetCh:
			e.runDue(e.now())
			req.resp <- e.applyBudget(req.budget)
			e.commit()
		case done := <-e.drainCh:
			done <- e.drain()
			return
		case <-e.killCh:
			e.failStop()
			return
		case <-e.stopCh:
			e.abortPending()
			return
		}
	}
}

// reply releases one decision to its waiting handler — immediately when no
// WAL is armed, or deferred into the current commit batch when one is: the
// client must not observe a decision the log has not made durable.
func (e *Engine) reply(p *pending, d Decision) {
	if !e.walOn() {
		p.resp <- d
		return
	}
	e.acks = append(e.acks, ackPair{p: p, d: d})
}

// commit makes the iteration's WAL records durable and releases the
// deferred replies. On a WAL write/sync failure durability is disabled —
// loudly, once — and the engine keeps serving: the operator chose -wal for
// crash recovery, not for turning disk failures into an outage.
func (e *Engine) commit() {
	if e.walOn() {
		if err := e.wal.commit(); err != nil {
			fmt.Fprintf(os.Stderr, "server: WAL disabled, recovery will lose this incarnation's tail: %v\n", err)
			e.met.walErrors.Inc()
			e.walDead = true
		} else {
			e.met.walCommits.Inc()
		}
	}
	for i := range e.acks {
		e.acks[i].p.resp <- e.acks[i].d
	}
	e.acks = e.acks[:0]
}

// maybeCheckpoint writes a periodic checkpoint when one is due.
func (e *Engine) maybeCheckpoint() {
	if !e.walOn() || e.cfg.CheckpointPath == "" || e.cfg.CheckpointEvery <= 0 {
		return
	}
	if time.Since(e.lastCkpt) < e.cfg.CheckpointEvery {
		return
	}
	if err := e.writeCheckpointNow(); err != nil {
		fmt.Fprintln(os.Stderr, "server: checkpoint failed:", err)
	}
}

// writeCheckpointNow snapshots the engine and persists the checkpoint
// atomically. Engine goroutine only.
func (e *Engine) writeCheckpointNow() error {
	if !e.walOn() || e.cfg.CheckpointPath == "" {
		return errors.New("server: checkpointing requires an armed WAL and a checkpoint path")
	}
	// Pin the stream to the snapshot's exact meter coordinates first: the
	// meter may have advanced silently since the last record (quiet
	// stretches emit energy records only at budget/1024 granularity), and
	// the checkpoint must not know more than the WAL prefix it names — or
	// checkpoint+suffix replay and pure-WAL replay of the same records
	// would reconstruct different meters.
	e.walAppend(&walRecord{K: wkEnergy, T: e.meter.Now()})
	e.lastEnergyEN = e.meter.Consumed()
	e.commit()
	cut, rejects, tnRejects := e.wal.cut()
	if err := writeCheckpoint(e.cfg.CheckpointPath, e.snapshotCheckpoint(cut, rejects, tnRejects)); err != nil {
		return err
	}
	e.lastCkpt = time.Now()
	e.met.checkpoints.Inc()
	return nil
}

// CheckpointNow forces a checkpoint from outside the engine goroutine and
// returns once it is durable. It must not be called after Drain/Close.
func (e *Engine) CheckpointNow() error {
	ch := make(chan error, 1)
	e.ckptCh <- ch
	return <-ch
}

// HasPendingEvents reports whether any timed event is waiting in the heap.
// Engine-goroutine only while the loop runs; the multi-shard orchestrator
// calls it on stopped (recovered, loop-less) engines to find the shard with
// the earliest event.
func (e *Engine) HasPendingEvents() bool { return len(e.events) > 0 }

// PeekNextEventTime returns the virtual time of the earliest pending event,
// or +Inf when the heap is empty. Same confinement rules as
// HasPendingEvents.
func (e *Engine) PeekNextEventTime() float64 {
	if len(e.events) == 0 {
		return math.Inf(1)
	}
	return e.events[0].time
}

// ProcessNextEvent pops and handles exactly one event — the unit step the
// engine loop, the drain fast-forward, and the shared-clock multi-shard
// orchestrator are all built from. While draining, fault events are
// consumed without effect (no new failures strike work that is being
// flushed). Must not be called on an empty heap.
func (e *Engine) ProcessNextEvent() {
	ev := heap.Pop(&e.events).(event)
	if ev.kind == evFault && e.draining.Load() {
		return
	}
	e.handle(ev)
}

// runDue processes every heap event with time <= vt, advancing the meter
// exactly to each event instant.
func (e *Engine) runDue(vt float64) {
	for e.HasPendingEvents() && e.PeekNextEventTime() <= vt && !e.halted.Load() {
		e.ProcessNextEvent()
	}
	e.advance(vt)
}

// advance moves the meter (and the brownout automaton) to virtual time t.
func (e *Engine) advance(t float64) {
	if e.halted.Load() || t < e.meter.Now() {
		return
	}
	at, exhausted := e.meter.Advance(t)
	e.virtualAt.Store(math.Float64bits(at))
	e.consumed.Store(math.Float64bits(e.meter.Consumed()))
	e.met.consumed.Set(e.meter.Consumed())
	if exhausted {
		e.halt(at)
		return
	}
	// Periodic energy-debit record: every record carries absolute meter
	// coordinates, but a long quiet stretch (no admissions, no events) would
	// otherwise leave the durable consumed-energy reading arbitrarily stale.
	// ~budget/1024 granularity bounds the post-crash energy regression to
	// <0.1% of ζ_max without flooding the log.
	if e.walOn() && !math.IsInf(e.meter.Budget(), 1) {
		if en := e.meter.Consumed(); en-e.lastEnergyEN >= e.meter.Budget()/1024 {
			e.lastEnergyEN = en
			e.walAppend(&walRecord{K: wkEnergy, T: at})
		}
	}
	e.updateBrownout(at)
}

// updateBrownout re-evaluates the brownout automaton against the current
// consumed/budget ratio — on every meter advance, and after a budget
// adjustment moves the denominator.
func (e *Engine) updateBrownout(at float64) {
	if e.bro == nil || math.IsInf(e.meter.Budget(), 1) {
		return
	}
	stage, changed := e.bro.Update(e.meter.Consumed() / e.meter.Budget())
	if changed {
		e.stage.Store(int32(stage))
		e.met.stage.Set(float64(stage))
		cur := e.bro.Current()
		e.shedGate.Store(cur != nil && cur.ShedAdmission)
		e.walAppend(&walRecord{K: wkBrownout, T: at, Stage: stage, Gate: cur != nil && cur.ShedAdmission})
		if bo, ok := e.cfg.Observer.(sim.BrownoutObserver); ok {
			bo.BrownoutStageChanged(at, stage, e.meter.Consumed()/e.meter.Budget())
		}
	}
}

// halt is the hard stop at ζ_max: every in-flight task fails, the event
// heap is dropped, and the engine only answers shed from here on.
func (e *Engine) halt(at float64) {
	e.halted.Store(true)
	e.cfg.Observer.EnergyExhausted(at)
	failed := 0
	for idx := range e.queues {
		for _, q := range e.queues[idx] {
			e.fail(q.task, FailHalted)
			failed++
		}
		e.queues[idx] = nil
		e.ftc.Invalidate(idx)
	}
	for _, r := range e.requeues {
		e.fail(r.task, FailHalted)
		failed++
	}
	e.requeues = make(map[int]requeueEntry)
	e.inSystem = 0
	e.updInflight()
	e.events = nil
	// One atomic record for the wholesale clear: replay fails N tasks and
	// empties every structure in a single step, so a torn tail can never
	// leave the counters half-applied.
	e.walAppend(&walRecord{K: wkHalt, T: at, N: failed})
}

// pendingWork counts tasks mapped but not yet terminal: occupying core
// queues or stranded awaiting a fault retry.
func (e *Engine) pendingWork() int { return e.inSystem + len(e.requeues) }

// updInflight republishes the in-flight count after any change.
func (e *Engine) updInflight() {
	n := int64(e.pendingWork())
	e.st.inflight.Store(n)
	e.met.inflight.Set(float64(n))
}

// handle dispatches one due event.
func (e *Engine) handle(ev event) {
	e.advance(ev.time)
	if e.halted.Load() {
		return
	}
	switch ev.kind {
	case evCompletion:
		if ev.gen == e.runGen[ev.idx] {
			e.complete(ev.time, ev.idx)
		}
	case evFault:
		e.handleFault(ev.time, ev.idx)
	case evRepair:
		e.handleRepair(ev.time, ev.idx)
	case evRequeue:
		e.handleRequeue(ev.time, ev.idx)
	}
}

func (e *Engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.events, ev)
}

// decide runs one admitted request through the decision stages. The admit
// record — full task identity plus the post-draw quantile stream state —
// goes to the WAL before any outcome, so a crash that loses the outcome
// still lets recovery re-decide the task from its admit record alone.
func (e *Engine) decide(p *pending) {
	if p.ts != nil {
		p.ts.release() // the request's queue-share slot frees as it leaves the queue
	}
	wait := time.Since(p.wallAt)
	e.met.queueWait.Observe(wait.Seconds())
	now := e.now()
	e.runDue(now)
	now = math.Max(now, math.Float64frombits(e.virtualAt.Load()))

	task := e.buildTask(now, p.req)
	e.decided++
	e.walAdmit(now, task, p.req.MaxEnergy)
	e.reply(p, e.decideTask(now, task, p.req.MaxEnergy, wait, true))
}

// decideTask is the admission pipeline shared by live decisions and
// recovery re-decides (which skip the wall-clock request timeout — the
// request was already durably admitted; there is no client left to answer).
func (e *Engine) decideTask(now float64, task workload.Task, maxEnergy *float64, wait time.Duration, timeoutEligible bool) Decision {
	d := e.admitPipeline(now, task, maxEnergy, wait, timeoutEligible)
	e.tenantOutcome(now, task, d)
	return d
}

// admitPipeline is the decision pipeline proper; decideTask wraps it with
// the per-tenant accounting and abuse-detector feed so live decisions and
// recovery re-decides drive tenancy identically.
func (e *Engine) admitPipeline(now float64, task workload.Task, maxEnergy *float64, wait time.Duration, timeoutEligible bool) Decision {
	if e.halted.Load() {
		return e.shed(now, task, ShedHalted, wait)
	}
	if timeoutEligible && e.cfg.RequestTimeout > 0 && wait > e.cfg.RequestTimeout {
		e.st.timedout.Add(1)
		e.met.timedout.Inc()
		e.walAppend(&walRecord{K: wkTimeout, T: now, ID: task.ID, TN: task.Tenant})
		if e.shedObs != nil {
			e.shedObs.TaskShed(now, task, "request-timeout")
		}
		return Decision{Status: StatusTimedOut, TaskID: task.ID, Arrival: task.Arrival,
			Deadline: task.Deadline, QueueWait: wait}
	}
	if cur := e.currentStage(); cur != nil && cur.ShedAdmission {
		return e.shed(now, task, ShedBrownout, wait)
	}
	// Weighted shedding: deeper brownout stages drop lower SLO classes
	// first — bronze at stage >= 1, silver at >= 2, gold at >= 3. Purely
	// additive on top of the legacy uniform ShedAdmission gate, and a pure
	// function of restored engine state (stage) plus the task's own class,
	// so recovery re-decides reproduce it bit-identically.
	if task.Tenant != "" && int(e.stage.Load()) > int(task.Class) {
		return e.shed(now, task, ShedBrownout, wait)
	}
	if !e.cfg.NoShedInfeasible && task.Deadline < now+e.minEET[task.Type] {
		return e.shed(now, task, ShedInfeasible, wait)
	}
	start := time.Now()
	snap := e.brkSnap()
	chosen := e.mapTask(now, task, maxEnergy)
	e.met.decideTime.Observe(time.Since(start).Seconds())
	var d Decision
	if chosen == nil {
		d = e.shed(now, task, ShedFiltered, wait)
	} else {
		e.place(now, task, chosen, 0)
		e.st.mapped.Add(1)
		e.met.mapped.Inc()
		d = Decision{
			Status:   StatusMapped,
			TaskID:   task.ID,
			Arrival:  task.Arrival,
			Deadline: task.Deadline,
			Assignment: &AssignmentView{
				Node:   chosen.Core.Node,
				Core:   chosen.Core.String(),
				PState: chosen.PState.String(),
				ETA:    chosen.ECT(),
			},
			QueueWait: wait,
		}
	}
	e.walBreakerDiff(now, snap)
	return d
}

// buildTask materializes the workload.Task for a request arriving now.
func (e *Engine) buildTask(now float64, req TaskRequest) workload.Task {
	id := e.nextID
	e.nextID++
	u := e.quantRn.Float64()
	if u <= 0 {
		u = 1e-12
	}
	if req.U != nil {
		u = *req.U
	}
	cls := req.Class()
	deadline := now + e.model.TypeMeanExec(req.Type) + e.model.Params.LoadFactorMult*e.model.TAvg()
	switch {
	case req.Deadline != nil:
		deadline = *req.Deadline
	case req.Slack != nil:
		deadline = now + *req.Slack
	case req.SLO != nil:
		// Class-tiered deadline tightness, only when the request opted in by
		// naming its class and left the deadline to the server: gold buys
		// tighter deadlines, bronze gets looser ones. Untagged requests keep
		// the paper's formula bit-for-bit.
		deadline = now + e.model.TypeMeanExec(req.Type) +
			e.model.Params.LoadFactorMult*e.model.TAvg()*cls.SlackMult()
	}
	priority := 1.0
	if req.Priority != nil {
		priority = *req.Priority
	}
	return workload.Task{ID: id, Type: req.Type, Arrival: now, Deadline: deadline, U: u,
		Priority: priority, Tenant: req.Tenant, Class: cls}
}

// currentStage returns the active brownout stage's measures (nil nominal).
func (e *Engine) currentStage() *energy.BrownoutStage {
	if e.bro == nil {
		return nil
	}
	return e.bro.Current()
}

// shed records one shed decision.
func (e *Engine) shed(now float64, task workload.Task, reason string, wait time.Duration) Decision {
	e.st.shed.Add(1)
	e.st.shedByRsn[shedIdx(reason)].Add(1)
	e.met.shedBy(reason).Inc()
	e.walShed(now, task.ID, reason, task.Tenant)
	if e.shedObs != nil {
		e.shedObs.TaskShed(now, task, reason)
	} else {
		e.cfg.Observer.TaskDiscarded(now, task)
	}
	return Decision{Status: StatusShed, Reason: reason, TaskID: task.ID,
		Arrival: task.Arrival, Deadline: task.Deadline, QueueWait: wait}
}

// mapTask runs the full immediate-mode mapping for one task: candidate
// enumeration honoring down cores, breakers, and brownout floors, then the
// configured filter chain (plus the request's own energy cap), then the
// heuristic's choice.
func (e *Engine) mapTask(now float64, task workload.Task, maxEnergy *float64) *sched.Candidate {
	ctx := &sched.Context{
		Now:           now,
		Task:          task,
		Model:         e.model,
		Calc:          e.calc,
		EnergyLeft:    e.meter.Remaining(),
		TasksLeft:     e.cfg.Horizon,
		AvgQueueDepth: float64(e.inSystem) / float64(len(e.cores)),
		Rand:          e.rand,
		Counters:      e.counters,
		FreeTimes:     e.ftc,
		Arena:         e.arena,
		CoreUp:        e.coreUp(now),
	}
	if e.brk != nil {
		ctx.Availability = func(coreIdx int) float64 {
			if e.down[coreIdx] {
				return 0
			}
			return e.avail
		}
	}
	if cur := e.currentStage(); cur != nil {
		ctx.PStateFloor = cur.PStateFloor
		if cur.ZetaMul > 0 {
			ctx.ZetaMulOverride = cur.ZetaMul
		}
	}
	cands := sched.BuildCandidates(ctx, e)
	if len(cands) == 0 {
		return nil
	}
	mapper := e.cfg.Mapper
	if maxEnergy != nil {
		capped := *mapper
		capped.Filters = append([]sched.Filter{sched.EECCapFilter{Cap: *maxEnergy}}, mapper.Filters...)
		mapper = &capped
	}
	return mapper.Map(ctx, cands)
}

// coreUp builds the candidate-eligibility predicate for time now: the core
// is physically up and its node's circuit breaker admits traffic.
func (e *Engine) coreUp(now float64) func(int) bool {
	return func(idx int) bool {
		if e.down[idx] {
			return false
		}
		if e.brk != nil && !e.brk.allows(e.cores[idx].Node, now) {
			return false
		}
		return true
	}
}

// place enqueues a mapped task on its core and starts it if the core is
// free. attempts carries the fault-retry count for requeued tasks.
func (e *Engine) place(now float64, task workload.Task, chosen *sched.Candidate, attempts int) {
	// Audit the decision (first mapping or fault retry) before enqueueing:
	// Predict() convolves against the queue snapshot the mapper saw.
	if e.dobs != nil {
		e.dobs.TaskDecision(now, task, chosen.Assignment, chosen.Predict(), chosen.EEC)
	}
	actual := e.model.ActualExecTime(task, chosen.Core.Node, chosen.PState)
	idx := chosen.CoreIdx
	e.walMap(now, task, idx, chosen.PState, actual, attempts)
	e.queues[idx] = append(e.queues[idx], queued{task: task, pstate: chosen.PState, actual: actual, attempts: attempts})
	e.ftc.OnEnqueue(idx, chosen.Core.Node, task.Type, chosen.PState, len(e.queues[idx]))
	e.inSystem++
	e.st.assigned.Add(1)
	e.updInflight()
	if e.brk != nil {
		e.brk.onMapped(chosen.Core.Node)
	}
	e.cfg.Observer.TaskMapped(now, task, chosen.Assignment)
	if len(e.queues[idx]) == 1 {
		e.start(now, idx)
	}
}

// start begins executing the head of a core's queue.
func (e *Engine) start(now float64, coreIdx int) {
	e.ftc.Invalidate(coreIdx) // the head gains Started/StartAt
	head := &e.queues[coreIdx][0]
	e.setPState(now, coreIdx, head.pstate)
	head.started = true
	head.startAt = now
	e.walAppend(&walRecord{K: wkStart, T: now, ID: head.task.ID, Core: coreIdx, PS: int(head.pstate)})
	e.cfg.Observer.TaskStarted(now, head.task, e.assignment(coreIdx, head.pstate))
	e.push(event{time: now + head.actual, kind: evCompletion, idx: coreIdx, gen: e.runGen[coreIdx]})
}

// setPState transitions a core through the meter, clearing any down-state
// power override, and notifies the observer of real transitions.
func (e *Engine) setPState(now float64, coreIdx int, ps cluster.PState) {
	changed := e.meter.PStateOf(coreIdx) != ps
	if !changed && !e.meter.Overridden(coreIdx) {
		return
	}
	e.meter.SetPState(coreIdx, ps)
	if changed {
		e.cfg.Observer.PStateChanged(now, e.cores[coreIdx], ps)
	}
}

func (e *Engine) assignment(coreIdx int, ps cluster.PState) sched.Assignment {
	return sched.Assignment{Core: e.cores[coreIdx], CoreIdx: coreIdx, PState: ps}
}

// complete retires the head of a core's queue.
func (e *Engine) complete(now float64, coreIdx int) {
	q := e.queues[coreIdx]
	head := q[0]
	e.queues[coreIdx] = q[1:]
	e.ftc.Invalidate(coreIdx)
	e.inSystem--
	e.updInflight()
	onTime := now <= head.task.Deadline
	if onTime {
		e.st.onTime.Add(1)
		e.met.completedOn.Inc()
	} else {
		e.st.late.Add(1)
		e.met.completedLate.Inc()
	}
	e.tenantCompleted(head.task, onTime)
	e.walAppend(&walRecord{K: wkFinish, T: now, ID: head.task.ID, Core: coreIdx, OK: onTime})
	if e.brk != nil {
		snap := e.brkSnap()
		e.brk.onSuccess(e.cores[coreIdx].Node)
		e.walBreakerDiff(now, snap)
	}
	e.cfg.Observer.TaskFinished(now, head.task, e.assignment(coreIdx, head.pstate), onTime)
	if len(e.queues[coreIdx]) > 0 {
		e.start(now, coreIdx)
	} else {
		e.setPState(now, coreIdx, e.cfg.IdlePState)
	}
}

// fail records one mapped task lost before completion.
func (e *Engine) fail(task workload.Task, reason string) {
	e.st.failed.Add(1)
	e.met.failed.Inc()
	e.tenantFailed(task)
	if e.shedObs != nil {
		e.shedObs.TaskShed(math.Float64frombits(e.virtualAt.Load()), task, reason)
	}
}

// abortPending answers every queued request after an abrupt Close.
func (e *Engine) abortPending() {
	for {
		select {
		case p := <-e.admit:
			if p.ts != nil {
				p.ts.release()
				p.ts.timedout.Add(1)
			}
			e.st.timedout.Add(1)
			e.met.timedout.Inc()
			p.resp <- Decision{Status: StatusTimedOut}
		default:
			return
		}
	}
}

// drain is the graceful shutdown path, run on the engine goroutine:
// decide everything still queued, then fast-forward virtual time through
// the event heap until no task is in flight. Returns an error when the
// grace expired and stragglers had to be failed.
func (e *Engine) drain() error {
	// Phase 1: every admitted-but-undecided request gets its decision.
	// Mapping is still allowed — these tasks were accepted before the
	// drain began and deserve their shot; the fast-forward below will
	// complete them.
	for {
		select {
		case p := <-e.admit:
			e.decide(p)
		default:
			goto flush
		}
	}
flush:
	e.commit() // phase-1 decisions become durable before fast-forwarding
	// Phase 2: fast-forward in-flight work. Virtual time jumps straight
	// to each event; the wall-clock grace bounds the loop. Fault events
	// are consumed without effect (ProcessNextEvent, draining).
	deadline := time.Now().Add(e.cfg.DrainGrace)
	for e.pendingWork() > 0 && !e.halted.Load() {
		if !e.HasPendingEvents() {
			// No completion can ever fire for the remaining tasks — a
			// bug guard, not an expected path.
			break
		}
		if time.Now().After(deadline) {
			break
		}
		e.ProcessNextEvent()
	}
	return e.drainFinish()
}

// drainFinish is the drain epilogue: fail stragglers that outlived the
// grace, answer every still-queued request, and commit. Shared by the
// single-engine drain and the router's multi-shard orchestrated drain.
func (e *Engine) drainFinish() error {
	var err error
	if n := e.pendingWork(); n > 0 && !e.halted.Load() {
		for idx := range e.queues {
			for _, q := range e.queues[idx] {
				e.fail(q.task, FailDrainTimeout)
			}
			e.queues[idx] = nil
			e.ftc.Invalidate(idx)
		}
		for _, r := range e.requeues {
			e.fail(r.task, FailDrainTimeout)
		}
		e.requeues = make(map[int]requeueEntry)
		err = fmt.Errorf("server: drain grace %v expired with %d task(s) in flight (failed, not orphaned)", e.cfg.DrainGrace, n)
		e.inSystem = 0
		e.updInflight()
		// Like halt: one atomic record for the wholesale clear.
		e.walAppend(&walRecord{K: wkFlush, T: e.now(), Rsn: FailDrainTimeout, N: n})
	}
	// Any request that raced into the queue between the draining flag and
	// the channel drain above still gets an answer.
	e.abortPending()
	e.commit()
	return err
}
