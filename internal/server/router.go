package server

// The Router is the robustness boundary of the sharded serving stack: it
// owns N engine shards (disjoint node slices, energy sub-budgets carved from
// ζ_max, independent WAL incarnations), routes each request through a
// pluggable Placement policy with failover retry, probes shard liveness, and
// — when a shard dies — stops routing to it, bounces its queued-undecided
// work to survivors, and reclaims its unspent sub-budget so the global
// consumed ≤ ζ_max invariant is preserved without stranding headroom.
//
// Budget ledger invariant: Σ shard.budget + slack ≡ ζ_max at all times (the
// ledger is router-owned; each engine's meter mirrors its entry best-effort
// through AdjustBudget, and a failed grant parks the amount in slack rather
// than breaking the sum). Since every meter enforces consumed ≤ its
// sub-budget and the installed meter budgets never exceed the ledger,
// Σ consumed ≤ ζ_max holds globally across failover and rebalance.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// shardSeedStride de-correlates per-shard RNG streams: shard i serves with
// Seed + i*stride (the 64-bit golden ratio, the usual splitmix increment).
// Shard 0 keeps the base seed, so a one-shard router is seed-identical to
// the unsharded engine.
const shardSeedStride = 0x9e3779b97f4a7c15

// RouterConfig tunes the router tier around a base engine Config.
type RouterConfig struct {
	// Placement picks the shard for each request; nil = round-robin.
	Placement Placement
	// ProbeEvery is the wall-clock period between loop-liveness probes;
	// 0 disables the health prober (shards die only by explicit kill).
	ProbeEvery time.Duration
	// ProbeTimeout bounds one probe; defaults to 1s.
	ProbeTimeout time.Duration
	// SuspectAfter and DeadAfter are the consecutive-miss thresholds of the
	// health automaton (healthy → suspect → dead); default 1 and 3.
	SuspectAfter int
	DeadAfter    int
	// RebalanceEvery is the period between budget-controller passes that
	// shift sub-budgets toward observed per-shard consumption rates;
	// 0 disables rebalancing (death-time reclamation still runs).
	RebalanceEvery time.Duration
	// Metrics receives router_* instrumentation; nil disables.
	Metrics *metrics.Registry
	// Shape, when set, is called with each derived shard Config before the
	// shard engine is built — the hook ecserve uses to attach per-shard
	// flight-trace observers.
	Shape func(id int, cfg *Config)
}

// routerMetrics is the router-tier instrument bundle (nil-safe handles).
type routerMetrics struct {
	requests   *metrics.Counter
	failovers  *metrics.Counter
	noShard    *metrics.Counter
	kills      *metrics.Counter
	probeMiss  *metrics.Counter
	rebalances *metrics.Counter
	admitting  *metrics.Gauge
	reclaimed  *metrics.Gauge
	slackG     *metrics.Gauge
}

func newRouterMetrics(r *metrics.Registry) *routerMetrics {
	return &routerMetrics{
		requests:   r.Counter("router_requests_total"),
		failovers:  r.Counter("router_failovers_total"),
		noShard:    r.Counter("router_rejected_total", metrics.L("reason", RejectNoShard)),
		kills:      r.Counter("router_shard_kills_total"),
		probeMiss:  r.Counter("router_probe_misses_total"),
		rebalances: r.Counter("router_budget_rebalances_total"),
		admitting:  r.Gauge("router_shards_admitting"),
		reclaimed:  r.Gauge("router_budget_reclaimed"),
		slackG:     r.Gauge("router_budget_slack"),
	}
}

// Router fans requests across engine shards. Construct with NewSharded,
// then (optionally) RecoverAll, then Start; finish with Drain or Close, or
// DrainAllNow on the recovered-offline path.
type Router struct {
	shards []*Shard
	place  Placement
	cfg    RouterConfig

	baseSeed   uint64
	baseModel  *workload.Model // the full (unsliced) cluster, for /v1/model
	total      float64         // ζ_max (+Inf unconstrained); Σ ledger + slack ≡ total
	idleWindow float64         // ζ_max over the summed idle draw (+Inf unconstrained)

	// pickMu confines placement state (the round-robin cursor) and makes
	// candidate assembly + Choose atomic per request.
	pickMu sync.Mutex

	// budMu guards the sub-budget ledger: shard.budget, slack, lastCons.
	budMu     sync.Mutex
	slack     float64 // freed budget no live shard would accept (normally 0)
	reclaimed float64 // cumulative budget reclaimed from dead shards
	lastCons  []float64

	kills []fault.ShardKill // scripted chaos kills, control goroutine only

	started  atomic.Bool
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	met *routerMetrics
}

// NewSharded partitions the base configuration into n engine shards behind a
// router. Shard i owns a contiguous node slice (greedily balanced by core
// count), an energy sub-budget proportional to its cores with Σ ≡ ζ_max
// exactly, seed Seed + i*stride, and WAL/checkpoint paths suffixed ".s<i>".
//
// n=1 is the identity: one shard with the whole cluster, the full budget,
// the base seed, and the unmodified WAL path — bit-identical to the
// unsharded engine on the same inputs.
//
// Scripted core/node fault entries are rejected at n>1 (their indices are
// global and cannot be split meaningfully); stochastic MTBF fault processes
// run independently per shard over its sub-cluster. shard-kill entries are
// consumed here by the router and never reach the engines.
func NewSharded(base Config, n int, rcfg RouterConfig) (*Router, error) {
	if base.Model == nil {
		return nil, errors.New("server: Config.Model is nil")
	}
	nNodes := base.Model.Cluster.N()
	if n < 1 {
		return nil, fmt.Errorf("server: shard count %d must be >= 1", n)
	}
	if n > nNodes {
		return nil, fmt.Errorf("server: shard count %d exceeds node count %d", n, nNodes)
	}
	if n > 1 && len(base.Faults.Script) > 0 {
		return nil, errors.New("server: scripted core/node faults are not supported with shards > 1 (indices are global); use stochastic mtbf faults or shard-kill")
	}
	kills := base.Faults.ShardKills
	for _, k := range kills {
		if k.Shard >= n {
			return nil, fmt.Errorf("server: shard-kill targets shard %d of %d", k.Shard, n)
		}
	}
	zeta := base.Budget
	if zeta == 0 {
		zeta = math.Inf(1)
	}
	if !(zeta > 0) {
		return nil, fmt.Errorf("server: budget %v must be positive (use 0 or +Inf to disable)", base.Budget)
	}

	parts := partitionNodes(base.Model.Cluster, n)
	coresOf := make([]int, n)
	totalCores := 0
	for i, p := range parts {
		for _, node := range p {
			coresOf[i] += base.Model.Cluster.Nodes[node].Cores()
		}
		totalCores += coresOf[i]
	}
	// Carve ζ_max ∝ core counts; the last shard takes the exact remainder
	// so the ledger sums to ζ_max to the bit.
	subs := make([]float64, n)
	if math.IsInf(zeta, 1) {
		for i := range subs {
			subs[i] = math.Inf(1)
		}
	} else {
		var acc float64
		for i := 0; i < n-1; i++ {
			subs[i] = zeta * float64(coresOf[i]) / float64(totalCores)
			acc += subs[i]
		}
		subs[n-1] = zeta - acc
	}

	if rcfg.Placement == nil {
		rcfg.Placement = &RoundRobinPlacement{}
	}
	if rcfg.ProbeTimeout <= 0 {
		rcfg.ProbeTimeout = time.Second
	}
	if rcfg.SuspectAfter <= 0 {
		rcfg.SuspectAfter = 1
	}
	if rcfg.DeadAfter <= rcfg.SuspectAfter {
		rcfg.DeadAfter = rcfg.SuspectAfter + 2
	}

	shards := make([]*Shard, n)
	for i := range shards {
		cfg := base
		cfg.Faults.ShardKills = nil // router-level; engines never see them
		if n > 1 {
			m, err := base.Model.Slice(parts[i])
			if err != nil {
				return nil, err
			}
			cfg.Model = m
			if !math.IsInf(subs[i], 1) {
				cfg.Budget = subs[i]
			}
			cfg.Seed = base.Seed + uint64(i)*shardSeedStride
			if base.WALPath != "" {
				cfg.WALPath = fmt.Sprintf("%s.s%d", base.WALPath, i)
				if base.CheckpointPath != "" {
					cfg.CheckpointPath = fmt.Sprintf("%s.s%d", base.CheckpointPath, i)
				}
			}
		}
		if rcfg.Shape != nil {
			rcfg.Shape(i, &cfg)
		}
		eng, err := Prepare(cfg)
		if err != nil {
			return nil, fmt.Errorf("server: shard %d: %w", i, err)
		}
		shards[i] = &Shard{ID: i, Nodes: parts[i], Cores: coresOf[i], eng: eng, budget: subs[i]}
	}
	sort.Slice(kills, func(a, b int) bool { return kills[a].Time < kills[b].Time })
	idleWindow := math.Inf(1)
	if !math.IsInf(zeta, 1) {
		// The global energy window is ζ_max over the whole cluster's idle
		// draw; each shard's meter carries its slice's rate (immutable after
		// construction, safe to read here before Start).
		var rate float64
		for _, sh := range shards {
			rate += sh.eng.meter.Rate()
		}
		if rate > 0 {
			idleWindow = zeta / rate
		}
	}
	return &Router{
		shards:     shards,
		place:      rcfg.Placement,
		cfg:        rcfg,
		baseSeed:   base.Seed,
		baseModel:  base.Model,
		total:      zeta,
		idleWindow: idleWindow,
		lastCons:   make([]float64, n),
		kills:      append([]fault.ShardKill(nil), kills...),
		stopCh:     make(chan struct{}),
		met:        newRouterMetrics(rcfg.Metrics),
	}, nil
}

// Recovering reports whether any shard is still replaying its log.
func (rt *Router) Recovering() bool {
	for _, sh := range rt.shards {
		if sh.eng.Recovering() {
			return true
		}
	}
	return false
}

// partitionNodes splits the cluster's node indices into n contiguous,
// non-empty slices, greedily balancing core counts: each shard keeps taking
// the next node while that brings it closer to the remaining-average core
// target, always leaving one node for every shard still to come.
func partitionNodes(c *cluster.Cluster, n int) [][]int {
	total := c.TotalCores()
	parts := make([][]int, n)
	next, remCores := 0, total
	for i := 0; i < n; i++ {
		maxTake := c.N() - next - (n - 1 - i)
		target := float64(remCores) / float64(n-i)
		take := 1
		acc := c.Nodes[next].Cores()
		for take < maxTake {
			nc := c.Nodes[next+take].Cores()
			if math.Abs(float64(acc+nc)-target) <= math.Abs(float64(acc)-target) {
				acc += nc
				take++
			} else {
				break
			}
		}
		parts[i] = make([]int, take)
		for j := 0; j < take; j++ {
			parts[i][j] = next + j
		}
		next += take
		remCores -= acc
	}
	// Any stragglers (only possible through rounding pathologies) join the
	// last shard so every node is owned exactly once.
	for ; next < c.N(); next++ {
		parts[n-1] = append(parts[n-1], next)
	}
	return parts
}

// Shards returns the shard set (read-only view).
func (rt *Router) Shards() []*Shard { return rt.shards }

// Placement returns the active placement policy's name.
func (rt *Router) Placement() string { return rt.place.Name() }

// TotalBudget returns ζ_max (+Inf unconstrained).
func (rt *Router) TotalBudget() float64 { return rt.total }

// SubBudgets snapshots the router's sub-budget ledger, index = shard ID.
func (rt *Router) SubBudgets() []float64 {
	rt.budMu.Lock()
	defer rt.budMu.Unlock()
	out := make([]float64, len(rt.shards))
	for i, sh := range rt.shards {
		out[i] = sh.budget
	}
	return out
}

// SlackBudget returns the freed budget currently parked at the router
// because no live shard would accept it (normally 0).
func (rt *Router) SlackBudget() float64 {
	rt.budMu.Lock()
	defer rt.budMu.Unlock()
	return rt.slack
}

// RecoverAll replays each shard's checkpoint + WAL in shard order.
func (rt *Router) RecoverAll() ([]*RecoveryReport, error) {
	reps := make([]*RecoveryReport, 0, len(rt.shards))
	for _, sh := range rt.shards {
		rep, err := sh.eng.RecoverFrom()
		if err != nil {
			return reps, fmt.Errorf("server: shard %d: %w", sh.ID, err)
		}
		// Recovery may have restored an adjusted (wkBudget) sub-budget;
		// re-anchor the ledger so Σ stays ≡ ζ_max against what the meters
		// actually enforce.
		rt.budMu.Lock()
		sh.budget = sh.eng.Budget()
		rt.budMu.Unlock()
		reps = append(reps, rep)
	}
	return reps, nil
}

// Start launches every shard engine and, when any periodic duty is
// configured (probes, rebalancing, scripted kills), the control goroutine.
func (rt *Router) Start() error {
	for _, sh := range rt.shards {
		if err := sh.eng.Start(); err != nil {
			return fmt.Errorf("server: shard %d: %w", sh.ID, err)
		}
	}
	rt.started.Store(true)
	if tick := rt.controlTick(); tick > 0 {
		rt.wg.Add(1)
		go rt.control(tick)
	}
	return nil
}

// controlTick returns the control loop period: the finest of the configured
// duties, or 0 when the router has nothing periodic to do.
func (rt *Router) controlTick() time.Duration {
	tick := time.Duration(0)
	consider := func(d time.Duration) {
		if d > 0 && (tick == 0 || d < tick) {
			tick = d
		}
	}
	consider(rt.cfg.ProbeEvery)
	consider(rt.cfg.RebalanceEvery)
	if len(rt.kills) > 0 {
		consider(25 * time.Millisecond)
	}
	return tick
}

// control is the router's periodic duty loop: scripted kills, health
// probes, and budget rebalancing.
func (rt *Router) control(tick time.Duration) {
	defer rt.wg.Done()
	t := time.NewTicker(tick)
	defer t.Stop()
	var lastProbe, lastReb time.Time
	for {
		select {
		case <-rt.stopCh:
			return
		case <-t.C:
			rt.fireScriptedKills()
			if rt.cfg.ProbeEvery > 0 && time.Since(lastProbe) >= rt.cfg.ProbeEvery {
				rt.probeAll()
				lastProbe = time.Now()
			}
			if rt.cfg.RebalanceEvery > 0 && time.Since(lastReb) >= rt.cfg.RebalanceEvery {
				rt.rebalance()
				lastReb = time.Now()
			}
		}
	}
}

// fireScriptedKills kills any shard whose virtual time has reached its
// scripted kill instant.
func (rt *Router) fireScriptedKills() {
	for len(rt.kills) > 0 {
		fired := false
		for i, k := range rt.kills {
			sh := rt.shards[k.Shard]
			if sh.Health() == ShardDead {
				rt.kills = append(rt.kills[:i], rt.kills[i+1:]...)
				fired = true
				break
			}
			if sh.eng.VirtualNow() >= k.Time {
				rt.kills = append(rt.kills[:i], rt.kills[i+1:]...)
				_ = rt.KillShard(k.Shard)
				fired = true
				break
			}
		}
		if !fired {
			return
		}
	}
}

// probeAll runs one liveness probe per live shard and advances the health
// automaton: a hit resets to healthy, consecutive misses escalate
// healthy → suspect → dead, and a dead verdict fail-stops the shard.
func (rt *Router) probeAll() {
	admitting := 0
	for _, sh := range rt.shards {
		if sh.Health() == ShardDead || sh.eng.Killed() {
			continue
		}
		if sh.eng.Recovering() {
			continue // no loop yet; not a liveness signal
		}
		if sh.eng.probeLiveness(rt.cfg.ProbeTimeout) {
			sh.misses = 0
			sh.health.Store(int32(ShardHealthy))
			admitting++
			continue
		}
		sh.misses++
		rt.met.probeMiss.Inc()
		switch {
		case sh.misses >= rt.cfg.DeadAfter:
			_ = rt.KillShard(sh.ID)
		case sh.misses >= rt.cfg.SuspectAfter:
			sh.health.Store(int32(ShardSuspect))
		}
	}
	rt.met.admitting.Set(float64(admitting))
}

// KillShard fail-stops one shard and reclaims its unspent sub-budget: the
// chaos kill switch (POST /v1/chaos/kill, shard-kill fault entries) and the
// prober's dead verdict both land here. In-flight work on the shard fails
// as shard-killed; its queued-but-undecided requests bounce back through
// the router's failover path to survivors. Idempotent.
func (rt *Router) KillShard(id int) error {
	if id < 0 || id >= len(rt.shards) {
		return fmt.Errorf("server: no shard %d (have %d)", id, len(rt.shards))
	}
	sh := rt.shards[id]
	for {
		h := sh.health.Load()
		if ShardHealth(h) == ShardDead {
			return nil // already dead; first kill did the work
		}
		if sh.health.CompareAndSwap(h, int32(ShardDead)) {
			break
		}
	}
	rt.met.kills.Inc()
	sh.eng.Kill() // blocks until the loop has fail-stopped; consumed is final
	rt.reclaimLocked(sh)
	return nil
}

// reclaimLocked moves the dead shard's unspent sub-budget to the survivors
// (∝ cores, exact remainder on the last grant) and pins the dead entry at
// its final consumption, preserving Σ ledger + slack ≡ ζ_max.
func (rt *Router) reclaimLocked(dead *Shard) {
	rt.budMu.Lock()
	defer rt.budMu.Unlock()
	if math.IsInf(rt.total, 1) {
		return
	}
	consumed := dead.eng.EnergyConsumed()
	freed := dead.budget - consumed
	if freed <= 0 {
		return
	}
	dead.budget = consumed
	var live []*Shard
	liveCores := 0
	for _, sh := range rt.shards {
		if sh.Health() == ShardDead || sh.eng.Killed() {
			continue
		}
		live = append(live, sh)
		liveCores += sh.Cores
	}
	left := freed
	for i, sh := range live {
		share := left
		if i < len(live)-1 {
			share = freed * float64(sh.Cores) / float64(liveCores)
			if share > left {
				share = left
			}
		}
		if share <= 0 {
			continue
		}
		if err := sh.eng.AdjustBudget(sh.budget + share); err == nil {
			sh.budget += share
			left -= share
		}
	}
	rt.slack += left
	rt.reclaimed += freed - left
	rt.met.reclaimed.Set(rt.reclaimed)
	rt.met.slackG.Set(rt.slack)
}

// rebalance shifts sub-budgets toward observed per-shard consumption rates:
// the live shards' pooled headroom (plus any parked slack) is re-split
// proportionally to energy consumed since the previous pass, so a shard
// burning faster than its carve grows its budget at the expense of idle
// ones. Decreases are applied before increases and every grant moves
// through the freed pool, so Σ ledger + slack ≡ ζ_max holds at every step
// and the installed meter budgets never overshoot the ledger.
func (rt *Router) rebalance() {
	rt.budMu.Lock()
	defer rt.budMu.Unlock()
	if math.IsInf(rt.total, 1) {
		return
	}
	type entry struct {
		sh     *Shard
		cons   float64
		rate   float64
		target float64
	}
	var live []entry
	var pool, consSum, rateSum float64
	for _, sh := range rt.shards {
		cons := sh.eng.EnergyConsumed()
		if sh.Health() == ShardDead || sh.eng.Killed() {
			rt.lastCons[sh.ID] = cons
			continue
		}
		rate := math.Max(0, cons-rt.lastCons[sh.ID])
		rt.lastCons[sh.ID] = cons
		live = append(live, entry{sh: sh, cons: cons, rate: rate})
		pool += sh.budget
		consSum += cons
		rateSum += rate
	}
	if len(live) < 2 {
		return
	}
	pool += rt.slack
	headroom := pool - consSum
	if headroom <= 0 {
		return
	}
	var acc float64
	for i := range live {
		w := 1 / float64(len(live))
		if rateSum > 0 {
			w = live[i].rate / rateSum
		}
		if i < len(live)-1 {
			live[i].target = live[i].cons + headroom*w
			acc += live[i].target
		} else {
			live[i].target = math.Max(live[i].cons, pool-acc)
		}
	}
	// Skip immaterial churn: below 1% of the pool a pass would only spend
	// WAL records and fsyncs to move noise.
	maxDelta := 0.0
	for _, en := range live {
		maxDelta = math.Max(maxDelta, math.Abs(en.target-en.sh.budget))
	}
	if maxDelta < 0.01*pool {
		return
	}
	freed := rt.slack
	rt.slack = 0
	for _, en := range live {
		if en.target >= en.sh.budget {
			continue
		}
		if err := en.sh.eng.AdjustBudget(en.target); err == nil {
			freed += en.sh.budget - en.target
			en.sh.budget = en.target
		}
	}
	for _, en := range live {
		want := en.target - en.sh.budget
		if want <= 0 || freed <= 0 {
			continue
		}
		grant := math.Min(want, freed)
		if err := en.sh.eng.AdjustBudget(en.sh.budget + grant); err == nil {
			en.sh.budget += grant
			freed -= grant
		}
	}
	rt.slack = freed
	rt.met.rebalances.Inc()
	rt.met.slackG.Set(rt.slack)
}

// failoverReason reports whether a rejection is about shard availability —
// worth retrying on a survivor — rather than a semantic verdict on the
// request (tenant quotas, class-weighted brownout) that must not be
// laundered by shopping the request across shards.
func failoverReason(reason string) bool {
	switch reason {
	case RejectShardDown, RejectQueueFull, RejectDraining, RejectRecovering, ShedHalted:
		return true
	}
	return false
}

// Submit routes one request: the placement policy picks among admitting
// shards (healthy first; suspect only when no healthy shard can take it),
// and availability rejections fail over to the next survivor. When every
// shard is dead or without headroom the request is shed with RejectNoShard
// and a Retry-After. A task bounced off a dying shard (shard-down) was
// never durably admitted there, so re-routing cannot double-decide it.
func (rt *Router) Submit(req TaskRequest) (Decision, error) {
	rt.met.requests.Inc()
	tried := make([]bool, len(rt.shards))
	var lastRej *ErrRejected
	for {
		sh := rt.pick(tried)
		if sh == nil {
			break
		}
		d, err := sh.eng.Submit(req)
		if err == nil {
			return d, nil
		}
		var rej *ErrRejected
		if errors.As(err, &rej) && failoverReason(rej.Reason) {
			tried[sh.ID] = true
			lastRej = rej
			rt.met.failovers.Inc()
			continue
		}
		return d, err
	}
	rt.met.noShard.Inc()
	ra := time.Second
	if lastRej != nil && lastRej.RetryAfter > ra {
		ra = lastRej.RetryAfter
	}
	return Decision{}, &ErrRejected{Reason: RejectNoShard, RetryAfter: ra}
}

// pick assembles the candidate set and runs the placement policy under the
// placement mutex (stateful policies, atomic signal snapshot).
func (rt *Router) pick(tried []bool) *Shard {
	rt.pickMu.Lock()
	defer rt.pickMu.Unlock()
	cands := rt.candidates(tried, ShardHealthy)
	if len(cands) == 0 {
		cands = rt.candidates(tried, ShardSuspect)
	}
	if len(cands) == 0 {
		return nil
	}
	return rt.place.Choose(cands).Shard
}

// candidates lists the untried admitting shards at one health tier, in
// ascending shard-ID order.
func (rt *Router) candidates(tried []bool, h ShardHealth) []*ShardCandidate {
	var out []*ShardCandidate
	for _, sh := range rt.shards {
		if tried[sh.ID] || sh.Health() != h || !sh.admitting() {
			continue
		}
		out = append(out, &ShardCandidate{
			Shard:    sh,
			QueueLen: sh.eng.QueueDepth(),
			QueueCap: sh.eng.QueueCap(),
			InFlight: sh.eng.st.inflight.Load(),
			Consumed: sh.eng.EnergyConsumed(),
			Budget:   sh.eng.Budget(),
		})
	}
	return out
}

// Admitting reports whether at least one shard can take new work — the
// router-level readiness bit.
func (rt *Router) Admitting() bool {
	for _, sh := range rt.shards {
		if sh.admitting() {
			return true
		}
	}
	return false
}

// ShardStatus is one shard's row in the /v1/readyz document.
type ShardStatus struct {
	ID         int     `json:"id"`
	Health     string  `json:"health"` // healthy | suspect | dead | recovering
	Admitting  bool    `json:"admitting"`
	Nodes      []int   `json:"nodes"`
	Cores      int     `json:"cores"`
	QueueDepth int     `json:"queueDepth"`
	VirtualNow float64 `json:"virtualNow"`
	Consumed   float64 `json:"energyConsumed"`
	Budget     float64 `json:"energyBudget,omitempty"`
}

// ShardStatuses snapshots per-shard readiness for /v1/readyz.
func (rt *Router) ShardStatuses() []ShardStatus {
	out := make([]ShardStatus, len(rt.shards))
	for i, sh := range rt.shards {
		out[i] = ShardStatus{
			ID:         sh.ID,
			Health:     sh.HealthString(),
			Admitting:  sh.admitting(),
			Nodes:      sh.Nodes,
			Cores:      sh.Cores,
			QueueDepth: sh.eng.QueueDepth(),
			VirtualNow: sh.eng.VirtualNow(),
			Consumed:   sh.eng.EnergyConsumed(),
		}
		if b := sh.eng.Budget(); !math.IsInf(b, 1) {
			out[i].Budget = b
		}
	}
	return out
}

// Stats aggregates the accounting across shards: counters sum (each shard's
// ledger balances independently, so the sum balances too), virtual time and
// brownout stage take the maximum, and the energy budget is ζ_max.
func (rt *Router) Stats() Stats {
	var agg Stats
	agg.Draining, agg.Halted = true, true
	for _, sh := range rt.shards {
		s := sh.eng.Stats()
		agg.Received += s.Received
		agg.Rejected += s.Rejected
		agg.Admitted += s.Admitted
		agg.Mapped += s.Mapped
		agg.Shed += s.Shed
		agg.TimedOut += s.TimedOut
		agg.OnTime += s.OnTime
		agg.Late += s.Late
		agg.Failed += s.Failed
		agg.InFlight += s.InFlight
		agg.Assigned += s.Assigned
		agg.Faults += s.Faults
		agg.Retries += s.Retries
		agg.BreakerOpens += s.BreakerOpens
		agg.ShedFiltered += s.ShedFiltered
		agg.ShedInfeasible += s.ShedInfeasible
		agg.ShedBrownout += s.ShedBrownout
		agg.ShedHalted += s.ShedHalted
		agg.EnergyConsumed += s.EnergyConsumed
		agg.VirtualNow = math.Max(agg.VirtualNow, s.VirtualNow)
		if s.BrownoutStage > agg.BrownoutStage {
			agg.BrownoutStage = s.BrownoutStage
		}
		agg.Draining = agg.Draining && s.Draining
		agg.Halted = agg.Halted && s.Halted
	}
	if !math.IsInf(rt.total, 1) {
		agg.EnergyBudget = rt.total
	}
	return agg
}

// FinalReport aggregates the post-drain document: global stats, the orphan
// check over the summed ledger, per-tenant accounting merged across shards,
// plus every shard's own report for per-shard auditing.
func (rt *Router) FinalReport() *FinalReport {
	st := rt.Stats()
	orphaned := (st.Admitted - st.Mapped - st.Shed - st.TimedOut) +
		(st.Mapped - st.OnTime - st.Late - st.Failed)
	r := &FinalReport{
		Policy:        rt.shards[0].eng.cfg.Mapper.Name(),
		Seed:          rt.baseSeed,
		UptimeSeconds: time.Since(rt.shards[0].eng.started).Seconds(),
		Stats:         st,
		Orphaned:      orphaned,
		Balanced:      st.Balanced() && st.InFlight == 0,
		Tenants:       rt.mergedTenants(),
		Shards:        rt.ShardStatuses(),
	}
	if reg := rt.shards[0].eng.cfg.Metrics; reg != nil {
		r.Metrics = reg.Snapshot()
	}
	return r
}

// mergedTenants sums per-tenant accounting across shards, sorted by id.
func (rt *Router) mergedTenants() []TenantReport {
	byID := map[string]*TenantReport{}
	var order []string
	for _, sh := range rt.shards {
		for _, t := range sh.eng.TenantReports() {
			agg := byID[t.ID]
			if agg == nil {
				cp := t
				byID[t.ID] = &cp
				order = append(order, t.ID)
				continue
			}
			agg.Admitted += t.Admitted
			agg.Rejected += t.Rejected
			agg.Mapped += t.Mapped
			agg.Shed += t.Shed
			agg.ShedInfeasible += t.ShedInfeasible
			agg.TimedOut += t.TimedOut
			agg.OnTime += t.OnTime
			agg.Late += t.Late
			agg.Failed += t.Failed
			agg.Quarantines += t.Quarantines
		}
	}
	if len(order) == 0 {
		return nil
	}
	sort.Strings(order)
	out := make([]TenantReport, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out
}

// stopControl halts the periodic duties before any shutdown path.
func (rt *Router) stopControl() {
	rt.stopOnce.Do(func() { close(rt.stopCh) })
	rt.wg.Wait()
}

// Drain gracefully shuts every live shard down concurrently (each drain
// fast-forwards its own virtual axis). Dead shards have already flushed.
func (rt *Router) Drain(ctx context.Context) error {
	rt.stopControl()
	errs := make([]error, len(rt.shards))
	var wg sync.WaitGroup
	for i, sh := range rt.shards {
		if sh.eng.Killed() {
			continue
		}
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			errs[i] = sh.eng.Drain(ctx)
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Close stops every shard without draining.
func (rt *Router) Close() {
	rt.stopControl()
	for _, sh := range rt.shards {
		sh.eng.Close()
	}
}

// DrainAllNow is the deterministic multi-shard drain for the
// recovered-offline path (loops never started): every shard freezes its
// clock at its recovered instant, then one orchestrator goroutine
// interleaves event processing across shards on the shared virtual axis —
// always advancing the shard with the earliest pending event, ties to the
// lowest shard ID — until no shard has work left. With one shard this is
// step-for-step identical to Engine.DrainNow, which is what the shards=1
// bit-identity gate asserts.
func (rt *Router) DrainAllNow() error {
	rt.stopControl()
	for _, sh := range rt.shards {
		sh.eng.beginInlineDrain()
	}
	grace := rt.shards[0].eng.cfg.DrainGrace
	deadline := time.Now().Add(grace)
	for {
		var best *Engine
		bt := math.Inf(1)
		for _, sh := range rt.shards {
			e := sh.eng
			if e.pendingWork() == 0 || e.halted.Load() || !e.HasPendingEvents() {
				continue
			}
			if t := e.PeekNextEventTime(); t < bt {
				best, bt = e, t
			}
		}
		if best == nil || time.Now().After(deadline) {
			break
		}
		best.ProcessNextEvent()
	}
	errs := make([]error, len(rt.shards))
	for i, sh := range rt.shards {
		errs[i] = sh.eng.drainFinish()
		sh.eng.finishInlineDrain()
	}
	return errors.Join(errs...)
}
