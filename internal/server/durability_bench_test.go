package server

import (
	"os"
	"path/filepath"
	"testing"
)

// BenchmarkWALAppend measures the write-ahead log's hot path. "stage" is
// encoding and buffering one admission record under the append mutex;
// "commit" is the full durable unit — one record staged plus the group
// commit's flush+fsync. The commit figure is the latency floor a
// single-decision group pays before its client ack is released; real bursts
// amortize the fsync across every record the loop iteration staged.
func BenchmarkWALAppend(b *testing.B) {
	rec := walRecord{
		K: wkAdmit, T: 41.5, MT: 41.5, EN: 9.3e5,
		ID: 7, Ty: 3, Arr: 41.5, DL: 55.2, U: 0.4375, Pri: 1,
		QS: "0123456789abcdef0123456789abcdef",
	}
	open := func(b *testing.B) *wal {
		w, err := createWAL(filepath.Join(b.TempDir(), "wal"), walHeader{
			Format: walFormat, ModelHash: "bench", Seed: 1, Policy: "LL", Budget: -1, Incarnation: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = w.close() })
		return w
	}
	b.Run("stage", func(b *testing.B) {
		w := open(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := rec
			r.ID = i
			w.append(&r)
		}
		b.StopTimer()
		if err := w.commit(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("commit", func(b *testing.B) {
		w := open(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := rec
			r.ID = i
			w.append(&r)
			if err := w.commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRecover measures one full crash recovery over the durability
// tests' scenario: checkpoint load, WAL suffix replay, dangler resolution,
// event-heap rebuild, and the rotation's post-recovery checkpoint + new WAL
// incarnation. Each iteration recovers a fresh copy of the same crashed
// state, so the work per op is constant.
func BenchmarkRecover(b *testing.B) {
	m := buildModel(b, 30)
	seedDir := b.TempDir()
	clk := NewManualClock()
	eng, err := New(durableCfg(b, m, seedDir, clk))
	if err != nil {
		b.Fatal(err)
	}
	driveScenario(b, eng, clk, m)
	eng.Close() // abrupt stop: WAL and checkpoint stay behind
	walSeed, err := os.ReadFile(filepath.Join(seedDir, "wal.1"))
	if err != nil {
		b.Fatal(err)
	}
	// Recover from the mid-stream checkpoint, not the final one: the final
	// cut has an empty suffix, which would make this a checkpoint-load bench.
	ckptSeed, err := os.ReadFile(filepath.Join(seedDir, "ckpt.mid"))
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var replayed int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal.1"), walSeed, 0o644); err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "ckpt"), ckptSeed, 0o644); err != nil {
			b.Fatal(err)
		}
		cfg := durableCfg(b, m, dir, NewManualClock())
		b.StartTimer()
		e, err := Prepare(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := e.RecoverFrom()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		replayed += int64(rep.ReplayedRecords)
		if e.wal != nil {
			_ = e.wal.close()
		}
		b.StartTimer()
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(replayed)/float64(b.N), "records/op")
	}
}
