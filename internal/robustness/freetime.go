package robustness

import (
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/pmf"
)

// FreeTimeEngine caches each core's §IV-B free-time convolution chain
// across mapping decisions. The naive pipeline rebuilds every core's chain
// from scratch at every decision, yet an immediate-mode decision mutates
// exactly one core's queue — on a 64-core cluster ~63 chains are
// recomputed identically on the next arrival.
//
// Bit-identity is the design constraint: convolution followed by
// compaction is NOT associative, so caching the tail product w1⊗w2⊗…
// alone and convolving a re-derived head against it would change results.
// Instead the engine caches the FULL left-associated chain
// ((head⊗w1)⊗w2)… — exactly what Calculator.FreeTime computes — keyed by
// (queue version, head truncation cut). The cut is the index TruncateBelow
// applies (pmf.SearchValue): the truncated head, and therefore the whole
// chain, depends on the decision instant only through that index, so as
// long as the cut is stable the cached chain is bit-identical to a fresh
// recomputation. Enqueueing appends one convolution at the RIGHT end of
// the left-associated chain, which preserves association order — the O(1)
// extension the naive loop pays O(queue) for.
//
// Contract: callers own the invalidation discipline. Every queue mutation
// other than a pure tail enqueue — head start, head completion, waiting
// task cancellation, fault requeue, core down — must call Invalidate for
// that core; a tail enqueue must call OnEnqueue. Heads that resist caching
// fall back to the naive path: an unstarted head depends on the raw
// decision instant (pure shift by now), and a fully overdue head
// degenerates to Point(now); neither is stored.
//
// The engine is NOT safe for concurrent use: each simulation engine and
// the online server run their event loops on a single goroutine and own
// one engine instance.
type FreeTimeEngine struct {
	calc  *Calculator
	cores []coreChain

	// Chain-cache instrumentation (nil-safe, attached via Instrument).
	hits, misses, extends, rebuilds *metrics.Counter
	compHits, compMisses, compSkips *metrics.Counter
}

// compKey identifies a candidate completion distribution on one core: the
// task type and P-state determine the execution PMF (the core's node is
// fixed), and together with the core's free time they determine
// Convolve(free, exec).
type compKey struct {
	taskType int
	ps       cluster.PState
}

// compEntry is a cached completion PMF plus the (version, cut, length)
// triple that pins the free-time distribution it was convolved against.
type compEntry struct {
	ver  uint64
	cut  int
	qlen int
	comp pmf.PMF
}

// coreChain is one core's cached state, all guarded by ver: Invalidate
// bumps ver, which lazily discards every derived value below.
type coreChain struct {
	ver uint64

	// comp is the running head's execution PMF shifted by its start time —
	// the now-independent part of the head stage, derived once per version.
	comp    pmf.PMF
	compVer uint64
	compOK  bool

	// head is comp truncated at headCut and renormalized, with its mean.
	head     pmf.PMF
	headMean float64
	headCut  int
	headVer  uint64
	headOK   bool

	// chain is the full left-associated free-time chain for the whole
	// queue of chainLen tasks, built from the head at chainCut.
	chain    pmf.PMF
	chainCut int
	chainLen int
	chainVer uint64
	chainOK  bool

	// comps caches candidate completion distributions Convolve(chain, exec)
	// per (task type, P-state), each pinned to the exact free-time state it
	// was derived from. Stale entries are overwritten in place, so the map
	// never exceeds |types|·|P-states| entries.
	comps map[compKey]compEntry

	// seenQ/seenNow record the queue state most recently passed to FreeMean
	// or FreeTime, letting RhoSeen re-derive it instead of every candidate
	// carrying its own copy through the mapping hot path.
	seenQ   CoreQueue
	seenNow float64
}

// NewFreeTimeEngine returns an engine for numCores cores evaluating
// against calc's model.
func NewFreeTimeEngine(calc *Calculator, numCores int) *FreeTimeEngine {
	if calc == nil {
		panic("robustness: nil calculator")
	}
	return &FreeTimeEngine{calc: calc, cores: make([]coreChain, numCores)}
}

// Instrument attaches the chain-cache counters: hits (a cached chain was
// returned untouched), misses (no reusable chain existed and it was built
// from scratch), extends (an enqueue was absorbed with one convolution),
// and rebuilds (a chain for the same queue was re-derived because the
// running head's truncation cut drifted). compHits/compMisses count
// completion-distribution lookups answered from (respectively convolved
// into) the per-core completion cache, and compSkips counts ρ evaluations
// resolved to exactly zero by the infeasibility bound without touching a
// distribution at all. Any counter may be nil.
func (e *FreeTimeEngine) Instrument(hits, misses, extends, rebuilds, compHits, compMisses, compSkips *metrics.Counter) {
	e.hits, e.misses, e.extends, e.rebuilds = hits, misses, extends, rebuilds
	e.compHits, e.compMisses, e.compSkips = compHits, compMisses, compSkips
}

// Invalidate discards the core's cached state. Call it on every queue
// mutation that is not a pure tail enqueue.
func (e *FreeTimeEngine) Invalidate(coreIdx int) {
	e.cores[coreIdx].ver++
}

// OnEnqueue absorbs a task of the given type appended at P-state ps to the
// tail of the core's queue, which now holds queueLen tasks. If the core
// has a current chain for the previous queue, one convolution extends it
// in place of the full rebuild the next query would otherwise pay; if not
// (stale, never built, or built from an uncacheable head), the enqueue is
// a no-op and the next query rebuilds lazily.
func (e *FreeTimeEngine) OnEnqueue(coreIdx, node, taskType int, ps cluster.PState, queueLen int) {
	c := &e.cores[coreIdx]
	if !c.chainOK || c.chainVer != c.ver || c.chainLen != queueLen-1 || c.chainLen < 1 {
		return
	}
	c.chain = pmf.Convolve(c.chain, e.calc.model.ExecPMF(taskType, node, ps))
	c.chainLen = queueLen
	e.extends.Inc()
}

// FreeMean returns E[free time] by linearity, reusing the cached truncated
// head mean when the running head's cut is stable. The arithmetic mirrors
// the naive linearity shortcut exactly: the (truncated) head mean plus the
// execution means of the waiting tasks, or now + mean for an unstarted
// head.
func (e *FreeTimeEngine) FreeMean(coreIdx int, q CoreQueue, now float64) float64 {
	c := &e.cores[coreIdx]
	c.seenQ, c.seenNow = q, now
	if len(q.Tasks) == 0 {
		return now
	}
	var mean float64
	if t0 := q.Tasks[0]; t0.Started {
		_, m, _ := e.headFor(coreIdx, q, now)
		mean = m
	} else {
		mean = now + e.calc.model.ExecPMF(t0.Type, q.Node, t0.PState).Mean()
	}
	for _, t := range q.Tasks[1:] {
		mean += e.calc.model.ExecPMF(t.Type, q.Node, t.PState).Mean()
	}
	return mean
}

// FreeTime returns the core's free-time distribution at now,
// bit-identical to Calculator.FreeTime on the same queue. A query whose
// queue version, length, and head cut all match the cached chain is a
// cache hit and costs zero convolutions.
func (e *FreeTimeEngine) FreeTime(coreIdx int, q CoreQueue, now float64) pmf.PMF {
	c := &e.cores[coreIdx]
	c.seenQ, c.seenNow = q, now
	if len(q.Tasks) == 0 {
		return pmf.Point(now)
	}
	var head pmf.PMF
	cut := -1
	if t0 := q.Tasks[0]; t0.Started {
		head, _, cut = e.headFor(coreIdx, q, now)
	} else {
		head = e.calc.model.ExecPMF(t0.Type, q.Node, t0.PState).Shift(now)
	}
	if c.chainOK && c.chainVer == c.ver && c.chainLen == len(q.Tasks) && cut >= 0 && c.chainCut == cut {
		e.hits.Inc()
		return c.chain
	}
	rebuild := c.chainOK && c.chainVer == c.ver && c.chainLen == len(q.Tasks)
	free := e.calc.FreeTimeFrom(head, q, now)
	if cut >= 0 {
		c.chain, c.chainCut, c.chainLen, c.chainVer, c.chainOK = free, cut, len(q.Tasks), c.ver, true
	} else {
		// The head is uncacheable (unstarted or fully overdue); any stored
		// chain for this version can never match again.
		c.chainOK = false
	}
	if rebuild {
		e.rebuilds.Inc()
	} else {
		e.misses.Inc()
	}
	return free
}

// ProbOnTime returns ρ(i,j,k,π,t_l,z) for a candidate of taskType at
// P-state ps against the core's current queue, bit-identical to
// Calculator.ProbOnTime(FreeTime(coreIdx, q, now), ...). The completion
// distribution Convolve(free, exec) is a pure function of the free-time
// chain and the execution PMF, so while the chain is unchanged (same
// version, head cut, and queue length) the cached completion PMF answers
// repeat queries for the same (type, P-state) with zero convolutions —
// only the deadline CDF lookup remains. free, when non-nil, supplies the
// free-time distribution on a completion-cache miss (so callers can route
// the access through their own memo); nil falls back to e.FreeTime.
//
// In exact-ρ mode the evaluator never materializes a completion PMF, so
// there is nothing to cache and the call devolves to the direct double sum.
func (e *FreeTimeEngine) ProbOnTime(coreIdx int, q CoreQueue, now float64, taskType int, ps cluster.PState, deadline float64, free func() pmf.PMF) float64 {
	if free == nil {
		free = func() pmf.PMF { return e.FreeTime(coreIdx, q, now) }
	}
	if e.calc.exactRho {
		return e.calc.ProbOnTime(free(), taskType, q.Node, ps, deadline)
	}
	c := &e.cores[coreIdx]
	cut := -1
	var freeMin float64
	if len(q.Tasks) == 0 {
		freeMin = now
	} else {
		if t0 := q.Tasks[0]; t0.Started {
			var head pmf.PMF
			head, _, cut = e.headFor(coreIdx, q, now)
			freeMin = head.Value(0)
		} else {
			freeMin = now + e.calc.model.ExecPMF(t0.Type, q.Node, t0.PState).Min()
		}
		for _, t := range q.Tasks[1:] {
			freeMin += e.calc.model.ExecPMF(t.Type, q.Node, t.PState).Min()
		}
	}
	exec := e.calc.model.ExecPMF(taskType, q.Node, ps)
	// Infeasibility short-circuit: every impulse of the completion
	// distribution lies at or above the sum of its operands' support minima
	// (Shift and TruncateBelow are exact; convolution values are correctly-
	// rounded sums; compaction replaces runs by mass-weighted centroids,
	// which can dip below the run minimum only by accumulated rounding,
	// ≲1e-12 relative). A deadline below that bound by a 1e-9 relative
	// guard — orders of magnitude wider than the worst-case centroid
	// rounding — therefore lies strictly below every impulse, and ρ is
	// exactly the 0.0 the naive evaluation would return, with no
	// convolution at all. Overloaded cores make this the common case.
	if bound := freeMin + exec.Min(); bound > 0 && deadline < bound*(1-1e-9) {
		e.compSkips.Inc()
		return 0
	}
	key := compKey{taskType: taskType, ps: ps}
	if cut >= 0 {
		if ent, ok := c.comps[key]; ok && ent.ver == c.ver && ent.cut == cut && ent.qlen == len(q.Tasks) {
			e.compHits.Inc()
			return ent.comp.ProbByDeadline(deadline)
		}
	}
	comp := e.calc.CompletionPMF(free(), taskType, q.Node, ps)
	if cut >= 0 {
		if c.comps == nil {
			c.comps = make(map[compKey]compEntry)
		}
		c.comps[key] = compEntry{ver: c.ver, cut: cut, qlen: len(q.Tasks), comp: comp}
	}
	e.compMisses.Inc()
	return comp.ProbByDeadline(deadline)
}

// RhoSeen is ProbOnTime evaluated against the queue state most recently
// passed to FreeMean or FreeTime for this core. BuildCandidates derives
// every core's free-time mean before any candidate's ρ is demanded, and
// queues never mutate mid-decision, so the recorded state is exactly the
// decision's state — without each candidate carrying a queue copy through
// the mapping hot path.
func (e *FreeTimeEngine) RhoSeen(coreIdx, taskType int, ps cluster.PState, deadline float64, free func() pmf.PMF) float64 {
	c := &e.cores[coreIdx]
	return e.ProbOnTime(coreIdx, c.seenQ, c.seenNow, taskType, ps, deadline, free)
}

// headFor derives (and caches) the started head stage for the core's
// current queue at now, returning the truncated completion PMF, its mean,
// and the truncation cut. cut < 0 marks a head whose value depends on the
// raw decision instant (the whole support is overdue and the §IV-B
// pipeline degenerates to Point(now)); such heads are never cached.
func (e *FreeTimeEngine) headFor(coreIdx int, q CoreQueue, now float64) (pmf.PMF, float64, int) {
	t0 := q.Tasks[0]
	c := &e.cores[coreIdx]
	if !c.compOK || c.compVer != c.ver {
		c.comp = e.calc.model.ExecPMF(t0.Type, q.Node, t0.PState).Shift(t0.StartAt)
		c.compVer = c.ver
		c.compOK = true
		c.headOK = false
	}
	cut := c.comp.SearchValue(now)
	if cut == c.comp.Len() {
		return pmf.Point(now), now, -1
	}
	if c.headOK && c.headVer == c.ver && c.headCut == cut {
		return c.head, c.headMean, cut
	}
	if cut == 0 {
		// TruncateBelow would clone; the impulses are identical, and the
		// chain never mutates its head, so share comp directly.
		c.head = c.comp
	} else {
		head, kept := c.comp.TruncateBelow(now)
		if kept <= 0 {
			// All remaining mass vanished: same degenerate Point(now) the
			// naive pipeline produces. Not cacheable.
			return head, now, -1
		}
		c.head = head
	}
	c.headMean = c.head.Mean()
	c.headCut = cut
	c.headVer = c.ver
	c.headOK = true
	return c.head, c.headMean, cut
}

// NumCores returns the number of cores the engine tracks.
func (e *FreeTimeEngine) NumCores() int { return len(e.cores) }
