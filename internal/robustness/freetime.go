package robustness

import (
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/pmf"
)

// FreeTimeEngine caches each core's §IV-B free-time convolution chain
// across mapping decisions. The naive pipeline rebuilds every core's chain
// from scratch at every decision, yet an immediate-mode decision mutates
// exactly one core's queue — on a 64-core cluster ~63 chains are
// recomputed identically on the next arrival.
//
// Bit-identity is the design constraint: convolution followed by
// compaction is NOT associative, so caching the tail product w1⊗w2⊗…
// alone and convolving a re-derived head against it would change results.
// Instead the engine caches the FULL left-associated chain
// ((head⊗w1)⊗w2)… — exactly what Calculator.FreeTime computes — keyed by
// (queue version, head truncation cut). The cut is the index TruncateBelow
// applies (pmf.SearchValue): the truncated head, and therefore the whole
// chain, depends on the decision instant only through that index, so as
// long as the cut is stable the cached chain is bit-identical to a fresh
// recomputation. Enqueueing appends one convolution at the RIGHT end of
// the left-associated chain, which preserves association order — the O(1)
// extension the naive loop pays O(queue) for.
//
// Contract: callers own the invalidation discipline. Every queue mutation
// other than a pure tail enqueue — head start, head completion, waiting
// task cancellation, fault requeue, core down — must call Invalidate for
// that core; a tail enqueue must call OnEnqueue. Heads that resist caching
// fall back to the naive path: an unstarted head depends on the raw
// decision instant (pure shift by now), and a fully overdue head
// degenerates to Point(now); neither is stored.
//
// The engine is NOT safe for concurrent use: each simulation engine and
// the online server run their event loops on a single goroutine and own
// one engine instance.
type FreeTimeEngine struct {
	calc  *Calculator
	cores []coreChain

	// grid routes every query through the fixed-grid pipeline (SetGrid):
	// heads stay sparse-on-lattice, the waiting-tail product is cached
	// densely, and ρ is answered by pmf.TripleConvCDF. Results are then
	// bit-identical to the Calculator's Grid* reference methods.
	grid bool

	// Chain-cache instrumentation (nil-safe, attached via Instrument).
	hits, misses, extends, rebuilds *metrics.Counter
	compHits, compMisses, compSkips *metrics.Counter
	gridRho, freeHits, freeMisses   *metrics.Counter
}

// FreeSource supplies a core's free-time distribution on demand — the hook
// ProbOnTime uses on a completion-cache miss. It is an interface rather
// than a closure so the scheduler's per-decision arena can hand the engine
// a pointer-backed source without a per-candidate closure allocation.
type FreeSource interface{ FreePMF() pmf.PMF }

// compKey identifies a candidate completion distribution on one core: the
// task type and P-state determine the execution PMF (the core's node is
// fixed), and together with the core's free time they determine
// Convolve(free, exec).
type compKey struct {
	taskType int
	ps       cluster.PState
}

// compEntry is a cached completion PMF plus the (version, cut, length)
// triple that pins the free-time distribution it was convolved against.
type compEntry struct {
	ver  uint64
	cut  int
	qlen int
	comp pmf.PMF
}

// coreChain is one core's cached state, all guarded by ver: Invalidate
// bumps ver, which lazily discards every derived value below.
type coreChain struct {
	ver uint64

	// comp is the running head's execution PMF shifted by its start time —
	// the now-independent part of the head stage, derived once per version.
	comp    pmf.PMF
	compVer uint64
	compOK  bool

	// head is comp truncated at headCut and renormalized, with its mean.
	head     pmf.PMF
	headMean float64
	headCut  int
	headVer  uint64
	headOK   bool

	// chain is the full left-associated free-time chain for the whole
	// queue of chainLen tasks, built from the head at chainCut.
	chain    pmf.PMF
	chainCut int
	chainLen int
	chainVer uint64
	chainOK  bool

	// comps caches candidate completion distributions Convolve(chain, exec)
	// per (task type, P-state), each pinned to the exact free-time state it
	// was derived from. Stale entries are overwritten in place, so the map
	// never exceeds |types|·|P-states| entries.
	comps map[compKey]compEntry

	// Grid-mode state, populated only when the engine runs on the lattice.
	// baseL is the running head's execution lattice shifted by its start
	// (the grid analogue of comp); headL is baseL truncated at headLCut.
	baseL    pmf.Lattice
	baseLVer uint64
	baseLOK  bool

	headL     pmf.Lattice
	headLMean float64
	headLCut  int
	headLVer  uint64
	headLOK   bool

	// tail is the dense product of the waiting tasks' execution lattices —
	// the now-independent part of the chain that lattice associativity
	// makes cacheable on its own. tailLen counts the lattices folded in.
	tail    pmf.Grid
	tailLen int
	tailVer uint64
	tailOK  bool

	// hw is the dense tail ⊛ headL product, keyed like the sparse chain by
	// (version, cut, len). It is the shared factor of every candidate's ρ
	// on this core — ConvCDF answers each candidate against its prefix
	// sums in O(|exec|) — and grid-mode FreeTime materializes its sparse
	// form from it. Only cacheable heads (cut ≥ 0) are stored. The product
	// is rebuilt into hwScratch, so the cut drifting with now (which
	// invalidates it once per decision per busy core at steady state)
	// recycles the same backing arrays instead of churning the heap; hw is
	// therefore only valid until the next rebuild, which is exactly its
	// cache lifetime.
	hw        pmf.Grid
	hwScratch pmf.GridScratch
	hwCut     int
	hwLen     int
	hwVer     uint64
	hwOK      bool

	// rho memoizes the candidate-independent slice of a grid-mode ρ
	// evaluation — the head lattice, its cut, and the chain's minimum
	// completion bound — per (version, queue length, decision instant).
	// Every P-state candidate on the core shares these within a decision.
	rhoHead    pmf.Lattice
	rhoCut     int
	rhoFreeMin float64
	rhoNow     float64
	rhoLen     int
	rhoVer     uint64
	rhoOK      bool

	// chainG is the materialized sparse form of tail ⊛ headL that grid-mode
	// FreeTime returns, keyed like the sparse chain by (version, cut, len).
	chainG    pmf.PMF
	chainGCut int
	chainGLen int
	chainGVer uint64
	chainGOK  bool

	// seenQ/seenNow record the queue state most recently passed to FreeMean
	// or FreeTime, letting RhoSeen re-derive it instead of every candidate
	// carrying its own copy through the mapping hot path.
	seenQ   CoreQueue
	seenNow float64
}

// NewFreeTimeEngine returns an engine for numCores cores evaluating
// against calc's model.
func NewFreeTimeEngine(calc *Calculator, numCores int) *FreeTimeEngine {
	if calc == nil {
		panic("robustness: nil calculator")
	}
	return &FreeTimeEngine{calc: calc, cores: make([]coreChain, numCores)}
}

// Instrument attaches the chain-cache counters: hits (a cached chain was
// returned untouched), misses (no reusable chain existed and it was built
// from scratch), extends (an enqueue was absorbed with one convolution),
// and rebuilds (a chain for the same queue was re-derived because the
// running head's truncation cut drifted). compHits/compMisses count
// completion-distribution lookups answered from (respectively convolved
// into) the per-core completion cache, and compSkips counts ρ evaluations
// resolved to exactly zero by the infeasibility bound without touching a
// distribution at all. Any counter may be nil.
func (e *FreeTimeEngine) Instrument(hits, misses, extends, rebuilds, compHits, compMisses, compSkips *metrics.Counter) {
	e.hits, e.misses, e.extends, e.rebuilds = hits, misses, extends, rebuilds
	e.compHits, e.compMisses, e.compSkips = compHits, compMisses, compSkips
}

// InstrumentGrid attaches the grid-mode counters: gridRho counts ρ
// evaluations answered by the lattice TripleConvCDF kernel, and
// freeHits/freeMisses count whether the free-time state those evaluations
// read (the waiting-tail product) was served from cache or had to be
// folded — the grid analogue of the per-decision free-time memo traffic.
// The Instrument counters keep their meanings against the grid chain
// (hits/misses/rebuilds describe the materialized chain cache, extends the
// incremental tail product, compSkips the infeasibility short-circuit);
// compHits/compMisses stay zero because no completion PMF is ever built.
// Any counter may be nil.
func (e *FreeTimeEngine) InstrumentGrid(gridRho, freeHits, freeMisses *metrics.Counter) {
	e.gridRho, e.freeHits, e.freeMisses = gridRho, freeHits, freeMisses
}

// SetGrid switches the engine onto the fixed-grid pipeline (building the
// calculator's lattice table at the default step if absent). Set once
// before use; the sparse and grid caches are disjoint, so flipping modes
// mid-run wastes cache state but stays correct.
func (e *FreeTimeEngine) SetGrid(on bool) {
	if on && !e.calc.GridEnabled() {
		e.calc.EnableGrid(0)
	}
	e.grid = on
}

// Grid reports whether the engine runs on the fixed-grid pipeline.
func (e *FreeTimeEngine) Grid() bool { return e.grid }

// Invalidate discards the core's cached state. Call it on every queue
// mutation that is not a pure tail enqueue.
func (e *FreeTimeEngine) Invalidate(coreIdx int) {
	e.cores[coreIdx].ver++
}

// OnEnqueue absorbs a task of the given type appended at P-state ps to the
// tail of the core's queue, which now holds queueLen tasks. If the core
// has a current chain for the previous queue, one convolution extends it
// in place of the full rebuild the next query would otherwise pay; if not
// (stale, never built, or built from an uncacheable head), the enqueue is
// a no-op and the next query rebuilds lazily.
func (e *FreeTimeEngine) OnEnqueue(coreIdx, node, taskType int, ps cluster.PState, queueLen int) {
	c := &e.cores[coreIdx]
	if e.grid {
		g := e.calc.grid
		switch {
		case queueLen == 1:
			// The enqueued task is the head: the waiting tail is empty, and
			// the identity product is valid no matter what was cached.
			c.tail, c.tailLen, c.tailVer, c.tailOK = g.identity, 0, c.ver, true
		case c.tailOK && c.tailVer == c.ver && c.tailLen == queueLen-2:
			// Extending at the right end is exactly the next iteration of
			// the left-to-right fold gridTail runs, so the extended product
			// is bit-identical to a fresh rebuild.
			c.tail = c.tail.ConvolveLattice(g.exec[taskType][node][ps].lat)
			c.tailLen = queueLen - 1
			e.extends.Inc()
		default:
			c.tailOK = false
		}
		return
	}
	if !c.chainOK || c.chainVer != c.ver || c.chainLen != queueLen-1 || c.chainLen < 1 {
		return
	}
	c.chain = pmf.Convolve(c.chain, e.calc.model.ExecPMF(taskType, node, ps))
	c.chainLen = queueLen
	e.extends.Inc()
}

// FreeMean returns E[free time] by linearity, reusing the cached truncated
// head mean when the running head's cut is stable. The arithmetic mirrors
// the naive linearity shortcut exactly: the (truncated) head mean plus the
// execution means of the waiting tasks, or now + mean for an unstarted
// head.
func (e *FreeTimeEngine) FreeMean(coreIdx int, q CoreQueue, now float64) float64 {
	c := &e.cores[coreIdx]
	c.seenQ, c.seenNow = q, now
	if len(q.Tasks) == 0 {
		return now
	}
	if e.grid {
		_, mean, _ := e.gridHeadFor(c, q, now)
		g := e.calc.grid
		for _, t := range q.Tasks[1:] {
			mean += g.exec[t.Type][q.Node][t.PState].mean
		}
		return mean
	}
	var mean float64
	if t0 := q.Tasks[0]; t0.Started {
		_, m, _ := e.headFor(coreIdx, q, now)
		mean = m
	} else {
		mean = now + e.calc.model.ExecPMF(t0.Type, q.Node, t0.PState).Mean()
	}
	for _, t := range q.Tasks[1:] {
		mean += e.calc.model.ExecPMF(t.Type, q.Node, t.PState).Mean()
	}
	return mean
}

// FreeTime returns the core's free-time distribution at now,
// bit-identical to Calculator.FreeTime on the same queue. A query whose
// queue version, length, and head cut all match the cached chain is a
// cache hit and costs zero convolutions.
func (e *FreeTimeEngine) FreeTime(coreIdx int, q CoreQueue, now float64) pmf.PMF {
	c := &e.cores[coreIdx]
	c.seenQ, c.seenNow = q, now
	if len(q.Tasks) == 0 {
		return pmf.Point(now)
	}
	if e.grid {
		e.calc.freeTimeEvals.Inc()
		headL, _, cut := e.gridHeadFor(c, q, now)
		if c.chainGOK && c.chainGVer == c.ver && c.chainGLen == len(q.Tasks) && cut >= 0 && c.chainGCut == cut {
			e.hits.Inc()
			return c.chainG
		}
		rebuild := c.chainGOK && c.chainGVer == c.ver && c.chainGLen == len(q.Tasks)
		var free pmf.PMF
		if cut >= 0 {
			wh, _, _ := e.hwFor(c, q, &headL, cut)
			free = wh.PMF()
			c.chainG, c.chainGCut, c.chainGLen, c.chainGVer, c.chainGOK = free, cut, len(q.Tasks), c.ver, true
		} else {
			tail, _ := e.tailFor(c, q)
			free = tail.ConvolveLattice(headL).PMF()
			c.chainGOK = false
		}
		if rebuild {
			e.rebuilds.Inc()
		} else {
			e.misses.Inc()
		}
		return free
	}
	var head pmf.PMF
	cut := -1
	if t0 := q.Tasks[0]; t0.Started {
		head, _, cut = e.headFor(coreIdx, q, now)
	} else {
		head = e.calc.model.ExecPMF(t0.Type, q.Node, t0.PState).Shift(now)
	}
	if c.chainOK && c.chainVer == c.ver && c.chainLen == len(q.Tasks) && cut >= 0 && c.chainCut == cut {
		e.hits.Inc()
		return c.chain
	}
	rebuild := c.chainOK && c.chainVer == c.ver && c.chainLen == len(q.Tasks)
	free := e.calc.FreeTimeFrom(head, q, now)
	if cut >= 0 {
		c.chain, c.chainCut, c.chainLen, c.chainVer, c.chainOK = free, cut, len(q.Tasks), c.ver, true
	} else {
		// The head is uncacheable (unstarted or fully overdue); any stored
		// chain for this version can never match again.
		c.chainOK = false
	}
	if rebuild {
		e.rebuilds.Inc()
	} else {
		e.misses.Inc()
	}
	return free
}

// ProbOnTime returns ρ(i,j,k,π,t_l,z) for a candidate of taskType at
// P-state ps against the core's current queue, bit-identical to
// Calculator.ProbOnTime(FreeTime(coreIdx, q, now), ...). The completion
// distribution Convolve(free, exec) is a pure function of the free-time
// chain and the execution PMF, so while the chain is unchanged (same
// version, head cut, and queue length) the cached completion PMF answers
// repeat queries for the same (type, P-state) with zero convolutions —
// only the deadline CDF lookup remains. free, when non-nil, supplies the
// free-time distribution on a completion-cache miss (so callers can route
// the access through their own memo); nil falls back to e.FreeTime.
//
// In exact-ρ mode the evaluator never materializes a completion PMF, so
// there is nothing to cache and the call devolves to the direct double sum.
// In grid mode it is bit-identical to Calculator.GridProbOnTime instead: ρ
// comes from prefix sums of the cached tail⊛head product (or the direct
// double sum when the head is uncacheable), and free is never consulted.
func (e *FreeTimeEngine) ProbOnTime(coreIdx int, q CoreQueue, now float64, taskType int, ps cluster.PState, deadline float64, free FreeSource) float64 {
	if e.calc.exactRho {
		return e.calc.ProbOnTime(e.freePMF(free, coreIdx, q, now), taskType, q.Node, ps, deadline)
	}
	if e.grid {
		return e.probOnTimeGrid(coreIdx, q, now, taskType, ps, deadline)
	}
	c := &e.cores[coreIdx]
	cut := -1
	var freeMin float64
	if len(q.Tasks) == 0 {
		freeMin = now
	} else {
		if t0 := q.Tasks[0]; t0.Started {
			var head pmf.PMF
			head, _, cut = e.headFor(coreIdx, q, now)
			freeMin = head.Value(0)
		} else {
			freeMin = now + e.calc.model.ExecPMF(t0.Type, q.Node, t0.PState).Min()
		}
		for _, t := range q.Tasks[1:] {
			freeMin += e.calc.model.ExecPMF(t.Type, q.Node, t.PState).Min()
		}
	}
	exec := e.calc.model.ExecPMF(taskType, q.Node, ps)
	// Infeasibility short-circuit: every impulse of the completion
	// distribution lies at or above the sum of its operands' support minima
	// (Shift and TruncateBelow are exact; convolution values are correctly-
	// rounded sums; compaction replaces runs by mass-weighted centroids,
	// which can dip below the run minimum only by accumulated rounding,
	// ≲1e-12 relative). A deadline below that bound by a 1e-9 relative
	// guard — orders of magnitude wider than the worst-case centroid
	// rounding — therefore lies strictly below every impulse, and ρ is
	// exactly the 0.0 the naive evaluation would return, with no
	// convolution at all. Overloaded cores make this the common case.
	if bound := freeMin + exec.Min(); bound > 0 && deadline < bound*(1-1e-9) {
		e.compSkips.Inc()
		return 0
	}
	key := compKey{taskType: taskType, ps: ps}
	if cut >= 0 {
		if ent, ok := c.comps[key]; ok && ent.ver == c.ver && ent.cut == cut && ent.qlen == len(q.Tasks) {
			e.compHits.Inc()
			return ent.comp.ProbByDeadline(deadline)
		}
	}
	comp := e.calc.CompletionPMF(e.freePMF(free, coreIdx, q, now), taskType, q.Node, ps)
	if cut >= 0 {
		if c.comps == nil {
			c.comps = make(map[compKey]compEntry)
		}
		c.comps[key] = compEntry{ver: c.ver, cut: cut, qlen: len(q.Tasks), comp: comp}
	}
	e.compMisses.Inc()
	return comp.ProbByDeadline(deadline)
}

// RhoSeen is ProbOnTime evaluated against the queue state most recently
// passed to FreeMean or FreeTime for this core. BuildCandidates derives
// every core's free-time mean before any candidate's ρ is demanded, and
// queues never mutate mid-decision, so the recorded state is exactly the
// decision's state — without each candidate carrying a queue copy through
// the mapping hot path.
func (e *FreeTimeEngine) RhoSeen(coreIdx, taskType int, ps cluster.PState, deadline float64, free FreeSource) float64 {
	c := &e.cores[coreIdx]
	return e.ProbOnTime(coreIdx, c.seenQ, c.seenNow, taskType, ps, deadline, free)
}

// freePMF resolves the free-time distribution for the completion paths:
// the caller's source when provided, the engine's own cache otherwise.
func (e *FreeTimeEngine) freePMF(free FreeSource, coreIdx int, q CoreQueue, now float64) pmf.PMF {
	if free != nil {
		return free.FreePMF()
	}
	return e.FreeTime(coreIdx, q, now)
}

// probOnTimeGrid is the grid-mode ρ: bit-identical to
// Calculator.GridProbOnTime on the same queue, with the head truncation and
// the waiting-tail product served from the per-core caches and the same
// infeasibility short-circuit the sparse path applies. The skip is exact
// here too: TripleConvCDF sums w's prefix sums at floor-index offsets, and
// a deadline below the summed support minima by a 1e-9 relative guard —
// orders of magnitude wider than the ~1e-16 rounding between the bound's
// float expression and the kernel's — lands every index strictly before
// the first massive bin, so the kernel would return exactly 0.0.
func (e *FreeTimeEngine) probOnTimeGrid(coreIdx int, q CoreQueue, now float64, taskType int, ps cluster.PState, deadline float64) float64 {
	c := &e.cores[coreIdx]
	g := e.calc.grid
	exec := &g.exec[taskType][q.Node][ps]
	if !(c.rhoOK && c.rhoVer == c.ver && c.rhoLen == len(q.Tasks) && c.rhoNow == now) {
		if len(q.Tasks) == 0 {
			c.rhoHead = pmf.PointLattice(now, g.step)
			c.rhoCut = -1
			c.rhoFreeMin = now
		} else {
			c.rhoHead, _, c.rhoCut = e.gridHeadFor(c, q, now)
			freeMin := c.rhoHead.Min()
			for _, t := range q.Tasks[1:] {
				freeMin += g.exec[t.Type][q.Node][t.PState].min
			}
			c.rhoFreeMin = freeMin
		}
		c.rhoVer, c.rhoLen, c.rhoNow, c.rhoOK = c.ver, len(q.Tasks), now, true
	}
	if bound := c.rhoFreeMin + exec.min; bound > 0 && deadline < bound*(1-1e-9) {
		e.compSkips.Inc()
		return 0
	}
	e.gridRho.Inc()
	e.calc.completionEvals.Inc()
	if c.rhoCut >= 0 {
		// Cacheable head: every candidate on this core shares the dense
		// tail⊛head factor, so ρ is one O(|exec|) prefix-sum pass.
		wh, hit, folded := e.hwFor(c, q, &c.rhoHead, c.rhoCut)
		if hit || !folded {
			e.freeHits.Inc()
		} else {
			e.freeMisses.Inc()
		}
		return wh.ConvCDF(&exec.lat, deadline)
	}
	tail, folded := e.tailFor(c, q)
	if folded {
		e.freeMisses.Inc()
	} else {
		e.freeHits.Inc()
	}
	return pmf.TripleConvCDF(&c.rhoHead, tail, &exec.lat, deadline)
}

// hwFor returns the core's dense tail ⊛ headL product for a cacheable head
// (cut ≥ 0), plus whether it came straight from the cache and — when it
// did not — whether the underlying tail had to be folded fresh. The
// product is the same expression Calculator.GridProbOnTime materializes,
// so cached and fresh answers are bit-identical.
func (e *FreeTimeEngine) hwFor(c *coreChain, q CoreQueue, headL *pmf.Lattice, cut int) (*pmf.Grid, bool, bool) {
	if c.hwOK && c.hwVer == c.ver && c.hwLen == len(q.Tasks) && c.hwCut == cut {
		return &c.hw, true, false
	}
	tail, folded := e.tailFor(c, q)
	c.hw = tail.ConvolveLatticeInto(*headL, &c.hwScratch)
	c.hwCut, c.hwLen, c.hwVer, c.hwOK = cut, len(q.Tasks), c.ver, true
	return &c.hw, false, folded
}

// gridHeadFor derives (and caches) the head stage in lattice form —
// bit-identical to Calculator.gridHead plus the head's mean. The shifted
// base lattice is cached per version and its truncation per cut, exactly
// mirroring headFor; uncacheable heads (unstarted: pure shift by now;
// fully overdue: degenerate point at now) are returned with cut == -1 and
// never stored.
func (e *FreeTimeEngine) gridHeadFor(c *coreChain, q CoreQueue, now float64) (pmf.Lattice, float64, int) {
	g := e.calc.grid
	t0 := q.Tasks[0]
	if !t0.Started {
		lat := g.exec[t0.Type][q.Node][t0.PState].lat.Shift(now)
		return lat, lat.Mean(), -1
	}
	if !c.baseLOK || c.baseLVer != c.ver {
		c.baseL = g.exec[t0.Type][q.Node][t0.PState].lat.Shift(t0.StartAt)
		c.baseLVer = c.ver
		c.baseLOK = true
		c.headLOK = false
	}
	cut := c.baseL.SearchValue(now)
	if c.headLOK && c.headLVer == c.ver && c.headLCut == cut {
		return c.headL, c.headLMean, cut
	}
	trunc, kept := c.baseL.TruncateAt(cut)
	if kept <= 0 {
		// All remaining mass is overdue: the same degenerate point the
		// naive pipeline produces. Depends on raw now, so never cached.
		lat := pmf.PointLattice(now, g.step)
		return lat, now, -1
	}
	c.headL = trunc
	c.headLMean = trunc.Mean()
	c.headLCut = cut
	c.headLVer = c.ver
	c.headLOK = true
	return c.headL, c.headLMean, cut
}

// tailFor returns the core's waiting-tail product and whether it had to be
// folded fresh (as opposed to served from cache or trivially the
// identity). A rebuild is the same left-to-right fold gridTail runs, so
// cached, extended, and fresh tails are all bit-identical.
func (e *FreeTimeEngine) tailFor(c *coreChain, q CoreQueue) (*pmf.Grid, bool) {
	if len(q.Tasks) <= 1 {
		return &e.calc.grid.identity, false
	}
	if c.tailOK && c.tailVer == c.ver && c.tailLen == len(q.Tasks)-1 {
		return &c.tail, false
	}
	c.tail = e.calc.gridTail(q)
	c.tailLen = len(q.Tasks) - 1
	c.tailVer = c.ver
	c.tailOK = true
	return &c.tail, true
}

// headFor derives (and caches) the started head stage for the core's
// current queue at now, returning the truncated completion PMF, its mean,
// and the truncation cut. cut < 0 marks a head whose value depends on the
// raw decision instant (the whole support is overdue and the §IV-B
// pipeline degenerates to Point(now)); such heads are never cached.
func (e *FreeTimeEngine) headFor(coreIdx int, q CoreQueue, now float64) (pmf.PMF, float64, int) {
	t0 := q.Tasks[0]
	c := &e.cores[coreIdx]
	if !c.compOK || c.compVer != c.ver {
		c.comp = e.calc.model.ExecPMF(t0.Type, q.Node, t0.PState).Shift(t0.StartAt)
		c.compVer = c.ver
		c.compOK = true
		c.headOK = false
	}
	cut := c.comp.SearchValue(now)
	if cut == c.comp.Len() {
		return pmf.Point(now), now, -1
	}
	if c.headOK && c.headVer == c.ver && c.headCut == cut {
		return c.head, c.headMean, cut
	}
	if cut == 0 {
		// TruncateBelow would clone; the impulses are identical, and the
		// chain never mutates its head, so share comp directly.
		c.head = c.comp
	} else {
		head, kept := c.comp.TruncateBelow(now)
		if kept <= 0 {
			// All remaining mass vanished: same degenerate Point(now) the
			// naive pipeline produces. Not cacheable.
			return head, now, -1
		}
		c.head = head
	}
	c.headMean = c.head.Mean()
	c.headCut = cut
	c.headVer = c.ver
	c.headOK = true
	return c.head, c.headMean, cut
}

// NumCores returns the number of cores the engine tracks.
func (e *FreeTimeEngine) NumCores() int { return len(e.cores) }
