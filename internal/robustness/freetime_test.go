package robustness

import (
	"math"
	"os"
	"strconv"
	"testing"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/pmf"
	"repro/internal/randx"
	"repro/internal/workload"
)

// assertBitIdentical fails unless got and want have exactly the same
// impulses — same length, same values, same probabilities, bit for bit.
func assertBitIdentical(t *testing.T, step int, got, want pmf.PMF) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("step %d: support size %d, want %d", step, got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.Value(i) != want.Value(i) || got.Prob(i) != want.Prob(i) {
			t.Fatalf("step %d impulse %d: (%v, %v), want (%v, %v)",
				step, i, got.Value(i), got.Prob(i), want.Value(i), want.Prob(i))
		}
	}
}

// naiveFreeMean replicates the linearity shortcut's arithmetic exactly:
// the truncated head completion mean (or now + mean for an unstarted
// head), plus the waiting tasks' execution means in queue order.
func naiveFreeMean(m *workload.Model, q CoreQueue, now float64) float64 {
	if len(q.Tasks) == 0 {
		return now
	}
	mean := 0.0
	for i, task := range q.Tasks {
		exec := m.ExecPMF(task.Type, q.Node, task.PState)
		if i == 0 {
			if task.Started {
				comp := exec.Shift(task.StartAt)
				comp, _ = comp.TruncateBelow(now)
				mean = comp.Mean()
			} else {
				mean = now + exec.Mean()
			}
			continue
		}
		mean += exec.Mean()
	}
	return mean
}

// propSteps returns the mutation budget for the property test; verify.sh
// tier 2 raises it via FREETIME_PROP_STEPS.
func propSteps(t *testing.T, def int) int {
	if s := os.Getenv("FREETIME_PROP_STEPS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad FREETIME_PROP_STEPS %q: %v", s, err)
		}
		return n
	}
	return def
}

// TestFreeTimeEngineMatchesNaiveUnderMutation drives a randomized sequence
// of enqueue / start / complete / cancel / fault-requeue mutations against
// one core, with the engine hooks a real event loop would call, and
// asserts after every step that the cached free-time PMF and mean are
// bit-identical to a from-scratch naive recomputation. This is the
// acceptance proof that the cross-decision chain cache never changes
// results.
func TestFreeTimeEngineMatchesNaiveUnderMutation(t *testing.T) {
	for _, seed := range []uint64{99, 1234, 777777} {
		m := buildModel(t, seed)
		calc := NewCalculator(m)
		eng := NewFreeTimeEngine(calc, 1)
		rng := randx.NewStream(seed * 31)
		steps := propSteps(t, 500)
		node := rng.IntN(m.Cluster.N())
		tavg := m.TAvg()
		types := m.Params.TaskTypes

		var tasks []QueuedTask
		now := 0.0
		for step := 0; step < steps; step++ {
			switch op := rng.IntN(100); {
			case op < 40: // enqueue at the tail, as arrive()/place() do
				qt := QueuedTask{
					Type:     rng.IntN(types),
					PState:   cluster.PState(rng.IntN(cluster.NumPStates)),
					Deadline: now + tavg*(0.5+2*rng.Float64()),
				}
				tasks = append(tasks, qt)
				if len(tasks) == 1 {
					// An empty core starts the task immediately.
					tasks[0].Started = true
					tasks[0].StartAt = now
					eng.Invalidate(0)
				} else {
					eng.OnEnqueue(0, node, qt.Type, qt.PState, len(tasks))
				}
			case op < 60: // complete the head; the next task starts
				if len(tasks) == 0 {
					continue
				}
				tasks = tasks[1:]
				if len(tasks) > 0 {
					tasks[0].Started = true
					tasks[0].StartAt = now
				}
				eng.Invalidate(0)
			case op < 68: // cancel an overdue waiting task mid-queue
				if len(tasks) < 2 {
					continue
				}
				i := 1 + rng.IntN(len(tasks)-1)
				tasks = append(tasks[:i], tasks[i+1:]...)
				eng.Invalidate(0)
			case op < 76: // fault: the core goes down and sheds its queue
				tasks = nil
				eng.Invalidate(0)
			case op < 82: // repaired core receives work it has not started
				if len(tasks) != 0 {
					continue
				}
				tasks = append(tasks, QueuedTask{
					Type:     rng.IntN(types),
					PState:   cluster.PState(rng.IntN(cluster.NumPStates)),
					Deadline: now + tavg,
				})
				eng.Invalidate(0)
			case op < 94: // time advances a little (truncation cut may drift)
				now += tavg * 0.3 * rng.Float64()
			default: // time leaps (head may become fully overdue)
				now += tavg * (1 + 3*rng.Float64())
			}
			if rng.IntN(4) == 0 {
				continue // mutate again before querying: chains must survive coalesced updates
			}
			q := CoreQueue{Node: node, Tasks: append([]QueuedTask(nil), tasks...)}
			want := calc.FreeTime(q, now)
			got := eng.FreeTime(0, q, now)
			assertBitIdentical(t, step, got, want)
			// A second query of the unchanged queue must hit and stay identical.
			assertBitIdentical(t, step, eng.FreeTime(0, q, now), want)
			if gm, wm := eng.FreeMean(0, q, now), naiveFreeMean(m, q, now); gm != wm {
				t.Fatalf("step %d: FreeMean %v, want %v", step, gm, wm)
			}
			// The shared-head one-shot path (cache-miss fallback in sched)
			// must also be bit-identical.
			assertBitIdentical(t, step, calc.FreeTimeFrom(calc.HeadPMF(q, now), q, now), want)
			// ρ through the completion cache must equal the naive evaluation
			// to the last bit, both when first derived and on a cached
			// repeat of the same (type, P-state) pair.
			ct := rng.IntN(types)
			cp := cluster.PState(rng.IntN(cluster.NumPStates))
			cd := now + tavg*(0.5+2*rng.Float64())
			wantRho := calc.ProbOnTime(want, ct, node, cp, cd)
			if gr := eng.ProbOnTime(0, q, now, ct, cp, cd, nil); gr != wantRho {
				t.Fatalf("step %d: ProbOnTime %v, want %v", step, gr, wantRho)
			}
			if gr := eng.ProbOnTime(0, q, now, ct, cp, cd, nil); gr != wantRho {
				t.Fatalf("step %d: cached ProbOnTime %v, want %v", step, gr, wantRho)
			}
			// A deliberately tight deadline exercises the infeasibility
			// short-circuit, which must agree with the naive evaluation.
			td := now + tavg*0.2*rng.Float64()
			wantRho = calc.ProbOnTime(want, ct, node, cp, td)
			if gr := eng.ProbOnTime(0, q, now, ct, cp, td, nil); gr != wantRho {
				t.Fatalf("step %d: tight-deadline ProbOnTime %v, want %v", step, gr, wantRho)
			}
		}
	}
}

// TestFreeTimeEngineCounters pins the hit/miss/extend/rebuild semantics.
func TestFreeTimeEngineCounters(t *testing.T) {
	m := buildModel(t, 21)
	calc := NewCalculator(m)
	eng := NewFreeTimeEngine(calc, 2)
	reg := metrics.NewRegistry()
	hits := reg.Counter("hits")
	misses := reg.Counter("misses")
	extends := reg.Counter("extends")
	rebuilds := reg.Counter("rebuilds")
	compHits := reg.Counter("comp_hits")
	compMisses := reg.Counter("comp_misses")
	compSkips := reg.Counter("comp_skips")
	eng.Instrument(hits, misses, extends, rebuilds, compHits, compMisses, compSkips)

	q := CoreQueue{Node: 0, Tasks: []QueuedTask{
		{Type: 0, PState: cluster.P0, Deadline: 1e9, Started: true, StartAt: 0},
		{Type: 1, PState: cluster.P1, Deadline: 1e9},
	}}
	now := m.ExecPMF(0, 0, cluster.P0).Mean() * 0.1

	eng.FreeTime(0, q, now)
	if misses.Value() != 1 {
		t.Fatalf("first query: misses = %d, want 1", misses.Value())
	}
	eng.FreeTime(0, q, now)
	if hits.Value() != 1 {
		t.Fatalf("second query: hits = %d, want 1", hits.Value())
	}

	// An enqueue extends the chain with one convolution; the next query hits.
	q.Tasks = append(q.Tasks, QueuedTask{Type: 2, PState: cluster.P2, Deadline: 1e9})
	eng.OnEnqueue(0, 0, 2, cluster.P2, len(q.Tasks))
	if extends.Value() != 1 {
		t.Fatalf("extends = %d, want 1", extends.Value())
	}
	before := pmf.ReadOpCounts()
	eng.FreeTime(0, q, now)
	if hits.Value() != 2 {
		t.Fatalf("post-extend query: hits = %d, want 2", hits.Value())
	}
	if d := pmf.ReadOpCounts().Sub(before); d.Convolutions != 0 {
		t.Fatalf("cache hit performed %d convolutions, want 0", d.Convolutions)
	}

	// Advancing now past the head's first impulse drifts the cut: the same
	// queue is re-derived and counted as a rebuild, not a miss.
	head := m.ExecPMF(0, 0, cluster.P0)
	later := head.Value(0) + 1e-9
	if later <= now {
		t.Fatalf("test setup: later %v <= now %v", later, now)
	}
	eng.FreeTime(0, q, later)
	if rebuilds.Value() != 1 {
		t.Fatalf("rebuilds = %d, want 1", rebuilds.Value())
	}

	// Invalidation forces a miss.
	eng.Invalidate(0)
	eng.FreeTime(0, q, later)
	if misses.Value() != 2 {
		t.Fatalf("post-invalidate query: misses = %d, want 2", misses.Value())
	}

	// Completion cache: the first ρ for a (type, P-state) pair convolves
	// and stores; a repeat against the unchanged chain answers from the
	// cache with zero convolutions; invalidation forces re-derivation.
	deadline := later + 10*head.Mean()
	r1 := eng.ProbOnTime(0, q, later, 3, cluster.P1, deadline, nil)
	if compMisses.Value() != 1 {
		t.Fatalf("first ρ: comp misses = %d, want 1", compMisses.Value())
	}
	before = pmf.ReadOpCounts()
	r2 := eng.ProbOnTime(0, q, later, 3, cluster.P1, deadline, nil)
	if compHits.Value() != 1 {
		t.Fatalf("second ρ: comp hits = %d, want 1", compHits.Value())
	}
	if d := pmf.ReadOpCounts().Sub(before); d.Convolutions != 0 {
		t.Fatalf("completion-cache hit performed %d convolutions, want 0", d.Convolutions)
	}
	if r1 != r2 {
		t.Fatalf("cached ρ %v differs from fresh ρ %v", r2, r1)
	}
	eng.Invalidate(0)
	eng.ProbOnTime(0, q, later, 3, cluster.P1, deadline, nil)
	if compMisses.Value() != 2 {
		t.Fatalf("post-invalidate ρ: comp misses = %d, want 2", compMisses.Value())
	}
}

// TestExactRhoParity bounds the divergence between the default compacted
// completion-PMF pipeline and the opt-in exact double-sum: both are
// estimates of the same P(free + exec <= deadline); they may differ only
// by the compaction's support distortion.
func TestExactRhoParity(t *testing.T) {
	m := buildModel(t, 12)
	def := NewCalculator(m)
	ex := NewCalculator(m)
	ex.SetExactRho(true)
	if !ex.ExactRho() || def.ExactRho() {
		t.Fatal("ExactRho flag not plumbed")
	}
	rng := randx.NewStream(42)
	tavg := m.TAvg()
	types := m.Params.TaskTypes
	worst := 0.0
	for trial := 0; trial < 300; trial++ {
		node := rng.IntN(m.Cluster.N())
		depth := rng.IntN(4)
		now := tavg * rng.Float64()
		q := CoreQueue{Node: node}
		for i := 0; i < depth; i++ {
			qt := QueuedTask{
				Type:     rng.IntN(types),
				PState:   cluster.PState(rng.IntN(cluster.NumPStates)),
				Deadline: 1e18,
			}
			if i == 0 && rng.IntN(2) == 0 {
				qt.Started = true
				qt.StartAt = now * rng.Float64()
			}
			q.Tasks = append(q.Tasks, qt)
		}
		free := def.FreeTime(q, now)
		ty := rng.IntN(types)
		ps := cluster.PState(rng.IntN(cluster.NumPStates))
		eet := m.ExecPMF(ty, node, ps).Mean()
		// Deadlines swept across the interesting range: hopeless to safe.
		deadline := free.Mean() + eet*(4*rng.Float64()-1)
		pd := def.ProbOnTime(free, ty, node, ps, deadline)
		pe := ex.ProbOnTime(free, ty, node, ps, deadline)
		if pe < 0 || pe > 1 {
			t.Fatalf("trial %d: exact ρ %v out of [0,1]", trial, pe)
		}
		if d := math.Abs(pd - pe); d > worst {
			worst = d
		}
	}
	// The divergence is pure compaction error; empirically it stays well
	// under this bound across seeds.
	if worst > 0.05 {
		t.Fatalf("default vs exact ρ diverged by %v, want <= 0.05", worst)
	}
	t.Logf("max |default - exact| ρ divergence: %v", worst)
}

// TestExactRhoTightCaseMatches: when the completion support is small
// enough that no compaction happens, the two pipelines compute the same
// sum up to floating-point association.
func TestExactRhoTightCaseMatches(t *testing.T) {
	free, err := pmf.New([]float64{10, 12, 15}, []float64{0.2, 0.5, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	m := buildModel(t, 13)
	def := NewCalculator(m)
	ex := NewCalculator(m)
	ex.SetExactRho(true)
	exec := m.ExecPMF(0, 0, cluster.P0)
	if free.Len()*exec.Len() > pmf.DefaultMaxImpulses {
		t.Skipf("support product %d too large for the uncompacted case", free.Len()*exec.Len())
	}
	deadline := 10 + exec.Mean()
	pd := def.ProbOnTime(free, 0, 0, cluster.P0, deadline)
	pe := ex.ProbOnTime(free, 0, 0, cluster.P0, deadline)
	if math.Abs(pd-pe) > 1e-9 {
		t.Fatalf("uncompacted case: default %v vs exact %v", pd, pe)
	}
}
