package robustness

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/pmf"
	"repro/internal/randx"
)

// TestFreeTimeEngineGridMatchesNaiveUnderMutation is the grid-mode twin of
// the sparse mutation property test: a randomized enqueue / start /
// complete / cancel / fault / time-leap sequence with the engine hooks a
// real event loop would call, asserting after every step that the cached
// grid pipeline (tail product, head truncation, materialized chain, ρ
// kernel) is bit-identical to the Calculator's naive Grid* reference
// methods. This is the acceptance proof that grid-mode caching never
// changes results.
func TestFreeTimeEngineGridMatchesNaiveUnderMutation(t *testing.T) {
	for _, seed := range []uint64{3, 4242, 555555} {
		m := buildModel(t, seed)
		calc := NewCalculator(m)
		eng := NewFreeTimeEngine(calc, 1)
		eng.SetGrid(true)
		if !eng.Grid() || !calc.GridEnabled() || calc.GridStep() <= 0 {
			t.Fatal("grid mode not plumbed")
		}
		rng := randx.NewStream(seed * 17)
		steps := propSteps(t, 500)
		node := rng.IntN(m.Cluster.N())
		tavg := m.TAvg()
		types := m.Params.TaskTypes

		var tasks []QueuedTask
		now := 0.0
		for step := 0; step < steps; step++ {
			switch op := rng.IntN(100); {
			case op < 40: // enqueue at the tail
				qt := QueuedTask{
					Type:     rng.IntN(types),
					PState:   cluster.PState(rng.IntN(cluster.NumPStates)),
					Deadline: now + tavg*(0.5+2*rng.Float64()),
				}
				tasks = append(tasks, qt)
				if len(tasks) == 1 {
					tasks[0].Started = true
					tasks[0].StartAt = now
					eng.Invalidate(0)
				}
				eng.OnEnqueue(0, node, qt.Type, qt.PState, len(tasks))
			case op < 60: // complete the head; the next task starts
				if len(tasks) == 0 {
					continue
				}
				tasks = tasks[1:]
				if len(tasks) > 0 {
					tasks[0].Started = true
					tasks[0].StartAt = now
				}
				eng.Invalidate(0)
			case op < 68: // cancel a waiting task mid-queue
				if len(tasks) < 2 {
					continue
				}
				i := 1 + rng.IntN(len(tasks)-1)
				tasks = append(tasks[:i], tasks[i+1:]...)
				eng.Invalidate(0)
			case op < 76: // fault: the core sheds its queue
				tasks = nil
				eng.Invalidate(0)
			case op < 82: // repaired core receives unstarted work
				if len(tasks) != 0 {
					continue
				}
				tasks = append(tasks, QueuedTask{
					Type:     rng.IntN(types),
					PState:   cluster.PState(rng.IntN(cluster.NumPStates)),
					Deadline: now + tavg,
				})
				eng.Invalidate(0)
			case op < 94: // time advances a little (cut may drift)
				now += tavg * 0.3 * rng.Float64()
			default: // time leaps (head may become fully overdue)
				now += tavg * (1 + 3*rng.Float64())
			}
			if rng.IntN(4) == 0 {
				continue // coalesced updates must survive too
			}
			q := CoreQueue{Node: node, Tasks: append([]QueuedTask(nil), tasks...)}
			want := calc.GridFreeTime(q, now)
			got := eng.FreeTime(0, q, now)
			assertBitIdentical(t, step, got, want)
			// A repeat of the unchanged queue must hit and stay identical.
			assertBitIdentical(t, step, eng.FreeTime(0, q, now), want)
			if gm, wm := eng.FreeMean(0, q, now), calc.GridFreeMean(q, now); gm != wm {
				t.Fatalf("step %d: grid FreeMean %v, want %v", step, gm, wm)
			}
			ct := rng.IntN(types)
			cp := cluster.PState(rng.IntN(cluster.NumPStates))
			cd := now + tavg*(0.5+2*rng.Float64())
			wantRho := calc.GridProbOnTime(q, now, ct, cp, cd)
			if gr := eng.ProbOnTime(0, q, now, ct, cp, cd, nil); gr != wantRho {
				t.Fatalf("step %d: grid ProbOnTime %v, want %v", step, gr, wantRho)
			}
			if gr := eng.ProbOnTime(0, q, now, ct, cp, cd, nil); gr != wantRho {
				t.Fatalf("step %d: cached grid ProbOnTime %v, want %v", step, gr, wantRho)
			}
			// A deliberately tight deadline exercises the infeasibility
			// short-circuit, which must agree with the naive kernel.
			td := now + tavg*0.2*rng.Float64()
			wantRho = calc.GridProbOnTime(q, now, ct, cp, td)
			if gr := eng.ProbOnTime(0, q, now, ct, cp, td, nil); gr != wantRho {
				t.Fatalf("step %d: tight-deadline grid ρ %v, want %v", step, gr, wantRho)
			}
		}
	}
}

// TestGridRhoParity bounds grid ρ against a fully exact (uncompacted)
// evaluation of the same chain. For unstarted-head queues the grid
// pipeline differs from the exact one only by the per-operand snap
// (≤ step/2 each), so grid ρ at deadline d must lie within the exact CDF
// bracket [exact(d − slack), exact(d + slack)] with slack = q·step/2 —
// the tolerance contract stated in the pmf grid documentation.
func TestGridRhoParity(t *testing.T) {
	m := buildModel(t, 31)
	calc := NewCalculator(m)
	calc.EnableGrid(0)
	step := calc.GridStep()
	rng := randx.NewStream(77)
	tavg := m.TAvg()
	types := m.Params.TaskTypes
	for trial := 0; trial < 200; trial++ {
		node := rng.IntN(m.Cluster.N())
		depth := 1 + rng.IntN(2)
		now := tavg * rng.Float64()
		q := CoreQueue{Node: node}
		for i := 0; i < depth; i++ {
			q.Tasks = append(q.Tasks, QueuedTask{
				Type:   rng.IntN(types),
				PState: cluster.PState(rng.IntN(cluster.NumPStates)),
			})
		}
		ct := rng.IntN(types)
		cp := cluster.PState(rng.IntN(cluster.NumPStates))
		deadline := now + tavg*(0.2+3*rng.Float64())

		// Exact chain: head shifted by now, waiting execs, candidate exec —
		// convolved with no compaction, then the CDF at the deadline.
		ops := make([]pmf.PMF, 0, depth+1)
		ops = append(ops, m.ExecPMF(q.Tasks[0].Type, node, q.Tasks[0].PState).Shift(now))
		for _, task := range q.Tasks[1:] {
			ops = append(ops, m.ExecPMF(task.Type, node, task.PState))
		}
		ops = append(ops, m.ExecPMF(ct, node, cp))
		exact := ops[0]
		for _, p := range ops[1:] {
			exact = pmf.ConvolveN(exact, p, 0)
		}

		slack := float64(len(ops))*step/2 + 1e-9*deadline
		lo := exact.CDF(deadline - slack)
		hi := exact.CDF(deadline + slack)
		got := calc.GridProbOnTime(q, now, ct, cp, deadline)
		if got < lo-1e-9 || got > hi+1e-9 {
			t.Fatalf("trial %d: grid ρ %v outside exact bracket [%v, %v] (depth %d, step %v)",
				trial, got, lo, hi, depth, step)
		}
	}
}

// TestGridEngineCounters pins the grid-mode counter semantics documented
// on InstrumentGrid.
func TestGridEngineCounters(t *testing.T) {
	m := buildModel(t, 8)
	calc := NewCalculator(m)
	eng := NewFreeTimeEngine(calc, 1)
	eng.SetGrid(true)
	reg := metrics.NewRegistry()
	hits, misses := reg.Counter("h"), reg.Counter("m")
	extends, rebuilds := reg.Counter("e"), reg.Counter("r")
	compHits, compMisses, compSkips := reg.Counter("ch"), reg.Counter("cm"), reg.Counter("cs")
	gridRho, fHits, fMisses := reg.Counter("g"), reg.Counter("fh"), reg.Counter("fm")
	eng.Instrument(hits, misses, extends, rebuilds, compHits, compMisses, compSkips)
	eng.InstrumentGrid(gridRho, fHits, fMisses)

	q := CoreQueue{Node: 0, Tasks: []QueuedTask{
		{Type: 0, PState: cluster.P0, Deadline: 1e9, Started: true, StartAt: 0},
		{Type: 1, PState: cluster.P1, Deadline: 1e9},
	}}
	now := m.ExecPMF(0, 0, cluster.P0).Mean() * 0.1

	eng.FreeTime(0, q, now)
	if misses.Value() != 1 {
		t.Fatalf("first query: misses = %d, want 1", misses.Value())
	}
	eng.FreeTime(0, q, now)
	if hits.Value() != 1 {
		t.Fatalf("second query: hits = %d, want 1", hits.Value())
	}

	// An enqueue extends the tail product with one lattice convolution.
	q.Tasks = append(q.Tasks, QueuedTask{Type: 2, PState: cluster.P2, Deadline: 1e9})
	eng.OnEnqueue(0, 0, 2, cluster.P2, len(q.Tasks))
	if extends.Value() != 1 {
		t.Fatalf("extends = %d, want 1", extends.Value())
	}
	before := pmf.ReadOpCounts()
	eng.FreeTime(0, q, now)
	if d := pmf.ReadOpCounts().Sub(before); d.GridConvolutions != 1 {
		// Post-extend the tail is current: only the head fold remains.
		t.Fatalf("post-extend rebuild did %d lattice convolutions, want 1", d.GridConvolutions)
	}

	// ρ answered by the kernel counts gridRho and a tail-cache hit; no
	// completion PMF is built in grid mode.
	deadline := now + 20*m.TAvg()
	eng.ProbOnTime(0, q, now, 3, cluster.P1, deadline, nil)
	if gridRho.Value() != 1 || fHits.Value() != 1 || fMisses.Value() != 0 {
		t.Fatalf("grid ρ counters: rho=%d fh=%d fm=%d, want 1/1/0",
			gridRho.Value(), fHits.Value(), fMisses.Value())
	}
	if compHits.Value() != 0 || compMisses.Value() != 0 {
		t.Fatalf("completion cache touched in grid mode: %d/%d", compHits.Value(), compMisses.Value())
	}
	// An infeasible deadline is short-circuited without a kernel pass.
	if v := eng.ProbOnTime(0, q, now, 3, cluster.P1, now*(1-1e-6), nil); v != 0 {
		t.Fatalf("infeasible ρ = %v, want 0", v)
	}
	if compSkips.Value() != 1 || gridRho.Value() != 1 {
		t.Fatalf("skip counters: skips=%d rho=%d, want 1/1", compSkips.Value(), gridRho.Value())
	}

	// After invalidation the next ρ must refold the tail: a free-time miss.
	eng.Invalidate(0)
	eng.ProbOnTime(0, q, now, 3, cluster.P1, deadline, nil)
	if fMisses.Value() != 1 {
		t.Fatalf("post-invalidate ρ: free misses = %d, want 1", fMisses.Value())
	}
}
