package robustness

import (
	"repro/internal/cluster"
	"repro/internal/pmf"
)

// Fixed-grid (lattice) evaluation mode. EnableGrid snaps every execution
// PMF in the model onto a common lattice once; from then on the §IV-B
// pipeline runs in grid form end-to-end — heads and execution PMFs stay
// sparse-on-lattice, chain products stay dense, and ρ is answered by
// pmf.TripleConvCDF against the waiting-tail product's prefix sums with no
// completion PMF materialized. The Grid* methods below are the naive
// (uncached) reference; FreeTimeEngine.SetGrid routes the engine through
// the same primitives with per-core caching and must stay bit-identical to
// them (the grid mutation property test enforces this with ==).
//
// Numerical contract: snapping moves each execution impulse by at most
// step/2, so grid ρ and the sparse pipeline's ρ may differ — the grid is a
// different (finer-grained, exactly-convolved) approximation of the same
// chain, not a bit-compatible replacement. The parity test bounds grid ρ
// between exact-ρ evaluations of deadlines shifted by the accumulated
// quantization slack. Selecting the mode is therefore a config decision
// (sim/server Config.SparsePMF opts back into the paper pipeline), and
// record/replay gates are unaffected because both sides of any replay run
// the same mode.

// DefaultGridRes divides the model's mean execution time T_avg to obtain
// the default lattice step: T_avg/64 keeps per-impulse quantization under
// 0.8% of a typical execution time while a depth-10 chain product stays a
// few thousand bins.
const DefaultGridRes = 64

// gridExec is one execution PMF snapped onto the shared lattice, with the
// derived scalars the hot path reads per candidate.
type gridExec struct {
	lat  pmf.Lattice
	mean float64
	min  float64
}

// gridTable holds the lattice forms of every execution PMF, indexed like
// workload.Model's table: [taskType][node][pstate].
type gridTable struct {
	step     float64
	identity pmf.Grid // shared convolution identity, minted once
	exec     [][][]gridExec
}

// EnableGrid builds the lattice execution table for the given step (<= 0
// selects TAvg/DefaultGridRes) and switches the Grid* evaluators on.
// Idempotent for the same step; call once before the calculator is shared.
func (c *Calculator) EnableGrid(step float64) {
	if step <= 0 {
		step = c.model.TAvg() / DefaultGridRes
	}
	if c.grid != nil && c.grid.step == step {
		return
	}
	types := c.model.Params.TaskTypes
	nodes := c.model.Cluster.N()
	g := &gridTable{step: step, identity: pmf.IdentityGrid(step), exec: make([][][]gridExec, types)}
	for t := 0; t < types; t++ {
		g.exec[t] = make([][]gridExec, nodes)
		for n := 0; n < nodes; n++ {
			g.exec[t][n] = make([]gridExec, cluster.NumPStates)
			for _, ps := range cluster.AllPStates() {
				lat := pmf.ToLattice(c.model.ExecPMF(t, n, ps), step)
				g.exec[t][n][ps] = gridExec{lat: lat, mean: lat.Mean(), min: lat.Min()}
			}
		}
	}
	c.grid = g
}

// GridEnabled reports whether the lattice table has been built.
func (c *Calculator) GridEnabled() bool { return c.grid != nil }

// GridStep returns the lattice step, or 0 when the grid is disabled.
func (c *Calculator) GridStep() float64 {
	if c.grid == nil {
		return 0
	}
	return c.grid.step
}

// gridHead derives the head stage of q's chain in lattice form: the
// running task's execution lattice shifted by its start with past impulses
// cut and renormalized, or the unstarted head's lattice shifted by now.
// cut >= 0 only for a started head whose truncation is cacheable by that
// index; every now-dependent degenerate case (empty queue, fully overdue
// head) yields a point lattice at now with cut == -1.
func (c *Calculator) gridHead(q CoreQueue, now float64) (head pmf.Lattice, cut int) {
	g := c.grid
	if len(q.Tasks) == 0 {
		return pmf.PointLattice(now, g.step), -1
	}
	t0 := q.Tasks[0]
	base := g.exec[t0.Type][q.Node][t0.PState].lat
	if !t0.Started {
		return base.Shift(now), -1
	}
	base = base.Shift(t0.StartAt)
	k := base.SearchValue(now)
	trunc, kept := base.TruncateAt(k)
	if kept <= 0 {
		return pmf.PointLattice(now, g.step), -1
	}
	return trunc, k
}

// gridTail folds the waiting tasks' execution lattices (q.Tasks[1:]) into
// one dense product, left to right — the now-independent part of the chain
// that lattice associativity lets the engine cache and extend. An empty
// tail is the convolution identity.
func (c *Calculator) gridTail(q CoreQueue) pmf.Grid {
	g := c.grid
	w := g.identity
	if len(q.Tasks) == 0 {
		return w
	}
	for _, t := range q.Tasks[1:] {
		w = w.ConvolveLattice(g.exec[t.Type][q.Node][t.PState].lat)
	}
	return w
}

// GridFreeTime is the grid-mode form of FreeTime: the head lattice
// convolved into the waiting-tail product, materialized sparse. An empty
// queue yields the degenerate distribution at now.
func (c *Calculator) GridFreeTime(q CoreQueue, now float64) pmf.PMF {
	c.freeTimeEvals.Inc()
	if len(q.Tasks) == 0 {
		return pmf.Point(now)
	}
	head, _ := c.gridHead(q, now)
	return c.gridTail(q).ConvolveLattice(head).PMF()
}

// GridFreeMean is the grid-mode form of the linearity shortcut: the
// (truncated) head lattice mean plus the waiting tasks' lattice means.
func (c *Calculator) GridFreeMean(q CoreQueue, now float64) float64 {
	if len(q.Tasks) == 0 {
		return now
	}
	head, _ := c.gridHead(q, now)
	mean := head.Mean()
	g := c.grid
	for _, t := range q.Tasks[1:] {
		mean += g.exec[t.Type][q.Node][t.PState].mean
	}
	return mean
}

// GridProbOnTime is the grid-mode ρ(i,j,k,π,t_l,z): P(head + tail + exec ≤
// deadline) answered by pmf.TripleConvCDF with no completion distribution
// materialized.
func (c *Calculator) GridProbOnTime(q CoreQueue, now float64, taskType int, ps cluster.PState, deadline float64) float64 {
	c.completionEvals.Inc()
	head, cut := c.gridHead(q, now)
	exec := &c.grid.exec[taskType][q.Node][ps].lat
	w := c.gridTail(q)
	if cut >= 0 {
		// Cacheable head: materialize the tail⊛head product and answer
		// from its prefix sums — the expression the engine memoizes per
		// core, so candidates sharing a queue share the expensive factor.
		wh := w.ConvolveLattice(head)
		return wh.ConvCDF(exec, deadline)
	}
	// Degenerate or now-dependent heads (empty queue, unstarted, fully
	// overdue) stay on the allocation-free double sum.
	return pmf.TripleConvCDF(&head, &w, exec, deadline)
}
