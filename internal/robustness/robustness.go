// Package robustness implements §IV of the paper: stochastic completion
// times and the robustness measure ρ. A resource allocation is robust
// against uncertain task execution times; its robustness at time-step t_l
// is the expected number of tasks that will complete by their individual
// deadlines (Eqs. 3–4). For immediate-mode mapping the per-assignment
// quantity is ρ(i,j,k,π,t_l,z): the probability that task z completes by
// its deadline if assigned to core k of processor j in node i at P-state π.
//
// The completion-time pipeline follows §IV-B exactly: the currently
// executing task's execution-time pmf is shifted by its start time, the
// impulses already in the past are removed and the remainder renormalized,
// and the result is convolved with the execution-time pmfs of the waiting
// tasks and finally with the candidate task's own pmf.
package robustness

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/pmf"
	"repro/internal/workload"
)

// QueuedTask is the robustness-relevant view of a task occupying a core:
// its type, the P-state it was assigned, its deadline, and — if it is the
// task currently executing — its start time.
type QueuedTask struct {
	Type     int
	PState   cluster.PState
	Deadline float64
	Started  bool
	StartAt  float64
}

// CoreQueue is the ordered content of one core at a time-step: the first
// entry, if Started, is the currently executing task; the rest are waiting
// in FIFO order. Node identifies the core's node (all cores of a node are
// homogeneous, so nothing further is needed).
type CoreQueue struct {
	Node  int
	Tasks []QueuedTask
}

// Calculator computes completion-time distributions and robustness values
// against a fixed workload model. It holds no mutable state beyond
// optional atomic instrumentation counters and is safe for concurrent use.
type Calculator struct {
	model *workload.Model

	// Optional instrumentation, attached via Instrument. The counters are
	// atomic, so attaching them preserves concurrent safety; nil counters
	// make the increments no-ops.
	freeTimeEvals   *metrics.Counter
	completionEvals *metrics.Counter
}

// NewCalculator returns a Calculator for the given model.
func NewCalculator(m *workload.Model) *Calculator {
	if m == nil {
		panic("robustness: nil model")
	}
	return &Calculator{model: m}
}

// Instrument attaches counters for free-time chain evaluations (one per
// FreeTime call, each walking a convolution chain down a core's queue) and
// candidate completion-distribution evaluations (one per CompletionPMF
// call). Either counter may be nil.
func (c *Calculator) Instrument(freeTimeEvals, completionEvals *metrics.Counter) {
	c.freeTimeEvals = freeTimeEvals
	c.completionEvals = completionEvals
}

// FreeTime returns the distribution of the instant the core becomes free
// (finishes everything in queue), predicted at time now. An empty queue
// yields the degenerate distribution at now — the core's ready time.
func (c *Calculator) FreeTime(q CoreQueue, now float64) pmf.PMF {
	c.freeTimeEvals.Inc()
	if len(q.Tasks) == 0 {
		return pmf.Point(now)
	}
	free := pmf.Point(now)
	for i, t := range q.Tasks {
		exec := c.model.ExecPMF(t.Type, q.Node, t.PState)
		if i == 0 && t.Started {
			// Completion distribution of the running task: shift by its
			// start, drop past impulses, renormalize (§IV-B).
			comp := exec.Shift(t.StartAt)
			comp, _ = comp.TruncateBelow(now)
			free = comp
			continue
		}
		free = pmf.Convolve(free, exec)
	}
	return free
}

// CompletionPMF returns the completion-time distribution of a candidate
// task of the given type if appended to a core of the given node at P-state
// p, where free is the core's FreeTime distribution.
func (c *Calculator) CompletionPMF(free pmf.PMF, taskType, node int, p cluster.PState) pmf.PMF {
	c.completionEvals.Inc()
	return pmf.Convolve(free, c.model.ExecPMF(taskType, node, p))
}

// ProbOnTime returns ρ(i,j,k,π,t_l,z) for a candidate assignment: the
// probability the task completes by deadline given the core's FreeTime
// distribution.
func (c *Calculator) ProbOnTime(free pmf.PMF, taskType, node int, p cluster.PState, deadline float64) float64 {
	return c.CompletionPMF(free, taskType, node, p).ProbByDeadline(deadline)
}

// ExpectedCompletion returns ECT (§V-A) for a candidate assignment. By
// linearity of expectation it avoids the convolution entirely.
func (c *Calculator) ExpectedCompletion(free pmf.PMF, taskType, node int, p cluster.PState) float64 {
	return free.Mean() + c.model.ExecPMF(taskType, node, p).Mean()
}

// CoreRobustness evaluates ρ(i,j,k,t_l) (Eq. 3): the expected number of
// on-time completions among the tasks currently occupying the core,
// predicted at time now.
func (c *Calculator) CoreRobustness(q CoreQueue, now float64) float64 {
	if len(q.Tasks) == 0 {
		return 0
	}
	sum := 0.0
	var done pmf.PMF // completion distribution of the prefix
	for i, t := range q.Tasks {
		exec := c.model.ExecPMF(t.Type, q.Node, t.PState)
		if i == 0 {
			if t.Started {
				comp := exec.Shift(t.StartAt)
				comp, _ = comp.TruncateBelow(now)
				done = comp
			} else {
				done = exec.Shift(now)
			}
		} else {
			done = pmf.Convolve(done, exec)
		}
		sum += done.ProbByDeadline(t.Deadline)
	}
	return sum
}

// SystemRobustness evaluates ρ(t_l) (Eq. 4): the sum of CoreRobustness
// over every core in the cluster.
func (c *Calculator) SystemRobustness(queues []CoreQueue, now float64) float64 {
	sum := 0.0
	for i := range queues {
		sum += c.CoreRobustness(queues[i], now)
	}
	return sum
}

// Model returns the workload model the calculator evaluates against.
func (c *Calculator) Model() *workload.Model { return c.model }

// String identifies the calculator for diagnostics.
func (c *Calculator) String() string {
	return fmt.Sprintf("robustness.Calculator{types=%d nodes=%d}",
		c.model.Params.TaskTypes, c.model.Cluster.N())
}
