// Package robustness implements §IV of the paper: stochastic completion
// times and the robustness measure ρ. A resource allocation is robust
// against uncertain task execution times; its robustness at time-step t_l
// is the expected number of tasks that will complete by their individual
// deadlines (Eqs. 3–4). For immediate-mode mapping the per-assignment
// quantity is ρ(i,j,k,π,t_l,z): the probability that task z completes by
// its deadline if assigned to core k of processor j in node i at P-state π.
//
// The completion-time pipeline follows §IV-B exactly: the currently
// executing task's execution-time pmf is shifted by its start time, the
// impulses already in the past are removed and the remainder renormalized,
// and the result is convolved with the execution-time pmfs of the waiting
// tasks and finally with the candidate task's own pmf.
package robustness

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/pmf"
	"repro/internal/workload"
)

// QueuedTask is the robustness-relevant view of a task occupying a core:
// its type, the P-state it was assigned, its deadline, and — if it is the
// task currently executing — its start time.
type QueuedTask struct {
	Type     int
	PState   cluster.PState
	Deadline float64
	Started  bool
	StartAt  float64
}

// CoreQueue is the ordered content of one core at a time-step: the first
// entry, if Started, is the currently executing task; the rest are waiting
// in FIFO order. Node identifies the core's node (all cores of a node are
// homogeneous, so nothing further is needed).
type CoreQueue struct {
	Node  int
	Tasks []QueuedTask
}

// Calculator computes completion-time distributions and robustness values
// against a fixed workload model. It holds no mutable state beyond
// optional atomic instrumentation counters and is safe for concurrent use.
type Calculator struct {
	model *workload.Model

	// exactRho switches ProbOnTime to the direct double-sum evaluation
	// (see SetExactRho). Set once before use; not synchronized.
	exactRho bool

	// grid, when non-nil, holds the lattice execution table the Grid*
	// evaluators and the engine's grid mode read. Built once by EnableGrid
	// before the calculator is shared; not synchronized.
	grid *gridTable

	// Optional instrumentation, attached via Instrument. The counters are
	// atomic, so attaching them preserves concurrent safety; nil counters
	// make the increments no-ops.
	freeTimeEvals   *metrics.Counter
	completionEvals *metrics.Counter
}

// NewCalculator returns a Calculator for the given model.
func NewCalculator(m *workload.Model) *Calculator {
	if m == nil {
		panic("robustness: nil model")
	}
	return &Calculator{model: m}
}

// Instrument attaches counters for free-time chain evaluations (one per
// FreeTime call, each walking a convolution chain down a core's queue) and
// candidate completion-distribution evaluations (one per CompletionPMF
// call). Either counter may be nil.
func (c *Calculator) Instrument(freeTimeEvals, completionEvals *metrics.Counter) {
	c.freeTimeEvals = freeTimeEvals
	c.completionEvals = completionEvals
}

// SetExactRho switches ProbOnTime between the paper-faithful pipeline
// (materialize the compacted completion PMF, read its CDF at the deadline)
// and a direct double-sum evaluation of P(free + exec <= deadline) that
// skips both the convolution's impulse product materialization and its
// lossy compaction. The exact mode is opt-in and off by default: it is
// numerically tighter (no compaction error in the tail) and allocation
// free, but therefore NOT bit-identical to the paper pipeline. Set once
// before the calculator is shared; the flag is not synchronized.
func (c *Calculator) SetExactRho(on bool) { c.exactRho = on }

// ExactRho reports whether the exact-ρ evaluation mode is active.
func (c *Calculator) ExactRho() bool { return c.exactRho }

// FreeTime returns the distribution of the instant the core becomes free
// (finishes everything in queue), predicted at time now. An empty queue
// yields the degenerate distribution at now — the core's ready time.
func (c *Calculator) FreeTime(q CoreQueue, now float64) pmf.PMF {
	return c.FreeTimeFrom(pmf.PMF{}, q, now)
}

// HeadPMF derives the now-dependent first stage of q's §IV-B chain: the
// completion distribution of the running task, i.e. its execution PMF
// shifted by its start time with past impulses removed and the remainder
// renormalized. It returns the zero PMF when the queue is empty or the
// head task has not started (the head stage is then a pure shift that
// FreeTimeFrom derives in place). Callers that need both the expected free
// time and the full distribution derive the head once and pass it to
// FreeTimeFrom, instead of repeating the Shift+TruncateBelow work.
func (c *Calculator) HeadPMF(q CoreQueue, now float64) pmf.PMF {
	if len(q.Tasks) == 0 || !q.Tasks[0].Started {
		return pmf.PMF{}
	}
	t := q.Tasks[0]
	comp := c.model.ExecPMF(t.Type, q.Node, t.PState).Shift(t.StartAt)
	comp, _ = comp.TruncateBelow(now)
	return comp
}

// FreeTimeFrom is FreeTime with the head stage optionally precomputed
// (HeadPMF). A zero head derives it in place; either way the result is
// bit-identical to the naive left-to-right chain.
func (c *Calculator) FreeTimeFrom(head pmf.PMF, q CoreQueue, now float64) pmf.PMF {
	c.freeTimeEvals.Inc()
	if len(q.Tasks) == 0 {
		return pmf.Point(now)
	}
	var free pmf.PMF
	t0 := q.Tasks[0]
	switch {
	case !head.IsZero():
		free = head
	case t0.Started:
		// Completion distribution of the running task: shift by its
		// start, drop past impulses, renormalize (§IV-B).
		comp := c.model.ExecPMF(t0.Type, q.Node, t0.PState).Shift(t0.StartAt)
		comp, _ = comp.TruncateBelow(now)
		free = comp
	default:
		// Convolving Point(now) with the head's execution PMF is exactly
		// the degenerate-operand shift shortcut inside Convolve.
		free = c.model.ExecPMF(t0.Type, q.Node, t0.PState).Shift(now)
	}
	for _, t := range q.Tasks[1:] {
		free = pmf.Convolve(free, c.model.ExecPMF(t.Type, q.Node, t.PState))
	}
	return free
}

// CompletionPMF returns the completion-time distribution of a candidate
// task of the given type if appended to a core of the given node at P-state
// p, where free is the core's FreeTime distribution.
func (c *Calculator) CompletionPMF(free pmf.PMF, taskType, node int, p cluster.PState) pmf.PMF {
	c.completionEvals.Inc()
	return pmf.Convolve(free, c.model.ExecPMF(taskType, node, p))
}

// ProbOnTime returns ρ(i,j,k,π,t_l,z) for a candidate assignment: the
// probability the task completes by deadline given the core's FreeTime
// distribution.
func (c *Calculator) ProbOnTime(free pmf.PMF, taskType, node int, p cluster.PState, deadline float64) float64 {
	if c.exactRho {
		return c.probOnTimeExact(free, taskType, node, p, deadline)
	}
	return c.CompletionPMF(free, taskType, node, p).ProbByDeadline(deadline)
}

// probOnTimeExact evaluates P(free + exec <= deadline) directly as
// Σ_i free.Prob(i) · exec.CDF(deadline − free.Value(i)), without
// materializing (and compacting) the completion PMF. The free-time support
// ascends, so once the remaining slack drops below the fastest possible
// execution no later impulse can contribute and the sum terminates early.
func (c *Calculator) probOnTimeExact(free pmf.PMF, taskType, node int, p cluster.PState, deadline float64) float64 {
	c.completionEvals.Inc()
	exec := c.model.ExecPMF(taskType, node, p)
	if free.IsZero() || exec.IsZero() {
		return 0
	}
	emin := exec.Min()
	sum := 0.0
	for i := 0; i < free.Len(); i++ {
		slack := deadline - free.Value(i)
		if slack < emin {
			break
		}
		sum += free.Prob(i) * exec.CDF(slack)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// ExpectedCompletion returns ECT (§V-A) for a candidate assignment. By
// linearity of expectation it avoids the convolution entirely.
func (c *Calculator) ExpectedCompletion(free pmf.PMF, taskType, node int, p cluster.PState) float64 {
	return free.Mean() + c.model.ExecPMF(taskType, node, p).Mean()
}

// CoreRobustness evaluates ρ(i,j,k,t_l) (Eq. 3): the expected number of
// on-time completions among the tasks currently occupying the core,
// predicted at time now.
func (c *Calculator) CoreRobustness(q CoreQueue, now float64) float64 {
	if len(q.Tasks) == 0 {
		return 0
	}
	sum := 0.0
	var done pmf.PMF // completion distribution of the prefix
	for i, t := range q.Tasks {
		exec := c.model.ExecPMF(t.Type, q.Node, t.PState)
		if i == 0 {
			if t.Started {
				comp := exec.Shift(t.StartAt)
				comp, _ = comp.TruncateBelow(now)
				done = comp
			} else {
				done = exec.Shift(now)
			}
		} else {
			done = pmf.Convolve(done, exec)
		}
		sum += done.ProbByDeadline(t.Deadline)
	}
	return sum
}

// SystemRobustness evaluates ρ(t_l) (Eq. 4): the sum of CoreRobustness
// over every core in the cluster.
func (c *Calculator) SystemRobustness(queues []CoreQueue, now float64) float64 {
	sum := 0.0
	for i := range queues {
		sum += c.CoreRobustness(queues[i], now)
	}
	return sum
}

// Model returns the workload model the calculator evaluates against.
func (c *Calculator) Model() *workload.Model { return c.model }

// String identifies the calculator for diagnostics.
func (c *Calculator) String() string {
	return fmt.Sprintf("robustness.Calculator{types=%d nodes=%d}",
		c.model.Params.TaskTypes, c.model.Cluster.N())
}
