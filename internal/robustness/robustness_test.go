package robustness

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/pmf"
	"repro/internal/randx"
	"repro/internal/workload"
)

func buildModel(t *testing.T, seed uint64) *workload.Model {
	t.Helper()
	s := randx.NewStream(seed)
	c, err := cluster.Generate(s.Child("cluster"), cluster.PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	p := workload.PaperParams()
	p.TaskTypes = 8
	p.WindowSize = 50
	p.BurstLen = 10
	p.PMFSamples = 300
	m, err := workload.BuildModel(s.Child("wl"), c, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFreeTimeEmptyQueue(t *testing.T) {
	m := buildModel(t, 1)
	calc := NewCalculator(m)
	free := calc.FreeTime(CoreQueue{Node: 0}, 123.5)
	if free.Len() != 1 || free.Value(0) != 123.5 {
		t.Fatalf("empty queue free time %v, want point at 123.5", free)
	}
}

func TestFreeTimeWaitingOnly(t *testing.T) {
	m := buildModel(t, 2)
	calc := NewCalculator(m)
	q := CoreQueue{Node: 0, Tasks: []QueuedTask{
		{Type: 0, PState: cluster.P0, Deadline: 1e9},
		{Type: 1, PState: cluster.P2, Deadline: 1e9},
	}}
	now := 100.0
	free := calc.FreeTime(q, now)
	if err := free.Validate(); err != nil {
		t.Fatal(err)
	}
	want := now + m.ExecPMF(0, 0, cluster.P0).Mean() + m.ExecPMF(1, 0, cluster.P2).Mean()
	if math.Abs(free.Mean()-want) > 1e-6*want {
		t.Fatalf("free mean %v, want %v", free.Mean(), want)
	}
	if free.Min() < now {
		t.Fatalf("free time %v before now %v", free.Min(), now)
	}
}

func TestFreeTimeRunningTaskTruncation(t *testing.T) {
	m := buildModel(t, 3)
	calc := NewCalculator(m)
	exec := m.ExecPMF(2, 1, cluster.P1)
	start := 50.0
	// Pick a "now" well inside the completion distribution's support so
	// truncation really removes mass.
	now := start + exec.Mean()
	q := CoreQueue{Node: 1, Tasks: []QueuedTask{
		{Type: 2, PState: cluster.P1, Deadline: 1e9, Started: true, StartAt: start},
	}}
	free := calc.FreeTime(q, now)
	if err := free.Validate(); err != nil {
		t.Fatal(err)
	}
	if free.Min() < now {
		t.Fatalf("running-task completion %v in the past (now %v)", free.Min(), now)
	}
	// The conditional mean must be at least the unconditional shifted mean.
	if free.Mean() < start+exec.Mean()-1e-9 {
		t.Fatalf("truncated mean %v below unconditional %v", free.Mean(), start+exec.Mean())
	}
	// Reference: manual §IV-B pipeline.
	ref := exec.Shift(start)
	ref, _ = ref.TruncateBelow(now)
	if !free.ApproxEqual(ref, 1e-12) {
		t.Fatal("FreeTime deviates from the manual shift/truncate/renormalize pipeline")
	}
}

func TestFreeTimeOverdueRunningTask(t *testing.T) {
	m := buildModel(t, 4)
	calc := NewCalculator(m)
	exec := m.ExecPMF(0, 0, cluster.P0)
	// now beyond the whole support: the task "should" be done already.
	now := 10 + exec.Max() + 1000
	q := CoreQueue{Node: 0, Tasks: []QueuedTask{
		{Type: 0, PState: cluster.P0, Deadline: 1e9, Started: true, StartAt: 10},
	}}
	free := calc.FreeTime(q, now)
	if free.Len() != 1 || free.Value(0) != now {
		t.Fatalf("overdue task should yield point at now, got %v", free)
	}
}

func TestCompletionAndProbOnTime(t *testing.T) {
	m := buildModel(t, 5)
	calc := NewCalculator(m)
	free := pmf.Point(200.0)
	comp := calc.CompletionPMF(free, 3, 2, cluster.P3)
	exec := m.ExecPMF(3, 2, cluster.P3)
	if math.Abs(comp.Mean()-(200+exec.Mean())) > 1e-9 {
		t.Fatalf("completion mean %v, want %v", comp.Mean(), 200+exec.Mean())
	}
	// Monotone in deadline; 0 before support; 1 after.
	if p := calc.ProbOnTime(free, 3, 2, cluster.P3, 200); p != 0 {
		t.Fatalf("prob before any completion %v, want 0", p)
	}
	if p := calc.ProbOnTime(free, 3, 2, cluster.P3, 200+exec.Max()+1); p != 1 {
		t.Fatalf("prob after full support %v, want 1", p)
	}
	mid := calc.ProbOnTime(free, 3, 2, cluster.P3, 200+exec.Mean())
	if mid <= 0 || mid >= 1 {
		t.Fatalf("prob at mean %v, want strictly inside (0,1)", mid)
	}
}

func TestProbOnTimeDecreasesWithSlowerPState(t *testing.T) {
	m := buildModel(t, 6)
	calc := NewCalculator(m)
	free := pmf.Point(0.0)
	exec0 := m.ExecPMF(1, 0, cluster.P0)
	deadline := exec0.Mean() * 1.3
	p0 := calc.ProbOnTime(free, 1, 0, cluster.P0, deadline)
	p4 := calc.ProbOnTime(free, 1, 0, cluster.P4, deadline)
	if p4 > p0 {
		t.Fatalf("P4 on-time prob %v exceeds P0 %v for same tight deadline", p4, p0)
	}
}

func TestExpectedCompletionLinearity(t *testing.T) {
	m := buildModel(t, 7)
	calc := NewCalculator(m)
	q := CoreQueue{Node: 0, Tasks: []QueuedTask{
		{Type: 0, PState: cluster.P1, Deadline: 1e9},
	}}
	free := calc.FreeTime(q, 10)
	got := calc.ExpectedCompletion(free, 2, 0, cluster.P2)
	// Full convolution as reference.
	want := calc.CompletionPMF(free, 2, 0, cluster.P2).Mean()
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("ExpectedCompletion %v, want %v (convolution reference)", got, want)
	}
}

func TestCoreRobustnessEq3(t *testing.T) {
	m := buildModel(t, 8)
	calc := NewCalculator(m)
	now := 0.0
	// Two waiting tasks with generous deadlines: both probabilities ≈ 1, so
	// ρ(core) ≈ 2.
	q := CoreQueue{Node: 0, Tasks: []QueuedTask{
		{Type: 0, PState: cluster.P0, Deadline: 1e9},
		{Type: 1, PState: cluster.P0, Deadline: 1e9},
	}}
	if rho := calc.CoreRobustness(q, now); math.Abs(rho-2) > 1e-9 {
		t.Fatalf("core robustness %v, want 2", rho)
	}
	// Impossible deadlines: ρ ≈ 0.
	q.Tasks[0].Deadline = -1
	q.Tasks[1].Deadline = -1
	if rho := calc.CoreRobustness(q, now); rho != 0 {
		t.Fatalf("core robustness %v, want 0", rho)
	}
	if rho := calc.CoreRobustness(CoreQueue{Node: 0}, now); rho != 0 {
		t.Fatalf("empty core robustness %v, want 0", rho)
	}
}

func TestCoreRobustnessQueuePositionMatters(t *testing.T) {
	m := buildModel(t, 9)
	calc := NewCalculator(m)
	exec := m.ExecPMF(0, 0, cluster.P0)
	// Deadline that the first task meets comfortably but the second
	// (which must wait for the first) cannot.
	deadline := exec.Mean() * 1.5
	q := CoreQueue{Node: 0, Tasks: []QueuedTask{
		{Type: 0, PState: cluster.P0, Deadline: deadline},
		{Type: 0, PState: cluster.P0, Deadline: deadline},
	}}
	rho := calc.CoreRobustness(q, 0)
	if rho < 0.5 || rho > 1.6 {
		t.Fatalf("robustness %v: expected first task ~certain, second ~unlikely", rho)
	}
}

func TestSystemRobustnessEq4(t *testing.T) {
	m := buildModel(t, 10)
	calc := NewCalculator(m)
	queues := []CoreQueue{
		{Node: 0, Tasks: []QueuedTask{{Type: 0, PState: cluster.P0, Deadline: 1e9}}},
		{Node: 1, Tasks: []QueuedTask{{Type: 1, PState: cluster.P2, Deadline: 1e9}}},
		{Node: 2},
	}
	got := calc.SystemRobustness(queues, 0)
	want := calc.CoreRobustness(queues[0], 0) + calc.CoreRobustness(queues[1], 0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("system robustness %v, want %v", got, want)
	}
}

func TestNewCalculatorNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil model")
		}
	}()
	NewCalculator(nil)
}

func TestCalculatorString(t *testing.T) {
	m := buildModel(t, 11)
	if NewCalculator(m).String() == "" {
		t.Fatal("empty String()")
	}
}
