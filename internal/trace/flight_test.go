package trace

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/randx"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// flightRun drives one small simulation with scripted faults, requeue
// recovery, and the staged brownout schedule under a tight budget, with a
// Flight attached as the observer — the busiest trace shape the format has
// to carry (down-spans, kills, requeues, stage changes, partial energy).
func flightRun(t *testing.T, rec Recorder) *Trace {
	t.Helper()
	s := randx.NewStream(11)
	c, err := cluster.Generate(s.Child("cluster"), cluster.PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	p := workload.PaperParams()
	p.TaskTypes = 8
	p.WindowSize = 80
	p.BurstLen = 16
	p.PMFSamples = 300
	m, err := workload.BuildModel(s.Child("wl"), c, p)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.GenerateTrial(randx.NewStream(7), m)
	if err != nil {
		t.Fatal(err)
	}
	budget := 0.7 * m.DefaultEnergyBudget()
	fl := NewFlight(m, Header{
		Kind:      KindSim,
		ModelHash: m.Hash(),
		Seed:      11,
		Trial:     0,
		Policy:    "LL",
		Budget:    budget,
	}, rec)
	fl.SetTasks(tr.Tasks)
	reg := metrics.NewRegistry()
	cfg := sim.Config{
		Model:        m,
		Mapper:       &sched.Mapper{Heuristic: sched.LightestLoad{}},
		EnergyBudget: budget,
		Observer:     fl,
		Metrics:      reg,
		Faults: fault.Spec{
			RepairTime: 0.4 * m.TAvg(),
			Script: []fault.Scripted{
				{Time: 0.2 * m.TAvg(), Kind: fault.Transient, Core: 0},
				{Time: 0.3 * m.TAvg(), Kind: fault.Transient, Core: 1},
				{Time: 0.5 * m.TAvg(), Kind: fault.Transient, Core: 2, Repair: 0.2 * m.TAvg()},
			},
			Recovery: fault.Recovery{Mode: fault.Requeue, MaxRetries: 2, Backoff: 0.05 * m.TAvg()},
		},
		Brownout: energy.DefaultBrownoutStages(),
	}
	res, err := sim.Run(cfg, tr, randx.NewStream(11).ChildN("decisions", 0))
	if err != nil {
		t.Fatal(err)
	}
	return fl.Finish(SummaryOf(res), reg.Snapshot())
}

func TestFlightRoundTripFaultsBrownout(t *testing.T) {
	tr := flightRun(t, nil)
	if len(tr.Rows) != 80 {
		t.Fatalf("rows = %d, want every trial task (80)", len(tr.Rows))
	}
	kinds := map[string]int{}
	for _, e := range tr.Events {
		kinds[e.Kind]++
	}
	if kinds[EvCoreFailed] != 3 || kinds[EvCoreRepaired] == 0 {
		t.Fatalf("scripted faults not in event stream: %v", kinds)
	}

	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(tr, dec, 0); len(d) != 0 {
		t.Fatalf("round trip not identical:\n%s", strings.Join(d, "\n"))
	}
	// Bit identity, not just field identity: re-encoding the decoded trace
	// must reproduce the original bytes exactly.
	var buf2 bytes.Buffer
	if err := dec.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-encoded bytes differ from the original encoding")
	}
}

// TestFlightFileMatchesEncode proves the live recorder (header first,
// events during the run, rows and tail at Finish) lays lines down in
// exactly the order Trace.Encode does, so a recorded file and a replayed
// WriteFile are byte-comparable with cmp.
func TestFlightFileMatchesEncode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	rec, err := NewFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := flightRun(t, rec)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := tr.Encode(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("live-recorded file bytes differ from Trace.Encode")
	}
}

func TestFlightDecodeTornTail(t *testing.T) {
	tr := flightRun(t, nil)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// A crash mid-append tears the final line: decoding keeps everything
	// before the tear and drops the torn tail without error.
	torn := full[:len(full)-40]
	dec, err := DecodeBytes(torn)
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if dec.Metrics != nil {
		t.Fatal("torn metrics line survived decoding")
	}
	if len(dec.Rows) != len(tr.Rows) || len(dec.Events) != len(tr.Events) {
		t.Fatalf("torn tail lost intact lines: rows %d/%d events %d/%d",
			len(dec.Rows), len(tr.Rows), len(dec.Events), len(tr.Events))
	}

	// Corruption mid-file (followed by more intact lines) is NOT a torn
	// tail; that file is damaged and decoding must refuse it.
	nl := bytes.IndexByte(full, '\n')
	mid := append([]byte{}, full[:nl+1]...)
	mid = append(mid, []byte("{\"e\": {\"t\": garbage\n")...)
	mid = append(mid, full[nl+1:]...)
	if _, err := DecodeBytes(mid); err == nil || !strings.Contains(err.Error(), "mid-file") {
		t.Fatalf("mid-file corruption accepted: %v", err)
	}

	// The first line must be a FlightFormat header.
	if _, err := DecodeBytes(full[nl+1:]); err == nil {
		t.Fatal("headerless file accepted")
	}
	if _, err := DecodeBytes([]byte("{\"h\": {\"format\": \"ecflight/v999\"}}\n")); err == nil {
		t.Fatal("unknown format version accepted")
	}

	// One header per trace.
	dup := append(append([]byte{}, full[:nl+1]...), full...)
	if _, err := DecodeBytes(dup); err == nil || !strings.Contains(err.Error(), "duplicate header") {
		t.Fatalf("duplicate header accepted: %v", err)
	}

	if _, err := DecodeBytes(nil); err == nil {
		t.Fatal("empty file accepted")
	}
}

func FuzzTraceDecode(f *testing.F) {
	tr := &Trace{
		Header: Header{Format: FlightFormat, Kind: KindSim, ModelHash: "deadbeef", Seed: 1, Policy: "LL", Budget: -1},
		Rows: []Row{
			{ID: 0, Type: 3, Arrival: 0, Deadline: 4.5, U: 0.25, Verdict: "mapped", Node: 1, CoreIdx: 2, PState: 0, PredRho: 0.9, Start: 0, Finish: 3, Outcome: "on-time", Energy: 2.5},
			{ID: 1, Type: 1, Arrival: 0.5, Deadline: 2, U: 0.75, Verdict: "shed", Shed: "infeasible", Node: -1, CoreIdx: -1, PState: -1, PredRho: -1, Start: -1, Finish: -1},
		},
		Events:  []Ev{{T: 1, Kind: EvCoreFailed, Core: "n0c1", Task: -1, X: 0.4}, {T: 2, Kind: EvTaskRequeued, Task: 0, N: 1}},
		Summary: &Summary{Window: 2, OnTime: 1, EnergyConsumed: 2.5, Makespan: 3},
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)-7])
	f.Add([]byte("{\"h\": {\"format\": \"ecflight/v1\"}}\n{\"r\": {\"id\": 0}}\n"))
	f.Add([]byte("{\"r\": {\"id\": 0}}\n"))
	f.Add([]byte("not json"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeBytes(data)
		if err != nil {
			return
		}
		// Anything the decoder accepts must survive an encode/decode cycle
		// unchanged — the bit-identity contract the replay gate rests on.
		var rt bytes.Buffer
		if err := dec.Encode(&rt); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		dec2, err := DecodeBytes(rt.Bytes())
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if d := Diff(dec, dec2, 1); len(d) != 0 {
			t.Fatalf("encode/decode cycle changed the trace: %s", d[0])
		}
	})
}

// TestFlightBudgetEncoding pins the -1 convention for unconstrained runs:
// math.Inf does not survive JSON, so +Inf budgets must be encoded by the
// caller before they reach a header.
func TestFlightBudgetEncoding(t *testing.T) {
	h := Header{Format: FlightFormat, Kind: KindSim, Budget: -1}
	tr := &Trace{Header: h}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Header.Budget != -1 {
		t.Fatalf("budget = %v, want -1", dec.Header.Budget)
	}
	if math.IsInf(dec.Header.Budget, 1) {
		t.Fatal("+Inf leaked into a decoded header")
	}
}
