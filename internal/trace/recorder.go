package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/metrics"
)

// Recorder is the sink a Flight writes through. Engines never talk to a
// recorder directly — they emit observer callbacks, the Flight assembles
// rows, and the recorder persists them. Implementations must be cheap when
// idle: the Nop default is what every run without tracing pays.
//
// Call order: Begin once (the header), then any interleaving of Event and
// Row, then End once (summary + metric snapshot), then Close. Recorders
// are not safe for concurrent use; they ride the engine goroutine.
type Recorder interface {
	Begin(h *Header)
	Row(r *Row)
	Event(e *Ev)
	End(s *Summary, m *metrics.Snapshot)
	// Close finalizes the sink (flush + atomic rename for files). It
	// reports the first write error encountered anywhere in the stream, so
	// hot-path writes never have to handle errors.
	Close() error
}

// Nop is the default recorder: it discards everything.
type Nop struct{}

// Begin implements Recorder.
func (Nop) Begin(*Header) {}

// Row implements Recorder.
func (Nop) Row(*Row) {}

// Event implements Recorder.
func (Nop) Event(*Ev) {}

// End implements Recorder.
func (Nop) End(*Summary, *metrics.Snapshot) {}

// Close implements Recorder.
func (Nop) Close() error { return nil }

// Mem accumulates the stream into an in-memory Trace (test aid).
type Mem struct {
	Trace Trace
}

// Begin implements Recorder.
func (m *Mem) Begin(h *Header) { m.Trace.Header = *h }

// Row implements Recorder.
func (m *Mem) Row(r *Row) { m.Trace.Rows = append(m.Trace.Rows, *r) }

// Event implements Recorder.
func (m *Mem) Event(e *Ev) { m.Trace.Events = append(m.Trace.Events, *e) }

// End implements Recorder.
func (m *Mem) End(s *Summary, snap *metrics.Snapshot) {
	m.Trace.Summary = s
	m.Trace.Metrics = snap
}

// Close implements Recorder.
func (m *Mem) Close() error { return nil }

// File is a buffered flight-trace file writer with atomic close: lines
// accumulate in a temp file in the target directory and the temp is
// fsynced and renamed over the destination only on Close, so readers never
// observe a half-written trace under the final name. (A crash leaves the
// temp behind; the decode-side torn-tail tolerance covers traces that were
// copied or tailed mid-write.)
//
// Write errors do not interrupt the run: the recorder latches the first
// error, counts every subsequent line as a drop, and reports the error
// from Close. The optional metrics registry receives:
//
//	trace_rows_recorded_total    rows written
//	trace_events_recorded_total  events written
//	trace_record_drops_total     lines dropped after a write error
//	trace_flushes_total          successful Close flushes
type File struct {
	path string
	tmp  *os.File
	bw   *bufio.Writer
	enc  *json.Encoder
	err  error

	rows, events, drops, flushes *metrics.Counter
}

var _ Recorder = (*File)(nil)

// NewFile opens a file recorder targeting path. reg may be nil.
func NewFile(path string, reg *metrics.Registry) (*File, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("trace: create %s: %w", path, err)
	}
	bw := bufio.NewWriterSize(tmp, 256*1024)
	return &File{
		path:    path,
		tmp:     tmp,
		bw:      bw,
		enc:     json.NewEncoder(bw),
		rows:    reg.Counter("trace_rows_recorded_total"),
		events:  reg.Counter("trace_events_recorded_total"),
		drops:   reg.Counter("trace_record_drops_total"),
		flushes: reg.Counter("trace_flushes_total"),
	}, nil
}

func (f *File) write(ln line) bool {
	if f.err != nil {
		f.drops.Inc()
		return false
	}
	if err := f.enc.Encode(ln); err != nil {
		f.err = err
		f.drops.Inc()
		return false
	}
	return true
}

// Begin implements Recorder.
func (f *File) Begin(h *Header) { f.write(line{H: h}) }

// Row implements Recorder.
func (f *File) Row(r *Row) {
	if f.write(line{R: r}) {
		f.rows.Inc()
	}
}

// Event implements Recorder.
func (f *File) Event(e *Ev) {
	if f.write(line{E: e}) {
		f.events.Inc()
	}
}

// End implements Recorder.
func (f *File) End(s *Summary, m *metrics.Snapshot) {
	if s != nil {
		f.write(line{S: s})
	}
	if m != nil {
		f.write(line{M: m})
	}
}

// Close flushes, fsyncs, and renames the temp file into place. On any
// earlier write error the temp is discarded and the destination is left
// untouched.
func (f *File) Close() error {
	if f.tmp == nil {
		return f.err
	}
	tmp := f.tmp
	f.tmp = nil
	if f.err == nil {
		f.err = f.bw.Flush()
	}
	if f.err == nil {
		f.err = tmp.Sync()
	}
	if err := tmp.Close(); f.err == nil {
		f.err = err
	}
	if f.err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("trace: write %s: %w", f.path, f.err)
	}
	if err := os.Rename(tmp.Name(), f.path); err != nil {
		os.Remove(tmp.Name())
		f.err = err
		return fmt.Errorf("trace: finalize %s: %w", f.path, err)
	}
	f.flushes.Inc()
	return nil
}

// WriteFile writes an assembled trace to path with the same atomic
// temp-and-rename discipline as File.
func WriteFile(path string, t *Trace) error {
	f, err := NewFile(path, nil)
	if err != nil {
		return err
	}
	f.Begin(&t.Header)
	for i := range t.Events {
		f.Event(&t.Events[i])
	}
	for i := range t.Rows {
		f.Row(&t.Rows[i])
	}
	f.End(t.Summary, t.Metrics)
	return f.Close()
}

// ReadFile decodes the flight trace at path.
func ReadFile(path string) (*Trace, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return Decode(fh)
}
