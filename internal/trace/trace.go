// Package trace records the event stream of a simulation run and renders
// it for humans and tools: a structured event log (JSON/CSV exportable),
// per-core execution timelines as ASCII Gantt charts, and time series of
// the cluster's state (tasks in system, cumulative energy proxy). It is
// the observability layer a downstream operator uses to understand *why* a
// policy missed the deadlines it missed.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Kind labels an event.
type Kind string

// Event kinds.
const (
	KindMapped    Kind = "mapped"
	KindDiscarded Kind = "discarded"
	KindStarted   Kind = "started"
	KindFinished  Kind = "finished"
	KindPState    Kind = "pstate"
	KindExhausted Kind = "exhausted"
	KindFault     Kind = "fault"
	KindRepair    Kind = "repair"
	KindKilled    Kind = "killed"
	KindRequeue   Kind = "requeue"
	KindBrownout  Kind = "brownout"
	KindShed      Kind = "shed"
)

// Event is one recorded simulation event.
type Event struct {
	Time   float64 `json:"t"`
	Kind   Kind    `json:"kind"`
	TaskID int     `json:"task,omitempty"`
	Type   int     `json:"type,omitempty"`
	Core   string  `json:"core,omitempty"`
	PState string  `json:"pstate,omitempty"`
	OnTime *bool   `json:"onTime,omitempty"`
	// Detail carries kind-specific context: the fault kind for "fault",
	// the retry attempt for "requeue", the stage number for "brownout".
	Detail string `json:"detail,omitempty"`
}

// EventLog implements sim.Observer (and sim.EnergyObserver), accumulating
// the event log, the per-core execution spans needed for timeline
// rendering, and a decimated energy-meter trajectory.
type EventLog struct {
	Events []Event

	spans    map[string][]span // core label -> executed spans
	downs    map[string][]span // core label -> failed (down) intervals
	faults   int
	brownout int // deepest brownout stage seen
	exhaust  float64
	halted   bool
	lastTime float64

	// Decimated energy trajectory: when the buffer fills, every second
	// point is dropped and the keep-stride doubles, bounding memory while
	// preserving the run-wide shape.
	energyT []float64
	energyE []float64
	eStride int
	eSkip   int
}

// maxEnergyPoints bounds the retained energy-trajectory buffer.
const maxEnergyPoints = 2048

type span struct {
	start, end float64
	taskID     int
	pstate     cluster.PState
	onTime     bool
	open       bool
	killed     bool
}

// NewEventLog returns an empty recorder.
func NewEventLog() *EventLog {
	return &EventLog{spans: make(map[string][]span), downs: make(map[string][]span)}
}

var (
	_ sim.Observer         = (*EventLog)(nil)
	_ sim.EnergyObserver   = (*EventLog)(nil)
	_ sim.FaultObserver    = (*EventLog)(nil)
	_ sim.BrownoutObserver = (*EventLog)(nil)
)

func (r *EventLog) add(e Event) {
	r.Events = append(r.Events, e)
	if e.Time > r.lastTime {
		r.lastTime = e.Time
	}
}

// TaskMapped implements sim.Observer.
func (r *EventLog) TaskMapped(t float64, task workload.Task, a sched.Assignment) {
	r.add(Event{Time: t, Kind: KindMapped, TaskID: task.ID, Type: task.Type,
		Core: a.Core.String(), PState: a.PState.String()})
}

// TaskDiscarded implements sim.Observer.
func (r *EventLog) TaskDiscarded(t float64, task workload.Task) {
	r.add(Event{Time: t, Kind: KindDiscarded, TaskID: task.ID, Type: task.Type})
}

// TaskShed records a serving-mode admission rejection: the task was refused
// before ever reaching the mapper (bounded queue, brownout gate, infeasible
// deadline, request timeout). Detail carries the shed reason. The batch
// simulator never emits these; internal/server does.
func (r *EventLog) TaskShed(t float64, task workload.Task, reason string) {
	r.add(Event{Time: t, Kind: KindShed, TaskID: task.ID, Type: task.Type, Detail: reason})
}

// TaskStarted implements sim.Observer.
func (r *EventLog) TaskStarted(t float64, task workload.Task, a sched.Assignment) {
	r.add(Event{Time: t, Kind: KindStarted, TaskID: task.ID, Type: task.Type,
		Core: a.Core.String(), PState: a.PState.String()})
	key := a.Core.String()
	r.spans[key] = append(r.spans[key], span{start: t, taskID: task.ID, pstate: a.PState, open: true})
}

// TaskFinished implements sim.Observer.
func (r *EventLog) TaskFinished(t float64, task workload.Task, a sched.Assignment, onTime bool) {
	ot := onTime
	r.add(Event{Time: t, Kind: KindFinished, TaskID: task.ID, Type: task.Type,
		Core: a.Core.String(), PState: a.PState.String(), OnTime: &ot})
	key := a.Core.String()
	ss := r.spans[key]
	for i := len(ss) - 1; i >= 0; i-- {
		if ss[i].open && ss[i].taskID == task.ID {
			ss[i].end = t
			ss[i].onTime = onTime
			ss[i].open = false
			break
		}
	}
}

// PStateChanged implements sim.Observer.
func (r *EventLog) PStateChanged(t float64, core cluster.CoreID, ps cluster.PState) {
	r.add(Event{Time: t, Kind: KindPState, Core: core.String(), PState: ps.String()})
}

// EnergyExhausted implements sim.Observer.
func (r *EventLog) EnergyExhausted(t float64) {
	r.add(Event{Time: t, Kind: KindExhausted})
	r.exhaust = t
	r.halted = true
}

// CoreFailed implements sim.FaultObserver: the down interval opens and any
// execution span running on the core is closed by the following TaskKilled.
func (r *EventLog) CoreFailed(t float64, core cluster.CoreID, kind fault.Kind, _ float64) {
	r.add(Event{Time: t, Kind: KindFault, Core: core.String(), Detail: kind.String()})
	r.faults++
	key := core.String()
	r.downs[key] = append(r.downs[key], span{start: t, open: true})
}

// CoreRepaired implements sim.FaultObserver: the down interval closes.
func (r *EventLog) CoreRepaired(t float64, core cluster.CoreID) {
	r.add(Event{Time: t, Kind: KindRepair, Core: core.String()})
	key := core.String()
	ds := r.downs[key]
	for i := len(ds) - 1; i >= 0; i-- {
		if ds[i].open {
			ds[i].end = t
			ds[i].open = false
			break
		}
	}
}

// TaskKilled implements sim.FaultObserver: a running task's execution span
// is cut at the failure instant and marked killed.
func (r *EventLog) TaskKilled(t float64, task workload.Task, core cluster.CoreID) {
	r.add(Event{Time: t, Kind: KindKilled, TaskID: task.ID, Type: task.Type, Core: core.String()})
	key := core.String()
	ss := r.spans[key]
	for i := len(ss) - 1; i >= 0; i-- {
		if ss[i].open && ss[i].taskID == task.ID {
			ss[i].end = t
			ss[i].open = false
			ss[i].killed = true
			break
		}
	}
}

// TaskRequeued implements sim.FaultObserver.
func (r *EventLog) TaskRequeued(t float64, task workload.Task, attempt int) {
	r.add(Event{Time: t, Kind: KindRequeue, TaskID: task.ID, Type: task.Type,
		Detail: fmt.Sprintf("attempt %d", attempt)})
}

// BrownoutStageChanged implements sim.BrownoutObserver.
func (r *EventLog) BrownoutStageChanged(t float64, stage int, frac float64) {
	r.add(Event{Time: t, Kind: KindBrownout, Detail: fmt.Sprintf("stage %d (%.1f%% consumed)", stage, 100*frac)})
	if stage > r.brownout {
		r.brownout = stage
	}
}

// EnergySample implements sim.EnergyObserver: the recorder keeps a
// decimated (time, cumulative energy) trajectory of the meter.
func (r *EventLog) EnergySample(t, consumed, _ float64) {
	if r.eStride == 0 {
		r.eStride = 1
	}
	if r.eSkip > 0 {
		r.eSkip--
		return
	}
	r.eSkip = r.eStride - 1
	r.energyT = append(r.energyT, t)
	r.energyE = append(r.energyE, consumed)
	if len(r.energyT) >= maxEnergyPoints {
		keep := 0
		for i := 0; i < len(r.energyT); i += 2 {
			r.energyT[keep] = r.energyT[i]
			r.energyE[keep] = r.energyE[i]
			keep++
		}
		r.energyT = r.energyT[:keep]
		r.energyE = r.energyE[:keep]
		r.eStride *= 2
	}
}

// EnergySeries returns the recorded (time, cumulative energy) trajectory.
// Empty unless the recorder was attached to a run as its observer (energy
// samples flow through the sim.EnergyObserver extension).
func (r *EventLog) EnergySeries() (times, consumed []float64) {
	return r.energyT, r.energyE
}

// Len returns the number of recorded events.
func (r *EventLog) Len() int { return len(r.Events) }

// End returns the time of the last recorded event.
func (r *EventLog) End() float64 { return r.lastTime }

// Halted reports whether the run ended by energy exhaustion, and when.
func (r *EventLog) Halted() (float64, bool) { return r.exhaust, r.halted }

// WriteJSON streams the event log as one JSON object per line (JSONL).
func (r *EventLog) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range r.Events {
		if err := enc.Encode(&r.Events[i]); err != nil {
			return fmt.Errorf("trace: encode event %d: %w", i, err)
		}
	}
	return nil
}

// WriteCSV writes the event log as CSV with a header row.
func (r *EventLog) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "t,kind,task,type,core,pstate,onTime,detail\n"); err != nil {
		return err
	}
	for i := range r.Events {
		e := &r.Events[i]
		ot := ""
		if e.OnTime != nil {
			ot = fmt.Sprintf("%v", *e.OnTime)
		}
		if _, err := fmt.Fprintf(w, "%g,%s,%d,%d,%s,%s,%s,%s\n",
			e.Time, e.Kind, e.TaskID, e.Type, e.Core, e.PState, ot, e.Detail); err != nil {
			return err
		}
	}
	return nil
}

// Timeline renders per-core ASCII Gantt rows over [0, End()]: digits 0–4
// mark execution at that P-state, '.' idle, '!' marks a span whose task
// missed its deadline, and a trailing '#' column marks the exhaustion
// instant. Cores with no activity are included (all idle) when their label
// is passed explicitly; by default only active cores render, sorted by
// label.
func (r *EventLog) Timeline(width int) string {
	if width < 20 {
		width = 20
	}
	end := r.lastTime
	if end <= 0 {
		return "(empty trace)\n"
	}
	labels := make([]string, 0, len(r.spans)+len(r.downs))
	for k := range r.spans {
		labels = append(labels, k)
	}
	for k := range r.downs {
		if _, ok := r.spans[k]; !ok {
			labels = append(labels, k)
		}
	}
	sort.Strings(labels)
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	pos := func(t float64) int {
		p := int(float64(width-1) * t / end)
		if p < 0 {
			p = 0
		}
		if p > width-1 {
			p = width - 1
		}
		return p
	}
	var b strings.Builder
	for _, l := range labels {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range r.downs[l] {
			endT := s.end
			if s.open {
				endT = end
			}
			for i := pos(s.start); i <= pos(endT); i++ {
				row[i] = '~'
			}
		}
		for _, s := range r.spans[l] {
			endT := s.end
			if s.open {
				endT = end
			}
			mark := byte('0' + int(s.pstate))
			switch {
			case s.killed:
				mark = 'x'
			case !s.open && !s.onTime:
				mark = '!'
			}
			for i := pos(s.start); i <= pos(endT); i++ {
				row[i] = mark
			}
		}
		if r.halted {
			row[pos(r.exhaust)] = '#'
		}
		fmt.Fprintf(&b, "%-*s %s\n", labelW, l, string(row))
	}
	fmt.Fprintf(&b, "%-*s %-*.4g%*.4g\n", labelW, "", width/2, 0.0, width-width/2, end)
	b.WriteString("digits = executing at P-state; '!' = span missed deadline; '.' = idle")
	if r.faults > 0 {
		b.WriteString("; 'x' = killed by fault; '~' = core down")
	}
	if r.halted {
		b.WriteString("; '#' = energy exhausted")
	}
	b.WriteByte('\n')
	return b.String()
}

// InSystemSeries returns (times, counts): the number of tasks in the
// system (mapped, not finished) after each change point. Useful for
// plotting the burst backlog.
func (r *EventLog) InSystemSeries() (times []float64, counts []int) {
	n := 0
	for i := range r.Events {
		e := &r.Events[i]
		switch e.Kind {
		case KindMapped:
			n++
		case KindFinished:
			n--
		default:
			continue
		}
		times = append(times, e.Time)
		counts = append(counts, n)
	}
	return times, counts
}

// PStateOccupancy returns, per P-state, the total core-time spent
// executing tasks in that state — the run's DVFS usage profile.
func (r *EventLog) PStateOccupancy() [cluster.NumPStates]float64 {
	var occ [cluster.NumPStates]float64
	for _, ss := range r.spans {
		for _, s := range ss {
			endT := s.end
			if s.open {
				endT = r.lastTime
			}
			occ[s.pstate] += endT - s.start
		}
	}
	return occ
}

// Summary renders headline counts of the recorded run.
func (r *EventLog) Summary() string {
	var mapped, discarded, finished, missed int
	for i := range r.Events {
		switch r.Events[i].Kind {
		case KindMapped:
			mapped++
		case KindDiscarded:
			discarded++
		case KindFinished:
			finished++
			if r.Events[i].OnTime != nil && !*r.Events[i].OnTime {
				missed++
			}
		}
	}
	s := fmt.Sprintf("trace: %d events; mapped %d, discarded %d, finished %d (%d late)",
		len(r.Events), mapped, discarded, finished, missed)
	if r.faults > 0 {
		var killed, requeued int
		for i := range r.Events {
			switch r.Events[i].Kind {
			case KindKilled:
				killed++
			case KindRequeue:
				requeued++
			}
		}
		s += fmt.Sprintf("; faults %d (killed %d, requeued %d)", r.faults, killed, requeued)
	}
	if r.brownout > 0 {
		s += fmt.Sprintf("; brownout stage %d reached", r.brownout)
	}
	if r.halted {
		s += fmt.Sprintf("; energy exhausted at t=%.1f", r.exhaust)
	}
	return s + "\n"
}
