package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Flight recorder: a versioned, replayable per-task trace of one run.
//
// The event log in this package (EventLog) is a human-facing timeline for
// figures; the flight trace is the machine-facing counterpart. It captures,
// per task, everything the scheduler knew at decision time (admission
// verdict, chosen core and P-state, predicted ρ and completion-time
// quantiles, expected energy) alongside what actually happened (start,
// finish, outcome, realized energy, fault retries), plus the run's summary
// and metric snapshot. A recorded trace is sufficient to re-drive the
// simulator byte-for-byte — see internal/experiment.ReplayTrace and
// cmd/ecreplay — and to calibrate the predictor against reality (Calibrate).
//
// The on-disk format is line-oriented JSON: one envelope object per line,
// each carrying exactly one of header (h), row (r), event (e), summary (s),
// or metrics snapshot (m). The header is always the first line; decoding
// rejects files that do not start with a FlightFormat header, and tolerates
// a torn final line (a crash mid-append) the same way the experiment
// journal does.

// FlightFormat is the format tag of the current flight-trace version.
// Bump the suffix when the envelope or row schema changes incompatibly.
const FlightFormat = "ecflight/v1"

// Trace kinds.
const (
	// KindSim marks a batch-simulator run (replayable).
	KindSim = "sim"
	// KindServe marks an online-server run (calibration input; the replay
	// gate targets the simulator engines).
	KindServe = "serve"
)

// Header identifies a flight trace: what produced it, from which model,
// and with which knobs. Spec and Knobs are opaque here (the trace package
// sits below the experiment layer); internal/experiment defines their
// concrete shapes and uses them to rebuild the run for replay.
type Header struct {
	// Format is FlightFormat; decoding rejects other values.
	Format string `json:"format"`
	// Kind is KindSim or KindServe.
	Kind string `json:"kind"`
	// ModelHash fingerprints the workload model (workload.Model.Hash);
	// replay refuses to drive a rebuilt model with a different hash.
	ModelHash string `json:"modelHash"`
	// Seed and Trial locate the run in the experiment's stream tree: the
	// decision stream is NewStream(Seed).ChildN("decisions", Trial).
	Seed  uint64 `json:"seed"`
	Trial int    `json:"trial"`
	// Policy names the mapper (immediate mode) or pull policy (central
	// queue) that made the recorded decisions.
	Policy string `json:"policy"`
	// Budget is ζ_max; -1 encodes an unconstrained run (math.Inf does not
	// survive JSON).
	Budget float64 `json:"budget"`
	// Spec is the serialized experiment.Spec that built the model (sim
	// traces; empty for serve traces).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Knobs is the serialized engine configuration beyond the spec —
	// filter variant, central-queue flag, fault and brownout settings
	// (experiment.FlightConfig).
	Knobs json.RawMessage `json:"knobs,omitempty"`
}

// Row is the per-task record: identity, decision audit, prediction, and
// realized outcome. Unset numeric fields hold -1 sentinels so that "never
// decided" and "never ran" are distinguishable from real zeros.
type Row struct {
	ID       int     `json:"id"`
	Type     int     `json:"type"`
	Arrival  float64 `json:"arr"`
	Deadline float64 `json:"dl"`
	// U is the execution-time quantile draw that fixes the task's actual
	// duration; replay feeds it back so realized times match exactly.
	U        float64 `json:"u"`
	Priority float64 `json:"pri,omitempty"`
	// Tenant and SLO identify the submitting tenant in multi-tenant serving
	// mode. Both omitempty: single-tenant traces stay byte-identical to the
	// pre-tenancy format.
	Tenant string `json:"tn,omitempty"`
	SLO    string `json:"slo,omitempty"`

	// Verdict is the admission outcome: "mapped", "discarded" (filters
	// emptied the feasible set), or "shed" (server-side admission refusal);
	// empty if the task never reached the scheduler (run halted first).
	Verdict string `json:"verdict,omitempty"`
	// Shed carries the shed or failure reason, when any.
	Shed string `json:"shed,omitempty"`

	// Chosen assignment (last decision wins when a fault retry remaps).
	Node    int    `json:"node"`
	CoreIdx int    `json:"core"`
	PState  int    `json:"pstate"`
	Core    string `json:"coreId,omitempty"`
	// EEC is the expected energy charge the heuristic booked.
	EEC float64 `json:"eec,omitempty"`

	// Prediction at decision time: ρ = P(complete by deadline) and the
	// mean/median/p99 of the predicted completion-time distribution.
	PredRho  float64 `json:"rho"`
	PredMean float64 `json:"pmean,omitempty"`
	PredP50  float64 `json:"p50,omitempty"`
	PredP99  float64 `json:"p99,omitempty"`

	// Realized execution and energy.
	Start   float64 `json:"start"`
	Finish  float64 `json:"finish"`
	Outcome string  `json:"outcome,omitempty"`
	// Energy is the task's realized draw at table power: active duration ×
	// μ(node,π)/η. Under PowerCV the meter draws stochastic power, so this
	// is the planned-power share, not the metered joules.
	Energy   float64 `json:"energy,omitempty"`
	Requeues int     `json:"requeues,omitempty"`
	Killed   int     `json:"killed,omitempty"`
}

// Ev is a non-task event worth keeping in the flight trace: faults,
// repairs, kills, requeues, brownout stage changes, sheds, and the energy
// halt. High-volume streams (per-sample energy, P-state transitions) are
// deliberately not recorded.
type Ev struct {
	T    float64 `json:"t"`
	Kind string  `json:"kind"`
	Core string  `json:"core,omitempty"`
	Task int     `json:"task"`
	N    int     `json:"n,omitempty"`
	X    float64 `json:"x,omitempty"`
}

// Event kinds.
const (
	EvCoreFailed   = "core-failed"
	EvCoreRepaired = "core-repaired"
	EvTaskKilled   = "task-killed"
	EvTaskRequeued = "task-requeued"
	EvBrownout     = "brownout"
	EvShed         = "shed"
	EvExhausted    = "energy-exhausted"
)

// Summary mirrors the numeric fields of sim.Result that the replay gate
// compares bit-for-bit.
type Summary struct {
	Window             int     `json:"window"`
	OnTime             int     `json:"onTime"`
	Missed             int     `json:"missed"`
	Late               int     `json:"late"`
	Discarded          int     `json:"discarded"`
	Cancelled          int     `json:"cancelled,omitempty"`
	Unfinished         int     `json:"unfinished"`
	Mapped             int     `json:"mapped"`
	EnergyConsumed     float64 `json:"energyConsumed"`
	EnergyExhausted    bool    `json:"energyExhausted,omitempty"`
	ExhaustedAt        float64 `json:"exhaustedAt,omitempty"`
	EnergyEstimateLeft float64 `json:"energyEstimateLeft"`
	Makespan           float64 `json:"makespan"`
	Faults             int     `json:"faults,omitempty"`
	TasksKilled        int     `json:"tasksKilled,omitempty"`
	Retries            int     `json:"retries,omitempty"`
	LostToFailure      int     `json:"lostToFailure,omitempty"`
	BrownoutStage      int     `json:"brownoutStage,omitempty"`
}

// SummaryOf extracts the compared subset of a sim.Result.
func SummaryOf(r *sim.Result) Summary {
	return Summary{
		Window:             r.Window,
		OnTime:             r.OnTime,
		Missed:             r.Missed,
		Late:               r.Late,
		Discarded:          r.Discarded,
		Cancelled:          r.Cancelled,
		Unfinished:         r.Unfinished,
		Mapped:             r.Mapped,
		EnergyConsumed:     r.EnergyConsumed,
		EnergyExhausted:    r.EnergyExhausted,
		ExhaustedAt:        r.ExhaustedAt,
		EnergyEstimateLeft: r.EnergyEstimateLeft,
		Makespan:           r.Makespan,
		Faults:             r.Faults,
		TasksKilled:        r.TasksKilled,
		Retries:            r.Retries,
		LostToFailure:      r.LostToFailure,
		BrownoutStage:      r.BrownoutStage,
	}
}

// Trace is a fully-assembled flight trace.
type Trace struct {
	Header  Header
	Rows    []Row
	Events  []Ev
	Summary *Summary
	Metrics *metrics.Snapshot
}

// line is the JSONL envelope: exactly one field set per line.
type line struct {
	H *Header           `json:"h,omitempty"`
	R *Row              `json:"r,omitempty"`
	E *Ev               `json:"e,omitempty"`
	S *Summary          `json:"s,omitempty"`
	M *metrics.Snapshot `json:"m,omitempty"`
}

// Encode writes the trace in flight-trace format: header first, then
// events, rows, summary, and metrics snapshot.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(line{H: &t.Header}); err != nil {
		return err
	}
	for i := range t.Events {
		if err := enc.Encode(line{E: &t.Events[i]}); err != nil {
			return err
		}
	}
	for i := range t.Rows {
		if err := enc.Encode(line{R: &t.Rows[i]}); err != nil {
			return err
		}
	}
	if t.Summary != nil {
		if err := enc.Encode(line{S: t.Summary}); err != nil {
			return err
		}
	}
	if t.Metrics != nil {
		if err := enc.Encode(line{M: t.Metrics}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a flight trace. The first line must be a FlightFormat
// header. A torn final line — a crash or truncation mid-append — is
// tolerated, mirroring the experiment journal's loader; corruption
// anywhere else is an error. The scanning and torn-tail rules live in the
// shared envelope codec (LineDecoder), which the server's write-ahead log
// uses too.
func Decode(r io.Reader) (*Trace, error) {
	dec := NewLineDecoder(r)
	t := &Trace{}
	first := true
	for {
		var ln line
		ok, err := dec.Next(&ln)
		if err != nil {
			if first {
				return nil, fmt.Errorf("trace: not a flight trace: %v", err)
			}
			return nil, fmt.Errorf("trace: %v", err)
		}
		if !ok {
			if first && dec.Torn() {
				return nil, fmt.Errorf("trace: not a flight trace: torn first line")
			}
			break // EOF, or a torn tail: keep everything before it
		}
		if first {
			if ln.H == nil {
				return nil, fmt.Errorf("trace: first line is not a header")
			}
			if ln.H.Format != FlightFormat {
				return nil, fmt.Errorf("trace: format %q, want %q", ln.H.Format, FlightFormat)
			}
			t.Header = *ln.H
			first = false
			continue
		}
		switch {
		case ln.H != nil:
			return nil, fmt.Errorf("trace: duplicate header")
		case ln.R != nil:
			t.Rows = append(t.Rows, *ln.R)
		case ln.E != nil:
			t.Events = append(t.Events, *ln.E)
		case ln.S != nil:
			t.Summary = ln.S
		case ln.M != nil:
			t.Metrics = ln.M
		}
	}
	if first {
		return nil, fmt.Errorf("trace: empty file")
	}
	return t, nil
}

// DecodeBytes decodes an in-memory flight trace (fuzz and test entry).
func DecodeBytes(b []byte) (*Trace, error) {
	return Decode(bytes.NewReader(b))
}

// Diff compares two traces field-for-field and returns human-readable
// mismatch descriptions (nil means bit-identical in every compared field).
// At most limit mismatches are reported; limit <= 0 means all.
func Diff(a, b *Trace, limit int) []string {
	var out []string
	add := func(format string, args ...any) bool {
		out = append(out, fmt.Sprintf(format, args...))
		return limit > 0 && len(out) >= limit
	}
	if a.Header.ModelHash != b.Header.ModelHash {
		if add("header: modelHash %s vs %s", a.Header.ModelHash, b.Header.ModelHash) {
			return out
		}
	}
	if a.Header.Seed != b.Header.Seed || a.Header.Trial != b.Header.Trial {
		if add("header: stream (seed=%d,trial=%d) vs (seed=%d,trial=%d)",
			a.Header.Seed, a.Header.Trial, b.Header.Seed, b.Header.Trial) {
			return out
		}
	}
	if a.Header.Policy != b.Header.Policy {
		if add("header: policy %q vs %q", a.Header.Policy, b.Header.Policy) {
			return out
		}
	}
	if len(a.Rows) != len(b.Rows) {
		if add("rows: %d vs %d", len(a.Rows), len(b.Rows)) {
			return out
		}
	}
	n := min(len(a.Rows), len(b.Rows))
	for i := 0; i < n; i++ {
		ja, _ := json.Marshal(a.Rows[i])
		jb, _ := json.Marshal(b.Rows[i])
		if string(ja) != string(jb) {
			if add("row %d: %s vs %s", a.Rows[i].ID, ja, jb) {
				return out
			}
		}
	}
	if len(a.Events) != len(b.Events) {
		if add("events: %d vs %d", len(a.Events), len(b.Events)) {
			return out
		}
	}
	ne := min(len(a.Events), len(b.Events))
	for i := 0; i < ne; i++ {
		ja, _ := json.Marshal(a.Events[i])
		jb, _ := json.Marshal(b.Events[i])
		if string(ja) != string(jb) {
			if add("event %d: %s vs %s", i, ja, jb) {
				return out
			}
		}
	}
	switch {
	case (a.Summary == nil) != (b.Summary == nil):
		add("summary: present=%v vs present=%v", a.Summary != nil, b.Summary != nil)
	case a.Summary != nil:
		ja, _ := json.Marshal(a.Summary)
		jb, _ := json.Marshal(b.Summary)
		if string(ja) != string(jb) {
			if add("summary: %s vs %s", ja, jb) {
				return out
			}
		}
	}
	switch {
	case (a.Metrics == nil) != (b.Metrics == nil):
		add("metrics: present=%v vs present=%v", a.Metrics != nil, b.Metrics != nil)
	case a.Metrics != nil && !a.Metrics.Equal(b.Metrics):
		add("metrics: snapshots differ")
	}
	return out
}

// Flight observes one run and assembles its flight trace. It implements
// the simulator's Observer plus the Decision/Fault/Brownout extensions and
// the server's shed callback; attach it (alone or via sim.Multi) as the
// run's Observer. Events stream to the Recorder as they happen; rows are
// stateful (a fault retry overwrites the decision audit) and flush on
// Finish. Not safe for concurrent use — like every observer, it rides the
// single engine goroutine.
type Flight struct {
	model *workload.Model
	hdr   Header
	rec   Recorder

	rows   map[int]*Row
	order  []int
	events []Ev
	// spans tracks what each core is actively executing, for realized
	// per-task energy: flat core index → (task, start, power draw).
	spans map[int]flightSpan
}

type flightSpan struct {
	task  int
	start float64
	power float64 // μ(node,π)/η, the planned draw
}

var (
	_ sim.Observer         = (*Flight)(nil)
	_ sim.DecisionObserver = (*Flight)(nil)
	_ sim.FaultObserver    = (*Flight)(nil)
	_ sim.BrownoutObserver = (*Flight)(nil)
)

// NewFlight builds a flight recorder for one run of the given model. rec
// may be nil (assemble in memory only); a non-nil recorder receives the
// header immediately and events as they occur.
func NewFlight(model *workload.Model, hdr Header, rec Recorder) *Flight {
	hdr.Format = FlightFormat
	if rec == nil {
		rec = Nop{}
	}
	f := &Flight{
		model: model,
		hdr:   hdr,
		rec:   rec,
		rows:  make(map[int]*Row),
		spans: make(map[int]flightSpan),
	}
	rec.Begin(&f.hdr)
	return f
}

// Header returns the trace header (with Format filled in).
func (f *Flight) Header() Header { return f.hdr }

// SetTasks pre-seeds one row per trial task so that tasks that never reach
// the scheduler (the run halts on energy exhaustion first) still appear in
// the trace, as Outcome "unfinished". Batch runs call this before the run;
// the online server, whose task set is open-ended, does not.
func (f *Flight) SetTasks(tasks []workload.Task) {
	for i := range tasks {
		r := f.row(tasks[i])
		r.Outcome = sim.OutcomeUnfinished.String()
	}
}

// row returns the task's row, creating and seeding it on first touch.
func (f *Flight) row(task workload.Task) *Row {
	if r, ok := f.rows[task.ID]; ok {
		return r
	}
	r := &Row{
		ID:       task.ID,
		Type:     task.Type,
		Arrival:  task.Arrival,
		Deadline: task.Deadline,
		U:        task.U,
		Node:     -1,
		CoreIdx:  -1,
		PState:   -1,
		PredRho:  -1,
		Start:    -1,
		Finish:   -1,
	}
	if task.Priority != 1 {
		r.Priority = task.Priority
	}
	if task.Tenant != "" {
		r.Tenant = task.Tenant
		r.SLO = task.Class.String()
	}
	f.rows[task.ID] = r
	f.order = append(f.order, task.ID)
	return r
}

func (f *Flight) event(e Ev) {
	f.events = append(f.events, e)
	f.rec.Event(&e)
}

// TaskDecision audits an admission decision (first mapping or fault
// retry): the chosen assignment, its expected energy charge, and the
// prediction the scheduler committed to. A retry overwrites the previous
// audit — the last decision is the one the realized outcome answers to.
func (f *Flight) TaskDecision(t float64, task workload.Task, a sched.Assignment, pred sched.Prediction, eec float64) {
	r := f.row(task)
	r.Verdict = "mapped"
	r.Node = a.Core.Node
	r.CoreIdx = a.CoreIdx
	r.PState = int(a.PState)
	r.Core = a.Core.String()
	r.EEC = eec
	r.PredRho = pred.Rho
	r.PredMean = pred.Mean
	r.PredP50 = pred.P50
	r.PredP99 = pred.P99
}

// TaskMapped implements sim.Observer.
func (f *Flight) TaskMapped(t float64, task workload.Task, a sched.Assignment) {
	r := f.row(task)
	if r.Verdict == "" {
		// No decision audit fired (engine without a DecisionObserver hook);
		// keep at least the assignment.
		r.Verdict = "mapped"
		r.Node = a.Core.Node
		r.CoreIdx = a.CoreIdx
		r.PState = int(a.PState)
		r.Core = a.Core.String()
	}
}

// TaskDiscarded implements sim.Observer: filters emptied the feasible set.
func (f *Flight) TaskDiscarded(t float64, task workload.Task) {
	r := f.row(task)
	r.Verdict = "discarded"
	r.Outcome = sim.OutcomeDiscarded.String()
}

// TaskShed records a server-side refusal. Before any mapping it is an
// admission shed; after a mapping it is the fail path (fault loss, halt,
// or drain timeout) and the row keeps its decision audit.
func (f *Flight) TaskShed(t float64, task workload.Task, reason string) {
	r := f.row(task)
	r.Shed = reason
	if r.Verdict == "mapped" {
		r.Outcome = sim.OutcomeFailed.String()
	} else {
		r.Verdict = "shed"
	}
	f.event(Ev{T: t, Kind: EvShed, Task: task.ID})
}

// TaskStarted implements sim.Observer and opens the core's active span.
func (f *Flight) TaskStarted(t float64, task workload.Task, a sched.Assignment) {
	r := f.row(task)
	if r.Start < 0 {
		r.Start = t
	}
	node := f.model.Cluster.Node(a.Core)
	f.spans[a.CoreIdx] = flightSpan{task: task.ID, start: t, power: node.Power[a.PState] / node.Efficiency}
}

// closeSpan accrues the active span's energy onto its task's row.
func (f *Flight) closeSpan(coreIdx int, taskID int, t float64) {
	sp, ok := f.spans[coreIdx]
	if !ok || sp.task != taskID {
		return
	}
	delete(f.spans, coreIdx)
	if r, ok := f.rows[taskID]; ok {
		r.Energy += (t - sp.start) * sp.power
	}
}

// TaskFinished implements sim.Observer: closes the span and records the
// realized outcome.
func (f *Flight) TaskFinished(t float64, task workload.Task, a sched.Assignment, onTime bool) {
	f.closeSpan(a.CoreIdx, task.ID, t)
	r := f.row(task)
	r.Finish = t
	if onTime {
		r.Outcome = sim.OutcomeOnTime.String()
	} else {
		r.Outcome = sim.OutcomeLate.String()
	}
}

// PStateChanged implements sim.Observer; transitions are not recorded
// (volume) — per-task draw is fixed at start in this engine.
func (f *Flight) PStateChanged(t float64, core cluster.CoreID, ps cluster.PState) {}

// EnergyExhausted implements sim.Observer.
func (f *Flight) EnergyExhausted(t float64) {
	f.event(Ev{T: t, Kind: EvExhausted, Task: -1})
}

// CoreFailed implements sim.FaultObserver.
func (f *Flight) CoreFailed(t float64, core cluster.CoreID, kind fault.Kind, repair float64) {
	f.event(Ev{T: t, Kind: EvCoreFailed, Core: core.String(), Task: -1, N: int(kind), X: repair})
}

// CoreRepaired implements sim.FaultObserver.
func (f *Flight) CoreRepaired(t float64, core cluster.CoreID) {
	f.event(Ev{T: t, Kind: EvCoreRepaired, Core: core.String(), Task: -1})
}

// TaskKilled implements sim.FaultObserver: a fault stranded the task. A
// running task's partial span is charged to it.
func (f *Flight) TaskKilled(t float64, task workload.Task, core cluster.CoreID) {
	r := f.row(task)
	r.Killed++
	f.closeSpan(f.model.Cluster.CoreIndex(core), task.ID, t)
	f.event(Ev{T: t, Kind: EvTaskKilled, Core: core.String(), Task: task.ID})
}

// TaskRequeued implements sim.FaultObserver.
func (f *Flight) TaskRequeued(t float64, task workload.Task, attempt int) {
	r := f.row(task)
	r.Requeues = attempt
	f.event(Ev{T: t, Kind: EvTaskRequeued, Task: task.ID, N: attempt})
}

// BrownoutStageChanged implements sim.BrownoutObserver.
func (f *Flight) BrownoutStageChanged(t float64, stage int, frac float64) {
	f.event(Ev{T: t, Kind: EvBrownout, Task: -1, N: stage, X: frac})
}

// Finish assembles the trace, flushes rows and the tail (summary, metric
// snapshot) to the recorder, and returns the in-memory trace. Call once,
// after the run; the recorder must still be Closed by its owner.
func (f *Flight) Finish(s Summary, m *metrics.Snapshot) *Trace {
	// Deterministic row order: by task ID. First-touch order is already
	// deterministic on the single engine goroutine, but ID order makes the
	// file diffable regardless of how the run interleaved.
	sort.Ints(f.order)
	rows := make([]Row, 0, len(f.order))
	for _, id := range f.order {
		rows = append(rows, *f.rows[id])
	}
	t := &Trace{Header: f.hdr, Rows: rows, Events: f.events, Summary: &s, Metrics: m}
	for i := range t.Rows {
		f.rec.Row(&t.Rows[i])
	}
	f.rec.End(&s, m)
	return t
}
