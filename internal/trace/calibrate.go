package trace

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Calibration: the observe→predict→calibrate loop closed over a flight
// trace. At decision time the scheduler committed to a prediction per task
// — ρ = P(on time) and completion-time quantiles. The trace records what
// then actually happened, so we can ask the only question that matters
// about a probabilistic filter: when the mapper said "ρ = 0.8", did 80% of
// those tasks make their deadlines?
//
// Two views are computed:
//
//   - A reliability diagram: tasks bucketed by predicted ρ, each bucket's
//     mean prediction against its observed on-time rate. Their
//     sample-weighted absolute gap is the expected calibration error (ECE).
//   - Per-(type, P-state, regime) groups: mean predicted ρ vs observed
//     on-time rate, plus quantile coverage — the fraction of observed
//     finishes at or before the predicted p50/p99 (ideal: 0.50/0.99).
//
// Only tasks that ran to completion (on time or late) enter: a task that
// was discarded, shed, lost to a fault, or left unfinished by the energy
// halt never tested its prediction. Groups with fewer than two such tasks
// are kept in the table but annotated rather than scored — one sample
// cannot distinguish a calibrated predictor from a coin.

// CalBuckets is the reliability-diagram resolution.
const CalBuckets = 10

// CalBucket is one predicted-ρ bin of the reliability diagram.
type CalBucket struct {
	// Lo, Hi bound the bin: predictions in [Lo, Hi).
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// N is the number of completed tasks whose prediction fell in the bin.
	N int `json:"n"`
	// MeanPred is the mean predicted ρ in the bin.
	MeanPred float64 `json:"meanPred"`
	// Observed is the on-time fraction among them.
	Observed float64 `json:"observed"`
}

// CalGroup scores one (task type, P-state, load regime) cell.
type CalGroup struct {
	Type   int    `json:"type"`
	PState string `json:"pstate"`
	// Regime is "burst", "lull", or "all" when the trace carries no
	// burst-window structure to split on.
	Regime string `json:"regime"`
	// N is the number of completed tasks in the cell.
	N int `json:"n"`
	// MeanPredRho vs Observed is the cell's calibration gap.
	MeanPredRho float64 `json:"meanPredRho"`
	Observed    float64 `json:"observed"`
	Gap         float64 `json:"gap"`
	// P50Cov / P99Cov are quantile coverages: fraction of finishes at or
	// before the predicted quantile (ideal 0.50 / 0.99).
	P50Cov float64 `json:"p50cov"`
	P99Cov float64 `json:"p99cov"`
	// Note is set instead of the scores when the cell has too few samples.
	Note string `json:"note,omitempty"`
}

// Calibration is the full observe→predict→calibrate report for a trace.
type Calibration struct {
	// Tasks is the number of completed, audited tasks scored.
	Tasks int `json:"tasks"`
	// Skipped counts rows excluded (no decision audit, or no completion).
	Skipped int `json:"skipped"`
	// Buckets is the reliability diagram; empty bins are omitted.
	Buckets []CalBucket `json:"buckets"`
	// ECE is the expected calibration error: Σ (n_b/N)·|observed_b −
	// meanPred_b| over the buckets.
	ECE float64 `json:"ece"`
	// Groups are the per-(type, P-state, regime) cells, sorted.
	Groups []CalGroup `json:"groups"`
	// P50Coverage / P99Coverage are the overall quantile coverages.
	P50Coverage float64 `json:"p50Coverage"`
	P99Coverage float64 `json:"p99Coverage"`
}

// calSample is one completed task's prediction/outcome pair.
type calSample struct {
	pred   float64
	onTime bool
	p50Hit bool
	p99Hit bool
}

// insufficientNote renders a stats error for the calibration table;
// the typed InsufficientDataError becomes the short annotation.
func insufficientNote(err error) string {
	var ide *stats.InsufficientDataError
	if errors.As(err, &ide) {
		return "insufficient data"
	}
	if err != nil {
		return err.Error()
	}
	return ""
}

// scoreCell computes a cell's mean prediction and observed rate, or the
// typed insufficient-data error when fewer than two samples back it.
func scoreCell(ss []calSample) (meanPred, observed float64, err error) {
	if len(ss) < 2 {
		return 0, 0, &stats.InsufficientDataError{Op: "calibration cell", N: len(ss), Need: 2}
	}
	var hits int
	for _, s := range ss {
		meanPred += s.pred
		if s.onTime {
			hits++
		}
	}
	return meanPred / float64(len(ss)), float64(hits) / float64(len(ss)), nil
}

// Calibrate scores a trace's predictions against its outcomes. burstLen is
// the workload's burst length in tasks (tasks with ID < burstLen or ID ≥
// window−burstLen belong to the arrival bursts); pass 0 when unknown and
// every task lands in regime "all". CalibrateRows is the multi-trial form.
func Calibrate(t *Trace, burstLen int) (*Calibration, error) {
	return CalibrateRows(t.Rows, burstLen)
}

// CalibrateRows scores a row set (possibly concatenated across trials).
func CalibrateRows(rows []Row, burstLen int) (*Calibration, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: no rows to calibrate")
	}
	window := 0
	for i := range rows {
		if rows[i].ID+1 > window {
			window = rows[i].ID + 1
		}
	}
	regimeOf := func(id int) string {
		if burstLen <= 0 || 2*burstLen >= window {
			return "all"
		}
		if id < burstLen || id >= window-burstLen {
			return "burst"
		}
		return "lull"
	}

	cal := &Calibration{}
	var all []calSample
	cells := map[[3]string][]calSample{}
	onTimeStr, lateStr := sim.OutcomeOnTime.String(), sim.OutcomeLate.String()
	for i := range rows {
		r := &rows[i]
		completed := r.Outcome == onTimeStr || r.Outcome == lateStr
		if !completed || r.Verdict != "mapped" || r.PredRho < 0 || r.Finish < 0 {
			cal.Skipped++
			continue
		}
		s := calSample{
			pred:   clamp01(r.PredRho),
			onTime: r.Outcome == onTimeStr,
			p50Hit: r.Finish <= r.PredP50,
			p99Hit: r.Finish <= r.PredP99,
		}
		all = append(all, s)
		key := [3]string{fmt.Sprintf("%03d", r.Type), fmt.Sprintf("P%d", r.PState), regimeOf(r.ID)}
		cells[key] = append(cells[key], s)
	}
	cal.Tasks = len(all)
	if len(all) == 0 {
		return nil, fmt.Errorf("trace: no completed, audited tasks to calibrate (%d rows skipped)", cal.Skipped)
	}

	// Reliability diagram + ECE.
	type acc struct {
		n    int
		pred float64
		hits int
	}
	bins := make([]acc, CalBuckets)
	var p50, p99 int
	for _, s := range all {
		b := int(s.pred * CalBuckets)
		if b >= CalBuckets {
			b = CalBuckets - 1
		}
		bins[b].n++
		bins[b].pred += s.pred
		if s.onTime {
			bins[b].hits++
		}
		if s.p50Hit {
			p50++
		}
		if s.p99Hit {
			p99++
		}
	}
	for b, a := range bins {
		if a.n == 0 {
			continue
		}
		mean := a.pred / float64(a.n)
		obs := float64(a.hits) / float64(a.n)
		cal.Buckets = append(cal.Buckets, CalBucket{
			Lo: float64(b) / CalBuckets, Hi: float64(b+1) / CalBuckets,
			N: a.n, MeanPred: mean, Observed: obs,
		})
		cal.ECE += float64(a.n) / float64(len(all)) * abs(obs-mean)
	}
	cal.P50Coverage = float64(p50) / float64(len(all))
	cal.P99Coverage = float64(p99) / float64(len(all))

	// Per-(type, P-state, regime) cells.
	keys := make([][3]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		if keys[i][1] != keys[j][1] {
			return keys[i][1] < keys[j][1]
		}
		return keys[i][2] < keys[j][2]
	})
	for _, k := range keys {
		ss := cells[k]
		var typ, ps int
		fmt.Sscanf(k[0], "%d", &typ)
		fmt.Sscanf(k[1], "P%d", &ps)
		g := CalGroup{Type: typ, PState: fmt.Sprintf("P%d", ps), Regime: k[2], N: len(ss)}
		meanPred, observed, err := scoreCell(ss)
		if err != nil {
			g.Note = insufficientNote(err)
		} else {
			g.MeanPredRho = meanPred
			g.Observed = observed
			g.Gap = observed - meanPred
			var h50, h99 int
			for _, s := range ss {
				if s.p50Hit {
					h50++
				}
				if s.p99Hit {
					h99++
				}
			}
			g.P50Cov = float64(h50) / float64(len(ss))
			g.P99Cov = float64(h99) / float64(len(ss))
		}
		cal.Groups = append(cal.Groups, g)
	}
	return cal, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
