package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Shared JSONL envelope codec: the on-disk discipline introduced by the
// flight recorder (ecflight/v1) and reused by the server's write-ahead
// admission log (ecwal/v1). One JSON object per line, a header as the first
// line, a 16MB line cap, and exactly one tolerated failure mode — a torn
// final line, the signature of a crash mid-append. Corruption anywhere
// before the final line is a damaged file and an error.

// MaxLine is the shared line cap. A single envelope line larger than this
// is treated as corruption, not data.
const MaxLine = 16 * 1024 * 1024

// rawLine is one scanned line with its provenance, for torn-tail reporting.
type rawLine struct {
	b      []byte
	line   int
	offset int64
}

// LineDecoder streams a header-first JSONL file line by line with the
// envelope discipline above. Use Next to decode successive lines; after it
// returns false, Torn reports whether the file ended in a torn final line
// (and TornAt says where), which callers may log but must tolerate.
type LineDecoder struct {
	sc       *bufio.Scanner
	queued   *rawLine
	line     int
	off      int64
	torn     bool
	tornLine int
	tornOff  int64
	err      error
}

// NewLineDecoder wraps r with the shared scanner configuration.
func NewLineDecoder(r io.Reader) *LineDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLine)
	return &LineDecoder{sc: sc}
}

// read returns the next non-empty line, serving a queued lookahead first.
// Offsets assume \n line endings, which every writer of these files uses.
func (d *LineDecoder) read() *rawLine {
	if q := d.queued; q != nil {
		d.queued = nil
		return q
	}
	for d.sc.Scan() {
		raw := d.sc.Bytes()
		off := d.off
		d.line++
		d.off += int64(len(raw)) + 1
		if len(raw) == 0 {
			continue
		}
		// Copy: the scanner reuses its buffer, and a lookahead line must
		// survive the next Scan.
		b := make([]byte, len(raw))
		copy(b, raw)
		return &rawLine{b: b, line: d.line, offset: off}
	}
	return nil
}

// Next decodes the next line into v and returns true, or returns false at
// end of input — either genuine EOF or a torn final line (check Torn). A
// line that fails to decode with at least one line after it is mid-file
// corruption and returns an error, as does an underlying read failure.
func (d *LineDecoder) Next(v any) (bool, error) {
	if d.err != nil {
		return false, d.err
	}
	ln := d.read()
	if ln == nil {
		if err := d.sc.Err(); err != nil {
			d.err = fmt.Errorf("read: %w", err)
			return false, d.err
		}
		return false, nil
	}
	if err := json.Unmarshal(ln.b, v); err != nil {
		if d.queued = d.read(); d.queued == nil && d.sc.Err() == nil {
			d.torn, d.tornLine, d.tornOff = true, ln.line, ln.offset
			return false, nil
		}
		d.err = fmt.Errorf("corrupt line %d mid-file: %w", ln.line, err)
		return false, d.err
	}
	return true, nil
}

// Torn reports whether decoding stopped at a torn final line.
func (d *LineDecoder) Torn() bool { return d.torn }

// TornAt returns the 1-based line number and byte offset of the torn final
// line; both are zero when the file was not torn.
func (d *LineDecoder) TornAt() (line int, offset int64) { return d.tornLine, d.tornOff }

// Lines returns how many non-empty lines have been successfully decoded or
// skipped so far (the torn line, if any, is not counted).
func (d *LineDecoder) Lines() int {
	n := d.line
	if d.queued != nil {
		n--
	}
	if d.torn {
		n--
	}
	return n
}
