package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/randx"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func recordRun(t *testing.T, budgetScale float64) (*EventLog, *sim.Result) {
	t.Helper()
	s := randx.NewStream(4)
	c, err := cluster.Generate(s.Child("cluster"), cluster.PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	p := workload.PaperParams()
	p.TaskTypes = 8
	p.WindowSize = 60
	p.BurstLen = 12
	p.PMFSamples = 300
	m, err := workload.BuildModel(s.Child("wl"), c, p)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.GenerateTrial(randx.NewStream(5), m)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewEventLog()
	budget := math.Inf(1)
	if budgetScale > 0 {
		budget = budgetScale * m.DefaultEnergyBudget()
	}
	cfg := sim.Config{
		Model:        m,
		Mapper:       &sched.Mapper{Heuristic: sched.MinExpectedCompletionTime{}},
		EnergyBudget: budget,
		Observer:     rec,
	}
	res, err := sim.Run(cfg, tr, randx.NewStream(5).Child("d"))
	if err != nil {
		t.Fatal(err)
	}
	return rec, res
}

func TestRecorderEventCounts(t *testing.T) {
	rec, res := recordRun(t, 0)
	var mapped, started, finished, discarded int
	for _, e := range rec.Events {
		switch e.Kind {
		case KindMapped:
			mapped++
		case KindStarted:
			started++
		case KindFinished:
			finished++
		case KindDiscarded:
			discarded++
		}
	}
	if mapped != res.Mapped {
		t.Fatalf("mapped events %d, result %d", mapped, res.Mapped)
	}
	if discarded != res.Discarded {
		t.Fatalf("discarded events %d, result %d", discarded, res.Discarded)
	}
	if finished != res.OnTime+res.Late {
		t.Fatalf("finished events %d, result %d", finished, res.OnTime+res.Late)
	}
	if started != finished {
		t.Fatalf("unconstrained run: started %d != finished %d", started, finished)
	}
}

func TestRecorderEventsOrderedInTime(t *testing.T) {
	rec, _ := recordRun(t, 0)
	for i := 1; i < len(rec.Events); i++ {
		if rec.Events[i].Time < rec.Events[i-1].Time {
			t.Fatalf("event %d out of order: %v after %v", i, rec.Events[i].Time, rec.Events[i-1].Time)
		}
	}
	if rec.End() != rec.Events[len(rec.Events)-1].Time {
		t.Fatal("End() disagrees with last event")
	}
}

func TestRecorderOnTimeFlagsMatchResult(t *testing.T) {
	rec, res := recordRun(t, 0)
	late := 0
	for _, e := range rec.Events {
		if e.Kind == KindFinished && e.OnTime != nil && !*e.OnTime {
			late++
		}
	}
	if late != res.Late {
		t.Fatalf("late events %d, result %d", late, res.Late)
	}
}

func TestRecorderExhaustion(t *testing.T) {
	rec, res := recordRun(t, 0.05)
	if !res.EnergyExhausted {
		t.Skip("5% budget unexpectedly sufficient")
	}
	at, halted := rec.Halted()
	if !halted {
		t.Fatal("recorder missed exhaustion")
	}
	if math.Abs(at-res.ExhaustedAt) > 1e-9 {
		t.Fatalf("exhaustion at %v, result %v", at, res.ExhaustedAt)
	}
	last := rec.Events[len(rec.Events)-1]
	if last.Kind != KindExhausted {
		t.Fatalf("last event %v, want exhausted", last.Kind)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	rec, _ := recordRun(t, 0)
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != rec.Len() {
		t.Fatalf("%d JSONL lines for %d events", len(lines), rec.Len())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != rec.Events[0].Kind {
		t.Fatalf("decoded kind %q, want %q", e.Kind, rec.Events[0].Kind)
	}
}

func TestWriteCSV(t *testing.T) {
	rec, _ := recordRun(t, 0)
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != rec.Len()+1 {
		t.Fatalf("%d CSV lines for %d events + header", len(lines), rec.Len())
	}
	if !strings.HasPrefix(lines[0], "t,kind,") {
		t.Fatalf("header %q", lines[0])
	}
}

func TestTimeline(t *testing.T) {
	rec, _ := recordRun(t, 0)
	out := rec.Timeline(60)
	if !strings.Contains(out, "n0.") && !strings.Contains(out, "n1.") {
		t.Fatalf("timeline missing core labels:\n%s", out)
	}
	// Executing marks are P-state digits.
	if !strings.ContainsAny(out, "01234") {
		t.Fatalf("timeline has no execution spans:\n%s", out)
	}
	if !strings.Contains(out, "digits = executing") {
		t.Fatal("timeline missing legend")
	}
	empty := NewEventLog()
	if empty.Timeline(40) != "(empty trace)\n" {
		t.Fatal("empty timeline wrong")
	}
}

func TestTimelineMarksExhaustion(t *testing.T) {
	rec, res := recordRun(t, 0.05)
	if !res.EnergyExhausted {
		t.Skip("budget sufficient")
	}
	if !strings.Contains(rec.Timeline(60), "#") {
		t.Fatal("timeline missing exhaustion marker")
	}
}

func TestInSystemSeries(t *testing.T) {
	rec, _ := recordRun(t, 0)
	times, counts := rec.InSystemSeries()
	if len(times) != len(counts) || len(times) == 0 {
		t.Fatalf("series sizes %d/%d", len(times), len(counts))
	}
	for i, c := range counts {
		if c < 0 {
			t.Fatalf("negative in-system count at %d", i)
		}
		if i > 0 && times[i] < times[i-1] {
			t.Fatal("series times not monotone")
		}
	}
	if counts[len(counts)-1] != 0 {
		t.Fatalf("unconstrained run should drain to 0, ended at %d", counts[len(counts)-1])
	}
}

func TestPStateOccupancy(t *testing.T) {
	rec, res := recordRun(t, 0)
	occ := rec.PStateOccupancy()
	total := 0.0
	for _, v := range occ {
		if v < 0 {
			t.Fatalf("negative occupancy: %v", occ)
		}
		total += v
	}
	if total <= 0 {
		t.Fatal("no execution time recorded")
	}
	// Unfiltered MECT runs everything at P0.
	if occ[cluster.P0] < total*0.99 {
		t.Fatalf("MECT should occupy P0 almost exclusively: %v", occ)
	}
	_ = res
}

func TestSummary(t *testing.T) {
	rec, _ := recordRun(t, 0)
	s := rec.Summary()
	if !strings.Contains(s, "mapped") || !strings.Contains(s, "events") {
		t.Fatalf("summary %q", s)
	}
}

// recordFaultRun drives a run with aggressive stochastic transient faults,
// requeue recovery, and a staged brownout, so every fault-path marker has a
// chance to appear in the trace.
func recordFaultRun(t *testing.T) (*EventLog, *sim.Result) {
	t.Helper()
	s := randx.NewStream(4)
	c, err := cluster.Generate(s.Child("cluster"), cluster.PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	p := workload.PaperParams()
	p.TaskTypes = 8
	p.WindowSize = 60
	p.BurstLen = 12
	p.PMFSamples = 300
	m, err := workload.BuildModel(s.Child("wl"), c, p)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.GenerateTrial(randx.NewStream(5), m)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewEventLog()
	cfg := sim.Config{
		Model:        m,
		Mapper:       &sched.Mapper{Heuristic: sched.MinExpectedCompletionTime{}},
		EnergyBudget: 0.5 * m.DefaultEnergyBudget(),
		Observer:     rec,
		Faults: fault.Spec{
			Transient:  fault.Process{Enabled: true, MTBF: 0.4 * m.TAvg()},
			RepairTime: 0.3 * m.TAvg(),
			Recovery:   fault.Recovery{Mode: fault.Requeue, MaxRetries: 2, Backoff: 0.05 * m.TAvg()},
		},
		Brownout: energy.DefaultBrownoutStages(),
	}
	res, err := sim.Run(cfg, tr, randx.NewStream(5).Child("d"))
	if err != nil {
		t.Fatal(err)
	}
	return rec, res
}

func TestRecorderFaultEvents(t *testing.T) {
	rec, res := recordFaultRun(t)
	counts := map[Kind]int{}
	for _, e := range rec.Events {
		counts[e.Kind]++
	}
	if counts[KindFault] != res.Faults || counts[KindFault] == 0 {
		t.Fatalf("%d fault events for %d faults", counts[KindFault], res.Faults)
	}
	if counts[KindKilled] == 0 {
		t.Fatal("hammered run recorded no killed tasks")
	}
	if counts[KindRequeue] != res.Retries {
		t.Fatalf("%d requeue events for %d retries", counts[KindRequeue], res.Retries)
	}
	if counts[KindRepair] == 0 {
		t.Fatal("no repair events")
	}
	// Fault events carry the fault kind, requeues the attempt number.
	for _, e := range rec.Events {
		switch e.Kind {
		case KindFault:
			if e.Detail != "transient" {
				t.Fatalf("fault detail %q", e.Detail)
			}
		case KindRequeue:
			if !strings.Contains(e.Detail, "attempt") {
				t.Fatalf("requeue detail %q", e.Detail)
			}
		}
	}
}

func TestTimelineMarksFaults(t *testing.T) {
	rec, _ := recordFaultRun(t)
	out := rec.Timeline(80)
	if !strings.Contains(out, "~") {
		t.Fatalf("timeline missing down spans:\n%s", out)
	}
	if !strings.Contains(out, "x") {
		t.Fatalf("timeline missing killed marks:\n%s", out)
	}
	if !strings.Contains(out, "'x' = killed by fault") || !strings.Contains(out, "'~' = core down") {
		t.Fatalf("timeline legend missing fault markers:\n%s", out)
	}
}

func TestSummaryReportsFaultsAndBrownout(t *testing.T) {
	rec, res := recordFaultRun(t)
	s := rec.Summary()
	if !strings.Contains(s, fmt.Sprintf("faults %d", res.Faults)) {
		t.Fatalf("summary missing fault count: %q", s)
	}
	if !strings.Contains(s, "killed") || !strings.Contains(s, "requeued") {
		t.Fatalf("summary missing kill/requeue counts: %q", s)
	}
	if res.BrownoutStage > 0 && !strings.Contains(s, fmt.Sprintf("brownout stage %d", res.BrownoutStage)) {
		t.Fatalf("summary missing brownout stage %d: %q", res.BrownoutStage, s)
	}
}

func TestFaultEventsSerializeWithDetail(t *testing.T) {
	rec, _ := recordFaultRun(t)
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ",fault,") || !strings.Contains(buf.String(), "attempt") {
		t.Fatal("CSV missing fault rows or requeue detail")
	}
	buf.Reset()
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var sawDetail bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatal(err)
		}
		if e.Kind == KindFault && e.Detail == "transient" {
			sawDetail = true
		}
	}
	if !sawDetail {
		t.Fatal("JSONL lost the fault detail field")
	}
}
