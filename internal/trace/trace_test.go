package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/randx"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func recordRun(t *testing.T, budgetScale float64) (*Recorder, *sim.Result) {
	t.Helper()
	s := randx.NewStream(4)
	c, err := cluster.Generate(s.Child("cluster"), cluster.PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	p := workload.PaperParams()
	p.TaskTypes = 8
	p.WindowSize = 60
	p.BurstLen = 12
	p.PMFSamples = 300
	m, err := workload.BuildModel(s.Child("wl"), c, p)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.GenerateTrial(randx.NewStream(5), m)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	budget := math.Inf(1)
	if budgetScale > 0 {
		budget = budgetScale * m.DefaultEnergyBudget()
	}
	cfg := sim.Config{
		Model:        m,
		Mapper:       &sched.Mapper{Heuristic: sched.MinExpectedCompletionTime{}},
		EnergyBudget: budget,
		Observer:     rec,
	}
	res, err := sim.Run(cfg, tr, randx.NewStream(5).Child("d"))
	if err != nil {
		t.Fatal(err)
	}
	return rec, res
}

func TestRecorderEventCounts(t *testing.T) {
	rec, res := recordRun(t, 0)
	var mapped, started, finished, discarded int
	for _, e := range rec.Events {
		switch e.Kind {
		case KindMapped:
			mapped++
		case KindStarted:
			started++
		case KindFinished:
			finished++
		case KindDiscarded:
			discarded++
		}
	}
	if mapped != res.Mapped {
		t.Fatalf("mapped events %d, result %d", mapped, res.Mapped)
	}
	if discarded != res.Discarded {
		t.Fatalf("discarded events %d, result %d", discarded, res.Discarded)
	}
	if finished != res.OnTime+res.Late {
		t.Fatalf("finished events %d, result %d", finished, res.OnTime+res.Late)
	}
	if started != finished {
		t.Fatalf("unconstrained run: started %d != finished %d", started, finished)
	}
}

func TestRecorderEventsOrderedInTime(t *testing.T) {
	rec, _ := recordRun(t, 0)
	for i := 1; i < len(rec.Events); i++ {
		if rec.Events[i].Time < rec.Events[i-1].Time {
			t.Fatalf("event %d out of order: %v after %v", i, rec.Events[i].Time, rec.Events[i-1].Time)
		}
	}
	if rec.End() != rec.Events[len(rec.Events)-1].Time {
		t.Fatal("End() disagrees with last event")
	}
}

func TestRecorderOnTimeFlagsMatchResult(t *testing.T) {
	rec, res := recordRun(t, 0)
	late := 0
	for _, e := range rec.Events {
		if e.Kind == KindFinished && e.OnTime != nil && !*e.OnTime {
			late++
		}
	}
	if late != res.Late {
		t.Fatalf("late events %d, result %d", late, res.Late)
	}
}

func TestRecorderExhaustion(t *testing.T) {
	rec, res := recordRun(t, 0.05)
	if !res.EnergyExhausted {
		t.Skip("5% budget unexpectedly sufficient")
	}
	at, halted := rec.Halted()
	if !halted {
		t.Fatal("recorder missed exhaustion")
	}
	if math.Abs(at-res.ExhaustedAt) > 1e-9 {
		t.Fatalf("exhaustion at %v, result %v", at, res.ExhaustedAt)
	}
	last := rec.Events[len(rec.Events)-1]
	if last.Kind != KindExhausted {
		t.Fatalf("last event %v, want exhausted", last.Kind)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	rec, _ := recordRun(t, 0)
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != rec.Len() {
		t.Fatalf("%d JSONL lines for %d events", len(lines), rec.Len())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != rec.Events[0].Kind {
		t.Fatalf("decoded kind %q, want %q", e.Kind, rec.Events[0].Kind)
	}
}

func TestWriteCSV(t *testing.T) {
	rec, _ := recordRun(t, 0)
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != rec.Len()+1 {
		t.Fatalf("%d CSV lines for %d events + header", len(lines), rec.Len())
	}
	if !strings.HasPrefix(lines[0], "t,kind,") {
		t.Fatalf("header %q", lines[0])
	}
}

func TestTimeline(t *testing.T) {
	rec, _ := recordRun(t, 0)
	out := rec.Timeline(60)
	if !strings.Contains(out, "n0.") && !strings.Contains(out, "n1.") {
		t.Fatalf("timeline missing core labels:\n%s", out)
	}
	// Executing marks are P-state digits.
	if !strings.ContainsAny(out, "01234") {
		t.Fatalf("timeline has no execution spans:\n%s", out)
	}
	if !strings.Contains(out, "digits = executing") {
		t.Fatal("timeline missing legend")
	}
	empty := NewRecorder()
	if empty.Timeline(40) != "(empty trace)\n" {
		t.Fatal("empty timeline wrong")
	}
}

func TestTimelineMarksExhaustion(t *testing.T) {
	rec, res := recordRun(t, 0.05)
	if !res.EnergyExhausted {
		t.Skip("budget sufficient")
	}
	if !strings.Contains(rec.Timeline(60), "#") {
		t.Fatal("timeline missing exhaustion marker")
	}
}

func TestInSystemSeries(t *testing.T) {
	rec, _ := recordRun(t, 0)
	times, counts := rec.InSystemSeries()
	if len(times) != len(counts) || len(times) == 0 {
		t.Fatalf("series sizes %d/%d", len(times), len(counts))
	}
	for i, c := range counts {
		if c < 0 {
			t.Fatalf("negative in-system count at %d", i)
		}
		if i > 0 && times[i] < times[i-1] {
			t.Fatal("series times not monotone")
		}
	}
	if counts[len(counts)-1] != 0 {
		t.Fatalf("unconstrained run should drain to 0, ended at %d", counts[len(counts)-1])
	}
}

func TestPStateOccupancy(t *testing.T) {
	rec, res := recordRun(t, 0)
	occ := rec.PStateOccupancy()
	total := 0.0
	for _, v := range occ {
		if v < 0 {
			t.Fatalf("negative occupancy: %v", occ)
		}
		total += v
	}
	if total <= 0 {
		t.Fatal("no execution time recorded")
	}
	// Unfiltered MECT runs everything at P0.
	if occ[cluster.P0] < total*0.99 {
		t.Fatalf("MECT should occupy P0 almost exclusively: %v", occ)
	}
	_ = res
}

func TestSummary(t *testing.T) {
	rec, _ := recordRun(t, 0)
	s := rec.Summary()
	if !strings.Contains(s, "mapped") || !strings.Contains(s, "events") {
		t.Fatalf("summary %q", s)
	}
}
