// Package cluster models the heterogeneous compute cluster of §III-A and
// Fig. 1: N nodes, each with n(i) multicore processors of c(i) cores; all
// cores within a node are homogeneous, while nodes differ in performance
// and power efficiency. Each core supports the five ACPI P-states P0..P4;
// P0 is the fastest and most power-hungry, P4 the slowest and cheapest.
//
// The per-node P-state profile follows §VI exactly:
//
//   - clock-speed multipliers grow 15–25% per P-state step, with the
//     minimum operating frequency at least 42% of the maximum;
//   - P0 power is drawn from U(125,135) W, the P4 voltage from
//     U(1.000,1.150), the P0 voltage from U(1.400,1.550), the intermediate
//     voltages by linear interpolation, and μ(i,π) = A·C_L·V²·f (Eq. 7)
//     with A·C_L factored out of the P0 draw;
//   - the node power-supply efficiency ε(i) is drawn from U(0.90,0.98).
package cluster

import (
	"errors"
	"fmt"

	"repro/internal/randx"
)

// NumPStates is |P|, the number of ACPI P-states the paper assumes (§III-A).
const NumPStates = 5

// PState identifies an ACPI performance state. P0 is the base (fastest,
// highest power) state; P4 the slowest and lowest power.
type PState int

// The five P-states.
const (
	P0 PState = iota
	P1
	P2
	P3
	P4
)

// Valid reports whether p is one of the five modeled P-states.
func (p PState) Valid() bool { return p >= P0 && p < NumPStates }

// String returns "P0".."P4".
func (p PState) String() string { return fmt.Sprintf("P%d", int(p)) }

// AllPStates lists the P-states in order P0..P4.
func AllPStates() []PState {
	return []PState{P0, P1, P2, P3, P4}
}

// Node is one heterogeneous compute node.
type Node struct {
	// Processors is n(i), the number of multicore processors (1–4).
	Processors int `json:"processors"`
	// CoresPerProc is c(i), the cores per multicore processor (1–4).
	CoresPerProc int `json:"coresPerProc"`
	// Efficiency is ε(i), the power-supply efficiency in [0.90, 0.98].
	Efficiency float64 `json:"efficiency"`
	// Freq[π] is the relative operating frequency of P-state π, with
	// Freq[P0] = 1 (the base state) and lower values for deeper states.
	Freq [NumPStates]float64 `json:"freq"`
	// Voltage[π] is the supply voltage of P-state π in volts.
	Voltage [NumPStates]float64 `json:"voltage"`
	// Power[π] is μ(i,π): the average power in watts a core of this node
	// consumes while in P-state π.
	Power [NumPStates]float64 `json:"power"`
}

// TimeMult returns the execution-time multiplier of P-state π relative to
// P0: an execution-time distribution for P0 is scaled by this factor when
// the core runs in π (§VI). TimeMult(P0) == 1.
func (n *Node) TimeMult(p PState) float64 { return n.Freq[P0] / n.Freq[p] }

// Cores returns the number of cores in the node: n(i)·c(i).
func (n *Node) Cores() int { return n.Processors * n.CoresPerProc }

// Validate checks the node against the model's structural constraints.
func (n *Node) Validate() error {
	if n.Processors < 1 {
		return fmt.Errorf("cluster: node has %d processors, need >= 1", n.Processors)
	}
	if n.CoresPerProc < 1 {
		return fmt.Errorf("cluster: node has %d cores per processor, need >= 1", n.CoresPerProc)
	}
	if n.Efficiency <= 0 || n.Efficiency > 1 {
		return fmt.Errorf("cluster: efficiency %v outside (0,1]", n.Efficiency)
	}
	for p := 1; p < NumPStates; p++ {
		if n.Freq[p] >= n.Freq[p-1] {
			return fmt.Errorf("cluster: frequency not decreasing at P%d (%v >= %v)", p, n.Freq[p], n.Freq[p-1])
		}
		if n.Power[p] >= n.Power[p-1] {
			return fmt.Errorf("cluster: power not decreasing at P%d (%v >= %v)", p, n.Power[p], n.Power[p-1])
		}
	}
	for p := 0; p < NumPStates; p++ {
		if n.Freq[p] <= 0 {
			return fmt.Errorf("cluster: frequency %v at P%d not positive", n.Freq[p], p)
		}
		if n.Power[p] <= 0 {
			return fmt.Errorf("cluster: power %v at P%d not positive", n.Power[p], p)
		}
	}
	return nil
}

// CoreID addresses core k of multicore processor j in node i — the (i,j,k)
// triple used throughout the paper.
type CoreID struct {
	Node int `json:"node"`
	Proc int `json:"proc"`
	Core int `json:"core"`
}

// String renders the triple as "n<i>.p<j>.c<k>".
func (c CoreID) String() string { return fmt.Sprintf("n%d.p%d.c%d", c.Node, c.Proc, c.Core) }

// Cluster is the full machine: an ordered list of heterogeneous nodes plus
// a flattened core index for O(1) iteration over all cores.
type Cluster struct {
	Nodes []Node `json:"nodes"`

	cores []CoreID // lazily built flattened index
}

// ErrNoNodes is returned for clusters without nodes.
var ErrNoNodes = errors.New("cluster: no nodes")

// Validate checks every node and the overall structure.
func (c *Cluster) Validate() error {
	if len(c.Nodes) == 0 {
		return ErrNoNodes
	}
	for i := range c.Nodes {
		if err := c.Nodes[i].Validate(); err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
	}
	return nil
}

// N returns the number of nodes.
func (c *Cluster) N() int { return len(c.Nodes) }

// TotalCores returns the number of cores in the cluster.
func (c *Cluster) TotalCores() int {
	t := 0
	for i := range c.Nodes {
		t += c.Nodes[i].Cores()
	}
	return t
}

// Cores returns the flattened list of all core IDs, in (node, proc, core)
// lexicographic order. The slice is cached; callers must not mutate it.
func (c *Cluster) Cores() []CoreID {
	if c.cores == nil {
		c.cores = make([]CoreID, 0, c.TotalCores())
		for i := range c.Nodes {
			for j := 0; j < c.Nodes[i].Processors; j++ {
				for k := 0; k < c.Nodes[i].CoresPerProc; k++ {
					c.cores = append(c.cores, CoreID{Node: i, Proc: j, Core: k})
				}
			}
		}
	}
	return c.cores
}

// CoreIndex returns the position of id in Cores(), or -1 if id does not
// address a core of this cluster.
func (c *Cluster) CoreIndex(id CoreID) int {
	if id.Node < 0 || id.Node >= len(c.Nodes) {
		return -1
	}
	n := &c.Nodes[id.Node]
	if id.Proc < 0 || id.Proc >= n.Processors || id.Core < 0 || id.Core >= n.CoresPerProc {
		return -1
	}
	idx := 0
	for i := 0; i < id.Node; i++ {
		idx += c.Nodes[i].Cores()
	}
	return idx + id.Proc*n.CoresPerProc + id.Core
}

// Node returns the node hosting the given core.
func (c *Cluster) Node(id CoreID) *Node { return &c.Nodes[id.Node] }

// AvgPower returns p_avg (Eq. 8): the average of μ(i,π) over all nodes and
// all P-states. Used to size the energy constraint (§VI).
func (c *Cluster) AvgPower() float64 {
	s := 0.0
	for i := range c.Nodes {
		for p := 0; p < NumPStates; p++ {
			s += c.Nodes[i].Power[p]
		}
	}
	return s / float64(len(c.Nodes)*NumPStates)
}

// AvgTimeMult returns the mean execution-time multiplier over all nodes and
// P-states; with CVB base means this converts the P0 grand mean into the
// all-P-state average task execution time t_avg of §VI.
func (c *Cluster) AvgTimeMult() float64 {
	s := 0.0
	for i := range c.Nodes {
		for _, p := range AllPStates() {
			s += c.Nodes[i].TimeMult(p)
		}
	}
	return s / float64(len(c.Nodes)*NumPStates)
}

// GenParams configures random cluster generation; the zero value is not
// usable — use PaperGenParams for the paper's configuration.
type GenParams struct {
	// Nodes is N, the number of compute nodes.
	Nodes int
	// MaxProcessors bounds n(i) (drawn uniformly from 1..MaxProcessors).
	MaxProcessors int
	// MaxCoresPerProc bounds c(i) (drawn uniformly from 1..MaxCoresPerProc).
	MaxCoresPerProc int
	// PerfStepLo/PerfStepHi bound the per-P-state performance increase
	// (paper: 15%–25%).
	PerfStepLo, PerfStepHi float64
	// MinFreqRatio is the lower bound on f(P4)/f(P0) (paper: 0.42).
	MinFreqRatio float64
	// BasePowerLo/BasePowerHi bound the P0 power draw in watts
	// (paper: 125–135 W).
	BasePowerLo, BasePowerHi float64
	// VLowLo/VLowHi bound the P4 voltage (paper: 1.000–1.150 V).
	VLowLo, VLowHi float64
	// VHighLo/VHighHi bound the P0 voltage (paper: 1.400–1.550 V).
	VHighLo, VHighHi float64
	// EffLo/EffHi bound the power supply efficiency (paper: 0.90–0.98).
	EffLo, EffHi float64
}

// PaperGenParams returns the generation parameters of §III-A and §VI:
// 8 nodes, 1–4 processors of 1–4 cores, 15–25% performance steps with a 42%
// minimum frequency ratio, 125–135 W base power, 1.000–1.150 V low and
// 1.400–1.550 V high voltages, and 90–98% supply efficiency.
func PaperGenParams() GenParams {
	return GenParams{
		Nodes:           8,
		MaxProcessors:   4,
		MaxCoresPerProc: 4,
		PerfStepLo:      0.15,
		PerfStepHi:      0.25,
		MinFreqRatio:    0.42,
		BasePowerLo:     125,
		BasePowerHi:     135,
		VLowLo:          1.000,
		VLowHi:          1.150,
		VHighLo:         1.400,
		VHighHi:         1.550,
		EffLo:           0.90,
		EffHi:           0.98,
	}
}

// Validate reports whether the generation parameters are usable.
func (g GenParams) Validate() error {
	switch {
	case g.Nodes < 1:
		return fmt.Errorf("cluster: Nodes %d must be >= 1", g.Nodes)
	case g.MaxProcessors < 1 || g.MaxCoresPerProc < 1:
		return fmt.Errorf("cluster: processor/core bounds must be >= 1")
	case g.PerfStepLo <= 0 || g.PerfStepHi < g.PerfStepLo:
		return fmt.Errorf("cluster: bad performance step range [%v,%v]", g.PerfStepLo, g.PerfStepHi)
	case g.MinFreqRatio <= 0 || g.MinFreqRatio >= 1:
		return fmt.Errorf("cluster: MinFreqRatio %v outside (0,1)", g.MinFreqRatio)
	case g.BasePowerLo <= 0 || g.BasePowerHi < g.BasePowerLo:
		return fmt.Errorf("cluster: bad base power range [%v,%v]", g.BasePowerLo, g.BasePowerHi)
	case g.VLowLo <= 0 || g.VLowHi < g.VLowLo:
		return fmt.Errorf("cluster: bad low-voltage range [%v,%v]", g.VLowLo, g.VLowHi)
	case g.VHighLo <= g.VLowHi || g.VHighHi < g.VHighLo:
		return fmt.Errorf("cluster: bad high-voltage range [%v,%v]", g.VHighLo, g.VHighHi)
	case g.EffLo <= 0 || g.EffHi < g.EffLo || g.EffHi > 1:
		return fmt.Errorf("cluster: bad efficiency range [%v,%v]", g.EffLo, g.EffHi)
	}
	return nil
}

// Generate builds a random heterogeneous cluster from the stream.
func Generate(s *randx.Stream, g GenParams) (*Cluster, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{Nodes: make([]Node, g.Nodes)}
	for i := range c.Nodes {
		c.Nodes[i] = generateNode(s, g)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: generated invalid cluster: %w", err)
	}
	return c, nil
}

func generateNode(s *randx.Stream, g GenParams) Node {
	n := Node{
		Processors:   1 + s.IntN(g.MaxProcessors),
		CoresPerProc: 1 + s.IntN(g.MaxCoresPerProc),
		Efficiency:   s.Uniform(g.EffLo, g.EffHi),
	}
	// Frequencies: build upward from P4 with 15–25% performance steps,
	// rejecting draws that violate the 42% minimum frequency ratio, then
	// normalize so Freq[P0] = 1.
	for {
		f := 1.0
		var freq [NumPStates]float64
		freq[NumPStates-1] = f
		for p := NumPStates - 2; p >= 0; p-- {
			f *= 1 + s.Uniform(g.PerfStepLo, g.PerfStepHi)
			freq[p] = f
		}
		if freq[NumPStates-1]/freq[0] < g.MinFreqRatio {
			continue
		}
		inv := 1 / freq[0]
		for p := range freq {
			freq[p] *= inv
		}
		freq[0] = 1 // exact, despite rounding in the normalization above
		n.Freq = freq
		break
	}
	// Voltages: P4 and P0 drawn, the rest linearly interpolated (§VI).
	vLow := s.Uniform(g.VLowLo, g.VLowHi)
	vHigh := s.Uniform(g.VHighLo, g.VHighHi)
	for p := 0; p < NumPStates; p++ {
		frac := float64(p) / float64(NumPStates-1) // 0 at P0, 1 at P4
		n.Voltage[p] = vHigh + frac*(vLow-vHigh)
	}
	// Power: draw P0 power, factor out A·C_L, apply Eq. 7 per state.
	p0 := s.Uniform(g.BasePowerLo, g.BasePowerHi)
	acl := p0 / (n.Voltage[P0] * n.Voltage[P0] * n.Freq[P0])
	for p := 0; p < NumPStates; p++ {
		n.Power[p] = acl * n.Voltage[p] * n.Voltage[p] * n.Freq[p]
	}
	return n
}
