package cluster

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON encodes the cluster as indented JSON.
func (c *Cluster) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("cluster: encode: %w", err)
	}
	return nil
}

// ReadJSON decodes and validates a cluster from JSON.
func ReadJSON(r io.Reader) (*Cluster, error) {
	var c Cluster
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("cluster: decode: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: decode: %w", err)
	}
	return &c, nil
}

// Summary returns a short human-readable description of the cluster.
func (c *Cluster) Summary() string {
	s := fmt.Sprintf("cluster: %d nodes, %d cores, p_avg=%.1f W, avg time mult=%.2f\n",
		c.N(), c.TotalCores(), c.AvgPower(), c.AvgTimeMult())
	for i := range c.Nodes {
		n := &c.Nodes[i]
		s += fmt.Sprintf("  node %d: %d×%d cores, ε=%.3f, P0 %.1f W @ %.2f V, P4 %.1f W @ %.2f V (f ratio %.2f)\n",
			i, n.Processors, n.CoresPerProc, n.Efficiency,
			n.Power[P0], n.Voltage[P0], n.Power[P4], n.Voltage[P4],
			n.Freq[P4]/n.Freq[P0])
	}
	return s
}
