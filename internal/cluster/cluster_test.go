package cluster

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/randx"
)

func genPaper(t *testing.T, seed uint64) *Cluster {
	t.Helper()
	c, err := Generate(randx.NewStream(seed), PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateStructure(t *testing.T) {
	c := genPaper(t, 1)
	if c.N() != 8 {
		t.Fatalf("N=%d, want 8", c.N())
	}
	for i, n := range c.Nodes {
		if n.Processors < 1 || n.Processors > 4 {
			t.Errorf("node %d: processors %d outside 1..4", i, n.Processors)
		}
		if n.CoresPerProc < 1 || n.CoresPerProc > 4 {
			t.Errorf("node %d: cores/proc %d outside 1..4", i, n.CoresPerProc)
		}
		if n.Efficiency < 0.90 || n.Efficiency > 0.98 {
			t.Errorf("node %d: efficiency %v outside [0.90,0.98]", i, n.Efficiency)
		}
	}
	if c.TotalCores() < 8 || c.TotalCores() > 8*16 {
		t.Fatalf("total cores %d implausible", c.TotalCores())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genPaper(t, 42)
	b := genPaper(t, 42)
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatal("cluster generation not deterministic")
		}
	}
}

func TestPStateFrequencies(t *testing.T) {
	c := genPaper(t, 2)
	for i, n := range c.Nodes {
		if n.Freq[P0] != 1 {
			t.Errorf("node %d: Freq[P0]=%v, want 1 (normalized)", i, n.Freq[P0])
		}
		for p := 1; p < NumPStates; p++ {
			step := n.Freq[p-1] / n.Freq[p]
			if step < 1.15-1e-12 || step > 1.25+1e-12 {
				t.Errorf("node %d: P%d→P%d performance step %v outside [1.15,1.25]", i, p, p-1, step)
			}
		}
		ratio := n.Freq[P4] / n.Freq[P0]
		if ratio < 0.42 {
			t.Errorf("node %d: min/max frequency ratio %v below 0.42", i, ratio)
		}
		if n.TimeMult(P0) != 1 {
			t.Errorf("node %d: TimeMult(P0)=%v, want 1", i, n.TimeMult(P0))
		}
		for p := 1; p < NumPStates; p++ {
			if n.TimeMult(PState(p)) <= n.TimeMult(PState(p-1)) {
				t.Errorf("node %d: time multiplier not increasing with P-state", i)
			}
		}
	}
}

func TestPStatePower(t *testing.T) {
	c := genPaper(t, 3)
	for i, n := range c.Nodes {
		if n.Power[P0] < 125 || n.Power[P0] > 135 {
			t.Errorf("node %d: P0 power %v outside [125,135]", i, n.Power[P0])
		}
		for p := 1; p < NumPStates; p++ {
			if n.Power[p] >= n.Power[p-1] {
				t.Errorf("node %d: power not decreasing at P%d", i, p)
			}
		}
		// Paper: "power consumption for the low P-state of about 25% that in
		// the high P-state". With these voltage/frequency ranges the ratio
		// lands in roughly [0.17, 0.35].
		ratio := n.Power[P4] / n.Power[P0]
		if ratio < 0.12 || ratio > 0.45 {
			t.Errorf("node %d: P4/P0 power ratio %v far from ~0.25", i, ratio)
		}
		// Eq. 7 consistency: power ∝ V²·f with one A·C_L constant.
		acl := n.Power[P0] / (n.Voltage[P0] * n.Voltage[P0] * n.Freq[P0])
		for p := 0; p < NumPStates; p++ {
			want := acl * n.Voltage[p] * n.Voltage[p] * n.Freq[p]
			if math.Abs(n.Power[p]-want) > 1e-9 {
				t.Errorf("node %d: power at P%d violates CMOS formula", i, p)
			}
		}
	}
}

func TestVoltageInterpolation(t *testing.T) {
	c := genPaper(t, 4)
	for i, n := range c.Nodes {
		if n.Voltage[P0] < 1.400 || n.Voltage[P0] > 1.550 {
			t.Errorf("node %d: V(P0)=%v outside [1.400,1.550]", i, n.Voltage[P0])
		}
		if n.Voltage[P4] < 1.000 || n.Voltage[P4] > 1.150 {
			t.Errorf("node %d: V(P4)=%v outside [1.000,1.150]", i, n.Voltage[P4])
		}
		for p := 1; p < NumPStates-1; p++ {
			want := n.Voltage[P0] + float64(p)/4*(n.Voltage[P4]-n.Voltage[P0])
			if math.Abs(n.Voltage[p]-want) > 1e-12 {
				t.Errorf("node %d: V(P%d)=%v, want linear %v", i, p, n.Voltage[p], want)
			}
		}
	}
}

func TestCoresFlattening(t *testing.T) {
	c := genPaper(t, 5)
	cores := c.Cores()
	if len(cores) != c.TotalCores() {
		t.Fatalf("flattened %d cores, want %d", len(cores), c.TotalCores())
	}
	seen := map[CoreID]bool{}
	for idx, id := range cores {
		if seen[id] {
			t.Fatalf("duplicate core id %v", id)
		}
		seen[id] = true
		if got := c.CoreIndex(id); got != idx {
			t.Fatalf("CoreIndex(%v)=%d, want %d", id, got, idx)
		}
	}
	if c.CoreIndex(CoreID{Node: 99}) != -1 {
		t.Fatal("CoreIndex should return -1 for bogus node")
	}
	if c.CoreIndex(CoreID{Node: 0, Proc: 99}) != -1 {
		t.Fatal("CoreIndex should return -1 for bogus proc")
	}
}

func TestNodeAccessor(t *testing.T) {
	c := genPaper(t, 6)
	id := c.Cores()[0]
	if c.Node(id) != &c.Nodes[id.Node] {
		t.Fatal("Node accessor returned wrong node")
	}
}

func TestAvgPower(t *testing.T) {
	c := genPaper(t, 7)
	s := 0.0
	for _, n := range c.Nodes {
		for p := 0; p < NumPStates; p++ {
			s += n.Power[p]
		}
	}
	want := s / float64(c.N()*NumPStates)
	if math.Abs(c.AvgPower()-want) > 1e-9 {
		t.Fatalf("AvgPower %v, want %v", c.AvgPower(), want)
	}
	// p_avg must lie between P4 and P0 extremes.
	if c.AvgPower() < 20 || c.AvgPower() > 135 {
		t.Fatalf("AvgPower %v implausible", c.AvgPower())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	c := genPaper(t, 8)
	good := c.Nodes[0]

	bad := good
	bad.Processors = 0
	c.Nodes[0] = bad
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for zero processors")
	}

	bad = good
	bad.Efficiency = 1.5
	c.Nodes[0] = bad
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for efficiency > 1")
	}

	bad = good
	bad.Freq[P3] = bad.Freq[P2] * 2
	c.Nodes[0] = bad
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for non-monotone frequency")
	}

	bad = good
	bad.Power[P4] = bad.Power[P0] + 1
	c.Nodes[0] = bad
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for non-monotone power")
	}

	empty := &Cluster{}
	if err := empty.Validate(); err == nil {
		t.Fatal("expected error for empty cluster")
	}
}

func TestGenParamsValidate(t *testing.T) {
	bad := []func(*GenParams){
		func(g *GenParams) { g.Nodes = 0 },
		func(g *GenParams) { g.MaxProcessors = 0 },
		func(g *GenParams) { g.PerfStepLo = -1 },
		func(g *GenParams) { g.MinFreqRatio = 1.5 },
		func(g *GenParams) { g.BasePowerLo = 0 },
		func(g *GenParams) { g.VLowLo = 0 },
		func(g *GenParams) { g.VHighLo = 0.5 }, // overlaps low-voltage range
		func(g *GenParams) { g.EffHi = 1.2 },
	}
	for i, mut := range bad {
		g := PaperGenParams()
		mut(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, g)
		}
	}
	if err := PaperGenParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := genPaper(t, 9)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != c.N() || got.TotalCores() != c.TotalCores() {
		t.Fatal("round trip changed structure")
	}
	for i := range c.Nodes {
		if got.Nodes[i] != c.Nodes[i] {
			t.Fatalf("node %d changed in round trip", i)
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"nodes":[]}`)); err == nil {
		t.Fatal("expected error for empty node list")
	}
	if _, err := ReadJSON(strings.NewReader(`{`)); err == nil {
		t.Fatal("expected error for malformed JSON")
	}
}

func TestSummary(t *testing.T) {
	c := genPaper(t, 10)
	s := c.Summary()
	if !strings.Contains(s, "8 nodes") || !strings.Contains(s, "node 0") {
		t.Fatalf("summary missing content: %q", s)
	}
}

func TestPStateString(t *testing.T) {
	if P0.String() != "P0" || P4.String() != "P4" {
		t.Fatal("PState.String wrong")
	}
	if !P2.Valid() || PState(5).Valid() || PState(-1).Valid() {
		t.Fatal("PState.Valid wrong")
	}
	if len(AllPStates()) != NumPStates {
		t.Fatal("AllPStates wrong length")
	}
}
