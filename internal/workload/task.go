package workload

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/randx"
)

// Task is one independent task of the dynamically arriving workload.
type Task struct {
	// ID is the task's index in arrival order within its trial.
	ID int
	// Type indexes the task's well-known task type.
	Type int
	// Arrival is the task's arrival time; the immediate-mode mapper sees
	// the task exactly at this instant.
	Arrival float64
	// Deadline is δ(z), the hard individual deadline (§III-B).
	Deadline float64
	// U is the task's execution quantile in (0,1): the actual execution
	// time on whatever (node, P-state) the task is eventually mapped to is
	// the U-quantile of that assignment's execution-time pmf. Drawing one
	// quantile per task implements common random numbers across heuristics
	// and keeps a task's "luck" consistent across candidate machines.
	U float64
	// Priority is the task's weight for the priority extension (§VIII
	// future work). The paper's experiments use 1 for every task.
	Priority float64
	// Tenant identifies the submitting tenant in multi-tenant serving mode.
	// Empty for single-tenant workloads (every pre-tenancy trial).
	Tenant string
	// Class is the tenant's SLO class. The zero value is SLOBronze, so
	// untagged legacy tasks decode as the lowest class by construction.
	Class SLOClass
}

// String renders a compact description for logs and traces.
func (t Task) String() string {
	return fmt.Sprintf("task{%d type=%d arr=%.1f dl=%.1f}", t.ID, t.Type, t.Arrival, t.Deadline)
}

// Trial is one simulation trial's task stream, in arrival order.
type Trial struct {
	Tasks []Task
}

// GenerateTrial draws one trial: arrival times from the bursty Poisson
// process, task types uniformly at random over the type set, deadlines per
// §VI (arrival + type mean execution time + load factor), and one execution
// quantile per task. Trials with the same (model, stream) are identical.
func GenerateTrial(s *randx.Stream, m *Model) (*Trial, error) {
	return generateTrial(s, m)
}

// PriorityClass describes an optional priority mix for the §VIII extension.
type PriorityClass struct {
	// Weight is the task's value when completed on time.
	Weight float64
	// Fraction is the proportion of tasks drawn with this weight.
	Fraction float64
}

// GenerateTrialWithPriorities is GenerateTrial with tasks additionally
// assigned priority weights according to the given class mix. The class
// fractions must sum to 1.
func GenerateTrialWithPriorities(s *randx.Stream, m *Model, classes []PriorityClass) (*Trial, error) {
	tr, err := generateTrial(s, m)
	if err != nil {
		return nil, err
	}
	if len(classes) == 0 {
		return tr, nil
	}
	total := 0.0
	for _, c := range classes {
		if c.Fraction < 0 || c.Weight <= 0 {
			return nil, fmt.Errorf("workload: bad priority class %+v", c)
		}
		total += c.Fraction
	}
	if total < 0.999 || total > 1.001 {
		return nil, fmt.Errorf("workload: priority fractions sum to %v, want 1", total)
	}
	ps := s.Child("priorities")
	for i := range tr.Tasks {
		u := ps.Float64()
		acc := 0.0
		for _, c := range classes {
			acc += c.Fraction
			if u <= acc {
				tr.Tasks[i].Priority = c.Weight
				break
			}
		}
	}
	return tr, nil
}

func generateTrial(s *randx.Stream, m *Model) (*Trial, error) {
	p := m.Params
	arr, err := randx.PoissonArrivals(s.Child("arrivals"), m.ArrivalPhases())
	if err != nil {
		return nil, err
	}
	ts := s.Child("types")
	qs := s.Child("quantiles")
	loadFactor := p.LoadFactorMult * m.tAvg
	tasks := make([]Task, len(arr))
	for i := range tasks {
		ty := ts.IntN(p.TaskTypes)
		// Quantiles strictly inside (0,1): 0 and 1 are valid inputs to
		// pmf.Quantile but carry no extra information for a discrete pmf.
		u := qs.Float64()
		if u <= 0 {
			u = 1e-12
		}
		tasks[i] = Task{
			ID:       i,
			Type:     ty,
			Arrival:  arr[i],
			Deadline: arr[i] + m.TypeMeanExec(ty) + loadFactor,
			U:        u,
			Priority: 1,
		}
	}
	return &Trial{Tasks: tasks}, nil
}

// ActualExecTime returns the realized execution time of the task when run
// on the given node and P-state: the task's quantile evaluated against that
// assignment's execution-time pmf.
func (m *Model) ActualExecTime(t Task, node int, p cluster.PState) float64 {
	return m.ExecPMF(t.Type, node, p).Quantile(t.U)
}
