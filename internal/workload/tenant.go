package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/randx"
)

// SLOClass orders tenants by service level. The zero value is SLOBronze so
// untagged legacy traffic lands in the lowest class without any migration:
// a request that never mentions tenancy sheds first, exactly as if the
// feature did not exist.
type SLOClass int

const (
	// SLOBronze is best-effort traffic: shed first under brownout.
	SLOBronze SLOClass = iota
	// SLOSilver is standard traffic: shed at deeper brownout stages.
	SLOSilver
	// SLOGold is premium traffic: tightest deadlines, shed last.
	SLOGold
)

// String renders the class name used on the wire ("bronze"/"silver"/"gold").
func (c SLOClass) String() string {
	switch c {
	case SLOBronze:
		return "bronze"
	case SLOSilver:
		return "silver"
	case SLOGold:
		return "gold"
	}
	return fmt.Sprintf("SLOClass(%d)", int(c))
}

// ParseSLOClass maps a wire name to its class. The empty string is bronze —
// the absent-field default, matching the zero value.
func ParseSLOClass(s string) (SLOClass, error) {
	switch s {
	case "", "bronze":
		return SLOBronze, nil
	case "silver":
		return SLOSilver, nil
	case "gold":
		return SLOGold, nil
	}
	return SLOBronze, fmt.Errorf("workload: unknown SLO class %q (want gold, silver, or bronze)", s)
}

// SlackMult is the class's deadline-tightness multiplier on the standard
// load-factor slack: gold buys tighter deadlines (0.75×), bronze gets looser
// ones (1.5×), silver is the paper's baseline (1×). Applied only when a
// request opts into tenancy by naming its class.
func (c SLOClass) SlackMult() float64 {
	switch c {
	case SLOGold:
		return 0.75
	case SLOSilver:
		return 1
	}
	return 1.5
}

// Tenant client/arrival profiles. "compliant" is the paper's fast/slow/fast
// burst shape; "diurnal" is a time-varying sinusoidal rate; the remaining two
// are adversarial: "deadline-flood" submits a steady stream of tasks whose
// deadlines are impossible, and "burst-abuse" alternates silence with
// synchronized bursts that slam the admission queue.
const (
	ProfileCompliant     = "compliant"
	ProfileDiurnal       = "diurnal"
	ProfileDeadlineFlood = "deadline-flood"
	ProfileBurstAbuse    = "burst-abuse"
)

// TenantProfile is one tenant's row in the spec file: its identity and SLO
// class, its client-side arrival shape, and its server-side quota knobs.
type TenantProfile struct {
	// ID names the tenant on the wire. Required, at most 64 bytes,
	// printable ASCII without spaces.
	ID string `json:"id"`
	// SLO is the class name ("gold"/"silver"/"bronze"); empty is bronze.
	SLO string `json:"slo,omitempty"`
	// Profile is the arrival shape; empty is "compliant".
	Profile string `json:"profile,omitempty"`
	// Mult is the tenant's offered-load multiplier relative to λ_eq. It
	// sizes both the tenant's share of a generated stream and its arrival
	// rate. Zero means the tenant submits nothing (server-side quotas only).
	Mult float64 `json:"mult,omitempty"`
	// RateLimit is the server-side token-bucket refill rate as a multiple
	// of λ_eq. Zero means unlimited (no bucket for this tenant).
	RateLimit float64 `json:"rateLimit,omitempty"`
	// Burst is the token-bucket capacity in tokens; zero defaults to 16.
	Burst float64 `json:"burst,omitempty"`
	// QueueShare bounds the fraction of the bounded admission queue this
	// tenant's backlog may occupy, in (0,1]. Zero means unlimited.
	QueueShare float64 `json:"queueShare,omitempty"`
	// Period is the diurnal/burst cycle length in virtual time units; zero
	// picks a default relative to the generation horizon.
	Period float64 `json:"period,omitempty"`
	// Swing is the diurnal amplitude in [0,1): rate(t) = base·(1+Swing·sin).
	// Zero defaults to 0.5 for the diurnal profile.
	Swing float64 `json:"swing,omitempty"`
}

// Class returns the parsed SLO class (the spec is validated, so this cannot
// fail after ParseTenantSpec).
func (p TenantProfile) Class() SLOClass {
	c, _ := ParseSLOClass(p.SLO)
	return c
}

// TenantSpec is the parsed tenant-spec file: an ordered set of tenants with
// unique ids. The same file drives both sides of the experiment — ecload
// composes the client arrival processes from it, ecserve configures
// per-tenant quotas and quarantine from it.
type TenantSpec struct {
	Tenants []TenantProfile `json:"tenants"`
}

// maxTenantID bounds the wire id so tenant ids stay usable as metric labels
// and WAL fields without unbounded cardinality in any single field.
const maxTenantID = 64

// ParseTenantSpec decodes and validates a tenant-spec JSON document.
// Unknown fields, trailing data, non-finite or negative numeric knobs, and
// duplicate tenant ids (the error echoes the offending id) are all rejected,
// so a spec that parses is safe to hand to both the generator and the
// server. This is the surface FuzzTenantSpec exercises.
func ParseTenantSpec(data []byte) (*TenantSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec TenantSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("workload: tenant spec: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("workload: tenant spec: trailing data after document")
	}
	if len(spec.Tenants) == 0 {
		return nil, fmt.Errorf("workload: tenant spec: no tenants")
	}
	seen := make(map[string]bool, len(spec.Tenants))
	for i, t := range spec.Tenants {
		if err := t.validate(); err != nil {
			return nil, fmt.Errorf("workload: tenant spec [%d]: %w", i, err)
		}
		if seen[t.ID] {
			return nil, fmt.Errorf("workload: tenant spec: duplicate tenant id %q", t.ID)
		}
		seen[t.ID] = true
	}
	return &spec, nil
}

// ValidTenantID reports whether an id is usable on the wire: non-empty,
// bounded, printable ASCII with no spaces (ids appear in JSON fields, metric
// labels, and report lines parsed by shell harnesses).
func ValidTenantID(id string) error {
	if id == "" {
		return fmt.Errorf("tenant id must be non-empty")
	}
	if len(id) > maxTenantID {
		return fmt.Errorf("tenant id %q exceeds %d bytes", id[:maxTenantID]+"...", maxTenantID)
	}
	for _, r := range id {
		if r <= ' ' || r > '~' || r == '"' {
			return fmt.Errorf("tenant id %q contains non-printable or reserved characters", id)
		}
	}
	return nil
}

// validate checks one profile. Numeric comparisons are phrased !(x >= 0) so
// NaN — which fails every ordering — is rejected rather than slipping
// through as "not negative".
func (p TenantProfile) validate() error {
	if err := ValidTenantID(p.ID); err != nil {
		return err
	}
	if _, err := ParseSLOClass(p.SLO); err != nil {
		return err
	}
	switch p.Profile {
	case "", ProfileCompliant, ProfileDiurnal, ProfileDeadlineFlood, ProfileBurstAbuse:
	default:
		return fmt.Errorf("tenant %q: unknown profile %q", p.ID, p.Profile)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"mult", p.Mult},
		{"rateLimit", p.RateLimit},
		{"burst", p.Burst},
		{"queueShare", p.QueueShare},
		{"period", p.Period},
		{"swing", p.Swing},
	} {
		if !(f.v >= 0) || math.IsInf(f.v, 0) {
			return fmt.Errorf("tenant %q: %s %v must be >= 0 and finite", p.ID, f.name, f.v)
		}
	}
	if p.QueueShare > 1 {
		return fmt.Errorf("tenant %q: queueShare %v must be <= 1", p.ID, p.QueueShare)
	}
	if p.Swing >= 1 {
		return fmt.Errorf("tenant %q: swing %v must be < 1", p.ID, p.Swing)
	}
	return nil
}

// Adversarial reports whether the profile is one of the attack shapes.
func (p TenantProfile) Adversarial() bool {
	return p.Profile == ProfileDeadlineFlood || p.Profile == ProfileBurstAbuse
}

// The compliant profile reuses the paper's burst ratios (§VI): leading and
// trailing fifths at (28/8)·rate, the middle three fifths at (28/48)·rate.
const (
	tenantFastFactor = 28.0 / 8
	tenantSlowFactor = 28.0 / 48
)

// Arrivals draws n arrival instants on the virtual axis for this tenant's
// profile at base rate Mult·eqRate. Each tenant draws from its own stream
// (callers pass root.Child(id)), so one tenant's draws never perturb
// another's — an adversarial tenant cannot shift a compliant tenant's
// schedule by existing.
func (p TenantProfile) Arrivals(s *randx.Stream, n int, eqRate float64) ([]float64, error) {
	if n <= 0 {
		return nil, nil
	}
	base := p.Mult * eqRate
	if !(base > 0) {
		return nil, fmt.Errorf("workload: tenant %q: rate %v must be > 0 to generate arrivals", p.ID, base)
	}
	switch p.Profile {
	case "", ProfileCompliant:
		burst := n / 5
		return randx.PoissonArrivals(s, []randx.RatePhase{
			{Rate: base * tenantFastFactor, Count: burst},
			{Rate: base * tenantSlowFactor, Count: n - 2*burst},
			{Rate: base * tenantFastFactor, Count: burst},
		})
	case ProfileDiurnal:
		return p.diurnalArrivals(s, n, base)
	case ProfileDeadlineFlood:
		// A steady flood: constant rate, no lull for the abuse detector's
		// window to drain out of.
		return randx.PoissonArrivals(s, []randx.RatePhase{{Rate: base, Count: n}})
	case ProfileBurstAbuse:
		return p.burstAbuseArrivals(s, n, base)
	}
	return nil, fmt.Errorf("workload: tenant %q: unknown profile %q", p.ID, p.Profile)
}

// diurnalArrivals draws a nonhomogeneous Poisson process by thinning: draw
// candidates at the peak rate base·(1+swing), accept each at probability
// rate(t)/peak with rate(t) = base·(1 + swing·sin(2πt/period)). Thinning is
// exact for rate functions bounded by the candidate rate, which this one is
// by construction.
func (p TenantProfile) diurnalArrivals(s *randx.Stream, n int, base float64) ([]float64, error) {
	swing := p.Swing
	if swing == 0 {
		swing = 0.5
	}
	period := p.Period
	if period == 0 {
		// Default: two full cycles across the expected generation horizon
		// n/base, so a run always sees both the peak and the trough.
		period = float64(n) / base / 2
	}
	peak := base * (1 + swing)
	arr := make([]float64, 0, n)
	t := 0.0
	for len(arr) < n {
		t += s.Exponential(peak)
		rate := base * (1 + swing*math.Sin(2*math.Pi*t/period))
		if s.Float64()*peak <= rate {
			arr = append(arr, t)
		}
	}
	return arr, nil
}

// burstAbuseArrivals alternates silence with synchronized bursts: each cycle
// fires a tightly packed volley (spacing drawn at 100× the base rate) at the
// cycle boundary, then goes quiet — the worst case for a bounded admission
// queue sized for smooth traffic.
func (p TenantProfile) burstAbuseArrivals(s *randx.Stream, n int, base float64) ([]float64, error) {
	period := p.Period
	if period == 0 {
		period = float64(n) / base / 8
	}
	volley := n / 8
	if volley < 1 {
		volley = 1
	}
	arr := make([]float64, 0, n)
	for cycle := 0; len(arr) < n; cycle++ {
		t := float64(cycle) * period
		for i := 0; i < volley && len(arr) < n; i++ {
			t += s.Exponential(base * 100)
			arr = append(arr, t)
		}
	}
	return arr, nil
}
