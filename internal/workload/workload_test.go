package workload

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/randx"
)

// testParams shrinks the paper parameters so model construction stays fast
// in unit tests while exercising every code path.
func testParams() Params {
	p := PaperParams()
	p.TaskTypes = 12
	p.WindowSize = 100
	p.BurstLen = 20
	p.PMFSamples = 400
	return p
}

func buildTestModel(t *testing.T, seed uint64) *Model {
	t.Helper()
	s := randx.NewStream(seed)
	c, err := cluster.Generate(s.Child("cluster"), cluster.PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildModel(s.Child("workload"), c, testParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPaperParamsValues(t *testing.T) {
	p := PaperParams()
	if p.TaskTypes != 100 || p.WindowSize != 1000 || p.BurstLen != 200 {
		t.Fatalf("paper workload size drifted: %+v", p)
	}
	if p.FastRate != 1.0/8 || p.SlowRate != 1.0/48 {
		t.Fatalf("paper rates drifted: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	phases := p.Phases()
	if len(phases) != 3 || phases[0].Count != 200 || phases[1].Count != 600 || phases[2].Count != 200 {
		t.Fatalf("phases wrong: %+v", phases)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.TaskTypes = 0 },
		func(p *Params) { p.WindowSize = 0 },
		func(p *Params) { p.ExecCV = 0 },
		func(p *Params) { p.PMFBins = 0 },
		func(p *Params) { p.PMFSamples = 1 },
		func(p *Params) { p.CalibrateRates = false; p.FastRate = 0 },
		func(p *Params) { p.CalibrateRates = false; p.SlowRate = -1 },
		func(p *Params) { p.FastFactor = 0 },
		func(p *Params) { p.SlowFactor = -1 },
		func(p *Params) { p.BurstLen = 600 }, // 2·600 > 1000
		func(p *Params) { p.LoadFactorMult = -1 },
		func(p *Params) { p.CVB.TaskMean = 0 },
	}
	for i, mut := range bad {
		p := PaperParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestBuildModelTable(t *testing.T) {
	m := buildTestModel(t, 1)
	c := m.Cluster
	for ti := 0; ti < m.Params.TaskTypes; ti++ {
		for ni := 0; ni < c.N(); ni++ {
			base := m.ExecPMF(ti, ni, cluster.P0)
			if err := base.Validate(); err != nil {
				t.Fatalf("pmf (%d,%d,P0): %v", ti, ni, err)
			}
			if base.Len() > m.Params.PMFBins {
				t.Fatalf("pmf (%d,%d,P0) has %d impulses, cap %d", ti, ni, base.Len(), m.Params.PMFBins)
			}
			for _, st := range cluster.AllPStates() {
				p := m.ExecPMF(ti, ni, st)
				wantMean := base.Mean() * c.Nodes[ni].TimeMult(st)
				if math.Abs(p.Mean()-wantMean) > 1e-6*wantMean {
					t.Fatalf("pmf (%d,%d,%v) mean %v, want %v", ti, ni, st, p.Mean(), wantMean)
				}
				if p.Min() <= 0 {
					t.Fatalf("pmf (%d,%d,%v) has non-positive support %v", ti, ni, st, p.Min())
				}
			}
		}
	}
}

func TestBuildModelDeterministic(t *testing.T) {
	a := buildTestModel(t, 7)
	b := buildTestModel(t, 7)
	if a.TAvg() != b.TAvg() {
		t.Fatal("model build not deterministic")
	}
	pa := a.ExecPMF(3, 2, cluster.P2)
	pb := b.ExecPMF(3, 2, cluster.P2)
	if !pa.ApproxEqual(pb, 0) {
		t.Fatal("pmf tables differ across identical seeds")
	}
}

func TestModelMeansConsistent(t *testing.T) {
	m := buildTestModel(t, 2)
	// TAvg must equal the average of per-type means, and each per-type mean
	// the average of the pmf means across nodes and P-states.
	sum := 0.0
	for ti := 0; ti < m.Params.TaskTypes; ti++ {
		typeSum := 0.0
		for ni := 0; ni < m.Cluster.N(); ni++ {
			for _, st := range cluster.AllPStates() {
				typeSum += m.ExecPMF(ti, ni, st).Mean()
			}
		}
		want := typeSum / float64(m.Cluster.N()*cluster.NumPStates)
		if math.Abs(m.TypeMeanExec(ti)-want) > 1e-9*want {
			t.Fatalf("type %d mean %v, want %v", ti, m.TypeMeanExec(ti), want)
		}
		sum += want
	}
	want := sum / float64(m.Params.TaskTypes)
	if math.Abs(m.TAvg()-want) > 1e-9*want {
		t.Fatalf("TAvg %v, want %v", m.TAvg(), want)
	}
}

func TestTAvgMagnitude(t *testing.T) {
	// With μ_task=750 and 15–25% P-state steps, t_avg should land roughly
	// in the paper's regime (≈1.4–1.9× the P0 mean).
	m := buildTestModel(t, 3)
	if m.TAvg() < 800 || m.TAvg() > 1800 {
		t.Fatalf("TAvg %v outside plausible range for paper parameters", m.TAvg())
	}
}

func TestDefaultEnergyBudget(t *testing.T) {
	m := buildTestModel(t, 4)
	want := m.TAvg() * m.Cluster.AvgPower() * float64(m.Params.WindowSize)
	if math.Abs(m.DefaultEnergyBudget()-want) > 1e-9*want {
		t.Fatalf("budget %v, want %v", m.DefaultEnergyBudget(), want)
	}
}

func TestGenerateTrial(t *testing.T) {
	m := buildTestModel(t, 5)
	tr, err := GenerateTrial(randx.NewStream(100), m)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tasks) != m.Params.WindowSize {
		t.Fatalf("trial has %d tasks, want %d", len(tr.Tasks), m.Params.WindowSize)
	}
	lf := m.Params.LoadFactorMult * m.TAvg()
	for i, task := range tr.Tasks {
		if task.ID != i {
			t.Fatalf("task %d has ID %d", i, task.ID)
		}
		if task.Type < 0 || task.Type >= m.Params.TaskTypes {
			t.Fatalf("task %d type %d out of range", i, task.Type)
		}
		if i > 0 && task.Arrival <= tr.Tasks[i-1].Arrival {
			t.Fatalf("arrivals not increasing at %d", i)
		}
		wantDL := task.Arrival + m.TypeMeanExec(task.Type) + lf
		if math.Abs(task.Deadline-wantDL) > 1e-9 {
			t.Fatalf("task %d deadline %v, want %v", i, task.Deadline, wantDL)
		}
		if task.U <= 0 || task.U >= 1 {
			t.Fatalf("task %d quantile %v outside (0,1)", i, task.U)
		}
		if task.Priority != 1 {
			t.Fatalf("task %d priority %v, want 1", i, task.Priority)
		}
	}
}

func TestGenerateTrialDeterministicAndVarying(t *testing.T) {
	m := buildTestModel(t, 6)
	a, _ := GenerateTrial(randx.NewStream(9), m)
	b, _ := GenerateTrial(randx.NewStream(9), m)
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatal("trial generation not deterministic")
		}
	}
	c, _ := GenerateTrial(randx.NewStream(10), m)
	same := true
	for i := range a.Tasks {
		if a.Tasks[i] != c.Tasks[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical trials")
	}
}

func TestActualExecTime(t *testing.T) {
	m := buildTestModel(t, 8)
	tr, _ := GenerateTrial(randx.NewStream(3), m)
	task := tr.Tasks[0]
	for ni := 0; ni < m.Cluster.N(); ni++ {
		t0 := m.ActualExecTime(task, ni, cluster.P0)
		t4 := m.ActualExecTime(task, ni, cluster.P4)
		if t0 <= 0 {
			t.Fatalf("non-positive exec time %v", t0)
		}
		// Same quantile at a slower P-state must take at least as long.
		if t4 < t0 {
			t.Fatalf("P4 time %v < P0 time %v for same quantile", t4, t0)
		}
		p := m.ExecPMF(task.Type, ni, cluster.P0)
		if t0 < p.Min() || t0 > p.Max() {
			t.Fatalf("actual time %v outside pmf support [%v,%v]", t0, p.Min(), p.Max())
		}
	}
}

func TestGenerateTrialWithPriorities(t *testing.T) {
	m := buildTestModel(t, 11)
	classes := []PriorityClass{
		{Weight: 4, Fraction: 0.25},
		{Weight: 1, Fraction: 0.75},
	}
	tr, err := GenerateTrialWithPriorities(randx.NewStream(5), m, classes)
	if err != nil {
		t.Fatal(err)
	}
	hi := 0
	for _, task := range tr.Tasks {
		switch task.Priority {
		case 4:
			hi++
		case 1:
		default:
			t.Fatalf("unexpected priority %v", task.Priority)
		}
	}
	if hi == 0 || hi == len(tr.Tasks) {
		t.Fatalf("degenerate priority split: %d high of %d", hi, len(tr.Tasks))
	}
	// Bad class mixes are rejected.
	if _, err := GenerateTrialWithPriorities(randx.NewStream(5), m, []PriorityClass{{Weight: 1, Fraction: 0.5}}); err == nil {
		t.Fatal("expected error for fractions not summing to 1")
	}
	if _, err := GenerateTrialWithPriorities(randx.NewStream(5), m, []PriorityClass{{Weight: 0, Fraction: 1}}); err == nil {
		t.Fatal("expected error for zero weight")
	}
	// Empty class list leaves priorities at 1.
	tr2, err := GenerateTrialWithPriorities(randx.NewStream(5), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tr2.Tasks {
		if task.Priority != 1 {
			t.Fatal("nil classes should leave priority 1")
		}
	}
}

func TestTaskString(t *testing.T) {
	task := Task{ID: 3, Type: 9, Arrival: 1.5, Deadline: 100}
	if task.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestBuildModelRejectsBadInput(t *testing.T) {
	s := randx.NewStream(1)
	c, _ := cluster.Generate(s.Child("c"), cluster.PaperGenParams())
	p := testParams()
	p.TaskTypes = 0
	if _, err := BuildModel(s, c, p); err == nil {
		t.Fatal("expected error for bad params")
	}
	if _, err := BuildModel(s, &cluster.Cluster{}, testParams()); err == nil {
		t.Fatal("expected error for invalid cluster")
	}
}
