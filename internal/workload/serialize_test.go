package workload

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/randx"
)

func TestModelJSONRoundTrip(t *testing.T) {
	m := buildTestModel(t, 50)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModelJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TAvg() != m.TAvg() {
		t.Fatalf("tAvg %v, want %v", got.TAvg(), m.TAvg())
	}
	if got.FastRate() != m.FastRate() || got.SlowRate() != m.SlowRate() {
		t.Fatal("rates changed in round trip")
	}
	if got.Cluster.TotalCores() != m.Cluster.TotalCores() {
		t.Fatal("cluster changed in round trip")
	}
	for ti := 0; ti < m.Params.TaskTypes; ti++ {
		if got.TypeMeanExec(ti) != m.TypeMeanExec(ti) {
			t.Fatalf("type %d mean changed", ti)
		}
		for ni := 0; ni < m.Cluster.N(); ni++ {
			for _, ps := range cluster.AllPStates() {
				a := m.ExecPMF(ti, ni, ps)
				b := got.ExecPMF(ti, ni, ps)
				if !a.ApproxEqual(b, 1e-12) {
					t.Fatalf("pmf (%d,%d,%v) changed in round trip", ti, ni, ps)
				}
			}
		}
	}
	// The loaded model is usable: trials generate identically.
	trA, err := GenerateTrial(randx.NewStream(9), m)
	if err != nil {
		t.Fatal(err)
	}
	trB, err := GenerateTrial(randx.NewStream(9), got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range trA.Tasks {
		if trA.Tasks[i] != trB.Tasks[i] {
			t.Fatal("loaded model generates different trials")
		}
	}
}

func TestReadModelJSONRejectsCorruption(t *testing.T) {
	m := buildTestModel(t, 51)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	corrupt := func(mut func(map[string]json.RawMessage)) string {
		c := make(map[string]json.RawMessage, len(doc))
		for k, v := range doc {
			c[k] = v
		}
		mut(c)
		out, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	cases := map[string]string{
		"missing cluster": corrupt(func(c map[string]json.RawMessage) { delete(c, "cluster") }),
		"bad tAvg":        corrupt(func(c map[string]json.RawMessage) { c["tAvg"] = json.RawMessage(`-1`) }),
		"bad rates":       corrupt(func(c map[string]json.RawMessage) { c["rates"] = json.RawMessage(`{"fast":0,"slow":1}`) }),
		"short table":     corrupt(func(c map[string]json.RawMessage) { c["table"] = json.RawMessage(`[]`) }),
		"short typeMean":  corrupt(func(c map[string]json.RawMessage) { c["typeMean"] = json.RawMessage(`[1]`) }),
		"negative mean": corrupt(func(c map[string]json.RawMessage) {
			c["typeMean"] = json.RawMessage(`[1,2,-3,4,5,6]`)
		}),
	}
	for name, body := range cases {
		if _, err := ReadModelJSON(strings.NewReader(body)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := ReadModelJSON(strings.NewReader(`{`)); err == nil {
		t.Error("expected error for malformed JSON")
	}
}

func TestReadModelJSONRejectsBadPMF(t *testing.T) {
	m := buildTestModel(t, 52)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Break one pmf by zeroing its probabilities through raw JSON surgery.
	body := buf.String()
	broken := strings.Replace(body, `"probs":[`, `"probs":[0,`, 1)
	if broken == body {
		t.Skip("no probs field found to corrupt")
	}
	if _, err := ReadModelJSON(strings.NewReader(broken)); err == nil {
		// The inserted 0 merely renormalizes if lengths still match; ensure
		// at least the length mismatch path rejects.
		t.Log("renormalization absorbed the corruption; acceptable")
	}
}
