package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/cluster"
	"repro/internal/pmf"
)

// Model serialization. §III-B assumes execution-time pmfs "may in practice
// be obtained by historical, experimental, or analytical techniques"; this
// file is that workflow's interface: a built Model — cluster, parameters,
// and the complete per-(type, node, P-state) pmf table — round-trips
// through JSON, so profiles measured elsewhere can be loaded and simulated,
// and generated models can be pinned as artifacts.

// jsonModel is the wire form of a Model.
type jsonModel struct {
	Params   Params             `json:"params"`
	Cluster  *cluster.Cluster   `json:"cluster"`
	Table    [][][]pmf.PMF      `json:"table"`
	TypeMean []float64          `json:"typeMean"`
	TAvg     float64            `json:"tAvg"`
	Rates    map[string]float64 `json:"rates"`
}

// WriteJSON serializes the model.
func (m *Model) WriteJSON(w io.Writer) error {
	jm := jsonModel{
		Params:   m.Params,
		Cluster:  m.Cluster,
		Table:    m.table,
		TypeMean: m.typeMean,
		TAvg:     m.tAvg,
		Rates:    map[string]float64{"fast": m.fastRate, "slow": m.slowRate},
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&jm); err != nil {
		return fmt.Errorf("workload: encode model: %w", err)
	}
	return nil
}

// Hash fingerprints the model: a short hex digest over its serialized
// form (cluster, parameters, and the full pmf table). Two models with the
// same hash produce identical schedules; the flight recorder stamps it
// into trace headers so replay can refuse a mismatched rebuild. Map keys
// are sorted by encoding/json, so the digest is deterministic.
func (m *Model) Hash() string {
	h := sha256.New()
	if err := m.WriteJSON(h); err != nil {
		// WriteJSON to a hash cannot fail on I/O; an encode failure means
		// an unserializable model, which the constructors never build.
		return "unhashable"
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}

// ReadModelJSON deserializes and validates a model. The pmf table must be
// complete and consistent with the cluster and parameters.
func ReadModelJSON(r io.Reader) (*Model, error) {
	var jm jsonModel
	if err := json.NewDecoder(r).Decode(&jm); err != nil {
		return nil, fmt.Errorf("workload: decode model: %w", err)
	}
	if jm.Cluster == nil {
		return nil, fmt.Errorf("workload: decode model: missing cluster")
	}
	if err := jm.Cluster.Validate(); err != nil {
		return nil, fmt.Errorf("workload: decode model: %w", err)
	}
	if err := jm.Params.Validate(); err != nil {
		return nil, fmt.Errorf("workload: decode model: %w", err)
	}
	p := jm.Params
	if len(jm.Table) != p.TaskTypes {
		return nil, fmt.Errorf("workload: decode model: table has %d task types, params say %d", len(jm.Table), p.TaskTypes)
	}
	if len(jm.TypeMean) != p.TaskTypes {
		return nil, fmt.Errorf("workload: decode model: %d type means for %d types", len(jm.TypeMean), p.TaskTypes)
	}
	for ti, byNode := range jm.Table {
		if len(byNode) != jm.Cluster.N() {
			return nil, fmt.Errorf("workload: decode model: type %d has %d nodes, cluster has %d", ti, len(byNode), jm.Cluster.N())
		}
		for ni, byState := range byNode {
			if len(byState) != cluster.NumPStates {
				return nil, fmt.Errorf("workload: decode model: type %d node %d has %d P-states", ti, ni, len(byState))
			}
			for si, dist := range byState {
				if err := dist.Validate(); err != nil {
					return nil, fmt.Errorf("workload: decode model: pmf (%d,%d,P%d): %w", ti, ni, si, err)
				}
			}
		}
	}
	for ti, m := range jm.TypeMean {
		// The negated comparison rejects NaN, which passes every ordering
		// test and would otherwise corrupt arrival calibration silently.
		if !(m > 0) || math.IsInf(m, 0) {
			return nil, fmt.Errorf("workload: decode model: type %d mean %v must be positive and finite", ti, m)
		}
	}
	if !(jm.TAvg > 0) || math.IsInf(jm.TAvg, 0) {
		return nil, fmt.Errorf("workload: decode model: tAvg %v must be positive and finite", jm.TAvg)
	}
	fast, slow := jm.Rates["fast"], jm.Rates["slow"]
	if !(fast > 0 && slow > 0) || math.IsInf(fast, 0) || math.IsInf(slow, 0) {
		return nil, fmt.Errorf("workload: decode model: rates %v must be positive and finite", jm.Rates)
	}
	m := &Model{
		Params:   p,
		Cluster:  jm.Cluster,
		table:    jm.Table,
		typeMean: jm.TypeMean,
		tAvg:     jm.TAvg,
		fastRate: fast,
		slowRate: slow,
		classOf:  assignClasses(p.Classes, p.TaskTypes),
	}
	m.buildMeans()
	return m, nil
}
