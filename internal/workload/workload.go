// Package workload implements the paper's workload model (§III-B, §VI): a
// window of independent tasks whose types are drawn from a finite set of
// well-known task types, whose execution times are stochastic (one pmf per
// task type × node × P-state), which arrive in Poisson bursts
// (fast–slow–fast), and which each carry a hard individual deadline.
package workload

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/cvb"
	"repro/internal/pmf"
	"repro/internal/randx"
)

// Params configures the workload model and trial generation.
type Params struct {
	// TaskTypes is the number of well-known task types (paper: 100).
	TaskTypes int
	// WindowSize is the number of tasks per trial (paper: 1,000).
	WindowSize int
	// CVB parameterizes the heterogeneity of mean execution times.
	CVB cvb.Params
	// ExecCV is the within-type coefficient of variation of the execution
	// time on a fixed (node, P-state): the stochastic spread coming from
	// input data and cache effects (§III-B). The paper generates "a
	// distribution describing the execution time of each task type on each
	// machine using the CVB method" with V_mach = 0.25; we read the
	// machine-level coefficient of variation as that spread, so the default
	// is 0.25.
	ExecCV float64
	// PMFBins bounds the support size of each generated execution-time pmf.
	PMFBins int
	// PMFSamples is how many gamma draws are histogrammed per pmf.
	PMFSamples int
	// FastRate is λ_fast (paper: 1/8), SlowRate is λ_slow (paper: 1/48).
	// These absolute values are used only when CalibrateRates is false.
	FastRate, SlowRate float64
	// CalibrateRates derives the arrival rates from the generated cluster
	// instead of using the absolute FastRate/SlowRate. §VI defines the
	// equilibrium rate λ_eq as the rate at which the system is *perfectly
	// subscribed* (all tasks complete by their deadlines with no energy to
	// spare); for a cluster of C cores whose average task occupies a core
	// for t_avg time units this is λ_eq = C/t_avg (full utilization at the
	// average P-state, which by the ζ_max construction also exhausts the
	// budget exactly). The burst rates preserve the paper's ratios:
	// λ_fast = FastFactor·λ_eq and λ_slow = SlowFactor·λ_eq, with the paper
	// at FastFactor = (1/8)/(1/28) = 3.5 and SlowFactor = (1/48)/(1/28).
	// This reproduces the paper's experiment *design* on any generated
	// instance rather than its instance-specific constants.
	CalibrateRates bool
	// FastFactor/SlowFactor are the calibrated-rate multiples of λ_eq.
	FastFactor, SlowFactor float64
	// BurstLen is the number of tasks in each of the leading and trailing
	// fast bursts (paper: 200); the remaining WindowSize-2·BurstLen tasks
	// arrive at SlowRate.
	BurstLen int
	// LoadFactorMult scales the deadline "load factor": the deadline slack
	// is LoadFactorMult × t_avg. The paper uses exactly 1.
	LoadFactorMult float64
	// Classes optionally partitions the task-type population into families
	// with their own mean scale and execution spread (§III-B's
	// compute/memory-intensive mix). Empty reproduces the paper's
	// homogeneous treatment.
	Classes []TypeClass
}

// PaperParams returns the workload parameters of §VI.
func PaperParams() Params {
	return Params{
		TaskTypes:      100,
		WindowSize:     1000,
		CVB:            cvb.PaperParams(),
		ExecCV:         0.25,
		PMFBins:        24,
		PMFSamples:     4000,
		FastRate:       1.0 / 8,
		SlowRate:       1.0 / 48,
		CalibrateRates: true,
		FastFactor:     (1.0 / 8) / EquilibriumRate,
		SlowFactor:     (1.0 / 48) / EquilibriumRate,
		BurstLen:       200,
		LoadFactorMult: 1,
	}
}

// EquilibriumRate is λ_eq from §VI, the rate at which the paper's system is
// perfectly subscribed. It is reported for reference; the simulation itself
// only uses FastRate and SlowRate.
const EquilibriumRate = 1.0 / 28

// Validate reports whether the parameters are usable. Comparisons are
// phrased as !(x > 0) rather than x <= 0 so NaN — which fails every
// ordering comparison — is rejected instead of slipping through.
func (p Params) Validate() error {
	switch {
	case p.TaskTypes < 1:
		return fmt.Errorf("workload: TaskTypes %d must be >= 1", p.TaskTypes)
	case p.WindowSize < 1:
		return fmt.Errorf("workload: WindowSize %d must be >= 1", p.WindowSize)
	case !(p.ExecCV > 0) || math.IsInf(p.ExecCV, 0):
		return fmt.Errorf("workload: ExecCV %v must be positive and finite", p.ExecCV)
	case p.PMFBins < 1:
		return fmt.Errorf("workload: PMFBins %d must be >= 1", p.PMFBins)
	case p.PMFSamples < 2:
		return fmt.Errorf("workload: PMFSamples %d must be >= 2", p.PMFSamples)
	case !p.CalibrateRates && !(p.FastRate > 0 && p.SlowRate > 0):
		return fmt.Errorf("workload: rates must be > 0 (fast %v, slow %v)", p.FastRate, p.SlowRate)
	case p.CalibrateRates && !(p.FastFactor > 0 && p.SlowFactor > 0):
		return fmt.Errorf("workload: rate factors must be > 0 (fast %v, slow %v)", p.FastFactor, p.SlowFactor)
	case p.BurstLen < 0 || 2*p.BurstLen > p.WindowSize:
		return fmt.Errorf("workload: BurstLen %d incompatible with window %d", p.BurstLen, p.WindowSize)
	case !(p.LoadFactorMult >= 0) || math.IsInf(p.LoadFactorMult, 0):
		return fmt.Errorf("workload: LoadFactorMult %v must be >= 0 and finite", p.LoadFactorMult)
	}
	if err := validateClasses(p.Classes); err != nil {
		return err
	}
	return p.CVB.Validate()
}

// Phases returns the piecewise-rate arrival schedule — fast burst, lull,
// fast burst (§VI) — for explicit fast/slow rates.
func (p Params) phasesFor(fast, slow float64) []randx.RatePhase {
	return []randx.RatePhase{
		{Rate: fast, Count: p.BurstLen},
		{Rate: slow, Count: p.WindowSize - 2*p.BurstLen},
		{Rate: fast, Count: p.BurstLen},
	}
}

// Phases returns the arrival schedule built from the absolute
// FastRate/SlowRate values (ignoring calibration). Prefer
// Model.ArrivalPhases, which honors CalibrateRates.
func (p Params) Phases() []randx.RatePhase {
	return p.phasesFor(p.FastRate, p.SlowRate)
}

// Model holds everything that is fixed across simulation trials: the
// execution-time pmf for every (task type, node, P-state) combination, the
// per-type average execution times used for deadlines, and t_avg.
type Model struct {
	Params  Params
	Cluster *cluster.Cluster

	// table[type][node][pstate] is the execution-time pmf.
	table [][][]pmf.PMF
	// mean[type][node][pstate] is table[type][node][pstate].Mean(),
	// precomputed because candidate enumeration reads the EET of every
	// (type, core, P-state) combination on every mapping decision.
	mean [][][]float64
	// typeMean[type] is the mean execution time of the type over all nodes
	// and all P-states (the deadline offset of §VI).
	typeMean []float64
	// tAvg is the grand mean over all types, nodes, and P-states (§VI).
	tAvg float64
	// fastRate/slowRate are the effective arrival rates (calibrated to the
	// cluster when Params.CalibrateRates is set, absolute otherwise).
	fastRate, slowRate float64
	// classOf[type] indexes Params.Classes (nil without classes).
	classOf []int
}

// BuildModel constructs the fixed workload model: a CVB ETC matrix gives
// the mean execution time of each type on each node at P0; each
// (type, node) pmf is a histogram of gamma draws around that mean with
// coefficient of variation ExecCV; P-state variants scale the P0 pmf by the
// node's execution-time multiplier (§VI).
func BuildModel(s *randx.Stream, c *cluster.Cluster, p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	etc, err := cvb.Generate(s.Child("etc"), p.TaskTypes, c.N(), p.CVB)
	if err != nil {
		return nil, err
	}
	m := &Model{
		Params:   p,
		Cluster:  c,
		table:    make([][][]pmf.PMF, p.TaskTypes),
		typeMean: make([]float64, p.TaskTypes),
	}
	m.classOf = assignClasses(p.Classes, p.TaskTypes)
	ps := s.Child("pmfs")
	samples := make([]float64, p.PMFSamples)
	grand := 0.0
	for ti := 0; ti < p.TaskTypes; ti++ {
		meanScale, execCV := 1.0, p.ExecCV
		if m.classOf != nil {
			cl := p.Classes[m.classOf[ti]]
			meanScale = cl.MeanScale
			if cl.ExecCV > 0 {
				execCV = cl.ExecCV
			}
		}
		m.table[ti] = make([][]pmf.PMF, c.N())
		typeSum := 0.0
		for ni := 0; ni < c.N(); ni++ {
			mean := etc.At(ti, ni) * meanScale
			st := ps.ChildN(fmt.Sprintf("t%d/n", ti), ni)
			for k := range samples {
				samples[k] = st.GammaMeanCV(mean, execCV)
			}
			base, err := pmf.FromSamples(samples, p.PMFBins)
			if err != nil {
				return nil, fmt.Errorf("workload: pmf for type %d node %d: %w", ti, ni, err)
			}
			node := &c.Nodes[ni]
			row := make([]pmf.PMF, cluster.NumPStates)
			for _, st := range cluster.AllPStates() {
				row[st] = base.ScaleTime(node.TimeMult(st))
				typeSum += row[st].Mean()
			}
			m.table[ti][ni] = row
		}
		m.typeMean[ti] = typeSum / float64(c.N()*cluster.NumPStates)
		grand += m.typeMean[ti]
	}
	m.tAvg = grand / float64(p.TaskTypes)
	m.buildMeans()
	if p.CalibrateRates {
		eq := m.EquilibriumRate()
		m.fastRate = p.FastFactor * eq
		m.slowRate = p.SlowFactor * eq
	} else {
		m.fastRate = p.FastRate
		m.slowRate = p.SlowRate
	}
	return m, nil
}

// EquilibriumRate returns λ_eq for this instance: the arrival rate at which
// the cluster is perfectly subscribed when the average task occupies one
// core for t_avg time units — C/t_avg for C total cores. At this rate the
// cluster runs at full utilization at the average P-state, which by the
// ζ_max construction (§VI) also exhausts the energy budget exactly.
func (m *Model) EquilibriumRate() float64 {
	return float64(m.Cluster.TotalCores()) / m.tAvg
}

// FastRate returns the effective burst arrival rate λ_fast.
func (m *Model) FastRate() float64 { return m.fastRate }

// SlowRate returns the effective lull arrival rate λ_slow.
func (m *Model) SlowRate() float64 { return m.slowRate }

// ArrivalPhases returns the trial arrival schedule at the effective rates.
func (m *Model) ArrivalPhases() []randx.RatePhase {
	return m.Params.phasesFor(m.fastRate, m.slowRate)
}

// ExecPMF returns the execution-time pmf of the given task type on a core
// of the given node in the given P-state.
func (m *Model) ExecPMF(taskType, node int, p cluster.PState) pmf.PMF {
	return m.table[taskType][node][p]
}

// ExecMean returns ExecPMF(taskType, node, p).Mean() from the precomputed
// table — the EET of a candidate assignment, sans the O(support) sum.
func (m *Model) ExecMean(taskType, node int, p cluster.PState) float64 {
	return m.mean[taskType][node][p]
}

// buildMeans fills the precomputed mean table from the pmf table.
func (m *Model) buildMeans() {
	m.mean = make([][][]float64, len(m.table))
	for ti, byNode := range m.table {
		m.mean[ti] = make([][]float64, len(byNode))
		for ni, row := range byNode {
			means := make([]float64, len(row))
			for st, p := range row {
				means[st] = p.Mean()
			}
			m.mean[ti][ni] = means
		}
	}
}

// TypeMeanExec returns the average execution time of the task type over all
// nodes and all P-states — the per-task deadline offset (§VI).
func (m *Model) TypeMeanExec(taskType int) float64 { return m.typeMean[taskType] }

// TAvg returns t_avg, the average execution time over all task types,
// nodes, and P-states (§VI; ≈1353 in the paper's instance).
func (m *Model) TAvg() float64 { return m.tAvg }

// Slice builds a sub-model owning only the given node indices: the cluster
// shrinks to those nodes and the pmf table keeps only their columns, while
// the per-type deadline offsets, t_avg, and arrival rates stay those of the
// parent. Deadlines and calibration are global properties of the workload —
// a task is no easier because it landed on a smaller shard — so a set of
// slices partitioning the parent admits the same tasks under the same
// deadlines as the parent itself. Node indices must be distinct, in-range,
// and non-empty; they need not be contiguous. The slice shares the parent's
// pmf rows (pmfs are immutable after build), and its Hash() differs from
// the parent's because the serialized cluster and table differ.
func (m *Model) Slice(nodes []int) (*Model, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("workload: Slice: empty node set")
	}
	seen := make(map[int]bool, len(nodes))
	sub := &Model{
		Params:   m.Params,
		Cluster:  &cluster.Cluster{Nodes: make([]cluster.Node, len(nodes))},
		table:    make([][][]pmf.PMF, len(m.table)),
		typeMean: m.typeMean,
		tAvg:     m.tAvg,
		fastRate: m.fastRate,
		slowRate: m.slowRate,
		classOf:  m.classOf,
	}
	for j, ni := range nodes {
		if ni < 0 || ni >= m.Cluster.N() {
			return nil, fmt.Errorf("workload: Slice: node %d out of range [0,%d)", ni, m.Cluster.N())
		}
		if seen[ni] {
			return nil, fmt.Errorf("workload: Slice: duplicate node %d", ni)
		}
		seen[ni] = true
		sub.Cluster.Nodes[j] = m.Cluster.Nodes[ni]
	}
	for ti := range m.table {
		row := make([][]pmf.PMF, len(nodes))
		for j, ni := range nodes {
			row[j] = m.table[ti][ni]
		}
		sub.table[ti] = row
	}
	sub.buildMeans()
	return sub, nil
}

// DefaultEnergyBudget returns ζ_max = t_avg × p_avg × WindowSize (§VI): the
// energy needed to run an average task at average power once per window
// task. By construction it is insufficient to run the whole window at high
// P-states, forcing the heuristics to trade performance for energy.
func (m *Model) DefaultEnergyBudget() float64 {
	return m.tAvg * m.Cluster.AvgPower() * float64(m.Params.WindowSize)
}
