package workload

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/randx"
)

func TestAssignClassesProportions(t *testing.T) {
	classes := []TypeClass{
		{Name: "a", Fraction: 0.5, MeanScale: 1},
		{Name: "b", Fraction: 0.3, MeanScale: 1},
		{Name: "c", Fraction: 0.2, MeanScale: 1},
	}
	got := assignClasses(classes, 100)
	counts := map[int]int{}
	for _, ci := range got {
		counts[ci]++
	}
	if counts[0] != 50 || counts[1] != 30 || counts[2] != 20 {
		t.Fatalf("counts %v, want 50/30/20", counts)
	}
	// Rounding slack is apportioned (largest remainder), totals exact.
	got = assignClasses(classes, 7)
	total := 0
	counts = map[int]int{}
	for _, ci := range got {
		counts[ci]++
		total++
	}
	if total != 7 {
		t.Fatalf("assigned %d types, want 7", total)
	}
	if assignClasses(nil, 10) != nil {
		t.Fatal("nil classes should produce nil assignment")
	}
}

func TestValidateClasses(t *testing.T) {
	bad := [][]TypeClass{
		{{Name: "", Fraction: 1, MeanScale: 1}},
		{{Name: "a", Fraction: 0.5, MeanScale: 1}},                                           // sums to 0.5
		{{Name: "a", Fraction: 0.5, MeanScale: 1}, {Name: "a", Fraction: 0.5, MeanScale: 1}}, // duplicate
		{{Name: "a", Fraction: 1, MeanScale: 0}},
		{{Name: "a", Fraction: 1, MeanScale: 1, ExecCV: -1}},
		{{Name: "a", Fraction: 1.5, MeanScale: 1}},
	}
	for i, cs := range bad {
		if err := validateClasses(cs); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if err := validateClasses(nil); err != nil {
		t.Fatal("nil classes must validate")
	}
	if err := validateClasses(PaperClassMix()); err != nil {
		t.Fatal(err)
	}
}

func buildClassModel(t *testing.T, seed uint64) *Model {
	t.Helper()
	s := randx.NewStream(seed)
	c, err := cluster.Generate(s.Child("cluster"), cluster.PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	p.TaskTypes = 30
	p.Classes = PaperClassMix()
	m, err := BuildModel(s.Child("wl"), c, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestClassModelBuild(t *testing.T) {
	m := buildClassModel(t, 60)
	counts := map[string]int{}
	for ti := 0; ti < m.Params.TaskTypes; ti++ {
		name := m.ClassOf(ti)
		if name == "" {
			t.Fatalf("type %d has no class", ti)
		}
		counts[name]++
	}
	if counts["compute"] != 15 || counts["memory"] != 10 || counts["io"] != 5 {
		t.Fatalf("class counts %v, want 15/10/5", counts)
	}
}

func TestClassMeanScaleAndSpread(t *testing.T) {
	m := buildClassModel(t, 61)
	// Average normalized spread (CV of the pmf) per class must order as
	// configured: io (0.5) > memory (0.35) > compute (0.15); and compute
	// types must be longer on average than io types (mean scale 1.3 vs 0.5).
	stats := map[string]struct {
		cv, mean float64
		n        int
	}{}
	for ti := 0; ti < m.Params.TaskTypes; ti++ {
		name := m.ClassOf(ti)
		p := m.ExecPMF(ti, 0, cluster.P0)
		st := stats[name]
		st.cv += p.StdDev() / p.Mean()
		st.mean += p.Mean()
		st.n++
		stats[name] = st
	}
	avg := func(name string) (cv, mean float64) {
		st := stats[name]
		return st.cv / float64(st.n), st.mean / float64(st.n)
	}
	ccv, cmean := avg("compute")
	mcv, _ := avg("memory")
	icv, imean := avg("io")
	if !(icv > mcv && mcv > ccv) {
		t.Fatalf("spread ordering wrong: io %v, memory %v, compute %v", icv, mcv, ccv)
	}
	if cmean <= imean {
		t.Fatalf("compute mean %v not above io mean %v", cmean, imean)
	}
	if cmean/imean < 1.5 {
		t.Fatalf("mean scale ratio %v too small for 1.3/0.5 configuration", cmean/imean)
	}
}

func TestClassOfWithoutClasses(t *testing.T) {
	m := buildTestModel(t, 62)
	if m.ClassOf(0) != "" {
		t.Fatal("classless model should report empty class")
	}
}

func TestClassModelRoundTripsJSON(t *testing.T) {
	m := buildClassModel(t, 63)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModelJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Class metadata travels via Params and the type→class mapping is
	// rebuilt deterministically on load.
	if len(got.Params.Classes) != 3 {
		t.Fatalf("classes lost in round trip: %+v", got.Params.Classes)
	}
	for ti := 0; ti < m.Params.TaskTypes; ti++ {
		if got.ClassOf(ti) != m.ClassOf(ti) {
			t.Fatalf("class of type %d changed in round trip", ti)
		}
	}
}
