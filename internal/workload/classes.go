package workload

import (
	"fmt"
	"sort"
)

// Task-type classes. §III-B: "The different task types may stress
// different parts of the system, i.e., some task types may be
// compute-intensive, others may be memory-intensive, etc." The paper's
// evaluation treats all 100 types identically; this file lets a workload
// declare families of types with their own scale and stochastic spread —
// e.g. long compute-bound types with narrow distributions next to shorter
// memory-bound types whose cache sensitivity widens them.

// TypeClass describes one family of task types.
type TypeClass struct {
	// Name labels the class ("compute", "memory", ...).
	Name string
	// Fraction is the share of the task-type population in this class;
	// fractions must sum to 1.
	Fraction float64
	// MeanScale multiplies the CVB mean execution time of the class's
	// types (1 = unchanged).
	MeanScale float64
	// ExecCV overrides Params.ExecCV for the class's types; 0 keeps the
	// workload default.
	ExecCV float64
}

// Validate reports whether the class is usable.
func (c TypeClass) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("workload: type class needs a name")
	}
	if c.Fraction < 0 || c.Fraction > 1 {
		return fmt.Errorf("workload: class %q fraction %v outside [0,1]", c.Name, c.Fraction)
	}
	if c.MeanScale <= 0 {
		return fmt.Errorf("workload: class %q mean scale %v must be > 0", c.Name, c.MeanScale)
	}
	if c.ExecCV < 0 {
		return fmt.Errorf("workload: class %q ExecCV %v must be >= 0", c.Name, c.ExecCV)
	}
	return nil
}

// validateClasses checks a class mix.
func validateClasses(classes []TypeClass) error {
	if len(classes) == 0 {
		return nil
	}
	total := 0.0
	seen := map[string]bool{}
	for _, c := range classes {
		if err := c.Validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("workload: duplicate class name %q", c.Name)
		}
		seen[c.Name] = true
		total += c.Fraction
	}
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("workload: class fractions sum to %v, want 1", total)
	}
	return nil
}

// assignClasses maps each task-type index to a class index,
// deterministically and proportionally: class k receives
// round(Fraction_k · types) consecutive indices (the last class absorbs
// rounding slack). Returns nil when no classes are configured.
func assignClasses(classes []TypeClass, types int) []int {
	if len(classes) == 0 {
		return nil
	}
	out := make([]int, types)
	// Largest-remainder apportionment keeps proportions exact.
	counts := make([]int, len(classes))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(classes))
	used := 0
	for i, c := range classes {
		exact := c.Fraction * float64(types)
		counts[i] = int(exact)
		rems[i] = rem{i, exact - float64(counts[i])}
		used += counts[i]
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for k := 0; used < types; k++ {
		counts[rems[k%len(rems)].idx]++
		used++
	}
	ti := 0
	for ci, n := range counts {
		for j := 0; j < n && ti < types; j++ {
			out[ti] = ci
			ti++
		}
	}
	return out
}

// ClassOf returns the class name of a task type, or "" when the workload
// has no class structure.
func (m *Model) ClassOf(taskType int) string {
	if len(m.classOf) == 0 {
		return ""
	}
	return m.Params.Classes[m.classOf[taskType]].Name
}

// PaperClassMix is a representative §III-B-style mix: half compute-bound
// types (long, narrow distributions), a third memory-bound types (shorter,
// wide distributions from cache sensitivity), and the rest I/O-adjacent
// types (short, widest).
func PaperClassMix() []TypeClass {
	return []TypeClass{
		{Name: "compute", Fraction: 0.5, MeanScale: 1.3, ExecCV: 0.15},
		{Name: "memory", Fraction: 1.0 / 3, MeanScale: 0.8, ExecCV: 0.35},
		{Name: "io", Fraction: 1.0 - 0.5 - 1.0/3, MeanScale: 0.5, ExecCV: 0.5},
	}
}
