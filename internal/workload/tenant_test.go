package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/randx"
)

func TestParseSLOClass(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SLOClass
		ok   bool
	}{
		{"", SLOBronze, true},
		{"bronze", SLOBronze, true},
		{"silver", SLOSilver, true},
		{"gold", SLOGold, true},
		{"platinum", SLOBronze, false},
		{"Gold", SLOBronze, false},
	} {
		got, err := ParseSLOClass(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseSLOClass(%q) = %v, %v", tc.in, got, err)
		}
	}
	if SLOGold.SlackMult() >= SLOSilver.SlackMult() || SLOSilver.SlackMult() >= SLOBronze.SlackMult() {
		t.Fatal("slack multipliers must tighten with class")
	}
}

func TestParseTenantSpec(t *testing.T) {
	spec, err := ParseTenantSpec([]byte(`{"tenants":[
		{"id":"gold-a","slo":"gold","mult":1,"rateLimit":2,"queueShare":0.5},
		{"id":"flood","profile":"deadline-flood","mult":4}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Tenants) != 2 || spec.Tenants[0].Class() != SLOGold {
		t.Fatalf("spec wrong: %+v", spec)
	}
	if !spec.Tenants[1].Adversarial() || spec.Tenants[0].Adversarial() {
		t.Fatal("Adversarial() misclassifies")
	}

	for _, tc := range []struct {
		name, in, wantErr string
	}{
		{"empty", `{}`, "no tenants"},
		{"dup id echoes key", `{"tenants":[{"id":"x"},{"id":"x"}]}`, `duplicate tenant id "x"`},
		{"negative mult", `{"tenants":[{"id":"x","mult":-1}]}`, "must be >= 0"},
		{"bad class", `{"tenants":[{"id":"x","slo":"platinum"}]}`, "unknown SLO class"},
		{"bad profile", `{"tenants":[{"id":"x","profile":"ddos"}]}`, "unknown profile"},
		{"share > 1", `{"tenants":[{"id":"x","queueShare":1.5}]}`, "must be <= 1"},
		{"swing >= 1", `{"tenants":[{"id":"x","swing":1}]}`, "must be < 1"},
		{"unknown field", `{"tenants":[{"id":"x","boost":9}]}`, "unknown field"},
		{"trailing data", `{"tenants":[{"id":"x"}]}{}`, "trailing data"},
		{"bad id", `{"tenants":[{"id":"a b"}]}`, "non-printable or reserved"},
		{"empty id", `{"tenants":[{"id":""}]}`, "non-empty"},
	} {
		_, err := ParseTenantSpec([]byte(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

// JSON cannot carry NaN, so the NaN guard is only reachable through direct
// construction — which ecserve/ecload never do, but validate() is exported
// behavior via ParseTenantSpec and must hold on its own.
func TestTenantValidateRejectsNaN(t *testing.T) {
	p := TenantProfile{ID: "x", Mult: math.NaN()}
	if err := p.validate(); err == nil || !strings.Contains(err.Error(), "mult") {
		t.Fatalf("NaN mult accepted: %v", err)
	}
	p = TenantProfile{ID: "x", RateLimit: math.Inf(1)}
	if err := p.validate(); err == nil {
		t.Fatal("Inf rateLimit accepted")
	}
}

func TestTenantArrivals(t *testing.T) {
	root := randx.NewStream(7)
	for _, profile := range []string{ProfileCompliant, ProfileDiurnal, ProfileDeadlineFlood, ProfileBurstAbuse} {
		p := TenantProfile{ID: "t", Profile: profile, Mult: 2}
		arr, err := p.Arrivals(root.Child("tenant:"+profile), 200, 1.4)
		if err != nil {
			t.Fatalf("%s: %v", profile, err)
		}
		if len(arr) != 200 {
			t.Fatalf("%s: %d arrivals", profile, len(arr))
		}
		for i, a := range arr {
			if !(a >= 0) || math.IsInf(a, 0) {
				t.Fatalf("%s: arrival[%d] = %v", profile, i, a)
			}
			if i > 0 && a < arr[i-1] {
				t.Fatalf("%s: arrivals not monotone at %d: %v < %v", profile, i, a, arr[i-1])
			}
		}
	}
	// Zero offered load cannot generate arrivals.
	p := TenantProfile{ID: "t", Mult: 0}
	if _, err := p.Arrivals(root.Child("z"), 10, 1.4); err == nil {
		t.Fatal("zero-rate arrivals accepted")
	}
	// Draws are stream-isolated: the same child seed yields the same arrivals
	// regardless of what other children consumed.
	a1, _ := TenantProfile{ID: "g", Mult: 1}.Arrivals(randx.NewStream(9).Child("tenant:g"), 50, 1.4)
	other := randx.NewStream(9)
	other.Child("tenant:attacker").Float64()
	a2, _ := TenantProfile{ID: "g", Mult: 1}.Arrivals(other.Child("tenant:g"), 50, 1.4)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("arrival streams not isolated at %d: %v vs %v", i, a1[i], a2[i])
		}
	}
}

// FuzzTenantSpec feeds arbitrary bytes to the tenant-spec loader. Contract:
// ParseTenantSpec never panics, and every spec it accepts is safe for both
// sides of the harness — tenant ids are unique, wire-safe, and bounded;
// every numeric knob is finite and non-negative (NaN and negative rates are
// rejected); classes and profiles parse; and duplicate ids were rejected
// with an error echoing the offending key.
func FuzzTenantSpec(f *testing.F) {
	f.Add([]byte(`{"tenants":[{"id":"gold-a","slo":"gold","mult":1}]}`))
	f.Add([]byte(`{"tenants":[{"id":"flood","profile":"deadline-flood","mult":4,"rateLimit":0.5}]}`))
	f.Add([]byte(`{"tenants":[{"id":"d","profile":"diurnal","period":40,"swing":0.9}]}`))
	f.Add([]byte(`{"tenants":[{"id":"x"},{"id":"x"}]}`))
	f.Add([]byte(`{"tenants":[{"id":"x","mult":-1}]}`))
	f.Add([]byte(`{"tenants":[{"id":"x","queueShare":2}]}`))
	f.Add([]byte(`{"tenants":[]}`))
	f.Add([]byte(`{"tenants":[{"id":"a b c"}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"tenants":[{"id":"x"}]}trailing`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseTenantSpec(data)
		if err != nil {
			return // rejected input: the only requirement is "no panic"
		}
		if len(spec.Tenants) == 0 {
			t.Fatalf("accepted spec with no tenants: %q", data)
		}
		seen := map[string]bool{}
		for _, p := range spec.Tenants {
			if verr := ValidTenantID(p.ID); verr != nil {
				t.Fatalf("accepted invalid id %q: %v (input %q)", p.ID, verr, data)
			}
			if seen[p.ID] {
				t.Fatalf("accepted duplicate id %q: %q", p.ID, data)
			}
			seen[p.ID] = true
			if _, cerr := ParseSLOClass(p.SLO); cerr != nil {
				t.Fatalf("accepted bad class %q: %q", p.SLO, data)
			}
			for _, v := range []float64{p.Mult, p.RateLimit, p.Burst, p.QueueShare, p.Period, p.Swing} {
				if !(v >= 0) || math.IsInf(v, 0) {
					t.Fatalf("accepted non-finite/negative knob %v: %q", v, data)
				}
			}
			if p.QueueShare > 1 || p.Swing >= 1 {
				t.Fatalf("accepted out-of-range share/swing: %+v (input %q)", p, data)
			}
		}
	})
}
