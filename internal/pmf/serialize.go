package pmf

import (
	"encoding/json"
	"fmt"
)

// jsonPMF is the wire form: parallel value/probability arrays.
type jsonPMF struct {
	Values []float64 `json:"values"`
	Probs  []float64 `json:"probs"`
}

// MarshalJSON encodes the PMF as {"values":[...],"probs":[...]}.
func (p PMF) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonPMF{Values: p.Values(), Probs: p.Probs()})
}

// FromJSON decodes and fully validates one PMF from JSON bytes: NaN or
// infinite values/probabilities, negative mass, and empty support are all
// rejected with descriptive errors (the New constructor's invariants),
// never propagated into downstream convolutions. It is the named entry
// point for loading externally-produced distributions.
func FromJSON(data []byte) (PMF, error) {
	var p PMF
	if err := p.UnmarshalJSON(data); err != nil {
		return PMF{}, err
	}
	return p, nil
}

// UnmarshalJSON decodes and validates a PMF; probabilities are renormalized
// exactly as in New.
func (p *PMF) UnmarshalJSON(data []byte) error {
	var j jsonPMF
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("pmf: decode: %w", err)
	}
	np, err := New(j.Values, j.Probs)
	if err != nil {
		return fmt.Errorf("pmf: decode: %w", err)
	}
	*p = np
	return nil
}
