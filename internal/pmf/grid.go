package pmf

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the fixed-grid ("lattice") fast path for the §IV-B
// convolution machinery. A sparse PMF is snapped once onto a lattice with a
// shared step; after that every operation the scheduler's hot path needs is
// integer-index arithmetic:
//
//   - convolution of two lattice distributions is exact and associative
//     (origins add, bin indices add), so a chain product can be cached and
//     extended in any association order without the compaction drift that
//     forces the sparse pipeline to keep whole left-associated chains;
//   - a CDF query is a single clamped prefix-sum lookup;
//   - ρ = P(H + W + E ≤ deadline) reduces to a double sum over the sparse
//     factors' impulses against the dense factor's prefix sums
//     (TripleConvCDF), with no completion PMF materialized at all.
//
// Two representations share the lattice:
//
//   - Lattice is sparse-on-grid: impulses at origin + idx[k]·step. Execution
//     PMFs (≤ a few dozen impulses) and truncated head stages stay in this
//     form, so convolving one into a dense product costs
//     len(impulses)·len(dense) multiply-adds with no sorting or bucketing.
//   - Grid is dense: a probability per consecutive bin plus prefix sums.
//     Chain products (the ⊛ of many execution PMFs) live here.
//
// Quantization contract: ToLattice moves each impulse by at most step/2
// (round-to-nearest bin). Convolving q snapped operands therefore yields a
// distribution whose CDF is bracketed by the exact CDF evaluated q·step/2
// to either side of the query point — the tolerance the grid-vs-exact
// property test asserts. Degenerate/identity factors are exact.

// Lattice is a discrete distribution on a fixed grid: impulses of mass
// prob[k] at origin + idx[k]·step, with idx strictly increasing. Like PMF it
// is immutable after construction and safe to share. The zero Lattice has no
// impulses.
type Lattice struct {
	origin float64
	step   float64
	idx    []int32
	prob   []float64
	cum    []float64 // cum[k] = prob[0] + … + prob[k]
}

// Grid is a dense distribution on a fixed grid: bin i holds mass probs[i] at
// value origin + i·step. cum holds the inclusive prefix sums, so a CDF query
// is one clamped lookup. nnz counts the non-zero bins, which drives the
// convolution dispatch. Immutable after construction.
type Grid struct {
	origin float64
	step   float64
	probs  []float64
	cum    []float64
	nnz    int
}

// ToLattice snaps p onto a lattice of the given step anchored at p.Min():
// each impulse moves to its nearest bin (|shift| ≤ step/2), impulses landing
// on the same bin merge by mass addition in ascending order. Total mass is
// the same float sum up to association of merged bins. Panics if step is not
// positive and finite; the zero PMF yields the zero Lattice.
func ToLattice(p PMF, step float64) Lattice {
	checkStep(step)
	if p.IsZero() {
		return Lattice{}
	}
	origin := p.vals[0]
	n := len(p.vals)
	idx := make([]int32, 0, n)
	prob := make([]float64, 0, n)
	inv := 1 / step
	for i := range p.vals {
		k := int32(math.Round((p.vals[i] - origin) * inv))
		if m := len(idx); m > 0 && idx[m-1] == k {
			prob[m-1] += p.probs[i]
			continue
		}
		idx = append(idx, k)
		prob = append(prob, p.probs[i])
	}
	return Lattice{origin: origin, step: step, idx: idx, prob: prob, cum: prefixSums(prob)}
}

// Shared backing slices for every point lattice: Lattice is immutable after
// construction, so the degenerate distribution differs only by origin and
// the hot path can mint one without allocating.
var (
	pointIdx  = []int32{0}
	pointProb = []float64{1}
)

// PointLattice is the degenerate lattice distribution concentrated at v.
// Allocation-free: the impulse slices are shared across all point lattices.
func PointLattice(v, step float64) Lattice {
	checkStep(step)
	return Lattice{origin: v, step: step, idx: pointIdx, prob: pointProb, cum: pointProb}
}

func checkStep(step float64) {
	if !(step > 0) || math.IsInf(step, 0) {
		panic(fmt.Sprintf("pmf: grid step %v must be positive and finite", step))
	}
}

func prefixSums(prob []float64) []float64 {
	cum := make([]float64, len(prob))
	s := 0.0
	for i, p := range prob {
		s += p
		cum[i] = s
	}
	return cum
}

// IsZero reports whether the lattice has no impulses.
func (l Lattice) IsZero() bool { return len(l.idx) == 0 }

// Len returns the number of impulses.
func (l Lattice) Len() int { return len(l.idx) }

// Step returns the lattice step.
func (l Lattice) Step() float64 { return l.step }

// Origin returns the lattice origin (the value of bin index 0).
func (l Lattice) Origin() float64 { return l.origin }

// Value returns the value of the k-th impulse.
func (l Lattice) Value(k int) float64 { return l.origin + float64(l.idx[k])*l.step }

// Prob returns the mass of the k-th impulse.
func (l Lattice) Prob(k int) float64 { return l.prob[k] }

// Min returns the smallest support value. Panics on the zero Lattice.
func (l Lattice) Min() float64 { return l.Value(0) }

// Mean returns the expectation.
func (l Lattice) Mean() float64 {
	if l.IsZero() {
		return math.NaN()
	}
	m := 0.0
	for k := range l.idx {
		m += l.prob[k] * l.Value(k)
	}
	return m
}

// TotalMass returns the sum of the impulse masses.
func (l Lattice) TotalMass() float64 {
	if l.IsZero() {
		return 0
	}
	return l.cum[len(l.cum)-1]
}

// Shift translates the distribution by dt. Only the origin moves; the
// impulse slices are shared with the receiver.
func (l Lattice) Shift(dt float64) Lattice {
	l.origin += dt
	return l
}

// SearchValue returns the index of the first impulse with value >= t — the
// cut TruncateAt would apply, mirroring PMF.SearchValue. The zero Lattice
// yields 0.
func (l Lattice) SearchValue(t float64) int {
	return sort.Search(len(l.idx), func(k int) bool { return l.Value(k) >= t })
}

// TruncateAt removes the first cut impulses and renormalizes the remainder,
// returning the truncated lattice and the mass that survived (before
// renormalization) — the grid form of PMF.TruncateBelow, keyed by the cut
// index so equal cuts yield bit-identical results. cut == Len() (or a
// remainder with no mass) returns the zero Lattice and kept == 0; the caller
// owns the degenerate-head fallback.
func (l Lattice) TruncateAt(cut int) (Lattice, float64) {
	if cut <= 0 {
		return l, 1
	}
	if cut >= len(l.idx) {
		return Lattice{}, 0
	}
	mass := 0.0
	for _, p := range l.prob[cut:] {
		mass += p
	}
	if mass <= 0 {
		return Lattice{}, 0
	}
	inv := 1 / mass
	prob := make([]float64, len(l.prob)-cut)
	for j, p := range l.prob[cut:] {
		prob[j] = p * inv
	}
	return Lattice{origin: l.origin, step: l.step, idx: l.idx[cut:], prob: prob, cum: prefixSums(prob)}, mass
}

// PMF materializes the lattice as a sparse PMF with values origin + idx·step.
func (l Lattice) PMF() PMF {
	if l.IsZero() {
		return PMF{}
	}
	vals := make([]float64, len(l.idx))
	probs := make([]float64, len(l.prob))
	for k := range l.idx {
		vals[k] = l.Value(k)
	}
	copy(probs, l.prob)
	return PMF{vals: vals, probs: probs}
}

// Grid materializes the lattice densely, anchoring the grid origin at the
// first impulse.
func (l Lattice) Grid() Grid {
	if l.IsZero() {
		return Grid{}
	}
	base := l.idx[0]
	n := int(l.idx[len(l.idx)-1]-base) + 1
	probs := make([]float64, n)
	for k := range l.idx {
		probs[l.idx[k]-base] = l.prob[k]
	}
	return newGrid(l.origin+float64(base)*l.step, l.step, probs)
}

func newGrid(origin, step float64, probs []float64) Grid {
	nnz := 0
	cum := make([]float64, len(probs))
	s := 0.0
	for i, p := range probs {
		if p != 0 {
			nnz++
		}
		s += p
		cum[i] = s
	}
	return Grid{origin: origin, step: step, probs: probs, cum: cum, nnz: nnz}
}

// ToGrid snaps p onto a dense grid of the given step (ToLattice then Grid).
func ToGrid(p PMF, step float64) Grid {
	return ToLattice(p, step).Grid()
}

// IdentityGrid is the convolution identity on a lattice of the given step:
// unit mass at value 0. Convolving with it adds nothing but the origin.
func IdentityGrid(step float64) Grid {
	checkStep(step)
	return Grid{origin: 0, step: step, probs: []float64{1}, cum: []float64{1}, nnz: 1}
}

// IsZero reports whether the grid has no bins.
func (g Grid) IsZero() bool { return len(g.probs) == 0 }

// Len returns the number of bins (including empty ones).
func (g Grid) Len() int { return len(g.probs) }

// Step returns the lattice step.
func (g Grid) Step() float64 { return g.step }

// Origin returns the value of bin 0.
func (g Grid) Origin() float64 { return g.origin }

// MinValue returns the value of the first non-empty bin. Panics on the zero
// Grid.
func (g Grid) MinValue() float64 {
	for i, p := range g.probs {
		if p != 0 {
			return g.origin + float64(i)*g.step
		}
	}
	return g.origin
}

// TotalMass returns the sum of bin masses.
func (g Grid) TotalMass() float64 {
	if g.IsZero() {
		return 0
	}
	return g.cum[len(g.cum)-1]
}

// Mean returns the expectation.
func (g Grid) Mean() float64 {
	if g.IsZero() {
		return math.NaN()
	}
	m := 0.0
	for i, p := range g.probs {
		if p != 0 {
			m += p * (g.origin + float64(i)*g.step)
		}
	}
	return m
}

// CDFIndex returns the cumulative mass through bin t, clamped: negative t
// yields 0, t past the last bin yields the total mass.
func (g Grid) CDFIndex(t int) float64 {
	if t < 0 || g.IsZero() {
		return 0
	}
	if t >= len(g.cum) {
		return g.cum[len(g.cum)-1]
	}
	return g.cum[t]
}

// CDF returns P(X <= x): the prefix sum through bin floor((x-origin)/step).
func (g Grid) CDF(x float64) float64 {
	if g.IsZero() {
		return 0
	}
	return g.CDFIndex(binFloor(x-g.origin, g.step))
}

// binFloor converts an offset from the origin to the last bin index at or
// below it, clamped to the int range.
func binFloor(off, step float64) int {
	f := math.Floor(off / step)
	const lim = float64(1 << 40)
	if f >= lim {
		return 1 << 40
	}
	if f <= -lim {
		return -(1 << 40)
	}
	return int(f)
}

// PMF materializes the non-empty bins as a sparse PMF.
func (g Grid) PMF() PMF {
	if g.IsZero() {
		return PMF{}
	}
	vals := make([]float64, 0, g.nnz)
	probs := make([]float64, 0, g.nnz)
	for i, p := range g.probs {
		if p == 0 {
			continue
		}
		vals = append(vals, g.origin+float64(i)*g.step)
		probs = append(probs, p)
	}
	return PMF{vals: vals, probs: probs}
}

// ConvolveLattice returns the distribution of X+Y for X ~ g, Y ~ l on the
// same lattice: a shifted multiply-add of g into the result per impulse of
// l, exact up to float rounding — no sorting, merging, or compaction. Panics
// if the steps differ. This is the chain-extension kernel: cost
// l.Len()·g.Len() madds.
func (g Grid) ConvolveLattice(l Lattice) Grid {
	if g.IsZero() || l.IsZero() {
		panic("pmf: ConvolveLattice on zero operand")
	}
	if g.step != l.step {
		panic(fmt.Sprintf("pmf: lattice step mismatch %v vs %v", g.step, l.step))
	}
	opGridConvolutions.Add(1)
	base := l.idx[0]
	span := int(l.idx[len(l.idx)-1] - base)
	out := make([]float64, len(g.probs)+span)
	for k := range l.idx {
		off := int(l.idx[k] - base)
		p := l.prob[k]
		dst := out[off : off+len(g.probs)]
		for i, gp := range g.probs {
			dst[i] += p * gp
		}
	}
	return newGrid(g.origin+l.origin+float64(base)*g.step, g.step, out)
}

// GridScratch holds reusable backing arrays for ConvolveLatticeInto, so a
// caller that rebuilds the same kind of product repeatedly (the free-time
// engine's per-core tail⊛head cache, whose truncation cut drifts with
// every decision's now) does not churn the heap with each rebuild.
type GridScratch struct{ probs, cum []float64 }

// ConvolveLatticeInto is ConvolveLattice with the result backed by the
// scratch's arrays instead of fresh allocations: same accumulation order,
// bit-identical bins and prefix sums. The returned Grid aliases the
// scratch and is valid only until the next ConvolveLatticeInto call with
// the same scratch; use ConvolveLattice when the result must be immutable.
func (g Grid) ConvolveLatticeInto(l Lattice, s *GridScratch) Grid {
	if g.IsZero() || l.IsZero() {
		panic("pmf: ConvolveLatticeInto on zero operand")
	}
	if g.step != l.step {
		panic(fmt.Sprintf("pmf: lattice step mismatch %v vs %v", g.step, l.step))
	}
	opGridConvolutions.Add(1)
	base := l.idx[0]
	span := int(l.idx[len(l.idx)-1] - base)
	n := len(g.probs) + span
	if cap(s.probs) < n {
		s.probs = make([]float64, n)
		s.cum = make([]float64, n)
	}
	out := s.probs[:n]
	for i := range out {
		out[i] = 0
	}
	for k := range l.idx {
		off := int(l.idx[k] - base)
		p := l.prob[k]
		dst := out[off : off+len(g.probs)]
		for i, gp := range g.probs {
			dst[i] += p * gp
		}
	}
	nnz := 0
	cum := s.cum[:n]
	sum := 0.0
	for i, p := range out {
		if p != 0 {
			nnz++
		}
		sum += p
		cum[i] = sum
	}
	return Grid{origin: g.origin + l.origin + float64(base)*g.step, step: g.step, probs: out, cum: cum, nnz: nnz}
}

// fftCostFactor scales N·log2(N) into the same units as the direct
// kernel's nnz·len multiply-add count. Calibrated from
// BenchmarkGridConvolve/dispatch on the bench host: the direct kernel
// runs at ~0.8ns per madd while the FFT path (two complex transforms with
// recurrence-free per-index twiddles — the price of bit determinism —
// plus packing) costs ~25 madd-equivalents per N·log2(N) point, putting
// the crossover near 1024-bin operands.
const fftCostFactor = 24.0

// Convolve returns the distribution of X+Y for dense X ~ g, Y ~ h on the
// same lattice. Dispatch: the direct kernel runs the sparser operand's
// non-zero bins against the other's full support (nnz·len madds); above the
// benchmarked crossover the power-of-two-padded real FFT path wins and is
// used instead. Both paths are deterministic; they differ by at most
// ~1e-12 relative mass per bin (the FFT's rounding), which the grid parity
// test budgets for. Panics on a zero operand or step mismatch.
func (g Grid) Convolve(h Grid) Grid {
	if g.IsZero() || h.IsZero() {
		panic("pmf: Convolve on zero Grid operand")
	}
	if g.step != h.step {
		panic(fmt.Sprintf("pmf: lattice step mismatch %v vs %v", g.step, h.step))
	}
	opGridConvolutions.Add(1)
	// Run the operand with fewer non-zero bins as the kernel.
	a, b := g, h
	if b.nnz < a.nnz {
		a, b = b, a
	}
	outLen := len(g.probs) + len(h.probs) - 1
	direct := float64(a.nnz) * float64(len(b.probs))
	n := fftSize(outLen)
	if direct > fftCostFactor*float64(n)*math.Log2(float64(n)) {
		opFFTConvolutions.Add(1)
		return newGrid(g.origin+h.origin, g.step, fftConvolve(g.probs, h.probs))
	}
	out := make([]float64, outLen)
	for i, p := range a.probs {
		if p == 0 {
			continue
		}
		dst := out[i : i+len(b.probs)]
		for j, q := range b.probs {
			dst[j] += p * q
		}
	}
	return newGrid(g.origin+h.origin, g.step, out)
}

// ConvCDF returns P(G + E ≤ x) for independent G ~ g (dense) and E ~ e
// (sparse on the same lattice): the CDF of their convolution at x without
// materializing it — at most e.Len() prefix-sum lookups, no allocation.
// When one factor of a ρ chain (the tail⊛head product) is reused across
// many candidates, materializing it once and answering each candidate
// through ConvCDF replaces the O(|h|·|e|) double sum of TripleConvCDF
// with an O(|e|) single sum. The sum saturates at 1; zero operands
// yield 0. Pointer operands keep the per-candidate call free of struct
// copies — the hot path evaluates this once per (P-state, core) pair.
func (g *Grid) ConvCDF(e *Lattice, x float64) float64 {
	if g.IsZero() || e.IsZero() {
		return 0
	}
	opGridRhoEvals.Add(1)
	t0 := int64(binFloor(x-g.origin-e.origin, g.step))
	last := int64(len(g.cum) - 1)
	tot := g.cum[last]
	sum := 0.0
	for j := range e.idx {
		k := t0 - int64(e.idx[j])
		if k < 0 {
			// e ascends, so every later impulse lands further past x.
			break
		}
		if k >= last {
			sum += e.prob[j] * tot
			continue
		}
		sum += e.prob[j] * g.cum[k]
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// TripleConvCDF returns P(H + W + E ≤ x) for independent H ~ h, E ~ e
// (sparse on the lattice) and W ~ w (dense on the same lattice): the grid
// form of the ρ evaluation, answered entirely from w's prefix sums —
// h.Len()·e.Len() madds, no convolution, no allocation. The sum saturates
// at 1. Zero operands yield 0. Pointer operands for the same reason as
// ConvCDF: the scheduler calls this per candidate.
func TripleConvCDF(h *Lattice, w *Grid, e *Lattice, x float64) float64 {
	if h.IsZero() || w.IsZero() || e.IsZero() {
		return 0
	}
	opGridRhoEvals.Add(1)
	t0 := int64(binFloor(x-h.origin-w.origin-e.origin, w.step))
	wLast := int64(len(w.cum) - 1)
	wTot := w.cum[wLast]
	e0 := int64(e.idx[0])
	eLast := int64(e.idx[len(e.idx)-1])
	eTot := e.cum[len(e.cum)-1]
	sum := 0.0
	for i := range h.idx {
		s := t0 - int64(h.idx[i])
		if s-e0 < 0 {
			// h ascends, so every later impulse is further past the
			// deadline: nothing more can contribute.
			break
		}
		if s-eLast >= wLast {
			// Every (e, w) combination is at or before the deadline.
			sum += h.prob[i] * eTot * wTot
			continue
		}
		inner := 0.0
		for j := range e.idx {
			k := s - int64(e.idx[j])
			if k < 0 {
				break
			}
			if k >= wLast {
				inner += e.prob[j] * wTot
				continue
			}
			inner += e.prob[j] * w.cum[k]
		}
		sum += h.prob[i] * inner
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}
