package pmf

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func mustValid(t *testing.T, p PMF) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid PMF %v: %v", p, err)
	}
}

func TestNewBasic(t *testing.T) {
	p, err := New([]float64{3, 1, 2}, []float64{0.2, 0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	mustValid(t, p)
	if p.Len() != 3 {
		t.Fatalf("len %d, want 3", p.Len())
	}
	// Sorted by value.
	if p.Value(0) != 1 || p.Value(1) != 2 || p.Value(2) != 3 {
		t.Fatalf("values not sorted: %v", p.Values())
	}
	if p.Prob(0) != 0.3 || p.Prob(1) != 0.5 || p.Prob(2) != 0.2 {
		t.Fatalf("probs misaligned: %v", p.Probs())
	}
}

func TestNewNormalizes(t *testing.T) {
	p := MustNew([]float64{1, 2}, []float64{2, 6})
	if math.Abs(p.Prob(0)-0.25) > 1e-15 || math.Abs(p.Prob(1)-0.75) > 1e-15 {
		t.Fatalf("normalization wrong: %v", p.Probs())
	}
	mustValid(t, p)
}

func TestNewMergesDuplicates(t *testing.T) {
	p := MustNew([]float64{5, 5, 7}, []float64{0.25, 0.25, 0.5})
	if p.Len() != 2 {
		t.Fatalf("duplicates not merged: %v", p)
	}
	if math.Abs(p.Prob(0)-0.5) > 1e-15 {
		t.Fatalf("merged mass wrong: %v", p.Probs())
	}
}

func TestNewDropsZeroMass(t *testing.T) {
	p := MustNew([]float64{1, 2, 3}, []float64{0.5, 0, 0.5})
	if p.Len() != 2 {
		t.Fatalf("zero-mass impulse kept: %v", p)
	}
}

func TestNewErrors(t *testing.T) {
	cases := []struct {
		name  string
		vals  []float64
		probs []float64
	}{
		{"mismatch", []float64{1}, []float64{0.5, 0.5}},
		{"empty", nil, nil},
		{"negative prob", []float64{1, 2}, []float64{-0.5, 1.5}},
		{"nan prob", []float64{1}, []float64{math.NaN()}},
		{"nan value", []float64{math.NaN()}, []float64{1}},
		{"inf value", []float64{math.Inf(1)}, []float64{1}},
		{"all zero mass", []float64{1, 2}, []float64{0, 0}},
	}
	for _, c := range cases {
		if _, err := New(c.vals, c.probs); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestPoint(t *testing.T) {
	p := Point(42)
	mustValid(t, p)
	if p.Mean() != 42 || p.Variance() != 0 || p.Min() != 42 || p.Max() != 42 {
		t.Fatalf("bad point pmf: %v", p)
	}
}

func TestShift(t *testing.T) {
	p := MustNew([]float64{1, 2, 3}, []float64{0.2, 0.3, 0.5})
	q := p.Shift(10)
	mustValid(t, q)
	if q.Min() != 11 || q.Max() != 13 {
		t.Fatalf("shift wrong: %v", q)
	}
	if math.Abs(q.Mean()-(p.Mean()+10)) > 1e-12 {
		t.Fatalf("shift changed mean shape: %v vs %v", q.Mean(), p.Mean()+10)
	}
	if math.Abs(q.Variance()-p.Variance()) > 1e-12 {
		t.Fatal("shift changed variance")
	}
	// Original untouched.
	if p.Min() != 1 {
		t.Fatal("Shift mutated receiver")
	}
}

func TestScaleTime(t *testing.T) {
	p := MustNew([]float64{1, 2}, []float64{0.5, 0.5})
	q := p.ScaleTime(3)
	mustValid(t, q)
	if q.Value(0) != 3 || q.Value(1) != 6 {
		t.Fatalf("scale wrong: %v", q)
	}
	if math.Abs(q.Mean()-3*p.Mean()) > 1e-12 {
		t.Fatal("scale mean wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive factor")
		}
	}()
	p.ScaleTime(0)
}

func TestConvolveExact(t *testing.T) {
	// Two fair coins over {0,1}: sum is Binomial(2, 1/2).
	c := MustNew([]float64{0, 1}, []float64{0.5, 0.5})
	s := Convolve(c, c)
	mustValid(t, s)
	want := MustNew([]float64{0, 1, 2}, []float64{0.25, 0.5, 0.25})
	if !s.ApproxEqual(want, 1e-12) {
		t.Fatalf("convolution wrong: %v", s)
	}
}

func TestConvolveMeanVarianceAdd(t *testing.T) {
	p := MustNew([]float64{1, 4, 9}, []float64{0.2, 0.5, 0.3})
	q := MustNew([]float64{2, 3}, []float64{0.6, 0.4})
	s := ConvolveN(p, q, 0)
	mustValid(t, s)
	if math.Abs(s.Mean()-(p.Mean()+q.Mean())) > 1e-12 {
		t.Fatalf("conv mean %v != %v", s.Mean(), p.Mean()+q.Mean())
	}
	if math.Abs(s.Variance()-(p.Variance()+q.Variance())) > 1e-9 {
		t.Fatalf("conv var %v != %v", s.Variance(), p.Variance()+q.Variance())
	}
}

func TestConvolveWithPointIsShift(t *testing.T) {
	p := MustNew([]float64{1, 2}, []float64{0.5, 0.5})
	s := Convolve(p, Point(5))
	if !s.ApproxEqual(p.Shift(5), 1e-12) {
		t.Fatalf("conv with point != shift: %v", s)
	}
	s = Convolve(Point(5), p)
	if !s.ApproxEqual(p.Shift(5), 1e-12) {
		t.Fatalf("point-first conv != shift: %v", s)
	}
}

func TestConvolveZeroOperand(t *testing.T) {
	p := MustNew([]float64{1, 2}, []float64{0.5, 0.5})
	if s := Convolve(p, PMF{}); !s.ApproxEqual(p, 0) {
		t.Fatal("conv with zero PMF should return other operand")
	}
	if s := Convolve(PMF{}, p); !s.ApproxEqual(p, 0) {
		t.Fatal("conv with zero PMF should return other operand")
	}
}

func TestConvolveCompactsLargeResults(t *testing.T) {
	vals := make([]float64, 50)
	probs := make([]float64, 50)
	for i := range vals {
		vals[i] = float64(i) * 1.3
		probs[i] = 1
	}
	p := MustNew(vals, probs)
	s := Convolve(p, p)
	mustValid(t, s)
	if s.Len() > DefaultMaxImpulses {
		t.Fatalf("convolution result not compacted: %d impulses", s.Len())
	}
	// Mean must still be exact (compaction is mean-preserving).
	if math.Abs(s.Mean()-2*p.Mean()) > 1e-9 {
		t.Fatalf("compacted conv mean %v, want %v", s.Mean(), 2*p.Mean())
	}
}

func TestCompact(t *testing.T) {
	vals := make([]float64, 100)
	probs := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
		probs[i] = float64(i + 1)
	}
	p := MustNew(vals, probs)
	c := p.Compact(10)
	mustValid(t, c)
	if c.Len() > 10 {
		t.Fatalf("compact returned %d impulses", c.Len())
	}
	if math.Abs(c.Mean()-p.Mean()) > 1e-9 {
		t.Fatalf("compact mean %v, want %v", c.Mean(), p.Mean())
	}
	if c.Min() < p.Min() || c.Max() > p.Max() {
		t.Fatal("compact support escaped original range")
	}
	// No-op when already small.
	if q := p.Compact(200); q.Len() != p.Len() {
		t.Fatal("compact shrank a PMF that was already within bounds")
	}
}

func TestCompactDegenerate(t *testing.T) {
	p := Point(3)
	if c := p.Compact(1); c.Len() != 1 || c.Value(0) != 3 {
		t.Fatalf("compact of point wrong: %v", c)
	}
}

func TestTruncateBelow(t *testing.T) {
	p := MustNew([]float64{1, 2, 3, 4}, []float64{0.1, 0.2, 0.3, 0.4})
	q, kept := p.TruncateBelow(2.5)
	mustValid(t, q)
	if math.Abs(kept-0.7) > 1e-12 {
		t.Fatalf("kept %v, want 0.7", kept)
	}
	if q.Len() != 2 || q.Value(0) != 3 || q.Value(1) != 4 {
		t.Fatalf("wrong support: %v", q)
	}
	if math.Abs(q.Prob(0)-3.0/7) > 1e-12 || math.Abs(q.Prob(1)-4.0/7) > 1e-12 {
		t.Fatalf("renormalization wrong: %v", q.Probs())
	}
}

func TestTruncateBelowBoundaryInclusive(t *testing.T) {
	p := MustNew([]float64{1, 2}, []float64{0.5, 0.5})
	// Impulse exactly at t is kept (it is "not in the past").
	q, kept := p.TruncateBelow(2)
	if kept != 0.5 || q.Len() != 1 || q.Value(0) != 2 {
		t.Fatalf("boundary handling wrong: %v kept %v", q, kept)
	}
}

func TestTruncateBelowNothingRemoved(t *testing.T) {
	p := MustNew([]float64{5, 6}, []float64{0.5, 0.5})
	q, kept := p.TruncateBelow(1)
	if kept != 1 || !q.ApproxEqual(p, 0) {
		t.Fatalf("expected identity, got %v kept %v", q, kept)
	}
}

func TestTruncateBelowAllRemoved(t *testing.T) {
	p := MustNew([]float64{1, 2}, []float64{0.5, 0.5})
	q, kept := p.TruncateBelow(10)
	if kept != 0 {
		t.Fatalf("kept %v, want 0", kept)
	}
	// Overdue task: modeled as completing imminently at t.
	if q.Len() != 1 || q.Value(0) != 10 {
		t.Fatalf("overdue distribution wrong: %v", q)
	}
}

func TestCDFAndProbByDeadline(t *testing.T) {
	p := MustNew([]float64{1, 2, 3}, []float64{0.2, 0.3, 0.5})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.2}, {1.5, 0.2}, {2, 0.5}, {3, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := p.CDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
		if got := p.ProbByDeadline(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ProbByDeadline(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestQuantile(t *testing.T) {
	p := MustNew([]float64{10, 20, 30}, []float64{0.2, 0.3, 0.5})
	cases := []struct{ u, want float64 }{
		{0, 10}, {0.1, 10}, {0.2, 10}, {0.21, 20}, {0.5, 20}, {0.51, 30}, {1, 30},
	}
	for _, c := range cases {
		if got := p.Quantile(c.u); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.u, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for u out of range")
		}
	}()
	p.Quantile(1.5)
}

func TestMeanVariance(t *testing.T) {
	p := MustNew([]float64{2, 4}, []float64{0.5, 0.5})
	if p.Mean() != 3 {
		t.Fatalf("mean %v, want 3", p.Mean())
	}
	if p.Variance() != 1 {
		t.Fatalf("variance %v, want 1", p.Variance())
	}
	if p.StdDev() != 1 {
		t.Fatalf("stddev %v, want 1", p.StdDev())
	}
	var zero PMF
	if !math.IsNaN(zero.Mean()) || !math.IsNaN(zero.Variance()) {
		t.Fatal("zero PMF moments should be NaN")
	}
}

func TestFromSamples(t *testing.T) {
	samples := make([]float64, 0, 10000)
	// Deterministic triangular-ish set.
	for i := 0; i < 10000; i++ {
		samples = append(samples, float64(i%100)+float64(i%7)*0.1)
	}
	p, err := FromSamples(samples, 24)
	if err != nil {
		t.Fatal(err)
	}
	mustValid(t, p)
	if p.Len() > 24 {
		t.Fatalf("too many impulses: %d", p.Len())
	}
	mean := 0.0
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	if math.Abs(p.Mean()-mean) > 1e-9 {
		t.Fatalf("FromSamples mean %v, want %v (must be exact)", p.Mean(), mean)
	}
}

func TestFromSamplesDegenerate(t *testing.T) {
	p, err := FromSamples([]float64{7, 7, 7}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 || p.Value(0) != 7 {
		t.Fatalf("degenerate samples wrong: %v", p)
	}
	if _, err := FromSamples(nil, 10); err == nil {
		t.Fatal("expected error for empty samples")
	}
	if _, err := FromSamples([]float64{1}, 0); err == nil {
		t.Fatal("expected error for zero bins")
	}
	if _, err := FromSamples([]float64{math.NaN()}, 4); err == nil {
		t.Fatal("expected error for NaN sample")
	}
}

func TestMix(t *testing.T) {
	p := Point(1)
	q := Point(3)
	m, err := Mix(p, q, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	mustValid(t, m)
	if math.Abs(m.Mean()-2.5) > 1e-12 {
		t.Fatalf("mix mean %v, want 2.5", m.Mean())
	}
	if _, err := Mix(p, q, 1.5); err == nil {
		t.Fatal("expected error for weight outside [0,1]")
	}
	if _, err := Mix(PMF{}, q, 0.5); err == nil {
		t.Fatal("expected error for zero operand")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := MustNew([]float64{1.5, 2.5, 10}, []float64{0.25, 0.25, 0.5})
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q PMF
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if !q.ApproxEqual(p, 1e-12) {
		t.Fatalf("round trip mismatch: %v vs %v", q, p)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var p PMF
	if err := json.Unmarshal([]byte(`{"values":[1],"probs":[0]}`), &p); err == nil {
		t.Fatal("expected error for zero-mass pmf")
	}
	if err := json.Unmarshal([]byte(`{"values":[1`), &p); err == nil {
		t.Fatal("expected error for malformed JSON")
	}
}

func TestString(t *testing.T) {
	p := MustNew([]float64{1, 2}, []float64{0.5, 0.5})
	s := p.String()
	if !strings.Contains(s, "1") || !strings.Contains(s, "0.5") {
		t.Fatalf("unexpected String(): %q", s)
	}
	var zero PMF
	if zero.String() != "pmf{}" {
		t.Fatalf("zero String(): %q", zero.String())
	}
}

func TestAccessorsCopy(t *testing.T) {
	p := MustNew([]float64{1, 2}, []float64{0.5, 0.5})
	v := p.Values()
	v[0] = 99
	if p.Value(0) == 99 {
		t.Fatal("Values returned internal slice")
	}
	pr := p.Probs()
	pr[0] = 99
	if p.Prob(0) == 99 {
		t.Fatal("Probs returned internal slice")
	}
}
