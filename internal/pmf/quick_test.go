package pmf

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genPMF is a quick.Generator-compatible wrapper that produces valid random
// PMFs with up to 40 impulses over a bounded support.
type genPMF struct{ P PMF }

func (genPMF) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(40)
	vals := make([]float64, n)
	probs := make([]float64, n)
	for i := range vals {
		vals[i] = r.Float64() * 1000
		probs[i] = r.Float64() + 1e-6
	}
	p, err := New(vals, probs)
	if err != nil {
		// Retry deterministically by nudging; New only fails on degenerate
		// input, which the construction above avoids, so this is paranoia.
		p = Point(r.Float64())
	}
	return reflect.ValueOf(genPMF{p})
}

var quickCfg = &quick.Config{MaxCount: 300}

func TestQuickNewProducesValid(t *testing.T) {
	f := func(g genPMF) bool { return g.P.Validate() == nil }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickShiftPreservesShape(t *testing.T) {
	f := func(g genPMF, dtRaw int16) bool {
		dt := float64(dtRaw)
		s := g.P.Shift(dt)
		if s.Validate() != nil || s.Len() != g.P.Len() {
			return false
		}
		return math.Abs(s.Mean()-(g.P.Mean()+dt)) < 1e-6 &&
			math.Abs(s.Variance()-g.P.Variance()) < 1e-6
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConvolveLinearity(t *testing.T) {
	// E[X+Y] = E[X]+E[Y] must hold exactly even after compaction.
	f := func(a, b genPMF) bool {
		s := Convolve(a.P, b.P)
		if s.Validate() != nil {
			return false
		}
		if s.Len() > DefaultMaxImpulses {
			return false
		}
		want := a.P.Mean() + b.P.Mean()
		return math.Abs(s.Mean()-want) <= 1e-6*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConvolveSupportBounds(t *testing.T) {
	f := func(a, b genPMF) bool {
		s := Convolve(a.P, b.P)
		eps := 1e-9 * math.Max(1, math.Abs(a.P.Max()+b.P.Max()))
		return s.Min() >= a.P.Min()+b.P.Min()-eps && s.Max() <= a.P.Max()+b.P.Max()+eps
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConvolveCommutative(t *testing.T) {
	f := func(a, b genPMF) bool {
		x := ConvolveN(a.P, b.P, 0)
		y := ConvolveN(b.P, a.P, 0)
		return x.ApproxEqual(y, 1e-9)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompactInvariants(t *testing.T) {
	f := func(g genPMF, mRaw uint8) bool {
		m := 1 + int(mRaw)%32
		c := g.P.Compact(m)
		if c.Validate() != nil || c.Len() > m {
			return false
		}
		if c.Min() < g.P.Min()-1e-9 || c.Max() > g.P.Max()+1e-9 {
			return false
		}
		return math.Abs(c.Mean()-g.P.Mean()) <= 1e-6*math.Max(1, math.Abs(g.P.Mean()))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTruncateInvariants(t *testing.T) {
	f := func(g genPMF, tRaw uint16) bool {
		cut := float64(tRaw % 1100)
		q, kept := g.P.TruncateBelow(cut)
		if kept < 0 || kept > 1+1e-12 {
			return false
		}
		if q.Validate() != nil {
			return false
		}
		// All remaining support at or after the cut.
		return q.Min() >= cut || kept == 1
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCDFMonotone(t *testing.T) {
	f := func(g genPMF, aRaw, bRaw uint16) bool {
		a, b := float64(aRaw), float64(bRaw)
		if a > b {
			a, b = b, a
		}
		ca, cb := g.P.CDF(a), g.P.CDF(b)
		return ca >= 0 && cb <= 1+1e-12 && ca <= cb+1e-12
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickQuantileCDFGalois(t *testing.T) {
	// CDF(Quantile(u)) >= u for all u in (0,1].
	f := func(g genPMF, uRaw uint16) bool {
		u := (float64(uRaw%1000) + 1) / 1000
		v := g.P.Quantile(u)
		return g.P.CDF(v) >= u-1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(g genPMF) bool {
		data, err := g.P.MarshalJSON()
		if err != nil {
			return false
		}
		var q PMF
		if err := q.UnmarshalJSON(data); err != nil {
			return false
		}
		return q.ApproxEqual(g.P, 1e-9)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}
