// Package pmf implements the discrete probability mass functions that the
// paper uses to model uncertain task execution times (§III-B) and the
// operations its robustness machinery needs (§IV-B): shifting a distribution
// by a start time, discarding impulses that are already in the past and
// renormalizing, convolving the distributions of queued tasks, and reading
// off expectations and deadline probabilities.
//
// A PMF is a finite list of (value, probability) impulses with strictly
// increasing values and probabilities summing to one. All operations return
// new PMFs; values are never mutated in place, so PMFs are safe to share
// across goroutines once constructed.
package pmf

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Tolerance is the absolute slack allowed when checking that probabilities
// sum to one. Renormalization is exact up to floating-point rounding; the
// tolerance exists to absorb that rounding across long operation chains.
const Tolerance = 1e-9

// DefaultMaxImpulses bounds the support size kept after convolution and
// explicit compaction. 64 impulses keeps the completion-time chains of
// §IV-B accurate to well under a percent on deadline probabilities while
// keeping convolution on the scheduler's hot path cheap.
const DefaultMaxImpulses = 64

// PMF is an immutable discrete probability mass function.
type PMF struct {
	vals  []float64
	probs []float64
}

var (
	// ErrEmpty is returned when a PMF would have no impulses.
	ErrEmpty = errors.New("pmf: no impulses")
	// ErrLengthMismatch is returned when values and probabilities differ in length.
	ErrLengthMismatch = errors.New("pmf: values and probabilities differ in length")
	// ErrBadProbability is returned for negative, NaN, or non-normalizable probabilities.
	ErrBadProbability = errors.New("pmf: invalid probability")
	// ErrBadValue is returned for NaN or infinite support values.
	ErrBadValue = errors.New("pmf: invalid support value")
)

// New builds a PMF from parallel value/probability slices. Values need not
// be sorted; duplicates are merged by summing their probabilities.
// Probabilities must be non-negative with a positive finite sum and are
// normalized to sum to one. The input slices are not retained.
func New(vals, probs []float64) (PMF, error) {
	if len(vals) != len(probs) {
		return PMF{}, ErrLengthMismatch
	}
	if len(vals) == 0 {
		return PMF{}, ErrEmpty
	}
	type impulse struct{ v, p float64 }
	imps := make([]impulse, 0, len(vals))
	total := 0.0
	for i := range vals {
		v, p := vals[i], probs[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return PMF{}, fmt.Errorf("%w: value %v", ErrBadValue, v)
		}
		if math.IsNaN(p) || p < 0 || math.IsInf(p, 0) {
			return PMF{}, fmt.Errorf("%w: probability %v", ErrBadProbability, p)
		}
		if p == 0 {
			continue
		}
		imps = append(imps, impulse{v, p})
		total += p
	}
	if len(imps) == 0 || total <= 0 {
		return PMF{}, fmt.Errorf("%w: total mass %v", ErrBadProbability, total)
	}
	sort.Slice(imps, func(i, j int) bool { return imps[i].v < imps[j].v })
	outV := make([]float64, 0, len(imps))
	outP := make([]float64, 0, len(imps))
	for _, im := range imps {
		if n := len(outV); n > 0 && outV[n-1] == im.v {
			outP[n-1] += im.p
			continue
		}
		outV = append(outV, im.v)
		outP = append(outP, im.p)
	}
	inv := 1 / total
	for i := range outP {
		outP[i] *= inv
	}
	return PMF{vals: outV, probs: outP}, nil
}

// MustNew is New but panics on error; for literals in tests and generators
// whose inputs are correct by construction.
func MustNew(vals, probs []float64) PMF {
	p, err := New(vals, probs)
	if err != nil {
		panic(err)
	}
	return p
}

// Point returns the degenerate PMF concentrated at v.
func Point(v float64) PMF {
	return PMF{vals: []float64{v}, probs: []float64{1}}
}

// IsZero reports whether p is the zero PMF (no impulses), i.e. an
// uninitialized value rather than a valid distribution.
func (p PMF) IsZero() bool { return len(p.vals) == 0 }

// Len returns the number of impulses.
func (p PMF) Len() int { return len(p.vals) }

// Value returns the i-th support value (ascending order).
func (p PMF) Value(i int) float64 { return p.vals[i] }

// Prob returns the probability of the i-th support value.
func (p PMF) Prob(i int) float64 { return p.probs[i] }

// Min returns the smallest support value. Panics on the zero PMF.
func (p PMF) Min() float64 { return p.vals[0] }

// Max returns the largest support value. Panics on the zero PMF.
func (p PMF) Max() float64 { return p.vals[len(p.vals)-1] }

// Values returns a copy of the support values in ascending order.
func (p PMF) Values() []float64 {
	out := make([]float64, len(p.vals))
	copy(out, p.vals)
	return out
}

// Probs returns a copy of the probabilities, parallel to Values.
func (p PMF) Probs() []float64 {
	out := make([]float64, len(p.probs))
	copy(out, p.probs)
	return out
}

// TotalMass returns the sum of probabilities; one for any valid PMF, up to
// floating-point rounding.
func (p PMF) TotalMass() float64 {
	s := 0.0
	for _, q := range p.probs {
		s += q
	}
	return s
}

// Validate checks the structural invariants: non-empty, strictly increasing
// finite values, positive probabilities summing to one within Tolerance.
func (p PMF) Validate() error {
	if len(p.vals) == 0 {
		return ErrEmpty
	}
	if len(p.vals) != len(p.probs) {
		return ErrLengthMismatch
	}
	sum := 0.0
	for i := range p.vals {
		if math.IsNaN(p.vals[i]) || math.IsInf(p.vals[i], 0) {
			return fmt.Errorf("%w: value %v at %d", ErrBadValue, p.vals[i], i)
		}
		if i > 0 && p.vals[i] <= p.vals[i-1] {
			return fmt.Errorf("%w: values not strictly increasing at %d", ErrBadValue, i)
		}
		if p.probs[i] <= 0 || math.IsNaN(p.probs[i]) {
			return fmt.Errorf("%w: probability %v at %d", ErrBadProbability, p.probs[i], i)
		}
		sum += p.probs[i]
	}
	if math.Abs(sum-1) > Tolerance {
		return fmt.Errorf("%w: total mass %v not within %v of 1", ErrBadProbability, sum, Tolerance)
	}
	return nil
}

// ApproxEqual reports whether p and q have identical supports and
// probabilities within eps, element-wise.
func (p PMF) ApproxEqual(q PMF, eps float64) bool {
	if len(p.vals) != len(q.vals) {
		return false
	}
	for i := range p.vals {
		if math.Abs(p.vals[i]-q.vals[i]) > eps || math.Abs(p.probs[i]-q.probs[i]) > eps {
			return false
		}
	}
	return true
}

// String renders a compact human-readable form for debugging.
func (p PMF) String() string {
	if p.IsZero() {
		return "pmf{}"
	}
	s := "pmf{"
	for i := range p.vals {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.4g:%.4g", p.vals[i], p.probs[i])
	}
	return s + "}"
}
