package pmf

import (
	"math"
	"testing"
)

// Tests for the bucketed convolution fast path (convolveBucketed), which
// the scheduler's hot loop takes whenever the exact product support would
// be compacted anyway. Its results must stay close to the exact
// convolution in every statistic the heuristics consume.

func bigPMF(n int, seedStep float64) PMF {
	vals := make([]float64, n)
	probs := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)*seedStep + math.Mod(float64(i)*0.7183, 1)
		probs[i] = 1 + math.Mod(float64(i)*2.39996, 3)
	}
	return MustNew(vals, probs)
}

func TestBucketedPathTriggers(t *testing.T) {
	a := bigPMF(40, 3.1)
	b := bigPMF(40, 5.7)
	out := ConvolveN(a, b, DefaultMaxImpulses)
	if out.Len() > DefaultMaxImpulses {
		t.Fatalf("bucketed result has %d impulses", out.Len())
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBucketedMatchesExactMoments(t *testing.T) {
	a := bigPMF(48, 2.3)
	b := bigPMF(36, 4.1)
	exact := ConvolveN(a, b, 0)
	fast := ConvolveN(a, b, DefaultMaxImpulses)
	if math.Abs(fast.Mean()-exact.Mean()) > 1e-9*exact.Mean() {
		t.Fatalf("bucketed mean %v, exact %v (must match exactly)", fast.Mean(), exact.Mean())
	}
	// Variance distorts at most by the bucket width²/12 per bucket.
	span := exact.Max() - exact.Min()
	bw := span / DefaultMaxImpulses
	if math.Abs(fast.Variance()-exact.Variance()) > bw*bw {
		t.Fatalf("bucketed variance %v, exact %v (tolerance %v)", fast.Variance(), exact.Variance(), bw*bw)
	}
	// Support bounds cannot escape.
	if fast.Min() < exact.Min()-1e-9 || fast.Max() > exact.Max()+1e-9 {
		t.Fatal("bucketed support escaped exact bounds")
	}
}

func TestBucketedCDFClose(t *testing.T) {
	a := bigPMF(48, 2.3)
	b := bigPMF(36, 4.1)
	exact := ConvolveN(a, b, 0)
	fast := ConvolveN(a, b, DefaultMaxImpulses)
	// The deadline probabilities the robustness filter consumes must agree
	// within one bucket's mass-shift at a grid of probe points.
	span := exact.Max() - exact.Min()
	worst := 0.0
	for i := 0; i <= 40; i++ {
		x := exact.Min() + span*float64(i)/40
		d := math.Abs(fast.CDF(x) - exact.CDF(x))
		if d > worst {
			worst = d
		}
	}
	if worst > 0.06 {
		t.Fatalf("bucketed CDF deviates %v from exact (want < 0.06)", worst)
	}
}

func TestBucketedDegenerateSpan(t *testing.T) {
	// Both operands concentrated: span zero after the degenerate-operand
	// shortcuts are bypassed by multi-impulse but equal-sum supports.
	a := MustNew([]float64{1, 2}, []float64{0.5, 0.5})
	b := MustNew([]float64{5, 6}, []float64{0.5, 0.5})
	// Small product: exact path; force bucketed via ConvolveN with tiny cap.
	out := ConvolveN(a, b, 1)
	if out.Len() != 1 {
		t.Fatalf("cap 1 should give one impulse, got %d", out.Len())
	}
	if math.Abs(out.Mean()-(a.Mean()+b.Mean())) > 1e-12 {
		t.Fatalf("mean %v, want %v", out.Mean(), a.Mean()+b.Mean())
	}
}

func TestConvolveChainStability(t *testing.T) {
	// Long convolution chains (deep queues) must keep total mass at 1 and
	// the mean exact even after many compaction rounds.
	acc := Point(0)
	exec := bigPMF(24, 30)
	wantMean := 0.0
	for i := 0; i < 50; i++ {
		acc = Convolve(acc, exec)
		wantMean += exec.Mean()
	}
	if err := acc.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc.TotalMass()-1) > 1e-9 {
		t.Fatalf("mass drifted to %v after 50 convolutions", acc.TotalMass())
	}
	if math.Abs(acc.Mean()-wantMean) > 1e-6*wantMean {
		t.Fatalf("chain mean %v, want %v", acc.Mean(), wantMean)
	}
	if acc.Len() > DefaultMaxImpulses {
		t.Fatalf("chain grew to %d impulses", acc.Len())
	}
}
