package pmf

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestFromJSONRoundTrip(t *testing.T) {
	orig, err := New([]float64{1, 2, 4}, []float64{0.25, 0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() || back.Mean() != orig.Mean() {
		t.Fatalf("round trip changed distribution: %v vs %v", back, orig)
	}
	for i := 0; i < orig.Len(); i++ {
		if back.Value(i) != orig.Value(i) || back.Prob(i) != orig.Prob(i) {
			t.Fatalf("atom %d differs after round trip", i)
		}
	}
}

func TestFromJSONRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"malformed":       `{"values":[1],`,
		"empty support":   `{"values":[],"probs":[]}`,
		"length mismatch": `{"values":[1,2],"probs":[1]}`,
		"negative mass":   `{"values":[1,2],"probs":[-0.5,1.5]}`,
		"zero total mass": `{"values":[1,2],"probs":[0,0]}`,
		// NaN/Inf are not valid JSON literals, so they surface as decode
		// errors before validation — still a rejection, never a silent load.
		"nan value": `{"values":[NaN],"probs":[1]}`,
		"inf prob":  `{"values":[1],"probs":[Infinity]}`,
	}
	for name, body := range cases {
		if _, err := FromJSON([]byte(body)); err == nil {
			t.Errorf("%s: expected error", name)
		} else if !strings.Contains(err.Error(), "pmf") {
			t.Errorf("%s: error lacks package context: %v", name, err)
		}
	}
}
