package pmf

import (
	"math"
	"testing"
)

// FuzzPMFFromJSON feeds arbitrary bytes to the external-PMF loader. The
// contract under test: FromJSON never panics, and every PMF it accepts
// satisfies the package invariants (non-empty sorted support, finite
// values, probabilities normalized to 1) so downstream convolutions and
// moments stay well-defined.
func FuzzPMFFromJSON(f *testing.F) {
	f.Add([]byte(`{"values":[1,2,3],"probs":[0.2,0.3,0.5]}`))
	f.Add([]byte(`{"values":[10],"probs":[1]}`))
	f.Add([]byte(`{"values":[],"probs":[]}`))
	f.Add([]byte(`{"values":[1,2],"probs":[0.5]}`))
	f.Add([]byte(`{"values":[1e308,1e308],"probs":[0.5,0.5]}`))
	f.Add([]byte(`{"values":[-1,0,1],"probs":[1e-300,1e-300,1e-300]}`))
	f.Add([]byte(`{"values":[3,1,2],"probs":[0.1,0.8,0.1]}`))
	f.Add([]byte(`{"values":[1,1],"probs":[0.5,0.5]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"values":null,"probs":null}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := FromJSON(data)
		if err != nil {
			return // rejected input: the only requirement is "no panic"
		}
		if p.Len() == 0 {
			t.Fatalf("accepted PMF with empty support: %q", data)
		}
		sum := 0.0
		for _, pr := range p.Probs() {
			if pr < 0 || math.IsNaN(pr) || math.IsInf(pr, 0) {
				t.Fatalf("accepted probability %v: %q", pr, data)
			}
			sum += pr
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("accepted PMF with total mass %v: %q", sum, data)
		}
		vals := p.Values()
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted value %v: %q", v, data)
			}
			if i > 0 && vals[i-1] >= v {
				t.Fatalf("accepted unsorted/duplicate support %v >= %v: %q", vals[i-1], v, data)
			}
		}
		if m := p.Mean(); math.IsNaN(m) {
			t.Fatalf("accepted PMF with NaN mean: %q", data)
		}
		// Round-trip: a valid PMF must serialize and reload to itself.
		out, err := p.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal of accepted PMF failed: %v", err)
		}
		q, err := FromJSON(out)
		if err != nil {
			t.Fatalf("round-trip rejected: %v (payload %s)", err, out)
		}
		if q.Len() != p.Len() {
			t.Fatalf("round-trip changed support size %d -> %d", p.Len(), q.Len())
		}
	})
}
